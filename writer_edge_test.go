package alp

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// TestWriterWorkersClamping pins the WriterOptions.Workers contract:
// zero and negative counts fall back to one worker per CPU, absurd
// counts are capped, and every setting produces output byte-identical
// to the serial Writer.
func TestWriterWorkersClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	values := make([]float64, 3*RowGroupSize+1234)
	for i := range values {
		values[i] = math.Round(rng.Float64()*100000) / 1000
	}

	serial := NewWriter()
	serial.Write(values)
	want := serial.Close()

	for _, workers := range []int{0, -1, -100, 1, 2, 7, maxWriterWorkers + 5, 1 << 30} {
		w := NewWriterParallel(WriterOptions{Workers: workers})
		for lo := 0; lo < len(values); lo += 4096 {
			hi := lo + 4096
			if hi > len(values) {
				hi = len(values)
			}
			w.Write(values[lo:hi])
		}
		if got := w.Close(); !bytes.Equal(got, want) {
			t.Errorf("Workers=%d: output differs from serial Writer (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// TestWriterAbort pins Abort's teardown contract: the encode pool's
// worker goroutines exit, Close after Abort returns nil instead of a
// truncated column, Write after Abort panics like Write after Close,
// and Abort after Close (the deferred-teardown idiom on error paths)
// is a no-op that preserves Close's output.
func TestWriterAbort(t *testing.T) {
	values := make([]float64, 2*RowGroupSize)
	for i := range values {
		values[i] = float64(i) / 8
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		w := NewWriterParallel(WriterOptions{Workers: 4})
		w.Write(values)
		w.Abort()
		w.Abort() // idempotent
		if out := w.Close(); out != nil {
			t.Fatalf("Close after Abort returned %d bytes, want nil", len(out))
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d: Abort leaked pool workers",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	w := NewWriterParallel(WriterOptions{Workers: 2})
	w.Abort()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Write after Abort did not panic")
			}
		}()
		w.Write(values[:1])
	}()

	w2 := NewWriterParallel(WriterOptions{Workers: 2})
	w2.Write(values)
	out := w2.Close()
	w2.Abort()
	if again := w2.Close(); !bytes.Equal(out, again) {
		t.Errorf("Abort after Close corrupted the cached output (%d vs %d bytes)",
			len(out), len(again))
	}
}

// TestReaderNextEdgeCases covers the vector-at-a-time reader's contract
// at the boundaries: short destination buffers fail without consuming
// the vector, and a drained reader keeps returning (0, nil).
func TestReaderNextEdgeCases(t *testing.T) {
	values := make([]float64, VectorSize+100) // two vectors, ragged tail
	for i := range values {
		values[i] = float64(i) / 4
	}
	r, err := NewReader(Encode(values))
	if err != nil {
		t.Fatal(err)
	}

	// Too-small dst (including zero-length) errors and must not advance
	// the stream: the immediately following full-size read still returns
	// the first vector.
	for _, n := range []int{0, 1, VectorSize - 1} {
		if _, err := r.Next(make([]float64, n)); err == nil {
			t.Fatalf("Next with len(dst)=%d did not error", n)
		}
	}
	dst := make([]float64, VectorSize)
	n, err := r.Next(dst)
	if err != nil || n != VectorSize {
		t.Fatalf("Next after short-dst errors = (%d, %v), want (%d, nil)", n, err, VectorSize)
	}
	if math.Float64bits(dst[0]) != math.Float64bits(values[0]) {
		t.Fatalf("short-dst error consumed the vector: dst[0] = %v, want %v", dst[0], values[0])
	}

	// The ragged tail fits in a dst sized for it (100 values), even
	// though that dst is smaller than a full vector.
	tail := make([]float64, 100)
	n, err = r.Next(tail)
	if err != nil || n != 100 {
		t.Fatalf("tail read = (%d, %v), want (100, nil)", n, err)
	}
	if math.Float64bits(tail[99]) != math.Float64bits(values[len(values)-1]) {
		t.Fatalf("tail value = %v, want %v", tail[99], values[len(values)-1])
	}

	// Exhausted: every further call returns (0, nil), even with a
	// zero-length dst.
	for i := 0; i < 3; i++ {
		if n, err := r.Next(dst); n != 0 || err != nil {
			t.Fatalf("Next after EOF (call %d) = (%d, %v), want (0, nil)", i, n, err)
		}
	}
	if n, err := r.Next(nil); n != 0 || err != nil {
		t.Fatalf("Next(nil) after EOF = (%d, %v), want (0, nil)", n, err)
	}

	// Reset rewinds to the first vector.
	r.Reset()
	if n, err := r.Next(dst); n != VectorSize || err != nil {
		t.Fatalf("Next after Reset = (%d, %v), want (%d, nil)", n, err, VectorSize)
	}
}
