package alp

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestWriterWorkersClamping pins the WriterOptions.Workers contract:
// zero and negative counts fall back to one worker per CPU, absurd
// counts are capped, and every setting produces output byte-identical
// to the serial Writer.
func TestWriterWorkersClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	values := make([]float64, 3*RowGroupSize+1234)
	for i := range values {
		values[i] = math.Round(rng.Float64()*100000) / 1000
	}

	serial := NewWriter()
	serial.Write(values)
	want := serial.Close()

	for _, workers := range []int{0, -1, -100, 1, 2, 7, maxWriterWorkers + 5, 1 << 30} {
		w := NewWriterParallel(WriterOptions{Workers: workers})
		for lo := 0; lo < len(values); lo += 4096 {
			hi := lo + 4096
			if hi > len(values) {
				hi = len(values)
			}
			w.Write(values[lo:hi])
		}
		if got := w.Close(); !bytes.Equal(got, want) {
			t.Errorf("Workers=%d: output differs from serial Writer (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// TestReaderNextEdgeCases covers the vector-at-a-time reader's contract
// at the boundaries: short destination buffers fail without consuming
// the vector, and a drained reader keeps returning (0, nil).
func TestReaderNextEdgeCases(t *testing.T) {
	values := make([]float64, VectorSize+100) // two vectors, ragged tail
	for i := range values {
		values[i] = float64(i) / 4
	}
	r, err := NewReader(Encode(values))
	if err != nil {
		t.Fatal(err)
	}

	// Too-small dst (including zero-length) errors and must not advance
	// the stream: the immediately following full-size read still returns
	// the first vector.
	for _, n := range []int{0, 1, VectorSize - 1} {
		if _, err := r.Next(make([]float64, n)); err == nil {
			t.Fatalf("Next with len(dst)=%d did not error", n)
		}
	}
	dst := make([]float64, VectorSize)
	n, err := r.Next(dst)
	if err != nil || n != VectorSize {
		t.Fatalf("Next after short-dst errors = (%d, %v), want (%d, nil)", n, err, VectorSize)
	}
	if math.Float64bits(dst[0]) != math.Float64bits(values[0]) {
		t.Fatalf("short-dst error consumed the vector: dst[0] = %v, want %v", dst[0], values[0])
	}

	// The ragged tail fits in a dst sized for it (100 values), even
	// though that dst is smaller than a full vector.
	tail := make([]float64, 100)
	n, err = r.Next(tail)
	if err != nil || n != 100 {
		t.Fatalf("tail read = (%d, %v), want (100, nil)", n, err)
	}
	if math.Float64bits(tail[99]) != math.Float64bits(values[len(values)-1]) {
		t.Fatalf("tail value = %v, want %v", tail[99], values[len(values)-1])
	}

	// Exhausted: every further call returns (0, nil), even with a
	// zero-length dst.
	for i := 0; i < 3; i++ {
		if n, err := r.Next(dst); n != 0 || err != nil {
			t.Fatalf("Next after EOF (call %d) = (%d, %v), want (0, nil)", i, n, err)
		}
	}
	if n, err := r.Next(nil); n != 0 || err != nil {
		t.Fatalf("Next(nil) after EOF = (%d, %v), want (0, nil)", n, err)
	}

	// Reset rewinds to the first vector.
	r.Reset()
	if n, err := r.Next(dst); n != VectorSize || err != nil {
		t.Fatalf("Next after Reset = (%d, %v), want (%d, nil)", n, err, VectorSize)
	}
}
