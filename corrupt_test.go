package alp

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"github.com/goalp/alp/internal/format"
)

// TestCorruptStreams feeds deliberately damaged streams to the public
// entry points and asserts they fail with ErrCorrupt (possibly
// wrapped) — never a panic, never silent acceptance of a structurally
// invalid stream.
func TestCorruptStreams(t *testing.T) {
	values := decimalColumn(3)
	values[5] = 1e300 // guarantee at least one exception segment
	base := Encode(values)

	cases := []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"magic flipped", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"truncated mid-payload", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated by one byte", func(b []byte) []byte { return b[:len(b)-1] }},
		{"value count inflated", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[4:], 1<<40)
			return b
		}},
		{"row-group count zeroed", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 0)
			return b
		}},
		{"scheme byte invalid", func(b []byte) []byte {
			b[16] = 0x7F // first row-group's scheme
			return b
		}},
		{"row-group extent shifted", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[17:], 999) // rg.Start
			return b
		}},
		{"combo out of range", func(b []byte) []byte {
			// combo list starts right after scheme(1)+start(4)+n(4)+count(1)
			b[26] = 200 // exponent 200 > MaxExponent
			return b
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.corrupt(append([]byte(nil), base...))
			assertCorrupt := func(what string, err error) {
				t.Helper()
				if err == nil {
					t.Fatalf("%s accepted the corrupted stream", what)
				}
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("%s error %v does not wrap ErrCorrupt", what, err)
				}
			}
			_, err := Decode(mut)
			assertCorrupt("Decode", err)
			_, err = Open(mut)
			assertCorrupt("Open", err)
			_, err = ColumnStats(mut)
			assertCorrupt("ColumnStats", err)
			_, err = NewReader(mut)
			assertCorrupt("NewReader", err)
		})
	}

	// Encode always appends a zone map, so its streams never end with
	// the trailer flag; build a zone-map-less stream to corrupt the
	// flag itself, and separately truncate into the zone-map floats.
	t.Run("trailer flag unknown", func(t *testing.T) {
		col, err := format.Unmarshal(base)
		if err != nil {
			t.Fatal(err)
		}
		col.Zones = nil
		mut := col.Marshal()
		mut[len(mut)-1] = 9
		if _, err := Open(mut); err == nil || !errors.Is(err, ErrCorrupt) {
			t.Fatalf("unknown trailer flag: err = %v", err)
		}
	})
	t.Run("zone map truncated", func(t *testing.T) {
		mut := append([]byte(nil), base...)
		mut = mut[:len(mut)-7] // cut into the zone-map floats
		if _, err := Open(mut); err == nil || !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated zone map: err = %v", err)
		}
	})
}

// TestCorruptStreamsFuzz flips random bytes and asserts the public API
// either rejects the stream with a wrapped ErrCorrupt or decodes it
// without panicking (undetectable payload bit flips may legally change
// values).
func TestCorruptStreamsFuzz(t *testing.T) {
	base := Encode(decimalColumn(2))
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), base...)
		for f := 0; f < 1+r.Intn(3); f++ {
			mut[r.Intn(len(mut))] ^= byte(1 + r.Intn(255))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: panic %v", trial, p)
				}
			}()
			got, err := Decode(mut)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("trial %d: error %v does not wrap ErrCorrupt", trial, err)
				}
				return
			}
			_ = got
		}()
	}

	// Truncations at every length must be rejected (a valid stream has
	// no proper prefix that is also valid) — and must never panic.
	for cut := 0; cut < len(base); cut++ {
		if _, err := Decode(base[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
}
