package alp

import "github.com/goalp/alp/internal/format"

// Float32 support (paper §4.4): the same decimal encoding with the
// float32 rounding sweet spot, and ALP_rd-32 for high-precision data
// such as ML model weights.

// Encode32 compresses float32 values and returns a self-describing byte
// stream.
func Encode32(values []float32) []byte {
	return format.EncodeColumn32(values).Marshal()
}

// Decode32 decompresses a stream produced by Encode32.
func Decode32(data []byte) ([]float32, error) {
	col, err := format.Unmarshal32(data)
	if err != nil {
		return nil, err
	}
	return col.Decode(), nil
}

// Column32 provides random access into a compressed float32 column.
type Column32 struct {
	col     *format.Column32
	scratch []int64
}

// Compress32 encodes float32 values into an in-memory column.
func Compress32(values []float32) *Column32 {
	return &Column32{col: format.EncodeColumn32(values), scratch: make([]int64, VectorSize)}
}

// Open32 parses a compressed float32 stream for random access.
func Open32(data []byte) (*Column32, error) {
	col, err := format.Unmarshal32(data)
	if err != nil {
		return nil, err
	}
	return &Column32{col: col, scratch: make([]int64, VectorSize)}, nil
}

// Bytes serializes the column.
func (c *Column32) Bytes() []byte { return c.col.Marshal() }

// Len returns the number of values in the column.
func (c *Column32) Len() int { return c.col.N }

// Values decompresses the whole column.
func (c *Column32) Values() []float32 { return c.col.Decode() }

// BitsPerValue reports the compression ratio in bits per value
// (uncompressed float32 data is 32 bits per value).
func (c *Column32) BitsPerValue() float64 { return c.col.BitsPerValue() }

// UsedRD reports whether any row-group used the ALP_rd scheme.
func (c *Column32) UsedRD() bool { return c.col.UsedRD() }
