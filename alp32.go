package alp

import "github.com/goalp/alp/internal/format"

// Float32 support (paper §4.4): the same decimal encoding with the
// float32 rounding sweet spot, and ALP_rd-32 for high-precision data
// such as ML model weights.

// Encode32 compresses float32 values and returns a self-describing byte
// stream, using one encode worker per CPU for columns spanning more
// than one row-group (see Encode32Parallel).
func Encode32(values []float32) []byte {
	return Encode32Parallel(values, 0)
}

// Encode32Parallel is Encode32 with an explicit worker count: the same
// bounded row-group pipeline as EncodeParallel, with byte-identical
// output at every worker count. workers <= 0 means one worker per CPU;
// 1 forces the serial path.
func Encode32Parallel(values []float32, workers int) []byte {
	return format.EncodeColumn32Parallel(values, workers).Marshal()
}

// Decode32 decompresses a stream produced by Encode32, using one decode
// worker per CPU (see Decode32Parallel).
func Decode32(data []byte) ([]float32, error) {
	return Decode32Parallel(data, 0)
}

// Decode32Parallel is Decode32 with an explicit worker count; the
// result is bit-identical at every worker count. workers <= 0 means
// one worker per CPU; 1 forces the serial path.
func Decode32Parallel(data []byte, workers int) ([]float32, error) {
	col, err := format.Unmarshal32(data)
	if err != nil {
		return nil, err
	}
	return col.DecodeParallel(workers), nil
}

// Column32 provides random access into a compressed float32 column.
type Column32 struct {
	col     *format.Column32
	scratch []int64
}

// Compress32 encodes float32 values into an in-memory column.
func Compress32(values []float32) *Column32 {
	return &Column32{col: format.EncodeColumn32(values), scratch: make([]int64, VectorSize)}
}

// Open32 parses a compressed float32 stream for random access.
func Open32(data []byte) (*Column32, error) {
	col, err := format.Unmarshal32(data)
	if err != nil {
		return nil, err
	}
	return &Column32{col: col, scratch: make([]int64, VectorSize)}, nil
}

// Bytes serializes the column.
func (c *Column32) Bytes() []byte { return c.col.Marshal() }

// Len returns the number of values in the column.
func (c *Column32) Len() int { return c.col.N }

// Values decompresses the whole column, using one decode worker per
// CPU for columns spanning more than one row-group.
func (c *Column32) Values() []float32 { return c.col.DecodeParallel(0) }

// ValuesParallel decompresses the whole column with an explicit worker
// count; the result is bit-identical at every worker count.
func (c *Column32) ValuesParallel(workers int) []float32 { return c.col.DecodeParallel(workers) }

// BitsPerValue reports the compression ratio in bits per value
// (uncompressed float32 data is 32 bits per value).
func (c *Column32) BitsPerValue() float64 { return c.col.BitsPerValue() }

// UsedRD reports whether any row-group used the ALP_rd scheme.
func (c *Column32) UsedRD() bool { return c.col.UsedRD() }
