// Typed access to the server's self-telemetry history
// (GET /v1/metrics/history): list the recorded series and range-query
// one of them. Bucket values ride the wire as shortest-round-trip
// strings and are parsed back with strconv.ParseFloat, so the float64s
// a caller sees are bit-identical to the ones the server's store
// aggregated.
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// HistoryPoint is one step bucket of a metrics-history query: the
// bucket start (unix microseconds), the aggregate value, and how many
// scrape samples contributed.
type HistoryPoint struct {
	TsUs  int64
	Value float64
	Count int64
}

// HistoryResult is a decoded range query.
type HistoryResult struct {
	Metric  string
	Agg     string
	SinceUs int64
	UntilUs int64
	StepUs  int64
	Points  []HistoryPoint
}

// HistoryStats mirrors the server's history-store footprint report.
type HistoryStats struct {
	Series         int     `json:"series"`
	Scrapes        int64   `json:"scrapes"`
	SealedWindows  int     `json:"sealed_windows"`
	SealedSamples  int64   `json:"sealed_samples"`
	HotSamples     int     `json:"hot_samples"`
	SealedBytes    int64   `json:"sealed_bytes"`
	RetentionBytes int64   `json:"retention_bytes"`
	Evictions      int64   `json:"evictions"`
	BitsPerValue   float64 `json:"bits_per_value"`
	EarliestUs     int64   `json:"earliest_us"`
	LatestUs       int64   `json:"latest_us"`
	IntervalMs     int64   `json:"interval_ms"`
	WindowSamples  int     `json:"window_samples"`
}

// historyWire matches the server's response shape; values are strings
// for exact float64 round-tripping.
type historyWire struct {
	Metric  string `json:"metric"`
	Agg     string `json:"agg"`
	SinceUs int64  `json:"since_us"`
	UntilUs int64  `json:"until_us"`
	StepUs  int64  `json:"step_us"`
	Points  []struct {
		TsUs  int64  `json:"ts_us"`
		Value string `json:"value"`
		Count int64  `json:"count"`
	} `json:"points"`
}

// MetricsSeries lists the series the server's history recorder tracks,
// plus the store's footprint. A server running without
// -metrics-history returns an APIError with StatusCode 404.
func (c *Client) MetricsSeries(ctx context.Context) ([]string, HistoryStats, error) {
	payload, _, err := c.do(ctx, http.MethodGet, "/v1/metrics/history", nil, nil, "", "")
	if err != nil {
		return nil, HistoryStats{}, err
	}
	var out struct {
		Series []string     `json:"series"`
		Stats  HistoryStats `json:"stats"`
	}
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, HistoryStats{}, fmt.Errorf("alpserved: bad history listing: %w", err)
	}
	return out.Series, out.Stats, nil
}

// MetricsHistory range-queries one self-telemetry series. until.IsZero()
// means "now"; step <= 0 means one bucket spanning the whole range; agg
// is sum|count|min|max|avg|rate|last ("" means sum).
func (c *Client) MetricsHistory(ctx context.Context, metric string, since, until time.Time, step time.Duration, agg string) (HistoryResult, error) {
	q := url.Values{}
	q.Set("metric", metric)
	q.Set("since", fmtUnixSeconds(since))
	if !until.IsZero() {
		q.Set("until", fmtUnixSeconds(until))
	}
	if step > 0 {
		q.Set("step", step.String())
	}
	if agg != "" {
		q.Set("agg", agg)
	}
	payload, _, err := c.do(ctx, http.MethodGet, "/v1/metrics/history", q, nil, "", "")
	if err != nil {
		return HistoryResult{}, err
	}
	var wire historyWire
	if err := json.Unmarshal(payload, &wire); err != nil {
		return HistoryResult{}, fmt.Errorf("alpserved: bad history response: %w", err)
	}
	res := HistoryResult{
		Metric:  wire.Metric,
		Agg:     wire.Agg,
		SinceUs: wire.SinceUs,
		UntilUs: wire.UntilUs,
		StepUs:  wire.StepUs,
		Points:  make([]HistoryPoint, 0, len(wire.Points)),
	}
	for i, p := range wire.Points {
		v, err := strconv.ParseFloat(p.Value, 64)
		if err != nil {
			return HistoryResult{}, fmt.Errorf("alpserved: history point %d value %q: %w", i, p.Value, err)
		}
		res.Points = append(res.Points, HistoryPoint{TsUs: p.TsUs, Value: v, Count: p.Count})
	}
	return res, nil
}

// fmtUnixSeconds renders a time as fractional unix seconds with
// microsecond precision — the resolution the history store records at.
func fmtUnixSeconds(t time.Time) string {
	return strconv.FormatFloat(float64(t.UnixMicro())/1e6, 'f', 6, 64)
}
