// Cluster-facing API methods: per-row-group partial aggregates,
// row-group-ranged scans and compressed exports, and compressed
// ingest. These are the calls a scatter-gather coordinator composes —
// a backend answers for the row-groups it holds, the coordinator maps
// local row-group indexes back to global ones and merges in global
// order — but they are plain API surface, usable by any consumer.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"github.com/goalp/alp"
)

// AggPartial is one row-group's partial aggregate from a
// partials=rowgroups query. Sum/Min/Max round-trip bit-exactly through
// the wire's 'g'/-1 string encoding.
type AggPartial struct {
	Sum   float64
	Count int64
	Min   float64
	Max   float64
}

type aggPartialWire struct {
	Sum   string `json:"sum"`
	Count int64  `json:"count"`
	Min   string `json:"min"`
	Max   string `json:"max"`
}

// CompressedContentType marks a body holding a marshaled ALP column
// stream (mirrors the server's constant; the client must not import
// internal packages).
const CompressedContentType = "application/x-alp-column"

// predicateKeys are the query parameters the server's predicate parser
// reads, in canonical order.
var predicateKeys = [...]string{"lo", "ge", "gt", "hi", "le", "lt", "eq"}

// RawPredicate wraps already-encoded predicate query parameters
// verbatim. A proxy or coordinator forwarding a query to backends uses
// this to re-emit the exact strings it received — no parse/re-format
// round-trip, so the number literals the backends parse are
// byte-identical to the ones the caller sent.
func RawPredicate(q url.Values) Predicate {
	p := Predicate{params: url.Values{}}
	for _, k := range predicateKeys {
		if v := q.Get(k); v != "" {
			p.params.Set(k, v)
		}
	}
	return p
}

// rgQuery appends the optional row-group list/range parameters.
func rgList(q url.Values, rgs []int) url.Values {
	if len(rgs) == 0 {
		return q
	}
	s := make([]byte, 0, len(rgs)*4)
	for i, g := range rgs {
		if i > 0 {
			s = append(s, ',')
		}
		s = strconv.AppendInt(s, int64(g), 10)
	}
	q.Set("rgs", string(s))
	return q
}

// AggPartials runs the filtered aggregate in partials mode: one
// aggregate per row-group, each folded from a fresh accumulator in
// position order, plus the number of vectors the server examined. rgs,
// when non-nil, selects a subset of the column's row-groups
// (server-local indexes); the response is in rgs order.
func (c *Client) AggPartials(ctx context.Context, name string, p Predicate, rgs []int) ([]AggPartial, int, error) {
	q := p.query()
	q.Set("partials", "rowgroups")
	rgList(q, rgs)
	payload, _, err := c.do(ctx, http.MethodGet, "/v1/columns/"+url.PathEscape(name)+"/agg", q, nil, "", "")
	if err != nil {
		return nil, 0, err
	}
	var w struct {
		RowGroups []aggPartialWire `json:"rowgroups"`
		Touched   int              `json:"touched"`
	}
	if err := json.Unmarshal(payload, &w); err != nil {
		return nil, 0, fmt.Errorf("alpserved: bad agg partials response: %w", err)
	}
	out := make([]AggPartial, len(w.RowGroups))
	for i, pw := range w.RowGroups {
		out[i].Count = pw.Count
		if out[i].Sum, err = strconv.ParseFloat(pw.Sum, 64); err != nil {
			return nil, 0, fmt.Errorf("alpserved: bad partial sum %q", pw.Sum)
		}
		if out[i].Min, err = strconv.ParseFloat(pw.Min, 64); err != nil {
			return nil, 0, fmt.Errorf("alpserved: bad partial min %q", pw.Min)
		}
		if out[i].Max, err = strconv.ParseFloat(pw.Max, 64); err != nil {
			return nil, 0, fmt.Errorf("alpserved: bad partial max %q", pw.Max)
		}
	}
	return out, w.Touched, nil
}

// CountPartials runs the filtered count in partials mode: one count
// per row-group, rgs selecting a subset as in AggPartials.
func (c *Client) CountPartials(ctx context.Context, name string, p Predicate, rgs []int) ([]int64, error) {
	q := p.query()
	q.Set("partials", "rowgroups")
	rgList(q, rgs)
	payload, _, err := c.do(ctx, http.MethodGet, "/v1/columns/"+url.PathEscape(name)+"/count", q, nil, "", "")
	if err != nil {
		return nil, err
	}
	var w struct {
		RowGroups []int64 `json:"rowgroups"`
	}
	if err := json.Unmarshal(payload, &w); err != nil {
		return nil, fmt.Errorf("alpserved: bad count partials response: %w", err)
	}
	return w.RowGroups, nil
}

// ScanRange fetches the raw scan payload for the row-group range
// [rgLo, rgHi] (inclusive, server-local indexes; pass -1, -1 for the
// whole column) without decoding it, returning the body bytes, the
// response content type and the server's completion-trailer row count.
// compressed selects the framed ALPS stream; false keeps raw
// little-endian float64s. Both encodings are concatenable across
// ranges (ALPS after stripping the 5-byte stream header of subsequent
// chunks), which is what a scatter-gather coordinator does with them.
// A response without the completion trailer is an error — truncation
// never passes silently.
func (c *Client) ScanRange(ctx context.Context, name string, p Predicate, rgLo, rgHi int, compressed bool) ([]byte, string, int, error) {
	q := p.query()
	if rgLo >= 0 {
		q.Set("rg_lo", strconv.Itoa(rgLo))
	}
	if rgHi >= 0 {
		q.Set("rg_hi", strconv.Itoa(rgHi))
	}
	accept := ""
	if compressed {
		accept = alp.ScanStreamContentType
	}
	payload, hdr, err := c.do(ctx, http.MethodGet, "/v1/columns/"+url.PathEscape(name)+"/scan", q, nil, "", accept)
	if err != nil {
		return nil, "", 0, err
	}
	rows := hdr.Get("X-Alp-Scan-Rows")
	if rows == "" {
		return nil, "", 0, errors.New("alpserved: scan response truncated (no completion trailer)")
	}
	n, err := strconv.Atoi(rows)
	if err != nil || n < 0 {
		return nil, "", 0, fmt.Errorf("alpserved: bad scan row trailer %q", rows)
	}
	return payload, hdr.Get("Content-Type"), n, nil
}

// DataRange exports the compressed stream of the row-group range
// [rgLo, rgHi] (inclusive, server-local indexes) as a standalone
// re-based column — the raw-export half of a rebalance move. Pass -1,
// -1 for the column's full stored bytes.
func (c *Client) DataRange(ctx context.Context, name string, rgLo, rgHi int) ([]byte, error) {
	q := url.Values{}
	if rgLo >= 0 {
		q.Set("rg_lo", strconv.Itoa(rgLo))
	}
	if rgHi >= 0 {
		q.Set("rg_hi", strconv.Itoa(rgHi))
	}
	payload, _, err := c.do(ctx, http.MethodGet, "/v1/columns/"+url.PathEscape(name)+"/data", q, nil, "", "")
	return payload, err
}

// IngestCompressed uploads an already-marshaled ALP column stream
// verbatim (Content-Type application/x-alp-column): no server-side
// re-encode, the ingest half of a rebalance move. The server validates
// the stream before binding it.
func (c *Client) IngestCompressed(ctx context.Context, name string, data []byte) (ColumnInfo, error) {
	payload, _, err := c.do(ctx, http.MethodPost, "/v1/columns/"+url.PathEscape(name), nil, data, CompressedContentType, "")
	if err != nil {
		return ColumnInfo{}, err
	}
	var info ColumnInfo
	if err := json.Unmarshal(payload, &info); err != nil {
		return ColumnInfo{}, fmt.Errorf("alpserved: bad ingest response: %w", err)
	}
	return info, nil
}
