// Package client is the typed Go client for alpserved, the ALP
// compressed-column service. It speaks the service's HTTP API with a
// retry policy tuned to the server's load-shedding behavior: 429s
// (shed load) and 503s (draining) honor Retry-After, other 5xx and
// transport errors back off exponentially with jitter, and every
// attempt propagates the caller's context. Columns can be queried
// server-side (Agg, Count, Scan) or shipped in their encoded form and
// decoded locally (Values, Vector) — the thin-client path where the
// server never converts integers back to floats.
package client

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/goalp/alp"
	"github.com/goalp/alp/internal/obs"
)

// Client talks to one alpserved base URL. It is safe for concurrent
// use.
type Client struct {
	base       string
	hc         *http.Client
	retryLimit int
	backoff    time.Duration
	maxWait    time.Duration

	rngMu sync.Mutex
	rng   *rand.Rand

	// Retry-behavior counters, read via Stats.
	calls     atomic.Int64
	attempts  atomic.Int64
	retries   atomic.Int64
	shed      atomic.Int64
	serverErr atomic.Int64
	transport atomic.Int64
	backoffNs atomic.Int64
}

// RequestIDHeader is the header carrying the request ID the client
// attaches to every attempt of a call (all retries of one call share
// an ID, so server-side access-log lines correlate). The server echoes
// the effective ID back on the response.
const RequestIDHeader = "X-Alp-Request-Id"

// Stats is a point-in-time snapshot of the client's retry behavior —
// the consumer-side view of the server's load shedding.
type Stats struct {
	// Calls is the number of API calls issued (one per do, however many
	// attempts each took).
	Calls int64
	// Attempts is the number of HTTP attempts, including first tries.
	Attempts int64
	// Retries is the number of attempts beyond each call's first.
	Retries int64
	// Shed counts 429 (shed load) responses.
	Shed int64
	// ServerErrors counts 5xx responses (including 503 draining).
	ServerErrors int64
	// TransportErrors counts attempts that failed below HTTP (refused
	// connections, resets, truncated bodies).
	TransportErrors int64
	// BackoffNs is the total time spent sleeping between attempts, in
	// nanoseconds.
	BackoffNs int64
}

// Stats returns the client's cumulative retry counters. Safe to call
// concurrently with in-flight requests; the fields are read
// individually, so a snapshot taken mid-call may be slightly torn.
func (c *Client) Stats() Stats {
	return Stats{
		Calls:           c.calls.Load(),
		Attempts:        c.attempts.Load(),
		Retries:         c.retries.Load(),
		Shed:            c.shed.Load(),
		ServerErrors:    c.serverErr.Load(),
		TransportErrors: c.transport.Load(),
		BackoffNs:       c.backoffNs.Load(),
	}
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a retryable failure is retried
// (default 4; 0 disables retries).
func WithRetries(n int) Option { return func(c *Client) { c.retryLimit = n } }

// WithBackoff sets the base and cap of the exponential backoff
// schedule (defaults 50ms base, 2s cap). Jitter of up to half the
// computed delay is added so synchronized clients do not retry in
// lockstep.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoff = base; c.maxWait = max }
}

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		hc:         &http.Client{},
		retryLimit: 4,
		backoff:    50 * time.Millisecond,
		maxWait:    2 * time.Second,
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response from the service.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("alpserved: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// retryable reports whether a response status is worth retrying: shed
// load, draining, and transient upstream failures.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusServiceUnavailable,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do runs one API call with retries. body may be nil; it is replayed
// from the byte slice on every attempt. accept, when non-empty, is sent
// as the Accept header on every attempt (content negotiation, e.g. the
// compressed scan stream). The response body bytes are returned for
// 2xx responses.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body []byte, contentType, accept string) ([]byte, http.Header, error) {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	c.calls.Add(1)
	reqID := obs.NewRequestID()
	var lastErr error
	for attempt := 0; ; attempt++ {
		c.attempts.Add(1)
		if attempt > 0 {
			c.retries.Add(1)
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			return nil, nil, err
		}
		req.Header.Set(RequestIDHeader, reqID)
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := c.hc.Do(req)
		var wait time.Duration
		switch {
		case err != nil:
			// Transport error. Context cancellation is terminal; the
			// rest (refused connections, resets) retry.
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			c.transport.Add(1)
			lastErr = err
			wait = c.delay(attempt, "")
		default:
			payload, readErr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if readErr != nil {
				if ctx.Err() != nil {
					return nil, nil, ctx.Err()
				}
				c.transport.Add(1)
				lastErr = readErr
				wait = c.delay(attempt, "")
				break
			}
			if resp.StatusCode >= 200 && resp.StatusCode < 300 {
				// Trailers are populated once the body has been read to
				// EOF; fold them into the returned headers so callers can
				// verify stream-completion markers (see Scan).
				hdr := resp.Header
				if len(resp.Trailer) > 0 {
					hdr = hdr.Clone()
					for k, vs := range resp.Trailer {
						hdr[k] = vs
					}
				}
				return payload, hdr, nil
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				c.shed.Add(1)
			} else if resp.StatusCode >= 500 {
				c.serverErr.Add(1)
			}
			apiErr := &APIError{Status: resp.StatusCode, Message: errMessage(payload)}
			if !retryable(resp.StatusCode) {
				return nil, nil, apiErr
			}
			lastErr = apiErr
			wait = c.delay(attempt, resp.Header.Get("Retry-After"))
		}
		if attempt >= c.retryLimit {
			return nil, nil, fmt.Errorf("alpserved: giving up after %d attempts: %w", attempt+1, lastErr)
		}
		slept := time.Now()
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			c.backoffNs.Add(time.Since(slept).Nanoseconds())
			return nil, nil, ctx.Err()
		case <-t.C:
			c.backoffNs.Add(time.Since(slept).Nanoseconds())
		}
	}
}

// delay computes the sleep before the next attempt: the server's
// Retry-After when present (still jittered, so a fleet of shed clients
// does not return in lockstep), else exponential backoff, both capped.
func (c *Client) delay(attempt int, retryAfter string) time.Duration {
	// Cap the exponent: past ~20 doublings any real backoff base is far
	// beyond maxWait anyway, and an unclamped shift would overflow into
	// a negative duration on high configured retry counts (50ms << 38
	// wraps), which in turn would panic the jitter draw below.
	if attempt > 20 {
		attempt = 20
	}
	max := c.maxWait
	if max < 0 { // misconfigured: treat as "don't sleep"
		max = 0
	}
	d := c.backoff << uint(attempt)
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d < 0 || d > max {
		d = max
	}
	c.rngMu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d/2 + 1)))
	c.rngMu.Unlock()
	d += jitter
	if d > max {
		d = max
	}
	return d
}

func errMessage(payload []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(payload, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(payload))
}

// ---- predicates ----

// Predicate selects rows server-side. Constructors mirror the engine's
// and reduce to the same closed interval on the server, so a query
// through the client answers exactly like the in-process operators.
// The zero Predicate matches all non-NaN rows.
type Predicate struct {
	params url.Values
}

func pred(key string, x float64) Predicate {
	v := url.Values{}
	v.Set(key, strconv.FormatFloat(x, 'g', -1, 64))
	return Predicate{params: v}
}

// All matches every non-NaN row.
func All() Predicate { return Predicate{} }

// Between matches lo <= v <= hi.
func Between(lo, hi float64) Predicate {
	p := pred("lo", lo)
	p.params.Set("hi", strconv.FormatFloat(hi, 'g', -1, 64))
	return p
}

// GE matches v >= x.
func GE(x float64) Predicate { return pred("ge", x) }

// GT matches v > x.
func GT(x float64) Predicate { return pred("gt", x) }

// LE matches v <= x.
func LE(x float64) Predicate { return pred("le", x) }

// LT matches v < x.
func LT(x float64) Predicate { return pred("lt", x) }

// EQ matches v == x.
func EQ(x float64) Predicate { return pred("eq", x) }

// And intersects two predicates (the server takes the tightest bounds).
func (p Predicate) And(q Predicate) Predicate {
	out := url.Values{}
	for k, vs := range p.params {
		out[k] = vs
	}
	for k, vs := range q.params {
		out[k] = append(out[k], vs...)
	}
	return Predicate{params: out}
}

func (p Predicate) query() url.Values {
	out := url.Values{}
	for k, vs := range p.params {
		out[k] = vs
	}
	return out
}

// ---- API types ----

// ColumnInfo describes one served column.
type ColumnInfo struct {
	Name            string  `json:"name"`
	Values          int     `json:"values"`
	NumVectors      int     `json:"num_vectors"`
	NumRowGroups    int     `json:"num_row_groups"`
	CompressedBytes int     `json:"compressed_bytes"`
	BitsPerValue    float64 `json:"bits_per_value"`
	Exceptions      int     `json:"exceptions"`
	UsedRD          bool    `json:"used_rd"`
}

// Agg carries a filtered aggregate: SUM/COUNT/MIN/MAX of the rows
// matching the predicate, plus the number of vectors whose payload the
// server examined (zone-map-skipped vectors are not touched).
type Agg struct {
	Sum     float64
	Count   int64
	Min     float64
	Max     float64
	Touched int
}

type aggWire struct {
	Sum     string `json:"sum"`
	Count   int64  `json:"count"`
	Min     string `json:"min"`
	Max     string `json:"max"`
	Touched int    `json:"touched"`
}

// ---- API methods ----

// Ingest uploads values as a new column (replacing any column of the
// same name) and returns the stored column's shape. The upload is
// retried as a whole on shed load or transport failure.
func (c *Client) Ingest(ctx context.Context, name string, values []float64) (ColumnInfo, error) {
	body := make([]byte, 8*len(values))
	for i, v := range values {
		binary.LittleEndian.PutUint64(body[i*8:], math.Float64bits(v))
	}
	payload, _, err := c.do(ctx, http.MethodPost, "/v1/columns/"+url.PathEscape(name), nil, body, "application/x-alp-f64le", "")
	if err != nil {
		return ColumnInfo{}, err
	}
	var info ColumnInfo
	if err := json.Unmarshal(payload, &info); err != nil {
		return ColumnInfo{}, fmt.Errorf("alpserved: bad ingest response: %w", err)
	}
	return info, nil
}

// Agg runs SELECT SUM, COUNT, MIN, MAX WHERE p server-side with
// encoded-domain pushdown. With the server's default single-threaded
// scan the result is bit-identical to evaluating the same predicate
// in-process over the same values.
func (c *Client) Agg(ctx context.Context, name string, p Predicate) (Agg, error) {
	payload, _, err := c.do(ctx, http.MethodGet, "/v1/columns/"+url.PathEscape(name)+"/agg", p.query(), nil, "", "")
	if err != nil {
		return Agg{}, err
	}
	var w aggWire
	if err := json.Unmarshal(payload, &w); err != nil {
		return Agg{}, fmt.Errorf("alpserved: bad agg response: %w", err)
	}
	out := Agg{Count: w.Count, Touched: w.Touched}
	if out.Sum, err = strconv.ParseFloat(w.Sum, 64); err != nil {
		return Agg{}, fmt.Errorf("alpserved: bad agg sum %q", w.Sum)
	}
	if out.Min, err = strconv.ParseFloat(w.Min, 64); err != nil {
		return Agg{}, fmt.Errorf("alpserved: bad agg min %q", w.Min)
	}
	if out.Max, err = strconv.ParseFloat(w.Max, 64); err != nil {
		return Agg{}, fmt.Errorf("alpserved: bad agg max %q", w.Max)
	}
	return out, nil
}

// Count runs SELECT COUNT(*) WHERE p server-side; on pushdown-capable
// vectors no qualifying row is materialized at all.
func (c *Client) Count(ctx context.Context, name string, p Predicate) (int64, error) {
	payload, _, err := c.do(ctx, http.MethodGet, "/v1/columns/"+url.PathEscape(name)+"/count", p.query(), nil, "", "")
	if err != nil {
		return 0, err
	}
	var w struct {
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(payload, &w); err != nil {
		return 0, fmt.Errorf("alpserved: bad count response: %w", err)
	}
	return w.Count, nil
}

// Scan returns the rows matching p, in position order, filtered
// server-side, bit-identical to filtering the decoded column locally.
// It negotiates the compressed selection-aware stream (Accept:
// application/x-alp-scan): the server ships framed per-vector payloads
// — stored envelopes with selection bitmaps, re-packed ALP vectors, or
// raw float64s, whichever is smallest — and the client decodes them
// with the fused unpack+gather kernels, so wire bytes track compressed
// size rather than 8 bytes per row. A server that does not speak the
// compressed encoding answers with raw float64s, which decode the same
// way ScanRaw does. Either way the server frames completion with a
// trailing row count (written only when the scan ran to the end) and
// aborts the connection if its deadline fires mid-stream, so a
// truncated or corrupted response surfaces as an error here — never as
// a silently partial result.
func (c *Client) Scan(ctx context.Context, name string, p Predicate) ([]float64, error) {
	return c.scan(ctx, name, p, alp.ScanStreamContentType)
}

// ScanRaw runs the same server-side filtered scan over the original
// uncompressed wire encoding: raw little-endian float64s, one per
// selected row. It exists for old servers and as the differential
// comparand for the compressed stream.
func (c *Client) ScanRaw(ctx context.Context, name string, p Predicate) ([]float64, error) {
	return c.scan(ctx, name, p, "")
}

func (c *Client) scan(ctx context.Context, name string, p Predicate, accept string) ([]float64, error) {
	payload, hdr, err := c.do(ctx, http.MethodGet, "/v1/columns/"+url.PathEscape(name)+"/scan", p.query(), nil, "", accept)
	if err != nil {
		return nil, err
	}
	var out []float64
	// The response Content-Type — not the request Accept — decides the
	// decoder, so a server that ignores the negotiation still decodes
	// correctly.
	if ct := hdr.Get("Content-Type"); ct == alp.ScanStreamContentType {
		if out, err = alp.DecodeScanStream(payload); err != nil {
			return nil, fmt.Errorf("alpserved: scan stream: %w", err)
		}
	} else if out, err = decodeF64LE(payload); err != nil {
		return nil, err
	}
	rows := hdr.Get("X-Alp-Scan-Rows")
	if rows == "" {
		return nil, errors.New("alpserved: scan response truncated (no completion trailer)")
	}
	if n, err := strconv.Atoi(rows); err != nil || n != len(out) {
		return nil, fmt.Errorf("alpserved: scan returned %d rows, server sent %s", len(out), rows)
	}
	return out, nil
}

// Compressed fetches the column's full ALP stream — the bytes the
// server stores, usable with alp.Open / alp.Decode.
func (c *Client) Compressed(ctx context.Context, name string) ([]byte, error) {
	payload, _, err := c.do(ctx, http.MethodGet, "/v1/columns/"+url.PathEscape(name)+"/data", nil, nil, "", "")
	return payload, err
}

// Values fetches the column in compressed form and decodes it locally:
// the wire carries ALP-encoded bytes (typically a fraction of the raw
// size), never decoded floats.
func (c *Client) Values(ctx context.Context, name string) ([]float64, error) {
	data, err := c.Compressed(ctx, name)
	if err != nil {
		return nil, err
	}
	return alp.Decode(data)
}

// Vector fetches one encoded vector and decodes it locally. The server
// ships the vector's packed payload verbatim.
func (c *Client) Vector(ctx context.Context, name string, i int) ([]float64, error) {
	payload, _, err := c.do(ctx, http.MethodGet,
		"/v1/columns/"+url.PathEscape(name)+"/vectors/"+strconv.Itoa(i), nil, nil, "", "")
	if err != nil {
		return nil, err
	}
	dst := make([]float64, alp.VectorSize)
	n, err := alp.DecodeEncodedVector(payload, dst)
	if err != nil {
		return nil, err
	}
	return dst[:n], nil
}

// Info fetches the column's shape.
func (c *Client) Info(ctx context.Context, name string) (ColumnInfo, error) {
	payload, _, err := c.do(ctx, http.MethodGet, "/v1/columns/"+url.PathEscape(name), nil, nil, "", "")
	if err != nil {
		return ColumnInfo{}, err
	}
	var info ColumnInfo
	if err := json.Unmarshal(payload, &info); err != nil {
		return ColumnInfo{}, fmt.Errorf("alpserved: bad info response: %w", err)
	}
	return info, nil
}

// List returns the names of the served columns.
func (c *Client) List(ctx context.Context) ([]string, error) {
	payload, _, err := c.do(ctx, http.MethodGet, "/v1/columns", nil, nil, "", "")
	if err != nil {
		return nil, err
	}
	var w struct {
		Columns []string `json:"columns"`
	}
	if err := json.Unmarshal(payload, &w); err != nil {
		return nil, fmt.Errorf("alpserved: bad list response: %w", err)
	}
	return w.Columns, nil
}

// Delete drops a column.
func (c *Client) Delete(ctx context.Context, name string) error {
	_, _, err := c.do(ctx, http.MethodDelete, "/v1/columns/"+url.PathEscape(name), nil, nil, "", "")
	return err
}

// Metrics fetches the server's counter snapshot (the /metrics JSON) as
// a name -> value map; bit_width_hist is omitted.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	payload, _, err := c.do(ctx, http.MethodGet, "/metrics", nil, nil, "", "")
	if err != nil {
		return nil, err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(payload, &raw); err != nil {
		return nil, fmt.Errorf("alpserved: bad metrics response: %w", err)
	}
	out := make(map[string]int64, len(raw))
	for k, v := range raw {
		var n int64
		if json.Unmarshal(v, &n) == nil {
			out[k] = n
		}
	}
	return out, nil
}

// Health reports whether the server is accepting requests (false while
// draining). It probes the readiness endpoint /readyz — the liveness
// probe /healthz stays 200 during a drain. Unlike other calls it never
// retries.
func (c *Client) Health(ctx context.Context) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK, nil
}

func decodeF64LE(payload []byte) ([]float64, error) {
	if len(payload)%8 != 0 {
		return nil, errors.New("alpserved: scan payload not a multiple of 8 bytes")
	}
	out := make([]float64, len(payload)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return out, nil
}
