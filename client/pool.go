// Pool: a health-checked set of alpserved backends behind one
// implementation of probing, circuit breaking and per-backend retry
// isolation. The scatter-gather coordinator fans out over a Pool, but
// nothing in it is coordinator-specific — any consumer talking to more
// than one alpserved shares it.
//
// Isolation is the point. Every backend gets its own Client, so retry
// counters and the exponential backoff schedule are per-backend state:
// a slow or flapping shard inflates only its own backoff, never the
// delay in front of a healthy shard (a shared Client's jittered
// backoff draws would also contend on one rng). Every backend also
// gets its own circuit breaker — consecutive call failures open it,
// calls during the cooldown fail fast with *BackendDownError instead
// of burning the full retry schedule against a dead host, and after
// the cooldown one trial call (or a background /readyz probe) is let
// through to close it again.
package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PoolOptions configures a Pool. The zero value gets sane defaults.
type PoolOptions struct {
	// ClientOptions are applied to every backend's Client (retry
	// count, backoff schedule, HTTP client).
	ClientOptions []Option
	// FailureThreshold is how many consecutive Do failures open a
	// backend's breaker. 0 means 3.
	FailureThreshold int
	// Cooldown is how long an open breaker rejects calls before
	// letting one trial through. 0 means 500ms.
	Cooldown time.Duration
}

func (o PoolOptions) withDefaults() PoolOptions {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 500 * time.Millisecond
	}
	return o
}

// BackendDownError is a call rejected by an open circuit breaker: the
// backend's recent consecutive failures crossed the threshold and the
// cooldown has not elapsed. The caller can fail the backend over
// immediately — no network attempt was made.
type BackendDownError struct {
	URL   string
	Until time.Time // when the breaker lets a trial call through
}

func (e *BackendDownError) Error() string {
	return fmt.Sprintf("alpserved: backend %s circuit open until %s", e.URL, e.Until.Format(time.RFC3339Nano))
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// backend is one pool member: its own Client (isolated retry/backoff
// state), breaker state and last probe result.
type backend struct {
	url string
	c   *Client

	mu       sync.Mutex
	state    breakerState
	fails    int // consecutive Do failures
	openedAt time.Time
	trial    bool // a half-open trial call is in flight

	probeOK atomic.Bool
	opens   atomic.Int64
}

// Pool is a fixed set of backends. Safe for concurrent use.
type Pool struct {
	opts     PoolOptions
	backends []*backend

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewPool returns a pool over the given base URLs. Backends start
// probe-healthy; call Probe or StartProbes to track real readiness.
func NewPool(urls []string, opts PoolOptions) *Pool {
	p := &Pool{opts: opts.withDefaults(), stop: make(chan struct{})}
	for _, u := range urls {
		b := &backend{url: u, c: New(u, p.opts.ClientOptions...)}
		b.probeOK.Store(true)
		p.backends = append(p.backends, b)
	}
	return p
}

// Len returns the number of backends.
func (p *Pool) Len() int { return len(p.backends) }

// URL returns backend i's base URL.
func (p *Pool) URL(i int) string { return p.backends[i].url }

// Client returns backend i's Client directly, bypassing the breaker.
func (p *Pool) Client(i int) *Client { return p.backends[i].c }

// Healthy reports whether backend i is worth routing to: its last
// /readyz probe succeeded and its breaker is not holding calls off.
func (p *Pool) Healthy(i int) bool {
	b := p.backends[i]
	if !b.probeOK.Load() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerOpen || time.Since(b.openedAt) >= p.opts.Cooldown
}

// Do runs fn against backend i's Client under the breaker: an open
// breaker rejects the call with *BackendDownError before any network
// attempt; otherwise fn's outcome feeds the breaker. Cancellation of
// the caller's context is not counted against the backend.
func (p *Pool) Do(ctx context.Context, i int, fn func(*Client) error) error {
	b := p.backends[i]
	if err := p.admit(b); err != nil {
		return err
	}
	err := fn(b.c)
	p.record(b, err, ctx)
	return err
}

func (p *Pool) admit(b *backend) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if until := b.openedAt.Add(p.opts.Cooldown); time.Now().Before(until) {
			return &BackendDownError{URL: b.url, Until: until}
		}
		b.state = breakerHalfOpen
		b.trial = true
		return nil
	default: // half-open
		if b.trial {
			return &BackendDownError{URL: b.url, Until: time.Now().Add(p.opts.Cooldown)}
		}
		b.trial = true
		return nil
	}
}

// countsAsFailure separates "the backend is unwell" from "the backend
// answered": 4xx API errors are healthy responses (a 404 must not open
// the breaker), and the caller abandoning the call is no verdict at
// all.
func countsAsFailure(err error, ctx context.Context) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) && ctx.Err() != nil {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status < 500 && apiErr.Status != 429 {
		return false
	}
	return true
}

func (p *Pool) record(b *backend, err error, ctx context.Context) {
	failed := countsAsFailure(err, ctx)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trial = false
	if !failed {
		// A 4xx closes the breaker too — the backend answered.
		b.state = breakerClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= p.opts.FailureThreshold {
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.fails = 0
		b.opens.Add(1)
	}
}

// Probe checks every backend's /readyz once, concurrently, updating
// probe health. A successful probe of a cooled-down open breaker
// closes it, so recovery does not cost a real request.
func (p *Pool) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range p.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			ok, err := b.c.Health(ctx)
			ok = ok && err == nil
			b.probeOK.Store(ok)
			if !ok {
				return
			}
			b.mu.Lock()
			if b.state == breakerOpen && time.Since(b.openedAt) >= p.opts.Cooldown {
				b.state = breakerClosed
				b.fails = 0
			}
			b.mu.Unlock()
		}(b)
	}
	wg.Wait()
}

// StartProbes probes every backend at the given interval until Close.
func (p *Pool) StartProbes(interval time.Duration) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				p.Probe(ctx)
				cancel()
			}
		}
	}()
}

// Close stops background probing.
func (p *Pool) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// BackendStats is one backend's health and retry-behavior snapshot.
type BackendStats struct {
	URL         string
	ProbeOK     bool
	BreakerOpen bool
	Opens       int64 // times the breaker has opened
	Client      Stats
}

// Stats snapshots every backend.
func (p *Pool) Stats() []BackendStats {
	out := make([]BackendStats, len(p.backends))
	for i, b := range p.backends {
		b.mu.Lock()
		open := b.state == breakerOpen
		b.mu.Unlock()
		out[i] = BackendStats{
			URL:         b.url,
			ProbeOK:     b.probeOK.Load(),
			BreakerOpen: open,
			Opens:       b.opens.Load(),
			Client:      b.c.Stats(),
		}
	}
	return out
}
