package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func poolTestBackends(t *testing.T, handlers ...http.Handler) []string {
	t.Helper()
	urls := make([]string, len(handlers))
	for i, h := range handlers {
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Write([]byte(`{"columns":[]}`))
	})
}

func failHandler(status int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(status)
	})
}

// The breaker opens after FailureThreshold consecutive failures and
// rejects further calls without any network attempt, then lets a
// trial through after the cooldown and closes on success.
func TestPoolBreakerOpensAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	flip := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"columns":[]}`))
	})
	urls := poolTestBackends(t, flip)
	p := NewPool(urls, PoolOptions{
		FailureThreshold: 2,
		Cooldown:         50 * time.Millisecond,
		ClientOptions:    []Option{WithRetries(0)},
	})
	defer p.Close()
	ctx := context.Background()
	list := func() error {
		return p.Do(ctx, 0, func(c *Client) error { _, err := c.List(ctx); return err })
	}

	for i := 0; i < 2; i++ {
		if err := list(); err == nil {
			t.Fatal("expected failure")
		}
	}
	attemptsWhenOpened := p.Stats()[0].Client.Attempts
	var down *BackendDownError
	if err := list(); !errors.As(err, &down) {
		t.Fatalf("expected BackendDownError, got %v", err)
	}
	if got := p.Stats()[0].Client.Attempts; got != attemptsWhenOpened {
		t.Fatalf("open breaker still made %d network attempts", got-attemptsWhenOpened)
	}
	if p.Healthy(0) {
		t.Fatal("open breaker reported healthy")
	}
	if p.Stats()[0].Opens != 1 {
		t.Fatalf("opens = %d, want 1", p.Stats()[0].Opens)
	}

	// After the cooldown the trial call goes through and closes it.
	healthy.Store(true)
	time.Sleep(60 * time.Millisecond)
	if !p.Healthy(0) {
		t.Fatal("cooled-down breaker reported unhealthy")
	}
	if err := list(); err != nil {
		t.Fatalf("trial call failed: %v", err)
	}
	if st := p.Stats()[0]; st.BreakerOpen {
		t.Fatal("breaker still open after successful trial")
	}
}

// A failed half-open trial reopens the breaker immediately.
func TestPoolHalfOpenFailureReopens(t *testing.T) {
	urls := poolTestBackends(t, failHandler(http.StatusInternalServerError))
	p := NewPool(urls, PoolOptions{
		FailureThreshold: 1,
		Cooldown:         30 * time.Millisecond,
		ClientOptions:    []Option{WithRetries(0)},
	})
	defer p.Close()
	ctx := context.Background()
	list := func() error {
		return p.Do(ctx, 0, func(c *Client) error { _, err := c.List(ctx); return err })
	}
	if err := list(); err == nil {
		t.Fatal("expected failure")
	}
	time.Sleep(40 * time.Millisecond)
	if err := list(); err == nil { // trial, fails
		t.Fatal("expected trial failure")
	}
	var down *BackendDownError
	if err := list(); !errors.As(err, &down) {
		t.Fatalf("expected reopened breaker, got %v", err)
	}
	if p.Stats()[0].Opens != 2 {
		t.Fatalf("opens = %d, want 2", p.Stats()[0].Opens)
	}
}

// 4xx responses are answers, not failures: they must not open the
// breaker.
func TestPoolClientErrorsDoNotOpenBreaker(t *testing.T) {
	urls := poolTestBackends(t, failHandler(http.StatusNotFound))
	p := NewPool(urls, PoolOptions{FailureThreshold: 1, ClientOptions: []Option{WithRetries(0)}})
	defer p.Close()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		err := p.Do(ctx, 0, func(c *Client) error { _, err := c.Info(ctx, "missing"); return err })
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
			t.Fatalf("call %d: want 404 APIError, got %v", i, err)
		}
	}
	if st := p.Stats()[0]; st.BreakerOpen || st.Opens != 0 {
		t.Fatalf("4xx opened the breaker: %+v", st)
	}
}

// Probes track /readyz and close a cooled-down breaker without
// spending a real request.
func TestPoolProbes(t *testing.T) {
	var ready atomic.Bool
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			if ready.Load() {
				w.WriteHeader(http.StatusOK)
			} else {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	})
	urls := poolTestBackends(t, h, okHandler())
	p := NewPool(urls, PoolOptions{FailureThreshold: 1, Cooldown: 10 * time.Millisecond, ClientOptions: []Option{WithRetries(0)}})
	defer p.Close()
	ctx := context.Background()

	p.Probe(ctx)
	if p.Healthy(0) {
		t.Fatal("draining backend reported probe-healthy")
	}
	if !p.Healthy(1) {
		t.Fatal("ready backend reported unhealthy")
	}

	// Open 0's breaker, then let a probe close it after cooldown.
	ready.Store(true)
	p.Do(ctx, 0, func(c *Client) error { _, err := c.List(ctx); return err })
	if !p.Stats()[0].BreakerOpen {
		t.Fatal("breaker did not open")
	}
	time.Sleep(15 * time.Millisecond)
	p.Probe(ctx)
	if st := p.Stats()[0]; st.BreakerOpen || !st.ProbeOK {
		t.Fatalf("probe did not recover backend: %+v", st)
	}
}

// Regression test for per-backend retry isolation: a flapping backend
// burns retries and backoff on its own Client only. Before the pool,
// a shared Client meant a slow shard's Retry-After and exponential
// backoff schedule applied to calls bound for healthy shards too.
func TestPoolBackoffIsolation(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	urls := poolTestBackends(t, slow, okHandler())
	p := NewPool(urls, PoolOptions{
		FailureThreshold: 100, // keep the breaker out of this test
		ClientOptions:    []Option{WithRetries(2), WithBackoff(20*time.Millisecond, 100*time.Millisecond)},
	})
	defer p.Close()
	ctx := context.Background()

	// Hammer the shed backend: every call retries with backoff.
	for i := 0; i < 3; i++ {
		if err := p.Do(ctx, 0, func(c *Client) error { _, err := c.List(ctx); return err }); err == nil {
			t.Fatal("shed backend call unexpectedly succeeded")
		}
	}
	shedStats := p.Stats()[0].Client
	if shedStats.Retries == 0 || shedStats.BackoffNs == 0 {
		t.Fatalf("shed backend accumulated no retry state: %+v", shedStats)
	}

	// The healthy backend's Client must be untouched: no retries, no
	// backoff inherited from the sibling, and calls complete fast.
	start := time.Now()
	if err := p.Do(ctx, 1, func(c *Client) error { _, err := c.List(ctx); return err }); err != nil {
		t.Fatalf("healthy backend call failed: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("healthy backend call took %v — inherited a sibling's backoff?", d)
	}
	healthyStats := p.Stats()[1].Client
	if healthyStats.Retries != 0 || healthyStats.BackoffNs != 0 || healthyStats.Shed != 0 {
		t.Fatalf("healthy backend inherited retry state: %+v", healthyStats)
	}
}

// Caller cancellation is no verdict on the backend.
func TestPoolCancellationDoesNotOpenBreaker(t *testing.T) {
	block := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
	urls := poolTestBackends(t, block)
	p := NewPool(urls, PoolOptions{FailureThreshold: 1, ClientOptions: []Option{WithRetries(0)}})
	defer p.Close()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(10 * time.Millisecond)
			cancel()
		}()
		p.Do(ctx, 0, func(c *Client) error { _, err := c.List(ctx); return err })
		cancel()
	}
	if st := p.Stats()[0]; st.BreakerOpen || st.Opens != 0 {
		t.Fatalf("cancellation opened the breaker: %+v", st)
	}
}
