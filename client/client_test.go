package client

import (
	"testing"
	"time"
)

// TestDelayNeverNegative pins the backoff arithmetic at the edges: high
// attempt counts used to overflow the shift into a negative duration,
// which then panicked the jitter draw. Every (attempt, config) pairing
// must yield a delay in [0, maxWait].
func TestDelayNeverNegative(t *testing.T) {
	configs := []struct {
		name      string
		base, max time.Duration
	}{
		{"defaults", 50 * time.Millisecond, 2 * time.Second},
		{"zero base", 0, time.Second},
		{"zero everything", 0, 0},
		{"negative base", -time.Second, time.Second},
		{"negative cap", time.Millisecond, -time.Second},
		{"huge base", 1 << 55 * time.Nanosecond, 2 * time.Second},
	}
	for _, cfg := range configs {
		c := New("http://example", WithBackoff(cfg.base, cfg.max), WithRetries(100))
		for attempt := 0; attempt < 100; attempt++ {
			for _, retryAfter := range []string{"", "0", "3", "junk"} {
				d := c.delay(attempt, retryAfter)
				if d < 0 {
					t.Fatalf("%s: delay(%d, %q) = %v, negative", cfg.name, attempt, retryAfter, d)
				}
				if cfg.max > 0 && d > cfg.max {
					t.Fatalf("%s: delay(%d, %q) = %v exceeds cap %v", cfg.name, attempt, retryAfter, d, cfg.max)
				}
			}
		}
	}
}
