package client

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// TestMetricsHistoryParsing pins the wire contract: query parameters
// the client must send, and exact float64 recovery of the stringly
// values the server emits.
func TestMetricsHistoryParsing(t *testing.T) {
	exact := 0.1 + 0.2 // famously not 0.3: round-trips only via 'g'/-1
	var gotQuery map[string][]string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/metrics/history" {
			t.Errorf("path = %q", r.URL.Path)
		}
		gotQuery = r.URL.Query()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"metric": "server_requests", "agg": "sum",
			"since_us": 100, "until_us": 200, "step_us": 50,
			"points": []map[string]any{
				{"ts_us": 100, "value": strconv.FormatFloat(exact, 'g', -1, 64), "count": 3},
				{"ts_us": 150, "value": "-Inf", "count": 1},
			},
		})
	}))
	defer ts.Close()

	c := New(ts.URL)
	since := time.UnixMicro(1_754_600_000_123_456)
	until := since.Add(time.Minute)
	res, err := c.MetricsHistory(context.Background(), "server_requests", since, until, 10*time.Second, "sum")
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{
		"metric": "server_requests",
		"since":  "1754600000.123456",
		"until":  "1754600060.123456",
		"step":   "10s",
		"agg":    "sum",
	} {
		if got := gotQuery[k]; len(got) != 1 || got[0] != want {
			t.Errorf("query %s = %v, want %q", k, got, want)
		}
	}
	if len(res.Points) != 2 || res.StepUs != 50 {
		t.Fatalf("result = %+v", res)
	}
	if math.Float64bits(res.Points[0].Value) != math.Float64bits(exact) {
		t.Fatalf("value %v did not round-trip %v exactly", res.Points[0].Value, exact)
	}
	if !math.IsInf(res.Points[1].Value, -1) {
		t.Fatalf("±Inf did not survive the wire: %v", res.Points[1].Value)
	}
	if res.Points[0].TsUs != 100 || res.Points[0].Count != 3 {
		t.Fatalf("point 0 = %+v", res.Points[0])
	}
}

func TestMetricsSeriesAndDisabled(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"series": []string{"a", "b"},
			"stats":  map[string]any{"series": 2, "scrapes": 7, "bits_per_value": 1.5},
		})
	}))
	defer ts.Close()
	series, stats, err := New(ts.URL).MetricsSeries(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || stats.Scrapes != 7 || stats.BitsPerValue != 1.5 {
		t.Fatalf("series=%v stats=%+v", series, stats)
	}

	// A recorder-off server answers 404 with a JSON error body; the
	// client surfaces it as an APIError, not a parse failure.
	off := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"metrics history is disabled"}`))
	}))
	defer off.Close()
	_, _, err = New(off.URL, WithRetries(0)).MetricsSeries(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("disabled server error = %v, want 404 APIError", err)
	}
}
