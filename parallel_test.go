package alp

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/goalp/alp/internal/dataset"
)

// workerCounts are the fan-outs every determinism guard checks,
// including counts above the row-group count (clamped) and above this
// machine's CPU count.
var workerCounts = []int{2, 3, 4, 8}

// testColumn synthesizes n values with a mix the encoder has to work
// for: decimals of varying precision with occasional specials, so
// columns span ALP vectors with exceptions.
func testColumn(r *rand.Rand, n int) []float64 {
	values := make([]float64, n)
	for i := range values {
		switch r.Intn(50) {
		case 0:
			values[i] = math.NaN()
		case 1:
			values[i] = math.Inf(1 - 2*r.Intn(2))
		case 2:
			values[i] = math.Copysign(0, -1)
		case 3:
			values[i] = math.Float64frombits(r.Uint64()) // arbitrary bits
		default:
			values[i] = float64(r.Intn(2_000_000)-1_000_000) / 100
		}
	}
	return values
}

// bitsEqual reports bit-exact equality, the codec's correctness bar.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestEncodeParallelByteIdentical is the pipeline's core guard: the
// parallel encode must produce exactly the bytes of the serial encode,
// at every worker count, including partial trailing row-groups and
// vectors.
func TestEncodeParallelByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 1024, RowGroupSize - 1, RowGroupSize, RowGroupSize + 1, 2*RowGroupSize + 513} {
		values := testColumn(r, n)
		serial := EncodeParallel(values, 1)
		for _, w := range workerCounts {
			if got := EncodeParallel(values, w); !bytes.Equal(got, serial) {
				t.Fatalf("n=%d workers=%d: parallel encode differs from serial (%d vs %d bytes)",
					n, w, len(got), len(serial))
			}
		}
		if got := Encode(values); !bytes.Equal(got, serial) {
			t.Fatalf("n=%d: Encode (auto workers) differs from serial", n)
		}
	}
}

// TestDecodeParallelBitIdentical guards the read side: DecodeParallel
// and ValuesParallel must reproduce the input bit-exactly at every
// worker count.
func TestDecodeParallelBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1023, RowGroupSize + 4096} {
		values := testColumn(r, n)
		data := Encode(values)
		for _, w := range append([]int{1}, workerCounts...) {
			got, err := DecodeParallel(data, w)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
			if !bitsEqual(got, values) {
				t.Fatalf("n=%d workers=%d: DecodeParallel not bit-exact", n, w)
			}
		}
		col, err := Open(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range append([]int{1}, workerCounts...) {
			if !bitsEqual(col.ValuesParallel(w), values) {
				t.Fatalf("n=%d workers=%d: ValuesParallel not bit-exact", n, w)
			}
		}
	}
}

// TestEncodeParallel32ByteIdentical covers the float32 path of the
// pipeline: byte-identical encode, bit-exact parallel decode.
func TestEncodeParallel32ByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 1025, RowGroupSize + 2000} {
		values := make([]float32, n)
		for i := range values {
			switch r.Intn(40) {
			case 0:
				values[i] = float32(math.NaN())
			case 1:
				values[i] = math.Float32frombits(r.Uint32())
			default:
				values[i] = float32(r.Intn(200_000)-100_000) / 100
			}
		}
		serial := Encode32Parallel(values, 1)
		for _, w := range workerCounts {
			if got := Encode32Parallel(values, w); !bytes.Equal(got, serial) {
				t.Fatalf("n=%d workers=%d: parallel encode32 differs from serial", n, w)
			}
			got, err := Decode32Parallel(serial, w)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(values[i]) {
					t.Fatalf("n=%d workers=%d: value %d not bit-exact", n, w, i)
				}
			}
		}
		if got := Encode32(values); !bytes.Equal(got, serial) {
			t.Fatalf("n=%d: Encode32 (auto workers) differs from serial", n)
		}
	}
}

// TestWriterParallelByteIdentical: the parallel streaming Writer must
// serialize exactly the bytes of the serial Writer and of one-shot
// Encode, across chunked writes that straddle row-group boundaries.
func TestWriterParallelByteIdentical(t *testing.T) {
	d, _ := dataset.ByName("City-Temp")
	src := d.Generate(2*RowGroupSize + 30_000) // 3 row-groups, last partial
	serial := Encode(src)

	for _, w := range workerCounts {
		pw := NewWriterParallel(WriterOptions{Workers: w})
		for off := 0; off < len(src); off += 9973 {
			hi := off + 9973
			if hi > len(src) {
				hi = len(src)
			}
			pw.Write(src[off:hi])
		}
		if pw.Len() != len(src) {
			t.Fatalf("workers=%d: Len = %d, want %d", w, pw.Len(), len(src))
		}
		if got := pw.Close(); !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d: parallel writer output differs from Encode", w)
		}
	}

	// Workers <= 1 resolves to the plain serial writer.
	sw := NewWriterParallel(WriterOptions{Workers: 1})
	sw.Write(src)
	if got := sw.Close(); !bytes.Equal(got, serial) {
		t.Fatal("workers=1 writer output differs from Encode")
	}
}

// propertyLengths are the vector- and row-group-boundary lengths every
// property-test case draws from: empty, single value, one value around
// the vector boundary, and one around the row-group boundary.
var propertyLengths = []int{0, 1, 1023, 1024, 1025, RowGroupSize - 1, RowGroupSize, RowGroupSize + 1}

// TestPropertyRoundTrip runs randomized round-trip cases from a fixed
// seed: every case must round-trip bit-exactly (math.Float64bits
// equality) through both the serial and the parallel encoder, and both
// encoders must agree byte-for-byte. Lengths cycle through every
// vector-boundary size; row-group-sized cases are sampled at a lower
// rate to keep the suite fast while still crossing the boundary many
// times.
func TestPropertyRoundTrip(t *testing.T) {
	cases := 1000
	if testing.Short() {
		cases = 150
	}
	r := rand.New(rand.NewSource(42))
	big := 0
	for i := 0; i < cases; i++ {
		var n int
		if r.Intn(100) < 5 {
			n = propertyLengths[5+r.Intn(3)] // RowGroupSize-1 .. +1
			big++
		} else {
			n = propertyLengths[r.Intn(5)] // 0 .. 1025
		}
		values := testColumn(r, n)
		workers := 2 + r.Intn(7)

		serial := EncodeParallel(values, 1)
		parallel := EncodeParallel(values, workers)
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("case %d (n=%d, workers=%d): serial and parallel bytes differ", i, n, workers)
		}
		got, err := DecodeParallel(serial, 1)
		if err != nil {
			t.Fatalf("case %d: serial decode: %v", i, err)
		}
		if !bitsEqual(got, values) {
			t.Fatalf("case %d (n=%d): serial round-trip not bit-exact", i, n)
		}
		got, err = DecodeParallel(parallel, workers)
		if err != nil {
			t.Fatalf("case %d: parallel decode: %v", i, err)
		}
		if !bitsEqual(got, values) {
			t.Fatalf("case %d (n=%d, workers=%d): parallel round-trip not bit-exact", i, n, workers)
		}
	}
	if !testing.Short() && big == 0 {
		t.Fatal("no row-group-boundary case sampled; widen the rate")
	}
}

// benchParallelValues spans 4 row-groups so multi-worker runs have
// parallelism to claim.
func benchParallelValues() []float64 {
	d, _ := dataset.ByName("City-Temp")
	return d.Generate(4 * RowGroupSize)
}

func BenchmarkEncodeParallel(b *testing.B) {
	values := benchParallelValues()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(values) * 8))
			for i := 0; i < b.N; i++ {
				benchSink = EncodeParallel(values, w)
			}
		})
	}
}

func BenchmarkDecodeParallel(b *testing.B) {
	values := benchParallelValues()
	data := Encode(values)
	var sink []float64
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(values) * 8))
			for i := 0; i < b.N; i++ {
				sink, _ = DecodeParallel(data, w)
			}
		})
	}
	_ = sink
}

func BenchmarkWriterParallel(b *testing.B) {
	values := benchParallelValues()
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(values) * 8))
			for i := 0; i < b.N; i++ {
				pw := NewWriterParallel(WriterOptions{Workers: w})
				pw.Write(values)
				benchSink = pw.Close()
			}
		})
	}
}
