package alp

import (
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/pipeline"
	"github.com/goalp/alp/internal/vector"
)

// Writer compresses a stream of float64 values incrementally: values
// are buffered until a full row-group (RowGroupSize values) is
// available, then sampled and encoded; Close encodes the remainder and
// serializes the column.
//
// With NewWriter the encode is serial and memory use is bounded by one
// raw row-group plus the compressed output. With NewWriterParallel,
// full row-groups are handed to a bounded worker pool: Write blocks
// while workers+1 raw row-groups are in flight, so memory stays
// bounded no matter how fast the producer writes, and Close reassembles
// the results in row-group order — the serialized stream is
// byte-identical to the serial Writer's and to Encode's.
type Writer struct {
	pending []float64
	groups  []format.RowGroup
	zones   format.ZoneMap
	n       int
	closed  bool
	out     []byte // serialized column, cached by the first Close

	pool *pipeline.Pool[groupJob, groupResult]
}

// groupJob is one raw row-group handed to the encode pool. The values
// slice is owned by the job: it is copied out of the Writer's pending
// buffer at submission, so at most workers+1 raw row-group copies
// exist at any time.
type groupJob struct {
	values []float64
	start  int
}

// groupResult carries a compressed row-group and its per-vector zone
// map back to Close. Row-groups are vector-aligned, so concatenating
// per-group zone maps in order reproduces the whole-column zone map.
type groupResult struct {
	rg format.RowGroup
	zm *format.ZoneMap
}

// NewWriter returns a serial Writer ready for use. The zero value is
// also usable.
func NewWriter() *Writer { return &Writer{} }

// WriterOptions configures a Writer.
type WriterOptions struct {
	// Workers is the number of row-group encode workers: 0 or negative
	// means one per CPU, 1 selects the serial path (same as NewWriter).
	// Values beyond maxWriterWorkers are clamped — each worker holds a
	// raw row-group copy, so unbounded counts would turn a config typo
	// into a memory blow-up.
	Workers int
}

// maxWriterWorkers bounds the encode pool. One worker pins ~800 KB of
// raw row-group, so the cap also caps in-flight memory.
const maxWriterWorkers = 1024

// NewWriterParallel returns a Writer whose row-groups are encoded by a
// bounded worker pool. The serialized output is byte-identical to the
// serial Writer's; only throughput and (bounded) memory use differ.
func NewWriterParallel(opt WriterOptions) *Writer {
	workers := pipeline.Workers(opt.Workers)
	if workers > maxWriterWorkers {
		workers = maxWriterWorkers
	}
	if workers <= 1 {
		return NewWriter()
	}
	w := &Writer{}
	w.pool = pipeline.NewPool(workers, func(_ int, j groupJob) groupResult {
		return groupResult{
			rg: format.EncodeRowGroup(j.values, j.start),
			zm: format.BuildZoneMap(j.values),
		}
	})
	return w
}

// Write buffers values for compression. It may be called any number of
// times with any slice sizes; full row-groups are compressed eagerly
// (or submitted to the encode pool, blocking while the bounded
// in-flight window is full). Write panics if called after Close.
func (w *Writer) Write(values []float64) {
	if w.closed {
		panic("alp: Write after Close")
	}
	w.pending = append(w.pending, values...)
	for len(w.pending) >= vector.RowGroupSize {
		w.flush(w.pending[:vector.RowGroupSize])
		w.pending = w.pending[vector.RowGroupSize:]
	}
}

func (w *Writer) flush(group []float64) {
	if w.pool != nil {
		w.pool.Submit(groupJob{values: append([]float64(nil), group...), start: w.n})
		w.n += len(group)
		return
	}
	w.groups = append(w.groups, format.EncodeRowGroup(group, w.n))
	zm := format.BuildZoneMap(group)
	w.appendZones(zm)
	w.n += len(group)
}

func (w *Writer) appendZones(zm *format.ZoneMap) {
	w.zones.Min = append(w.zones.Min, zm.Min...)
	w.zones.Max = append(w.zones.Max, zm.Max...)
	w.zones.HasValues = append(w.zones.HasValues, zm.HasValues...)
}

// Len returns the number of values written so far.
func (w *Writer) Len() int { return w.n + len(w.pending) }

// Close compresses any buffered remainder, waits for in-flight
// row-groups, and returns the serialized column. After the first call
// the Writer only serves Close: Write panics, and every further Close
// returns the same byte slice the first one produced (it is cached,
// not re-encoded).
func (w *Writer) Close() []byte {
	if w.closed {
		return w.out
	}
	if len(w.pending) > 0 {
		w.flush(w.pending)
		w.pending = nil
	}
	if w.pool != nil {
		for _, r := range w.pool.Finish() {
			w.groups = append(w.groups, r.rg)
			w.appendZones(r.zm)
		}
		w.pool = nil
	}
	w.closed = true
	col := &format.Column{N: w.n, RowGroups: w.groups, Zones: &w.zones}
	w.out = col.Marshal()
	return w.out
}

// Abort discards the Writer without producing output: in-flight
// row-groups are drained and dropped, the encode pool's worker
// goroutines exit, and buffered state is released. After Abort the
// Writer is closed — Write panics and Close returns nil. Abort after
// Close (or a second Abort) is a no-op, so `defer w.Abort()` is a safe
// teardown on error paths that may or may not reach Close.
func (w *Writer) Abort() {
	if w.closed {
		return
	}
	w.closed = true
	w.pending = nil
	w.groups = nil
	if w.pool != nil {
		w.pool.Finish()
		w.pool = nil
	}
}

// Reader decompresses a column stream vector-at-a-time, the access
// pattern of a vectorized scan operator.
type Reader struct {
	col     *Column
	next    int
	scratch []int64
}

// NewReader parses data and returns a vector-at-a-time reader.
func NewReader(data []byte) (*Reader, error) {
	col, err := Open(data)
	if err != nil {
		return nil, err
	}
	return &Reader{col: col, scratch: make([]int64, vector.Size)}, nil
}

// Len returns the total number of values in the stream.
func (r *Reader) Len() int { return r.col.Len() }

// Next decompresses the next vector into dst and returns the number of
// values written, or 0 when the stream is exhausted. dst must have room
// for VectorSize values.
func (r *Reader) Next(dst []float64) (int, error) {
	if r.next >= r.col.NumVectors() {
		return 0, nil
	}
	n, err := r.col.ReadVector(r.next, dst)
	if err != nil {
		return 0, err
	}
	r.next++
	return n, nil
}

// Reset rewinds the reader to the first vector.
func (r *Reader) Reset() { r.next = 0 }
