package alp

import (
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/vector"
)

// Writer compresses a stream of float64 values incrementally: values
// are buffered until a full row-group (RowGroupSize values) is
// available, then sampled and encoded; Close encodes the remainder and
// serializes the column. Memory use is bounded by one raw row-group
// plus the compressed output.
type Writer struct {
	pending []float64
	groups  []format.RowGroup
	zones   format.ZoneMap
	n       int
	closed  bool
}

// NewWriter returns a Writer ready for use. The zero value is also
// usable.
func NewWriter() *Writer { return &Writer{} }

// Write buffers values for compression. It may be called any number of
// times with any slice sizes; full row-groups are compressed eagerly.
// Write panics if called after Close.
func (w *Writer) Write(values []float64) {
	if w.closed {
		panic("alp: Write after Close")
	}
	w.pending = append(w.pending, values...)
	for len(w.pending) >= vector.RowGroupSize {
		w.flush(w.pending[:vector.RowGroupSize])
		w.pending = w.pending[vector.RowGroupSize:]
	}
}

func (w *Writer) flush(group []float64) {
	w.groups = append(w.groups, format.EncodeRowGroup(group, w.n))
	zm := format.BuildZoneMap(group)
	w.zones.Min = append(w.zones.Min, zm.Min...)
	w.zones.Max = append(w.zones.Max, zm.Max...)
	w.zones.HasValues = append(w.zones.HasValues, zm.HasValues...)
	w.n += len(group)
}

// Len returns the number of values written so far.
func (w *Writer) Len() int { return w.n + len(w.pending) }

// Close compresses any buffered remainder and returns the serialized
// column. The Writer must not be used afterwards.
func (w *Writer) Close() []byte {
	if !w.closed {
		if len(w.pending) > 0 {
			w.flush(w.pending)
			w.pending = nil
		}
		w.closed = true
	}
	col := &format.Column{N: w.n, RowGroups: w.groups, Zones: &w.zones}
	return col.Marshal()
}

// Reader decompresses a column stream vector-at-a-time, the access
// pattern of a vectorized scan operator.
type Reader struct {
	col     *Column
	next    int
	scratch []int64
}

// NewReader parses data and returns a vector-at-a-time reader.
func NewReader(data []byte) (*Reader, error) {
	col, err := Open(data)
	if err != nil {
		return nil, err
	}
	return &Reader{col: col, scratch: make([]int64, vector.Size)}, nil
}

// Len returns the total number of values in the stream.
func (r *Reader) Len() int { return r.col.Len() }

// Next decompresses the next vector into dst and returns the number of
// values written, or 0 when the stream is exhausted. dst must have room
// for VectorSize values.
func (r *Reader) Next(dst []float64) (int, error) {
	if r.next >= r.col.NumVectors() {
		return 0, nil
	}
	n, err := r.col.ReadVector(r.next, dst)
	if err != nil {
		return 0, err
	}
	r.next++
	return n, nil
}

// Reset rewinds the reader to the first vector.
func (r *Reader) Reset() { r.next = 0 }
