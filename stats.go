package alp

import (
	"fmt"

	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/obs"
)

// ---- runtime metrics (process-wide counters) ----

// Stats is a point-in-time snapshot of the codec-wide runtime metrics:
// every adaptive decision ALP makes while encoding, decoding and
// scanning. Collection is off by default; call EnableStats to start
// counting. All fields are plain values — a Stats is safe to copy,
// compare and serialize (its exported fields make it directly usable
// with expvar.Func).
type Stats struct {
	// Encode side.
	RowGroupsALP     int64 // row-groups encoded with the decimal scheme
	RowGroupsRD      int64 // row-groups that fell back to ALP_rd
	VectorsEncoded   int64 // vectors encoded (both schemes)
	EncodeExceptions int64 // exception slots written during encode
	EncodeNs         int64 // wall ns spent encoding row-groups
	EncodeValues     int64 // values encoded

	// Second-stage sampling (per-vector (e,f) choice).
	SecondStageSkips      int64 // vectors that needed no sampling (1 candidate)
	SecondStageEarlyExits int64 // greedy searches that exited early
	SecondStageTried      int64 // candidate combinations evaluated
	RDSampledRowGroups    int64 // row-groups that ran ALP_rd sampling
	RDCutsTried           int64 // ALP_rd cut positions evaluated
	RDDictEntries         int64 // ALP_rd dictionary entries chosen

	// BitWidthHist[w] counts encoded decimal-scheme vectors whose FFOR
	// payload packed at w bits per value (w in 0..64).
	BitWidthHist [65]int64

	// Decode / scan side.
	VectorsDecoded int64 // vectors decompressed (any access path)
	VectorsSkipped int64 // vectors pruned by zone-map push-down
	DecodeNs       int64 // wall ns spent decompressing vectors
	DecodeValues   int64 // values decompressed
	RangeScans     int64 // SumRange scans executed
	MorselClaims   int64 // partitions claimed by engine scan workers
	ScanWorkers    int64 // scan worker goroutines launched

	// Encoded-domain predicate pushdown (filtered scans).
	PushdownVectors   int64 // vectors filtered by the fused unpack+compare kernel
	PushdownFallbacks int64 // filtered-scan vectors that decoded to floats instead
	SelectedRows      int64 // rows qualifying under pushed-down predicates

	// Encode/decode pipeline (the worker pool behind EncodeParallel,
	// DecodeParallel and NewWriterParallel).
	PipelineWorkers int64 // pipeline worker goroutines spawned
	PipelineClaims  int64 // row-groups claimed by pipeline workers
	PipelineStalls  int64 // submissions that blocked on a full window

	// Column service (alpserved / internal/server). Request durations
	// live in the latency histograms (ReadLatencies / the /metrics
	// lat_* keys), not here: the old ServerScanNs aggregate was retired
	// when per-endpoint histograms replaced it.
	ServerRequests int64 // HTTP requests admitted by the service
	ServerSheds    int64 // requests shed with 429 by the concurrency limiter
	ServerRefused  int64 // requests refused with 503 while draining
	ServerBytesIn  int64 // request payload bytes read (ingest)
	ServerBytesOut int64 // response payload bytes written
	ServerScans    int64 // scan/agg/count requests served

	// Selection-aware scan wire format (Accept: application/x-alp-scan).
	ScanFramesDense    int64 // frames shipped as stored envelope + bitmap
	ScanFramesRepacked int64 // frames shipped as re-packed ALP vectors
	ScanFramesRaw      int64 // frames that fell back to raw float64 rows
	ScanBytesSaved     int64 // wire bytes saved vs the raw-float64 floor
}

// EnableStats turns on global metrics collection. Instrumented hot
// paths switch from a single nil-check branch to atomic counter
// updates. Idempotent.
func EnableStats() { obs.Enable() }

// DisableStats turns off global metrics collection.
func DisableStats() { obs.Disable() }

// ResetStats zeroes all counters (no-op when collection is disabled).
func ResetStats() { obs.Active().Reset() }

// StatsEnabled reports whether metrics collection is active.
func StatsEnabled() bool { return obs.Active() != nil }

// ReadStats snapshots the current counters. With collection disabled it
// returns a zero Stats.
func ReadStats() Stats {
	return statsFromSnapshot(obs.Active().Snapshot())
}

func statsFromSnapshot(s obs.Snapshot) Stats {
	return Stats{
		RowGroupsALP:          s.RowGroupsALP,
		RowGroupsRD:           s.RowGroupsRD,
		VectorsEncoded:        s.VectorsEncoded,
		EncodeExceptions:      s.EncodeExceptions,
		EncodeNs:              s.EncodeNs,
		EncodeValues:          s.EncodeValues,
		SecondStageSkips:      s.SecondStageSkips,
		SecondStageEarlyExits: s.SecondStageEarlyExits,
		SecondStageTried:      s.SecondStageTried,
		RDSampledRowGroups:    s.RDSampledRowGroups,
		RDCutsTried:           s.RDCutsTried,
		RDDictEntries:         s.RDDictEntries,
		BitWidthHist:          s.BitWidthHist,
		VectorsDecoded:        s.VectorsDecoded,
		VectorsSkipped:        s.VectorsSkipped,
		DecodeNs:              s.DecodeNs,
		DecodeValues:          s.DecodeValues,
		RangeScans:            s.RangeScans,
		MorselClaims:          s.MorselClaims,
		ScanWorkers:           s.ScanWorkers,
		PushdownVectors:       s.PushdownVectors,
		PushdownFallbacks:     s.PushdownFallbacks,
		SelectedRows:          s.SelectedRows,
		PipelineWorkers:       s.PipelineWorkers,
		PipelineClaims:        s.PipelineClaims,
		PipelineStalls:        s.PipelineStalls,
		ServerRequests:        s.ServerRequests,
		ServerSheds:           s.ServerSheds,
		ServerRefused:         s.ServerRefused,
		ServerBytesIn:         s.ServerBytesIn,
		ServerBytesOut:        s.ServerBytesOut,
		ServerScans:           s.ServerScans,
		ScanFramesDense:       s.ScanFramesDense,
		ScanFramesRepacked:    s.ScanFramesRepacked,
		ScanFramesRaw:         s.ScanFramesRaw,
		ScanBytesSaved:        s.ScanBytesSaved,
	}
}

// EncodeNsPerValue returns the average encode cost in ns per value.
func (s Stats) EncodeNsPerValue() float64 {
	if s.EncodeValues == 0 {
		return 0
	}
	return float64(s.EncodeNs) / float64(s.EncodeValues)
}

// DecodeNsPerValue returns the average decode cost in ns per value.
func (s Stats) DecodeNsPerValue() float64 {
	if s.DecodeValues == 0 {
		return 0
	}
	return float64(s.DecodeNs) / float64(s.DecodeValues)
}

// PushdownRate returns the fraction of filtered-scan vectors answered
// by the encoded-domain kernel rather than decode-then-filter.
func (s Stats) PushdownRate() float64 {
	total := s.PushdownVectors + s.PushdownFallbacks
	if total == 0 {
		return 0
	}
	return float64(s.PushdownVectors) / float64(total)
}

// SkipRate returns the fraction of scan vectors pruned by zone maps.
func (s Stats) SkipRate() float64 {
	total := s.VectorsDecoded + s.VectorsSkipped
	if total == 0 {
		return 0
	}
	return float64(s.VectorsSkipped) / float64(total)
}

// String renders the snapshot as JSON, so a Stats value satisfies
// expvar.Var and can be published with expvar.Publish without pulling
// expvar (and its /debug/vars side effect) into this package.
//
// A Stats holds only the counters, so the lat_*/stage_* histogram keys
// render as zero here; use MetricsJSON for the full picture.
func (s Stats) String() string {
	return statsToSnapshot(s).String()
}

// MetricsJSON renders the complete live metrics snapshot — counters
// plus the latency histograms' flat lat_*/stage_* quantile keys — as
// the JSON object served by /metrics endpoints. With collection
// disabled it returns an all-zero snapshot.
func MetricsJSON() string {
	return obs.Active().Snapshot().String()
}

func statsToSnapshot(s Stats) obs.Snapshot {
	return obs.Snapshot{
		RowGroupsALP:          s.RowGroupsALP,
		RowGroupsRD:           s.RowGroupsRD,
		VectorsEncoded:        s.VectorsEncoded,
		EncodeExceptions:      s.EncodeExceptions,
		EncodeNs:              s.EncodeNs,
		EncodeValues:          s.EncodeValues,
		SecondStageSkips:      s.SecondStageSkips,
		SecondStageEarlyExits: s.SecondStageEarlyExits,
		SecondStageTried:      s.SecondStageTried,
		RDSampledRowGroups:    s.RDSampledRowGroups,
		RDCutsTried:           s.RDCutsTried,
		RDDictEntries:         s.RDDictEntries,
		BitWidthHist:          s.BitWidthHist,
		VectorsDecoded:        s.VectorsDecoded,
		VectorsSkipped:        s.VectorsSkipped,
		DecodeNs:              s.DecodeNs,
		DecodeValues:          s.DecodeValues,
		RangeScans:            s.RangeScans,
		MorselClaims:          s.MorselClaims,
		ScanWorkers:           s.ScanWorkers,
		PushdownVectors:       s.PushdownVectors,
		PushdownFallbacks:     s.PushdownFallbacks,
		SelectedRows:          s.SelectedRows,
		PipelineWorkers:       s.PipelineWorkers,
		PipelineClaims:        s.PipelineClaims,
		PipelineStalls:        s.PipelineStalls,
		ServerRequests:        s.ServerRequests,
		ServerSheds:           s.ServerSheds,
		ServerRefused:         s.ServerRefused,
		ServerBytesIn:         s.ServerBytesIn,
		ServerBytesOut:        s.ServerBytesOut,
		ServerScans:           s.ServerScans,
		ScanFramesDense:       s.ScanFramesDense,
		ScanFramesRepacked:    s.ScanFramesRepacked,
		ScanFramesRaw:         s.ScanFramesRaw,
		ScanBytesSaved:        s.ScanBytesSaved,
	}
}

// LatencyStats summarizes one latency distribution tracked by the
// collector: a server endpoint (lat_*) or an engine stage (stage_*).
// All durations are nanoseconds; quantiles are log-bucket estimates
// (exact to within 2x, clamped to the observed max).
type LatencyStats struct {
	Name  string
	Count int64
	SumNs int64
	P50   int64
	P95   int64
	P99   int64
	Max   int64
}

// ReadLatencies snapshots every latency histogram, in stable order.
// With collection disabled it returns all-zero entries.
func ReadLatencies() []LatencyStats {
	snap := obs.Active().Snapshot()
	out := make([]LatencyStats, obs.NumHists)
	for i := range out {
		h := snap.Hists[i]
		out[i] = LatencyStats{
			Name:  obs.HistName(obs.HistID(i)),
			Count: h.Count,
			SumNs: h.SumNs,
			P50:   h.P50(),
			P95:   h.P95(),
			P99:   h.P99(),
			Max:   h.MaxNs,
		}
	}
	return out
}

// ---- per-column static introspection ----

// Scheme identifies the encoding of a row-group.
type Scheme uint8

const (
	// SchemeALP is the decimal encoding (paper §3.1).
	SchemeALP = Scheme(format.SchemeALP)
	// SchemeRD is the real-double fallback encoding (paper §3.4).
	SchemeRD = Scheme(format.SchemeRD)
)

func (s Scheme) String() string { return format.Scheme(s).String() }

// ComboInfo is one sampled (exponent, factor) combination.
type ComboInfo struct {
	E, F uint8
}

// VectorInfo describes one compressed vector.
type VectorInfo struct {
	Index  int // global vector index within the column
	Values int

	// Decimal scheme: the (e, f) combination chosen by second-stage
	// sampling and the FFOR bit width. For ALP_rd vectors E and F are
	// zero and BitWidth is the right-part width plus the dictionary
	// code width (the per-value payload bits).
	E, F     uint8
	BitWidth uint

	Exceptions     int
	CompressedBits int
}

// RowGroupInfo describes one compressed row-group: the adaptive
// decisions first-level sampling made for it and its per-vector layout.
type RowGroupInfo struct {
	Index  int
	Start  int // index of the first value
	Values int
	Scheme Scheme

	// Decimal scheme: the k best (e,f) candidates kept by first-level
	// sampling, and per-vector second-stage effort (candidates tried;
	// 0 = sampling skipped). SecondStageTried is only populated for
	// freshly encoded columns — it is sampling telemetry, not part of
	// the serialized format.
	Combos           []ComboInfo
	SecondStageTried []int

	// ALP_rd scheme: cut position, dictionary code width and size.
	CutPosition uint8
	CodeWidth   uint
	DictSize    int

	Vectors        []VectorInfo
	Exceptions     int
	CompressedBits int
}

// ColumnInfo is a deep-introspection report of one compressed column:
// every per-row-group and per-vector decision the adaptive encoder
// made, reconstructed from the compressed representation itself. It is
// what `alpfile inspect` prints.
type ColumnInfo struct {
	Values         int
	NumVectors     int
	NumRowGroups   int
	RowGroups      []RowGroupInfo
	Exceptions     int
	CompressedBits int
	BitsPerValue   float64
	UsedRD         bool
	HasZoneMap     bool
}

// ColumnStats parses a compressed stream and returns its introspection
// report without decompressing any values.
func ColumnStats(data []byte) (*ColumnInfo, error) {
	col, err := format.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	return buildColumnInfo(col), nil
}

// Info returns the introspection report for the column.
func (c *Column) Info() *ColumnInfo { return buildColumnInfo(c.col) }

func buildColumnInfo(col *format.Column) *ColumnInfo {
	info := &ColumnInfo{
		Values:         col.N,
		NumVectors:     col.NumVectors(),
		NumRowGroups:   len(col.RowGroups),
		CompressedBits: col.SizeBits(),
		BitsPerValue:   col.BitsPerValue(),
		UsedRD:         col.UsedRD(),
		HasZoneMap:     col.Zones != nil,
	}
	vecIndex := 0
	for g := range col.RowGroups {
		rg := &col.RowGroups[g]
		ri := RowGroupInfo{
			Index:          g,
			Start:          rg.Start,
			Values:         rg.N,
			Scheme:         Scheme(rg.Scheme),
			CompressedBits: rg.SizeBits(),
		}
		if rg.Scheme == format.SchemeRD {
			ri.CutPosition = rg.RD.P
			ri.CodeWidth = rg.RD.CodeWidth
			ri.DictSize = len(rg.RD.Dict)
			for j := range rg.RDVectors {
				v := &rg.RDVectors[j]
				ri.Vectors = append(ri.Vectors, VectorInfo{
					Index:          vecIndex,
					Values:         v.N,
					BitWidth:       uint(rg.RD.P) + rg.RD.CodeWidth,
					Exceptions:     v.Exceptions(),
					CompressedBits: rg.RD.SizeBits(v),
				})
				ri.Exceptions += v.Exceptions()
				vecIndex++
			}
		} else {
			for _, cb := range rg.Combos {
				ri.Combos = append(ri.Combos, ComboInfo{E: cb.E, F: cb.F})
			}
			ri.SecondStageTried = append([]int(nil), rg.SecondStageTried...)
			for j := range rg.Vectors {
				v := &rg.Vectors[j]
				ri.Vectors = append(ri.Vectors, VectorInfo{
					Index:          vecIndex,
					Values:         v.N,
					E:              v.E,
					F:              v.F,
					BitWidth:       v.Ints.Width,
					Exceptions:     v.Exceptions(),
					CompressedBits: v.SizeBits(),
				})
				ri.Exceptions += v.Exceptions()
				vecIndex++
			}
		}
		info.Exceptions += ri.Exceptions
		info.RowGroups = append(info.RowGroups, ri)
	}
	return info
}

// Summary returns a one-line description of the column, suitable for
// logs: value count, bits/value, scheme mix and exception total.
func (ci *ColumnInfo) Summary() string {
	alpGroups, rdGroups := 0, 0
	for i := range ci.RowGroups {
		if ci.RowGroups[i].Scheme == SchemeRD {
			rdGroups++
		} else {
			alpGroups++
		}
	}
	return fmt.Sprintf("%d values, %.2f bits/value, %d row-groups (%d ALP, %d ALP_rd), %d exceptions",
		ci.Values, ci.BitsPerValue, ci.NumRowGroups, alpGroups, rdGroups, ci.Exceptions)
}
