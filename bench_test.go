package alp

// One testing.B benchmark family per table and figure of the paper's
// evaluation (the printable tables themselves come from cmd/alpbench;
// these benches are the Go-native timing view of the same kernels).
//
// Speeds are reported as ns/op plus MB/s over the raw tuple bytes;
// divide tuples/sec by your clock to obtain the paper's tuples/cycle.
// Ratio benches additionally report bits/value via b.ReportMetric.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/goalp/alp/internal/alpenc"
	"github.com/goalp/alp/internal/alprd"
	"github.com/goalp/alp/internal/bench"
	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/fastlanes"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/vector"
)

// benchDatasets is the diverse subset used for the per-codec speed
// benches (the full 30-dataset sweep lives in cmd/alpbench).
var benchDatasets = []string{"City-Temp", "Stocks-USA", "Blockchain-tr", "Gov/26", "POI-lat"}

func datasetValues(b *testing.B, name string, n int) []float64 {
	b.Helper()
	d, ok := dataset.ByName(name)
	if !ok {
		b.Fatalf("dataset %s missing", name)
	}
	return d.Generate(n)
}

// BenchmarkFig1Compress and BenchmarkFig1Decompress regenerate the
// speed axes of Figure 1 (and the per-scheme averages of Table 5): one
// vector [de]compressed per op, per codec, per dataset.
func BenchmarkFig1Compress(b *testing.B) {
	for _, name := range benchDatasets {
		values := datasetValues(b, name, dataset.DefaultN)
		vec := values[:vector.Size]
		b.Run("ALP/"+name, func(b *testing.B) {
			dec := alpenc.SampleRowGroup(values)
			if len(dec.Combos) == 0 {
				dec.Combos = []alpenc.Combo{{E: 0, F: 0}}
			}
			scratch := make([]int64, vector.Size)
			b.SetBytes(vector.Size * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				combo, _ := alpenc.ChooseForVector(vec, dec.Combos)
				alpenc.EncodeVector(vec, combo, scratch)
			}
		})
		for _, c := range bench.Baselines() {
			c := c
			src := vec
			if c.BlockBased {
				src = values[:vector.RowGroupSize]
			}
			b.Run(c.Name+"/"+name, func(b *testing.B) {
				b.SetBytes(int64(len(src)) * 8)
				for i := 0; i < b.N; i++ {
					c.Compress(src)
				}
			})
		}
	}
}

func BenchmarkFig1Decompress(b *testing.B) {
	for _, name := range benchDatasets {
		values := datasetValues(b, name, dataset.DefaultN)
		vec := values[:vector.Size]
		b.Run("ALP/"+name, func(b *testing.B) {
			dec := alpenc.SampleRowGroup(values)
			if len(dec.Combos) == 0 {
				dec.Combos = []alpenc.Combo{{E: 0, F: 0}}
			}
			combo, _ := alpenc.ChooseForVector(vec, dec.Combos)
			enc := alpenc.EncodeVector(vec, combo, nil)
			dst := make([]float64, len(vec))
			scratch := make([]int64, vector.Size)
			b.SetBytes(vector.Size * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc.Decode(dst, scratch)
			}
		})
		for _, c := range bench.Baselines() {
			c := c
			src := vec
			if c.BlockBased {
				src = values[:vector.RowGroupSize]
			}
			data := c.Compress(src)
			dst := make([]float64, len(src))
			b.Run(c.Name+"/"+name, func(b *testing.B) {
				b.SetBytes(int64(len(src)) * 8)
				for i := 0; i < b.N; i++ {
					if err := c.Decompress(dst, data); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable4 regenerates the compression-ratio table: each op
// compresses the full dataset with ALP, and bits/value is reported as a
// custom metric alongside the timing.
func BenchmarkTable4(b *testing.B) {
	for _, d := range dataset.All() {
		d := d
		b.Run(d.Name, func(b *testing.B) {
			values := d.Generate(dataset.DefaultN / 2)
			b.SetBytes(int64(len(values)) * 8)
			var col *format.Column
			for i := 0; i < b.N; i++ {
				col = format.EncodeColumn(values)
			}
			b.ReportMetric(col.BitsPerValue(), "bits/value")
		})
	}
}

// BenchmarkFig4Variants regenerates the kernel-variant ablation
// standing in for the paper's architecture study.
func BenchmarkFig4Variants(b *testing.B) {
	values := datasetValues(b, "Stocks-USA", dataset.DefaultN)
	vec := values[:vector.Size]
	dec := alpenc.SampleRowGroup(values)
	combo, _ := alpenc.ChooseForVector(vec, dec.Combos)
	enc := alpenc.EncodeVector(vec, combo, nil)
	dst := make([]float64, len(vec))
	scratch := make([]int64, vector.Size)
	b.Run("fused", func(b *testing.B) {
		b.SetBytes(vector.Size * 8)
		for i := 0; i < b.N; i++ {
			enc.Decode(dst, scratch)
		}
	})
	b.Run("unfused", func(b *testing.B) {
		b.SetBytes(vector.Size * 8)
		for i := 0; i < b.N; i++ {
			enc.DecodeUnfused(dst, scratch)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(vector.Size * 8)
		for i := 0; i < b.N; i++ {
			enc.DecodeGeneric(dst, scratch)
		}
	})
}

// BenchmarkFig5Width regenerates the synthetic bit-width sweep of
// Figure 5 (bottom): fused vs unfused ALP+FFOR decode at controlled
// vector bit widths.
func BenchmarkFig5Width(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	dst := make([]float64, vector.Size)
	scratch := make([]int64, vector.Size)
	for _, width := range []int{0, 8, 16, 24, 32, 40, 48, 52} {
		ints := make([]int64, vector.Size)
		for i := range ints {
			if width > 0 {
				ints[i] = int64(r.Uint64() & (1<<uint(width) - 1))
			}
		}
		v := alpenc.Vector{E: 2, F: 0, N: vector.Size, Ints: fastlanes.EncodeFFOR(ints)}
		b.Run(benchName("fused", width), func(b *testing.B) {
			b.SetBytes(vector.Size * 8)
			for i := 0; i < b.N; i++ {
				v.Decode(dst, scratch)
			}
		})
		b.Run(benchName("unfused", width), func(b *testing.B) {
			b.SetBytes(vector.Size * 8)
			for i := 0; i < b.N; i++ {
				v.DecodeUnfused(dst, scratch)
			}
		})
	}
}

func benchName(kind string, width int) string {
	return fmt.Sprintf("%s/w%02d", kind, width)
}

// BenchmarkTable6 regenerates the end-to-end engine experiment on
// City-Temp: SCAN and SUM over a partitioned relation.
func BenchmarkTable6(b *testing.B) {
	values := datasetValues(b, "City-Temp", 4*vector.RowGroupSize)
	rels := []*engine.Relation{
		engine.BuildALP(values),
		engine.BuildUncompressed(values),
	}
	for _, r := range rels {
		r := r
		b.Run("SCAN/"+r.Name, func(b *testing.B) {
			b.SetBytes(int64(len(values)) * 8)
			for i := 0; i < b.N; i++ {
				if got := r.Scan(1); got != len(values) {
					b.Fatalf("scan returned %d", got)
				}
			}
		})
		b.Run("SUM/"+r.Name, func(b *testing.B) {
			b.SetBytes(int64(len(values)) * 8)
			for i := 0; i < b.N; i++ {
				r.Sum(1)
			}
		})
	}
	b.Run("COMP/ALP", func(b *testing.B) {
		b.SetBytes(int64(len(values)) * 8)
		for i := 0; i < b.N; i++ {
			format.EncodeColumn(values)
		}
	})
}

// BenchmarkTable7 regenerates the ML-weights experiment: ALP_rd-32
// compression of synthetic model weights, with the achieved bits/value
// reported as a custom metric.
func BenchmarkTable7(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	weights := dataset.Weights32(r, 1<<18)
	b.SetBytes(int64(len(weights)) * 4)
	var col *format.Column32
	for i := 0; i < b.N; i++ {
		col = format.EncodeColumn32(weights)
	}
	b.ReportMetric(col.BitsPerValue(), "bits/value")
	if !col.UsedRD() {
		b.Fatal("weights must use ALP_rd-32")
	}
}

// BenchmarkALPRD regenerates the §4.2 ALP vs ALP_rd speed comparison.
func BenchmarkALPRD(b *testing.B) {
	values := datasetValues(b, "POI-lat", dataset.DefaultN)
	vec := values[:vector.Size]
	enc := alprd.Sample(values)
	b.Run("compress", func(b *testing.B) {
		b.SetBytes(vector.Size * 8)
		for i := 0; i < b.N; i++ {
			enc.EncodeVector(vec)
		}
	})
	v := enc.EncodeVector(vec)
	dst := make([]float64, len(vec))
	b.Run("decompress", func(b *testing.B) {
		b.SetBytes(vector.Size * 8)
		for i := 0; i < b.N; i++ {
			enc.DecodeVector(&v, dst)
		}
	})
}

// BenchmarkSampling times the two sampling levels in isolation (§4.2's
// compression-overhead analysis).
func BenchmarkSampling(b *testing.B) {
	values := datasetValues(b, "CMS/25", vector.RowGroupSize)
	b.Run("first-level", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			alpenc.SampleRowGroup(values)
		}
	})
	dec := alpenc.SampleRowGroup(values)
	vec := values[:vector.Size]
	b.Run("second-level", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			alpenc.ChooseForVector(vec, dec.Combos)
		}
	})
}

// BenchmarkVectorSizeAblation ablates the vector-size design constant
// (1024 in the paper): decode throughput with smaller and larger
// vectors, holding the data fixed.
func BenchmarkVectorSizeAblation(b *testing.B) {
	values := datasetValues(b, "Stocks-USA", 8192)
	for _, size := range []int{128, 256, 512, 1024, 2048, 4096} {
		size := size
		b.Run(benchSizeName(size), func(b *testing.B) {
			// The storage format fixes vectors at 1024 values, but the
			// encoding kernels accept any size, which is what this
			// design-constant ablation varies.
			vec := values[:size]
			dec := alpenc.SampleRowGroup(values)
			combo, _ := alpenc.ChooseForVector(vec, dec.Combos)
			enc := alpenc.EncodeVector(vec, combo, nil)
			dst := make([]float64, len(vec))
			scratch := make([]int64, len(vec))
			b.SetBytes(int64(len(vec)) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc.Decode(dst, scratch)
			}
		})
	}
}

func benchSizeName(n int) string {
	return fmt.Sprintf("v%d", n)
}
