package alp

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden fixtures from the current encoder")

// goldenDecimals synthesizes a decimal-heavy column deterministically
// (no PRNG, so the fixture generator can never drift): varied two-digit
// decimals with hand-placed specials, long enough to span vector
// boundaries and end on a partial vector. First-level sampling picks
// SchemeALP for this shape.
func goldenDecimals(n int) []float64 {
	values := make([]float64, n)
	for i := range values {
		values[i] = float64((i*7919)%100000) / 100
	}
	if n > 40 {
		values[7] = math.Float64frombits(0x7FF8DEADBEEF0001) // NaN payload
		values[11] = math.Inf(1)
		values[23] = math.Inf(-1)
		values[31] = math.Copysign(0, -1)
		values[37] = 5e-324 // subnormal
	}
	return values
}

// goldenRealDoubles uses a fixed xorshift64 stream of raw bit patterns:
// full-precision doubles the decimal scheme cannot represent, forcing
// SchemeRD.
func goldenRealDoubles(n int) []float64 {
	values := make([]float64, n)
	s := uint64(0x9E3779B97F4A7C15)
	for i := range values {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		values[i] = math.Float64frombits(s &^ (0x7FF << 52)) // clear exponent: finite, subnormal-range
	}
	return values
}

func goldenDecimals32(n int) []float32 {
	values := make([]float32, n)
	for i := range values {
		values[i] = float32((i*104729)%10000) / 10
	}
	if n > 10 {
		values[3] = float32(math.NaN())
		values[9] = float32(math.Inf(-1))
	}
	return values
}

// goldenWeights32 mimics ML weight tensors (the float32 use case the
// paper calls out): full-precision fractions in [-1, 1], served by the
// front-bit RD scheme.
func goldenWeights32(n int) []float32 {
	values := make([]float32, n)
	s := uint64(0xD1B54A32D192ED03)
	for i := range values {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		values[i] = float32(int32(s))/float32(math.MaxInt32) - 0
	}
	return values
}

// TestGoldenFormat pins the on-disk stream format: the serial encoder
// must reproduce each checked-in fixture byte-for-byte, and the decoder
// must read each fixture back bit-exactly. Any format change shows up
// as a diff here and forces a deliberate fixture update (go test
// -run Golden -update-golden) — i.e. a conscious format break.
func TestGoldenFormat(t *testing.T) {
	cases := []struct {
		name   string
		values []float64
	}{
		{"decimals64.alp", goldenDecimals(2560)},
		{"realdoubles64.alp", goldenRealDoubles(1500)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", tc.name)
			got := Encode(tc.values)
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("encoder output differs from golden fixture %s (%d vs %d bytes): the stream format changed",
					tc.name, len(got), len(want))
			}
			if par := EncodeParallel(tc.values, 4); !bytes.Equal(par, want) {
				t.Fatalf("parallel encoder output differs from golden fixture %s", tc.name)
			}
			decoded, err := Decode(want)
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(decoded, tc.values) {
				t.Fatalf("decoded fixture %s is not bit-exact", tc.name)
			}
		})
	}

	// Scan wire format: the selection-aware stream over the same
	// decimal and real-double fixtures, at a dense and a sparse band,
	// so an accidental change to the frame layout, the CRC, or the
	// encoding policy fails loudly.
	scanCases := []struct {
		name   string
		values []float64
		lo, hi float64
	}{
		{"scan_decimals_dense.alps", goldenDecimals(2560), math.Inf(-1), math.Inf(1)},
		{"scan_decimals_sparse.alps", goldenDecimals(2560), 0, 20},
		{"scan_realdoubles_dense.alps", goldenRealDoubles(1500), math.Inf(-1), math.Inf(1)},
	}
	for _, tc := range scanCases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", tc.name)
			col := Compress(tc.values)
			got, rows := col.BuildScanStream(tc.lo, tc.hi)
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("scan stream differs from golden fixture %s (%d vs %d bytes): the wire format changed",
					tc.name, len(got), len(want))
			}
			decoded, err := DecodeScanStream(want)
			if err != nil {
				t.Fatalf("decoding fixture %s: %v", tc.name, err)
			}
			if len(decoded) != rows {
				t.Fatalf("fixture %s decodes to %d rows, builder reported %d", tc.name, len(decoded), rows)
			}
			j := 0
			for _, v := range tc.values {
				if v >= tc.lo && v <= tc.hi {
					if math.Float64bits(decoded[j]) != math.Float64bits(v) {
						t.Fatalf("fixture %s row %d is not bit-exact", tc.name, j)
					}
					j++
				}
			}
			if j != len(decoded) {
				t.Fatalf("fixture %s has %d rows, oracle selects %d", tc.name, len(decoded), j)
			}
		})
	}

	cases32 := []struct {
		name   string
		values []float32
	}{
		{"decimals32.alp", goldenDecimals32(1300)},
		{"weights32.alp", goldenWeights32(2048)},
	}
	for _, tc := range cases32 {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", tc.name)
			got := Encode32(tc.values)
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("encoder output differs from golden fixture %s (%d vs %d bytes): the stream format changed",
					tc.name, len(got), len(want))
			}
			decoded, err := Decode32(want)
			if err != nil {
				t.Fatal(err)
			}
			if len(decoded) != len(tc.values) {
				t.Fatalf("decoded fixture %s: %d values, want %d", tc.name, len(decoded), len(tc.values))
			}
			for i := range decoded {
				if math.Float32bits(decoded[i]) != math.Float32bits(tc.values[i]) {
					t.Fatalf("decoded fixture %s: value %d not bit-exact", tc.name, i)
				}
			}
		})
	}
}
