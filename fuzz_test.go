package alp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// fuzzFloats64 reinterprets raw bytes as little-endian float64 values
// (trailing remainder bytes are dropped), letting the fuzzer mutate
// every bit of every value — NaN payloads, infinities, signed zeros,
// subnormals — not just "nice" numbers.
func fuzzFloats64(raw []byte) []float64 {
	values := make([]float64, len(raw)/8)
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return values
}

func fuzzFloats32(raw []byte) []float32 {
	values := make([]float32, len(raw)/4)
	for i := range values {
		values[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return values
}

// le64 appends the values' bit patterns, the seed-corpus encoding of a
// float64 column.
func le64(values ...float64) []byte {
	var out []byte
	for _, v := range values {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// FuzzEncodeDecodeRoundTrip asserts the codec's lossless contract on
// arbitrary bit patterns: every input must round-trip bit-exactly
// through the serial encoder, the parallel encoder, and the streaming
// Writer — and all three must produce identical bytes. The same raw
// input is also exercised through the float32 path.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(le64(1.25, -1.25, 0, 100.01, 99999.99))                              // sweet-spot decimals
	f.Add(le64(math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)))   // specials
	f.Add(le64(math.Float64frombits(0x7FF8DEADBEEF0001)))                      // NaN payload
	f.Add(le64(5e-324, math.SmallestNonzeroFloat64, 2.2250738585072009e-308))  // subnormals
	f.Add(le64(math.MaxFloat64, -math.MaxFloat64, 1e308, math.Pi, math.Sqrt2)) // extremes + real doubles
	f.Add(bytes.Repeat(le64(42.42), 1200))                                     // spans a vector boundary
	f.Fuzz(func(t *testing.T, raw []byte) {
		values := fuzzFloats64(raw)

		serial := EncodeParallel(values, 1)
		parallel := EncodeParallel(values, 3)
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("parallel encode differs from serial for %d values", len(values))
		}
		w := NewWriterParallel(WriterOptions{Workers: 2})
		w.Write(values)
		if streamed := w.Close(); !bytes.Equal(streamed, serial) {
			t.Fatalf("streamed encode differs from one-shot for %d values", len(values))
		}

		for _, workers := range []int{1, 3} {
			got, err := DecodeParallel(serial, workers)
			if err != nil {
				t.Fatalf("decode(workers=%d): %v", workers, err)
			}
			if len(got) != len(values) {
				t.Fatalf("decode(workers=%d): %d values, want %d", workers, len(got), len(values))
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(values[i]) {
					t.Fatalf("value %d: got %016x, want %016x (workers=%d)",
						i, math.Float64bits(got[i]), math.Float64bits(values[i]), workers)
				}
			}
		}

		values32 := fuzzFloats32(raw)
		serial32 := Encode32Parallel(values32, 1)
		if parallel32 := Encode32Parallel(values32, 3); !bytes.Equal(serial32, parallel32) {
			t.Fatalf("parallel encode32 differs from serial for %d values", len(values32))
		}
		got32, err := Decode32(serial32)
		if err != nil {
			t.Fatalf("decode32: %v", err)
		}
		if len(got32) != len(values32) {
			t.Fatalf("decode32: %d values, want %d", len(got32), len(values32))
		}
		for i := range got32 {
			if math.Float32bits(got32[i]) != math.Float32bits(values32[i]) {
				t.Fatalf("value32 %d: got %08x, want %08x",
					i, math.Float32bits(got32[i]), math.Float32bits(values32[i]))
			}
		}
	})
}

// FuzzOpen feeds arbitrary (including mutated-valid) byte streams to
// the stream readers: they must never panic, and must either decode
// cleanly or fail with an error wrapping ErrCorrupt — the validation
// contract scan engines rely on when reading untrusted files.
func FuzzOpen(f *testing.F) {
	valid := Encode([]float64{1.5, 2.25, 100.75, math.NaN(), math.Inf(1)})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])  // truncated
	f.Add(valid[:12])            // header only
	f.Add([]byte{})              // empty
	f.Add([]byte("ALP1garbage")) // magic then junk
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)                        // bit-flipped payload
	f.Add(Encode32([]float32{1.5, -0.5})) // 32-bit stream into both readers
	f.Fuzz(func(t *testing.T, data []byte) {
		col, err := Open(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open error does not wrap ErrCorrupt: %v", err)
			}
		} else {
			// A structurally valid stream must decode without panicking,
			// serially and in parallel, and agree with itself.
			vals := col.ValuesParallel(1)
			par := col.ValuesParallel(3)
			if !bitsEqual(vals, par) {
				t.Fatal("serial and parallel decode disagree on accepted stream")
			}
			col.Sum()
			col.SumRange(0, 1)
		}

		got, err := Decode32(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode32 error does not wrap ErrCorrupt: %v", err)
			}
		} else {
			_ = got
		}
	})
}
