package alp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"github.com/goalp/alp/internal/engine"
)

// fuzzFloats64 reinterprets raw bytes as little-endian float64 values
// (trailing remainder bytes are dropped), letting the fuzzer mutate
// every bit of every value — NaN payloads, infinities, signed zeros,
// subnormals — not just "nice" numbers.
func fuzzFloats64(raw []byte) []float64 {
	values := make([]float64, len(raw)/8)
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return values
}

func fuzzFloats32(raw []byte) []float32 {
	values := make([]float32, len(raw)/4)
	for i := range values {
		values[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return values
}

// le64 appends the values' bit patterns, the seed-corpus encoding of a
// float64 column.
func le64(values ...float64) []byte {
	var out []byte
	for _, v := range values {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// FuzzEncodeDecodeRoundTrip asserts the codec's lossless contract on
// arbitrary bit patterns: every input must round-trip bit-exactly
// through the serial encoder, the parallel encoder, and the streaming
// Writer — and all three must produce identical bytes. The same raw
// input is also exercised through the float32 path.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(le64(1.25, -1.25, 0, 100.01, 99999.99))                              // sweet-spot decimals
	f.Add(le64(math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)))   // specials
	f.Add(le64(math.Float64frombits(0x7FF8DEADBEEF0001)))                      // NaN payload
	f.Add(le64(5e-324, math.SmallestNonzeroFloat64, 2.2250738585072009e-308))  // subnormals
	f.Add(le64(math.MaxFloat64, -math.MaxFloat64, 1e308, math.Pi, math.Sqrt2)) // extremes + real doubles
	f.Add(bytes.Repeat(le64(42.42), 1200))                                     // spans a vector boundary
	f.Fuzz(func(t *testing.T, raw []byte) {
		values := fuzzFloats64(raw)

		serial := EncodeParallel(values, 1)
		parallel := EncodeParallel(values, 3)
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("parallel encode differs from serial for %d values", len(values))
		}
		w := NewWriterParallel(WriterOptions{Workers: 2})
		w.Write(values)
		if streamed := w.Close(); !bytes.Equal(streamed, serial) {
			t.Fatalf("streamed encode differs from one-shot for %d values", len(values))
		}

		for _, workers := range []int{1, 3} {
			got, err := DecodeParallel(serial, workers)
			if err != nil {
				t.Fatalf("decode(workers=%d): %v", workers, err)
			}
			if len(got) != len(values) {
				t.Fatalf("decode(workers=%d): %d values, want %d", workers, len(got), len(values))
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(values[i]) {
					t.Fatalf("value %d: got %016x, want %016x (workers=%d)",
						i, math.Float64bits(got[i]), math.Float64bits(values[i]), workers)
				}
			}
		}

		values32 := fuzzFloats32(raw)
		serial32 := Encode32Parallel(values32, 1)
		if parallel32 := Encode32Parallel(values32, 3); !bytes.Equal(serial32, parallel32) {
			t.Fatalf("parallel encode32 differs from serial for %d values", len(values32))
		}
		got32, err := Decode32(serial32)
		if err != nil {
			t.Fatalf("decode32: %v", err)
		}
		if len(got32) != len(values32) {
			t.Fatalf("decode32: %d values, want %d", len(got32), len(values32))
		}
		for i := range got32 {
			if math.Float32bits(got32[i]) != math.Float32bits(values32[i]) {
				t.Fatalf("value32 %d: got %08x, want %08x",
					i, math.Float32bits(got32[i]), math.Float32bits(values32[i]))
			}
		}
	})
}

// FuzzPushdownAgainstNaive differentially fuzzes the encoded-domain
// predicate pushdown: the first 16 bytes pick a range predicate (two
// little-endian float64 bounds, swapped into order when comparable),
// the rest become the column. The pushdown scan, the forced
// decode-then-filter scan, and a plain-slice fold must agree
// bit-for-bit on Sum/Count/Min/Max for every input — including NaN or
// infinite bounds and columns full of exceptions.
func FuzzPushdownAgainstNaive(f *testing.F) {
	f.Add(le64(0, 100, 1.25, 50.5, 99.99, -3.25, 100.01))          // band over decimals
	f.Add(le64(math.NaN(), 1, 0.5, 2.5))                           // NaN bound matches nothing
	f.Add(le64(0, 0, 0, math.Copysign(0, -1), 1e-300))             // signed zeros on a point band
	f.Add(le64(math.Inf(-1), math.Inf(1), math.NaN(), math.Pi, 1)) // unbounded over specials
	f.Add(le64(1e300, 1e308, 1e307, 2.5, math.MaxFloat64))         // bounds beyond encodable range
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 16 {
			return
		}
		lo := math.Float64frombits(binary.LittleEndian.Uint64(raw))
		hi := math.Float64frombits(binary.LittleEndian.Uint64(raw[8:]))
		if lo > hi {
			lo, hi = hi, lo
		}
		values := fuzzFloats64(raw[16:])

		// Plain-slice oracle, folded in index order.
		var sum float64
		var count int64
		min, max := math.Inf(1), math.Inf(-1)
		for _, v := range values {
			if v >= lo && v <= hi {
				sum += v
				count++
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
		}

		r := engine.BuildALP(values)
		p := engine.Between(lo, hi)
		push, _ := r.FilterAgg(1, p)
		naive, _ := r.FilterAggNaive(1, p)
		for _, got := range []struct {
			name string
			a    engine.Agg
		}{{"pushdown", push}, {"naive", naive}} {
			if math.Float64bits(got.a.Sum) != math.Float64bits(sum) || got.a.Count != count ||
				math.Float64bits(got.a.Min) != math.Float64bits(min) ||
				math.Float64bits(got.a.Max) != math.Float64bits(max) {
				t.Fatalf("%s FilterAgg([%v,%v]) over %d values = %+v, want sum %v count %d min %v max %v",
					got.name, lo, hi, len(values), got.a, sum, count, min, max)
			}
		}
		if c := r.FilterCount(1, p); c != count {
			t.Fatalf("FilterCount([%v,%v]) = %d, want %d", lo, hi, c, count)
		}

		// Public column path (exercises the format layer's scheme switch).
		res := Compress(values).AggRange(lo, hi)
		if math.Float64bits(res.Sum) != math.Float64bits(sum) || int64(res.Count) != count ||
			math.Float64bits(res.Min) != math.Float64bits(min) ||
			math.Float64bits(res.Max) != math.Float64bits(max) {
			t.Fatalf("Column.AggRange([%v,%v]) = %+v, want sum %v count %d min %v max %v",
				lo, hi, res, sum, count, min, max)
		}
	})
}

// scanFuzzStream builds a deterministic valid scan stream exercising
// all three frame kinds: a dense full-vector frame, a repacked sparse
// frame and raw fallback frames, over a column with specials.
func scanFuzzStream(lo, hi float64) []byte {
	values := make([]float64, 2*VectorSize+37)
	for i := range values {
		values[i] = float64((i*7919)%100000) / 100
	}
	values[3] = math.NaN()
	values[5] = math.Inf(1)
	values[7] = math.Copysign(0, -1)
	stream, _ := Compress(values).BuildScanStream(lo, hi)
	return stream
}

// FuzzScanFrameDecode feeds arbitrary (including mutated-valid) bytes
// to the selection-aware scan stream decoder: it must never panic, it
// must reject every structural defect — bad magic, truncated frames,
// CRC mismatches, bitmap-cardinality lies — with an error wrapping
// ErrCorrupt, and accepted streams must decode deterministically.
func FuzzScanFrameDecode(f *testing.F) {
	full := scanFuzzStream(math.Inf(-1), math.Inf(1)) // dense frames
	sparse := scanFuzzStream(0, 20)                   // repacked + raw frames
	f.Add(full)
	f.Add(sparse)
	f.Add(full[:len(full)/2]) // mid-frame cut
	f.Add(full[:5])           // header only
	f.Add([]byte{})
	f.Add([]byte("ALPSgarbage"))
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped) // CRC-detected corruption
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := DecodeScanStream(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeScanStream error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		again, err := DecodeScanStream(data)
		if err != nil {
			t.Fatalf("accepted stream failed on second decode: %v", err)
		}
		if !bitsEqual(rows, again) {
			t.Fatal("accepted stream decoded differently twice")
		}
	})
}

// FuzzOpen feeds arbitrary (including mutated-valid) byte streams to
// the stream readers: they must never panic, and must either decode
// cleanly or fail with an error wrapping ErrCorrupt — the validation
// contract scan engines rely on when reading untrusted files.
func FuzzOpen(f *testing.F) {
	valid := Encode([]float64{1.5, 2.25, 100.75, math.NaN(), math.Inf(1)})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])  // truncated
	f.Add(valid[:12])            // header only
	f.Add([]byte{})              // empty
	f.Add([]byte("ALP1garbage")) // magic then junk
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)                        // bit-flipped payload
	f.Add(Encode32([]float32{1.5, -0.5})) // 32-bit stream into both readers
	f.Fuzz(func(t *testing.T, data []byte) {
		col, err := Open(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open error does not wrap ErrCorrupt: %v", err)
			}
		} else {
			// A structurally valid stream must decode without panicking,
			// serially and in parallel, and agree with itself.
			vals := col.ValuesParallel(1)
			par := col.ValuesParallel(3)
			if !bitsEqual(vals, par) {
				t.Fatal("serial and parallel decode disagree on accepted stream")
			}
			col.Sum()
			col.SumRange(0, 1)
		}

		got, err := Decode32(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode32 error does not wrap ErrCorrupt: %v", err)
			}
		} else {
			_ = got
		}
	})
}
