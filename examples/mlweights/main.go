// Mlweights: compress float32 model weights with ALP, which detects
// the full-precision data during sampling and switches every row-group
// to ALP_rd-32 — the paper's §4.4 / Table 7 scenario, where ALP_rd is
// the only floating-point encoding to achieve compression at all.
//
//	go run ./examples/mlweights
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/goalp/alp"
)

func main() {
	// Synthetic trained-model weights: near-zero normals at layer-like
	// scales with full-entropy mantissas.
	r := rand.New(rand.NewSource(11))
	layers := []struct {
		name  string
		size  int
		scale float64
	}{
		{"embeddings", 1 << 18, 0.02},
		{"attention", 1 << 19, 0.05},
		{"mlp", 1 << 19, 0.03},
		{"head", 1 << 16, 0.12},
	}
	var weights []float32
	for _, l := range layers {
		for i := 0; i < l.size; i++ {
			weights = append(weights, float32(r.NormFloat64()*l.scale))
		}
	}

	data := alp.Encode32(weights)
	back, err := alp.Decode32(data)
	if err != nil {
		log.Fatal(err)
	}
	for i := range weights {
		if math.Float32bits(back[i]) != math.Float32bits(weights[i]) {
			log.Fatalf("weight %d did not round trip", i)
		}
	}

	col := alp.Compress32(weights)
	fmt.Printf("parameters:   %d\n", len(weights))
	fmt.Printf("raw size:     %.1f MiB\n", float64(len(weights)*4)/(1<<20))
	fmt.Printf("compressed:   %.1f MiB\n", float64(len(data))/(1<<20))
	fmt.Printf("bits/value:   %.2f (raw float32 is 32)\n", col.BitsPerValue())
	fmt.Printf("scheme:       ALP_rd-32 used = %v\n", col.UsedRD())
	fmt.Println("round trip:   bit-exact (lossless, unlike quantization)")
}
