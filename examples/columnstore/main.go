// Columnstore: a miniature analytical pipeline on top of the internal
// vectorized engine — compress a monetary column, persist it, reopen
// it, and run SCAN and SUM queries, comparing against the uncompressed
// baseline (the paper's §4.3 end-to-end scenario).
//
//	go run ./examples/columnstore
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"github.com/goalp/alp"
)

func main() {
	// A sales "fact table" column: amounts in dollars and cents, heavy
	// with repeated price points — like the paper's Stocks and Gov
	// datasets.
	r := rand.New(rand.NewSource(3))
	pricePoints := make([]float64, 500)
	for i := range pricePoints {
		pricePoints[i] = math.Round(r.Float64()*50000) / 100
	}
	amounts := make([]float64, 4_000_000)
	for i := range amounts {
		amounts[i] = pricePoints[r.Intn(len(pricePoints))]
	}

	// Persist the compressed column like a column chunk in a data file.
	path := filepath.Join(os.TempDir(), "sales_amount.alp")
	col := alp.Compress(amounts)
	if err := os.WriteFile(path, col.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("column file: %s (%d bytes, %.2f bits/value)\n", path, info.Size(), col.BitsPerValue())
	defer os.Remove(path)

	// Reopen and query.
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	opened, err := alp.Open(data)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	total := opened.Sum()
	compressed := time.Since(start)

	start = time.Now()
	var rawSum float64
	for _, v := range amounts {
		rawSum += v
	}
	raw := time.Since(start)

	if math.Abs(total-rawSum) > 1e-6*math.Abs(rawSum) {
		log.Fatalf("SUM mismatch: %v vs %v", total, rawSum)
	}
	fmt.Printf("SELECT SUM(amount): %.2f\n", total)
	fmt.Printf("  over compressed column: %v (%.0f Mtuples/s)\n",
		compressed, float64(len(amounts))/compressed.Seconds()/1e6)
	fmt.Printf("  over raw slice:         %v (%.0f Mtuples/s)\n",
		raw, float64(len(amounts))/raw.Seconds()/1e6)
	fmt.Printf("storage saved: %.1f%%\n", 100*(1-float64(info.Size())/float64(len(amounts)*8)))
}
