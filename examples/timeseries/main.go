// Timeseries: stream sensor readings through the incremental Writer,
// then read the compressed column back vector-at-a-time and compute
// windowed aggregates while skipping irrelevant vectors.
//
// This is the workload of the paper's time-series datasets (Table 1):
// temperature-style readings with fixed decimal precision arriving as
// an unbounded stream.
//
//	go run ./examples/timeseries
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/goalp/alp"
)

func main() {
	// A sensor emits one reading per second with 0.1-degree resolution;
	// we buffer a day at a time into the streaming writer.
	const days = 3
	const perDay = 86_400
	r := rand.New(rand.NewSource(7))
	w := alp.NewWriter()
	temp := 18.0
	var raw int
	for d := 0; d < days; d++ {
		readings := make([]float64, perDay)
		for i := range readings {
			temp += r.NormFloat64() * 0.02
			readings[i] = math.Round(temp*10) / 10
		}
		w.Write(readings)
		raw += len(readings) * 8
	}
	data := w.Close()
	fmt.Printf("streamed %d readings over %d days\n", w.Len(), days)
	fmt.Printf("raw %d bytes -> compressed %d bytes (%.2f bits/value)\n",
		raw, len(data), float64(len(data))*8/float64(w.Len()))

	// Query: average temperature of the second day only. The reader
	// decompresses just the vectors that overlap the requested window —
	// vector skipping over compressed data, which block-based codecs
	// cannot do.
	col, err := alp.Open(data)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := perDay, 2*perDay
	buf := make([]float64, alp.VectorSize)
	sum, count, touched := 0.0, 0, 0
	for v := lo / alp.VectorSize; v*alp.VectorSize < hi; v++ {
		n, err := col.ReadVector(v, buf)
		if err != nil {
			log.Fatal(err)
		}
		touched++
		base := v * alp.VectorSize
		for i := 0; i < n; i++ {
			if idx := base + i; idx >= lo && idx < hi {
				sum += buf[i]
				count++
			}
		}
	}
	fmt.Printf("day-2 average: %.3f over %d readings\n", sum/float64(count), count)
	fmt.Printf("vectors touched: %d of %d (%.1f%% of compressed data skipped)\n",
		touched, col.NumVectors(), 100*(1-float64(touched)/float64(col.NumVectors())))
}
