// Quickstart: compress a slice of doubles with ALP, decompress it, and
// verify bit-exact round-tripping.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/goalp/alp"
)

func main() {
	// Doubles that originated as decimals — prices with two decimal
	// places — are ALP's home turf.
	r := rand.New(rand.NewSource(1))
	prices := make([]float64, 1_000_000)
	level := 100.0
	for i := range prices {
		level += r.NormFloat64() * 0.5
		prices[i] = math.Round(level*100) / 100
	}

	// One-shot API.
	data := alp.Encode(prices)
	back, err := alp.Decode(data)
	if err != nil {
		log.Fatal(err)
	}
	for i := range prices {
		if math.Float64bits(back[i]) != math.Float64bits(prices[i]) {
			log.Fatalf("value %d did not round trip", i)
		}
	}

	fmt.Printf("values:       %d\n", len(prices))
	fmt.Printf("raw size:     %d bytes\n", len(prices)*8)
	fmt.Printf("compressed:   %d bytes\n", len(data))
	fmt.Printf("bits/value:   %.2f\n", float64(len(data))*8/float64(len(prices)))
	fmt.Printf("ratio:        %.1fx\n", float64(len(prices)*8)/float64(len(data)))
	fmt.Println("round trip:   bit-exact")

	// Columnar API: decompress a single vector without touching the
	// rest (the access pattern of a scan with predicate push-down).
	col, err := alp.Open(data)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]float64, alp.VectorSize)
	n, err := col.ReadVector(500, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vector 500:   %d values, first = %v\n", n, buf[0])
}
