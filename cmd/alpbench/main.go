// Command alpbench regenerates the tables and figures of the ALP
// paper's evaluation section on the synthesized datasets. Each
// experiment is selected with -exp; see DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	alpbench -exp table4                 # compression ratios (Table 4)
//	alpbench -exp fig1 -ghz 3.0          # ratio/speed scatter at 3 GHz
//	alpbench -exp table6 -scale 4000000  # end-to-end engine experiment
//	alpbench -exp all                    # everything
//
// Observability: -metrics ADDR enables the codec-wide stats collector
// and serves, for the lifetime of the run, an HTTP endpoint with
// /metrics (the full metrics snapshot as JSON: counters plus the
// lat_*/stage_* latency-histogram quantiles), /debug/vars (expvar,
// including the published "alp" variable) and /debug/pprof (CPU, heap,
// mutex and block profiles). -stats prints the final snapshot to
// stderr after the experiments finish.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"github.com/goalp/alp"
	"github.com/goalp/alp/internal/bench"
	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/servedbench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, fig1, table2, fig3, table4, table5, fig4, fig5, sampling, table6, fig6, table7, alprd, filter, parallel, servedscan")
		n       = flag.Int("n", dataset.DefaultN, "values per dataset")
		ghz     = flag.Float64("ghz", bench.DefaultGHz, "CPU clock in GHz for tuples-per-cycle conversion")
		minDur  = flag.Duration("mindur", 20*time.Millisecond, "minimum measurement window per timing point")
		scale   = flag.Int("scale", 2_000_000, "values for the end-to-end experiments (paper: 1e9)")
		threads = flag.String("threads", "1,8,16", "thread counts for the end-to-end experiments")
		encWork = flag.String("encworkers", "1,2,4,8", "worker counts for the parallel pipeline experiment")
		metrics = flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :6060) and enable stats collection")
		stats   = flag.Bool("stats", false, "enable stats collection and print the final snapshot to stderr")
		snap    = flag.String("snapshot", "", "write the core throughput snapshot (encode/decode/filter MV/s as JSON) to this file and exit (\"-\" = stdout)")
	)
	flag.Parse()

	if *snap != "" {
		out := os.Stdout
		if *snap != "-" {
			f, err := os.Create(*snap)
			if err != nil {
				fmt.Fprintln(os.Stderr, "alpbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		sopt := bench.Options{N: *n, GHz: *ghz, MinDur: *minDur}
		served, err := servedbench.Measure(*n, sopt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "alpbench: served-scan sweep:", err)
			os.Exit(1)
		}
		clustered, err := servedbench.MeasureClusteredAgg(*n, []int{1, 2, 4}, sopt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "alpbench: clustered-agg scaling:", err)
			os.Exit(1)
		}
		if err := bench.RunSnapshot(out, sopt, served, clustered); err != nil {
			fmt.Fprintln(os.Stderr, "alpbench: snapshot:", err)
			os.Exit(1)
		}
		return
	}

	if *metrics != "" || *stats {
		alp.EnableStats()
	}
	if *metrics != "" {
		expvar.Publish("alp", expvar.Func(func() any { return json.RawMessage(alp.MetricsJSON()) }))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, alp.MetricsJSON())
		})
		go func() {
			if err := http.ListenAndServe(*metrics, nil); err != nil {
				fmt.Fprintln(os.Stderr, "alpbench: metrics server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "alpbench: serving /metrics, /debug/vars, /debug/pprof on %s\n", *metrics)
	}

	opt := bench.Options{N: *n, GHz: *ghz, MinDur: *minDur}
	var threadList []int
	for _, part := range strings.Split(*threads, ",") {
		var t int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &t); err == nil && t > 0 {
			threadList = append(threadList, t)
		}
	}
	if len(threadList) == 0 {
		threadList = []int{1, 8, 16}
	}
	var workerList []int
	for _, part := range strings.Split(*encWork, ",") {
		var t int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &t); err == nil && t > 0 {
			workerList = append(workerList, t)
		}
	}
	if len(workerList) == 0 {
		workerList = []int{1, 2, 4, 8}
	}

	w := os.Stdout
	run := func(name string, fn func()) {
		if *exp == "all" || *exp == name {
			fn()
			fmt.Fprintln(w)
		}
	}

	known := map[string]bool{"all": true, "fig1": true, "table2": true, "fig3": true,
		"table4": true, "table5": true, "fig4": true, "fig5": true, "sampling": true,
		"table6": true, "fig6": true, "table7": true, "alprd": true, "filter": true,
		"parallel": true, "servedscan": true}
	if !known[*exp] {
		fmt.Fprintf(os.Stderr, "alpbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}

	run("table2", func() { bench.RunTable2(w, opt) })
	run("fig3", func() { bench.RunFig3(w, opt) })
	run("table4", func() { bench.RunTable4(w, opt) })
	run("fig1", func() { bench.RunFig1(w, opt) })
	run("table5", func() { bench.RunTable5(w, opt) })
	run("fig4", func() { bench.RunFig4(w, opt) })
	run("fig5", func() { bench.RunFig5(w, opt) })
	run("sampling", func() { bench.RunSampling(w, opt) })
	run("table6", func() { bench.RunTable6(w, opt, *scale, threadList) })
	run("fig6", func() { bench.RunFig6(w, opt, *scale, threadList[len(threadList)-1]) })
	run("table7", func() { bench.RunTable7(w, opt) })
	run("alprd", func() { bench.RunALPRD(w, opt) })
	run("filter", func() { bench.RunFilter(w, opt, *scale) })
	run("parallel", func() { bench.RunParallel(w, opt, *scale, workerList) })
	run("servedscan", func() { servedbench.Run(w, opt, *scale) })

	if *stats {
		s := alp.ReadStats()
		fmt.Fprintln(os.Stderr, "alpbench: codec stats:", alp.MetricsJSON())
		fmt.Fprintf(os.Stderr, "alpbench: encode %.1f ns/value, decode %.1f ns/value, zone-map skip rate %.1f%%\n",
			s.EncodeNsPerValue(), s.DecodeNsPerValue(), 100*s.SkipRate())
	}
}
