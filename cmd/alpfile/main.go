// Command alpfile compresses and decompresses files of float64 values
// with ALP.
//
// Input for compress is either raw little-endian float64 (default) or
// text with one number per line (-text). Output of decompress follows
// the same convention.
//
// Usage:
//
//	alpfile [-text] compress   input.bin  output.alp
//	alpfile [-text] decompress input.alp  output.bin
//	alpfile stat input.alp
//	alpfile [-v] inspect input.alp
//	alpfile [-json] [-metric a,b] metrics snapshot.alpm [output]
//
// inspect prints a per-row-group report of every adaptive decision the
// encoder made — scheme, (e,f) candidates, bit widths, exception
// counts, compressed bytes — and with -v a per-vector breakdown.
//
// metrics dumps an alpserved self-telemetry snapshot (written with
// -metrics-snapshot) to CSV (metric,ts_us,value) or JSON.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"github.com/goalp/alp"
)

func main() {
	text := flag.Bool("text", false, "treat raw files as text, one value per line")
	verbose := flag.Bool("v", false, "inspect: also print the per-vector breakdown")
	workers := flag.Int("workers", 0, "encode/decode worker count (0 = one per CPU, 1 = serial)")
	jsonOut := flag.Bool("json", false, "metrics: dump as JSON instead of CSV")
	metric := flag.String("metric", "", "metrics: dump only these comma-separated series (default all)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: alpfile [-text] [-v] [-workers N] compress|decompress|stat|inspect <input> [output]")
		fmt.Fprintln(os.Stderr, "       alpfile [-json] [-metric a,b] metrics <snapshot.alpm> [output]")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "compress":
		err = compress(args[1], arg(args, 2), *text, *workers)
	case "decompress":
		err = decompress(args[1], arg(args, 2), *text, *workers)
	case "stat":
		err = stat(args[1])
	case "inspect":
		err = inspect(os.Stdout, args[1], *verbose)
	case "metrics":
		err = metricsCmd(args[1], arg(args, 2), *jsonOut, *metric)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "alpfile:", err)
		os.Exit(1)
	}
}

func arg(args []string, i int) string {
	if i < len(args) {
		return args[i]
	}
	return ""
}

func readValues(path string, text bool) ([]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if text {
		var values []float64
		sc := bufio.NewScanner(strings.NewReader(string(data)))
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" {
				continue
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			values = append(values, v)
		}
		return values, sc.Err()
	}
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("%s: length %d is not a multiple of 8 (raw float64 expected; use -text for text input)", path, len(data))
	}
	values := make([]float64, len(data)/8)
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return values, nil
}

func writeValues(path string, values []float64, text bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if text {
		for _, v := range values {
			if _, err := fmt.Fprintf(w, "%v\n", v); err != nil {
				f.Close()
				return err
			}
		}
	} else {
		var buf [8]byte
		for _, v := range values {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := w.Write(buf[:]); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func compress(in, out string, text bool, workers int) error {
	if out == "" {
		return fmt.Errorf("compress needs an output path")
	}
	values, err := readValues(in, text)
	if err != nil {
		return err
	}
	col := alp.CompressParallel(values, workers)
	if err := os.WriteFile(out, col.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d values, %.2f bits/value (%.2fx), scheme %s\n",
		out, col.Len(), col.BitsPerValue(), 64/col.BitsPerValue(), schemeName(col))
	return nil
}

func decompress(in, out string, text bool, workers int) error {
	if out == "" {
		return fmt.Errorf("decompress needs an output path")
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	values, err := alp.DecodeParallel(data, workers)
	if err != nil {
		return err
	}
	if err := writeValues(out, values, text); err != nil {
		return err
	}
	fmt.Printf("%s: %d values\n", out, len(values))
	return nil
}

func stat(in string) error {
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	col, err := alp.Open(data)
	if err != nil {
		return err
	}
	fmt.Printf("values:       %d\n", col.Len())
	fmt.Printf("vectors:      %d\n", col.NumVectors())
	fmt.Printf("compressed:   %d bytes\n", len(data))
	fmt.Printf("bits/value:   %.2f (raw float64 is 64)\n", col.BitsPerValue())
	fmt.Printf("ratio:        %.2fx\n", 64/col.BitsPerValue())
	fmt.Printf("scheme:       %s\n", schemeName(col))
	return nil
}

// inspect dumps the per-row-group (and with verbose, per-vector)
// introspection report of a compressed column.
func inspect(w io.Writer, in string, verbose bool) error {
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	info, err := alp.ColumnStats(data)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %s\n", in, info.Summary())
	fmt.Fprintf(w, "stream:     %d bytes (payload %d bytes, %.2f bits/value)\n",
		len(data), info.CompressedBits/8, info.BitsPerValue)
	fmt.Fprintf(w, "layout:     %d row-groups, %d vectors, zone map: %v\n\n",
		info.NumRowGroups, info.NumVectors, info.HasZoneMap)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "rg\tscheme\tvalues\tvectors\te/f | cut\twidth(min/avg/max)\texc\tbytes\t")
	for _, rg := range info.RowGroups {
		minW, maxW, sumW := ^uint(0), uint(0), uint(0)
		for _, v := range rg.Vectors {
			if v.BitWidth < minW {
				minW = v.BitWidth
			}
			if v.BitWidth > maxW {
				maxW = v.BitWidth
			}
			sumW += v.BitWidth
		}
		avgW := 0.0
		if len(rg.Vectors) > 0 {
			avgW = float64(sumW) / float64(len(rg.Vectors))
		} else {
			minW = 0
		}
		params := ""
		if rg.Scheme == alp.SchemeRD {
			params = fmt.Sprintf("cut=%d dict=%d", rg.CutPosition, rg.DictSize)
		} else {
			combos := make([]string, 0, len(rg.Combos))
			for _, c := range rg.Combos {
				combos = append(combos, fmt.Sprintf("%d,%d", c.E, c.F))
			}
			params = strings.Join(combos, " ")
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%s\t%d/%.1f/%d\t%d\t%d\t\n",
			rg.Index, rg.Scheme, rg.Values, len(rg.Vectors), params,
			minW, avgW, maxW, rg.Exceptions, rg.CompressedBits/8)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if verbose {
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "vec\tscheme\tvalues\te\tf\twidth\texc\tbytes\t")
		for _, rg := range info.RowGroups {
			for _, v := range rg.Vectors {
				fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
					v.Index, rg.Scheme, v.Values, v.E, v.F, v.BitWidth,
					v.Exceptions, (v.CompressedBits+7)/8)
			}
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func schemeName(col *alp.Column) string {
	if col.UsedRD() {
		return "ALP + ALP_rd"
	}
	return "ALP"
}
