// Command alpfile compresses and decompresses files of float64 values
// with ALP.
//
// Input for compress is either raw little-endian float64 (default) or
// text with one number per line (-text). Output of decompress follows
// the same convention.
//
// Usage:
//
//	alpfile [-text] compress   input.bin  output.alp
//	alpfile [-text] decompress input.alp  output.bin
//	alpfile stat input.alp
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"github.com/goalp/alp"
)

func main() {
	text := flag.Bool("text", false, "treat raw files as text, one value per line")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: alpfile [-text] compress|decompress|stat <input> [output]")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "compress":
		err = compress(args[1], arg(args, 2), *text)
	case "decompress":
		err = decompress(args[1], arg(args, 2), *text)
	case "stat":
		err = stat(args[1])
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "alpfile:", err)
		os.Exit(1)
	}
}

func arg(args []string, i int) string {
	if i < len(args) {
		return args[i]
	}
	return ""
}

func readValues(path string, text bool) ([]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if text {
		var values []float64
		sc := bufio.NewScanner(strings.NewReader(string(data)))
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" {
				continue
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			values = append(values, v)
		}
		return values, sc.Err()
	}
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("%s: length %d is not a multiple of 8 (raw float64 expected; use -text for text input)", path, len(data))
	}
	values := make([]float64, len(data)/8)
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return values, nil
}

func writeValues(path string, values []float64, text bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if text {
		for _, v := range values {
			if _, err := fmt.Fprintf(w, "%v\n", v); err != nil {
				f.Close()
				return err
			}
		}
	} else {
		var buf [8]byte
		for _, v := range values {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := w.Write(buf[:]); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func compress(in, out string, text bool) error {
	if out == "" {
		return fmt.Errorf("compress needs an output path")
	}
	values, err := readValues(in, text)
	if err != nil {
		return err
	}
	col := alp.Compress(values)
	if err := os.WriteFile(out, col.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d values, %.2f bits/value (%.2fx), scheme %s\n",
		out, col.Len(), col.BitsPerValue(), 64/col.BitsPerValue(), schemeName(col))
	return nil
}

func decompress(in, out string, text bool) error {
	if out == "" {
		return fmt.Errorf("decompress needs an output path")
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	values, err := alp.Decode(data)
	if err != nil {
		return err
	}
	if err := writeValues(out, values, text); err != nil {
		return err
	}
	fmt.Printf("%s: %d values\n", out, len(values))
	return nil
}

func stat(in string) error {
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	col, err := alp.Open(data)
	if err != nil {
		return err
	}
	fmt.Printf("values:       %d\n", col.Len())
	fmt.Printf("vectors:      %d\n", col.NumVectors())
	fmt.Printf("compressed:   %d bytes\n", len(data))
	fmt.Printf("bits/value:   %.2f (raw float64 is 64)\n", col.BitsPerValue())
	fmt.Printf("ratio:        %.2fx\n", 64/col.BitsPerValue())
	fmt.Printf("scheme:       %s\n", schemeName(col))
	return nil
}

func schemeName(col *alp.Column) string {
	if col.UsedRD() {
		return "ALP + ALP_rd"
	}
	return "ALP"
}
