// The metrics subcommand: dump an ALPM metrics-history snapshot
// (written by alpserved -metrics-snapshot) to CSV or JSON. The sealed
// windows are decoded through the same ALP reader the server queries
// with, so the dump is the exact recorded history, bit for bit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/goalp/alp/internal/metricstore"
)

// metricsCmd reads snapPath and writes the history to outPath ("" or
// "-" = stdout). metric filters to a comma-separated list of series
// (empty = all). jsonOut selects JSON over the default CSV.
func metricsCmd(snapPath, outPath string, jsonOut bool, metric string) error {
	data, err := os.ReadFile(snapPath)
	if err != nil {
		return err
	}
	st, err := metricstore.ReadStore(data)
	if err != nil {
		return err
	}

	names := st.Names()
	if metric != "" {
		names = strings.Split(metric, ",")
	}

	var out io.Writer = os.Stdout
	if outPath != "" && outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	if jsonOut {
		return writeMetricsJSON(w, st, names)
	}
	return writeMetricsCSV(w, st, names)
}

// writeMetricsCSV emits long-format CSV: metric,ts_us,value — one row
// per retained sample, values in shortest-round-trip form.
func writeMetricsCSV(w *bufio.Writer, st *metricstore.Store, names []string) error {
	if _, err := fmt.Fprintln(w, "metric,ts_us,value"); err != nil {
		return err
	}
	for _, name := range names {
		ts, vals, err := st.Raw(name)
		if err != nil {
			return err
		}
		for i := range ts {
			fmt.Fprintf(w, "%s,%d,%s\n", name, int64(ts[i]), strconv.FormatFloat(vals[i], 'g', -1, 64))
		}
	}
	return w.Flush()
}

// metricsDump is the JSON shape: store footprint plus one entry per
// series with parallel timestamp/value arrays.
type metricsDump struct {
	Stats  metricstore.Stats  `json:"stats"`
	Series []metricsDumpEntry `json:"series"`
}

type metricsDumpEntry struct {
	Metric string    `json:"metric"`
	TsUs   []int64   `json:"ts_us"`
	Values []float64 `json:"values"`
}

func writeMetricsJSON(w *bufio.Writer, st *metricstore.Store, names []string) error {
	dump := metricsDump{Stats: st.Stats(), Series: make([]metricsDumpEntry, 0, len(names))}
	for _, name := range names {
		ts, vals, err := st.Raw(name)
		if err != nil {
			return err
		}
		e := metricsDumpEntry{Metric: name, TsUs: make([]int64, len(ts)), Values: vals}
		for i := range ts {
			e.TsUs[i] = int64(ts[i])
		}
		dump.Series = append(dump.Series, e)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(dump); err != nil {
		return err
	}
	return w.Flush()
}
