// Command alpgauntlet runs the cross-domain compression gauntlet and
// gates on regressions against a committed baseline.
//
// Usage:
//
//	alpgauntlet -o BENCH_gauntlet.json            # run, write the dated document
//	alpgauntlet -check BENCH_gauntlet.json        # run fresh, diff vs baseline, exit 1 on regression
//	alpgauntlet -check BASE -o FRESH.json         # gate and also keep the fresh run (CI artifact)
//	alpgauntlet -table                            # run and print the per-domain winners table
//	alpgauntlet -domains hpc,ml -n 65536 -reps 3  # restrict and rescale the sweep
//
// The regression rules (>10% throughput drop plus documented noise,
// >2% compression-ratio growth, missing entries, invalid values) live
// in internal/gauntlet; `make gauntlet` and `make gauntlet-check` are
// the canonical invocations. Before -check fails it re-measures the
// flagged cells up to -retries times and keeps the best observation —
// real regressions reproduce under re-measurement, scheduling jitter
// does not.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/gauntlet"
)

func main() {
	var (
		out     = flag.String("o", "", "write the fresh gauntlet document to this file (\"-\" = stdout)")
		check   = flag.String("check", "", "baseline BENCH_gauntlet.json to gate the fresh run against; exit 1 on regression")
		table   = flag.Bool("table", false, "print the per-domain results table to stdout")
		n       = flag.Int("n", dataset.DefaultN, "values per dataset")
		minDur  = flag.Duration("mindur", 10*time.Millisecond, "minimum length of one measurement window")
		reps    = flag.Int("reps", 5, "measurement windows per metric (median-of-K)")
		domains = flag.String("domains", "", "comma-separated domain filter (default: all)")
		retries = flag.Int("retries", gauntlet.DefaultGateRetries, "re-measure passes granted to flagged cells before -check fails")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "alpgauntlet:", err)
		os.Exit(1)
	}

	opt := gauntlet.Options{N: *n, MinDur: *minDur, Reps: *reps}
	if *domains != "" {
		for _, d := range strings.Split(*domains, ",") {
			if d = strings.TrimSpace(d); d != "" {
				opt.Domains = append(opt.Domains, d)
			}
		}
	}
	if *out == "" && *check == "" && !*table {
		*out = "-" // bare invocation: run and print the document
	}

	var baseline *gauntlet.Doc
	if *check != "" {
		doc, err := gauntlet.Load(*check)
		if err != nil {
			fail(err)
		}
		baseline = doc
		// The gate re-measures at the baseline's scale; a -n override
		// that disagrees would be rejected by Compare anyway.
		opt.N = doc.N
	}

	fmt.Fprintf(os.Stderr, "alpgauntlet: measuring %d values/dataset, median of %d windows >= %v\n",
		opt.N, opt.Reps, opt.MinDur)
	start := time.Now()
	var (
		doc *gauntlet.Doc
		rep *gauntlet.Report
		err error
	)
	if baseline != nil {
		// The gate re-measures flagged cells before failing, so a busy
		// machine's scheduling jitter doesn't masquerade as a regression.
		doc, rep, err = gauntlet.Gate(baseline, opt, *retries, os.Stderr)
	} else {
		doc, err = gauntlet.Measure(opt)
	}
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "alpgauntlet: measured %d domains in %v (noise bound %.2f%%)\n",
		len(doc.Domains), time.Since(start).Round(time.Second), 100*doc.NoiseBound)

	if *out != "" {
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := doc.Write(w); err != nil {
			fail(err)
		}
	}
	if *table {
		gauntlet.WriteTable(os.Stdout, doc)
	}
	if rep != nil {
		rep.Format(os.Stdout)
		if !rep.OK() {
			os.Exit(1)
		}
	}
}
