package main

import (
	"bufio"
	"context"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/goalp/alp/client"
)

// TestMonSmoke is the end-to-end metrics-history smoke run behind
// `make mon-smoke`: boot the real binary with a 10ms scrape interval,
// drive traffic, range-query the self-telemetry history through the
// typed client, and assert non-empty, bit-identical results across
// repeated queries of the same fixed range — sealed-window migration
// between the two reads must not change a single bit. Shutdown writes
// an ALPM snapshot, which the alpfile metrics dumper then reads back.
func TestMonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary build+boot skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "alpserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building alpserved: %v", err)
	}
	snap := filepath.Join(dir, "history.alpm")

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0",
		"-metrics-history",
		"-metrics-interval", "10ms",
		"-metrics-window", "64",
		"-metrics-snapshot", snap,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting alpserved: %v", err)
	}
	waitDone := make(chan struct{})
	var waitErr error
	go func() { waitErr = cmd.Wait(); close(waitDone) }()
	defer func() {
		cmd.Process.Kill()
		<-waitDone
	}()

	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if addr == "" {
		t.Fatalf("alpserved never reported its address (scan err: %v)", sc.Err())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl := client.New("http://" + addr)

	// Drive traffic while the 10ms recorder scrapes underneath, long
	// enough for at least one 64-sample window to seal (~640ms).
	values := make([]float64, 8192)
	for i := range values {
		values[i] = float64(i % 1000)
	}
	if _, err := cl.Ingest(ctx, "mon", values); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	deadline := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := cl.Agg(ctx, "mon", client.Between(10, 500)); err != nil {
			t.Fatalf("agg: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	series, stats, err := cl.MetricsSeries(ctx)
	if err != nil {
		t.Fatalf("series listing: %v", err)
	}
	if len(series) == 0 || stats.Scrapes == 0 {
		t.Fatalf("empty history: %d series, %d scrapes", len(series), stats.Scrapes)
	}
	if stats.SealedWindows == 0 {
		t.Fatalf("no sealed windows after %d scrapes at window 64", stats.Scrapes)
	}
	if stats.BitsPerValue <= 0 || stats.BitsPerValue >= 64 {
		t.Fatalf("bits/value = %v, want a real compression ratio in (0, 64)", stats.BitsPerValue)
	}

	// Fixed range ending now: querying it twice must be bit-identical
	// even though scrapes continue and windows seal between the reads.
	until := time.Now()
	since := until.Add(-time.Minute)
	q := func() client.HistoryResult {
		t.Helper()
		res, err := cl.MetricsHistory(ctx, "server_requests", since, until, 100*time.Millisecond, "sum")
		if err != nil {
			t.Fatalf("history query: %v", err)
		}
		return res
	}
	r1, r2 := q(), q()
	if len(r1.Points) == 0 {
		t.Fatal("history query returned no points")
	}
	if len(r1.Points) != len(r2.Points) {
		t.Fatalf("repeated query: %d then %d points", len(r1.Points), len(r2.Points))
	}
	var total float64
	for i := range r1.Points {
		if r1.Points[i].TsUs != r2.Points[i].TsUs ||
			math.Float64bits(r1.Points[i].Value) != math.Float64bits(r2.Points[i].Value) ||
			r1.Points[i].Count != r2.Points[i].Count {
			t.Fatalf("repeated query diverged at point %d: %+v != %+v", i, r1.Points[i], r2.Points[i])
		}
		total += r1.Points[i].Value
	}
	if total == 0 {
		t.Fatal("server_requests deltas sum to zero despite driven traffic")
	}

	// Graceful shutdown writes the ALPM snapshot.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signaling: %v", err)
	}
	select {
	case <-waitDone:
		if waitErr != nil {
			t.Fatalf("alpserved exited uncleanly: %v", waitErr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("alpserved did not exit after SIGTERM")
	}

	// The alpfile dumper reads the snapshot back.
	alpfile := filepath.Join(dir, "alpfile")
	build = exec.Command("go", "build", "-o", alpfile, "../alpfile")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building alpfile: %v", err)
	}
	out, err := exec.Command(alpfile, "-metric", "server_requests", "metrics", snap).Output()
	if err != nil {
		t.Fatalf("alpfile metrics: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) < 2 || lines[0] != "metric,ts_us,value" {
		t.Fatalf("alpfile metrics dump:\n%s", out)
	}
	for _, line := range lines[1:] {
		if !strings.HasPrefix(line, "server_requests,") {
			t.Fatalf("unexpected dump row %q", line)
		}
	}
}
