package main

import (
	"bufio"
	"context"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/engine"
)

// TestServeSmoke is the end-to-end smoke run behind `make serve-smoke`:
// build the real binary, boot it on an ephemeral port, drive an
// ingest -> scan -> agg round-trip through the typed client, check the
// agg against the in-process engine, and shut the process down
// gracefully with SIGTERM.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary build+boot skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "alpserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building alpserved: %v", err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-threads", "1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting alpserved: %v", err)
	}
	// waitDone is closed (not sent to) when the process is reaped, so
	// both the success path and the deferred cleanup can wait on it.
	waitDone := make(chan struct{})
	var waitErr error
	go func() { waitErr = cmd.Wait(); close(waitDone) }()
	defer func() {
		cmd.Process.Kill()
		<-waitDone
	}()

	// The binary prints "alpserved: listening on ADDR" once bound.
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if addr == "" {
		t.Fatalf("alpserved never reported its address (scan err: %v)", sc.Err())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl := client.New("http://" + addr)

	rng := rand.New(rand.NewSource(99))
	values := make([]float64, 102400+2048)
	for i := range values {
		values[i] = math.Round(rng.Float64()*10000) / 100
	}
	if _, err := cl.Ingest(ctx, "smoke", values); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	lo, hi := 25.0, 75.0
	agg, err := cl.Agg(ctx, "smoke", client.Between(lo, hi))
	if err != nil {
		t.Fatalf("agg: %v", err)
	}
	want, _ := engine.BuildALP(values).FilterAgg(1, engine.Between(lo, hi))
	if agg.Count != want.Count || math.Float64bits(agg.Sum) != math.Float64bits(want.Sum) {
		t.Fatalf("agg = (sum %v, count %d), want (sum %v, count %d)",
			agg.Sum, agg.Count, want.Sum, want.Count)
	}

	rows, err := cl.Scan(ctx, "smoke", client.Between(lo, hi))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if int64(len(rows)) != want.Count {
		t.Fatalf("scan returned %d rows, want %d", len(rows), want.Count)
	}

	if m, err := cl.Metrics(ctx); err != nil {
		t.Fatalf("metrics: %v", err)
	} else if m["server_requests"] < 3 {
		t.Errorf("server_requests = %d, want >= 3", m["server_requests"])
	}

	// Graceful shutdown: SIGTERM, clean exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signaling: %v", err)
	}
	select {
	case <-waitDone:
		if waitErr != nil {
			t.Fatalf("alpserved exited uncleanly: %v", waitErr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("alpserved did not exit after SIGTERM")
	}
}
