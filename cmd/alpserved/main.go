// Command alpserved serves ALP-compressed columns over HTTP: streaming
// ingest into the parallel Writer, server-side predicate pushdown
// (agg/count/scan), raw encoded-vector shipping for thin clients, and
// the codec-wide metrics endpoint. With -metrics-history the server
// also records its own telemetry into an ALP-compressed time-series
// store (internal/metricstore) queryable at /v1/metrics/history, and
// writes an ALPM snapshot on shutdown when -metrics-snapshot is set.
// See internal/server for the API and the client package for the typed
// Go client.
//
// Usage:
//
//	alpserved -addr :8080
//	alpserved -addr 127.0.0.1:0 -max-concurrent 32 -timeout 10s
//
// The listen address is printed as "alpserved: listening on ADDR" once
// the socket is bound (with -addr :0 this is how callers learn the
// port). SIGINT/SIGTERM trigger a graceful drain: in-flight requests
// complete, new ones are refused with 503, then the listener closes.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/goalp/alp"
	"github.com/goalp/alp/internal/metricstore"
	"github.com/goalp/alp/internal/server"
)

// openLog resolves a log-destination flag: empty disables, "-" means
// stderr, anything else appends to that file. The server serializes
// writes, so O_APPEND is enough for a well-formed line stream.
func openLog(path string) io.Writer {
	switch path {
	case "":
		return nil
	case "-":
		return os.Stderr
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alpserved:", err)
		os.Exit(1)
	}
	return f
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		maxConc = flag.Int("max-concurrent", 0, "max in-flight requests before shedding with 429 (0 = 4x GOMAXPROCS)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		maxBody = flag.Int64("max-body", 1<<30, "ingest body cap in bytes")
		workers = flag.Int("ingest-workers", 0, "row-group encode workers per ingest (0 = one per CPU)")
		threads = flag.Int("threads", 1, "default scan parallelism (1 = bit-identical to serial)")
		retryIn = flag.Duration("retry-after", time.Second, "Retry-After hint returned with shed load")
		drainT  = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		debug   = flag.Bool("debug", false, "also serve /debug/vars and /debug/pprof")
		accLog  = flag.String("access-log", "", "write a structured JSON access-log line per request to this file (\"-\" = stderr)")
		slowLog = flag.String("slow-log", "", "write slow-query lines to this file (\"-\" = stderr)")
		slowAt  = flag.Duration("slow-threshold", 250*time.Millisecond, "requests at least this slow go to the slow-query log")

		monOn       = flag.Bool("metrics-history", false, "record the server's own telemetry into an ALP-compressed history store (GET /v1/metrics/history)")
		monInterval = flag.Duration("metrics-interval", 10*time.Second, "scrape period of the metrics-history recorder")
		monRetain   = flag.Int64("metrics-retention", 4<<20, "compressed budget for sealed history windows in bytes; oldest windows are evicted past it")
		monWindow   = flag.Int("metrics-window", 512, "scrapes per sealed history window")
		monBuckets  = flag.Bool("metrics-buckets", false, "also record per-bucket histogram series (~6x more series)")
		monSnap     = flag.String("metrics-snapshot", "", "write an ALPM snapshot of the history store to this file on shutdown (read with: alpfile metrics)")
	)
	flag.Parse()

	alp.EnableStats()
	var mon *metricstore.Store
	if *monOn {
		mon = metricstore.New(metricstore.Options{
			Interval:         *monInterval,
			WindowSamples:    *monWindow,
			RetentionBytes:   *monRetain,
			HistogramBuckets: *monBuckets,
		})
		mon.ScrapeOnce() // a first sample before any traffic: history is never empty
		mon.Start()
	}
	srv := server.New(server.Options{
		MaxConcurrent:      *maxConc,
		RequestTimeout:     *timeout,
		MaxBodyBytes:       *maxBody,
		RetryAfter:         *retryIn,
		IngestWorkers:      *workers,
		DefaultThreads:     *threads,
		AccessLog:          openLog(*accLog),
		SlowQueryLog:       openLog(*slowLog),
		SlowQueryThreshold: *slowAt,
		MetricsHistory:     mon,
	})

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *debug {
		expvar.Publish("alp", expvar.Func(func() any { return alp.ReadStats() }))
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alpserved:", err)
		os.Exit(1)
	}
	fmt.Printf("alpserved: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "alpserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "alpserved: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	// Drain the handler gate first (in-flight requests complete, new
	// ones get 503), then close the listener and idle connections.
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "alpserved: drain:", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "alpserved: shutdown:", err)
	}
	if mon != nil {
		mon.Stop()
		mon.ScrapeOnce() // final sample so the snapshot covers the full run
		if *monSnap != "" {
			if err := writeSnapshot(mon, *monSnap); err != nil {
				fmt.Fprintln(os.Stderr, "alpserved: metrics snapshot:", err)
			} else {
				fmt.Fprintf(os.Stderr, "alpserved: metrics snapshot written to %s\n", *monSnap)
			}
		}
	}
	fmt.Fprintln(os.Stderr, "alpserved: stopped")
}

// writeSnapshot persists the history store in ALPM format, atomically
// (write to a temp file in the same directory, then rename).
func writeSnapshot(mon *metricstore.Store, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := mon.WriteTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
