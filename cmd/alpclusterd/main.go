// Command alpclusterd fronts N alpserved backends with the
// scatter-gather coordinator (internal/cluster): it serves the same
// /v1/columns HTTP surface as a single alpserved — ingest, filtered
// agg/count/scan pushdown, compressed export — while hash-partitioning
// each column's row-groups across the backends with R-way replication.
// Results are bit-identical to a single node at any shard count;
// backends are health-probed and circuit-broken, replicated reads fail
// over, and a query that loses every replica of a row-group degrades
// to a typed 503 ("partial_unavailable"), never a silent partial.
// /v1/cluster/map exposes the partition map and /v1/cluster/rebalance
// moves row-group ranges between backends as compressed bytes.
//
// Usage:
//
//	alpclusterd -addr :8090 -backends http://127.0.0.1:8081,http://127.0.0.1:8082
//	alpclusterd -addr :8090 -backends ... -replicas 2 -probe-interval 2s
//
// The listen address is printed as "alpclusterd: listening on ADDR"
// once the socket is bound. SIGINT/SIGTERM shut the coordinator down;
// the backends own the data and keep running.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/goalp/alp"
	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "listen address (use :0 for an ephemeral port)")
		backends = flag.String("backends", "", "comma-separated alpserved base URLs (required)")
		replicas = flag.Int("replicas", 1, "replicas per row-group (clamped to the backend count)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		maxBody  = flag.Int64("max-body", 1<<30, "ingest body cap in bytes")
		workers  = flag.Int("encode-workers", 0, "row-group encode workers per ingest (0 = one per CPU)")
		scanConc = flag.Int("scan-concurrency", 4, "scan runs fetched concurrently (emission stays ordered)")
		probeInt = flag.Duration("probe-interval", 2*time.Second, "backend /readyz probe period (0 disables probing)")
		breakAt  = flag.Int("breaker-threshold", 3, "consecutive failures that open a backend's circuit breaker")
		cooldown = flag.Duration("breaker-cooldown", 500*time.Millisecond, "open-breaker cooldown before a half-open trial")
		retries  = flag.Int("retries", 2, "per-backend client retries on retryable failures")
	)
	flag.Parse()

	// The coordinator's scatter/failover/straggler counters report into
	// the process-wide obs collector, same as alpserved; without this
	// /metrics would serve zeros.
	alp.EnableStats()

	urls := strings.Split(*backends, ",")
	clean := urls[:0]
	for _, u := range urls {
		if u = strings.TrimSpace(u); u != "" {
			clean = append(clean, strings.TrimRight(u, "/"))
		}
	}
	if len(clean) == 0 {
		fmt.Fprintln(os.Stderr, "alpclusterd: -backends requires at least one alpserved URL")
		os.Exit(1)
	}

	co := cluster.New(clean, cluster.Options{
		Replicas:        *replicas,
		EncodeWorkers:   *workers,
		ScanConcurrency: *scanConc,
		Pool: client.PoolOptions{
			FailureThreshold: *breakAt,
			Cooldown:         *cooldown,
			ClientOptions:    []client.Option{client.WithRetries(*retries)},
		},
	})
	defer co.Close()
	co.Pool().Probe(context.Background()) // one synchronous probe so the first plan sees real health
	if *probeInt > 0 {
		co.Pool().StartProbes(*probeInt)
	}

	srv := cluster.NewServer(co, cluster.ServerOptions{
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alpclusterd:", err)
		os.Exit(1)
	}
	fmt.Printf("alpclusterd: listening on %s\n", ln.Addr())
	m := co.Map()
	fmt.Fprintf(os.Stderr, "alpclusterd: %d backend(s), %d replica(s) per row-group, epoch %d\n",
		len(m.Backends), m.Replicas, m.Epoch)

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "alpclusterd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "alpclusterd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "alpclusterd: shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "alpclusterd: stopped")
}
