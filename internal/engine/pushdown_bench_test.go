package engine

import (
	"math/rand"
	"testing"

	"github.com/goalp/alp/internal/vector"
)

// benchFilterValues is uniform decimal data over [0, 10000): every
// vector spans the full range, so zone maps cannot skip anything and
// the benchmark measures the fused unpack+compare kernel itself.
func benchFilterValues(n int) []float64 {
	r := rand.New(rand.NewSource(42))
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(r.Intn(1_000_000)) / 100
	}
	return out
}

// BenchmarkFilteredScan compares the encoded-domain pushdown against
// naive decode-then-filter at 1% and 50% selectivity. On uniform data
// a band [0, 10000*s) selects fraction s of the rows.
func BenchmarkFilteredScan(b *testing.B) {
	values := benchFilterValues(2 * vector.RowGroupSize)
	r := BuildALP(values)
	for _, bc := range []struct {
		name   string
		lo, hi float64
	}{
		{"sel1pct", 0, 100},
		{"sel50pct", 0, 5000},
	} {
		p := Between(bc.lo, bc.hi)
		b.Run(bc.name+"/pushdown", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(values) * 8))
			for i := 0; i < b.N; i++ {
				r.FilterAgg(1, p)
			}
		})
		b.Run(bc.name+"/naive", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(values) * 8))
			for i := 0; i < b.N; i++ {
				r.FilterAggNaive(1, p)
			}
		})
		b.Run(bc.name+"/count", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(values) * 8))
			for i := 0; i < b.N; i++ {
				r.FilterCount(1, p)
			}
		})
	}
}
