// Per-partition partial aggregates: the placement-invariant contract
// distributed aggregation merges under. FilterAgg's float Sum is a
// single running fold when threads == 1 and worker-order-dependent
// otherwise, so neither shape survives being split across backends.
// Partials pin a third shape that does: every partition (row-group)
// folds its qualifying rows into a fresh accumulator in position
// order, and the partials merge in global row-group order. Both halves
// are deterministic — a partition's aggregate never sees another
// partition's rows, and float (non-)associativity is confined to the
// one fixed merge sequence — so the merged result is bit-identical no
// matter how many shards, threads or backends computed the partials.
// DESIGN.md ("Scatter-gather merge order") documents the contract.

package engine

import (
	"sync"
	"sync/atomic"

	"github.com/goalp/alp/internal/obs"
)

// FilterAggPartials runs SELECT SUM, COUNT, MIN, MAX WHERE p over the
// partitions named by idxs (nil means every partition), returning one
// aggregate per requested partition, in idxs order, plus the total
// number of vectors examined. Each partition folds from a fresh
// accumulator in position order, so the result is deterministic at any
// parallelism — unlike FilterAgg, where the float Sum depends on how
// morsels land on workers once threads > 1.
func (r *Relation) FilterAggPartials(threads int, p Predicate, idxs []int) ([]Agg, int) {
	if idxs == nil {
		idxs = make([]int, len(r.Parts))
		for i := range idxs {
			idxs[i] = i
		}
	}
	if threads < 1 {
		threads = 1
	}
	if threads > len(idxs) {
		threads = len(idxs)
	}
	if threads < 1 {
		threads = 1
	}
	o := obs.Active()
	o.ScanWorkers(threads)
	out := make([]Agg, len(idxs))
	touched := make([]int, threads)
	var next atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			bufs := newFilterBufs()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(idxs) {
					return
				}
				o.MorselClaim()
				out[k] = emptyAgg()
				part := r.Parts[idxs[k]]
				if ps, ok := part.(PushdownScanner); ok {
					touched[t] += ps.FilterAgg(p, bufs, &out[k])
				} else {
					touched[t] += filterAggFallback(part, p, bufs, &out[k])
				}
			}
		}(t)
	}
	wg.Wait()
	n := 0
	for _, c := range touched {
		n += c
	}
	return out, n
}

// FilterCountPartials is FilterAggPartials for COUNT(*): one count per
// requested partition, in idxs order (nil means every partition).
// COUNT is exactly associative, so this exists for symmetry and for
// the no-materialization pushdown path, not for determinism.
func (r *Relation) FilterCountPartials(threads int, p Predicate, idxs []int) []int64 {
	if idxs == nil {
		idxs = make([]int, len(r.Parts))
		for i := range idxs {
			idxs[i] = i
		}
	}
	if threads < 1 {
		threads = 1
	}
	if threads > len(idxs) {
		threads = len(idxs)
	}
	if threads < 1 {
		threads = 1
	}
	o := obs.Active()
	o.ScanWorkers(threads)
	out := make([]int64, len(idxs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bufs := newFilterBufs()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(idxs) {
					return
				}
				o.MorselClaim()
				part := r.Parts[idxs[k]]
				if ps, ok := part.(PushdownScanner); ok {
					c, _ := ps.FilterCount(p, bufs)
					out[k] = c
					continue
				}
				a := emptyAgg()
				filterAggFallback(part, p, bufs, &a)
				out[k] = a.Count
			}
		}()
	}
	wg.Wait()
	return out
}

// MergeAggs folds per-partition aggregates in slice order — the one
// merge sequence of the distributed-aggregation contract. Callers must
// present partials in global row-group order; any reordering changes
// the float Sum by rounding.
func MergeAggs(parts []Agg) Agg {
	total := emptyAgg()
	for _, a := range parts {
		total.merge(a)
	}
	return total
}
