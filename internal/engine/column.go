// Relation views over an already-compressed column. BuildALP re-encodes
// raw values partition-at-a-time; a service that ingested a column
// through the streaming Writer already holds the compressed
// representation and must not round-trip it through floats just to
// scan it. BuildALPFromColumn wraps one shared *format.Column as a
// Relation whose partitions are per-row-group views: each partition
// addresses its own global vector range, so morsel-parallel scans,
// zone-map skipping and encoded-domain pushdown all work unchanged,
// and a single-threaded FilterAgg folds rows in position order —
// bit-identical to scanning the same values in process.

package engine

import (
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/obs"
	"github.com/goalp/alp/internal/vector"
)

// alpViewPartition is one row-group of a shared compressed column. The
// column is immutable; concurrent views decode through caller-owned
// buffers, so any number of scan workers may touch sibling views.
type alpViewPartition struct {
	col      *format.Column
	firstVec int // global index of the row-group's first vector
	numVecs  int
	n        int // values in the row-group
}

func (p *alpViewPartition) Len() int { return p.n }

func (p *alpViewPartition) SizeBytes() int {
	g := p.firstVec / vector.RowGroupVectors
	return p.col.RowGroups[g].SizeBits() / 8
}

func (p *alpViewPartition) Scan(buf []float64, emit func([]float64)) {
	scratch := make([]int64, vector.Size)
	for i := p.firstVec; i < p.firstVec+p.numVecs; i++ {
		n := p.col.DecodeVector(i, buf, scratch)
		emit(buf[:n])
	}
}

// FilterAgg implements PushdownScanner over the view's vector range:
// zone maps skip, surviving decimal-scheme vectors run the fused
// unpack+compare kernel, qualifying rows fold in position order.
func (p *alpViewPartition) FilterAgg(pred Predicate, bufs *filterBufs, a *Agg) int {
	o := obs.Active()
	touched := 0
	skipped := 0
	var batch obs.ScanBatch
	for i := p.firstVec; i < p.firstVec+p.numVecs; i++ {
		if p.col.Zones != nil && !p.col.Zones.MayContain(i, pred.Lo, pred.Hi) {
			skipped++
			continue
		}
		n, pd := p.col.FilterGatherVector(i, pred.Lo, pred.Hi, bufs.sel[:], bufs.out, bufs.scratch)
		batch.Vector(n, pd)
		touched++
		a.fold(bufs.out[:n])
	}
	o.VectorsSkipped(skipped)
	o.FlushScanBatch(&batch)
	return touched
}

// FilterCount implements PushdownScanner without gathering.
func (p *alpViewPartition) FilterCount(pred Predicate, bufs *filterBufs) (int64, int) {
	o := obs.Active()
	var count int64
	touched := 0
	skipped := 0
	var batch obs.ScanBatch
	for i := p.firstVec; i < p.firstVec+p.numVecs; i++ {
		if p.col.Zones != nil && !p.col.Zones.MayContain(i, pred.Lo, pred.Hi) {
			skipped++
			continue
		}
		n, pd := p.col.FilterVector(i, pred.Lo, pred.Hi, bufs.sel[:], bufs.out, bufs.scratch)
		batch.Vector(n, pd)
		touched++
		count += int64(n)
	}
	o.VectorsSkipped(skipped)
	o.FlushScanBatch(&batch)
	return count, touched
}

// BuildALPFromColumn wraps an already-compressed column as a Relation
// with one partition per row-group, sharing the column's storage. No
// re-encode, no decode: scans and filtered aggregates read the same
// bytes the column was ingested as.
func BuildALPFromColumn(name string, col *format.Column) *Relation {
	r := &Relation{Name: name, N: col.N}
	for g := range col.RowGroups {
		rg := &col.RowGroups[g]
		r.Parts = append(r.Parts, &alpViewPartition{
			col:      col,
			firstVec: g * vector.RowGroupVectors,
			numVecs:  vector.VectorsIn(rg.N),
			n:        rg.N,
		})
	}
	return r
}
