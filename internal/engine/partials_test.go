package engine

import (
	"math"
	"math/rand"
	"testing"

	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/vector"
)

// partialsValues spans several row-groups (one partial) and mixes in
// the float edge cases partial merging must preserve: NaN (never
// matches), ±Inf, negative zero.
func partialsValues(t *testing.T) []float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	n := 3*vector.RowGroupSize + 777
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Round(rng.NormFloat64()*1e4) / 100
	}
	vals[5] = math.NaN()
	vals[vector.RowGroupSize+9] = math.Inf(1)
	vals[2*vector.RowGroupSize+9] = math.Inf(-1)
	vals[100] = math.Copysign(0, -1)
	return vals
}

func partialsPredicates() []Predicate {
	return []Predicate{
		{Lo: math.Inf(-1), Hi: math.Inf(1)},
		GE(0), LE(0), EQ(0), GT(12.5), LT(-3),
		Between(-50, 50),
		Between(1, -1), // empty interval
	}
}

// Merged partials must equal a reference that folds each partition
// serially with a fresh accumulator — and must be reproducible at
// every parallelism.
func TestFilterAggPartialsDeterministic(t *testing.T) {
	vals := partialsValues(t)
	col := format.EncodeColumn(vals)
	r := BuildALPFromColumn("c", col)
	for _, p := range partialsPredicates() {
		ref, _ := r.FilterAggPartials(1, p, nil)
		if len(ref) != len(r.Parts) {
			t.Fatalf("got %d partials, want %d", len(ref), len(r.Parts))
		}
		for _, threads := range []int{2, 4, 7} {
			got, _ := r.FilterAggPartials(threads, p, nil)
			for i := range ref {
				if !aggBitsEqual(ref[i], got[i]) {
					t.Fatalf("pred %+v threads=%d partial %d: %+v != %+v", p, threads, i, got[i], ref[i])
				}
			}
		}
		// The serial single-thread engine fold equals the merged
		// partials exactly for COUNT/MIN/MAX; SUM may differ by
		// rounding across partition boundaries, which is the point of
		// pinning the merge order — check it is at least close.
		merged := MergeAggs(ref)
		serial, _ := r.FilterAgg(1, p)
		if merged.Count != serial.Count ||
			math.Float64bits(merged.Min) != math.Float64bits(serial.Min) ||
			math.Float64bits(merged.Max) != math.Float64bits(serial.Max) {
			t.Fatalf("pred %+v: merged %+v vs serial %+v", p, merged, serial)
		}
		if serial.Sum != 0 && math.Abs(merged.Sum-serial.Sum) > 1e-6*math.Abs(serial.Sum)+1e-9 {
			t.Fatalf("pred %+v: merged sum %g far from serial %g", p, merged.Sum, serial.Sum)
		}
	}
}

// A subset request returns exactly the named partitions' partials, in
// request order.
func TestFilterAggPartialsSubset(t *testing.T) {
	vals := partialsValues(t)
	r := BuildALPFromColumn("c", format.EncodeColumn(vals))
	p := GE(0)
	all, _ := r.FilterAggPartials(1, p, nil)
	idxs := []int{3, 0, 2}
	sub, _ := r.FilterAggPartials(2, p, idxs)
	if len(sub) != len(idxs) {
		t.Fatalf("got %d partials, want %d", len(sub), len(idxs))
	}
	for k, i := range idxs {
		if !aggBitsEqual(sub[k], all[i]) {
			t.Fatalf("subset partial %d (partition %d): %+v != %+v", k, i, sub[k], all[i])
		}
	}
	counts := r.FilterCountPartials(2, p, idxs)
	for k, i := range idxs {
		if counts[k] != all[i].Count {
			t.Fatalf("count partial %d (partition %d): %d != %d", k, i, counts[k], all[i].Count)
		}
	}
}

func TestFilterCountPartialsMatchesAgg(t *testing.T) {
	vals := partialsValues(t)
	r := BuildALPFromColumn("c", format.EncodeColumn(vals))
	for _, p := range partialsPredicates() {
		aggs, _ := r.FilterAggPartials(1, p, nil)
		counts := r.FilterCountPartials(3, p, nil)
		var total int64
		for i := range counts {
			if counts[i] != aggs[i].Count {
				t.Fatalf("pred %+v partition %d: count %d != agg count %d", p, i, counts[i], aggs[i].Count)
			}
			total += counts[i]
		}
		if want := r.FilterCount(1, p); total != want {
			t.Fatalf("pred %+v: summed counts %d != FilterCount %d", p, total, want)
		}
	}
}

func aggBitsEqual(a, b Agg) bool {
	return math.Float64bits(a.Sum) == math.Float64bits(b.Sum) &&
		a.Count == b.Count &&
		math.Float64bits(a.Min) == math.Float64bits(b.Min) &&
		math.Float64bits(a.Max) == math.Float64bits(b.Max)
}
