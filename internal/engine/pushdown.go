// Predicate-pushdown operators: filtered scans and aggregates that
// accept a range predicate and evaluate it as deep in the storage
// layer as each partition allows. ALP partitions combine zone-map
// vector skipping with the encoded-domain fused unpack+compare kernel
// (internal/alpenc, internal/fastlanes); every other partition decodes
// vector-at-a-time and filters in the float domain, so all Relations
// answer the same queries with identical results.

package engine

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/goalp/alp/internal/obs"
	"github.com/goalp/alp/internal/vector"
)

// Predicate is a range predicate over a float64 column, held as a
// closed interval: a value v matches when Lo <= v <= Hi. All
// comparison forms reduce to this shape exactly, because floats are
// discrete (v > x ⟺ v >= nextafter(x, +Inf)). NaN never matches; an
// interval with Lo > Hi matches nothing.
type Predicate struct {
	Lo, Hi float64
}

// Between matches lo <= v <= hi.
func Between(lo, hi float64) Predicate { return Predicate{Lo: lo, Hi: hi} }

// GE matches v >= x.
func GE(x float64) Predicate { return Predicate{Lo: x, Hi: math.Inf(1)} }

// LE matches v <= x.
func LE(x float64) Predicate { return Predicate{Lo: math.Inf(-1), Hi: x} }

// EQ matches v == x (both zeros match EQ(0), per IEEE comparison).
func EQ(x float64) Predicate { return Predicate{Lo: x, Hi: x} }

// none is the empty predicate (Lo > Hi, matches nothing).
func none() Predicate { return Predicate{Lo: math.Inf(1), Hi: math.Inf(-1)} }

// GT matches v > x.
func GT(x float64) Predicate {
	if math.IsNaN(x) || math.IsInf(x, 1) {
		return none() // nothing is greater than +Inf
	}
	return Predicate{Lo: math.Nextafter(x, math.Inf(1)), Hi: math.Inf(1)}
}

// LT matches v < x.
func LT(x float64) Predicate {
	if math.IsNaN(x) || math.IsInf(x, -1) {
		return none() // nothing is less than -Inf
	}
	return Predicate{Lo: math.Inf(-1), Hi: math.Nextafter(x, math.Inf(-1))}
}

// Match evaluates the predicate on one value (false for NaN).
func (p Predicate) Match(v float64) bool { return v >= p.Lo && v <= p.Hi }

// Agg carries the aggregates of a filtered scan: SELECT SUM(col),
// COUNT(*), MIN(col), MAX(col) WHERE p. Min and Max are +Inf/-Inf when
// Count is zero.
type Agg struct {
	Sum   float64
	Count int64
	Min   float64
	Max   float64
}

func emptyAgg() Agg { return Agg{Min: math.Inf(1), Max: math.Inf(-1)} }

// fold accumulates qualifying values (already filtered) into the
// aggregate, in slice order.
func (a *Agg) fold(vals []float64) {
	for _, v := range vals {
		a.Sum += v
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Count += int64(len(vals))
}

// merge combines a worker-local aggregate into a.
func (a *Agg) merge(b Agg) {
	a.Sum += b.Sum
	a.Count += b.Count
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
}

// filterBufs is the per-worker scratch space of a filtered scan: one
// selection bitmap, one float vector (gather target / decode buffer)
// and one int64 vector (unpack buffer). Reused across every vector a
// worker touches, so the steady-state scan allocates nothing.
type filterBufs struct {
	sel     [vector.Size / 64]uint64
	out     []float64
	scratch []int64
}

func newFilterBufs() *filterBufs {
	return &filterBufs{
		out:     make([]float64, vector.Size),
		scratch: make([]int64, vector.Size),
	}
}

// PushdownScanner is implemented by partitions that can evaluate a
// range predicate below the float domain — by skipping vectors via
// zone maps and/or filtering in the encoded-integer domain. Partitions
// without it are scanned and filtered in the float domain.
type PushdownScanner interface {
	// FilterAgg folds the rows matching p into a, in position order,
	// returning the number of vectors whose payload was examined.
	// Folding into the caller's accumulator (rather than returning a
	// partition-local aggregate) keeps a single-threaded filtered scan
	// bit-identical to one running fold over the whole column.
	FilterAgg(p Predicate, bufs *filterBufs, a *Agg) int
	// FilterCount returns the number of rows matching p and the number
	// of vectors examined, without materializing any qualifying row.
	FilterCount(p Predicate, bufs *filterBufs) (int64, int)
}

// filterAggFallback answers FilterAgg for partitions with no pushdown
// support: scan vector-at-a-time, filter in the float domain, fold.
func filterAggFallback(part Partition, p Predicate, bufs *filterBufs, a *Agg) int {
	o := obs.Active()
	touched := 0
	var batch obs.ScanBatch
	part.Scan(bufs.out, func(vals []float64) {
		touched++
		selected := 0
		for _, v := range vals {
			if p.Match(v) {
				a.Sum += v
				if v < a.Min {
					a.Min = v
				}
				if v > a.Max {
					a.Max = v
				}
				selected++
			}
		}
		a.Count += int64(selected)
		batch.Vector(selected, false)
	})
	o.FlushScanBatch(&batch)
	return touched
}

// FilterAgg runs SELECT SUM, COUNT, MIN, MAX WHERE p with the given
// parallelism, pushing the predicate into each partition as deep as it
// supports. Touched counts vectors whose payload was examined across
// all partitions (zone-map-skipped vectors are not touched).
//
// With threads == 1 the result is bit-identical to a serial
// decode-then-filter aggregate; with more threads the float Sum may
// differ by rounding because partition results merge in worker order.
func (r *Relation) FilterAgg(threads int, p Predicate) (Agg, int) {
	return r.filterAgg(threads, p, false)
}

// FilterAggNaive is FilterAgg with pushdown disabled: every partition
// decodes everything and filters in the float domain. It exists as the
// decode-then-filter comparand for benchmarks and differential tests.
func (r *Relation) FilterAggNaive(threads int, p Predicate) (Agg, int) {
	return r.filterAgg(threads, p, true)
}

// FilterAggCtx is FilterAgg with request-scoped tracing: when ctx
// carries an obs.Trace (a traced server request), the whole morsel
// fan-out is attributed to the trace's engine span. The query itself
// is unaffected — untraced contexts behave exactly like FilterAgg.
func (r *Relation) FilterAggCtx(ctx context.Context, threads int, p Predicate) (Agg, int) {
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		return r.filterAgg(threads, p, false)
	}
	start := time.Now()
	a, n := r.filterAgg(threads, p, false)
	tr.AddSince(obs.SpanEngine, start)
	return a, n
}

// FilterCountCtx is FilterCount with request-scoped tracing, mirroring
// FilterAggCtx.
func (r *Relation) FilterCountCtx(ctx context.Context, threads int, p Predicate) int64 {
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		return r.FilterCount(threads, p)
	}
	start := time.Now()
	c := r.FilterCount(threads, p)
	tr.AddSince(obs.SpanEngine, start)
	return c
}

func (r *Relation) filterAgg(threads int, p Predicate, forceNaive bool) (Agg, int) {
	if threads < 1 {
		threads = 1
	}
	o := obs.Active()
	o.ScanWorkers(threads)
	var next atomic.Int64
	results := make([]Agg, threads)
	touched := make([]int, threads)
	for t := range results {
		results[t] = emptyAgg()
	}
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			bufs := newFilterBufs()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(r.Parts) {
					return
				}
				o.MorselClaim()
				if ps, ok := r.Parts[i].(PushdownScanner); ok && !forceNaive {
					touched[t] += ps.FilterAgg(p, bufs, &results[t])
				} else {
					touched[t] += filterAggFallback(r.Parts[i], p, bufs, &results[t])
				}
			}
		}(t)
	}
	wg.Wait()
	total := emptyAgg()
	n := 0
	for t := range results {
		total.merge(results[t])
		n += touched[t]
	}
	return total, n
}

// FilterCount runs SELECT COUNT(*) WHERE p. On pushdown-capable
// partitions no qualifying row is ever materialized: the count comes
// straight from the selection bitmaps.
func (r *Relation) FilterCount(threads int, p Predicate) int64 {
	if threads < 1 {
		threads = 1
	}
	o := obs.Active()
	o.ScanWorkers(threads)
	var next atomic.Int64
	counts := make([]int64, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			bufs := newFilterBufs()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(r.Parts) {
					return
				}
				o.MorselClaim()
				if ps, ok := r.Parts[i].(PushdownScanner); ok {
					c, _ := ps.FilterCount(p, bufs)
					counts[t] += c
					continue
				}
				a := emptyAgg()
				filterAggFallback(r.Parts[i], p, bufs, &a)
				counts[t] += a.Count
			}
		}(t)
	}
	wg.Wait()
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}

// rowGatherer is implemented by partitions that can materialize the
// rows matching a predicate directly from their compressed form (the
// bitmap-driven gather path ALP partitions share with the scan wire
// format).
type rowGatherer interface {
	FilterRows(p Predicate, bufs *filterBufs, out []float64) []float64
}

// FilterRows materializes every row matching p, in position order —
// the serial in-process comparand that the served scan endpoint (under
// either wire encoding) must match bit-for-bit. ALP partitions combine
// zone-map skipping with the fused unpack+filter+gather kernels; other
// partitions decode and filter in the float domain.
func (r *Relation) FilterRows(p Predicate) []float64 {
	bufs := newFilterBufs()
	var out []float64
	for _, part := range r.Parts {
		if rg, ok := part.(rowGatherer); ok {
			out = rg.FilterRows(p, bufs, out)
			continue
		}
		part.Scan(bufs.out, func(vals []float64) {
			for _, v := range vals {
				if p.Match(v) {
					out = append(out, v)
				}
			}
		})
	}
	return out
}

// ---- ALP partition pushdown ----

// FilterAgg implements PushdownScanner: zone maps skip vectors that
// cannot qualify, the rest run the encoded-domain kernel (decimal
// scheme) or decode-then-filter (ALP_rd row-groups), and only
// qualifying rows are materialized and folded.
func (p *alpPartition) FilterAgg(pred Predicate, bufs *filterBufs, a *Agg) int {
	o := obs.Active()
	touched := 0
	skipped := 0
	var batch obs.ScanBatch
	col := p.col
	for i := 0; i < col.NumVectors(); i++ {
		if col.Zones != nil && !col.Zones.MayContain(i, pred.Lo, pred.Hi) {
			skipped++
			continue
		}
		n, pd := col.FilterGatherVector(i, pred.Lo, pred.Hi, bufs.sel[:], bufs.out, bufs.scratch)
		batch.Vector(n, pd)
		touched++
		a.fold(bufs.out[:n])
	}
	o.VectorsSkipped(skipped)
	o.FlushScanBatch(&batch)
	return touched
}

// FilterRows implements rowGatherer: the selection bitmap from the
// encoded-domain kernel drives the gather, so non-qualifying rows are
// never materialized as floats.
func (p *alpPartition) FilterRows(pred Predicate, bufs *filterBufs, out []float64) []float64 {
	o := obs.Active()
	skipped := 0
	var batch obs.ScanBatch
	col := p.col
	for i := 0; i < col.NumVectors(); i++ {
		if col.Zones != nil && !col.Zones.MayContain(i, pred.Lo, pred.Hi) {
			skipped++
			continue
		}
		n, pd := col.FilterGatherVector(i, pred.Lo, pred.Hi, bufs.sel[:], bufs.out, bufs.scratch)
		batch.Vector(n, pd)
		out = append(out, bufs.out[:n]...)
	}
	o.VectorsSkipped(skipped)
	o.FlushScanBatch(&batch)
	return out
}

// FilterCount implements PushdownScanner without gathering: on the
// decimal scheme the count is read off the selection bitmap, so a
// vector with no qualifying rows converts zero integers to floats.
func (p *alpPartition) FilterCount(pred Predicate, bufs *filterBufs) (int64, int) {
	o := obs.Active()
	var count int64
	touched := 0
	skipped := 0
	var batch obs.ScanBatch
	col := p.col
	for i := 0; i < col.NumVectors(); i++ {
		if col.Zones != nil && !col.Zones.MayContain(i, pred.Lo, pred.Hi) {
			skipped++
			continue
		}
		n, pd := col.FilterVector(i, pred.Lo, pred.Hi, bufs.sel[:], bufs.out, bufs.scratch)
		batch.Vector(n, pd)
		touched++
		count += int64(n)
	}
	o.VectorsSkipped(skipped)
	o.FlushScanBatch(&batch)
	return count, touched
}
