package engine

import (
	"math"
	"testing"

	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/gorilla"
	"github.com/goalp/alp/internal/obs"
	"github.com/goalp/alp/internal/patas"
	"github.com/goalp/alp/internal/vector"
)

func testValues(n int) []float64 {
	d, _ := dataset.ByName("City-Temp")
	return d.Generate(n)
}

func naiveSum(values []float64) float64 {
	var s float64
	for _, v := range values {
		s += v
	}
	return s
}

func TestScanCountsAllTuples(t *testing.T) {
	values := testValues(2*vector.RowGroupSize + 999)
	for _, threads := range []int{1, 4} {
		for _, r := range []*Relation{
			BuildALP(values),
			BuildUncompressed(values),
			BuildStream("Gorilla", values, gorilla.Compress, gorilla.Decompress),
		} {
			if got := r.Scan(threads); got != len(values) {
				t.Fatalf("%s scan(%d) = %d tuples, want %d", r.Name, threads, got, len(values))
			}
		}
	}
}

func TestSumMatchesNaive(t *testing.T) {
	values := testValues(vector.RowGroupSize + 4321)
	want := naiveSum(values)
	rels := []*Relation{
		BuildALP(values),
		BuildUncompressed(values),
		BuildStream("Patas", values, patas.Compress, patas.Decompress),
	}
	for _, r := range rels {
		for _, threads := range []int{1, 2, 8} {
			got := r.Sum(threads)
			// Summation order differs across partitions/threads; allow
			// relative floating-point slack.
			if math.Abs(got-want) > 1e-9*math.Abs(want) {
				t.Fatalf("%s sum(%d) = %v, want %v", r.Name, threads, got, want)
			}
		}
	}
}

func TestPartitionSizes(t *testing.T) {
	values := testValues(3 * vector.RowGroupSize)
	r := BuildALP(values)
	if len(r.Parts) != 3 {
		t.Fatalf("got %d partitions, want 3", len(r.Parts))
	}
	if got, ok := r.CompressedBytes(); !ok || got <= 0 || got >= len(values)*8 {
		t.Fatalf("ALP compressed to %d bytes of %d raw (ok=%v)", got, len(values)*8, ok)
	}
	u := BuildUncompressed(values)
	if got, ok := u.CompressedBytes(); !ok || got != len(values)*8 {
		t.Fatalf("uncompressed footprint %d, want %d (ok=%v)", got, len(values)*8, ok)
	}
}

// TestCompressedBytesPartial: a relation mixing sized and unsized
// partitions must report ok=false so callers cannot mistake a partial
// sum for the full footprint.
func TestCompressedBytesPartial(t *testing.T) {
	values := testValues(2 * vector.Size)
	r := BuildUncompressed(values)
	r.Parts = append(r.Parts, &barePartition{values: values})
	got, ok := r.CompressedBytes()
	if ok {
		t.Fatal("CompressedBytes ok = true with an unsized partition")
	}
	if got != len(values)*8 {
		t.Fatalf("partial sum = %d, want %d (the sized partitions only)", got, len(values)*8)
	}
}

// barePartition implements only the Partition interface, no SizeBytes.
type barePartition struct{ values []float64 }

func (p *barePartition) Len() int { return len(p.values) }
func (p *barePartition) Scan(buf []float64, emit func([]float64)) {
	for lo := 0; lo < len(p.values); lo += vector.Size {
		hi := lo + vector.Size
		if hi > len(p.values) {
			hi = len(p.values)
		}
		n := copy(buf, p.values[lo:hi])
		emit(buf[:n])
	}
}

func TestSingleThreadFallback(t *testing.T) {
	values := testValues(5000)
	r := BuildALP(values)
	if got := r.Scan(0); got != len(values) {
		t.Fatalf("scan(0) = %d, want %d (threads<1 clamps to 1)", got, len(values))
	}
}

func TestEmptyRelation(t *testing.T) {
	r := BuildALP(nil)
	if r.Scan(4) != 0 || r.Sum(4) != 0 {
		t.Fatal("empty relation must scan/sum to zero")
	}
}

func TestSumRangePushdown(t *testing.T) {
	// Values rise monotonically, so only a suffix of vectors qualifies
	// for a high-range predicate: ALP must touch far fewer vectors than
	// the stream codec, while both return identical answers.
	values := make([]float64, 2*vector.RowGroupSize)
	for i := range values {
		values[i] = float64(i) / 100
	}
	lo, hi := values[len(values)-3*vector.Size], values[len(values)-1]

	alp := BuildALP(values)
	stream := BuildStream("Gorilla", values, gorilla.Compress, gorilla.Decompress)

	wantSum, wantCount := 0.0, 0
	for _, v := range values {
		if v >= lo && v <= hi {
			wantSum += v
			wantCount++
		}
	}
	for _, threads := range []int{1, 4} {
		aSum, aCount, aTouched := alp.SumRange(threads, lo, hi)
		sSum, sCount, sTouched := stream.SumRange(threads, lo, hi)
		if aCount != wantCount || sCount != wantCount {
			t.Fatalf("counts: alp %d stream %d want %d", aCount, sCount, wantCount)
		}
		if math.Abs(aSum-wantSum) > 1e-6*wantSum || math.Abs(sSum-wantSum) > 1e-6*wantSum {
			t.Fatalf("sums: alp %v stream %v want %v", aSum, sSum, wantSum)
		}
		if aTouched >= sTouched {
			t.Fatalf("push-down failed: ALP touched %d vectors, stream %d", aTouched, sTouched)
		}
		if aTouched > 4 {
			t.Fatalf("ALP touched %d vectors, want <= 4 (3 qualifying + boundary)", aTouched)
		}
	}
}

// TestScanObservability checks the engine's scan-side metrics with
// exact expected counts: morsel claims equal the number of partitions,
// worker counts are recorded, and a SumRange over a monotone column
// reports exactly the vectors the zone maps decoded vs. skipped.
func TestScanObservability(t *testing.T) {
	c := obs.Enable()
	defer obs.Disable()

	// 2 full row-groups + a partial third = 3 partitions; values rise
	// monotonically so each vector covers a disjoint band.
	n := 2*vector.RowGroupSize + 3*vector.Size
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i) / 100
	}
	r := BuildALP(values)
	if len(r.Parts) != 3 {
		t.Fatalf("%d partitions, want 3", len(r.Parts))
	}

	c.Reset()
	if got := r.Scan(4); got != n {
		t.Fatalf("Scan counted %d tuples, want %d", got, n)
	}
	s := c.Snapshot()
	if s.MorselClaims != 3 {
		t.Fatalf("MorselClaims = %d, want 3 (one per partition)", s.MorselClaims)
	}
	if s.ScanWorkers != 4 {
		t.Fatalf("ScanWorkers = %d, want 4", s.ScanWorkers)
	}
	totalVectors := int64(vector.VectorsIn(n))
	if s.VectorsDecoded != totalVectors {
		t.Fatalf("VectorsDecoded = %d, want %d", s.VectorsDecoded, totalVectors)
	}

	// A predicate covering exactly the last 2 vectors of the column:
	// every other vector must be skipped via zone maps, none decoded
	// needlessly. [lo, hi] aligns with vector boundaries because values
	// are monotone and vectors hold consecutive runs.
	c.Reset()
	lo := values[n-2*vector.Size]
	hi := values[n-1]
	sum, count, touched := r.SumRange(2, lo, hi)
	if count != 2*vector.Size {
		t.Fatalf("count = %d, want %d", count, 2*vector.Size)
	}
	var want float64
	for i := n - 2*vector.Size; i < n; i++ {
		want += values[i]
	}
	if math.Abs(sum-want) > 1e-6*want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	if touched != 2 {
		t.Fatalf("touched = %d, want 2", touched)
	}
	s = c.Snapshot()
	if s.MorselClaims != 3 || s.ScanWorkers != 2 || s.RangeScans != 3 {
		t.Fatalf("claims/workers/scans = %d/%d/%d, want 3/2/3",
			s.MorselClaims, s.ScanWorkers, s.RangeScans)
	}
	if s.VectorsDecoded != 2 {
		t.Fatalf("VectorsDecoded = %d, want 2", s.VectorsDecoded)
	}
	if wantSkip := totalVectors - 2; s.VectorsSkipped != wantSkip {
		t.Fatalf("VectorsSkipped = %d, want %d", s.VectorsSkipped, wantSkip)
	}
}
