package engine

import (
	"math"
	"testing"

	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/gorilla"
	"github.com/goalp/alp/internal/patas"
	"github.com/goalp/alp/internal/vector"
)

func testValues(n int) []float64 {
	d, _ := dataset.ByName("City-Temp")
	return d.Generate(n)
}

func naiveSum(values []float64) float64 {
	var s float64
	for _, v := range values {
		s += v
	}
	return s
}

func TestScanCountsAllTuples(t *testing.T) {
	values := testValues(2*vector.RowGroupSize + 999)
	for _, threads := range []int{1, 4} {
		for _, r := range []*Relation{
			BuildALP(values),
			BuildUncompressed(values),
			BuildStream("Gorilla", values, gorilla.Compress, gorilla.Decompress),
		} {
			if got := r.Scan(threads); got != len(values) {
				t.Fatalf("%s scan(%d) = %d tuples, want %d", r.Name, threads, got, len(values))
			}
		}
	}
}

func TestSumMatchesNaive(t *testing.T) {
	values := testValues(vector.RowGroupSize + 4321)
	want := naiveSum(values)
	rels := []*Relation{
		BuildALP(values),
		BuildUncompressed(values),
		BuildStream("Patas", values, patas.Compress, patas.Decompress),
	}
	for _, r := range rels {
		for _, threads := range []int{1, 2, 8} {
			got := r.Sum(threads)
			// Summation order differs across partitions/threads; allow
			// relative floating-point slack.
			if math.Abs(got-want) > 1e-9*math.Abs(want) {
				t.Fatalf("%s sum(%d) = %v, want %v", r.Name, threads, got, want)
			}
		}
	}
}

func TestPartitionSizes(t *testing.T) {
	values := testValues(3 * vector.RowGroupSize)
	r := BuildALP(values)
	if len(r.Parts) != 3 {
		t.Fatalf("got %d partitions, want 3", len(r.Parts))
	}
	if r.CompressedBytes() <= 0 || r.CompressedBytes() >= len(values)*8 {
		t.Fatalf("ALP compressed to %d bytes of %d raw", r.CompressedBytes(), len(values)*8)
	}
	u := BuildUncompressed(values)
	if u.CompressedBytes() != len(values)*8 {
		t.Fatalf("uncompressed footprint %d, want %d", u.CompressedBytes(), len(values)*8)
	}
}

func TestSingleThreadFallback(t *testing.T) {
	values := testValues(5000)
	r := BuildALP(values)
	if got := r.Scan(0); got != len(values) {
		t.Fatalf("scan(0) = %d, want %d (threads<1 clamps to 1)", got, len(values))
	}
}

func TestEmptyRelation(t *testing.T) {
	r := BuildALP(nil)
	if r.Scan(4) != 0 || r.Sum(4) != 0 {
		t.Fatal("empty relation must scan/sum to zero")
	}
}

func TestSumRangePushdown(t *testing.T) {
	// Values rise monotonically, so only a suffix of vectors qualifies
	// for a high-range predicate: ALP must touch far fewer vectors than
	// the stream codec, while both return identical answers.
	values := make([]float64, 2*vector.RowGroupSize)
	for i := range values {
		values[i] = float64(i) / 100
	}
	lo, hi := values[len(values)-3*vector.Size], values[len(values)-1]

	alp := BuildALP(values)
	stream := BuildStream("Gorilla", values, gorilla.Compress, gorilla.Decompress)

	wantSum, wantCount := 0.0, 0
	for _, v := range values {
		if v >= lo && v <= hi {
			wantSum += v
			wantCount++
		}
	}
	for _, threads := range []int{1, 4} {
		aSum, aCount, aTouched := alp.SumRange(threads, lo, hi)
		sSum, sCount, sTouched := stream.SumRange(threads, lo, hi)
		if aCount != wantCount || sCount != wantCount {
			t.Fatalf("counts: alp %d stream %d want %d", aCount, sCount, wantCount)
		}
		if math.Abs(aSum-wantSum) > 1e-6*wantSum || math.Abs(sSum-wantSum) > 1e-6*wantSum {
			t.Fatalf("sums: alp %v stream %v want %v", aSum, sSum, wantSum)
		}
		if aTouched >= sTouched {
			t.Fatalf("push-down failed: ALP touched %d vectors, stream %d", aTouched, sTouched)
		}
		if aTouched > 4 {
			t.Fatalf("ALP touched %d vectors, want <= 4 (3 qualifying + boundary)", aTouched)
		}
	}
}
