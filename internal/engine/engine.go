// Package engine is a minimal vectorized query engine in the style of
// Tectorwise [23], used for the paper's end-to-end experiments (§4.3,
// Table 6 / Figure 6): a scan operator decompresses a column
// vector-at-a-time (1024 values) and feeds an aggregation operator,
// with morsel-driven parallelism across row-group-sized partitions.
//
// Every compression scheme under study is wrapped as a Relation whose
// partitions are independently decodable, mirroring the paper's setup
// where compressed blocks carry byte-offset metadata so threads can
// work on disjoint ranges.
package engine

import (
	"sync"
	"sync/atomic"

	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/obs"
	"github.com/goalp/alp/internal/vector"
)

// Partition is an independently decodable chunk of a compressed column.
type Partition interface {
	// Len returns the number of values in the partition.
	Len() int
	// Scan decompresses the partition vector-at-a-time into buf (which
	// has room for vector.Size values) and calls emit for each vector.
	Scan(buf []float64, emit func(vals []float64))
}

// Relation is a compressed column split into partitions.
type Relation struct {
	Name  string
	N     int
	Parts []Partition
}

// CompressedBytes sums the compressed footprint across partitions. ok
// is false when one or more partitions do not expose a size — the sum
// then covers only the partitions that do, so a benchmark comparing
// compression ratios can detect the undercount instead of silently
// reporting a partial figure.
func (r *Relation) CompressedBytes() (total int, ok bool) {
	ok = true
	for _, p := range r.Parts {
		if s, sized := p.(interface{ SizeBytes() int }); sized {
			total += s.SizeBytes()
		} else {
			ok = false
		}
	}
	return total, ok
}

// run executes fn over all partitions with the given number of worker
// goroutines, morsel-driven: workers atomically claim the next
// partition index.
func (r *Relation) run(threads int, fn func(p Partition, buf []float64, acc *float64)) float64 {
	if threads < 1 {
		threads = 1
	}
	o := obs.Active()
	o.ScanWorkers(threads)
	var next atomic.Int64
	results := make([]float64, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			buf := make([]float64, vector.Size)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(r.Parts) {
					return
				}
				o.MorselClaim()
				fn(r.Parts[i], buf, &results[t])
			}
		}(t)
	}
	wg.Wait()
	var total float64
	for _, v := range results {
		total += v
	}
	return total
}

// Scan decompresses the whole relation with the given parallelism and
// returns the number of tuples scanned. The decompressed vectors are
// materialized into the per-worker buffer and discarded, like a scan
// feeding a no-op consumer.
func (r *Relation) Scan(threads int) int {
	n := r.run(threads, func(p Partition, buf []float64, acc *float64) {
		p.Scan(buf, func(vals []float64) {
			*acc += float64(len(vals))
		})
	})
	return int(n)
}

// Sum runs SELECT SUM(col): scan feeding a vectorized aggregation.
func (r *Relation) Sum(threads int) float64 {
	return r.run(threads, func(p Partition, buf []float64, acc *float64) {
		p.Scan(buf, func(vals []float64) {
			s := 0.0
			for _, v := range vals {
				s += v
			}
			*acc += s
		})
	})
}

// partitionRanges splits n values into row-group-sized ranges.
func partitionRanges(n int) [][2]int {
	var out [][2]int
	for lo := 0; lo < n; lo += vector.RowGroupSize {
		hi := lo + vector.RowGroupSize
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// ---- ALP ----

type alpPartition struct {
	col *format.Column
}

func (p *alpPartition) Len() int { return p.col.N }

func (p *alpPartition) SizeBytes() int { return p.col.SizeBits() / 8 }

func (p *alpPartition) Scan(buf []float64, emit func([]float64)) {
	scratch := make([]int64, vector.Size)
	for i := 0; i < p.col.NumVectors(); i++ {
		n := p.col.DecodeVector(i, buf, scratch)
		emit(buf[:n])
	}
}

// BuildALP compresses values with ALP into a partitioned relation.
func BuildALP(values []float64) *Relation {
	r := &Relation{Name: "ALP", N: len(values)}
	for _, rg := range partitionRanges(len(values)) {
		r.Parts = append(r.Parts, &alpPartition{col: format.EncodeColumn(values[rg[0]:rg[1]])})
	}
	return r
}

// ---- Uncompressed ----

type rawPartition struct {
	values []float64
}

func (p *rawPartition) Len() int { return len(p.values) }

func (p *rawPartition) SizeBytes() int { return len(p.values) * 8 }

func (p *rawPartition) Scan(buf []float64, emit func([]float64)) {
	for lo := 0; lo < len(p.values); lo += vector.Size {
		hi := lo + vector.Size
		if hi > len(p.values) {
			hi = len(p.values)
		}
		n := copy(buf, p.values[lo:hi])
		emit(buf[:n])
	}
}

// BuildUncompressed wraps values without compression; the scan copies
// each vector into the operator buffer like a real scan would.
func BuildUncompressed(values []float64) *Relation {
	r := &Relation{Name: "Uncompressed", N: len(values)}
	for _, rg := range partitionRanges(len(values)) {
		r.Parts = append(r.Parts, &rawPartition{values: values[rg[0]:rg[1]]})
	}
	return r
}

// ---- Stream codecs (Gorilla, Chimp, Chimp128, Patas, Elf, PDE, GP) ----

// streamPartition holds a block compressed with a sequential codec: the
// whole partition must be decoded front-to-back (no vector skipping),
// but partitions are independent so multi-core scans still parallelize.
type streamPartition struct {
	n          int
	data       []byte
	decompress func(dst []float64, data []byte) error
}

func (p *streamPartition) Len() int { return p.n }

func (p *streamPartition) SizeBytes() int { return len(p.data) }

func (p *streamPartition) Scan(buf []float64, emit func([]float64)) {
	// Sequential codecs cannot decode vector-at-a-time into a small
	// buffer: the whole partition is materialized, then emitted in
	// vector-sized chunks (this is the block-decompression cost the
	// paper describes for non-vectorized schemes).
	out := make([]float64, p.n)
	if err := p.decompress(out, p.data); err != nil {
		panic("engine: corrupt partition: " + err.Error())
	}
	for lo := 0; lo < p.n; lo += vector.Size {
		hi := lo + vector.Size
		if hi > p.n {
			hi = p.n
		}
		emit(out[lo:hi])
	}
}

// BuildStream compresses values partition-at-a-time with a sequential
// codec (compress returns the block bytes; decompress must fill dst).
func BuildStream(name string, values []float64,
	compress func(src []float64) []byte,
	decompress func(dst []float64, data []byte) error) *Relation {
	r := &Relation{Name: name, N: len(values)}
	for _, rg := range partitionRanges(len(values)) {
		part := values[rg[0]:rg[1]]
		r.Parts = append(r.Parts, &streamPartition{
			n:          len(part),
			data:       compress(part),
			decompress: decompress,
		})
	}
	return r
}

// RangeScanner is implemented by partitions that can answer a range
// predicate with vector skipping (zone-map push-down). Partitions that
// cannot skip fall back to a full scan plus filter.
type RangeScanner interface {
	// SumRange returns the sum and count of values in [lo, hi], plus
	// the number of vectors actually decompressed.
	SumRange(lo, hi float64) (sum float64, count, touched int)
}

// SumRange runs SELECT SUM(col), COUNT(*) WHERE col BETWEEN lo AND hi
// with the given parallelism. ALP partitions push the predicate into
// the scan via their zone maps and skip non-qualifying vectors; stream
// partitions must decompress everything and filter. The returned
// touched count (vectors decompressed) quantifies the push-down win.
func (r *Relation) SumRange(threads int, lo, hi float64) (sum float64, count, touched int) {
	if threads < 1 {
		threads = 1
	}
	o := obs.Active()
	o.ScanWorkers(threads)
	var next atomic.Int64
	type acc struct {
		sum            float64
		count, touched int
	}
	results := make([]acc, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			buf := make([]float64, vector.Size)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(r.Parts) {
					return
				}
				o.MorselClaim()
				a := &results[t]
				if rs, ok := r.Parts[i].(RangeScanner); ok {
					s, c, tv := rs.SumRange(lo, hi)
					a.sum += s
					a.count += c
					a.touched += tv
					continue
				}
				r.Parts[i].Scan(buf, func(vals []float64) {
					a.touched++
					for _, v := range vals {
						if v >= lo && v <= hi {
							a.sum += v
							a.count++
						}
					}
				})
			}
		}(t)
	}
	wg.Wait()
	for i := range results {
		sum += results[i].sum
		count += results[i].count
		touched += results[i].touched
	}
	return sum, count, touched
}

// SumRange implements RangeScanner for ALP partitions via the column's
// zone maps.
func (p *alpPartition) SumRange(lo, hi float64) (float64, int, int) {
	return p.col.SumRange(lo, hi)
}
