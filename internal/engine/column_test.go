package engine

import (
	"math"
	"math/rand"
	"testing"

	"github.com/goalp/alp/internal/format"
)

// TestBuildALPFromColumnMatchesBuildALP proves a Relation wrapped
// around an already-compressed column answers filtered aggregates
// bit-identically to one built by re-encoding the raw values — the
// property the column service relies on for wire-vs-local equivalence.
func TestBuildALPFromColumnMatchesBuildALP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	values := make([]float64, 2*102400+5000) // 3 row-groups, ragged tail
	for i := range values {
		values[i] = math.Round(rng.Float64()*100000) / 100
	}
	values[100] = math.NaN()
	values[101] = math.Inf(1)

	fromRaw := BuildALP(values)
	fromCol := BuildALPFromColumn("view", format.EncodeColumn(values))

	if fromCol.N != len(values) || len(fromCol.Parts) != 3 {
		t.Fatalf("view relation: N=%d parts=%d, want N=%d parts=3", fromCol.N, len(fromCol.Parts), len(values))
	}
	var viewLen int
	for _, p := range fromCol.Parts {
		viewLen += p.Len()
		if _, ok := p.(PushdownScanner); !ok {
			t.Fatal("view partition does not implement PushdownScanner")
		}
	}
	if viewLen != len(values) {
		t.Fatalf("partition lengths sum to %d, want %d", viewLen, len(values))
	}

	preds := []Predicate{
		Between(100, 600),
		GE(999.5),
		LT(3),
		EQ(values[5000]),
		Between(math.Inf(-1), math.Inf(1)),
		Between(5, 4), // empty interval
	}
	for _, p := range preds {
		a1, t1 := fromRaw.FilterAgg(1, p)
		a2, t2 := fromCol.FilterAgg(1, p)
		if a1.Count != a2.Count || t1 != t2 {
			t.Errorf("pred %+v: (count, touched) = (%d, %d) vs (%d, %d)", p, a2.Count, t2, a1.Count, t1)
		}
		if math.Float64bits(a1.Sum) != math.Float64bits(a2.Sum) {
			t.Errorf("pred %+v: sum %v vs %v", p, a2.Sum, a1.Sum)
		}
		if math.Float64bits(a1.Min) != math.Float64bits(a2.Min) ||
			math.Float64bits(a1.Max) != math.Float64bits(a2.Max) {
			t.Errorf("pred %+v: min/max (%v, %v) vs (%v, %v)", p, a2.Min, a2.Max, a1.Min, a1.Max)
		}
		if c1, c2 := fromRaw.FilterCount(4, p), fromCol.FilterCount(4, p); c1 != c2 {
			t.Errorf("pred %+v: FilterCount %d vs %d", p, c2, c1)
		}
	}

	// Full scans agree too.
	if n1, n2 := fromRaw.Scan(2), fromCol.Scan(2); n1 != n2 {
		t.Errorf("Scan: %d vs %d tuples", n2, n1)
	}
	if s, ok := fromCol.CompressedBytes(); !ok || s <= 0 {
		t.Errorf("CompressedBytes = (%d, %v), want sized partitions", s, ok)
	}
}
