package engine

import (
	"math"
	"testing"

	"github.com/goalp/alp/internal/gorilla"
	"github.com/goalp/alp/internal/obs"
	"github.com/goalp/alp/internal/vector"
)

// aggOracle filters and folds a plain slice in index order — the
// ground truth every engine path must reproduce.
func aggOracle(values []float64, p Predicate) Agg {
	a := emptyAgg()
	for _, v := range values {
		if p.Match(v) {
			a.fold([]float64{v})
		}
	}
	return a
}

func sameAgg(a, b Agg) bool {
	return math.Float64bits(a.Sum) == math.Float64bits(b.Sum) && a.Count == b.Count &&
		math.Float64bits(a.Min) == math.Float64bits(b.Min) &&
		math.Float64bits(a.Max) == math.Float64bits(b.Max)
}

func TestPredicateForms(t *testing.T) {
	cases := []struct {
		name string
		p    Predicate
		in   []float64
		out  []float64
	}{
		{"Between", Between(1, 3), []float64{1, 2, 3}, []float64{0.999, 3.001, math.NaN()}},
		{"GE", GE(2), []float64{2, 3, math.Inf(1)}, []float64{1.999, math.Inf(-1), math.NaN()}},
		{"GT", GT(2), []float64{2.0000000000000004, 3}, []float64{2, 1, math.NaN()}},
		{"LE", LE(2), []float64{2, 1, math.Inf(-1)}, []float64{2.001, math.Inf(1), math.NaN()}},
		{"LT", LT(2), []float64{1.9999999999999998, -5}, []float64{2, 3, math.NaN()}},
		{"EQ", EQ(0), []float64{0, math.Copysign(0, -1)}, []float64{1e-300, -1e-300, math.NaN()}},
		{"GT of +Inf is empty", GT(math.Inf(1)), nil, []float64{math.Inf(1), math.MaxFloat64, math.NaN()}},
		{"LT of -Inf is empty", LT(math.Inf(-1)), nil, []float64{math.Inf(-1), -math.MaxFloat64, math.NaN()}},
		{"GT NaN is empty", GT(math.NaN()), nil, []float64{0, math.Inf(1), math.NaN()}},
	}
	for _, tc := range cases {
		for _, v := range tc.in {
			if !tc.p.Match(v) {
				t.Errorf("%s: Match(%v) = false, want true", tc.name, v)
			}
		}
		for _, v := range tc.out {
			if tc.p.Match(v) {
				t.Errorf("%s: Match(%v) = true, want false", tc.name, v)
			}
		}
	}
}

func TestFilterAggMatchesOracleAllRelations(t *testing.T) {
	values := testValues(vector.RowGroupSize + 2345)
	rels := []*Relation{
		BuildALP(values),
		BuildUncompressed(values),
		BuildStream("Gorilla", values, gorilla.Compress, gorilla.Decompress),
	}
	preds := []Predicate{
		Between(-5, 10),
		GE(20), LE(0), GT(15.5), LT(-3.25), EQ(values[7]),
		Between(math.Inf(-1), math.Inf(1)),
		Between(1e300, math.Inf(1)), // empty
	}
	for _, p := range preds {
		want := aggOracle(values, p)
		for _, r := range rels {
			got, _ := r.FilterAgg(1, p)
			if !sameAgg(got, want) {
				t.Fatalf("%s FilterAgg(1, [%v,%v]) = %+v, want %+v", r.Name, p.Lo, p.Hi, got, want)
			}
			naive, _ := r.FilterAggNaive(1, p)
			if !sameAgg(naive, want) {
				t.Fatalf("%s FilterAggNaive(1, [%v,%v]) = %+v, want %+v", r.Name, p.Lo, p.Hi, naive, want)
			}
			if c := r.FilterCount(1, p); c != want.Count {
				t.Fatalf("%s FilterCount = %d, want %d", r.Name, c, want.Count)
			}
			// Parallel runs merge partition aggregates in worker order:
			// Count/Min/Max stay exact, Sum may re-associate.
			got4, _ := r.FilterAgg(4, p)
			if got4.Count != want.Count ||
				math.Float64bits(got4.Min) != math.Float64bits(want.Min) ||
				math.Float64bits(got4.Max) != math.Float64bits(want.Max) {
				t.Fatalf("%s FilterAgg(4) = %+v, want count/min/max of %+v", r.Name, got4, want)
			}
			if diff := math.Abs(got4.Sum - want.Sum); diff > 1e-9*math.Max(1, math.Abs(want.Sum)) {
				t.Fatalf("%s FilterAgg(4) sum = %v, want %v", r.Name, got4.Sum, want.Sum)
			}
		}
	}
}

func TestFilterAggSkipsAndPushesDown(t *testing.T) {
	c := obs.Enable()
	defer obs.Disable()

	// Monotone values: a predicate over the last 1.5 vectors must skip
	// everything else via zone maps, answer the straddled vector in the
	// encoded domain, and answer the fully-covered last vector from
	// metadata + bulk decode.
	n := vector.RowGroupSize + 3*vector.Size
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i) / 100
	}
	r := BuildALP(values)
	p := Between(values[n-vector.Size-vector.Size/2], values[n-1])

	c.Reset()
	got, touched := r.FilterAgg(1, p)
	want := aggOracle(values, p)
	if !sameAgg(got, want) {
		t.Fatalf("FilterAgg = %+v, want %+v", got, want)
	}
	if touched != 2 {
		t.Fatalf("touched %d vectors, want 2 (1 straddled + 1 fully covered)", touched)
	}
	s := c.Snapshot()
	if s.PushdownVectors != int64(touched) {
		t.Fatalf("PushdownVectors = %d, want %d (all touched vectors pushed down)", s.PushdownVectors, touched)
	}
	if s.PushdownFallbacks != 0 {
		t.Fatalf("PushdownFallbacks = %d, want 0 on decimal data", s.PushdownFallbacks)
	}
	if s.SelectedRows != want.Count {
		t.Fatalf("SelectedRows = %d, want %d", s.SelectedRows, want.Count)
	}
	if s.VectorsDecoded != 1 {
		t.Fatalf("VectorsDecoded = %d, want 1 — only the fully-covered vector bulk-decodes; the straddled vector stays in the encoded domain", s.VectorsDecoded)
	}
	wantSkipped := int64(vector.VectorsIn(n) - touched)
	if s.VectorsSkipped != wantSkipped {
		t.Fatalf("VectorsSkipped = %d, want %d", s.VectorsSkipped, wantSkipped)
	}

	// The naive comparand decodes everything and counts fallbacks.
	c.Reset()
	naive, naiveTouched := r.FilterAggNaive(1, p)
	if !sameAgg(naive, want) {
		t.Fatalf("FilterAggNaive = %+v, want %+v", naive, want)
	}
	if naiveTouched != vector.VectorsIn(n) {
		t.Fatalf("naive touched %d vectors, want all %d", naiveTouched, vector.VectorsIn(n))
	}
	s = c.Snapshot()
	if s.PushdownVectors != 0 || s.PushdownFallbacks != int64(naiveTouched) {
		t.Fatalf("naive PushdownVectors/Fallbacks = %d/%d, want 0/%d",
			s.PushdownVectors, s.PushdownFallbacks, naiveTouched)
	}
}

// TestFilterCountAllocsNoFloats asserts the core pushdown guarantee:
// counting under a predicate that qualifies nothing in a vector
// allocates nothing and never converts an integer to a float. The
// partition-level call is measured directly (Relation methods spawn
// goroutines, which allocate by design).
func TestFilterCountAllocsNoFloats(t *testing.T) {
	values := make([]float64, 4*vector.Size)
	for i := range values {
		values[i] = float64(i%1000) + 0.25
	}
	r := BuildALP(values)
	part := r.Parts[0].(*alpPartition)
	// Defeat zone maps with a predicate inside the value range that no
	// encodable value satisfies, so every vector is kernel-scanned yet
	// qualifying-free.
	p := Between(500.30, 500.70)
	if c, _ := part.FilterCount(p, newFilterBufs()); c != 0 {
		t.Fatalf("predicate unexpectedly selects %d rows", c)
	}
	bufs := newFilterBufs()
	allocs := testing.AllocsPerRun(50, func() {
		part.FilterCount(p, bufs)
	})
	if allocs != 0 {
		t.Fatalf("FilterCount allocates %.1f objects per scan, want 0", allocs)
	}
	agg := emptyAgg()
	aggAllocs := testing.AllocsPerRun(50, func() {
		part.FilterAgg(p, bufs, &agg)
	})
	if aggAllocs != 0 {
		t.Fatalf("FilterAgg allocates %.1f objects per scan, want 0", aggAllocs)
	}
}

func TestFilterAggEmptyAndThreadClamp(t *testing.T) {
	r := BuildALP(nil)
	a, touched := r.FilterAgg(0, Between(0, 1))
	if a.Count != 0 || a.Sum != 0 || touched != 0 {
		t.Fatalf("empty relation FilterAgg = %+v touched %d", a, touched)
	}
	if !math.IsInf(a.Min, 1) || !math.IsInf(a.Max, -1) {
		t.Fatalf("empty Min/Max = %v/%v, want +Inf/-Inf", a.Min, a.Max)
	}
}
