package patas

import (
	"encoding/binary"
	"errors"
	"math"
	"math/bits"
)

var errShort = errors.New("patas: truncated stream")

// 32-bit Patas (for the Table 7 comparison): identical structure with a
// 4-byte first value and XOR payloads of at most 4 significant bytes.

// Compress32 encodes float32 values and returns the byte stream.
func Compress32(src []float32) []byte {
	out := make([]byte, 0, len(src)*6)
	if len(src) == 0 {
		return out
	}
	var stored [nPrev]uint32
	indices := make([]int, lsbMask+1)
	for i := range indices {
		indices[i] = -(nPrev + 1)
	}
	first := math.Float32bits(src[0])
	out = binary.LittleEndian.AppendUint32(out, first)
	stored[0] = first
	indices[uint64(first)&lsbMask] = 0

	var scratch [4]byte
	for idx := 1; idx < len(src); idx++ {
		cur := math.Float32bits(src[idx])
		key := uint64(cur) & lsbMask
		refIdx := (idx - 1) % nPrev
		xor := stored[refIdx] ^ cur
		if cand := indices[key]; cand >= 0 && idx-cand < nPrev {
			tempXor := cur ^ stored[cand%nPrev]
			if bits.TrailingZeros32(tempXor) > threshold {
				refIdx = cand % nPrev
				xor = tempXor
			}
		}
		trailBytes := 0
		sigBytes := 0
		if xor != 0 {
			trailBytes = bits.TrailingZeros32(xor) / 8
			shifted := xor >> (8 * trailBytes)
			sigBytes = (bits.Len32(shifted) + 7) / 8
			binary.LittleEndian.PutUint32(scratch[:], shifted)
		}
		out = binary.LittleEndian.AppendUint16(out, header(refIdx, trailBytes, sigBytes))
		out = append(out, scratch[:sigBytes]...)

		stored[idx%nPrev] = cur
		indices[key] = idx
	}
	return out
}

// Decompress32 decodes len(dst) float32 values from data into dst.
func Decompress32(dst []float32, data []byte) error {
	if len(dst) == 0 {
		return nil
	}
	if len(data) < 4 {
		return errShort
	}
	var stored [nPrev]uint32
	first := binary.LittleEndian.Uint32(data)
	data = data[4:]
	dst[0] = math.Float32frombits(first)
	stored[0] = first
	var scratch [4]byte
	for i := 1; i < len(dst); i++ {
		if len(data) < 2 {
			return errShort
		}
		refIdx, trailBytes, sigBytes := unheader(binary.LittleEndian.Uint16(data))
		data = data[2:]
		if len(data) < sigBytes {
			return errShort
		}
		scratch = [4]byte{}
		copy(scratch[:], data[:sigBytes])
		data = data[sigBytes:]
		xor := binary.LittleEndian.Uint32(scratch[:]) << (8 * trailBytes)
		cur := stored[refIdx] ^ xor
		dst[i] = math.Float32frombits(cur)
		stored[i%nPrev] = cur
	}
	return nil
}
