package patas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []float64) []byte {
	t.Helper()
	data := Compress(src)
	got := make([]float64, len(src))
	if err := Decompress(got, data); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d: got %v (%#x), want %v (%#x)",
				i, got[i], math.Float64bits(got[i]), src[i], math.Float64bits(src[i]))
		}
	}
	return data
}

func TestHeaderPacking(t *testing.T) {
	for _, c := range []struct{ idx, tb, sb int }{
		{0, 0, 0}, {127, 7, 8}, {64, 3, 5}, {1, 0, 8},
	} {
		i, tb, sb := unheader(header(c.idx, c.tb, c.sb))
		if i != c.idx || tb != c.tb || sb != c.sb {
			t.Fatalf("header(%v) round trip = (%d,%d,%d)", c, i, tb, sb)
		}
	}
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, []float64{1.0, 1.0, 1.5, 2.5, 100.25, -3.75})
	roundTrip(t, nil)
	roundTrip(t, []float64{42.5})
	roundTrip(t, []float64{
		0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, math.SmallestNonzeroFloat64, -math.Pi,
	})
}

func TestRepeatsCostTwoBytes(t *testing.T) {
	src := make([]float64, 1024)
	for i := range src {
		src[i] = 9.75
	}
	data := roundTrip(t, src)
	// First value 8 bytes + 2-byte header per repeat (zero payload).
	want := 8 + (len(src)-1)*2
	if len(data) != want {
		t.Fatalf("repeats took %d bytes, want %d", len(data), want)
	}
}

func TestCompressesSimilarValues(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	src := make([]float64, 4096)
	v := 100.0
	for i := range src {
		v += math.Round(r.NormFloat64()*10) / 100
		src[i] = v
	}
	data := roundTrip(t, src)
	bits := float64(len(data)*8) / float64(len(src))
	if bits >= 64 {
		t.Fatalf("no compression: %.1f bits/value", bits)
	}
}

func TestQuickLossless(t *testing.T) {
	f := func(raw []uint64, dups []uint16) bool {
		src := make([]float64, 0, len(raw)+len(dups))
		for _, b := range raw {
			src = append(src, math.Float64frombits(b))
		}
		for _, d := range dups {
			if len(src) == 0 {
				break
			}
			src = append(src, src[int(d)%len(src)])
		}
		data := Compress(src)
		got := make([]float64, len(src))
		if err := Decompress(got, data); err != nil {
			return false
		}
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLossless32(t *testing.T) {
	f := func(raw []uint32) bool {
		src := make([]float32, len(raw))
		for i, b := range raw {
			src[i] = math.Float32frombits(b)
		}
		data := Compress32(src)
		got := make([]float32, len(src))
		if err := Decompress32(got, data); err != nil {
			return false
		}
		for i := range src {
			if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressTruncated(t *testing.T) {
	src := []float64{1.5, 2.5, 3.5}
	data := Compress(src)
	got := make([]float64, len(src))
	for cut := 0; cut < len(data); cut++ {
		if err := Decompress(got, data[:cut]); err == nil {
			t.Fatalf("want error at cut %d", cut)
		}
	}
}
