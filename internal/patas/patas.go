// Package patas implements Patas (DuckDB PR#5044), the byte-aligned
// variant of Chimp128 that trades compression ratio for decompression
// speed: per value it stores one 16-bit packed header — the 7-bit index
// of the reference among the previous 128 values, the count of trailing
// zero bytes and the count of significant bytes of the XOR — followed
// by the significant bytes themselves, byte-aligned (no bit shifting on
// the hot path, a single encoding mode, no branch mispredictions).
package patas

import (
	"encoding/binary"
	"math"
	"math/bits"
)

const (
	nPrev     = 128
	nPrevLog2 = 7
	threshold = 6 + nPrevLog2
	lsbMask   = 1<<(threshold+1) - 1
)

// header packs refIdx (7 bits), trailing zero bytes (3 bits) and
// significant byte count (4 bits) into 14 bits of a uint16.
func header(refIdx, trailBytes, sigBytes int) uint16 {
	return uint16(refIdx)<<7 | uint16(trailBytes)<<4 | uint16(sigBytes)
}

func unheader(h uint16) (refIdx, trailBytes, sigBytes int) {
	return int(h >> 7), int(h >> 4 & 7), int(h & 15)
}

// Compress encodes src and returns the byte stream.
func Compress(src []float64) []byte {
	out := make([]byte, 0, len(src)*10)
	if len(src) == 0 {
		return out
	}
	var stored [nPrev]uint64
	indices := make([]int, lsbMask+1)
	for i := range indices {
		indices[i] = -(nPrev + 1)
	}
	first := math.Float64bits(src[0])
	out = binary.LittleEndian.AppendUint64(out, first)
	stored[0] = first
	indices[first&lsbMask] = 0

	var scratch [8]byte
	for idx := 1; idx < len(src); idx++ {
		cur := math.Float64bits(src[idx])
		key := cur & lsbMask
		refIdx := (idx - 1) % nPrev
		xor := stored[refIdx] ^ cur
		if cand := indices[key]; cand >= 0 && idx-cand < nPrev {
			tempXor := cur ^ stored[cand%nPrev]
			if bits.TrailingZeros64(tempXor) > threshold {
				refIdx = cand % nPrev
				xor = tempXor
			}
		}
		trailBytes := 0
		sigBytes := 0
		if xor != 0 {
			trailBytes = bits.TrailingZeros64(xor) / 8
			shifted := xor >> (8 * trailBytes)
			sigBytes = (bits.Len64(shifted) + 7) / 8
			binary.LittleEndian.PutUint64(scratch[:], shifted)
		}
		out = binary.LittleEndian.AppendUint16(out, header(refIdx, trailBytes, sigBytes))
		out = append(out, scratch[:sigBytes]...)

		stored[idx%nPrev] = cur
		indices[key] = idx
	}
	return out
}

// Decompress decodes len(dst) values from data into dst.
func Decompress(dst []float64, data []byte) error {
	if len(dst) == 0 {
		return nil
	}
	if len(data) < 8 {
		return errShort
	}
	var stored [nPrev]uint64
	first := binary.LittleEndian.Uint64(data)
	data = data[8:]
	dst[0] = math.Float64frombits(first)
	stored[0] = first
	var scratch [8]byte
	for i := 1; i < len(dst); i++ {
		if len(data) < 2 {
			return errShort
		}
		refIdx, trailBytes, sigBytes := unheader(binary.LittleEndian.Uint16(data))
		data = data[2:]
		if len(data) < sigBytes {
			return errShort
		}
		scratch = [8]byte{}
		copy(scratch[:], data[:sigBytes])
		data = data[sigBytes:]
		xor := binary.LittleEndian.Uint64(scratch[:]) << (8 * trailBytes)
		cur := stored[refIdx] ^ xor
		dst[i] = math.Float64frombits(cur)
		stored[i%nPrev] = cur
	}
	return nil
}
