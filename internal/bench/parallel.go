package bench

import (
	"fmt"
	"io"

	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/vector"
)

// RunParallel measures encode and decode throughput of the worker-pool
// pipeline across worker counts, reporting values/second and the
// speedup over the single-worker run. Output determinism is asserted,
// not assumed: the run aborts if any parallel encode deviates from the
// serial bytes.
func RunParallel(w io.Writer, opt Options, scale int, workers []int) {
	fmt.Fprintf(w, "== Parallel pipeline: City-Temp scaled to %d values (%d row-groups) ==\n",
		scale, vector.RowGroupsIn(scale))
	d, _ := dataset.ByName("City-Temp")
	values := scaleUp(d.Generate(dataset.DefaultN), scale)

	serial := format.EncodeColumnParallel(values, 1)
	serialBytes := serial.Marshal()

	tw := newTab(w)
	fmt.Fprintln(tw, "workers\tencode MV/s\tspeedup\tdecode MV/s\tspeedup")
	var encBase, decBase float64
	for _, n := range workers {
		encSec := measureSeconds(func() {
			col := format.EncodeColumnParallel(values, n)
			if got := col.Marshal(); len(got) != len(serialBytes) {
				panic(fmt.Sprintf("parallel encode (workers=%d) deviates from serial", n))
			}
		}, opt.MinDur)
		decSec := measureSeconds(func() { serial.DecodeParallel(n) }, opt.MinDur)

		encMVs := float64(len(values)) / encSec / 1e6
		decMVs := float64(len(values)) / decSec / 1e6
		if encBase == 0 {
			encBase, decBase = encMVs, decMVs
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%.2fx\t%.1f\t%.2fx\n",
			n, encMVs, encMVs/encBase, decMVs, decMVs/decBase)
	}
	tw.Flush()
}
