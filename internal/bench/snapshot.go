// The benchmark snapshot: a small, dated, machine-readable record of
// core codec throughput, written by `alpbench -snapshot` (and `make
// bench-snapshot`) so performance drift between PRs shows up as a diff
// of BENCH_core.json rather than an anecdote. It deliberately measures
// only the three load-bearing paths — encode, decode, filtered
// aggregate — on three dataset shapes that exercise different regimes:
// a decimal time series (ALP proper), a zero-heavy monetary column
// (narrow bit widths, heavy vector skipping) and a coordinate column
// that falls back to ALP_rd.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/format"
)

// snapshotDatasets are the three shapes the snapshot tracks.
var snapshotDatasets = []string{"City-Temp", "Gov/10", "POI-lat"}

// SnapshotReps is the K in the snapshot's median-of-K timing: every
// throughput number is the median of this many independent measurement
// windows, and the document records the worst observed relative
// half-spread as noise_bound. Single-shot means were jitter-prone on
// 1-CPU hosts; the documented bound is what the gauntlet's regression
// comparator adds to its threshold when this machine's numbers are
// compared.
const SnapshotReps = 5

// SnapshotEntry is one dataset's row in BENCH_core.json. Throughputs
// are in MV/s — millions of values per second of wall time — the
// clock-independent sibling of the paper's tuples/cycle.
type SnapshotEntry struct {
	Dataset      string  `json:"dataset"`
	Values       int     `json:"values"`
	BitsPerValue float64 `json:"bits_per_value"`
	UsedRD       bool    `json:"used_rd"`
	EncodeMVs    float64 `json:"encode_mvs"`
	DecodeMVs    float64 `json:"decode_mvs"`
	FilterMVs    float64 `json:"filter_mvs"`
}

// SnapshotDoc is the whole BENCH_core.json document. ServedScan is
// the selectivity sweep of filtered scans through the HTTP service
// (compressed ALPS wire vs raw float64s vs in-process), so wire-format
// regressions show up in the same diff as codec ones.
type SnapshotDoc struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	N         int    `json:"values_per_dataset"`
	// Repetitions and NoiseBound document the noise-control contract:
	// each entry metric is a median of Repetitions windows, and
	// NoiseBound is the worst relative half-spread ((max-min)/2·median)
	// observed while measuring them — the slack a regression comparator
	// should tolerate on top of its threshold.
	Repetitions  int                 `json:"repetitions"`
	NoiseBound   float64             `json:"noise_bound"`
	Entries      []SnapshotEntry     `json:"entries"`
	ServedScan   []ServedScanEntry   `json:"served_scan,omitempty"`
	ClusteredAgg []ClusteredAggEntry `json:"clustered_agg,omitempty"`
}

// ServedScanEntry is one selectivity point of the served-scan sweep
// (measured by internal/servedbench, which owns the HTTP rig; the type
// lives here so the snapshot document is self-contained). Throughputs
// are MV/s of column values scanned per wall second — the same
// denominator at every selectivity.
type ServedScanEntry struct {
	Selectivity float64 `json:"selectivity"`
	Rows        int     `json:"rows"`
	InprocMVs   float64 `json:"inproc_mvs"`
	ServedMVs   float64 `json:"served_mvs"`
	RawMVs      float64 `json:"served_raw_mvs"`
	// LocalOverServed is in-process ÷ served-compressed: 1.0 means the
	// wire is free, the acceptance bar is ≤ 3.0 at every point.
	LocalOverServed float64 `json:"local_over_served"`
}

// ClusteredAggEntry is one shard count of the clustered-aggregate
// scaling series (measured by internal/servedbench, which owns the
// loopback cluster rig). AggMVs is column values aggregated per wall
// second through the full coordinator path — scatter over HTTP,
// per-backend pushdown, deterministic partial merge. SpeedupOver1 is
// AggMVs ÷ the 1-shard point of the same run; on a multi-core host the
// ROADMAP acceptance bar is > 1.8x at 4 shards.
type ClusteredAggEntry struct {
	Shards       int     `json:"shards"`
	Rows         int     `json:"rows"`
	AggMVs       float64 `json:"agg_mvs"`
	SpeedupOver1 float64 `json:"speedup_over_1shard"`
}

// RunSnapshot measures the snapshot entries and writes the document as
// indented JSON to w. Encode and decode run the serial column paths
// (the per-core numbers the paper reports); the filter is a
// single-threaded pushdown aggregate over the middle half of each
// dataset's value range, so all three regimes do real kernel work.
// served is the pre-measured served-scan sweep (servedbench.Measure)
// and clustered the pre-measured clustered-agg scaling series
// (servedbench.MeasureClusteredAgg); nil omits either series.
func RunSnapshot(w io.Writer, opt Options, served []ServedScanEntry, clustered []ClusteredAggEntry) error {
	doc := SnapshotDoc{
		Date:        time.Now().UTC().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		N:           opt.N,
		Repetitions: SnapshotReps,
	}
	noise := 0.0
	for _, name := range snapshotDatasets {
		d, ok := dataset.ByName(name)
		if !ok {
			return fmt.Errorf("snapshot dataset %q not in registry", name)
		}
		entry, spread := measureSnapshot(d, opt)
		doc.Entries = append(doc.Entries, entry)
		if spread > noise {
			noise = spread
		}
	}
	doc.NoiseBound = math.Round(noise*1e4) / 1e4
	doc.ServedScan = served
	doc.ClusteredAgg = clustered
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func measureSnapshot(d dataset.Dataset, opt Options) (SnapshotEntry, float64) {
	values := d.Generate(opt.N)
	col := format.EncodeColumn(values)

	encSec, s1 := MeasureMedianSeconds(func() { format.EncodeColumn(values) }, opt.MinDur, SnapshotReps)
	decSec, s2 := MeasureMedianSeconds(func() { col.Decode() }, opt.MinDur, SnapshotReps)

	// Mid-range predicate: the middle half of the observed value range,
	// selective enough that the filter kernel, the zone maps and the
	// gather all participate.
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	quarter := (hi - lo) / 4
	pred := engine.Between(lo+quarter, hi-quarter)
	rel := engine.BuildALP(values)
	filtSec, s3 := MeasureMedianSeconds(func() { rel.FilterAgg(1, pred) }, opt.MinDur, SnapshotReps)

	mvs := func(sec float64) float64 {
		if sec <= 0 {
			return 0
		}
		return float64(len(values)) / sec / 1e6
	}
	return SnapshotEntry{
		Dataset:      d.Name,
		Values:       len(values),
		BitsPerValue: col.BitsPerValue(),
		UsedRD:       col.UsedRD(),
		EncodeMVs:    mvs(encSec),
		DecodeMVs:    mvs(decSec),
		FilterMVs:    mvs(filtSec),
	}, math.Max(s1, math.Max(s2, s3))
}
