package bench

import (
	"time"

	"github.com/goalp/alp/internal/alpenc"
	"github.com/goalp/alp/internal/alprd"
	"github.com/goalp/alp/internal/vector"
)

// MeasureALP measures ALP kernel speed on one vector of the dataset,
// mirroring the paper's micro-benchmark: first-level sampling happens
// once (it is amortized over the row-group and excluded, as in §4.2),
// and the per-vector work — second-stage sampling, encode + FFOR, or
// unFFOR + decode — is what is timed.
func MeasureALP(values []float64, ghz float64, minDur time.Duration) Speed {
	n := vector.Size
	if n > len(values) {
		n = len(values)
	}
	vec := values[:n]
	dec := alpenc.SampleRowGroup(values)
	if len(dec.Combos) == 0 {
		dec.Combos = []alpenc.Combo{{E: 0, F: 0}}
	}
	scratch := make([]int64, n)
	compSec := measureSeconds(func() {
		combo, _ := alpenc.ChooseForVector(vec, dec.Combos)
		alpenc.EncodeVector(vec, combo, scratch)
	}, minDur)

	combo, _ := alpenc.ChooseForVector(vec, dec.Combos)
	enc := alpenc.EncodeVector(vec, combo, nil)
	dst := make([]float64, n)
	decompSec := measureSeconds(func() { enc.Decode(dst, scratch) }, minDur)
	return Speed{
		Comp:   TuplesPerCycle(compSec, n, ghz),
		Decomp: TuplesPerCycle(decompSec, n, ghz),
	}
}

// MeasureALPVariants measures ALP decode speed for the three kernel
// variants of the Figure 4 ablation: the specialized fused kernels
// ("simd"), specialized kernels with a separate base pass ("auto"), and
// the width-parametric scalar loop ("scalar").
func MeasureALPVariants(values []float64, ghz float64, minDur time.Duration) (fused, unfused, scalar float64) {
	n := vector.Size
	if n > len(values) {
		n = len(values)
	}
	vec := values[:n]
	dec := alpenc.SampleRowGroup(values)
	if len(dec.Combos) == 0 {
		dec.Combos = []alpenc.Combo{{E: 0, F: 0}}
	}
	combo, _ := alpenc.ChooseForVector(vec, dec.Combos)
	enc := alpenc.EncodeVector(vec, combo, nil)
	dst := make([]float64, n)
	scratch := make([]int64, n)
	fused = TuplesPerCycle(measureSeconds(func() { enc.Decode(dst, scratch) }, minDur), n, ghz)
	unfused = TuplesPerCycle(measureSeconds(func() { enc.DecodeUnfused(dst, scratch) }, minDur), n, ghz)
	scalar = TuplesPerCycle(measureSeconds(func() { enc.DecodeGeneric(dst, scratch) }, minDur), n, ghz)
	return fused, unfused, scalar
}

// MeasureALPRD measures ALP_rd kernel speed on one vector, with the
// row-group sampling done once up front (as for ALP).
func MeasureALPRD(values []float64, ghz float64, minDur time.Duration) Speed {
	n := vector.Size
	if n > len(values) {
		n = len(values)
	}
	vec := values[:n]
	enc := alprd.Sample(values)
	compSec := measureSeconds(func() { enc.EncodeVector(vec) }, minDur)
	v := enc.EncodeVector(vec)
	dst := make([]float64, n)
	decompSec := measureSeconds(func() { enc.DecodeVector(&v, dst) }, minDur)
	return Speed{
		Comp:   TuplesPerCycle(compSec, n, ghz),
		Decomp: TuplesPerCycle(decompSec, n, ghz),
	}
}
