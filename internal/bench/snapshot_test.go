package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// The snapshot's noise-control contract: every metric is a median of
// SnapshotReps windows and the document says so, carrying the worst
// observed relative half-spread as noise_bound for downstream
// comparators to tolerate.
func TestSnapshotRecordsNoiseContract(t *testing.T) {
	var buf bytes.Buffer
	opt := Options{N: 4096, MinDur: 200 * time.Microsecond}
	if err := RunSnapshot(&buf, opt, nil, nil); err != nil {
		t.Fatalf("RunSnapshot: %v", err)
	}
	var doc SnapshotDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if doc.Repetitions != SnapshotReps {
		t.Errorf("repetitions = %d, want %d", doc.Repetitions, SnapshotReps)
	}
	if doc.NoiseBound < 0 {
		t.Errorf("noise_bound = %v, want >= 0", doc.NoiseBound)
	}
	if len(doc.Entries) != len(snapshotDatasets) {
		t.Fatalf("entries = %d, want %d", len(doc.Entries), len(snapshotDatasets))
	}
	for _, e := range doc.Entries {
		if e.EncodeMVs <= 0 || e.DecodeMVs <= 0 || e.FilterMVs <= 0 {
			t.Errorf("%s: non-positive throughput: %+v", e.Dataset, e)
		}
	}
	// The raw JSON must carry the fields by their documented names, so
	// external comparators can rely on them without importing this
	// package.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"repetitions", "noise_bound"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("snapshot JSON missing %q", key)
		}
	}
}

func TestMeasureMedianSeconds(t *testing.T) {
	med, spread := MeasureMedianSeconds(func() {}, 100*time.Microsecond, 5)
	if med <= 0 {
		t.Errorf("median = %v, want > 0", med)
	}
	if spread < 0 {
		t.Errorf("spread = %v, want >= 0", spread)
	}
	// A single repetition has no spread to report.
	_, spread = MeasureMedianSeconds(func() {}, 100*time.Microsecond, 1)
	if spread != 0 {
		t.Errorf("spread with 1 rep = %v, want 0", spread)
	}
}
