package bench

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/goalp/alp/internal/dataset"
)

func fastOpt() Options {
	return Options{N: 8192, GHz: DefaultGHz, MinDur: time.Millisecond}
}

func TestBaselinesComplete(t *testing.T) {
	names := map[string]bool{}
	for _, c := range Baselines() {
		names[c.Name] = true
		if c.Compress == nil || c.Decompress == nil {
			t.Fatalf("%s: missing functions", c.Name)
		}
	}
	for _, want := range []string{"Gorilla", "Chimp", "Chimp128", "Patas", "PDE", "Elf", "Zstd*"} {
		if !names[want] {
			t.Fatalf("baseline %s missing", want)
		}
	}
}

func TestBitsPerValue(t *testing.T) {
	d, _ := dataset.ByName("City-Temp")
	values := d.Generate(4096)
	for _, c := range Baselines() {
		bits := c.BitsPerValue(values)
		if bits <= 0 || bits > 100 {
			t.Errorf("%s: bits/value = %v", c.Name, bits)
		}
	}
	if got := Baselines()[0].BitsPerValue(nil); got != 0 {
		t.Errorf("empty input bits/value = %v", got)
	}
}

func TestTuplesPerCycle(t *testing.T) {
	// 1024 tuples in 1µs at 1 GHz = 1000 cycles -> ~1.024 t/c.
	got := TuplesPerCycle(1e-6, 1024, 1.0)
	if got < 1.0 || got > 1.05 {
		t.Fatalf("TuplesPerCycle = %v, want ~1.024", got)
	}
	if TuplesPerCycle(0, 1024, 1.0) != 0 {
		t.Fatal("zero time must yield zero")
	}
}

func TestMeasureCodecAndALP(t *testing.T) {
	d, _ := dataset.ByName("Stocks-USA")
	values := d.Generate(8192)
	s := MeasureALP(values, DefaultGHz, time.Millisecond)
	if s.Comp <= 0 || s.Decomp <= 0 {
		t.Fatalf("ALP speed = %+v", s)
	}
	if s.Decomp < s.Comp {
		t.Fatalf("ALP decompression (%v) should be faster than compression (%v)", s.Decomp, s.Comp)
	}
	g := Baselines()[0] // Gorilla
	gs := MeasureCodec(g, values, DefaultGHz, time.Millisecond)
	if gs.Comp <= 0 || gs.Decomp <= 0 {
		t.Fatalf("Gorilla speed = %+v", gs)
	}
	if s.Decomp <= gs.Decomp {
		t.Fatalf("ALP decode (%v t/c) must beat Gorilla (%v t/c)", s.Decomp, gs.Decomp)
	}
}

func TestMeasureALPVariantsOrdering(t *testing.T) {
	d, _ := dataset.ByName("Stocks-USA")
	values := d.Generate(8192)
	fused, unfused, scalar := MeasureALPVariants(values, DefaultGHz, 5*time.Millisecond)
	if fused <= 0 || unfused <= 0 || scalar <= 0 {
		t.Fatalf("variants = %v %v %v", fused, unfused, scalar)
	}
	// The specialized kernels must clearly beat the generic loop; fused
	// vs unfused ordering is asserted loosely (timing noise). The race
	// detector slows the loops non-uniformly, so only the sanity checks
	// above hold there.
	if raceEnabled {
		t.Skip("timing ordering is not meaningful under the race detector")
	}
	if fused < scalar {
		t.Fatalf("fused (%v) must beat the generic scalar loop (%v)", fused, scalar)
	}
}

func TestMeasureCascade(t *testing.T) {
	// Low-cardinality data: the dictionary cascade must win.
	src := make([]float64, 8192)
	r := rand.New(rand.NewSource(1))
	points := []float64{1.25, 7.5, 100.75, 3.125}
	for i := range src {
		src[i] = points[r.Intn(len(points))]
	}
	c := MeasureCascade(src)
	if c.Scheme != "dict" {
		t.Fatalf("scheme = %q, want dict", c.Scheme)
	}
	if c.BitsPerValue >= 8 {
		t.Fatalf("bits/value = %v, want small", c.BitsPerValue)
	}

	// Run-heavy data: RLE must win.
	for i := range src {
		src[i] = float64(i / 512)
	}
	c = MeasureCascade(src)
	if c.Scheme != "rle" {
		t.Fatalf("scheme = %q, want rle", c.Scheme)
	}

	if got := MeasureCascade(nil); got.BitsPerValue != 0 {
		t.Fatalf("empty cascade = %+v", got)
	}
}

// TestExperimentDriversRun smoke-tests every experiment driver with a
// tiny configuration so regressions in any table/figure path surface
// in the test suite.
func TestExperimentDriversRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are slow")
	}
	opt := fastOpt()
	var sb strings.Builder
	RunTable2(&sb, opt)
	RunFig3(&sb, opt)
	RunTable4(&sb, opt)
	RunFig4(&sb, opt)
	RunFig5(&sb, opt)
	RunSampling(&sb, opt)
	RunTable6(&sb, opt, 50_000, []int{1, 2})
	RunFig6(&sb, opt, 50_000, 2)
	RunTable7(&sb, opt)
	RunALPRD(&sb, opt)
	out := sb.String()
	for _, want := range []string{
		"Table 2", "Figure 3", "Table 4", "Figure 4", "Figure 5",
		"Sampling", "Table 6", "Figure 6", "Table 7", "ALP_rd",
		"City-Temp", "POI-lat", "ALP",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("driver output missing %q", want)
		}
	}
}

func TestScaleUp(t *testing.T) {
	src := []float64{1, 2, 3}
	out := scaleUp(src, 8)
	want := []float64{1, 2, 3, 1, 2, 3, 1, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("scaleUp = %v", out)
		}
	}
	if got := scaleUp(src, 2); len(got) != 2 || got[0] != 1 {
		t.Fatalf("truncating scaleUp = %v", got)
	}
}
