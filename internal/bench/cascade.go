package bench

import (
	"math"
	"sort"

	"github.com/goalp/alp/internal/bitpack"
	"github.com/goalp/alp/internal/fastlanes"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/vector"
)

// Cascade computes the LWC+ALP column of Table 4: before applying ALP,
// the data may first go through a lightweight encoding — DICTIONARY
// (with the dictionary itself ALP-compressed) or RLE (with run values
// ALP-compressed and run lengths FFOR-packed) — whichever yields the
// fewest bits per value. The plain ALP encoding is always a candidate,
// so the cascade never loses to it.
type Cascade struct {
	BitsPerValue float64
	// Scheme is "", "dict" or "rle" — the superscript of Table 4.
	Scheme string
}

// MeasureCascade evaluates the three cascade candidates per row-group
// and sums the best choices.
func MeasureCascade(values []float64) Cascade {
	if len(values) == 0 {
		return Cascade{}
	}
	totalBits := 0
	schemeCounts := map[string]int{}
	for g := 0; g < vector.RowGroupsIn(len(values)); g++ {
		lo := g * vector.RowGroupSize
		hi := lo + vector.RowGroupSize
		if hi > len(values) {
			hi = len(values)
		}
		part := values[lo:hi]

		rg := format.EncodeRowGroup(part, lo)
		best, scheme := (&rg).SizeBits(), ""
		if b := dictCascadeBits(part); b < best {
			best, scheme = b, "dict"
		}
		if b := rleCascadeBits(part); b < best {
			best, scheme = b, "rle"
		}
		totalBits += best
		schemeCounts[scheme]++
	}
	// Report the dominant non-plain scheme as the superscript, like the
	// per-dataset annotation in Table 4.
	bestScheme := ""
	bestCount := 0
	for s, c := range schemeCounts {
		if s != "" && c > bestCount {
			bestScheme, bestCount = s, c
		}
	}
	if schemeCounts[""] >= bestCount {
		bestScheme = ""
	}
	return Cascade{
		BitsPerValue: float64(totalBits) / float64(len(values)),
		Scheme:       bestScheme,
	}
}

// dictCascadeBits estimates DICTIONARY + ALP: the row-group's distinct
// doubles form a dictionary compressed with ALP; the column stores
// bit-packed codes into it.
func dictCascadeBits(values []float64) int {
	index := make(map[uint64]struct{}, 1024)
	for _, v := range values {
		index[math.Float64bits(v)] = struct{}{}
	}
	card := len(index)
	if card > 1<<16 {
		return math.MaxInt // dictionary larger than the code space: not viable
	}
	dict := make([]float64, 0, card)
	for b := range index {
		dict = append(dict, math.Float64frombits(b))
	}
	// Sorting keeps dictionary construction deterministic and helps the
	// ALP pass (tighter FOR ranges). NaNs sort to the front arbitrarily.
	sort.Float64s(dict)
	codeWidth := bitpack.Width(uint64(card - 1))
	dictRG := format.EncodeRowGroup(dict, 0)
	dictBits := (&dictRG).SizeBits()
	return len(values)*int(codeWidth) + dictBits + 32
}

// rleCascadeBits estimates RLE + ALP: run values are ALP-compressed,
// run lengths FFOR-packed.
func rleCascadeBits(values []float64) int {
	var runValues []float64
	var runLengths []int64
	cur := values[0]
	length := int64(1)
	for _, v := range values[1:] {
		if math.Float64bits(v) == math.Float64bits(cur) {
			length++
			continue
		}
		runValues = append(runValues, cur)
		runLengths = append(runLengths, length)
		cur, length = v, 1
	}
	runValues = append(runValues, cur)
	runLengths = append(runLengths, length)
	if len(runValues) > len(values)/2 {
		return math.MaxInt // too few repeats for RLE to pay off
	}
	valueRG := format.EncodeRowGroup(runValues, 0)
	valueBits := (&valueRG).SizeBits()
	lengths := fastlanes.EncodeFFOR(runLengths)
	return valueBits + lengths.SizeBits() + 32
}
