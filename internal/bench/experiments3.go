package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"github.com/goalp/alp/internal/chimp"
	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/gorilla"
	"github.com/goalp/alp/internal/gp"
	"github.com/goalp/alp/internal/obs"
	"github.com/goalp/alp/internal/patas"
	"github.com/goalp/alp/internal/pde"
)

// EndToEndDatasets are the five diverse datasets the paper picks for
// the Tectorwise experiments (§4.3).
var EndToEndDatasets = []string{"Gov/26", "City-Temp", "Food-prices", "Blockchain-tr", "NYC/29"}

// scaleUp replicates values by concatenation until the target size, as
// the paper does ("we scaled all datasets up to 1 billion doubles by
// concatenation").
func scaleUp(values []float64, target int) []float64 {
	if len(values) >= target {
		return values[:target]
	}
	out := make([]float64, target)
	for off := 0; off < target; off += len(values) {
		copy(out[off:], values)
	}
	return out
}

// engineRelations builds the Table 6 competitor set over values.
func engineRelations(values []float64) []*engine.Relation {
	return []*engine.Relation{
		engine.BuildALP(values),
		engine.BuildUncompressed(values),
		engine.BuildStream("PDE", values, pde.Compress, pde.Decompress),
		engine.BuildStream("Patas", values, patas.Compress, patas.Decompress),
		engine.BuildStream("Gorilla", values, gorilla.Compress, gorilla.Decompress),
		engine.BuildStream("Chimp", values, chimp.Compress, chimp.Decompress),
		engine.BuildStream("Chimp128", values, chimp.CompressN, chimp.DecompressN),
		engine.BuildStream("Zstd*", values, gp.Compress, gp.Decompress),
	}
}

// queryTuplesPerCycle times one query execution and converts it to
// per-core tuples per cycle (the paper's Table 6 metric: equal numbers
// across thread counts mean perfect scaling).
func queryTuplesPerCycle(n, threads int, ghz float64, minDur time.Duration, query func()) float64 {
	sec := measureSeconds(query, minDur)
	perCore := TuplesPerCycle(sec, n, ghz) / float64(threads)
	return perCore
}

// RunTable6 reproduces the end-to-end Tectorwise experiment on
// City-Temp: SCAN and SUM at 1/8/16 threads plus single-threaded
// compression, in per-core tuples per cycle.
func RunTable6(w io.Writer, opt Options, scale int, threads []int) {
	fmt.Fprintf(w, "== Table 6: end-to-end performance on City-Temp (%d values), tuples/cycle per core ==\n", scale)
	d, _ := dataset.ByName("City-Temp")
	values := scaleUp(d.Generate(dataset.DefaultN), scale)
	rels := engineRelations(values)

	tw := newTab(w)
	header := "algorithm"
	for _, t := range threads {
		header += fmt.Sprintf("\tSCAN %d", t)
	}
	for _, t := range threads {
		header += fmt.Sprintf("\tSUM %d", t)
	}
	header += "\tCOMP"
	fmt.Fprintln(tw, header)

	for _, r := range rels {
		row := r.Name
		for _, t := range threads {
			tpc := queryTuplesPerCycle(len(values), t, opt.GHz, opt.MinDur, func() { r.Scan(t) })
			row += fmt.Sprintf("\t%.3f", tpc)
		}
		for _, t := range threads {
			tpc := queryTuplesPerCycle(len(values), t, opt.GHz, opt.MinDur, func() { r.Sum(t) })
			row += fmt.Sprintf("\t%.3f", tpc)
		}
		if r.Name == "Uncompressed" {
			row += "\tN/A"
		} else {
			comp := measureCompression(r.Name, values, opt)
			row += fmt.Sprintf("\t%.3f", comp)
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()
}

// measureCompression times whole-column compression (including
// sampling and metadata, unlike the micro-benchmarks) in tuples/cycle.
func measureCompression(name string, values []float64, opt Options) float64 {
	var fn func()
	switch name {
	case "ALP":
		fn = func() { format.EncodeColumn(values) }
	case "PDE":
		fn = func() { pde.Compress(values) }
	case "Patas":
		fn = func() { patas.Compress(values) }
	case "Gorilla":
		fn = func() { gorilla.Compress(values) }
	case "Chimp":
		fn = func() { chimp.Compress(values) }
	case "Chimp128":
		fn = func() { chimp.CompressN(values) }
	case "Zstd*":
		fn = func() { gp.Compress(values) }
	default:
		return 0
	}
	return TuplesPerCycle(measureSeconds(fn, opt.MinDur), len(values), opt.GHz)
}

// RunFig6 reproduces Figure 6: end-to-end SUM cost in CPU cycles per
// tuple (lower is better) on the five diverse datasets, split into scan
// and summing work.
func RunFig6(w io.Writer, opt Options, scale int, threads int) {
	fmt.Fprintf(w, "== Figure 6: SUM query cost, CPU cycles per tuple (%d values, %d threads; lower is better) ==\n", scale, threads)
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\talgorithm\tSCAN cyc/tuple\tSUM cyc/tuple\tsum work (SUM-SCAN)")
	for _, name := range EndToEndDatasets {
		d, ok := dataset.ByName(name)
		if !ok {
			continue
		}
		values := scaleUp(d.Generate(dataset.DefaultN), scale)
		for _, r := range engineRelations(values) {
			scanSec := measureSeconds(func() { r.Scan(threads) }, opt.MinDur)
			sumSec := measureSeconds(func() { r.Sum(threads) }, opt.MinDur)
			scanCyc := scanSec * opt.GHz * 1e9 / float64(len(values)) * float64(threads)
			sumCyc := sumSec * opt.GHz * 1e9 / float64(len(values)) * float64(threads)
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\n", name, r.Name, scanCyc, sumCyc, sumCyc-scanCyc)
		}
	}
	tw.Flush()
}

// mlModels are the Table 7 workloads, sized down from the paper's
// parameter counts.
var mlModels = []struct {
	Name   string
	Kind   string
	Params int
}{
	{"Dino-Vitb16", "Vision Transformer", 1 << 21},
	{"GPT2", "Text Generation", 1 << 21},
	{"Grammarly-lg", "Text2Text", 1 << 22},
	{"W2V Tweets", "Word2Vec", 3000},
}

// RunTable7 reproduces Table 7: compression ratios on float32 ML model
// weights for the 32-bit codecs.
func RunTable7(w io.Writer, opt Options) {
	fmt.Fprintln(w, "== Table 7: ML model weights (float32), bits per value (raw = 32) ==")
	tw := newTab(w)
	fmt.Fprintln(tw, "model\ttype\tparams\tGor.\tCh.\tCh.128\tPatas\tALP_rd\tZstd*")
	sums := make([]float64, 6)
	for mi, m := range mlModels {
		r := rand.New(rand.NewSource(int64(7000 + mi)))
		weights := dataset.Weights32(r, m.Params)
		n := float64(len(weights))
		gor := float64(len(gorilla.Compress32(weights))) * 8 / n
		ch := float64(len(chimp.Compress32(weights))) * 8 / n
		chN := float64(len(chimp.CompressN32(weights))) * 8 / n
		pat := float64(len(patas.Compress32(weights))) * 8 / n
		rd := format.EncodeColumn32(weights).BitsPerValue()
		zs := float64(len(gp.Compress32(weights))) * 8 / n
		for i, v := range []float64{gor, ch, chN, pat, rd, zs} {
			sums[i] += v
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			m.Name, m.Kind, m.Params, gor, ch, chN, pat, rd, zs)
	}
	k := float64(len(mlModels))
	fmt.Fprintf(tw, "AVG.\t\t\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
		sums[0]/k, sums[1]/k, sums[2]/k, sums[3]/k, sums[4]/k, sums[5]/k)
	tw.Flush()
}

// RunALPRD reproduces the §4.2 ALP_rd speed comparison: ALP_rd is
// expected to be ~3x slower at compression and ~4x slower at
// decompression than the decimal scheme.
func RunALPRD(w io.Writer, opt Options) {
	fmt.Fprintln(w, "== ALP vs ALP_rd kernel speed (§4.2), tuples/cycle ==")
	dDec, _ := dataset.ByName("City-Temp")
	dRD, _ := dataset.ByName("POI-lat")
	alpSpeed := MeasureALP(dDec.Generate(opt.N), opt.GHz, opt.MinDur)
	rdSpeed := MeasureALPRD(dRD.Generate(opt.N), opt.GHz, opt.MinDur)
	tw := newTab(w)
	fmt.Fprintln(tw, "scheme\tcompression\tdecompression")
	fmt.Fprintf(tw, "ALP (City-Temp)\t%.3f\t%.3f\n", alpSpeed.Comp, alpSpeed.Decomp)
	fmt.Fprintf(tw, "ALP_rd (POI-lat)\t%.3f\t%.3f\n", rdSpeed.Comp, rdSpeed.Decomp)
	fmt.Fprintf(tw, "ALP_rd slower by\t%.1fx\t%.1fx\n", alpSpeed.Comp/rdSpeed.Comp, alpSpeed.Decomp/rdSpeed.Decomp)
	tw.Flush()
}

// RunFilter is an extension experiment beyond the paper's tables: it
// quantifies the predicate push-down claim of §1 ("one cannot skip
// through compressed data" with block-based compression). A selective
// range predicate runs over each relation; ALP answers it by consulting
// per-vector zone maps and decompressing only qualifying vectors, while
// every other scheme must decompress everything.
func RunFilter(w io.Writer, opt Options, scale int) {
	fmt.Fprintf(w, "== Predicate push-down (extension): SUM WHERE col BETWEEN lo AND hi (%d values) ==\n", scale)
	d, _ := dataset.ByName("Stocks-USA")
	values := scaleUp(d.Generate(dataset.DefaultN), scale)
	// A ~1%-selective predicate band.
	lo, hi := 150.0, 150.5
	tw := newTab(w)
	fmt.Fprintln(tw, "algorithm\tvectors decompressed\tof total\tquery tuples/cycle\tvs full SUM")
	for _, r := range engineRelations(values) {
		var touched int
		sec := measureSeconds(func() { _, _, touched = r.SumRange(1, lo, hi) }, opt.MinDur)
		fullSec := measureSeconds(func() { r.Sum(1) }, opt.MinDur)
		totalVectors := (len(values) + 1023) / 1024
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\t%.3f\t%.1fx\n",
			r.Name, touched, 100*float64(touched)/float64(totalVectors),
			TuplesPerCycle(sec, len(values), opt.GHz), fullSec/sec)
	}
	tw.Flush()
	fmt.Fprintln(w, "   (vectors decompressed < 100% is only possible with per-vector decodability)")

	// Selectivity sweep: the encoded-domain pushdown (zone-map skipping
	// + fused unpack+compare, no float materialization for
	// non-qualifying rows) against the forced decode-then-filter scan on
	// the same ALP relation. Predicates are upper-tail bands
	// "col >= quantile(1-s)", the shape of a selective analytic filter.
	fmt.Fprintf(w, "\n-- Selectivity sweep on ALP (SUM/COUNT/MIN/MAX WHERE col >= q, 1 thread) --\n")
	alp := engine.BuildALP(values)
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	quantile := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	tw = newTab(w)
	fmt.Fprintln(tw, "selectivity\tselected rows\tpushdown vecs\tfallback vecs\tpushdown\tnaive\tspeedup")
	for _, s := range []float64{0.001, 0.01, 0.05, 0.25, 0.50, 0.99} {
		p := engine.GE(quantile(1 - s))
		// One instrumented run for the counters, then uninstrumented
		// timing runs. Only disable afterwards if collection was off
		// before (e.g. not running under -metrics/-stats).
		wasActive := obs.Active() != nil
		c := obs.Enable()
		before := c.Snapshot()
		push, _ := alp.FilterAgg(1, p)
		snap := c.Snapshot()
		if !wasActive {
			obs.Disable()
		}
		pushSec := measureSeconds(func() { alp.FilterAgg(1, p) }, opt.MinDur)
		naiveSec := measureSeconds(func() { alp.FilterAggNaive(1, p) }, opt.MinDur)
		fmt.Fprintf(tw, "%.1f%%\t%d\t%d\t%d\t%.2fms\t%.2fms\t%.1fx\n",
			100*s, push.Count,
			snap.PushdownVectors-before.PushdownVectors,
			snap.PushdownFallbacks-before.PushdownFallbacks,
			pushSec*1e3, naiveSec*1e3, naiveSec/pushSec)
	}
	tw.Flush()
	fmt.Fprintln(w, "   (pushdown answers in the encoded-integer domain; naive decodes every vector)")
}
