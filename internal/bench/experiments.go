package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/format"
)

// Options configures the experiment drivers.
type Options struct {
	N      int           // values per dataset
	GHz    float64       // clock used to convert time to cycles
	MinDur time.Duration // minimum measurement window per timing point
}

// DefaultOptions returns the options used by `alpbench` unless
// overridden by flags.
func DefaultOptions() Options {
	return Options{N: dataset.DefaultN, GHz: DefaultGHz, MinDur: 20 * time.Millisecond}
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// Perf is one (dataset, codec) measurement: compression ratio plus
// compression/decompression speed.
type Perf struct {
	Dataset string
	Codec   string
	Bits    float64
	Speed   Speed
}

// CollectPerf measures ratio and speed for every codec (ALP and all
// baselines) on every dataset — the data behind Figure 1 and Table 5.
func CollectPerf(opt Options) []Perf {
	var out []Perf
	for _, d := range dataset.All() {
		values := d.Generate(opt.N)
		col := format.EncodeColumn(values)
		var alpSpeed Speed
		if col.UsedRD() {
			alpSpeed = MeasureALPRD(values, opt.GHz, opt.MinDur)
		} else {
			alpSpeed = MeasureALP(values, opt.GHz, opt.MinDur)
		}
		out = append(out, Perf{Dataset: d.Name, Codec: "ALP", Bits: col.BitsPerValue(), Speed: alpSpeed})
		for _, c := range Baselines() {
			out = append(out, Perf{
				Dataset: d.Name,
				Codec:   c.Name,
				Bits:    c.BitsPerValue(values),
				Speed:   MeasureCodec(c, values, opt.GHz, opt.MinDur),
			})
		}
	}
	return out
}

// RunFig1 prints the Figure 1 scatter data: one row per (dataset,
// codec) with bits/value and [de]compression tuples per cycle.
func RunFig1(w io.Writer, opt Options) {
	fmt.Fprintln(w, "== Figure 1: compression ratio vs [de]compression speed (all schemes x all datasets) ==")
	fmt.Fprintf(w, "   (speed in tuples per CPU cycle at %.1f GHz; each row is one dot)\n", opt.GHz)
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\tcodec\tbits/value\tcomp t/c\tdecomp t/c")
	for _, p := range CollectPerf(opt) {
		fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.3f\t%.3f\n", p.Dataset, p.Codec, p.Bits, p.Speed.Comp, p.Speed.Decomp)
	}
	tw.Flush()
}

// RunTable5 prints the Table 5 aggregate: average compression and
// decompression tuples/cycle per scheme, with ALP's speedup factors.
func RunTable5(w io.Writer, opt Options) {
	fmt.Fprintln(w, "== Table 5: average [de]compression speed, tuples per CPU cycle ==")
	perf := CollectPerf(opt)
	type agg struct {
		comp, decomp float64
		n            int
	}
	byCodec := map[string]*agg{}
	var order []string
	for _, p := range perf {
		a, ok := byCodec[p.Codec]
		if !ok {
			a = &agg{}
			byCodec[p.Codec] = a
			order = append(order, p.Codec)
		}
		a.comp += p.Speed.Comp
		a.decomp += p.Speed.Decomp
		a.n++
	}
	alp := byCodec["ALP"]
	tw := newTab(w)
	fmt.Fprintln(tw, "algorithm\tcompression\tALP faster by\tdecompression\tALP faster by")
	for _, name := range order {
		a := byCodec[name]
		comp := a.comp / float64(a.n)
		decomp := a.decomp / float64(a.n)
		if name == "ALP" {
			fmt.Fprintf(tw, "%s\t%.3f\t-\t%.3f\t-\n", name, comp, decomp)
			continue
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.0fx\t%.3f\t%.0fx\n",
			name, comp, alp.comp/float64(alp.n)/comp, decomp, alp.decomp/float64(alp.n)/decomp)
	}
	tw.Flush()
}

// RunTable4 prints the Table 4 compression ratios in bits per value for
// every scheme, plus the LWC+ALP cascade column.
func RunTable4(w io.Writer, opt Options) {
	fmt.Fprintln(w, "== Table 4: compression ratio, bits per value (lower is better; raw = 64) ==")
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\tGor.\tCh.\tCh.128\tPatas\tPDE\tElf\tALP\tLWC+ALP\tZstd*")
	codecs := Baselines()
	type sums struct {
		vals  [10]float64
		count int
	}
	var tsAgg, nonAgg, allAgg sums
	for _, d := range dataset.All() {
		values := d.Generate(opt.N)
		col := format.EncodeColumn(values)
		alpBits := col.BitsPerValue()
		casc := MeasureCascade(values)
		row := make(map[string]float64, len(codecs))
		for _, c := range codecs {
			row[c.Name] = c.BitsPerValue(values)
		}
		mark := ""
		if col.UsedRD() {
			mark = "*"
		}
		cascLabel := fmt.Sprintf("%.1f", casc.BitsPerValue)
		if casc.Scheme != "" {
			cascLabel += " " + casc.Scheme
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f%s\t%s\t%.1f\n",
			d.Name, row["Gorilla"], row["Chimp"], row["Chimp128"], row["Patas"],
			row["PDE"], row["Elf"], alpBits, mark, cascLabel, row["Zstd*"])
		vals := [10]float64{row["Gorilla"], row["Chimp"], row["Chimp128"], row["Patas"],
			row["PDE"], row["Elf"], alpBits, casc.BitsPerValue, row["Zstd*"]}
		targets := []*sums{&allAgg}
		if d.TimeSeries {
			targets = append(targets, &tsAgg)
		} else {
			targets = append(targets, &nonAgg)
		}
		for _, t := range targets {
			for i, v := range vals {
				t.vals[i] += v
			}
			t.count++
		}
	}
	printAvg := func(name string, s *sums) {
		if s.count == 0 {
			return
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n", name,
			s.vals[0]/float64(s.count), s.vals[1]/float64(s.count), s.vals[2]/float64(s.count),
			s.vals[3]/float64(s.count), s.vals[4]/float64(s.count), s.vals[5]/float64(s.count),
			s.vals[6]/float64(s.count), s.vals[7]/float64(s.count), s.vals[8]/float64(s.count))
	}
	printAvg("TS AVG.", &tsAgg)
	printAvg("NON-TS AVG.", &nonAgg)
	printAvg("ALL AVG.", &allAgg)
	tw.Flush()
	fmt.Fprintln(w, "   (* = ALP_rd was used; Zstd* is stdlib DEFLATE standing in for Zstd, see DESIGN.md)")
}

// RunTable2 prints the recomputed dataset metrics of Table 2.
func RunTable2(w io.Writer, opt Options) {
	fmt.Fprintln(w, "== Table 2: dataset metrics on the synthesized datasets ==")
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\tprec max\tmin\tavg\tstd\tnon-uniq%\tval avg\tval std\texp avg\texp std\tPenc vis%\tbest e\tbest e%\tper-vec%\tXOR lead\tXOR trail")
	for _, d := range dataset.All() {
		s := dataset.Analyze(d.Name, d.Generate(opt.N))
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%.1f\t%.1f%%\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f%%\t%d\t%.1f%%\t%.1f%%\t%.1f\t%.1f\n",
			s.Name, s.PrecMax, s.PrecMin, s.PrecAvg, s.PrecStd, s.NonUniquePct,
			s.ValueAvg, s.ValueStd, s.ExpAvg, s.ExpStd,
			s.SuccessVisible, s.BestE, s.SuccessBestE, s.SuccessPerVector,
			s.XORLeadAvg, s.XORTrailAvg)
	}
	tw.Flush()
}
