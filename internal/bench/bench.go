// Package bench is the measurement harness that regenerates every
// table and figure of the paper's evaluation section (see DESIGN.md §2
// for the experiment index). It provides the codec registry, the
// ratio/speed measurement utilities (tuples per CPU cycle, the paper's
// metric), the LWC+ALP cascade of Table 4, and one driver per
// experiment.
package bench

import (
	"sort"
	"time"

	"github.com/goalp/alp/internal/chimp"
	"github.com/goalp/alp/internal/elf"
	"github.com/goalp/alp/internal/gorilla"
	"github.com/goalp/alp/internal/gp"
	"github.com/goalp/alp/internal/patas"
	"github.com/goalp/alp/internal/pde"
)

// DefaultGHz converts wall-clock time to CPU cycles when the harness is
// not told the clock explicitly. 3.5 GHz mirrors the paper's Ice Lake.
const DefaultGHz = 3.5

// Codec is a byte-stream floating-point codec under test.
type Codec struct {
	Name       string
	Compress   func(src []float64) []byte
	Decompress func(dst []float64, data []byte) error
	// BlockBased marks general-purpose comparators that must be measured
	// on a whole row-group rather than one vector (§4.2: "we increased
	// the size of the experiment for Zstd to one rowgroup").
	BlockBased bool
}

// Baselines returns the competing codecs in the paper's column order:
// Gorilla, Chimp, Chimp128, Patas, PDE, Elf, and the general-purpose
// comparator (DEFLATE standing in for Zstd; see DESIGN.md).
func Baselines() []Codec {
	return []Codec{
		{Name: "Gorilla", Compress: gorilla.Compress, Decompress: gorilla.Decompress},
		{Name: "Chimp", Compress: chimp.Compress, Decompress: chimp.Decompress},
		{Name: "Chimp128", Compress: chimp.CompressN, Decompress: chimp.DecompressN},
		{Name: "Patas", Compress: patas.Compress, Decompress: patas.Decompress},
		{Name: "PDE", Compress: pde.Compress, Decompress: pde.Decompress},
		{Name: "Elf", Compress: elf.Compress, Decompress: elf.Decompress},
		{Name: "Zstd*", Compress: gp.Compress, Decompress: gp.Decompress, BlockBased: true},
	}
}

// BitsPerValue measures a codec's compression ratio on values.
func (c Codec) BitsPerValue(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	data := c.Compress(values)
	return float64(len(data)) * 8 / float64(len(values))
}

// MeasureSeconds is measureSeconds for sibling harness packages
// (internal/servedbench) that share this package's timing discipline.
func MeasureSeconds(fn func(), minDuration time.Duration) float64 {
	return measureSeconds(fn, minDuration)
}

// MeasureMedianSeconds is the noise-controlled timing primitive behind
// the benchmark snapshots and the cross-domain gauntlet: it runs reps
// independent measurement windows of at least window each (after
// measureSeconds' own warmup) and returns the median seconds-per-call
// together with the observed relative half-spread, (max-min)/(2*median)
// — the per-metric noise bound the regression comparator is told to
// tolerate on top of its threshold. A scheduler stall or GC pause that
// wrecks one window moves the spread, not the median.
func MeasureMedianSeconds(fn func(), window time.Duration, reps int) (median, spread float64) {
	if reps < 1 {
		reps = 1
	}
	samples := make([]float64, reps)
	for i := range samples {
		samples[i] = measureSeconds(fn, window)
	}
	sort.Float64s(samples)
	median = samples[reps/2]
	if reps%2 == 0 {
		median = (samples[reps/2-1] + samples[reps/2]) / 2
	}
	if median > 0 && reps > 1 {
		spread = (samples[reps-1] - samples[0]) / (2 * median)
	}
	return median, spread
}

// measureSeconds runs fn repeatedly until minDuration has elapsed and
// returns the mean seconds per call.
func measureSeconds(fn func(), minDuration time.Duration) float64 {
	// Warm up and estimate a batch size.
	fn()
	start := time.Now()
	fn()
	per := time.Since(start)
	if per <= 0 {
		per = time.Nanosecond
	}
	batch := int(minDuration/per)/4 + 1

	iters := 0
	start = time.Now()
	for elapsed := time.Duration(0); elapsed < minDuration; elapsed = time.Since(start) {
		for i := 0; i < batch; i++ {
			fn()
		}
		iters += batch
	}
	return time.Since(start).Seconds() / float64(iters)
}

// TuplesPerCycle converts a per-call time over n tuples to the paper's
// tuples-per-CPU-cycle metric at the given clock.
func TuplesPerCycle(secondsPerCall float64, n int, ghz float64) float64 {
	if secondsPerCall <= 0 {
		return 0
	}
	cycles := secondsPerCall * ghz * 1e9
	return float64(n) / cycles
}

// Speed is a compression/decompression throughput pair in tuples per
// CPU cycle.
type Speed struct {
	Comp   float64
	Decomp float64
}

// MeasureCodec measures a codec's speed the way the paper does (§4.2):
// one vector of the dataset (or one row-group for block-based codecs)
// is [de]compressed repeatedly so the data stays cache-resident.
func MeasureCodec(c Codec, values []float64, ghz float64, minDur time.Duration) Speed {
	n := 1024
	if c.BlockBased {
		n = 102400
	}
	if n > len(values) {
		n = len(values)
	}
	src := values[:n]
	compSec := measureSeconds(func() { c.Compress(src) }, minDur)
	data := c.Compress(src)
	dst := make([]float64, n)
	decompSec := measureSeconds(func() {
		if err := c.Decompress(dst, data); err != nil {
			panic(c.Name + ": " + err.Error())
		}
	}, minDur)
	return Speed{
		Comp:   TuplesPerCycle(compSec, n, ghz),
		Decomp: TuplesPerCycle(decompSec, n, ghz),
	}
}
