package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"github.com/goalp/alp/internal/alpenc"
	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/fastlanes"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/vector"
)

// RunFig3 reproduces the Figure 3 analysis: per dataset, how many
// distinct (e, f) combinations are needed to cover the per-vector best
// combination of every vector. The paper's finding — at most ~5 per
// dataset, often 1 — justifies the two-level sampling design.
func RunFig3(w io.Writer, opt Options) {
	fmt.Fprintln(w, "== Figure 3: best (e,f) combinations per vector, cumulative coverage ==")
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\tdistinct combos\tcombos for 99%\ttop-1 coverage\ttop-5 coverage")
	for _, d := range dataset.All() {
		if d.RD {
			continue // the decimal search space is irrelevant for ALP_rd data
		}
		values := d.Generate(opt.N)
		counts := map[alpenc.Combo]int{}
		nv := vector.VectorsIn(len(values))
		for v := 0; v < nv; v++ {
			lo, hi := vector.Bounds(v, len(values))
			best, _ := alpenc.FindBest(values[lo:hi])
			counts[best]++
		}
		freqs := make([]int, 0, len(counts))
		for _, c := range counts {
			freqs = append(freqs, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
		top1 := 100 * float64(freqs[0]) / float64(nv)
		top5 := 0
		for i := 0; i < 5 && i < len(freqs); i++ {
			top5 += freqs[i]
		}
		cum, need99 := 0, 0
		for i, f := range freqs {
			cum += f
			if float64(cum) >= 0.99*float64(nv) {
				need99 = i + 1
				break
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f%%\t%.1f%%\n",
			d.Name, len(counts), need99, top1, 100*float64(top5)/float64(nv))
	}
	tw.Flush()
}

// RunFig4 reproduces the Figure 4 architecture study as a kernel-variant
// ablation (see DESIGN.md, substitution 3): ALP decompression through
// the specialized fused kernels ("SIMDized"), specialized kernels with
// a separate reference pass ("Auto-vectorized"), and the generic
// width-parametric loop ("Scalar").
func RunFig4(w io.Writer, opt Options) {
	fmt.Fprintln(w, "== Figure 4: ALP decompression speed by kernel variant (tuples/cycle) ==")
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\tfused kernels\tunfused kernels\tgeneric scalar")
	for _, d := range dataset.All() {
		if d.RD {
			continue
		}
		values := d.Generate(opt.N)
		fused, unfused, scalar := MeasureALPVariants(values, opt.GHz, opt.MinDur)
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\n", d.Name, fused, unfused, scalar)
	}
	tw.Flush()
}

// RunFig5 reproduces Figure 5: decompression speed of ALP+FFOR fused
// into one kernel vs two separate kernels, on the datasets (top plot)
// and on synthetic vectors of every bit width 0..52 (bottom plot).
func RunFig5(w io.Writer, opt Options) {
	fmt.Fprintln(w, "== Figure 5 (top): fused vs unfused ALP+FFOR decode on the datasets ==")
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\tfused t/c\tunfused t/c\tspeedup")
	for _, d := range dataset.All() {
		if d.RD {
			continue
		}
		values := d.Generate(opt.N)
		fused, unfused, _ := MeasureALPVariants(values, opt.GHz, opt.MinDur)
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.0f%%\n", d.Name, fused, unfused, 100*(fused/unfused-1))
	}
	tw.Flush()

	fmt.Fprintln(w, "== Figure 5 (bottom): fused vs unfused by vector bit width ==")
	tw = newTab(w)
	fmt.Fprintln(tw, "bit width\tfused t/c\tunfused t/c\tspeedup")
	r := rand.New(rand.NewSource(42))
	dst := make([]float64, vector.Size)
	scratch := make([]int64, vector.Size)
	for width := 0; width <= 52; width += 4 {
		ints := make([]int64, vector.Size)
		for i := range ints {
			if width > 0 {
				ints[i] = int64(r.Uint64() & (1<<uint(width) - 1))
			}
		}
		v := alpenc.Vector{E: 2, F: 0, N: vector.Size, Ints: fastlanes.EncodeFFOR(ints)}
		fused := TuplesPerCycle(measureSeconds(func() { v.Decode(dst, scratch) }, opt.MinDur), vector.Size, opt.GHz)
		unfused := TuplesPerCycle(measureSeconds(func() { v.DecodeUnfused(dst, scratch) }, opt.MinDur), vector.Size, opt.GHz)
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.0f%%\n", width, fused, unfused, 100*(fused/unfused-1))
	}
	tw.Flush()
}

// RunSampling reproduces the §4.2 sampling-overhead analysis: how many
// candidate combinations the second stage tries per vector, and how
// close the sampled choice is to an exhaustive per-vector search.
func RunSampling(w io.Writer, opt Options) {
	fmt.Fprintln(w, "== Sampling overhead (§4.2): second-stage candidate tries per vector ==")
	triedHist := map[int]int{}
	vectors := 0
	nd := 0
	var sampledBits, bruteBits float64
	for _, d := range dataset.All() {
		if d.RD {
			continue
		}
		nd++
		values := d.Generate(opt.N)
		col := format.EncodeColumn(values)
		for i := range col.RowGroups {
			rg := &col.RowGroups[i]
			for _, tried := range rg.SecondStageTried {
				triedHist[tried]++
				vectors++
			}
		}
		sampledBits += col.BitsPerValue()

		// Exhaustive per-vector search for the ratio gap.
		var bits int
		scratch := make([]int64, vector.Size)
		for v := 0; v < vector.VectorsIn(len(values)); v++ {
			lo, hi := vector.Bounds(v, len(values))
			best, _ := alpenc.FindBest(values[lo:hi])
			enc := alpenc.EncodeVector(values[lo:hi], best, scratch)
			bits += enc.SizeBits()
		}
		bruteBits += float64(bits) / float64(len(values))
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "combinations tried\tvectors\tshare")
	keys := make([]int, 0, len(triedHist))
	for k := range triedHist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		label := fmt.Sprintf("%d", k)
		if k == 0 {
			label = "0 (second stage skipped)"
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\n", label, triedHist[k], 100*float64(triedHist[k])/float64(vectors))
	}
	tw.Flush()
	fmt.Fprintf(w, "sampled choice: %.2f bits/value avg; exhaustive per-vector search: %.2f (gap %.2f%%)\n",
		sampledBits/float64(nd), bruteBits/float64(nd), 100*(sampledBits-bruteBits)/bruteBits)
}
