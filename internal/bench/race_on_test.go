//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in; timing
// ordering assertions are skipped under its ~10x non-uniform slowdown.
const raceEnabled = true
