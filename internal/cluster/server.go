// The coordinator's HTTP face: the same /v1/columns surface alpserved
// serves, so the stock client (and anything built on it) talks to a
// cluster without knowing it is one, plus /v1/cluster/* for the
// partition map and rebalance control. Error mapping is the
// no-silent-partials discipline on the wire: a PartialUnavailableError
// before any byte is written is a 503 whose body names the typed
// refusal, and after first emit the only honest signal left is an
// aborted connection (the scan completion trailer never appears).
package cluster

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/goalp/alp"
	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/obs"
)

// ServerOptions configures the coordinator's HTTP layer.
type ServerOptions struct {
	// RequestTimeout bounds each request end-to-end. 0 means 30s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps an ingest body. 0 means 1 GiB.
	MaxBodyBytes int64
}

// Server mounts a Coordinator behind the alpserved HTTP surface.
type Server struct {
	co   *Coordinator
	opts ServerOptions
	mux  *http.ServeMux
}

// NewServer wraps co in the HTTP surface.
func NewServer(co *Coordinator, opts ServerOptions) *Server {
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 30 * time.Second
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 30
	}
	s := &Server{co: co, opts: opts, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/columns/{name}", s.wrap(s.handleIngest))
	s.mux.HandleFunc("GET /v1/columns", s.wrap(s.handleList))
	s.mux.HandleFunc("GET /v1/columns/{name}", s.wrap(s.handleInfo))
	s.mux.HandleFunc("DELETE /v1/columns/{name}", s.wrap(s.handleDelete))
	s.mux.HandleFunc("GET /v1/columns/{name}/agg", s.wrap(s.handleAgg))
	s.mux.HandleFunc("GET /v1/columns/{name}/count", s.wrap(s.handleCount))
	s.mux.HandleFunc("GET /v1/columns/{name}/scan", s.wrap(s.handleScan))
	s.mux.HandleFunc("GET /v1/columns/{name}/data", s.wrap(s.handleData))
	s.mux.HandleFunc("GET /v1/cluster/map", s.wrap(s.handleMap))
	s.mux.HandleFunc("POST /v1/cluster/rebalance", s.wrap(s.handleRebalance))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleHealth)
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// wrap bounds the request with the coordinator's timeout; backend
// latencies and scatter shapes are recorded inside the Coordinator, so
// the HTTP layer stays thin.
func (s *Server) wrap(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// queryError maps coordinator errors onto the wire: unknown column is
// a 404, the typed partial-unavailable refusal (and any backend-pool
// exhaustion) is a 503 — the degraded-but-honest answer — and
// everything else is a 500.
func queryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownColumn):
		httpError(w, http.StatusNotFound, err.Error())
	case IsPartialUnavailable(err):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusServiceUnavailable, "clustered query deadline exceeded: "+err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func validateName(name string) error {
	if name == "" || len(name) > 128 {
		return errors.New("column name must be 1..128 bytes")
	}
	if strings.ContainsAny(name, "/\\ \t\n@") {
		return errors.New("column name must not contain slashes, whitespace or '@'")
	}
	return nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := validateName(name); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		switch {
		case errors.As(err, &mbe):
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d-byte cap", s.opts.MaxBodyBytes))
		case r.Context().Err() != nil:
			httpError(w, http.StatusRequestTimeout, "ingest deadline exceeded")
		default:
			httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		}
		return
	}
	var info client.ColumnInfo
	if r.Header.Get("Content-Type") == client.CompressedContentType {
		// Re-frame an already-compressed stream: validate, then shard
		// its row-groups verbatim — no re-encode anywhere.
		col, err := format.Unmarshal(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "compressed stream: "+err.Error())
			return
		}
		info, err = s.co.IngestColumn(r.Context(), name, col, body)
		if err != nil {
			queryError(w, err)
			return
		}
	} else {
		if len(body)%8 != 0 {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("body length not a multiple of 8 (%d trailing bytes)", len(body)%8))
			return
		}
		values := make([]float64, len(body)/8)
		for i := range values {
			values[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
		}
		info, err = s.co.Ingest(r.Context(), name, values)
		if err != nil {
			queryError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusCreated, infoWire(info))
}

// infoWire re-emits client.ColumnInfo under the server's JSON keys.
func infoWire(info client.ColumnInfo) map[string]any {
	return map[string]any{
		"name":             info.Name,
		"values":           info.Values,
		"num_vectors":      info.NumVectors,
		"num_row_groups":   info.NumRowGroups,
		"compressed_bytes": info.CompressedBytes,
		"bits_per_value":   info.BitsPerValue,
		"exceptions":       info.Exceptions,
		"used_rd":          info.UsedRD,
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"columns": s.co.List()})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.co.Info(r.PathValue("name"))
	if err != nil {
		queryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, infoWire(info))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.co.Delete(r.Context(), r.PathValue("name")) {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no column %q", r.PathValue("name")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func fmtFloat(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

func (s *Server) handleAgg(w http.ResponseWriter, r *http.Request) {
	agg, err := s.co.Agg(r.Context(), r.PathValue("name"), client.RawPredicate(r.URL.Query()))
	if err != nil {
		queryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sum":     fmtFloat(agg.Sum),
		"count":   agg.Count,
		"min":     fmtFloat(agg.Min),
		"max":     fmtFloat(agg.Max),
		"touched": agg.Touched,
		"threads": 1,
	})
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	count, err := s.co.Count(r.Context(), r.PathValue("name"), client.RawPredicate(r.URL.Query()))
	if err != nil {
		queryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": count})
}

// scanRowsTrailer mirrors the alpserved completion trailer, the frame
// that distinguishes "stream complete" from an aborted connection.
const scanRowsTrailer = "X-Alp-Scan-Rows"

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	compressed := false
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mt := strings.TrimSpace(part)
			if i := strings.IndexByte(mt, ';'); i >= 0 {
				mt = strings.TrimSpace(mt[:i])
			}
			if mt == alp.ScanStreamContentType {
				compressed = true
			}
		}
	}
	w.Header().Set("Trailer", scanRowsTrailer)
	if compressed {
		w.Header().Set("Content-Type", alp.ScanStreamContentType)
	} else {
		w.Header().Set("Content-Type", "application/x-alp-f64le")
	}
	rows, emitted, err := s.co.Scan(r.Context(), r.PathValue("name"), client.RawPredicate(r.URL.Query()), compressed, w)
	if err != nil {
		if emitted {
			// Bytes are on the wire: the completion trailer must not
			// appear, so abort instead of finishing a short stream.
			panic(http.ErrAbortHandler)
		}
		w.Header().Del("Trailer")
		w.Header().Del("Content-Type")
		queryError(w, err)
		return
	}
	w.Header().Set(scanRowsTrailer, strconv.Itoa(rows))
}

func (s *Server) handleData(w http.ResponseWriter, r *http.Request) {
	data, err := s.co.Data(r.Context(), r.PathValue("name"))
	if err != nil {
		queryError(w, err)
		return
	}
	w.Header().Set("Content-Type", client.CompressedContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

func (s *Server) handleMap(w http.ResponseWriter, _ *http.Request) {
	m := s.co.Map()
	cols := *s.co.cols.Load()
	type colWire struct {
		Name      string `json:"name"`
		RowGroups int    `json:"row_groups"`
		Epoch     uint64 `json:"epoch"`
	}
	cw := make([]colWire, 0, len(cols))
	for _, name := range s.co.List() {
		st := cols[name]
		cw = append(cw, colWire{Name: st.name, RowGroups: st.numRG, Epoch: st.epoch})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":    m.Epoch,
		"backends": m.Backends,
		"replicas": m.Replicas,
		"columns":  cw,
	})
}

func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Column string `json:"column"`
		From   string `json:"from"`
		To     string `json:"to"`
		RgLo   int    `json:"rg_lo"`
		RgHi   int    `json:"rg_hi"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "rebalance request: "+err.Error())
		return
	}
	res, err := s.co.Rebalance(r.Context(), req.Column, req.From, req.To, req.RgLo, req.RgHi)
	if err != nil {
		if errors.Is(err, ErrUnknownColumn) {
			httpError(w, http.StatusNotFound, err.Error())
		} else if IsPartialUnavailable(err) {
			httpError(w, http.StatusServiceUnavailable, err.Error())
		} else {
			httpError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleMetrics serves the process obs snapshot plus the coordinator's
// cluster extras: the map epoch, per-backend pool/breaker/retry stats
// and per-backend call-latency histograms (backend<i>_lat_*) — the
// per-shard observability the fan-out counters summarize.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	extras := make([]obs.Extra, 0, 4)
	m := s.co.Map()
	extras = append(extras, obs.Extra{Name: "cluster_epoch", JSON: strconv.FormatUint(m.Epoch, 10)})
	extras = append(extras, obs.Extra{Name: "cluster_columns", JSON: strconv.Itoa(len(*s.co.cols.Load()))})
	if bs, err := json.Marshal(s.co.pool.Stats()); err == nil {
		extras = append(extras, obs.Extra{Name: "cluster_backends", JSON: string(bs)})
	}
	for i, h := range s.co.backendHists {
		snap := h.Snapshot()
		for _, mt := range snap.Flats(fmt.Sprintf("backend%d_lat", i)) {
			extras = append(extras, obs.Extra{Name: mt.Name, JSON: strconv.FormatInt(mt.Value, 10)})
		}
	}
	fmt.Fprintln(w, obs.Active().Snapshot().JSON(extras...))
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}
