package cluster_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/cluster"
	"github.com/goalp/alp/internal/server"
)

// BenchmarkAggClustered is the scaling point recorded in
// BENCH_core.json (`make bench-snapshot` → clustered_agg): a filtered
// SUM/COUNT aggregate pushed through the coordinator at 1, 2 and 4
// loopback alpserved backends. Four row-groups of data, so every shard
// count divides the work evenly. mvs_per_sec is column values
// aggregated per wall second; on a host with cores to spare the
// 4-shard point should exceed 1.8x the 1-shard one (see
// EXPERIMENTS.md for the recorded numbers and the single-core caveat).
func BenchmarkAggClustered(b *testing.B) {
	const n = 4 * 102400
	values := make([]float64, n)
	for i := range values {
		values[i] = float64((i*7919)%100000) / 100
	}
	pred := client.Between(250, 749.995)
	ctx := context.Background()

	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			backends := make([]*httptest.Server, shards)
			urls := make([]string, shards)
			for i := range backends {
				backends[i] = httptest.NewServer(server.New(server.Options{}).Handler())
				urls[i] = backends[i].URL
			}
			defer func() {
				for _, ts := range backends {
					ts.Close()
				}
			}()
			co := cluster.New(urls, cluster.Options{})
			defer co.Close()
			if _, err := co.Ingest(ctx, "bench", values); err != nil {
				b.Fatalf("ingest: %v", err)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := co.Agg(ctx, "bench", pred); err != nil {
					b.Fatalf("agg: %v", err)
				}
			}
			b.StopTimer()
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(n)*float64(b.N)/sec/1e6, "mvs_per_sec")
			}
		})
	}
}
