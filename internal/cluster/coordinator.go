// The scatter-gather coordinator: one logical alpserved surface over N
// sharded backends. Columns are split at row-group boundaries — the
// format's unit of self-contained encoding — and each row-group is
// placed on R backends by the rendezvous map. Queries fan out over the
// health-checked pool, fetch per-row-group partials from the first
// healthy replica of each row-group (deterministic rank tiebreak), and
// merge in global row-group order, so every clustered result is
// bit-identical to the single-node answer regardless of shard count or
// which replica served. A row-group with no answering replica fails
// the whole query with a typed PartialUnavailableError — the
// coordinator never returns a silent partial.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/obs"
)

// Options configures a Coordinator.
type Options struct {
	// Replicas is R, the ranked replicas per row-group (clamped to
	// [1, number of backends]).
	Replicas int
	// EncodeWorkers bounds the parallel encode on ingest. 0 means 1.
	EncodeWorkers int
	// ScanConcurrency bounds how many scan runs are fetched at once
	// while emission stays in order. 0 means 4.
	ScanConcurrency int
	// Pool configures the backend pool (probes, breaker, client retry).
	Pool client.PoolOptions
}

// colState is one column's placement, immutable once published. A
// rebalance or re-ingest builds a fresh state and swaps the column map
// — the registry's atomic-replace discipline — so a query plans
// against one consistent placement end to end.
type colState struct {
	name  string
	info  client.ColumnInfo // single-node-equivalent shape
	epoch uint64            // map epoch this placement was published under
	numRG int

	// gens holds each backend's storage generation for this column;
	// gen 0 means the backend stores nothing. The stored name is
	// "<col>@g<gen>", so a rebalance publishes under fresh names and
	// only then retires the old ones — a query racing the move still
	// finds whichever generation its colState points at.
	gens []uint64
	// replicas is the ranked backend list per global row-group.
	replicas [][]int
	// assigned is the inverse view: the ascending global row-groups
	// each backend stores. A row-group's local index on a backend is
	// its position here, which is how global query plans translate to
	// the backend's local ?rgs= / ?rg_lo= parameters.
	assigned [][]int
}

func (st *colState) storedName(b int) string {
	return fmt.Sprintf("%s@g%d", st.name, st.gens[b])
}

// localIndex maps a global row-group to its index within backend b's
// sub-column.
func (st *colState) localIndex(b, g int) int {
	return sort.SearchInts(st.assigned[b], g)
}

// Coordinator is the clustered face of alpserved: same queries, same
// bit-identical answers, row-groups spread over a pool of backends.
type Coordinator struct {
	opts Options
	pool *client.Pool
	pmap atomic.Pointer[Map]
	cols atomic.Pointer[map[string]*colState]

	// mu serializes the writers (ingest, delete, rebalance); readers
	// go through the atomic pointers only.
	mu sync.Mutex

	// backendHists are per-backend call-latency histograms, surfaced
	// in /metrics as backend<i>_lat_* — the per-shard half of the
	// coordinator's observability.
	backendHists []*obs.Histogram
}

// New builds a coordinator over the given backend base URLs.
func New(backends []string, opts Options) *Coordinator {
	if opts.EncodeWorkers < 1 {
		opts.EncodeWorkers = 1
	}
	if opts.ScanConcurrency < 1 {
		opts.ScanConcurrency = 4
	}
	c := &Coordinator{
		opts: opts,
		pool: client.NewPool(backends, opts.Pool),
	}
	c.pmap.Store(NewMap(backends, opts.Replicas))
	empty := map[string]*colState{}
	c.cols.Store(&empty)
	c.backendHists = make([]*obs.Histogram, len(backends))
	for i := range c.backendHists {
		c.backendHists[i] = &obs.Histogram{}
	}
	return c
}

// Pool exposes the backend pool (probes, stats).
func (c *Coordinator) Pool() *client.Pool { return c.pool }

// Map returns the current partition map epoch snapshot.
func (c *Coordinator) Map() *Map { return c.pmap.Load() }

// Close stops the pool's probe loop.
func (c *Coordinator) Close() { c.pool.Close() }

func (c *Coordinator) col(name string) (*colState, error) {
	if st, ok := (*c.cols.Load())[name]; ok {
		return st, nil
	}
	return nil, fmt.Errorf("column %q: %w", name, ErrUnknownColumn)
}

// publish swaps a copy-on-write column map with st added (or removed
// when st is nil). Callers hold c.mu.
func (c *Coordinator) publish(name string, st *colState) {
	old := *c.cols.Load()
	next := make(map[string]*colState, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	if st == nil {
		delete(next, name)
	} else {
		next[name] = st
	}
	c.cols.Store(&next)
}

// List returns the coordinator's column names, sorted.
func (c *Coordinator) List() []string {
	cols := *c.cols.Load()
	names := make([]string, 0, len(cols))
	for k := range cols {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Info returns the single-node-equivalent shape of a clustered column.
func (c *Coordinator) Info(name string) (client.ColumnInfo, error) {
	st, err := c.col(name)
	if err != nil {
		return client.ColumnInfo{}, err
	}
	return st.info, nil
}

// ---- ingest ----

// Ingest encodes values once, splits the column at row-group
// boundaries per the partition map, and ships each backend its
// sub-column as compressed bytes (no backend re-encodes). The ingest
// is all-or-nothing: any backend failure unwinds the partial writes
// and leaves the previous generation (if any) untouched.
func (c *Coordinator) Ingest(ctx context.Context, name string, values []float64) (client.ColumnInfo, error) {
	if strings.Contains(name, "@") {
		return client.ColumnInfo{}, fmt.Errorf("column name %q: %q is reserved for shard generations", name, "@")
	}
	col := format.EncodeColumnParallel(values, c.opts.EncodeWorkers)
	return c.IngestColumn(ctx, name, col, col.Marshal())
}

// IngestColumn shards an already-encoded column (full is its Marshal
// output) — the re-frame path for compressed ingest into the cluster.
func (c *Coordinator) IngestColumn(ctx context.Context, name string, col *format.Column, full []byte) (client.ColumnInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	m := c.pmap.Load()
	numRG := len(col.RowGroups)
	replicas := make([][]int, numRG)
	assigned := make([][]int, len(m.Backends))
	for g := range replicas {
		replicas[g] = m.Place(name, g)
		for _, b := range replicas[g] {
			assigned[b] = append(assigned[b], g)
		}
	}

	prev, _ := c.col(name)
	gens := make([]uint64, len(m.Backends))
	for b := range gens {
		gens[b] = 1
		if prev != nil && b < len(prev.gens) && prev.gens[b] >= gens[b] {
			gens[b] = prev.gens[b] + 1
		}
	}

	st := &colState{
		name:     name,
		epoch:    m.Epoch,
		numRG:    numRG,
		gens:     gens,
		replicas: replicas,
		assigned: assigned,
		info: client.ColumnInfo{
			Name:            name,
			Values:          col.N,
			NumVectors:      col.NumVectors(),
			NumRowGroups:    numRG,
			CompressedBytes: len(full),
			BitsPerValue:    col.BitsPerValue(),
			Exceptions:      col.Exceptions(),
			UsedRD:          col.UsedRD(),
		},
	}

	// Build and ship every backend's sub-column concurrently. Stitching
	// shares row-group state with col, so the only per-backend cost is
	// the marshal of its shard's bytes.
	errs := make([]error, len(m.Backends))
	var wg sync.WaitGroup
	for b := range assigned {
		if len(assigned[b]) == 0 {
			st.gens[b] = 0
			continue
		}
		refs := make([]format.RowGroupRef, len(assigned[b]))
		for i, g := range assigned[b] {
			refs[i] = format.RowGroupRef{Col: col, G: g}
		}
		sub, err := format.StitchColumns(refs)
		if err != nil {
			return client.ColumnInfo{}, fmt.Errorf("stitching shard for %s: %w", m.Backends[b].URL, err)
		}
		data := sub.Marshal()
		wg.Add(1)
		go func(b int, data []byte) {
			defer wg.Done()
			errs[b] = c.pool.Do(ctx, b, func(cl *client.Client) error {
				_, err := cl.IngestCompressed(ctx, st.storedName(b), data)
				return err
			})
		}(b, data)
	}
	wg.Wait()
	for b, err := range errs {
		if err != nil {
			// Unwind this generation's writes; the previous state (if
			// any) is untouched and stays published.
			c.deleteShards(context.Background(), st, nil)
			return client.ColumnInfo{}, fmt.Errorf("ingest to %s: %w", m.Backends[b].URL, err)
		}
	}

	c.publish(name, st)
	if prev != nil {
		c.deleteShards(context.Background(), prev, nil)
	}
	return st.info, nil
}

// deleteShards best-effort removes a state's stored sub-columns. only,
// when non-nil, restricts the sweep to those backend indexes.
func (c *Coordinator) deleteShards(ctx context.Context, st *colState, only []int) {
	bs := only
	if bs == nil {
		bs = make([]int, len(st.gens))
		for b := range bs {
			bs[b] = b
		}
	}
	var wg sync.WaitGroup
	for _, b := range bs {
		if st.gens[b] == 0 {
			continue
		}
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			_ = c.pool.Do(ctx, b, func(cl *client.Client) error {
				return cl.Delete(ctx, st.storedName(b))
			})
		}(b)
	}
	wg.Wait()
}

// Delete removes a clustered column from every backend (best effort)
// and from the coordinator. Reports whether the column existed.
func (c *Coordinator) Delete(ctx context.Context, name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, err := c.col(name)
	if err != nil {
		return false
	}
	c.publish(name, nil)
	c.deleteShards(ctx, st, nil)
	return true
}

// ---- scatter planning ----

// choose picks the backend to answer for row-group g: the first
// replica by rank that is neither excluded nor known-unhealthy, else —
// health being advisory — the first merely non-excluded replica, so a
// stale probe can't fail a query a backend would have answered.
func (c *Coordinator) choose(st *colState, g int, excluded []bool) (int, bool) {
	for _, b := range st.replicas[g] {
		if !excluded[b] && c.pool.Healthy(b) {
			return b, true
		}
	}
	for _, b := range st.replicas[g] {
		if !excluded[b] {
			return b, true
		}
	}
	return 0, false
}

// fetchFn runs one backend call of a scatter. colName is the backend's
// stored sub-column; locals/globals are the row-groups to answer for,
// ascending, as local and global indexes. On success it must record
// results for exactly those row-groups.
type fetchFn func(ctx context.Context, cl *client.Client, b int, colName string, locals, globals []int) error

// scatterRGs fans fetch out over the backends chosen for the needed
// row-groups, failing over row-groups from a failed backend to their
// next-ranked replica until every row-group is answered or some
// row-group runs out of replicas — which degrades to the typed
// PartialUnavailableError, never a silent partial.
func (c *Coordinator) scatterRGs(ctx context.Context, st *colState, need []int, fetch fetchFn) error {
	o := obs.Active()
	excluded := make([]bool, c.pool.Len())
	unfilled := need
	var lastErr error
	for round := 0; len(unfilled) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Plan this round: group unfilled row-groups by chosen backend.
		groups := make([][]int, c.pool.Len())
		var missing []int
		fanout := 0
		for _, g := range unfilled {
			b, ok := c.choose(st, g, excluded)
			if !ok {
				missing = append(missing, g)
				continue
			}
			if len(groups[b]) == 0 {
				fanout++
			}
			groups[b] = append(groups[b], g)
		}
		if len(missing) > 0 {
			o.ClusterPartialUnavailable()
			return &PartialUnavailableError{Col: st.name, MissingRowGroups: missing, Cause: lastErr}
		}
		if round == 0 {
			o.ClusterScatter(fanout)
		}

		type result struct {
			b   int
			err error
			dur time.Duration
		}
		results := make([]result, 0, fanout)
		var rmu sync.Mutex
		var wg sync.WaitGroup
		for b := range groups {
			if len(groups[b]) == 0 {
				continue
			}
			wg.Add(1)
			go func(b int, globals []int) {
				defer wg.Done()
				locals := make([]int, len(globals))
				for i, g := range globals {
					locals[i] = st.localIndex(b, g)
				}
				start := time.Now()
				err := c.pool.Do(ctx, b, func(cl *client.Client) error {
					return fetch(ctx, cl, b, st.storedName(b), locals, globals)
				})
				dur := time.Since(start)
				o.ClusterCall()
				o.Observe(obs.HistClusterBackend, dur.Nanoseconds())
				c.backendHists[b].Record(dur.Nanoseconds())
				rmu.Lock()
				results = append(results, result{b: b, err: err, dur: dur})
				rmu.Unlock()
			}(b, groups[b])
		}
		wg.Wait()

		if round == 0 && len(results) >= 2 {
			minD, maxD := results[0].dur, results[0].dur
			for _, r := range results[1:] {
				if r.dur < minD {
					minD = r.dur
				}
				if r.dur > maxD {
					maxD = r.dur
				}
			}
			if maxD > 2*minD {
				o.ClusterStraggler()
			}
		}

		var retry []int
		for _, r := range results {
			if r.err == nil {
				continue
			}
			excluded[r.b] = true
			lastErr = fmt.Errorf("backend %s: %w", c.pool.URL(r.b), r.err)
			retry = append(retry, groups[r.b]...)
			o.ClusterFailover()
		}
		sort.Ints(retry)
		unfilled = retry
	}
	return nil
}

func allRGs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// ---- queries ----

// Agg runs the filtered aggregate across the cluster: per-row-group
// partials fetched from each row-group's first healthy replica, merged
// in global row-group order (engine.MergeAggs — the contract DESIGN.md
// pins), so the result is bit-identical to single-node at any shard
// count and under any failover.
func (c *Coordinator) Agg(ctx context.Context, name string, p client.Predicate) (client.Agg, error) {
	st, err := c.col(name)
	if err != nil {
		return client.Agg{}, err
	}
	start := time.Now()
	parts := make([]engine.Agg, st.numRG)
	var touched atomic.Int64
	err = c.scatterRGs(ctx, st, allRGs(st.numRG), func(ctx context.Context, cl *client.Client, _ int, colName string, locals, globals []int) error {
		got, t, err := cl.AggPartials(ctx, colName, p, locals)
		if err != nil {
			return err
		}
		if len(got) != len(globals) {
			return fmt.Errorf("backend answered %d partials for %d row-groups", len(got), len(globals))
		}
		for i, g := range globals {
			parts[g] = engine.Agg{Sum: got[i].Sum, Count: got[i].Count, Min: got[i].Min, Max: got[i].Max}
		}
		touched.Add(int64(t))
		return nil
	})
	if err != nil {
		return client.Agg{}, err
	}
	merged := engine.MergeAggs(parts)
	obs.Active().Observe(obs.HistClusterScatter, time.Since(start).Nanoseconds())
	return client.Agg{
		Sum:     merged.Sum,
		Count:   merged.Count,
		Min:     merged.Min,
		Max:     merged.Max,
		Touched: int(touched.Load()),
	}, nil
}

// Count runs the filtered count across the cluster. COUNT is exactly
// associative, so the merge is a plain sum in global row-group order.
func (c *Coordinator) Count(ctx context.Context, name string, p client.Predicate) (int64, error) {
	st, err := c.col(name)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	counts := make([]int64, st.numRG)
	err = c.scatterRGs(ctx, st, allRGs(st.numRG), func(ctx context.Context, cl *client.Client, _ int, colName string, locals, globals []int) error {
		got, err := cl.CountPartials(ctx, colName, p, locals)
		if err != nil {
			return err
		}
		if len(got) != len(globals) {
			return fmt.Errorf("backend answered %d counts for %d row-groups", len(got), len(globals))
		}
		for i, g := range globals {
			counts[g] = got[i]
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	obs.Active().Observe(obs.HistClusterScatter, time.Since(start).Nanoseconds())
	return total, nil
}

// Data reassembles the full compressed column: every row-group's
// sub-column bytes fetched from a replica, unmarshaled, and stitched
// in global order. Because row-groups marshal byte-identically inside
// any standalone column, the stitched stream is bit-identical to the
// single-node Marshal of the original ingest.
func (c *Coordinator) Data(ctx context.Context, name string) ([]byte, error) {
	st, err := c.col(name)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	subCols := make([]*format.Column, c.pool.Len())
	refs := make([]format.RowGroupRef, st.numRG)
	var mu sync.Mutex
	err = c.scatterRGs(ctx, st, allRGs(st.numRG), func(ctx context.Context, cl *client.Client, b int, colName string, locals, globals []int) error {
		mu.Lock()
		sub := subCols[b]
		mu.Unlock()
		if sub == nil {
			data, err := cl.DataRange(ctx, colName, -1, -1)
			if err != nil {
				return err
			}
			if sub, err = format.Unmarshal(data); err != nil {
				return fmt.Errorf("shard stream from %s: %w", c.pool.URL(b), err)
			}
			mu.Lock()
			subCols[b] = sub
			mu.Unlock()
		}
		for i, g := range globals {
			if locals[i] >= len(sub.RowGroups) {
				return fmt.Errorf("shard on %s holds %d row-groups, need local %d", c.pool.URL(b), len(sub.RowGroups), locals[i])
			}
			refs[g] = format.RowGroupRef{Col: sub, G: locals[i]}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	col, err := format.StitchColumns(refs)
	if err != nil {
		return nil, err
	}
	out := col.Marshal()
	obs.Active().Observe(obs.HistClusterScatter, time.Since(start).Nanoseconds())
	return out, nil
}
