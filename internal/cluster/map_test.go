package cluster

import "testing"

func TestPlaceDeterministicAndRanked(t *testing.T) {
	urls := []string{"http://a", "http://b", "http://c", "http://d"}
	m := NewMap(urls, 2)
	if m.Epoch != 1 || m.Replicas != 2 {
		t.Fatalf("map %+v", m)
	}
	for g := 0; g < 200; g++ {
		r1 := m.Place("col", g)
		r2 := m.Place("col", g)
		if len(r1) != 2 {
			t.Fatalf("rg %d: %d replicas, want 2", g, len(r1))
		}
		if r1[0] == r1[1] {
			t.Fatalf("rg %d: duplicate replica %v", g, r1)
		}
		if r1[0] != r2[0] || r1[1] != r2[1] {
			t.Fatalf("rg %d: placement not deterministic: %v vs %v", g, r1, r2)
		}
	}
}

func TestPlaceSpreadsLoad(t *testing.T) {
	m := NewMap([]string{"http://a", "http://b", "http://c", "http://d"}, 1)
	counts := make([]int, 4)
	for g := 0; g < 400; g++ {
		counts[m.Place("col", g)[0]]++
	}
	for b, n := range counts {
		if n == 0 {
			t.Fatalf("backend %d received no row-groups: %v", b, counts)
		}
	}
}

func TestPlaceDependsOnColumnAndRowGroup(t *testing.T) {
	m := NewMap([]string{"http://a", "http://b", "http://c"}, 1)
	// Different columns (and different row-groups) must not all land
	// on one backend; sample enough keys that a constant function
	// would be caught.
	seen := map[int]bool{}
	for _, col := range []string{"x", "y", "z"} {
		for g := 0; g < 50; g++ {
			seen[m.Place(col, g)[0]] = true
		}
	}
	if len(seen) != 3 {
		t.Fatalf("placement used only backends %v of 3", seen)
	}
}

func TestReplicasClamped(t *testing.T) {
	if m := NewMap([]string{"http://a", "http://b"}, 9); m.Replicas != 2 {
		t.Fatalf("replicas not clamped down: %d", m.Replicas)
	}
	if m := NewMap([]string{"http://a", "http://b"}, 0); m.Replicas != 1 {
		t.Fatalf("replicas not clamped up: %d", m.Replicas)
	}
}
