// Rebalancing: moving a row-group range between backends with the raw
// export/ingest endpoints — compressed bytes only, no re-encode — and
// publishing the move as a new placement epoch. The move is staged:
// both backends' replacement sub-columns are written under fresh
// storage generations while queries keep planning against the old
// state; only after both writes succeed does the coordinator bump the
// map epoch, swap the column's placement, and retire the old
// generations. A query racing the move reads one placement or the
// other, never a mixture.
package cluster

import (
	"context"
	"fmt"
	"sort"

	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/obs"
)

// RebalanceResult describes one completed move.
type RebalanceResult struct {
	Column string `json:"column"`
	From   string `json:"from"`
	To     string `json:"to"`
	Moved  []int  `json:"moved_row_groups"`
	Epoch  uint64 `json:"epoch"`
}

// backendIndex resolves a backend URL (or ID) to its pool index.
func (c *Coordinator) backendIndex(urlOrID string) (int, error) {
	m := c.pmap.Load()
	for i, b := range m.Backends {
		if b.URL == urlOrID || b.ID == urlOrID {
			return i, nil
		}
	}
	return 0, fmt.Errorf("no backend %q in the partition map", urlOrID)
}

// Rebalance moves the row-groups of name in the global range
// [rgLo, rgHi] that `from` stores onto `to` (skipping any the target
// already replicates). Data moves as compressed bytes via the ranged
// /data export and compressed ingest; placement updates keep each
// moved row-group's replica rank, so the deterministic first-healthy
// choice is preserved under the new epoch.
func (c *Coordinator) Rebalance(ctx context.Context, name, from, to string, rgLo, rgHi int) (RebalanceResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	st, err := c.col(name)
	if err != nil {
		return RebalanceResult{}, err
	}
	fb, err := c.backendIndex(from)
	if err != nil {
		return RebalanceResult{}, err
	}
	tb, err := c.backendIndex(to)
	if err != nil {
		return RebalanceResult{}, err
	}
	if fb == tb {
		return RebalanceResult{}, fmt.Errorf("from and to are the same backend")
	}
	if rgLo < 0 || rgHi < rgLo || rgHi >= st.numRG {
		return RebalanceResult{}, fmt.Errorf("row-group range [%d, %d] out of [0, %d)", rgLo, rgHi, st.numRG)
	}

	// moved: the row-groups from stores in range that to does not
	// already replicate. Ascending, because assigned lists are.
	var moved []int
	for _, g := range st.assigned[fb] {
		if g < rgLo || g > rgHi {
			continue
		}
		if st.localIndex(tb, g) < len(st.assigned[tb]) && st.assigned[tb][st.localIndex(tb, g)] == g {
			continue
		}
		moved = append(moved, g)
	}
	if len(moved) == 0 {
		return RebalanceResult{}, fmt.Errorf("backend %s stores no movable row-groups in [%d, %d]", from, rgLo, rgHi)
	}

	// Fetch both backends' current sub-columns (compressed, whole).
	fetchSub := func(b int) (*format.Column, error) {
		var data []byte
		err := c.pool.Do(ctx, b, func(cl *client.Client) error {
			var err error
			data, err = cl.DataRange(ctx, st.storedName(b), -1, -1)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("exporting from %s: %w", c.pool.URL(b), err)
		}
		col, err := format.Unmarshal(data)
		if err != nil {
			return nil, fmt.Errorf("shard stream from %s: %w", c.pool.URL(b), err)
		}
		return col, nil
	}
	fromCol, err := fetchSub(fb)
	if err != nil {
		return RebalanceResult{}, err
	}
	var toCol *format.Column
	if st.gens[tb] != 0 {
		if toCol, err = fetchSub(tb); err != nil {
			return RebalanceResult{}, err
		}
	}

	movedSet := make(map[int]bool, len(moved))
	for _, g := range moved {
		movedSet[g] = true
	}

	// New placement: moved row-groups swap from→to at the same rank.
	replicas := make([][]int, st.numRG)
	for g := range replicas {
		replicas[g] = append([]int(nil), st.replicas[g]...)
		if movedSet[g] {
			for i, b := range replicas[g] {
				if b == fb {
					replicas[g][i] = tb
				}
			}
		}
	}
	assigned := make([][]int, c.pool.Len())
	for g := range replicas {
		for _, b := range replicas[g] {
			assigned[b] = append(assigned[b], g)
		}
	}
	for b := range assigned {
		sort.Ints(assigned[b])
	}

	// Stage the replacement sub-columns under fresh generations. Every
	// row-group a backend keeps after the move is already in one of the
	// two fetched sub-columns: moved ones (and everything the source
	// keeps) in fromCol, the target's pre-existing ones in toCol.
	gens := append([]uint64(nil), st.gens...)
	stitchFor := func(b int) (*format.Column, error) {
		refs := make([]format.RowGroupRef, 0, len(assigned[b]))
		for _, g := range assigned[b] {
			var src *format.Column
			var local int
			if li := st.localIndex(fb, g); li < len(st.assigned[fb]) && st.assigned[fb][li] == g {
				src, local = fromCol, li
			} else if li := st.localIndex(tb, g); toCol != nil && li < len(st.assigned[tb]) && st.assigned[tb][li] == g {
				src, local = toCol, li
			} else {
				return nil, fmt.Errorf("row-group %d has no staged source", g)
			}
			refs = append(refs, format.RowGroupRef{Col: src, G: local})
		}
		return format.StitchColumns(refs)
	}

	ship := func(b int, gen uint64, col *format.Column) error {
		data := col.Marshal()
		name := fmt.Sprintf("%s@g%d", st.name, gen)
		return c.pool.Do(ctx, b, func(cl *client.Client) error {
			_, err := cl.IngestCompressed(ctx, name, data)
			return err
		})
	}

	var staged []struct {
		b   int
		gen uint64
	}
	unwind := func() {
		for _, s := range staged {
			b, gen := s.b, s.gen
			_ = c.pool.Do(context.Background(), b, func(cl *client.Client) error {
				return cl.Delete(context.Background(), fmt.Sprintf("%s@g%d", st.name, gen))
			})
		}
	}

	toSub, err := stitchFor(tb)
	if err != nil {
		return RebalanceResult{}, err
	}
	gens[tb]++
	if err := ship(tb, gens[tb], toSub); err != nil {
		return RebalanceResult{}, fmt.Errorf("staging target shard: %w", err)
	}
	staged = append(staged, struct {
		b   int
		gen uint64
	}{tb, gens[tb]})

	oldFromGen := gens[fb]
	if len(assigned[fb]) == 0 {
		gens[fb] = 0
	} else {
		fromSub, err := stitchFor(fb)
		if err != nil {
			unwind()
			return RebalanceResult{}, err
		}
		gens[fb]++
		if err := ship(fb, gens[fb], fromSub); err != nil {
			unwind()
			return RebalanceResult{}, fmt.Errorf("staging source shard: %w", err)
		}
	}

	// Publish: bump the map epoch, swap the column state, retire the
	// old generations.
	oldMap := c.pmap.Load()
	newMap := &Map{Epoch: oldMap.Epoch + 1, Backends: oldMap.Backends, Replicas: oldMap.Replicas}
	c.pmap.Store(newMap)

	next := &colState{
		name:     st.name,
		info:     st.info,
		epoch:    newMap.Epoch,
		numRG:    st.numRG,
		gens:     gens,
		replicas: replicas,
		assigned: assigned,
	}
	c.publish(st.name, next)
	obs.Active().ClusterRebalance()

	// Old generations are garbage now; queries planned against the old
	// state may still be in flight, so failures here are harmless (and
	// those queries fail over to the new replicas anyway).
	retire := []struct {
		b   int
		gen uint64
	}{{tb, st.gens[tb]}, {fb, oldFromGen}}
	for _, r := range retire {
		if r.gen == 0 {
			continue
		}
		b, gen := r.b, r.gen
		_ = c.pool.Do(context.Background(), b, func(cl *client.Client) error {
			return cl.Delete(context.Background(), fmt.Sprintf("%s@g%d", st.name, gen))
		})
	}

	return RebalanceResult{
		Column: st.name,
		From:   c.pool.URL(fb),
		To:     c.pool.URL(tb),
		Moved:  moved,
		Epoch:  newMap.Epoch,
	}, nil
}
