// The clustered differential battery: every query answered through the
// coordinator — over real alpserved backends, through the cluster's
// own HTTP surface — must be bit-identical to the single-node answer,
// at 1, 2 and 4 shards, over a predicate sweep and edge datasets (NaN,
// ±Inf, -0, constants, sub-row-group columns). Plus fault injection:
// killed and hanging backends must surface as the typed
// partial-unavailable error at R=1 and as transparent failover at R=2,
// never as a silent partial.
package cluster_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/goalp/alp"
	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/cluster"
	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/server"
	"github.com/goalp/alp/internal/vector"
)

// backendSet is a pool of real alpserved instances under httptest.
type backendSet struct {
	servers []*httptest.Server
	urls    []string
}

func newBackends(t *testing.T, n int) *backendSet {
	t.Helper()
	bs := &backendSet{}
	for i := 0; i < n; i++ {
		srv := server.New(server.Options{})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		bs.servers = append(bs.servers, ts)
		bs.urls = append(bs.urls, ts.URL)
	}
	return bs
}

// newCluster stands a coordinator over urls and mounts its HTTP
// surface, returning the coordinator and a stock client speaking to
// the cluster exactly as it would to a single alpserved.
func newCluster(t *testing.T, urls []string, replicas int, copts ...func(*cluster.Options)) (*cluster.Coordinator, *client.Client) {
	t.Helper()
	opts := cluster.Options{
		Replicas: replicas,
		Pool: client.PoolOptions{
			ClientOptions: []client.Option{client.WithRetries(0)},
		},
	}
	for _, f := range copts {
		f(&opts)
	}
	co := cluster.New(urls, opts)
	t.Cleanup(co.Close)
	co.Pool().Probe(context.Background())
	ts := httptest.NewServer(cluster.NewServer(co, cluster.ServerOptions{}).Handler())
	t.Cleanup(ts.Close)
	return co, client.New(ts.URL)
}

// dataset synthesizes a decimal-heavy multi-row-group column.
func dataset(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	level := 100.0
	for i := range out {
		if i%1024 == 0 {
			level = float64(rng.Intn(200))
		}
		out[i] = math.Round((level+rng.Float64()*10)*100) / 100
	}
	return out
}

// edgeDataset seeds non-finite and signed-zero values into a normal
// column, spread so every row-group holds some.
func edgeDataset(n int, seed int64) []float64 {
	out := dataset(n, seed)
	for i := 0; i < n; i += 4097 {
		switch (i / 4097) % 4 {
		case 0:
			out[i] = math.NaN()
		case 1:
			out[i] = math.Inf(1)
		case 2:
			out[i] = math.Inf(-1)
		case 3:
			out[i] = math.Copysign(0, -1)
		}
	}
	return out
}

func constantDataset(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 42.42
	}
	return out
}

type sweepCase struct {
	name string
	cp   client.Predicate
	ep   engine.Predicate
}

func predicateSweep() []sweepCase {
	return []sweepCase{
		{"all", client.All(), engine.Between(math.Inf(-1), math.Inf(1))},
		{"ge", client.GE(100), engine.GE(100)},
		{"lt", client.LT(50), engine.LT(50)},
		{"between", client.Between(90, 160), engine.Between(90, 160)},
		{"eq", client.EQ(42.42), engine.EQ(42.42)},
		{"empty", client.GT(1e12), engine.GT(1e12)},
	}
}

// ingestOn ingests values under successive names until placement puts
// at least one row-group on the target backend, returning that name.
// Rendezvous placement depends on the backends' (ephemeral) URLs, so a
// fault test must pick a column the faulty backend actually serves.
func ingestOn(t *testing.T, ctx context.Context, cl *client.Client, target *client.Client, prefix string, values []float64) string {
	t.Helper()
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if _, err := cl.Ingest(ctx, name, values); err != nil {
			t.Fatal(err)
		}
		names, err := target.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			if strings.HasPrefix(n, name+"@g") {
				return name
			}
		}
	}
	t.Fatal("no column landed on the target backend in 32 tries")
	return ""
}

// bitsEq is bit-identity modulo NaN payload: the agg wire's 'g'
// formatting round-trips every finite value and ±Inf bit-exactly but
// canonicalizes NaN payloads, which carry no value semantics.
func bitsEq(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestClusteredDifferentialBattery is the acceptance battery: clustered
// agg/count/scan/data vs the in-process reference, across shard counts,
// datasets and predicates, all through the HTTP surfaces.
func TestClusteredDifferentialBattery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-backend battery")
	}
	datasets := map[string][]float64{
		"random":   dataset(2*vector.RowGroupSize+4096+777, 11),
		"edge":     edgeDataset(3*vector.RowGroupSize+999, 12),
		"constant": constantDataset(vector.RowGroupSize + 5000),
		"tiny":     dataset(3000, 13),
	}
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4} {
		bs := newBackends(t, shards)
		_, cl := newCluster(t, bs.urls, 1)
		for dname, values := range datasets {
			if _, err := cl.Ingest(ctx, dname, values); err != nil {
				t.Fatalf("%d shards, %s: ingest: %v", shards, dname, err)
			}

			// Single-node references. The coordinator's /data contract
			// is bit-identity with the single-node Marshal.
			col := format.EncodeColumn(values)
			single := col.Marshal()
			rel := engine.BuildALPFromColumn(dname, col)

			info, err := cl.Info(ctx, dname)
			if err != nil {
				t.Fatal(err)
			}
			if info.Values != len(values) || info.NumRowGroups != len(col.RowGroups) ||
				info.CompressedBytes != len(single) {
				t.Fatalf("%d shards, %s: info %+v does not match single-node shape", shards, dname, info)
			}

			data, err := cl.Compressed(ctx, dname)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != string(single) {
				t.Fatalf("%d shards, %s: stitched /data differs from single-node marshal (%d vs %d bytes)",
					shards, dname, len(data), len(single))
			}

			for _, sc := range predicateSweep() {
				parts, wantTouched := rel.FilterAggPartials(1, sc.ep, nil)
				want := engine.MergeAggs(parts)

				agg, err := cl.Agg(ctx, dname, sc.cp)
				if err != nil {
					t.Fatalf("%d shards, %s/%s: agg: %v", shards, dname, sc.name, err)
				}
				if !bitsEq(agg.Sum, want.Sum) || agg.Count != want.Count ||
					!bitsEq(agg.Min, want.Min) || !bitsEq(agg.Max, want.Max) {
					t.Fatalf("%d shards, %s/%s: clustered agg %+v != single-node %+v",
						shards, dname, sc.name, agg, want)
				}
				if agg.Touched != wantTouched {
					t.Fatalf("%d shards, %s/%s: touched %d != %d (zone pruning must survive sharding)",
						shards, dname, sc.name, agg.Touched, wantTouched)
				}

				count, err := cl.Count(ctx, dname, sc.cp)
				if err != nil {
					t.Fatalf("%d shards, %s/%s: count: %v", shards, dname, sc.name, err)
				}
				if count != want.Count {
					t.Fatalf("%d shards, %s/%s: clustered count %d != %d", shards, dname, sc.name, count, want.Count)
				}

				var wantRows []float64
				for _, v := range values {
					if sc.ep.Match(v) {
						wantRows = append(wantRows, v)
					}
				}
				for _, scan := range []struct {
					name string
					run  func() ([]float64, error)
				}{
					{"alps", func() ([]float64, error) { return cl.Scan(ctx, dname, sc.cp) }},
					{"raw", func() ([]float64, error) { return cl.ScanRaw(ctx, dname, sc.cp) }},
				} {
					got, err := scan.run()
					if err != nil {
						t.Fatalf("%d shards, %s/%s: scan %s: %v", shards, dname, sc.name, scan.name, err)
					}
					if len(got) != len(wantRows) {
						t.Fatalf("%d shards, %s/%s: scan %s returned %d rows, want %d",
							shards, dname, sc.name, scan.name, len(got), len(wantRows))
					}
					for i := range wantRows {
						if !bitsEq(got[i], wantRows[i]) {
							t.Fatalf("%d shards, %s/%s: scan %s row %d: %x != %x",
								shards, dname, sc.name, scan.name, i, math.Float64bits(got[i]), math.Float64bits(wantRows[i]))
						}
					}
				}
			}
		}
	}
}

// TestClusteredCompressedReframe pushes a single-node compressed stream
// through the cluster (compressed ingest re-frames it shard-wise) and
// checks the reassembled export is the identical stream.
func TestClusteredCompressedReframe(t *testing.T) {
	ctx := context.Background()
	values := dataset(2*vector.RowGroupSize+123, 21)
	single := format.EncodeColumn(values).Marshal()

	bs := newBackends(t, 3)
	_, cl := newCluster(t, bs.urls, 1)
	if _, err := cl.IngestCompressed(ctx, "c", single); err != nil {
		t.Fatal(err)
	}
	data, err := cl.Compressed(ctx, "c")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(single) {
		t.Fatal("re-framed compressed stream is not bit-identical to the original")
	}
}

// TestKilledBackendTypedError: with R=1, losing a backend mid-cluster
// must degrade every query touching its row-groups to the typed
// partial-unavailable refusal (503 whose message names it) — never a
// silent partial.
func TestKilledBackendTypedError(t *testing.T) {
	ctx := context.Background()
	bs := newBackends(t, 3)
	co, cl := newCluster(t, bs.urls, 1)
	values := dataset(3*vector.RowGroupSize+500, 31)
	name := ingestOn(t, ctx, cl, client.New(bs.urls[1]), "k", values)
	if _, err := cl.Agg(ctx, name, client.GE(100)); err != nil {
		t.Fatal(err)
	}

	bs.servers[1].Close()

	if _, err := cl.Agg(ctx, name, client.GE(100)); err == nil {
		t.Fatal("agg over a lost shard succeeded")
	} else if !strings.Contains(err.Error(), "partial_unavailable") {
		t.Fatalf("agg error is not the typed partial refusal: %v", err)
	}
	if _, err := cl.Count(ctx, name, client.GE(100)); err == nil {
		t.Fatal("count over a lost shard succeeded")
	} else if !strings.Contains(err.Error(), "partial_unavailable") {
		t.Fatalf("count error is not the typed partial refusal: %v", err)
	}
	if _, err := cl.Scan(ctx, name, client.GE(100)); err == nil {
		t.Fatal("scan over a lost shard succeeded")
	}
	if _, err := cl.Compressed(ctx, name); err == nil {
		t.Fatal("data export over a lost shard succeeded")
	}

	// The coordinator API surfaces the same condition as a typed error.
	if _, err := co.Agg(ctx, name, client.GE(100)); !cluster.IsPartialUnavailable(err) {
		t.Fatalf("coordinator agg error is not PartialUnavailableError: %v", err)
	}
}

// TestReplicatedFailover: with R=2, losing one backend must be
// transparent — every query keeps answering bit-identically off the
// surviving replicas.
func TestReplicatedFailover(t *testing.T) {
	ctx := context.Background()
	bs := newBackends(t, 3)
	_, cl := newCluster(t, bs.urls, 2)
	values := edgeDataset(3*vector.RowGroupSize+500, 32)
	if _, err := cl.Ingest(ctx, "c", values); err != nil {
		t.Fatal(err)
	}
	col := format.EncodeColumn(values)
	single := col.Marshal()
	rel := engine.BuildALPFromColumn("c", col)
	parts, _ := rel.FilterAggPartials(1, engine.GE(100), nil)
	want := engine.MergeAggs(parts)

	for kill := 0; kill < 2; kill++ {
		if kill == 1 {
			bs.servers[0].Close()
		}
		agg, err := cl.Agg(ctx, "c", client.GE(100))
		if err != nil {
			t.Fatalf("kill=%d: agg: %v", kill, err)
		}
		if !bitsEq(agg.Sum, want.Sum) || agg.Count != want.Count ||
			!bitsEq(agg.Min, want.Min) || !bitsEq(agg.Max, want.Max) {
			t.Fatalf("kill=%d: failover agg %+v != single-node %+v", kill, agg, want)
		}
		rows, err := cl.Scan(ctx, "c", client.GE(100))
		if err != nil {
			t.Fatalf("kill=%d: scan: %v", kill, err)
		}
		var wantRows int
		for _, v := range values {
			if engine.GE(100).Match(v) {
				wantRows++
			}
		}
		if len(rows) != wantRows {
			t.Fatalf("kill=%d: scan rows %d != %d", kill, len(rows), wantRows)
		}
		data, err := cl.Compressed(ctx, "c")
		if err != nil {
			t.Fatalf("kill=%d: data: %v", kill, err)
		}
		if string(data) != string(single) {
			t.Fatalf("kill=%d: stitched export diverged from single-node bytes", kill)
		}
	}
}

// hangProxy fronts a real backend and, once armed, holds query
// requests open until the client gives up — the slow-shard half of the
// fault battery.
type hangProxy struct {
	proxy *httputil.ReverseProxy
	armed atomic.Bool
}

func newHangProxy(t *testing.T, backend string) (*hangProxy, *httptest.Server) {
	t.Helper()
	u, err := url.Parse(backend)
	if err != nil {
		t.Fatal(err)
	}
	hp := &hangProxy{proxy: httputil.NewSingleHostReverseProxy(u)}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hp.armed.Load() && (strings.Contains(r.URL.Path, "/agg") ||
			strings.Contains(r.URL.Path, "/count") || strings.Contains(r.URL.Path, "/scan")) {
			<-r.Context().Done()
			return
		}
		hp.proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return hp, ts
}

// TestHungBackendFailsOver: a backend that accepts connections but
// never answers must not stall the cluster past the client timeout —
// replicated reads fail over, unreplicated reads degrade to the typed
// refusal.
func TestHungBackendFailsOver(t *testing.T) {
	ctx := context.Background()
	bs := newBackends(t, 3)
	hp, hung := newHangProxy(t, bs.urls[2])
	urls := []string{bs.urls[0], bs.urls[1], hung.URL}

	shortTimeout := func(o *cluster.Options) {
		o.Pool.ClientOptions = []client.Option{
			client.WithRetries(0),
			client.WithHTTPClient(&http.Client{Timeout: 500 * time.Millisecond}),
		}
	}

	for _, replicas := range []int{1, 2} {
		co, cl := newCluster(t, urls, replicas, shortTimeout)
		values := dataset(3*vector.RowGroupSize+500, 33)
		// The hung proxy must actually serve some row-groups of the
		// test column; its shards land on the real backend behind it.
		name := ingestOn(t, ctx, cl, client.New(bs.urls[2]), fmt.Sprintf("h%d", replicas), values)
		want, err := co.Agg(ctx, name, client.GE(100))
		if err != nil {
			t.Fatalf("replicas=%d: baseline agg: %v", replicas, err)
		}

		hp.armed.Store(true)
		agg, err := co.Agg(ctx, name, client.GE(100))
		if replicas == 1 {
			if !cluster.IsPartialUnavailable(err) {
				t.Fatalf("replicas=1: hung backend did not yield the typed refusal: %v", err)
			}
		} else {
			if err != nil {
				t.Fatalf("replicas=2: failover past hung backend failed: %v", err)
			}
			if !bitsEq(agg.Sum, want.Sum) || agg.Count != want.Count {
				t.Fatalf("replicas=2: failover agg %+v != baseline %+v", agg, want)
			}
		}
		hp.armed.Store(false)
		_ = cl
	}
}

// TestRebalanceMovesRowGroups drains one backend's row-groups onto
// another via the raw-export/ingest path and checks: the epoch bumps,
// answers stay bit-identical, and the drained backend is no longer
// needed at all.
func TestRebalanceMovesRowGroups(t *testing.T) {
	ctx := context.Background()
	bs := newBackends(t, 3)
	co, cl := newCluster(t, bs.urls, 1)
	values := edgeDataset(3*vector.RowGroupSize+500, 34)
	name := ingestOn(t, ctx, cl, client.New(bs.urls[0]), "r", values)
	single := format.EncodeColumn(values).Marshal()
	want, err := cl.Agg(ctx, name, client.GE(100))
	if err != nil {
		t.Fatal(err)
	}
	epoch0 := co.Map().Epoch

	// Drain backend 0 completely: move its every row-group to backend 1.
	info, err := cl.Info(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Rebalance(ctx, name, bs.urls[0], bs.urls[1], 0, info.NumRowGroups-1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch <= epoch0 || co.Map().Epoch != res.Epoch {
		t.Fatalf("rebalance did not bump the epoch: %d -> %d", epoch0, res.Epoch)
	}

	agg, err := cl.Agg(ctx, name, client.GE(100))
	if err != nil {
		t.Fatalf("agg after rebalance: %v", err)
	}
	if !bitsEq(agg.Sum, want.Sum) || agg.Count != want.Count ||
		!bitsEq(agg.Min, want.Min) || !bitsEq(agg.Max, want.Max) {
		t.Fatalf("agg changed across rebalance: %+v != %+v", agg, want)
	}
	data, err := cl.Compressed(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(single) {
		t.Fatal("export changed across rebalance")
	}

	// The drained backend holds nothing for this column anymore: kill
	// it and every query must still answer.
	bs.servers[0].Close()
	agg, err = cl.Agg(ctx, name, client.GE(100))
	if err != nil {
		t.Fatalf("agg after draining and killing backend 0: %v", err)
	}
	if !bitsEq(agg.Sum, want.Sum) || agg.Count != want.Count {
		t.Fatalf("agg after drain+kill diverged: %+v != %+v", agg, want)
	}
	if _, err := cl.Scan(ctx, name, client.GE(100)); err != nil {
		t.Fatalf("scan after drain+kill: %v", err)
	}

	// The old generation was retired from the moved-to backend's peer:
	// backend 1 must hold exactly one stored shard for "c".
	bcl := client.New(bs.urls[1])
	names, err := bcl.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	shardCount := 0
	for _, n := range names {
		if strings.HasPrefix(n, name+"@g") {
			shardCount++
		}
	}
	if shardCount != 1 {
		t.Fatalf("backend 1 holds %d generations of %s (%v), want exactly 1", shardCount, name, names)
	}
}

// TestClusterMetricsSurface sanity-checks the coordinator metrics
// endpoint: scatter counters and per-backend latency histograms show
// up after clustered traffic.
func TestClusterMetricsSurface(t *testing.T) {
	alp.EnableStats()
	ctx := context.Background()
	bs := newBackends(t, 2)
	_, cl := newCluster(t, bs.urls, 1)
	if _, err := cl.Ingest(ctx, "c", dataset(2*vector.RowGroupSize+100, 41)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Agg(ctx, "c", client.GE(100)); err != nil {
		t.Fatal(err)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["cluster_scatters"] < 1 {
		t.Fatalf("cluster_scatters = %d after a clustered agg", m["cluster_scatters"])
	}
	if m["cluster_backend_calls"] < 1 {
		t.Fatalf("cluster_backend_calls = %d after a clustered agg", m["cluster_backend_calls"])
	}
	if _, ok := m["backend0_lat_count"]; !ok {
		t.Fatal("per-backend latency histogram missing from /metrics")
	}
	if _, ok := m["lat_cluster_scatter_count"]; !ok {
		t.Fatal("cluster scatter histogram missing from /metrics")
	}
}
