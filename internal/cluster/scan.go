// Clustered scans: the coordinator re-frames backend scan streams into
// one stream in global row-group order. Both scan encodings are
// concatenable — raw little-endian float64s trivially, the ALPS
// selection-aware stream because every frame is self-contained once
// the 5-byte stream header is stripped — so the gather is pure byte
// plumbing: fetch each run of consecutive same-backend row-groups,
// drop subsequent headers, emit in order, and sum the completion
// trailers into one trailer. Values and their order are therefore
// bit-identical to a single-node scan of the same column.
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/obs"
)

// scanRun is one backend fetch of the scan plan: a maximal stretch of
// consecutive global row-groups whose chosen replica is the same
// backend. Consecutive globals on one backend have consecutive local
// indexes (assigned lists are ascending), so a run maps to a single
// ?rg_lo/?rg_hi range request.
type scanRun struct {
	b       int
	globals []int // consecutive
}

// planRuns chooses a replica for each row-group in need and coalesces
// consecutive same-backend choices into runs. It returns the
// row-groups that have no candidate left.
func (c *Coordinator) planRuns(st *colState, need []int, excluded []bool) (runs []scanRun, missing []int) {
	for _, g := range need {
		b, ok := c.choose(st, g, excluded)
		if !ok {
			missing = append(missing, g)
			continue
		}
		if n := len(runs); n > 0 && runs[n-1].b == b && runs[n-1].globals[len(runs[n-1].globals)-1] == g-1 {
			runs[n-1].globals = append(runs[n-1].globals, g)
			continue
		}
		runs = append(runs, scanRun{b: b, globals: []int{g}})
	}
	return runs, missing
}

// fetchRun fetches one run's scan payload, failing over to sub-runs on
// lower-ranked replicas when the chosen backend errors. excluded is
// shared across the whole scan under mu, so one backend's failure is
// observed by every run that would have routed to it.
func (c *Coordinator) fetchRun(ctx context.Context, st *colState, p client.Predicate, compressed bool, run scanRun, excluded []bool, mu *sync.Mutex) ([]byte, int, error) {
	o := obs.Active()
	lo := st.localIndex(run.b, run.globals[0])
	hi := lo + len(run.globals) - 1
	start := time.Now()
	var payload []byte
	var rows int
	err := c.pool.Do(ctx, run.b, func(cl *client.Client) error {
		var err error
		payload, _, rows, err = cl.ScanRange(ctx, st.storedName(run.b), p, lo, hi, compressed)
		return err
	})
	dur := time.Since(start)
	o.ClusterCall()
	o.Observe(obs.HistClusterBackend, dur.Nanoseconds())
	c.backendHists[run.b].Record(dur.Nanoseconds())
	if err == nil {
		if compressed {
			if payload, err = stripScanHeader(payload); err != nil {
				return nil, 0, fmt.Errorf("backend %s: %w", c.pool.URL(run.b), err)
			}
		}
		return payload, rows, nil
	}

	// Fail the backend over and re-plan this run's row-groups onto
	// whatever replicas remain.
	cause := fmt.Errorf("backend %s: %w", c.pool.URL(run.b), err)
	mu.Lock()
	excluded[run.b] = true
	exCopy := append([]bool(nil), excluded...)
	mu.Unlock()
	o.ClusterFailover()
	subRuns, missing := c.planRuns(st, run.globals, exCopy)
	if len(missing) > 0 {
		o.ClusterPartialUnavailable()
		return nil, 0, &PartialUnavailableError{Col: st.name, MissingRowGroups: missing, Cause: cause}
	}
	var out []byte
	total := 0
	for _, sub := range subRuns {
		part, n, err := c.fetchRun(ctx, st, p, compressed, sub, excluded, mu)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, part...)
		total += n
	}
	return out, total, nil
}

// scanHeader is the 5-byte ALPS stream header every backend response
// and the coordinator's own stream start with.
var scanHeader = format.AppendScanStreamHeader(nil)

func stripScanHeader(payload []byte) ([]byte, error) {
	if len(payload) < len(scanHeader) || !bytes.Equal(payload[:len(scanHeader)], scanHeader) {
		return nil, fmt.Errorf("scan stream missing ALPS header")
	}
	return payload[len(scanHeader):], nil
}

// Scan streams the clustered scan of name under p into w, in global
// row-group order. compressed selects the ALPS selection-aware
// encoding (the coordinator writes one stream header and splices the
// backends' frames); raw float64s concatenate as-is. Runs are fetched
// with bounded concurrency but emitted strictly in order. The returned
// emitted flag tells the caller whether any bytes hit w before an
// error — an error after first emit can only be surfaced by aborting
// the connection, never by a silently short stream.
func (c *Coordinator) Scan(ctx context.Context, name string, p client.Predicate, compressed bool, w io.Writer) (rows int, emitted bool, err error) {
	st, err := c.col(name)
	if err != nil {
		return 0, false, err
	}
	o := obs.Active()
	start := time.Now()
	excluded := make([]bool, c.pool.Len())
	var exMu sync.Mutex

	runs, missing := c.planRuns(st, allRGs(st.numRG), excluded)
	if len(missing) > 0 {
		o.ClusterPartialUnavailable()
		return 0, false, &PartialUnavailableError{Col: st.name, MissingRowGroups: missing}
	}
	fanout := map[int]bool{}
	for _, r := range runs {
		fanout[r.b] = true
	}
	o.ClusterScatter(len(fanout))

	type result struct {
		payload []byte
		rows    int
		err     error
	}
	results := make([]result, len(runs))
	done := make([]chan struct{}, len(runs))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, c.opts.ScanConcurrency)
	for i := range runs {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			defer close(done[i])
			payload, n, err := c.fetchRun(ctx, st, p, compressed, runs[i], excluded, &exMu)
			results[i] = result{payload: payload, rows: n, err: err}
		}(i)
	}

	for i := range runs {
		select {
		case <-done[i]:
		case <-ctx.Done():
			return rows, emitted, ctx.Err()
		}
		r := results[i]
		if r.err != nil {
			return rows, emitted, r.err
		}
		if !emitted && compressed {
			if _, err := w.Write(scanHeader); err != nil {
				return rows, true, err
			}
		}
		emitted = true
		if _, err := w.Write(r.payload); err != nil {
			return rows, true, err
		}
		rows += r.rows
	}
	if !emitted {
		// Zero row-groups still produce a valid (empty) stream.
		if compressed {
			if _, err := w.Write(scanHeader); err != nil {
				return rows, true, err
			}
		}
		emitted = true
	}
	obs.Active().Observe(obs.HistClusterScatter, time.Since(start).Nanoseconds())
	return rows, emitted, nil
}
