package cluster

import (
	"errors"
	"fmt"
)

// PartialUnavailableError is the typed refusal a clustered query
// degrades to when some row-groups have no answering replica: every
// replica of at least one row-group failed or sits behind an open
// breaker. The coordinator never substitutes a silent partial result —
// a query either covers every row-group or fails with this.
type PartialUnavailableError struct {
	Col              string
	MissingRowGroups []int
	Cause            error
}

func (e *PartialUnavailableError) Error() string {
	return fmt.Sprintf("partial_unavailable: column %q: %d row-group(s) have no answering replica (first missing %d): %v",
		e.Col, len(e.MissingRowGroups), e.MissingRowGroups[0], e.Cause)
}

func (e *PartialUnavailableError) Unwrap() error { return e.Cause }

// IsPartialUnavailable reports whether err is (or wraps) the typed
// partial-unavailability refusal.
func IsPartialUnavailable(err error) bool {
	var pu *PartialUnavailableError
	return errors.As(err, &pu)
}

// ErrUnknownColumn is returned for queries against a column the
// coordinator never ingested.
var ErrUnknownColumn = errors.New("unknown column")
