// The partition map: which backends own which row-groups. Placement
// is rendezvous (highest-random-weight) hashing over (column,
// row-group, backend): every coordinator computes the same ranked
// replica list from the backend set alone, no central assignment
// table, and adding or removing a backend reshuffles only the
// row-groups that hash to it. The map carries an explicit epoch and is
// read through an atomic pointer with the same replace discipline as
// the server registry — readers copy the pointer once and plan a whole
// query against one consistent map, while a rebalance publishes a
// bumped epoch for requests that follow.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Backend is one alpserved base URL in the partition map. ID is the
// stable hashing identity — it must not change when the backend moves
// to a new address, or its row-groups move with it.
type Backend struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Map is one epoch of the cluster's placement function.
type Map struct {
	Epoch    uint64    `json:"epoch"`
	Backends []Backend `json:"backends"`
	Replicas int       `json:"replicas"` // R: ranked replicas per row-group
}

// NewMap builds epoch-1 placement over the given backend URLs (the URL
// doubles as the ID) with R-way replication. replicas is clamped to
// [1, len(urls)].
func NewMap(urls []string, replicas int) *Map {
	m := &Map{Epoch: 1, Replicas: replicas}
	for _, u := range urls {
		m.Backends = append(m.Backends, Backend{ID: u, URL: u})
	}
	if m.Replicas < 1 {
		m.Replicas = 1
	}
	if m.Replicas > len(m.Backends) {
		m.Replicas = len(m.Backends)
	}
	return m
}

// Place returns the ranked replica list for one row-group of one
// column: the indexes of the top-R backends by rendezvous weight,
// highest first. The ranking is total and deterministic — weights tie
// only if FNV collides, and then the lower backend index wins — so
// every caller agrees on both membership and order, which is what
// makes "first healthy replica by rank" a deterministic tiebreak.
func (m *Map) Place(col string, rg int) []int {
	type ranked struct {
		w   uint64
		idx int
	}
	rs := make([]ranked, len(m.Backends))
	key := col + "\x00" + strconv.Itoa(rg) + "\x00"
	for i, b := range m.Backends {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte(b.ID))
		rs[i] = ranked{w: h.Sum64(), idx: i}
	}
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].w != rs[b].w {
			return rs[a].w > rs[b].w
		}
		return rs[a].idx < rs[b].idx
	})
	out := make([]int, m.Replicas)
	for i := range out {
		out[i] = rs[i].idx
	}
	return out
}
