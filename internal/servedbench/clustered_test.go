package servedbench

import (
	"testing"
	"time"

	"github.com/goalp/alp/internal/bench"
)

// A tiny end-to-end pass over the clustered-agg rig: the measurement
// itself verifies bit-identity against the in-process engine before
// timing anything, so a green run is a correctness statement, not just
// a smoke test.
func TestMeasureClusteredAgg(t *testing.T) {
	entries, err := MeasureClusteredAgg(8192, []int{1, 2}, bench.Options{MinDur: time.Millisecond})
	if err != nil {
		t.Fatalf("MeasureClusteredAgg: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	for _, e := range entries {
		if e.AggMVs <= 0 {
			t.Errorf("%d shards: non-positive throughput %v", e.Shards, e.AggMVs)
		}
		if e.Rows <= 0 {
			t.Errorf("%d shards: no rows selected", e.Shards)
		}
		if e.SpeedupOver1 <= 0 {
			t.Errorf("%d shards: speedup_over_1shard not recorded: %v", e.Shards, e.SpeedupOver1)
		}
	}
}
