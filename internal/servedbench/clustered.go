// clustered.go is the clustered-aggregate scaling rig: the same
// filtered SUM/COUNT pushdown measured through the alpcluster
// coordinator at increasing shard counts, every backend a real
// alpserved handler on its own loopback listener. The point of the
// series is the ROADMAP scaling claim — partials are merged in fixed
// row-group order, so adding shards changes wall time but never the
// bits — and the `clustered_agg` series in BENCH_core.json records
// whether this host actually realizes the parallelism (a single-core
// container cannot; see EXPERIMENTS.md).
package servedbench

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"runtime"

	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/bench"
	"github.com/goalp/alp/internal/cluster"
	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/server"
)

// MeasureClusteredAgg times the coordinator's filtered aggregate over
// an n-value column at each shard count, verifying every configuration
// bit-identical (Float64bits) against the in-process engine's merged
// partials before timing it. SpeedupOver1 on each entry is relative to
// the 1-shard point of the same run, so shards must include 1.
func MeasureClusteredAgg(n int, shards []int, opt bench.Options) ([]bench.ClusteredAggEntry, error) {
	values := column(n)
	lo, hi := 250.0, 749.995 // the middle half of column's [0, 1000) spread
	pred := client.Between(lo, hi)
	parts, _ := engine.BuildALP(values).FilterAggPartials(1, engine.Between(lo, hi), nil)
	want := engine.MergeAggs(parts)

	mvs := func(sec float64) float64 {
		if sec <= 0 {
			return 0
		}
		return float64(n) / sec / 1e6
	}
	ctx := context.Background()
	var entries []bench.ClusteredAggEntry
	base := 0.0
	for _, s := range shards {
		backends := make([]*httptest.Server, s)
		urls := make([]string, s)
		for i := range backends {
			backends[i] = httptest.NewServer(server.New(server.Options{}).Handler())
			urls[i] = backends[i].URL
		}
		co := cluster.New(urls, cluster.Options{})
		if _, err := co.Ingest(ctx, "sweep", values); err != nil {
			return nil, fmt.Errorf("clustered ingest (%d shards): %w", s, err)
		}
		got, err := co.Agg(ctx, "sweep", pred)
		if err != nil {
			return nil, fmt.Errorf("clustered agg (%d shards): %w", s, err)
		}
		if math.Float64bits(got.Sum) != math.Float64bits(want.Sum) || got.Count != want.Count {
			return nil, fmt.Errorf("clustered agg (%d shards): got {sum %v, count %d}, in-process {sum %v, count %d}",
				s, got.Sum, got.Count, want.Sum, want.Count)
		}
		runtime.GC()
		sec := bestOfSeconds(func() {
			if _, err := co.Agg(ctx, "sweep", pred); err != nil {
				panic("clustered agg: " + err.Error())
			}
		}, opt.MinDur)
		co.Close()
		for _, b := range backends {
			b.Close()
		}

		e := bench.ClusteredAggEntry{Shards: s, Rows: int(want.Count), AggMVs: mvs(sec)}
		if s == 1 {
			base = e.AggMVs
		}
		if base > 0 {
			e.SpeedupOver1 = e.AggMVs / base
		}
		entries = append(entries, e)
	}
	return entries, nil
}
