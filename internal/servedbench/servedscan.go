// Package servedbench is the served-scan selectivity sweep: the same
// filtered row retrieval measured three ways — in-process fused
// unpack+filter+gather (engine.Relation.FilterRows), served over
// loopback HTTP with the compressed selection-aware stream (the ALPS
// frame format), and served as raw little-endian float64s (the legacy
// wire) — across the selectivity range, so the cost of the network hop
// is a measured ratio per selectivity rather than one anecdote. This
// is the experiment behind the EXPERIMENTS.md served-vs-local table
// and the `served_scan` series in BENCH_core.json.
//
// It lives outside internal/bench because it must import
// internal/server (which imports the root module): the root package's
// own benchmarks import internal/bench, and routing the server through
// that package would cycle. The HTTP side speaks net/http +
// internal/format directly; the decode work per body is identical to
// client.Scan's.
package servedbench

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"text/tabwriter"
	"time"

	"github.com/goalp/alp/internal/bench"
	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/server"
)

// selectivities mirrors the differential battery's sweep.
var selectivities = []float64{0.001, 0.01, 0.10, 0.50, 0.99, 1.00}

// column is a uniform decimal spread over [0, 1000): a band
// [0, 1000*s) selects exactly fraction s of the rows, making the sweep
// points precise instead of dataset-dependent.
func column(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64((i*7919)%100000) / 100
	}
	return out
}

// get fetches one filtered scan and decodes the body into out,
// returning the row count. compressed selects the ALPS wire via
// Accept; otherwise the body is raw little-endian float64s.
func get(baseURL, query string, compressed bool, out []float64) (int, error) {
	req, err := http.NewRequest(http.MethodGet, baseURL+"/v1/columns/sweep/scan"+query, nil)
	if err != nil {
		return 0, err
	}
	if compressed {
		req.Header.Set("Accept", format.ScanContentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("scan: HTTP %d", resp.StatusCode)
	}
	if !compressed {
		if len(body)%8 != 0 {
			return 0, fmt.Errorf("raw scan body of %d bytes", len(body))
		}
		rows := len(body) / 8
		for i := 0; i < rows && i < len(out); i++ {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
		}
		return rows, nil
	}
	d, err := format.NewScanDecoder(body)
	if err != nil {
		return 0, err
	}
	for {
		vals, err := d.Next()
		if err == io.EOF {
			return d.Rows(), nil
		}
		if err != nil {
			return 0, err
		}
		if at := d.Rows() - len(vals); at >= 0 && d.Rows() <= len(out) {
			copy(out[at:], vals)
		}
	}
}

// bestOfSeconds is the best (lowest mean seconds per call) of five
// measurement windows of minDur/2 each.
func bestOfSeconds(fn func(), minDur time.Duration) float64 {
	window := minDur / 2
	if window < 25*time.Millisecond {
		window = 25 * time.Millisecond
	}
	best := math.Inf(1)
	for i := 0; i < 5; i++ {
		if sec := bench.MeasureSeconds(fn, window); sec < best {
			best = sec
		}
	}
	return best
}

// Measure runs the sweep on an n-value column and returns one entry
// per selectivity. The server and the requester share the process over
// a loopback httptest listener — the same rig as the internal/server
// benchmarks — so the measured delta is serialization + HTTP, not a
// real network.
func Measure(n int, opt bench.Options) ([]bench.ServedScanEntry, error) {
	values := column(n)
	rel := engine.BuildALP(values)

	srv := server.New(server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := make([]byte, 8*len(values))
	for i, v := range values {
		binary.LittleEndian.PutUint64(body[i*8:], math.Float64bits(v))
	}
	resp, err := http.Post(ts.URL+"/v1/columns/sweep", "application/x-alp-f64le", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("served-scan ingest: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return nil, fmt.Errorf("served-scan ingest: HTTP %d", resp.StatusCode)
	}

	mvs := func(sec float64) float64 {
		if sec <= 0 {
			return 0
		}
		return float64(n) / sec / 1e6
	}
	decoded := make([]float64, n)
	var entries []bench.ServedScanEntry
	for _, s := range selectivities {
		lo, hi := 0.0, 1000*s-0.005
		query := fmt.Sprintf("?lo=%g&hi=%g", lo, hi)
		pred := engine.Between(lo, hi)
		if s >= 1 {
			query = "" // no predicate params: full scan
			pred = engine.Between(math.Inf(-1), math.Inf(1))
		}
		rows := len(rel.FilterRows(pred))
		timedGet := func(compressed bool) func() {
			return func() {
				got, err := get(ts.URL, query, compressed, decoded)
				if err != nil {
					panic("served scan: " + err.Error())
				}
				if got != rows {
					panic(fmt.Sprintf("served scan returned %d rows, in-process %d", got, rows))
				}
			}
		}
		// Best of 5 windows per mode (the same discipline as the
		// EXPERIMENTS.md obs-overhead table), with a collection between
		// modes: a single 200ms TCP retransmission stall on a contended
		// loopback — or FilterRows garbage draining during the next
		// window — would otherwise wreck one mode's mean while leaving
		// its neighbors clean.
		runtime.GC()
		inprocSec := bestOfSeconds(func() { rel.FilterRows(pred) }, opt.MinDur)
		runtime.GC()
		servedSec := bestOfSeconds(timedGet(true), opt.MinDur)
		runtime.GC()
		rawSec := bestOfSeconds(timedGet(false), opt.MinDur)
		e := bench.ServedScanEntry{
			Selectivity: s,
			Rows:        rows,
			InprocMVs:   mvs(inprocSec),
			ServedMVs:   mvs(servedSec),
			RawMVs:      mvs(rawSec),
		}
		if e.ServedMVs > 0 {
			e.LocalOverServed = e.InprocMVs / e.ServedMVs
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Run prints the sweep as the EXPERIMENTS.md table.
func Run(w io.Writer, opt bench.Options, scale int) {
	fmt.Fprintf(w, "Served vs in-process filtered scan, %d values, loopback HTTP (MV/s = column values scanned per second)\n", scale)
	entries, err := Measure(scale, opt)
	if err != nil {
		fmt.Fprintln(w, "servedscan:", err)
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "selectivity\trows\tin-process\tserved (ALPS)\tserved (raw f64)\tlocal/served")
	for _, e := range entries {
		fmt.Fprintf(tw, "%.1f%%\t%d\t%.1f MV/s\t%.1f MV/s\t%.1f MV/s\t%.2fx\n",
			100*e.Selectivity, e.Rows, e.InprocMVs, e.ServedMVs, e.RawMVs, e.LocalOverServed)
	}
	tw.Flush()
}
