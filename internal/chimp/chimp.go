// Package chimp implements Chimp and Chimp128 (Liakos et al., VLDB'22),
// the XOR-family baselines that refine Gorilla with four per-value
// encoding modes and (for Chimp128) a reference value chosen among the
// previous 128 values.
//
// Per value, with xor = v ^ ref:
//
//	flag 00  xor == 0 (Chimp128 additionally stores the 7-bit ref index)
//	flag 01  trailing zeros > threshold: 3-bit rounded leading-zero code,
//	         6-bit significant-bit count, and the center bits
//	flag 10  same rounded leading-zero count as the previous value:
//	         64-lead bits of the xor
//	flag 11  new leading-zero count: 3-bit code plus 64-lead bits
//
// The four data-dependent modes per value are exactly the control flow
// whose branch mispredictions ALP's per-vector adaptivity avoids (§1).
package chimp

import (
	"math"
	"math/bits"

	"github.com/goalp/alp/internal/bitstream"
)

// leadingRound rounds a leading-zero count down to one of the eight
// representable values.
var leadingRound = [65]uint{}

// leadingRepr maps a rounded leading-zero count to its 3-bit code.
var leadingRepr = [65]uint64{}

// reprToLeading maps the 3-bit code back to the leading-zero count.
var reprToLeading = [8]uint{0, 8, 12, 16, 18, 20, 22, 24}

func init() {
	for lz := 0; lz <= 64; lz++ {
		r := 0
		for i, v := range reprToLeading {
			if uint(lz) >= v {
				r = i
			}
		}
		leadingRound[lz] = reprToLeading[r]
		leadingRepr[lz] = uint64(r)
	}
}

const chimpThreshold = 6

// Compress encodes src with plain Chimp (previous value as reference).
func Compress(src []float64) []byte {
	w := bitstream.NewWriter(len(src) * 8)
	if len(src) == 0 {
		return w.Bytes()
	}
	prev := math.Float64bits(src[0])
	w.WriteBits(prev, 64)
	storedLead := uint(65) // invalid
	for _, v := range src[1:] {
		cur := math.Float64bits(v)
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.WriteBits(0, 2) // flag 00
			storedLead = 65
			continue
		}
		lead := leadingRound[bits.LeadingZeros64(xor)]
		trail := uint(bits.TrailingZeros64(xor))
		switch {
		case trail > chimpThreshold:
			sig := 64 - lead - trail
			w.WriteBits(1, 2) // flag 01
			w.WriteBits(leadingRepr[lead], 3)
			w.WriteBits(uint64(sig), 6)
			w.WriteBits(xor>>trail, sig)
			storedLead = 65
		case lead == storedLead:
			w.WriteBits(2, 2) // flag 10
			w.WriteBits(xor, 64-lead)
		default:
			storedLead = lead
			w.WriteBits(3, 2) // flag 11
			w.WriteBits(leadingRepr[lead], 3)
			w.WriteBits(xor, 64-lead)
		}
	}
	return w.Bytes()
}

// Decompress decodes len(dst) values from a Chimp stream.
func Decompress(dst []float64, data []byte) error {
	if len(dst) == 0 {
		return nil
	}
	r := bitstream.NewReader(data)
	prev := r.ReadBits(64)
	dst[0] = math.Float64frombits(prev)
	var lead uint
	for i := 1; i < len(dst); i++ {
		switch r.ReadBits(2) {
		case 0:
			// value repeats
		case 1:
			lead = reprToLeading[r.ReadBits(3)]
			sig := uint(r.ReadBits(6))
			trail := 64 - lead - sig
			prev ^= r.ReadBits(sig) << trail
		case 2:
			prev ^= r.ReadBits(64 - lead)
		default:
			lead = reprToLeading[r.ReadBits(3)]
			prev ^= r.ReadBits(64 - lead)
		}
		dst[i] = math.Float64frombits(prev)
	}
	return r.Err()
}
