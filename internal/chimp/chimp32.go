package chimp

import (
	"math"
	"math/bits"

	"github.com/goalp/alp/internal/bitstream"
)

// 32-bit variants of Chimp and Chimp128 (used in the paper's Table 7
// comparison on ML weights). The structure is identical, with the
// leading-zero table and field widths scaled to 32-bit patterns.

var reprToLeading32 = [8]uint{0, 4, 6, 8, 10, 12, 16, 20}

var (
	leadingRound32 [33]uint
	leadingRepr32  [33]uint64
)

func init() {
	for lz := 0; lz <= 32; lz++ {
		r := 0
		for i, v := range reprToLeading32 {
			if uint(lz) >= v {
				r = i
			}
		}
		leadingRound32[lz] = reprToLeading32[r]
		leadingRepr32[lz] = uint64(r)
	}
}

// Compress32 encodes float32 values with plain Chimp.
func Compress32(src []float32) []byte {
	w := bitstream.NewWriter(len(src) * 4)
	if len(src) == 0 {
		return w.Bytes()
	}
	prev := math.Float32bits(src[0])
	w.WriteBits(uint64(prev), 32)
	storedLead := uint(33)
	for _, v := range src[1:] {
		cur := math.Float32bits(v)
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.WriteBits(0, 2)
			storedLead = 33
			continue
		}
		lead := leadingRound32[bits.LeadingZeros32(xor)]
		trail := uint(bits.TrailingZeros32(xor))
		switch {
		case trail > chimpThreshold:
			sig := 32 - lead - trail
			w.WriteBits(1, 2)
			w.WriteBits(leadingRepr32[lead], 3)
			w.WriteBits(uint64(sig), 5)
			w.WriteBits(uint64(xor>>trail), sig)
			storedLead = 33
		case lead == storedLead:
			w.WriteBits(2, 2)
			w.WriteBits(uint64(xor), 32-lead)
		default:
			storedLead = lead
			w.WriteBits(3, 2)
			w.WriteBits(leadingRepr32[lead], 3)
			w.WriteBits(uint64(xor), 32-lead)
		}
	}
	return w.Bytes()
}

// Decompress32 decodes len(dst) float32 values from a Chimp stream.
func Decompress32(dst []float32, data []byte) error {
	if len(dst) == 0 {
		return nil
	}
	r := bitstream.NewReader(data)
	prev := uint32(r.ReadBits(32))
	dst[0] = math.Float32frombits(prev)
	var lead uint
	for i := 1; i < len(dst); i++ {
		switch r.ReadBits(2) {
		case 0:
		case 1:
			lead = reprToLeading32[r.ReadBits(3)]
			sig := uint(r.ReadBits(5))
			trail := 32 - lead - sig
			prev ^= uint32(r.ReadBits(sig)) << trail
		case 2:
			prev ^= uint32(r.ReadBits(32 - lead))
		default:
			lead = reprToLeading32[r.ReadBits(3)]
			prev ^= uint32(r.ReadBits(32 - lead))
		}
		dst[i] = math.Float32frombits(prev)
	}
	return r.Err()
}

const threshold32 = chimpThreshold + nPrevLog2

// CompressN32 encodes float32 values with Chimp128.
func CompressN32(src []float32) []byte {
	w := bitstream.NewWriter(len(src) * 4)
	if len(src) == 0 {
		return w.Bytes()
	}
	var stored [nPrev]uint32
	indices := make([]int, lsbMask+1)
	for i := range indices {
		indices[i] = -(nPrev + 1)
	}
	first := math.Float32bits(src[0])
	w.WriteBits(uint64(first), 32)
	stored[0] = first
	indices[uint64(first)&lsbMask] = 0
	storedLead := uint(33)

	for idx := 1; idx < len(src); idx++ {
		cur := math.Float32bits(src[idx])
		key := uint64(cur) & lsbMask
		var xor uint32
		var refIdx int
		var trail uint
		cand := indices[key]
		if idx-cand < nPrev && cand >= 0 {
			tempXor := cur ^ stored[cand%nPrev]
			trail = uint(bits.TrailingZeros32(tempXor))
			if trail > threshold32 {
				refIdx = cand % nPrev
				xor = tempXor
			} else {
				refIdx = (idx - 1) % nPrev
				xor = stored[refIdx] ^ cur
				trail = uint(bits.TrailingZeros32(xor))
			}
		} else {
			refIdx = (idx - 1) % nPrev
			xor = stored[refIdx] ^ cur
			trail = uint(bits.TrailingZeros32(xor))
		}

		if xor == 0 {
			w.WriteBits(uint64(refIdx), 2+nPrevLog2)
			storedLead = 33
		} else {
			lead := leadingRound32[bits.LeadingZeros32(xor)]
			switch {
			case trail > threshold32:
				sig := 32 - lead - trail
				w.WriteBits(1<<(nPrevLog2+8)|uint64(refIdx)<<8|leadingRepr32[lead]<<5|uint64(sig), 2+nPrevLog2+8)
				w.WriteBits(uint64(xor>>trail), sig)
				storedLead = 33
			case lead == storedLead:
				w.WriteBits(2, 2)
				w.WriteBits(uint64(xor), 32-lead)
			default:
				storedLead = lead
				w.WriteBits(3, 2)
				w.WriteBits(leadingRepr32[lead], 3)
				w.WriteBits(uint64(xor), 32-lead)
			}
		}
		stored[idx%nPrev] = cur
		indices[key] = idx
	}
	return w.Bytes()
}

// DecompressN32 decodes len(dst) float32 values from a Chimp128 stream.
func DecompressN32(dst []float32, data []byte) error {
	if len(dst) == 0 {
		return nil
	}
	r := bitstream.NewReader(data)
	var stored [nPrev]uint32
	first := uint32(r.ReadBits(32))
	dst[0] = math.Float32frombits(first)
	stored[0] = first
	var lead uint
	for i := 1; i < len(dst); i++ {
		var cur uint32
		switch r.ReadBits(2) {
		case 0:
			cur = stored[r.ReadBits(nPrevLog2)]
		case 1:
			refIdx := r.ReadBits(nPrevLog2)
			lead = reprToLeading32[r.ReadBits(3)]
			sig := uint(r.ReadBits(5))
			trail := 32 - lead - sig
			cur = stored[refIdx] ^ uint32(r.ReadBits(sig))<<trail
		case 2:
			cur = stored[(i-1)%nPrev] ^ uint32(r.ReadBits(32-lead))
		default:
			lead = reprToLeading32[r.ReadBits(3)]
			cur = stored[(i-1)%nPrev] ^ uint32(r.ReadBits(32-lead))
		}
		dst[i] = math.Float32frombits(cur)
		stored[i%nPrev] = cur
	}
	return r.Err()
}
