package chimp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func checkRT(t *testing.T, src []float64, comp func([]float64) []byte, decomp func([]float64, []byte) error) []byte {
	t.Helper()
	data := comp(src)
	got := make([]float64, len(src))
	if err := decomp(got, data); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d: got %v (%#x), want %v (%#x)",
				i, got[i], math.Float64bits(got[i]), src[i], math.Float64bits(src[i]))
		}
	}
	return data
}

func specials() []float64 {
	return []float64{
		0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, math.SmallestNonzeroFloat64, -math.Pi, 1.5, 1.5,
	}
}

func TestLeadingTables(t *testing.T) {
	if leadingRound[0] != 0 || leadingRound[9] != 8 || leadingRound[64] != 24 {
		t.Fatalf("leadingRound wrong: %d %d %d", leadingRound[0], leadingRound[9], leadingRound[64])
	}
	for lz := 0; lz <= 64; lz++ {
		if reprToLeading[leadingRepr[lz]] != leadingRound[lz] {
			t.Fatalf("repr tables inconsistent at %d", lz)
		}
	}
}

func TestChimpRoundTrip(t *testing.T) {
	checkRT(t, []float64{1.0, 1.0, 1.5, 2.5, 100.25, -3.75}, Compress, Decompress)
	checkRT(t, nil, Compress, Decompress)
	checkRT(t, []float64{42.5}, Compress, Decompress)
	checkRT(t, specials(), Compress, Decompress)
}

func TestChimp128RoundTrip(t *testing.T) {
	checkRT(t, []float64{1.0, 1.0, 1.5, 2.5, 100.25, -3.75}, CompressN, DecompressN)
	checkRT(t, nil, CompressN, DecompressN)
	checkRT(t, []float64{42.5}, CompressN, DecompressN)
	checkRT(t, specials(), CompressN, DecompressN)
}

func TestChimp128FindsDistantReferences(t *testing.T) {
	// A periodic series repeating every 50 values: Chimp128 should find
	// the exact match 50 positions back and beat plain Chimp clearly.
	// Full-entropy mantissas keep the low-bits hash discriminating.
	r := rand.New(rand.NewSource(7))
	period := make([]float64, 50)
	for i := range period {
		period[i] = 100 + r.Float64()
	}
	src := make([]float64, 4096)
	for i := range src {
		src[i] = period[i%50]
	}
	dataN := checkRT(t, src, CompressN, DecompressN)
	data1 := checkRT(t, src, Compress, Decompress)
	if len(dataN) >= len(data1) {
		t.Fatalf("Chimp128 (%d bytes) should beat Chimp (%d bytes) on periodic data", len(dataN), len(data1))
	}
	bits := float64(len(dataN)*8) / float64(len(src))
	if bits > 16 {
		t.Fatalf("Chimp128 got %.1f bits/value on periodic data, want far below raw", bits)
	}
}

func TestChimpCompressesSimilarValues(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	src := make([]float64, 4096)
	v := 50.0
	for i := range src {
		v += math.Round(r.NormFloat64()*5) / 10
		src[i] = v
	}
	data := checkRT(t, src, Compress, Decompress)
	bits := float64(len(data)*8) / float64(len(src))
	if bits >= 64 {
		t.Fatalf("no compression: %.1f bits/value", bits)
	}
}

func TestQuickChimp(t *testing.T) {
	f := func(raw []uint64) bool {
		src := make([]float64, len(raw))
		for i, b := range raw {
			src[i] = math.Float64frombits(b)
		}
		data := Compress(src)
		got := make([]float64, len(src))
		if err := Decompress(got, data); err != nil {
			return false
		}
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChimp128(t *testing.T) {
	f := func(raw []uint64, dups []uint16) bool {
		// Mix arbitrary values with duplicates of earlier values so the
		// reference-index paths are exercised.
		src := make([]float64, 0, len(raw)+len(dups))
		for _, b := range raw {
			src = append(src, math.Float64frombits(b))
		}
		for _, d := range dups {
			if len(src) == 0 {
				break
			}
			src = append(src, src[int(d)%len(src)])
		}
		data := CompressN(src)
		got := make([]float64, len(src))
		if err := DecompressN(got, data); err != nil {
			return false
		}
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChimp32(t *testing.T) {
	f := func(raw []uint32) bool {
		src := make([]float32, len(raw))
		for i, b := range raw {
			src[i] = math.Float32frombits(b)
		}
		data := Compress32(src)
		got := make([]float32, len(src))
		if err := Decompress32(got, data); err != nil {
			return false
		}
		for i := range src {
			if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChimp128_32(t *testing.T) {
	f := func(raw []uint32, dups []uint16) bool {
		src := make([]float32, 0, len(raw)+len(dups))
		for _, b := range raw {
			src = append(src, math.Float32frombits(b))
		}
		for _, d := range dups {
			if len(src) == 0 {
				break
			}
			src = append(src, src[int(d)%len(src)])
		}
		data := CompressN32(src)
		got := make([]float32, len(src))
		if err := DecompressN32(got, data); err != nil {
			return false
		}
		for i := range src {
			if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
