package chimp

import (
	"math"
	"math/bits"

	"github.com/goalp/alp/internal/bitstream"
)

// Chimp128 parameters: a ring of the 128 previous values, indexed by a
// hash of the low bits. The threshold grows by log2(128) so a reference
// is only taken when the trailing zeros repay the 7-bit index.
const (
	nPrev     = 128
	nPrevLog2 = 7
	threshold = chimpThreshold + nPrevLog2
	lsbMask   = 1<<(threshold+1) - 1
)

// CompressN encodes src with Chimp128: each value is XORed against the
// most recent of the previous 128 values sharing its low bits, when
// that produces more than `threshold` trailing zeros, else against the
// immediate predecessor.
func CompressN(src []float64) []byte {
	w := bitstream.NewWriter(len(src) * 8)
	if len(src) == 0 {
		return w.Bytes()
	}
	var stored [nPrev]uint64
	indices := make([]int, lsbMask+1)
	for i := range indices {
		indices[i] = -(nPrev + 1)
	}
	first := math.Float64bits(src[0])
	w.WriteBits(first, 64)
	stored[0] = first
	indices[first&lsbMask] = 0
	storedLead := uint(65)

	for idx := 1; idx < len(src); idx++ {
		cur := math.Float64bits(src[idx])
		key := cur & lsbMask
		var xor uint64
		var refIdx int
		var trail uint
		cand := indices[key]
		if idx-cand < nPrev && cand >= 0 {
			tempXor := cur ^ stored[cand%nPrev]
			trail = uint(bits.TrailingZeros64(tempXor))
			if trail > threshold {
				refIdx = cand % nPrev
				xor = tempXor
			} else {
				refIdx = (idx - 1) % nPrev
				xor = stored[refIdx] ^ cur
				trail = uint(bits.TrailingZeros64(xor))
			}
		} else {
			refIdx = (idx - 1) % nPrev
			xor = stored[refIdx] ^ cur
			trail = uint(bits.TrailingZeros64(xor))
		}

		if xor == 0 {
			// flag 00 + 7-bit reference index.
			w.WriteBits(uint64(refIdx), 2+nPrevLog2)
			storedLead = 65
		} else {
			lead := leadingRound[bits.LeadingZeros64(xor)]
			switch {
			case trail > threshold:
				sig := 64 - lead - trail
				// flag 01 + 7-bit index + 3-bit lead code + 6-bit count.
				w.WriteBits(1<<(nPrevLog2+9)|uint64(refIdx)<<9|leadingRepr[lead]<<6|uint64(sig), 2+nPrevLog2+9)
				w.WriteBits(xor>>trail, sig)
				storedLead = 65
			case lead == storedLead:
				w.WriteBits(2, 2) // flag 10
				w.WriteBits(xor, 64-lead)
			default:
				storedLead = lead
				w.WriteBits(3, 2) // flag 11
				w.WriteBits(leadingRepr[lead], 3)
				w.WriteBits(xor, 64-lead)
			}
		}
		stored[idx%nPrev] = cur
		indices[key] = idx
	}
	return w.Bytes()
}

// DecompressN decodes len(dst) values from a Chimp128 stream.
func DecompressN(dst []float64, data []byte) error {
	if len(dst) == 0 {
		return nil
	}
	r := bitstream.NewReader(data)
	var stored [nPrev]uint64
	first := r.ReadBits(64)
	dst[0] = math.Float64frombits(first)
	stored[0] = first
	var lead uint
	for i := 1; i < len(dst); i++ {
		var cur uint64
		switch r.ReadBits(2) {
		case 0:
			cur = stored[r.ReadBits(nPrevLog2)]
		case 1:
			refIdx := r.ReadBits(nPrevLog2)
			lead = reprToLeading[r.ReadBits(3)]
			sig := uint(r.ReadBits(6))
			trail := 64 - lead - sig
			cur = stored[refIdx] ^ r.ReadBits(sig)<<trail
		case 2:
			cur = stored[(i-1)%nPrev] ^ r.ReadBits(64-lead)
		default:
			lead = reprToLeading[r.ReadBits(3)]
			cur = stored[(i-1)%nPrev] ^ r.ReadBits(64-lead)
		}
		dst[i] = math.Float64frombits(cur)
		stored[i%nPrev] = cur
	}
	return r.Err()
}
