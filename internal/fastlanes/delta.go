package fastlanes

import "github.com/goalp/alp/internal/bitpack"

// Delta is a delta + zig-zag + bit-packing encoding of an int64 vector:
// consecutive differences are zig-zag mapped to unsigned integers and
// bit-packed. It is the encoding of choice for (near-)sorted integer
// streams, such as RLE run values or dictionary codes of sorted
// dictionaries, and is one of the cascade options of Table 4.
type Delta struct {
	First int64
	Width uint
	N     int
	Words []uint64
}

// zigzag maps signed integers to unsigned so small negative deltas stay
// small: 0,-1,1,-2,2... -> 0,1,2,3,4...
func zigzag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

// unzigzag reverses zigzag.
func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// EncodeDelta encodes src with Delta. The input is not modified.
func EncodeDelta(src []int64) Delta {
	if len(src) == 0 {
		return Delta{}
	}
	zz := make([]uint64, len(src)-1)
	var maxZZ uint64
	prev := src[0]
	for i, v := range src[1:] {
		z := zigzag(v - prev)
		zz[i] = z
		if z > maxZZ {
			maxZZ = z
		}
		prev = v
	}
	w := bitpack.Width(maxZZ)
	d := Delta{
		First: src[0],
		Width: w,
		N:     len(src),
		Words: make([]uint64, bitpack.WordCount(len(zz), w)),
	}
	bitpack.Pack(d.Words, zz, w, 0)
	return d
}

// Decode decompresses the vector into dst, which must have length d.N.
func (d *Delta) Decode(dst []int64) {
	if d.N == 0 {
		return
	}
	zz := make([]uint64, d.N-1)
	bitpack.Unpack(zz, d.Words, d.Width, 0)
	v := d.First
	dst[0] = v
	for i, z := range zz {
		v += unzigzag(z)
		dst[i+1] = v
	}
}

// SizeBits returns the exact compressed payload size in bits.
func (d *Delta) SizeBits() int {
	if d.N == 0 {
		return 0
	}
	return (d.N-1)*int(d.Width) + 64 + 8
}
