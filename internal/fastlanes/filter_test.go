package fastlanes

import (
	"math/rand"
	"testing"
)

// filterOracle computes the expected selection bitmap and count with a
// plain loop over the original values.
func filterOracle(src []int64, dlo, dhi int64) ([]uint64, int) {
	sel := make([]uint64, SelWords(len(src)))
	count := 0
	for i, v := range src {
		if v >= dlo && v <= dhi {
			sel[i>>6] |= 1 << uint(i&63)
			count++
		}
	}
	return sel, count
}

func checkFilter(t *testing.T, src []int64, dlo, dhi int64) {
	t.Helper()
	f := EncodeFFOR(src)
	sel := make([]uint64, SelWords(len(src)))
	// Pre-poison sel to catch missing clears.
	for i := range sel {
		sel[i] = ^uint64(0)
	}
	scratch := make([]int64, len(src))
	got := f.FilterRange(dlo, dhi, sel, scratch)
	wantSel, want := filterOracle(src, dlo, dhi)
	if got != want {
		t.Fatalf("FilterRange(%d, %d) count = %d, want %d", dlo, dhi, got, want)
	}
	for i := range wantSel {
		if sel[i] != wantSel[i] {
			t.Fatalf("FilterRange(%d, %d) sel[%d] = %016x, want %016x", dlo, dhi, i, sel[i], wantSel[i])
		}
	}
}

func TestFilterRangeAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	lengths := []int{0, 1, 7, 63, 64, 65, 127, 128, 1000, 1024}
	for _, n := range lengths {
		for trial := 0; trial < 20; trial++ {
			base := r.Int63n(1<<40) - 1<<39
			width := r.Intn(20)
			src := make([]int64, n)
			for i := range src {
				src[i] = base + r.Int63n(1<<uint(width)+1)
			}
			var dlo, dhi int64
			switch trial % 4 {
			case 0: // band inside the value range
				dlo = base + r.Int63n(1<<uint(width)+1)
				dhi = dlo + r.Int63n(1<<uint(width)+1)
			case 1: // everything
				dlo, dhi = base-10, base+1<<uint(width)+10
			case 2: // nothing (below)
				dlo, dhi = base-100, base-1
			case 3: // nothing (above)
				dlo, dhi = base+1<<uint(width)+1, base+1<<uint(width)+100
			}
			checkFilter(t, src, dlo, dhi)
		}
	}
}

func TestFilterRangeEdges(t *testing.T) {
	src := []int64{-5, -1, 0, 1, 5, 5, 5, 1 << 20}
	cases := [][2]int64{
		{-5, 1 << 20},        // whole range, bounds exactly on min/max
		{-5, -5},             // point match on the base
		{1 << 20, 1 << 20},   // point match on the max
		{5, 5},               // duplicated value
		{6, 1<<20 - 1},       // gap between values
		{10, 5},              // inverted bounds: empty
		{-1 << 60, 1 << 60},  // bounds far outside the packed range
		{-1 << 60, -6},       // entirely below
		{1<<20 + 1, 1 << 60}, // entirely above
		{0, 0},               // zero point
		{-4611686018427387904, 4611686018427387903}, // ±2^62: no int64 overflow in the shift
	}
	for _, c := range cases {
		checkFilter(t, src, c[0], c[1])
	}
}

func TestFilterRangeConstantVector(t *testing.T) {
	// Width-0 FFOR: every value equals the base; the kernel must decide
	// from the bounds alone.
	src := make([]int64, 200)
	for i := range src {
		src[i] = 42
	}
	checkFilter(t, src, 42, 42)
	checkFilter(t, src, 0, 41)
	checkFilter(t, src, 43, 100)
	checkFilter(t, src, 0, 100)
}

func TestFilterRangeScratchHoldsPacked(t *testing.T) {
	// The documented invariant: after a match, scratch[i] + Base
	// reconstructs the selected value.
	src := []int64{100, 200, 300, 400}
	f := EncodeFFOR(src)
	sel := make([]uint64, 1)
	scratch := make([]int64, len(src))
	n := f.FilterRange(150, 350, sel, scratch)
	if n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
	for i, v := range src {
		if sel[0]&(1<<uint(i)) != 0 {
			if got := scratch[i] + f.Base; got != v {
				t.Fatalf("scratch[%d]+Base = %d, want %d", i, got, v)
			}
		}
	}
}
