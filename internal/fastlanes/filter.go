package fastlanes

import (
	"math/bits"
	"time"

	"github.com/goalp/alp/internal/bitpack"
	"github.com/goalp/alp/internal/obs"
)

// SelWords returns the number of uint64 words a selection bitmap needs
// for n values (one bit per value).
func SelWords(n int) int { return (n + 63) / 64 }

// FilterRange is the fused unpack+compare scan kernel: it evaluates
// dlo <= d <= dhi over every encoded value d of the vector and writes a
// selection bitmap into sel (bit i set when value i qualifies),
// returning the number of matches.
//
// The kernel never reconstructs d itself: the bounds are shifted into
// the packed domain once (p = d - Base, so d ∈ [dlo, dhi] ⟺
// p ∈ [dlo-Base, dhi-Base]) and each packed value is range-checked with
// a single unsigned compare — no base addition, no float conversion,
// no data-dependent branches. Vectors whose packed range cannot
// intersect the predicate are rejected from the bounds alone, without
// touching the payload words.
//
// scratch must hold at least f.N int64s; it is used as the unpacking
// buffer and holds the raw packed values (without base) on return, so
// a caller can later materialize selected rows as scratch[i] + Base.
// (When the bounds reject the whole vector the payload is never
// unpacked and scratch is left untouched — but then no bit is set, so
// there is no selected row to materialize.)
// sel must hold at least SelWords(f.N) words; all of them are
// overwritten. The caller must guarantee dhi - Base and dlo - Base do
// not overflow int64 — always true for ALP-encoded integers, which are
// confined to ±2^51.
func (f *FFOR) FilterRange(dlo, dhi int64, sel []uint64, scratch []int64) int {
	// Stage timing: the fused filter is the pushdown hot path, so the
	// collector samples one call in a few rather than bracketing every
	// ~µs kernel with clock reads; disabled, the cost is a predicted
	// branch.
	if o := obs.Active(); o != nil && o.SampleStage(obs.HistStageFilter) {
		start := time.Now()
		count := f.filterRange(dlo, dhi, sel, scratch)
		o.Observe(obs.HistStageFilter, time.Since(start).Nanoseconds())
		return count
	}
	return f.filterRange(dlo, dhi, sel, scratch)
}

func (f *FFOR) filterRange(dlo, dhi int64, sel []uint64, scratch []int64) int {
	n := f.N
	nw := SelWords(n)
	for i := 0; i < nw; i++ {
		sel[i] = 0
	}
	if n == 0 || dlo > dhi {
		return 0
	}

	lo := dlo - f.Base
	hi := dhi - f.Base
	if hi < 0 {
		return 0
	}
	var maxP uint64 = ^uint64(0)
	if f.Width < 64 {
		maxP = (uint64(1) << f.Width) - 1
		if lo > int64(maxP) {
			return 0
		}
	}
	var ulo uint64
	if lo > 0 {
		ulo = uint64(lo)
	}
	uhi := uint64(hi)
	if uhi > maxP {
		uhi = maxP
	}
	span := uhi - ulo

	u := asUint64(scratch[:n])
	bitpack.Unpack(u, f.Words, f.Width, 0)

	count := 0
	for i := 0; i < n; i += 64 {
		end := i + 64
		if end > n {
			end = n
		}
		var word uint64
		for j := i; j < end; j++ {
			var b uint64
			if u[j]-ulo <= span {
				b = 1
			}
			word |= b << uint(j-i)
		}
		sel[i>>6] = word
		count += bits.OnesCount64(word)
	}
	return count
}
