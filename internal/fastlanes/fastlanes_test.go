package fastlanes

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTripFFOR(t *testing.T, src []int64) {
	t.Helper()
	f := EncodeFFOR(src)
	got := make([]int64, len(src))
	f.Decode(got)
	if !reflect.DeepEqual(got, src) {
		t.Fatalf("FFOR round trip mismatch:\n got %v\nwant %v", got, src)
	}
	f.DecodeUnfused(got)
	if !reflect.DeepEqual(got, src) {
		t.Fatalf("FFOR unfused round trip mismatch")
	}
	f.DecodeGeneric(got)
	if !reflect.DeepEqual(got, src) {
		t.Fatalf("FFOR generic round trip mismatch")
	}
}

func TestFFORBasic(t *testing.T) {
	roundTripFFOR(t, []int64{100, 101, 105, 100, 120, 99})
	roundTripFFOR(t, []int64{-5, -3, 0, 7, -5})
	roundTripFFOR(t, []int64{42})
	roundTripFFOR(t, []int64{7, 7, 7, 7}) // width 0
}

func TestFFORExtremes(t *testing.T) {
	roundTripFFOR(t, []int64{math.MinInt64, math.MaxInt64, 0, -1, 1})
	roundTripFFOR(t, []int64{math.MaxInt64, math.MaxInt64 - 1})
	roundTripFFOR(t, []int64{math.MinInt64, math.MinInt64})
}

func TestFFORWidth(t *testing.T) {
	// Values in a tight range should pack to few bits regardless of
	// their absolute magnitude.
	src := make([]int64, 1024)
	for i := range src {
		src[i] = 1_000_000_000_000 + int64(i%16)
	}
	f := EncodeFFOR(src)
	if f.Width != 4 {
		t.Fatalf("width = %d, want 4", f.Width)
	}
	if got := f.SizeBits(); got != 1024*4+72 {
		t.Fatalf("SizeBits = %d, want %d", got, 1024*4+72)
	}
}

func TestFFOREmpty(t *testing.T) {
	f := EncodeFFOR(nil)
	if f.N != 0 || f.SizeBits() != 72 {
		// An empty FFOR still carries its header; callers never emit it.
		t.Logf("empty FFOR: N=%d size=%d", f.N, f.SizeBits())
	}
	f.Decode(nil) // must not panic
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, -1, 1, -2, 2, math.MaxInt64, math.MinInt64, 12345, -98765} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
	// Small magnitudes must map to small codes.
	if zigzag(0) != 0 || zigzag(-1) != 1 || zigzag(1) != 2 || zigzag(-2) != 3 {
		t.Errorf("zigzag order wrong: %d %d %d %d", zigzag(0), zigzag(-1), zigzag(1), zigzag(-2))
	}
}

func TestDeltaBasic(t *testing.T) {
	src := []int64{1000, 1001, 1003, 1002, 1010, 990}
	d := EncodeDelta(src)
	got := make([]int64, len(src))
	d.Decode(got)
	if !reflect.DeepEqual(got, src) {
		t.Fatalf("Delta round trip mismatch: got %v want %v", got, src)
	}
}

func TestDeltaSorted(t *testing.T) {
	// A strictly increasing sequence with step 1 needs 1 bit per delta
	// after zig-zag (code 2) -> width 2.
	src := make([]int64, 1024)
	for i := range src {
		src[i] = int64(i) + 5000
	}
	d := EncodeDelta(src)
	if d.Width != 2 {
		t.Fatalf("width = %d, want 2", d.Width)
	}
	got := make([]int64, len(src))
	d.Decode(got)
	if !reflect.DeepEqual(got, src) {
		t.Fatal("Delta sorted round trip mismatch")
	}
}

func TestDeltaSingleAndEmpty(t *testing.T) {
	d := EncodeDelta([]int64{77})
	got := make([]int64, 1)
	d.Decode(got)
	if got[0] != 77 {
		t.Fatalf("got %d, want 77", got[0])
	}
	e := EncodeDelta(nil)
	e.Decode(nil)
	if e.SizeBits() != 0 {
		t.Fatalf("empty SizeBits = %d", e.SizeBits())
	}
}

func TestRLEBasic(t *testing.T) {
	src := []int64{5, 5, 5, 9, 9, 2, 2, 2, 2, 2, 7}
	r := EncodeRLE(src)
	if r.Runs() != 4 {
		t.Fatalf("runs = %d, want 4", r.Runs())
	}
	got := make([]int64, len(src))
	r.Decode(got)
	if !reflect.DeepEqual(got, src) {
		t.Fatalf("RLE round trip mismatch: got %v want %v", got, src)
	}
}

func TestRLEAllSame(t *testing.T) {
	src := make([]int64, 1024)
	for i := range src {
		src[i] = -12345
	}
	r := EncodeRLE(src)
	if r.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", r.Runs())
	}
	if r.SizeBits() >= 1024 {
		t.Fatalf("SizeBits = %d, expected far below one bit per value", r.SizeBits())
	}
	got := make([]int64, len(src))
	r.Decode(got)
	if !reflect.DeepEqual(got, src) {
		t.Fatal("RLE all-same round trip mismatch")
	}
}

func TestDictBasic(t *testing.T) {
	src := []int64{100, 200, 100, 300, 200, 100, 100}
	d := EncodeDict(src)
	if d.Cardinality() != 3 {
		t.Fatalf("cardinality = %d, want 3", d.Cardinality())
	}
	got := make([]int64, len(src))
	d.Decode(got)
	if !reflect.DeepEqual(got, src) {
		t.Fatalf("Dict round trip mismatch: got %v want %v", got, src)
	}
}

func TestDictLowCardinalityIsSmall(t *testing.T) {
	src := make([]int64, 1024)
	for i := range src {
		src[i] = int64(i%4) * 1_000_000
	}
	d := EncodeDict(src)
	f := EncodeFFOR(src)
	if d.SizeBits() >= f.SizeBits() {
		t.Fatalf("Dict (%d bits) should beat FFOR (%d bits) on 4 distinct values", d.SizeBits(), f.SizeBits())
	}
	got := make([]int64, len(src))
	d.Decode(got)
	if !reflect.DeepEqual(got, src) {
		t.Fatal("Dict round trip mismatch")
	}
}

func TestQuickFFOR(t *testing.T) {
	f := func(src []int64) bool {
		if len(src) == 0 {
			return true
		}
		enc := EncodeFFOR(src)
		got := make([]int64, len(src))
		enc.Decode(got)
		return reflect.DeepEqual(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDelta(t *testing.T) {
	f := func(src []int64) bool {
		if len(src) == 0 {
			return true
		}
		enc := EncodeDelta(src)
		got := make([]int64, len(src))
		enc.Decode(got)
		return reflect.DeepEqual(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRLE(t *testing.T) {
	f := func(raw []int64, runs []uint8) bool {
		// Build an input with genuine runs.
		var src []int64
		for i, v := range raw {
			n := 1
			if i < len(runs) {
				n = int(runs[i]%7) + 1
			}
			for j := 0; j < n; j++ {
				src = append(src, v)
			}
		}
		if len(src) == 0 {
			return true
		}
		enc := EncodeRLE(src)
		got := make([]int64, len(src))
		enc.Decode(got)
		return reflect.DeepEqual(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDict(t *testing.T) {
	f := func(raw []int64, pick []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		src := make([]int64, len(pick))
		for i, p := range pick {
			src[i] = raw[int(p)%len(raw)]
		}
		if len(src) == 0 {
			return true
		}
		enc := EncodeDict(src)
		got := make([]int64, len(src))
		enc.Decode(got)
		return reflect.DeepEqual(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func benchVector() []int64 {
	r := rand.New(rand.NewSource(1))
	src := make([]int64, 1024)
	for i := range src {
		src[i] = 500_000 + int64(r.Intn(1<<16))
	}
	return src
}

func BenchmarkFFOREncode(b *testing.B) {
	src := benchVector()
	b.SetBytes(1024 * 8)
	for i := 0; i < b.N; i++ {
		EncodeFFOR(src)
	}
}

func BenchmarkFFORDecodeFused(b *testing.B) {
	src := benchVector()
	f := EncodeFFOR(src)
	dst := make([]int64, len(src))
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Decode(dst)
	}
}

func BenchmarkFFORDecodeUnfused(b *testing.B) {
	src := benchVector()
	f := EncodeFFOR(src)
	dst := make([]int64, len(src))
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.DecodeUnfused(dst)
	}
}
