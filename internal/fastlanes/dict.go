package fastlanes

import (
	"sort"

	"github.com/goalp/alp/internal/bitpack"
)

// Dict is a Dictionary encoding of an int64 vector: distinct values are
// collected into a sorted dictionary and the vector is stored as
// bit-packed codes into it. The dictionary itself is compressed with
// FFOR (a cascade, per §3.1: "use Dictionary-compression, but then also
// compress the dictionary ... with Delta, RLE, FOR").
type Dict struct {
	N      int
	Width  uint
	Values FFOR // the sorted dictionary, FFOR-compressed
	Codes  []uint64
}

// EncodeDict encodes src with Dictionary encoding. The input is not
// modified. Encoding always succeeds; for high-cardinality input the
// result is simply larger than FFOR, which the cascade chooser detects
// via SizeBits.
func EncodeDict(src []int64) Dict {
	if len(src) == 0 {
		return Dict{}
	}
	index := make(map[int64]int, 64)
	for _, v := range src {
		index[v] = 0
	}
	dict := make([]int64, 0, len(index))
	for v := range index {
		dict = append(dict, v)
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	for i, v := range dict {
		index[v] = i
	}
	w := bitpack.Width(uint64(len(dict) - 1))
	codes := make([]uint64, len(src))
	for i, v := range src {
		codes[i] = uint64(index[v])
	}
	d := Dict{
		N:      len(src),
		Width:  w,
		Values: EncodeFFOR(dict),
	}
	d.Codes = make([]uint64, bitpack.WordCount(len(src), w))
	bitpack.Pack(d.Codes, codes, w, 0)
	return d
}

// Cardinality returns the number of distinct values.
func (d *Dict) Cardinality() int { return d.Values.N }

// Decode decompresses the vector into dst, which must have length d.N.
func (d *Dict) Decode(dst []int64) {
	if d.N == 0 {
		return
	}
	dict := make([]int64, d.Values.N)
	d.Values.Decode(dict)
	codes := make([]uint64, d.N)
	bitpack.Unpack(codes, d.Codes, d.Width, 0)
	for i, c := range codes {
		dst[i] = dict[c]
	}
}

// SizeBits returns the exact compressed payload size in bits.
func (d *Dict) SizeBits() int {
	if d.N == 0 {
		return 0
	}
	return d.N*int(d.Width) + d.Values.SizeBits() + 16 + 8 // cardinality + code width
}
