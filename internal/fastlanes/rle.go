package fastlanes

// RLE is a Run-Length Encoding of an int64 vector: the vector is stored
// as two integer streams, run values and run lengths, each compressed
// with FFOR. It is the cascade option the paper picks for the Gov/*
// and CMS/25 datasets in Table 4 (long runs of repeated values).
type RLE struct {
	N       int
	Values  FFOR
	Lengths FFOR
}

// EncodeRLE encodes src with RLE. The input is not modified.
func EncodeRLE(src []int64) RLE {
	if len(src) == 0 {
		return RLE{}
	}
	var vals, lens []int64
	run := src[0]
	length := int64(1)
	for _, v := range src[1:] {
		if v == run {
			length++
			continue
		}
		vals = append(vals, run)
		lens = append(lens, length)
		run, length = v, 1
	}
	vals = append(vals, run)
	lens = append(lens, length)
	return RLE{N: len(src), Values: EncodeFFOR(vals), Lengths: EncodeFFOR(lens)}
}

// Runs returns the number of runs in the encoded vector.
func (r *RLE) Runs() int { return r.Values.N }

// Decode decompresses the vector into dst, which must have length r.N.
func (r *RLE) Decode(dst []int64) {
	if r.N == 0 {
		return
	}
	vals := make([]int64, r.Values.N)
	lens := make([]int64, r.Lengths.N)
	r.Values.Decode(vals)
	r.Lengths.Decode(lens)
	di := 0
	for i, v := range vals {
		for j := int64(0); j < lens[i]; j++ {
			dst[di] = v
			di++
		}
	}
}

// SizeBits returns the exact compressed payload size in bits.
func (r *RLE) SizeBits() int {
	if r.N == 0 {
		return 0
	}
	return r.Values.SizeBits() + r.Lengths.SizeBits() + 16 // run count
}
