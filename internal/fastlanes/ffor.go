// Package fastlanes implements the lightweight integer encodings that
// ALP cascades into: FFOR (Frame-Of-Reference fused with bit-packing),
// Delta, RLE and Dictionary, all operating on vectors of int64 values.
//
// It is the Go counterpart of the paper's FastLanes library [6]: scalar
// loops with no data-dependent branches over fixed-size blocks, with the
// packing kernels specialized per bit width (internal/bitpack). Every
// encoding reports its exact compressed size in bits so the benchmark
// harness can account bits/value the way the paper does.
package fastlanes

import (
	"time"
	"unsafe"

	"github.com/goalp/alp/internal/bitpack"
	"github.com/goalp/alp/internal/obs"
)

// FFOR is a Frame-Of-Reference + bit-packing encoding of an int64
// vector: each value is stored as (v - Base) in Width bits. Encoding
// and decoding fuse the reference arithmetic into the packing loop,
// saving a second pass over the vector (the paper's "Fused FOR").
type FFOR struct {
	Base  int64
	Width uint
	N     int
	Words []uint64
}

// EncodeFFOR encodes src with FFOR. The input is not modified.
func EncodeFFOR(src []int64) FFOR {
	if len(src) == 0 {
		return FFOR{}
	}
	min, max := src[0], src[0]
	for _, v := range src[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	w := bitpack.Width(uint64(max) - uint64(min))
	f := FFOR{
		Base:  min,
		Width: w,
		N:     len(src),
		Words: make([]uint64, bitpack.WordCount(len(src), w)),
	}
	bitpack.Pack(f.Words, asUint64(src), w, uint64(min))
	return f
}

// Decode decompresses the vector into dst, which must have length f.N.
// The addition of the base is fused into the unpacking loop. With the
// collector enabled, sampled calls report into the FFOR-unpack stage
// histogram — the per-vector cycle budget the Lemire/Boytsov decoding
// work tunes against; disabled, the cost is one nil check.
func (f *FFOR) Decode(dst []int64) {
	if o := obs.Active(); o != nil && o.SampleStage(obs.HistStageUnpack) {
		start := time.Now()
		bitpack.Unpack(asUint64(dst), f.Words, f.Width, uint64(f.Base))
		o.Observe(obs.HistStageUnpack, time.Since(start).Nanoseconds())
		return
	}
	bitpack.Unpack(asUint64(dst), f.Words, f.Width, uint64(f.Base))
}

// UnpackRaw unpacks the packed payload without applying the base: dst
// receives the raw frame-of-reference offsets, exactly what the fused
// filter kernel leaves in its scratch buffer and what
// alpenc.Vector.GatherSelected consumes (it re-adds the base per
// selected row). dst must have length f.N.
func (f *FFOR) UnpackRaw(dst []int64) {
	bitpack.Unpack(asUint64(dst), f.Words, f.Width, 0)
}

// DecodeUnfused performs the same decompression in two separate passes:
// bit-unpacking first, then adding the base. It exists only as the
// unfused comparand for the Figure 5 kernel-fusion ablation.
func (f *FFOR) DecodeUnfused(dst []int64) {
	u := asUint64(dst)
	bitpack.Unpack(u, f.Words, f.Width, 0)
	base := uint64(f.Base)
	for i := range u {
		u[i] += base
	}
}

// DecodeGeneric decompresses through the width-parametric scalar loop
// instead of the specialized kernels ("Scalar" variant in the Figure 4
// ablation).
func (f *FFOR) DecodeGeneric(dst []int64) {
	bitpack.UnpackBlockGeneric(asUint64(dst), f.Words, f.N, f.Width, uint64(f.Base))
}

// SizeBits returns the exact compressed payload size in bits: the packed
// words plus the per-vector base (64) and width (8) metadata.
func (f *FFOR) SizeBits() int {
	return f.N*int(f.Width) + 64 + 8
}

// asUint64 reinterprets an int64 slice as uint64 without copying.
// Two's-complement wraparound makes the frame-of-reference arithmetic on
// the unsigned view identical to signed arithmetic, and the types have
// identical size and alignment, so the aliasing is well defined.
func asUint64(s []int64) []uint64 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&s[0])), len(s))
}
