package metricstore

import (
	"io"
	"sync"
	"testing"
	"time"

	"github.com/goalp/alp/internal/obs"
)

// TestConcurrentScrapeRecordQuery is the -race hammer: a live obs
// collector being recorded into from several goroutines while the
// recorder scrapes it, queries run, snapshots serialize, and stats are
// read — all concurrently, including the Start/Stop background loop.
func TestConcurrentScrapeRecordQuery(t *testing.T) {
	var c obs.Collector
	st := New(Options{
		Interval:      200 * time.Microsecond,
		WindowSamples: 8,
		Source:        c.Snapshot,
	})
	st.Start()
	defer st.Stop()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(150*time.Millisecond, func() { close(stop) })

	// Writers: hammer the collector the way real request handlers do.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.ServerRequest()
				c.Observe(obs.HistScan, int64(i%5000))
				c.VectorDecoded(1024, 100)
			}
		}(w)
	}
	// Extra manual scrapes racing the background ticker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st.ScrapeOnce()
			}
		}
	}()
	// Readers: queries, raw dumps, stats, serialization.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			now := time.Now().UnixMicro()
			if _, err := st.Query("server_requests", now-10_000_000, now+1, 10*time.Millisecond, AggSum); err != nil {
				t.Error(err)
				return
			}
			if _, _, err := st.Raw("lat_scan_count"); err != nil {
				t.Error(err)
				return
			}
			st.Stats()
			if _, err := st.WriteTo(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	st.Flush()

	s := st.Stats()
	if s.Scrapes == 0 {
		t.Fatal("hammer produced no scrapes")
	}
	// Double Stop must be safe, as must Stop racing nothing.
	st.Stop()
	st2 := New(Options{})
	st2.Stop() // never started
}
