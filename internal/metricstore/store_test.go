package metricstore

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/goalp/alp/internal/obs"
)

// ---- deterministic synthetic telemetry ----

// snapGen produces a deterministic stream of cumulative obs snapshots:
// every int64 counter field random-walks upward and the histograms
// grow coherently (Count tracks the bucket total, SumNs and MaxNs stay
// consistent with the buckets touched). Reset() simulates a collector
// restart mid-stream.
type snapGen struct {
	rng *rand.Rand
	cum obs.Snapshot
}

func newSnapGen(seed int64) *snapGen {
	return &snapGen{rng: rand.New(rand.NewSource(seed))}
}

func (g *snapGen) Reset() { g.cum = obs.Snapshot{} }

// Next advances the cumulative state and returns a copy.
func (g *snapGen) Next() obs.Snapshot {
	v := reflect.ValueOf(&g.cum).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() == reflect.Int64 {
			f.SetInt(f.Int() + g.rng.Int63n(1000))
		}
	}
	for h := range g.cum.Hists {
		hs := &g.cum.Hists[h]
		for n := g.rng.Intn(4); n > 0; n-- {
			ns := g.rng.Int63n(1 << uint(g.rng.Intn(30)))
			hs.Count++
			hs.SumNs += ns
			if ns > hs.MaxNs {
				hs.MaxNs = ns
			}
			b := 0
			for bb := 1; bb < obs.HistBuckets; bb++ {
				if ns >= int64(1)<<uint(bb) {
					b = bb
				}
			}
			hs.Buckets[b]++
		}
	}
	return g.cum
}

// scrapeSeq is a pre-generated scrape stream both recorders replay.
type scrapeSeq struct {
	ts    []int64 // unix micros, strictly increasing
	snaps []obs.Snapshot
}

// genSeq builds n scrapes spaced ~intervalUs apart with jitter, with a
// collector reset injected at resetAt (-1 for none).
func genSeq(seed int64, n int, intervalUs int64, resetAt int) scrapeSeq {
	g := newSnapGen(seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5ee7))
	var seq scrapeSeq
	ts := int64(1_754_600_000_000_000) // 2025-08-08 ballpark, unix micros
	for i := 0; i < n; i++ {
		if i == resetAt {
			g.Reset()
		}
		ts += intervalUs + rng.Int63n(intervalUs/4+1)
		seq.ts = append(seq.ts, ts)
		seq.snaps = append(seq.snaps, g.Next())
	}
	return seq
}

// feed replays the sequence into a Store (via its injected Source/Now
// hooks) and a Ref in lockstep.
func feed(t *testing.T, seq scrapeSeq, opts Options) (*Store, *Ref) {
	t.Helper()
	i := 0
	opts.Source = func() obs.Snapshot { return seq.snaps[i] }
	opts.Now = func() time.Time { return time.UnixMicro(seq.ts[i]) }
	st := New(opts)
	ref := NewRef(opts)
	for i = 0; i < len(seq.ts); i++ {
		st.ScrapeOnce()
		ref.Scrape(float64(seq.ts[i]), seq.snaps[i])
	}
	return st, ref
}

// diffPoints asserts bit-identical results (Float64bits, not epsilon).
func diffPoints(t *testing.T, label string, got, want []Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, reference has %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].TsUs != want[i].TsUs || got[i].Count != want[i].Count {
			t.Fatalf("%s: point %d = {ts:%d n:%d}, reference {ts:%d n:%d}",
				label, i, got[i].TsUs, got[i].Count, want[i].TsUs, want[i].Count)
		}
		if math.Float64bits(got[i].Value) != math.Float64bits(want[i].Value) {
			t.Fatalf("%s: point %d value %v (bits %016x), reference %v (bits %016x)",
				label, i, got[i].Value, math.Float64bits(got[i].Value),
				want[i].Value, math.Float64bits(want[i].Value))
		}
	}
}

var allAggs = []AggKind{AggSum, AggCount, AggMin, AggMax, AggAvg, AggRate, AggLast}

// TestQueryDifferential is the battery: scrape-interval x window-size
// x step x agg, compressed store vs uncompressed reference, bitwise.
func TestQueryDifferential(t *testing.T) {
	metrics := []string{
		"server_requests", "vectors_decoded", "lat_scan_count",
		"lat_scan_sum_ns", "lat_agg_p95_ns", "stage_filter_max_ns",
	}
	configs := []struct {
		name       string
		intervalUs int64
		window     int
		scrapes    int
		buckets    bool
	}{
		{"10ms-w64", 10_000, 64, 400, false},
		{"1s-w256", 1_000_000, 256, 700, false},
		{"100ms-w8-buckets", 100_000, 8, 120, true},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			seq := genSeq(42, cfg.scrapes, cfg.intervalUs, -1)
			st, ref := feed(t, seq, Options{WindowSamples: cfg.window, HistogramBuckets: cfg.buckets})

			first, last := seq.ts[0], seq.ts[len(seq.ts)-1]
			span := last - first
			ranges := []struct {
				name         string
				since, until int64
				step         time.Duration
			}{
				// One bucket per window: exercises the AggRange pushdown
				// fast path on every fully-covered sealed window.
				{"whole-one-bucket", first, last + 1, 0},
				{"fine-steps", first, last + 1, time.Duration(cfg.intervalUs*3) * time.Microsecond},
				{"coarse-steps", first, last + 1, time.Duration(span/7+1) * time.Microsecond},
				// Unaligned interior range: exercises partial-window
				// vector decode on both edges.
				{"interior", first + span/5 + 13, last - span/6 - 7, time.Duration(span/11+1) * time.Microsecond},
				{"tail-only", last - cfg.intervalUs*3, last + 1, time.Duration(cfg.intervalUs) * time.Microsecond},
			}
			for _, m := range metrics {
				for _, r := range ranges {
					for _, agg := range allAggs {
						got, err := st.Query(m, r.since, r.until, r.step, agg)
						if err != nil {
							t.Fatalf("%s/%s/%s: %v", m, r.name, agg, err)
						}
						want, err := ref.Query(m, r.since, r.until, r.step, agg)
						if err != nil {
							t.Fatalf("%s/%s/%s ref: %v", m, r.name, agg, err)
						}
						if r.name == "whole-one-bucket" && len(want) == 0 {
							t.Fatalf("%s/%s: reference returned no points", m, r.name)
						}
						diffPoints(t, m+"/"+r.name+"/"+agg.String(), got, want)
					}
				}
			}
		})
	}
}

// TestQueryDifferentialWithReset injects a collector restart mid-stream
// and asserts the compressed and reference recorders still agree, and
// that counter-delta series never go negative across the reset.
func TestQueryDifferentialWithReset(t *testing.T) {
	seq := genSeq(7, 300, 50_000, 143)
	st, ref := feed(t, seq, Options{WindowSamples: 64})
	first, last := seq.ts[0], seq.ts[len(seq.ts)-1]
	for _, agg := range allAggs {
		got, err := st.Query("server_requests", first, last+1, 250*time.Millisecond, agg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Query("server_requests", first, last+1, 250*time.Millisecond, agg)
		if err != nil {
			t.Fatal(err)
		}
		diffPoints(t, "reset/"+agg.String(), got, want)
	}
	// CounterDelta semantics: no negative deltas even across the reset.
	pts, err := st.Query("server_requests", first, last+1, 50*time.Millisecond, AggMin)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Value < 0 {
			t.Fatalf("negative counter delta %v at %d across reset", p.Value, p.TsUs)
		}
	}
}

// TestRetentionEviction forces the budget to evict sealed windows and
// checks (a) the store stays within budget with the newest window
// retained, (b) queries over the retained range still match the
// reference bitwise.
func TestRetentionEviction(t *testing.T) {
	seq := genSeq(99, 600, 20_000, -1)
	st, ref := feed(t, seq, Options{WindowSamples: 32, RetentionBytes: 60_000})
	stats := st.Stats()
	if stats.Evictions == 0 {
		t.Fatalf("no evictions at %d sealed bytes (budget 60000) — tighten the test budget", stats.SealedBytes)
	}
	if stats.SealedWindows == 0 {
		t.Fatal("eviction removed every sealed window; the newest must survive")
	}
	if stats.SealedBytes > 60_000 && stats.SealedWindows > 1 {
		t.Fatalf("sealed bytes %d exceed budget with %d windows retained", stats.SealedBytes, stats.SealedWindows)
	}
	// Query only the retained range: evicted samples are older than
	// EarliestUs, so both sides exclude them.
	since, until := stats.EarliestUs, stats.LatestUs+1
	for _, agg := range []AggKind{AggSum, AggCount, AggLast} {
		got, err := st.Query("scan_bytes_saved", since, until, 300*time.Millisecond, agg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Query("scan_bytes_saved", since, until, 300*time.Millisecond, agg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatal("no points over the retained range")
		}
		diffPoints(t, "evicted/"+agg.String(), got, want)
	}
}

// TestFlushAndEmptyWindows pins the seal edge cases: flushing an empty
// store creates no window, flushing a partial tail seals exactly once,
// and a flushed store still answers queries identically to a reference
// flushed at the same point.
func TestFlushAndEmptyWindows(t *testing.T) {
	st := New(Options{WindowSamples: 16})
	st.Flush()
	if s := st.Stats(); s.SealedWindows != 0 || s.Scrapes != 0 {
		t.Fatalf("flush of empty store created state: %+v", s)
	}

	seq := genSeq(5, 21, 10_000, -1)
	st, ref := feed(t, seq, Options{WindowSamples: 16})
	if s := st.Stats(); s.SealedWindows != 1 || s.HotSamples != 5 {
		t.Fatalf("pre-flush state %+v, want 1 window + 5 hot", s)
	}
	st.Flush()
	ref.Flush()
	if s := st.Stats(); s.SealedWindows != 2 || s.HotSamples != 0 {
		t.Fatalf("post-flush state %+v, want 2 windows + 0 hot", s)
	}
	st.Flush() // tail now empty: must be a no-op
	if s := st.Stats(); s.SealedWindows != 2 {
		t.Fatalf("second flush sealed an empty window: %+v", s)
	}
	first, last := seq.ts[0], seq.ts[len(seq.ts)-1]
	got, err := st.Query("server_requests", first, last+1, 30*time.Millisecond, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query("server_requests", first, last+1, 30*time.Millisecond, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	diffPoints(t, "flushed", got, want)
}

// TestRawMatchesInput checks the store's end-to-end losslessness: Raw
// returns exactly the samples that went in, bit for bit, across sealed
// and hot segments.
func TestRawMatchesInput(t *testing.T) {
	seq := genSeq(11, 100, 10_000, -1)
	st, ref := feed(t, seq, Options{WindowSamples: 32})
	ts, vals, err := st.Raw("server_bytes_out")
	if err != nil {
		t.Fatal(err)
	}
	idx := ref.index["server_bytes_out"]
	var wantTs, wantVals []float64
	for _, seg := range ref.sealed {
		wantTs = append(wantTs, seg.ts...)
		wantVals = append(wantVals, seg.vals[idx]...)
	}
	wantTs = append(wantTs, ref.hotTs...)
	wantVals = append(wantVals, ref.hot[idx]...)
	if len(ts) != len(seq.ts) || len(vals) != len(seq.ts) {
		t.Fatalf("raw returned %d/%d samples, want %d", len(ts), len(vals), len(seq.ts))
	}
	for i := range ts {
		if math.Float64bits(ts[i]) != math.Float64bits(wantTs[i]) {
			t.Fatalf("timestamp %d: %v != %v", i, ts[i], wantTs[i])
		}
		if math.Float64bits(vals[i]) != math.Float64bits(wantVals[i]) {
			t.Fatalf("value %d: %v != %v", i, vals[i], wantVals[i])
		}
		if int64(ts[i]) != seq.ts[i] {
			t.Fatalf("timestamp %d: %v is not the scrape time %d", i, ts[i], seq.ts[i])
		}
	}

	if _, _, err := st.Raw("no_such_series"); err == nil {
		t.Fatal("Raw(unknown) did not error")
	}
	if _, err := st.Query("no_such_series", 0, 1, 0, AggSum); err == nil {
		t.Fatal("Query(unknown) did not error")
	}
}

// TestQueryValidation pins the range/step error handling.
func TestQueryValidation(t *testing.T) {
	st := New(Options{})
	if _, err := st.Query("server_requests", 100, 100, time.Second, AggSum); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := st.Query("server_requests", 200, 100, time.Second, AggSum); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := st.Query("server_requests", 0, int64(maxQueryBuckets+1), time.Microsecond, AggSum); err == nil {
		t.Fatal("bucket-count limit not enforced")
	}
	if _, err := ParseAgg("median"); err == nil {
		t.Fatal("ParseAgg accepted an unknown agg")
	}
	for name, k := range aggNames {
		got, err := ParseAgg(name)
		if err != nil || got != k {
			t.Fatalf("ParseAgg(%q) = %v, %v", name, got, err)
		}
		if k.String() != name {
			t.Fatalf("String(%v) = %q, want %q", k, k.String(), name)
		}
	}
}

// TestSchemaCoversMetricsKeys asserts every flat /metrics key (counters
// and histogram flats) exists as a history series — the "everything
// you can read point-in-time has a history" contract.
func TestSchemaCoversMetricsKeys(t *testing.T) {
	st := New(Options{})
	have := make(map[string]bool, len(st.Names()))
	for _, n := range st.Names() {
		have[n] = true
	}
	for _, c := range (obs.Snapshot{}).Counters() {
		if !have[c.Name] {
			t.Errorf("counter %q has no history series", c.Name)
		}
	}
	for i := 0; i < int(obs.NumHists); i++ {
		for _, m := range (obs.HistSnapshot{}).Flats(obs.HistName(obs.HistID(i))) {
			if !have[m.Name] {
				t.Errorf("histogram key %q has no history series", m.Name)
			}
		}
	}
	// Bucket series only exist when asked for.
	if have["lat_scan_bucket0"] {
		t.Error("bucket series present without HistogramBuckets")
	}
	stB := New(Options{HistogramBuckets: true})
	foundBucket := false
	for _, n := range stB.Names() {
		if n == "lat_scan_bucket0" {
			foundBucket = true
		}
	}
	if !foundBucket {
		t.Error("HistogramBuckets did not add bucket series")
	}
}
