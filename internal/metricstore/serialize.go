// ALPM: the on-disk snapshot format of a metrics-history store, used
// by alpserved's -metrics-snapshot flag and read back by the `alpfile
// metrics` dumper. Little-endian throughout:
//
//	"ALPM" magic
//	u16 version (currently 1)
//	u16 flags   (bit0: histogram-bucket series present)
//	i64 scrape interval, ns
//	u32 window samples
//	i64 retention budget, bytes
//	u32 series count, then per series: u16 name length + name bytes
//	u32 sealed window count, then per window:
//	      u32 sample count
//	      u32 length + marshaled ALP timestamp column
//	      per series: u32 length + marshaled ALP value column
//	u32 hot-tail sample count
//	      hot timestamps as raw float64 bits, then per series the
//	      hot values as raw float64 bits
//	u32 CRC-32C (Castagnoli) of everything before it
//
// Sealed windows are stored as the exact marshaled bytes the ALP
// writer produced — a snapshot is a container of ALP columns, not a
// re-encoding — so reading one back costs only the CRC and the column
// header parses.
package metricstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	alp "github.com/goalp/alp"
)

const (
	alpmMagic   = "ALPM"
	alpmVersion = 1

	alpmFlagBuckets = 1 << 0
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxSnapshotBytes bounds how large a snapshot ReadStore will parse,
// guarding against a corrupt length field allocating unbounded memory.
const maxSnapshotBytes = 1 << 30

// WriteTo serializes the store (sealed windows and hot tail) in ALPM
// format. The snapshot is a consistent point-in-time view: the store
// lock is held while the view is captured, not while bytes are
// written.
func (st *Store) WriteTo(w io.Writer) (int64, error) {
	st.mu.Lock()
	wins := append([]*window(nil), st.sealed...)
	hotTs := append([]float64(nil), st.hotTs...)
	hot := make([][]float64, len(st.hot))
	for i := range st.hot {
		hot[i] = append([]float64(nil), st.hot[i]...)
	}
	st.mu.Unlock()

	var b bytes.Buffer
	b.WriteString(alpmMagic)
	var flags uint16
	if st.opts.HistogramBuckets {
		flags |= alpmFlagBuckets
	}
	writeU16(&b, alpmVersion)
	writeU16(&b, flags)
	writeI64(&b, st.opts.Interval.Nanoseconds())
	writeU32(&b, uint32(st.opts.WindowSamples))
	writeI64(&b, st.opts.RetentionBytes)
	writeU32(&b, uint32(len(st.names)))
	for _, n := range st.names {
		if len(n) > math.MaxUint16 {
			return 0, fmt.Errorf("metricstore: series name too long: %q", n)
		}
		writeU16(&b, uint16(len(n)))
		b.WriteString(n)
	}
	writeU32(&b, uint32(len(wins)))
	for _, w := range wins {
		writeU32(&b, uint32(w.n))
		writeBlob(&b, w.ts.Bytes())
		for _, c := range w.cols {
			writeBlob(&b, c.Bytes())
		}
	}
	writeU32(&b, uint32(len(hotTs)))
	for _, v := range hotTs {
		writeI64(&b, int64(math.Float64bits(v)))
	}
	for i := range hot {
		for _, v := range hot[i] {
			writeI64(&b, int64(math.Float64bits(v)))
		}
	}
	writeU32(&b, crc32.Checksum(b.Bytes(), crcTable))
	n, err := w.Write(b.Bytes())
	return int64(n), err
}

// ReadStore parses an ALPM snapshot into a queryable Store. The
// restored store serves Query/Raw/Stats/WriteTo; it can also resume
// scraping, in which case the first scrape after restore is treated
// like a first scrape (full totals, not deltas — the pre-snapshot
// counter baseline is gone with the process that wrote it).
func ReadStore(data []byte) (*Store, error) {
	if len(data) > maxSnapshotBytes {
		return nil, fmt.Errorf("metricstore: snapshot too large (%d bytes)", len(data))
	}
	if len(data) < len(alpmMagic)+4 || string(data[:len(alpmMagic)]) != alpmMagic {
		return nil, errors.New("metricstore: not an ALPM snapshot (bad magic)")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("metricstore: snapshot CRC mismatch (got %08x, want %08x)", got, want)
	}
	r := &reader{buf: body[len(alpmMagic):]}

	if v := r.u16(); v != alpmVersion {
		return nil, fmt.Errorf("metricstore: unsupported snapshot version %d", v)
	}
	flags := r.u16()
	opts := Options{
		Interval:         time.Duration(r.i64()),
		WindowSamples:    int(r.u32()),
		RetentionBytes:   r.i64(),
		HistogramBuckets: flags&alpmFlagBuckets != 0,
	}
	st := New(opts)
	nSeries := int(r.u32())
	if nSeries != len(st.names) {
		return nil, fmt.Errorf("metricstore: snapshot has %d series, schema has %d (schema drift)", nSeries, len(st.names))
	}
	for i := 0; i < nSeries; i++ {
		name := string(r.bytes(int(r.u16())))
		if r.err == nil && name != st.names[i] {
			return nil, fmt.Errorf("metricstore: snapshot series %d is %q, schema says %q", i, name, st.names[i])
		}
	}
	nWins := int(r.u32())
	for wi := 0; wi < nWins && r.err == nil; wi++ {
		w := &window{n: int(r.u32()), cols: make([]*alp.Column, nSeries)}
		var err error
		if w.ts, err = openColumn(r, w.n); err != nil {
			return nil, fmt.Errorf("metricstore: window %d timestamps: %w", wi, err)
		}
		for si := 0; si < nSeries; si++ {
			if w.cols[si], err = openColumn(r, w.n); err != nil {
				return nil, fmt.Errorf("metricstore: window %d series %q: %w", wi, st.names[si], err)
			}
		}
		if r.err != nil {
			break
		}
		tsv := w.ts.Values()
		w.firstUs, w.lastUs = tsv[0], tsv[w.n-1]
		w.bytes = int64(w.ts.CompressedSize())
		for _, c := range w.cols {
			w.bytes += int64(c.CompressedSize())
		}
		st.sealed = append(st.sealed, w)
		st.sealedBytes += w.bytes
		st.seals++
	}
	nHot := int(r.u32())
	for i := 0; i < nHot; i++ {
		st.hotTs = append(st.hotTs, math.Float64frombits(uint64(r.i64())))
	}
	for si := 0; si < nSeries; si++ {
		for i := 0; i < nHot; i++ {
			st.hot[si] = append(st.hot[si], math.Float64frombits(uint64(r.i64())))
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("metricstore: truncated snapshot: %w", r.err)
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("metricstore: %d trailing bytes after snapshot", len(r.buf))
	}
	st.scrapes = int64(nHot)
	for _, w := range st.sealed {
		st.scrapes += int64(w.n)
	}
	return st, nil
}

func openColumn(r *reader, wantN int) (*alp.Column, error) {
	blob := r.bytes(int(r.u32()))
	if r.err != nil {
		return nil, r.err
	}
	c, err := alp.Open(blob)
	if err != nil {
		return nil, err
	}
	if wantN <= 0 || c.Len() != wantN {
		return nil, fmt.Errorf("column holds %d values, window header says %d", c.Len(), wantN)
	}
	return c, nil
}

// ---- little-endian plumbing ----

func writeU16(b *bytes.Buffer, v uint16) { var t [2]byte; binary.LittleEndian.PutUint16(t[:], v); b.Write(t[:]) }
func writeU32(b *bytes.Buffer, v uint32) { var t [4]byte; binary.LittleEndian.PutUint32(t[:], v); b.Write(t[:]) }
func writeI64(b *bytes.Buffer, v int64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], uint64(v))
	b.Write(t[:])
}
func writeBlob(b *bytes.Buffer, blob []byte) { writeU32(b, uint32(len(blob))); b.Write(blob) }

// reader is a bounds-checked little-endian cursor: the first short
// read latches err and every subsequent read returns zero values, so
// parse code can run straight-line and check err once.
type reader struct {
	buf []byte
	err error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf) {
		r.err = fmt.Errorf("need %d bytes, have %d", n, len(r.buf))
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) i64() int64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}
