// Package metricstore is alpserved's self-hosted metrics history: a
// background recorder that scrapes the process's own obs collector on
// a fixed interval, buffers the resulting per-series samples in flat
// hot-tail slices, seals every full window of WindowSamples scrapes
// into ALP-compressed columns (one timestamp column plus one column
// per series, through the exact writer/decoder pipeline the server
// ships to users), and evicts the oldest sealed windows once the
// compressed footprint exceeds a retention budget.
//
// Timestamps are stored as float64 unix microseconds. Integers up to
// 2^53 are exactly representable in a float64 and unix-micro
// timestamps stay below that until the year ~2255, so the encoding is
// lossless, and integral microsecond counts are exactly the
// decimal-scaled doubles ALP compresses best.
//
// Range queries (Query) run over the sealed windows via the engine's
// filtered-aggregate pushdown and over the hot tail by plain folds,
// with deterministic per-segment partials merged in time order — the
// contract the reference recorder in ref.go mirrors bit for bit.
package metricstore

import (
	"fmt"
	"sync"
	"time"

	alp "github.com/goalp/alp"
	"github.com/goalp/alp/internal/obs"
)

// Default knobs; see Options.
const (
	DefaultInterval       = 10 * time.Second
	DefaultWindowSamples  = 512
	DefaultRetentionBytes = 4 << 20
)

// Options configures a Store. The zero value is usable: every field
// has a sensible default.
type Options struct {
	// Interval is the scrape period of the background recorder
	// (Start). Defaults to DefaultInterval.
	Interval time.Duration

	// WindowSamples is the number of scrapes per sealed window.
	// Defaults to DefaultWindowSamples. At the default 10s interval a
	// window covers ~85 minutes.
	WindowSamples int

	// RetentionBytes bounds the compressed footprint of sealed
	// windows; once exceeded, whole oldest windows are evicted until
	// the store fits (the newest sealed window is never evicted).
	// Defaults to DefaultRetentionBytes.
	RetentionBytes int64

	// HistogramBuckets adds one series per histogram bucket
	// (<hist>_bucket<i> per-scrape increments) on top of the
	// count/sum/quantile series. Multiplies the series count ~6x.
	HistogramBuckets bool

	// Source supplies the snapshot each scrape diffs against the
	// previous one. Defaults to obs.Active().Snapshot. Tests inject
	// synthetic sources here.
	Source func() obs.Snapshot

	// Now supplies scrape timestamps. Defaults to time.Now. Tests
	// inject deterministic clocks here.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.WindowSamples <= 0 {
		o.WindowSamples = DefaultWindowSamples
	}
	if o.RetentionBytes <= 0 {
		o.RetentionBytes = DefaultRetentionBytes
	}
	if o.Source == nil {
		o.Source = func() obs.Snapshot { return obs.Active().Snapshot() }
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// window is one sealed block of WindowSamples (or fewer, if sealed by
// Flush) scrapes: a compressed timestamp column plus one compressed
// column per series, all column-aligned. Windows are immutable after
// sealing, so queries read them without holding the store lock.
type window struct {
	n       int     // samples in this window
	firstUs float64 // first and last timestamp, unix micros
	lastUs  float64
	ts      *alp.Column
	cols    []*alp.Column // one per series, schema order
	bytes   int64         // compressed payload footprint (ts + all series)
}

// Store is the metrics-history recorder. All methods are safe for
// concurrent use.
type Store struct {
	opts  Options
	names []string
	index map[string]int

	mu          sync.Mutex
	prev        obs.Snapshot // last scraped snapshot (delta base)
	hotTs       []float64    // unsealed tail, unix micros
	hot         [][]float64  // [series][sample], aligned with hotTs
	sealed      []*window    // oldest first
	sealedBytes int64

	scrapes   int64
	seals     int64
	evictions int64

	stop      chan struct{}
	done      chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once
}

// New builds a Store. It performs no scraping until Start or
// ScrapeOnce is called.
func New(opts Options) *Store {
	opts = opts.withDefaults()
	names := seriesNames(opts.HistogramBuckets)
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	return &Store{
		opts:  opts,
		names: names,
		index: index,
		hot:   make([][]float64, len(names)),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Names returns the series schema in stable order. The returned slice
// is shared; callers must not mutate it.
func (st *Store) Names() []string { return st.names }

// Interval returns the configured scrape period.
func (st *Store) Interval() time.Duration { return st.opts.Interval }

// Start launches the background recorder goroutine. Safe to call once;
// subsequent calls are no-ops.
func (st *Store) Start() {
	st.startOnce.Do(func() {
		go func() {
			defer close(st.done)
			t := time.NewTicker(st.opts.Interval)
			defer t.Stop()
			for {
				select {
				case <-st.stop:
					return
				case <-t.C:
					st.ScrapeOnce()
				}
			}
		}()
	})
}

// Stop halts the background recorder and waits for it to exit. Safe to
// call multiple times, and safe even if Start was never called.
func (st *Store) Stop() {
	st.stopOnce.Do(func() { close(st.stop) })
	st.startOnce.Do(func() { close(st.done) }) // never started: nothing to wait for
	<-st.done
}

// ScrapeOnce performs one scrape: snapshot the source, append the
// per-series deltas to the hot tail, and seal a window if the tail is
// full. Exposed so tests (and the flush path) can drive the recorder
// deterministically.
func (st *Store) ScrapeOnce() {
	cur := st.opts.Source()
	tsUs := float64(st.opts.Now().UnixMicro())
	st.mu.Lock()
	defer st.mu.Unlock()
	st.appendLocked(tsUs, cur)
}

func (st *Store) appendLocked(tsUs float64, cur obs.Snapshot) {
	samples := extractSamples(nil, cur, st.prev, st.opts.HistogramBuckets)
	st.prev = cur
	st.hotTs = append(st.hotTs, tsUs)
	for i := range st.hot {
		st.hot[i] = append(st.hot[i], samples[i])
	}
	st.scrapes++
	if len(st.hotTs) >= st.opts.WindowSamples {
		st.sealLocked()
	}
}

// Flush seals the partial hot tail into a window. A no-op when the
// tail is empty — an empty window is never created.
func (st *Store) Flush() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.hotTs) > 0 {
		st.sealLocked()
	}
}

// sealLocked compresses the hot tail into a sealed window, resets the
// tail, and applies the retention budget. Caller holds st.mu and
// guarantees the tail is non-empty.
func (st *Store) sealLocked() {
	w := &window{
		n:       len(st.hotTs),
		firstUs: st.hotTs[0],
		lastUs:  st.hotTs[len(st.hotTs)-1],
		ts:      alp.Compress(st.hotTs),
		cols:    make([]*alp.Column, len(st.hot)),
	}
	w.bytes = int64(w.ts.CompressedSize())
	for i := range st.hot {
		w.cols[i] = alp.Compress(st.hot[i])
		w.bytes += int64(w.cols[i].CompressedSize())
	}
	// Fresh tail buffers: the sealed columns were built from the old
	// slices, which are now garbage; reusing them would be safe today
	// but fragile against a writer that ever aliases its input.
	st.hotTs = nil
	for i := range st.hot {
		st.hot[i] = nil
	}
	st.sealed = append(st.sealed, w)
	st.sealedBytes += w.bytes
	st.seals++
	for len(st.sealed) > 1 && st.sealedBytes > st.opts.RetentionBytes {
		st.sealedBytes -= st.sealed[0].bytes
		st.sealed[0] = nil
		st.sealed = st.sealed[1:]
		st.evictions++
	}
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	Series         int     `json:"series"`
	Scrapes        int64   `json:"scrapes"`
	SealedWindows  int     `json:"sealed_windows"`
	SealedSamples  int64   `json:"sealed_samples"` // scrapes held in sealed windows
	HotSamples     int     `json:"hot_samples"`    // scrapes in the unsealed tail
	SealedBytes    int64   `json:"sealed_bytes"`
	RetentionBytes int64   `json:"retention_bytes"`
	Evictions      int64   `json:"evictions"`
	BitsPerValue   float64 `json:"bits_per_value"` // compressed bits per stored value (sealed)
	EarliestUs     int64   `json:"earliest_us"`    // oldest retained timestamp (0 when empty)
	LatestUs       int64   `json:"latest_us"`      // newest retained timestamp (0 when empty)
	IntervalMs     int64   `json:"interval_ms"`
	WindowSamples  int     `json:"window_samples"`
}

// Stats reports the current footprint and coverage of the store.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Stats{
		Series:         len(st.names),
		Scrapes:        st.scrapes,
		SealedWindows:  len(st.sealed),
		HotSamples:     len(st.hotTs),
		SealedBytes:    st.sealedBytes,
		RetentionBytes: st.opts.RetentionBytes,
		Evictions:      st.evictions,
		IntervalMs:     st.opts.Interval.Milliseconds(),
		WindowSamples:  st.opts.WindowSamples,
	}
	for _, w := range st.sealed {
		s.SealedSamples += int64(w.n)
	}
	if vals := s.SealedSamples * int64(len(st.names)+1); vals > 0 {
		s.BitsPerValue = float64(st.sealedBytes*8) / float64(vals)
	}
	switch {
	case len(st.sealed) > 0:
		s.EarliestUs = int64(st.sealed[0].firstUs)
	case len(st.hotTs) > 0:
		s.EarliestUs = int64(st.hotTs[0])
	}
	switch {
	case len(st.hotTs) > 0:
		s.LatestUs = int64(st.hotTs[len(st.hotTs)-1])
	case len(st.sealed) > 0:
		s.LatestUs = int64(st.sealed[len(st.sealed)-1].lastUs)
	}
	return s
}

// Raw returns every retained sample of one series in time order —
// sealed windows decoded through the ALP reader, then the hot tail.
// Used by the alpfile metrics dumper and by tests.
func (st *Store) Raw(metric string) (ts, values []float64, err error) {
	idx, ok := st.index[metric]
	if !ok {
		return nil, nil, fmt.Errorf("metricstore: unknown metric %q", metric)
	}
	wins, hotTs, hotVals := st.snapshotSegments(idx)
	for _, w := range wins {
		ts = append(ts, w.ts.Values()...)
		values = append(values, w.cols[idx].Values()...)
	}
	ts = append(ts, hotTs...)
	values = append(values, hotVals...)
	return ts, values, nil
}

// snapshotSegments captures a consistent read view under the lock:
// the sealed-window list (immutable windows, so the slice copy alone
// is enough) plus a copy of the hot tail for one series.
func (st *Store) snapshotSegments(idx int) (wins []*window, hotTs, hotVals []float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	wins = append(wins, st.sealed...)
	hotTs = append(hotTs, st.hotTs...)
	hotVals = append(hotVals, st.hot[idx]...)
	return wins, hotTs, hotVals
}
