// The series schema: which float64 series one obs snapshot scrape
// produces, and in what order. The schema is derived from the same
// tables that feed /metrics (obs.Snapshot.Counters and
// obs.HistSnapshot.Flats), so every key a metrics consumer can read
// point-in-time also exists as a history series:
//
//   - every scalar counter, recorded as the delta since the previous
//     scrape (obs.CounterDelta semantics: a shrunk counter means the
//     collector reset, and the new total is the delta)
//   - per latency histogram: <name>_count and <name>_sum_ns deltas,
//     plus <name>_p50_ns / _p95_ns / _p99_ns / _max_ns gauges sampled
//     from the cumulative distribution
//   - optionally (Options.HistogramBuckets) the raw log2 bucket
//     vector: <name>_bucket<i> per-scrape increments, which preserve
//     the full distribution shape over time instead of three quantile
//     cuts of it
//
// Series order is fixed at construction and identical for every scrape,
// so a scrape appends exactly one value to every ring buffer and sealed
// windows are column-aligned across series.
package metricstore

import (
	"fmt"

	"github.com/goalp/alp/internal/obs"
)

// seriesNames returns the schema, in stable order.
func seriesNames(includeBuckets bool) []string {
	var names []string
	for _, c := range (obs.Snapshot{}).Counters() {
		names = append(names, c.Name)
	}
	for i := 0; i < int(obs.NumHists); i++ {
		base := obs.HistName(obs.HistID(i))
		for _, m := range (obs.HistSnapshot{}).Flats(base) {
			names = append(names, m.Name)
		}
		if includeBuckets {
			for b := 0; b < obs.HistBuckets; b++ {
				names = append(names, fmt.Sprintf("%s_bucket%d", base, b))
			}
		}
	}
	return names
}

// extractSamples appends one sample per series (in seriesNames order)
// to dst, diffing cur against prev. On the first scrape prev is the
// zero snapshot, so the first deltas are the totals accumulated since
// the process (or collector) started.
func extractSamples(dst []float64, cur, prev obs.Snapshot, includeBuckets bool) []float64 {
	curCounters, prevCounters := cur.Counters(), prev.Counters()
	for i := range curCounters {
		dst = append(dst, float64(obs.CounterDelta(curCounters[i].Value, prevCounters[i].Value)))
	}
	for i := 0; i < int(obs.NumHists); i++ {
		d := cur.Hists[i].Delta(prev.Hists[i])
		dst = append(dst,
			float64(d.Count),
			float64(d.SumNs),
			float64(cur.Hists[i].P50()),
			float64(cur.Hists[i].P95()),
			float64(cur.Hists[i].P99()),
			float64(cur.Hists[i].MaxNs),
		)
		if includeBuckets {
			for b := 0; b < obs.HistBuckets; b++ {
				dst = append(dst, float64(d.Buckets[b]))
			}
		}
	}
	return dst
}
