package metricstore

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// TestSnapshotRoundTrip serializes a store mid-life (sealed windows
// plus a partial hot tail) and checks the restored store answers Raw
// and Query bit-identically to the original.
func TestSnapshotRoundTrip(t *testing.T) {
	seq := genSeq(3, 150, 25_000, -1)
	st, _ := feed(t, seq, Options{WindowSamples: 64, HistogramBuckets: true})

	var buf bytes.Buffer
	n, err := st.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadStore(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	ss, bs := st.Stats(), back.Stats()
	if bs.Series != ss.Series || bs.SealedWindows != ss.SealedWindows ||
		bs.SealedSamples != ss.SealedSamples || bs.HotSamples != ss.HotSamples ||
		bs.Scrapes != ss.Scrapes || bs.SealedBytes != ss.SealedBytes {
		t.Fatalf("restored stats %+v\n  original %+v", bs, ss)
	}
	if back.Interval() != st.Interval() {
		t.Fatalf("restored interval %v, want %v", back.Interval(), st.Interval())
	}

	for _, m := range []string{"server_requests", "lat_scan_bucket3", "stage_encode_sum_ns"} {
		ts1, v1, err := st.Raw(m)
		if err != nil {
			t.Fatal(err)
		}
		ts2, v2, err := back.Raw(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(ts1) != len(ts2) {
			t.Fatalf("%s: restored %d samples, want %d", m, len(ts2), len(ts1))
		}
		for i := range ts1 {
			if math.Float64bits(ts1[i]) != math.Float64bits(ts2[i]) ||
				math.Float64bits(v1[i]) != math.Float64bits(v2[i]) {
				t.Fatalf("%s: sample %d diverged after round-trip", m, i)
			}
		}
	}

	first, last := seq.ts[0], seq.ts[len(seq.ts)-1]
	for _, agg := range allAggs {
		p1, err := st.Query("vectors_decoded", first, last+1, 500*time.Millisecond, agg)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := back.Query("vectors_decoded", first, last+1, 500*time.Millisecond, agg)
		if err != nil {
			t.Fatal(err)
		}
		diffPoints(t, "roundtrip/"+agg.String(), p1, p2)
	}

	// A second serialization of the restored store is byte-identical:
	// the format has no nondeterminism.
	var buf2 bytes.Buffer
	if _, err := back.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialized snapshot differs from the original bytes")
	}
}

// TestSnapshotCorruption checks every guard: magic, CRC, truncation,
// trailing garbage, and an interior bit flip.
func TestSnapshotCorruption(t *testing.T) {
	seq := genSeq(4, 40, 10_000, -1)
	st, _ := feed(t, seq, Options{WindowSamples: 16})
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadStore(nil); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	bad := append([]byte(nil), good...)
	copy(bad, "NOPE")
	if _, err := ReadStore(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}
	for _, cut := range []int{len(good) - 1, len(good) / 2, 10} {
		if _, err := ReadStore(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad = append(append([]byte(nil), good...), 0)
	if _, err := ReadStore(bad); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// Interior flips must be caught by the CRC, never by a panic.
	for _, pos := range []int{8, 20, len(good) / 3, 2 * len(good) / 3, len(good) - 5} {
		bad = append([]byte(nil), good...)
		bad[pos] ^= 0x40
		if _, err := ReadStore(bad); err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("bit flip at %d: %v", pos, err)
		}
	}
}

// TestRestoredStoreCanResume restores a snapshot and keeps scraping:
// the first post-restore scrape is a "first scrape" (totals, not
// deltas) and the store stays queryable across the seam.
func TestRestoredStoreCanResume(t *testing.T) {
	seq := genSeq(6, 30, 10_000, -1)
	st, _ := feed(t, seq, Options{WindowSamples: 16})
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStore(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	more := genSeq(60, 10, 10_000, -1)
	for j := 0; j < len(more.ts); j++ {
		ts := seq.ts[len(seq.ts)-1] + int64(j+1)*10_000
		back.mu.Lock()
		back.appendLocked(float64(ts), more.snaps[j])
		back.mu.Unlock()
	}
	s := back.Stats()
	if s.Scrapes != int64(len(seq.ts)+len(more.ts)) {
		t.Fatalf("resumed store scrapes = %d, want %d", s.Scrapes, len(seq.ts)+len(more.ts))
	}
	pts, err := back.Query("server_requests", seq.ts[0], s.LatestUs+1, 0, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Count != int64(len(seq.ts)+len(more.ts)) {
		t.Fatalf("resumed query covered %v, want all %d samples", pts, len(seq.ts)+len(more.ts))
	}
}
