// Ref is the uncompressed reference recorder the differential tests
// hold the compressed Store against. It mirrors the Store's window
// discipline exactly — same schema extraction, same seal boundaries,
// same per-(segment, bucket) partial folds merged in time order — but
// keeps every sample in plain float64 slices and never touches the
// ALP writer, reader, or engine pushdown. Any bitwise divergence
// between Store.Query and Ref.Query is therefore introduced by the
// compressed path: an encode/decode round-trip error or a pushdown
// kernel folding in a different order.
//
// Ref never evicts; differential tests that exercise the Store's
// retention budget must query with since >= the Store's earliest
// retained timestamp, which excludes evicted samples on both sides.
package metricstore

import (
	"fmt"
	"time"

	"github.com/goalp/alp/internal/obs"
)

// refSegment is one sealed window's worth of raw samples.
type refSegment struct {
	ts   []float64
	vals [][]float64 // [series][sample]
}

// Ref is the reference recorder. Not safe for concurrent use — it is
// a test oracle, driven in lockstep with the Store under test.
type Ref struct {
	names          []string
	index          map[string]int
	windowSamples  int
	includeBuckets bool

	prev   obs.Snapshot
	sealed []refSegment
	hotTs  []float64
	hot    [][]float64
}

// NewRef builds a reference recorder with the same schema and window
// discipline as a Store built from opts.
func NewRef(opts Options) *Ref {
	opts = opts.withDefaults()
	names := seriesNames(opts.HistogramBuckets)
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	return &Ref{
		names:          names,
		index:          index,
		windowSamples:  opts.WindowSamples,
		includeBuckets: opts.HistogramBuckets,
		hot:            make([][]float64, len(names)),
	}
}

// Scrape records one snapshot at tsUs (unix micros), mirroring
// Store.appendLocked.
func (r *Ref) Scrape(tsUs float64, cur obs.Snapshot) {
	samples := extractSamples(nil, cur, r.prev, r.includeBuckets)
	r.prev = cur
	r.hotTs = append(r.hotTs, tsUs)
	for i := range r.hot {
		r.hot[i] = append(r.hot[i], samples[i])
	}
	if len(r.hotTs) >= r.windowSamples {
		r.seal()
	}
}

// Flush seals the partial tail, mirroring Store.Flush.
func (r *Ref) Flush() {
	if len(r.hotTs) > 0 {
		r.seal()
	}
}

func (r *Ref) seal() {
	seg := refSegment{ts: r.hotTs, vals: make([][]float64, len(r.hot))}
	copy(seg.vals, r.hot)
	r.sealed = append(r.sealed, seg)
	r.hotTs = nil
	for i := range r.hot {
		r.hot[i] = nil
	}
}

// Query aggregates one series with the same segmentation and fold
// order as Store.Query, over raw slices.
func (r *Ref) Query(metric string, sinceUs, untilUs int64, step time.Duration, agg AggKind) ([]Point, error) {
	idx, ok := r.index[metric]
	if !ok {
		return nil, fmt.Errorf("metricstore: unknown metric %q", metric)
	}
	stepUs, err := validateRange(sinceUs, untilUs, step)
	if err != nil {
		return nil, err
	}
	accs := make(map[int64]*bucketAcc)
	for _, seg := range r.sealed {
		foldSpan(accs, seg.ts, seg.vals[idx], 0, len(seg.ts), sinceUs, untilUs, stepUs)
	}
	foldSpan(accs, r.hotTs, r.hot[idx], 0, len(r.hotTs), sinceUs, untilUs, stepUs)
	return finish(accs, sinceUs, stepUs, agg), nil
}
