// Range queries over the metrics history.
//
// Query semantics are defined so that the compressed store and the
// uncompressed reference recorder (ref.go) produce bit-identical
// float64 results, which is what the differential tests assert:
//
//  1. The retained history is an ordered list of segments: each sealed
//     window, oldest first, then the hot tail.
//  2. Per step bucket and per segment, a PARTIAL aggregate is folded
//     in position (= time) order starting from zero.
//  3. A bucket's partials are merged in segment (= time) order:
//     sum += p.sum, count += p.count, min/max compare, last overwrite.
//
// Floating-point addition is not associative, so (2)+(3) is a specific
// summation order — and it is exactly the order the engine's
// filtered-aggregate pushdown uses for a fully-covered sealed window:
// Column.AggRange folds matching values from zero in position order,
// so its partial is bitwise the plain fold the reference performs.
// Sealed windows only partially covered by a bucket decode just the
// touched vectors (Column.ReadVectorInto) and fold the in-range span.
// Values are derived from int64 counters and are therefore never NaN,
// so the (-Inf, +Inf) pushdown predicate matches every sample.
package metricstore

import (
	"fmt"
	"math"
	"sort"
	"time"

	alp "github.com/goalp/alp"
)

// AggKind selects the per-bucket aggregate of a range query.
type AggKind int

const (
	AggSum   AggKind = iota // sum of samples in the bucket
	AggCount                // number of samples in the bucket
	AggMin
	AggMax
	AggAvg  // sum / count
	AggRate // sum / bucket width in seconds (per-second rate of a delta series)
	AggLast // newest sample in the bucket
)

var aggNames = map[string]AggKind{
	"sum": AggSum, "count": AggCount, "min": AggMin, "max": AggMax,
	"avg": AggAvg, "rate": AggRate, "last": AggLast,
}

// ParseAgg maps a query-string agg name to its kind.
func ParseAgg(s string) (AggKind, error) {
	if k, ok := aggNames[s]; ok {
		return k, nil
	}
	return 0, fmt.Errorf("metricstore: unknown agg %q (want sum|count|min|max|avg|rate|last)", s)
}

func (k AggKind) String() string {
	for n, kk := range aggNames {
		if kk == k {
			return n
		}
	}
	return "unknown"
}

// Point is one step bucket of a range query. TsUs is the bucket start
// (unix microseconds); Count is the number of samples aggregated.
// Buckets holding no samples are omitted from results.
type Point struct {
	TsUs  int64
	Value float64
	Count int64
}

// maxQueryBuckets bounds (until-since)/step so a careless query cannot
// ask for an unbounded result set.
const maxQueryBuckets = 1 << 20

// bucketAcc accumulates merged partials for one step bucket.
type bucketAcc struct {
	sum      float64
	count    int64
	min, max float64
	last     float64
}

// partial is one (segment, bucket) fold, computed from zero in
// position order.
type partial struct {
	sum      float64
	count    int64
	min, max float64
	last     float64
}

// merge folds p into the bucket accumulator in segment order.
func (a *bucketAcc) merge(p partial) {
	if p.count == 0 {
		return
	}
	if a.count == 0 {
		a.min, a.max = p.min, p.max
	} else {
		if p.min < a.min {
			a.min = p.min
		}
		if p.max > a.max {
			a.max = p.max
		}
	}
	a.sum += p.sum
	a.count += p.count
	a.last = p.last
}

// foldSpan folds samples [i0, i1) of one segment into accs: per step
// bucket, a partial is accumulated from zero and merged when the
// bucket changes. ts must be non-decreasing across the span.
func foldSpan(accs map[int64]*bucketAcc, ts, vals []float64, i0, i1 int, sinceUs, untilUs, stepUs int64) {
	curBucket := int64(-1)
	var p partial
	flush := func() {
		if p.count > 0 {
			a := accs[curBucket]
			if a == nil {
				a = &bucketAcc{}
				accs[curBucket] = a
			}
			a.merge(p)
		}
		p = partial{}
	}
	for i := i0; i < i1; i++ {
		t := int64(ts[i])
		if t < sinceUs || t >= untilUs {
			continue
		}
		b := (t - sinceUs) / stepUs
		if b != curBucket {
			flush()
			curBucket = b
		}
		v := vals[i]
		p.sum += v
		if p.count == 0 {
			p.min, p.max = v, v
		} else {
			if v < p.min {
				p.min = v
			}
			if v > p.max {
				p.max = v
			}
		}
		p.count++
		p.last = v
	}
	flush()
}

// finish renders the accumulated buckets as sorted points.
func finish(accs map[int64]*bucketAcc, sinceUs, stepUs int64, agg AggKind) []Point {
	keys := make([]int64, 0, len(accs))
	for k := range accs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	pts := make([]Point, 0, len(keys))
	for _, k := range keys {
		a := accs[k]
		pt := Point{TsUs: sinceUs + k*stepUs, Count: a.count}
		switch agg {
		case AggSum:
			pt.Value = a.sum
		case AggCount:
			pt.Value = float64(a.count)
		case AggMin:
			pt.Value = a.min
		case AggMax:
			pt.Value = a.max
		case AggAvg:
			pt.Value = a.sum / float64(a.count)
		case AggRate:
			pt.Value = a.sum / (float64(stepUs) / 1e6)
		case AggLast:
			pt.Value = a.last
		}
		pts = append(pts, pt)
	}
	return pts
}

// validateRange normalizes the query window. step <= 0 means "one
// bucket spanning the whole range".
func validateRange(sinceUs, untilUs int64, step time.Duration) (stepUs int64, err error) {
	if untilUs <= sinceUs {
		return 0, fmt.Errorf("metricstore: empty range [%d, %d)", sinceUs, untilUs)
	}
	stepUs = step.Microseconds()
	if stepUs <= 0 {
		stepUs = untilUs - sinceUs
	}
	if n := (untilUs - sinceUs + stepUs - 1) / stepUs; n > maxQueryBuckets {
		return 0, fmt.Errorf("metricstore: %d buckets exceeds limit %d (increase step)", n, maxQueryBuckets)
	}
	return stepUs, nil
}

// Query aggregates one series over [sinceUs, untilUs) in buckets of
// step, merging sealed windows (engine pushdown for fully-covered
// windows, partial vector decode otherwise) with the hot tail.
func (st *Store) Query(metric string, sinceUs, untilUs int64, step time.Duration, agg AggKind) ([]Point, error) {
	idx, ok := st.index[metric]
	if !ok {
		return nil, fmt.Errorf("metricstore: unknown metric %q", metric)
	}
	stepUs, err := validateRange(sinceUs, untilUs, step)
	if err != nil {
		return nil, err
	}
	wins, hotTs, hotVals := st.snapshotSegments(idx)

	accs := make(map[int64]*bucketAcc)
	for _, w := range wins {
		if int64(w.lastUs) < sinceUs || int64(w.firstUs) >= untilUs {
			continue
		}
		queryWindow(accs, w, idx, sinceUs, untilUs, stepUs, agg)
	}
	foldSpan(accs, hotTs, hotVals, 0, len(hotTs), sinceUs, untilUs, stepUs)
	return finish(accs, sinceUs, stepUs, agg), nil
}

// queryWindow folds one sealed window into accs.
//
// Fast path: when every sample of the window lands in the same step
// bucket and the whole window is inside the query range, the partial
// is exactly Column.AggRange over the full column — the fused
// unpack+compare pushdown kernel, no vector materialization. AggLast
// needs the final sample's value, which the pushdown result does not
// carry, so last-queries always take the decode path.
//
// Slow path: binary-search the decoded timestamp column for the
// in-range span, decode only the vectors that span touches, and fold
// per bucket.
func queryWindow(accs map[int64]*bucketAcc, w *window, idx int, sinceUs, untilUs, stepUs int64, agg AggKind) {
	firstB := (int64(w.firstUs) - sinceUs) / stepUs
	lastB := (int64(w.lastUs) - sinceUs) / stepUs
	if agg != AggLast &&
		int64(w.firstUs) >= sinceUs && int64(w.lastUs) < untilUs && firstB == lastB {
		r := w.cols[idx].AggRange(math.Inf(-1), math.Inf(1))
		a := accs[firstB]
		if a == nil {
			a = &bucketAcc{}
			accs[firstB] = a
		}
		a.merge(partial{sum: r.Sum, count: int64(r.Count), min: r.Min, max: r.Max})
		return
	}

	tsv := w.ts.Values()
	i0 := sort.Search(w.n, func(i int) bool { return int64(tsv[i]) >= sinceUs })
	i1 := sort.Search(w.n, func(i int) bool { return int64(tsv[i]) >= untilUs })
	if i0 >= i1 {
		return
	}
	// Decode only the touched vectors into a window-positioned buffer.
	v0, v1 := i0/alp.VectorSize, (i1-1)/alp.VectorSize
	vals := make([]float64, (v1+1-v0)*alp.VectorSize)
	scratch := make([]int64, alp.VectorSize)
	base := v0 * alp.VectorSize
	for vi := v0; vi <= v1; vi++ {
		if _, err := w.cols[idx].ReadVectorInto(vi, vals[(vi-v0)*alp.VectorSize:], scratch); err != nil {
			// Sealed windows are self-produced; a decode error here is a
			// programming bug, not a runtime condition. Skip the window
			// rather than corrupt the result.
			return
		}
	}
	foldSpan(accs, tsv[base:i1], vals[:i1-base], i0-base, i1-base, sinceUs, untilUs, stepUs)
}
