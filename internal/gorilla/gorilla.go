// Package gorilla implements the Gorilla floating-point compression of
// Pelkonen et al. (VLDB'15), the original XOR-with-previous scheme and
// the baseline every later float codec refines.
//
// Each value is XORed with its predecessor. A zero XOR is one '0' bit.
// Otherwise a '1' bit is followed by either a '0' (the meaningful bits
// fit the previous leading/trailing-zero window) and the windowed bits,
// or a '1', 5 bits of leading-zero count, 6 bits of meaningful-bit
// length and the meaningful bits themselves.
package gorilla

import (
	"math"
	"math/bits"

	"github.com/goalp/alp/internal/bitstream"
)

// maxLeading caps the stored leading-zero count at 31 so it fits the
// 5-bit field, as in the original implementation.
const maxLeading = 31

// Compress encodes src and returns the bit stream.
func Compress(src []float64) []byte {
	w := bitstream.NewWriter(len(src) * 8)
	if len(src) == 0 {
		return w.Bytes()
	}
	prev := math.Float64bits(src[0])
	w.WriteBits(prev, 64)
	prevLead, prevTrail := ^uint(0), uint(0) // invalid window
	for _, v := range src[1:] {
		cur := math.Float64bits(v)
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.WriteBit(0)
			continue
		}
		w.WriteBit(1)
		lead := uint(bits.LeadingZeros64(xor))
		if lead > maxLeading {
			lead = maxLeading
		}
		trail := uint(bits.TrailingZeros64(xor))
		if prevLead != ^uint(0) && lead >= prevLead && trail >= prevTrail {
			// Control bit 0: reuse the previous window.
			w.WriteBit(0)
			w.WriteBits(xor>>prevTrail, 64-prevLead-prevTrail)
		} else {
			// Control bit 1: new window.
			w.WriteBit(1)
			w.WriteBits(uint64(lead), 5)
			meaningful := 64 - lead - trail
			w.WriteBits(uint64(meaningful-1), 6)
			w.WriteBits(xor>>trail, meaningful)
			prevLead, prevTrail = lead, trail
		}
	}
	return w.Bytes()
}

// Decompress decodes len(dst) values from data into dst.
func Decompress(dst []float64, data []byte) error {
	if len(dst) == 0 {
		return nil
	}
	r := bitstream.NewReader(data)
	prev := r.ReadBits(64)
	dst[0] = math.Float64frombits(prev)
	var lead, trail uint
	for i := 1; i < len(dst); i++ {
		if r.ReadBit() == 0 {
			dst[i] = math.Float64frombits(prev)
			continue
		}
		if r.ReadBit() == 0 {
			meaningful := 64 - lead - trail
			xor := r.ReadBits(meaningful) << trail
			prev ^= xor
		} else {
			lead = uint(r.ReadBits(5))
			meaningful := uint(r.ReadBits(6)) + 1
			trail = 64 - lead - meaningful
			xor := r.ReadBits(meaningful) << trail
			prev ^= xor
		}
		dst[i] = math.Float64frombits(prev)
	}
	return r.Err()
}

// Compress32 encodes float32 values with the same scheme scaled to 32
// bits (4-bit leading-zero field capped at 15, 5-bit length field).
func Compress32(src []float32) []byte {
	w := bitstream.NewWriter(len(src) * 4)
	if len(src) == 0 {
		return w.Bytes()
	}
	prev := math.Float32bits(src[0])
	w.WriteBits(uint64(prev), 32)
	prevLead, prevTrail := ^uint(0), uint(0)
	for _, v := range src[1:] {
		cur := math.Float32bits(v)
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.WriteBit(0)
			continue
		}
		w.WriteBit(1)
		lead := uint(bits.LeadingZeros32(xor))
		if lead > 15 {
			lead = 15
		}
		trail := uint(bits.TrailingZeros32(xor))
		if prevLead != ^uint(0) && lead >= prevLead && trail >= prevTrail {
			w.WriteBit(0)
			w.WriteBits(uint64(xor>>prevTrail), 32-prevLead-prevTrail)
		} else {
			w.WriteBit(1)
			w.WriteBits(uint64(lead), 4)
			meaningful := 32 - lead - trail
			w.WriteBits(uint64(meaningful-1), 5)
			w.WriteBits(uint64(xor>>trail), meaningful)
			prevLead, prevTrail = lead, trail
		}
	}
	return w.Bytes()
}

// Decompress32 decodes len(dst) float32 values from data into dst.
func Decompress32(dst []float32, data []byte) error {
	if len(dst) == 0 {
		return nil
	}
	r := bitstream.NewReader(data)
	prev := uint32(r.ReadBits(32))
	dst[0] = math.Float32frombits(prev)
	var lead, trail uint
	for i := 1; i < len(dst); i++ {
		if r.ReadBit() == 0 {
			dst[i] = math.Float32frombits(prev)
			continue
		}
		if r.ReadBit() == 0 {
			meaningful := 32 - lead - trail
			xor := uint32(r.ReadBits(meaningful)) << trail
			prev ^= xor
		} else {
			lead = uint(r.ReadBits(4))
			meaningful := uint(r.ReadBits(5)) + 1
			trail = 32 - lead - meaningful
			xor := uint32(r.ReadBits(meaningful)) << trail
			prev ^= xor
		}
		dst[i] = math.Float32frombits(prev)
	}
	return r.Err()
}
