package gorilla

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []float64) []byte {
	t.Helper()
	data := Compress(src)
	got := make([]float64, len(src))
	if err := Decompress(got, data); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d: got %v (%#x), want %v (%#x)",
				i, got[i], math.Float64bits(got[i]), src[i], math.Float64bits(src[i]))
		}
	}
	return data
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, []float64{1.0, 1.0, 1.5, 2.5, 2.5, 100.25, -3.75})
}

func TestRoundTripEmptyAndSingle(t *testing.T) {
	roundTrip(t, nil)
	roundTrip(t, []float64{42.5})
}

func TestRoundTripSpecials(t *testing.T) {
	roundTrip(t, []float64{
		0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, math.SmallestNonzeroFloat64, -math.Pi,
	})
}

func TestTimeSeriesCompresses(t *testing.T) {
	// A slowly drifting series is Gorilla's home turf: the ratio must be
	// clearly under 64 bits/value.
	r := rand.New(rand.NewSource(1))
	src := make([]float64, 4096)
	v := 20.0
	for i := range src {
		v += math.Round(r.NormFloat64()*10) / 10
		src[i] = v
	}
	data := roundTrip(t, src)
	bits := float64(len(data)*8) / float64(len(src))
	if bits >= 64 {
		t.Fatalf("no compression on time series: %.1f bits/value", bits)
	}
}

func TestRepeatedValuesOneBit(t *testing.T) {
	src := make([]float64, 1024)
	for i := range src {
		src[i] = 7.25
	}
	data := roundTrip(t, src)
	// 64 bits header + ~1 bit per repeat.
	if len(data) > 8+1024/8+1 {
		t.Fatalf("repeats took %d bytes, want ~%d", len(data), 8+1024/8)
	}
}

func TestQuickLossless(t *testing.T) {
	f := func(raw []uint64) bool {
		src := make([]float64, len(raw))
		for i, b := range raw {
			src[i] = math.Float64frombits(b)
		}
		data := Compress(src)
		got := make([]float64, len(src))
		if err := Decompress(got, data); err != nil {
			return false
		}
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLossless32(t *testing.T) {
	f := func(raw []uint32) bool {
		src := make([]float32, len(raw))
		for i, b := range raw {
			src[i] = math.Float32frombits(b)
		}
		data := Compress32(src)
		got := make([]float32, len(src))
		if err := Decompress32(got, data); err != nil {
			return false
		}
		for i := range src {
			if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressTruncated(t *testing.T) {
	src := []float64{1.5, 2.5, 3.5, 4.5}
	data := Compress(src)
	got := make([]float64, len(src))
	if err := Decompress(got, data[:2]); err == nil {
		t.Fatal("want error on truncated stream")
	}
}
