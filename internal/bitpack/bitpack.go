// Package bitpack implements bit-packing of unsigned 64-bit integers at
// any width from 0 to 64 bits, the storage primitive underneath every
// lightweight encoding in this repository (FFOR, Dictionary, RLE, ALP_rd
// and the PDE baseline).
//
// Two implementations coexist:
//
//   - a generic, width-parametric scalar loop (Pack/Unpack), used for
//     partial tail blocks and as the "Scalar" kernel variant in the
//     Figure 4 ablation, and
//   - specialized straight-line kernels for every width (kernels_gen.go,
//     produced by cmd/genbitpack and checked in), processing 64 values
//     per call with constant shifts. These mirror the code shape that
//     FastLanes relies on C++ compilers to auto-vectorize and are the
//     fast path for full blocks.
//
// All kernels take a base value: packing stores v-base and unpacking
// restores v+base, which fuses Frame-Of-Reference into the packing loop
// (the paper's FFOR). Pass base 0 for plain bit-packing.
package bitpack

import "math/bits"

// BlockSize is the number of values processed by one specialized kernel
// call. A 1024-value vector is 16 blocks.
const BlockSize = 64

// Width returns the number of bits needed to represent max.
func Width(max uint64) uint {
	return uint(bits.Len64(max))
}

// WordCount returns the number of 64-bit words needed to store n values
// of w bits each.
func WordCount(n int, w uint) int {
	return (n*int(w) + 63) / 64
}

// mask returns a mask of the w low bits. w must be in [0, 64].
func mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// Pack packs the w low bits of each src[i]-base into dst, little-endian
// within and across words. dst must have at least WordCount(len(src), w)
// words; the words touched are fully overwritten. Any n is accepted:
// full 64-value blocks go through the specialized kernels and the tail
// through the generic loop.
func Pack(dst, src []uint64, w uint, base uint64) {
	if w == 0 {
		return
	}
	n := len(src)
	full := n / BlockSize * BlockSize
	for i := 0; i < full; i += BlockSize {
		packBlock(dst[i/BlockSize*int(w):], (*[BlockSize]uint64)(src[i:i+BlockSize]), w, base)
	}
	if full < n {
		PackGeneric(dst[full/BlockSize*int(w):], src[full:], w, base)
	}
}

// Unpack reverses Pack: it reads len(dst) w-bit values from src and
// stores value+base into dst.
func Unpack(dst, src []uint64, w uint, base uint64) {
	n := len(dst)
	if w == 0 {
		for i := range dst {
			dst[i] = base
		}
		return
	}
	full := n / BlockSize * BlockSize
	for i := 0; i < full; i += BlockSize {
		unpackBlock((*[BlockSize]uint64)(dst[i:i+BlockSize]), src[i/BlockSize*int(w):], w, base)
	}
	if full < n {
		UnpackGeneric(dst[full:], src[full/BlockSize*int(w):], w, base)
	}
}

// PackGeneric is the width-parametric scalar packing loop. It packs
// len(src) values of w bits starting at the beginning of dst. w must be
// in [1, 64].
func PackGeneric(dst, src []uint64, w uint, base uint64) {
	m := mask(w)
	var cur uint64
	var fill uint
	di := 0
	for _, v := range src {
		v = (v - base) & m
		cur |= v << fill
		fill += w
		if fill >= 64 {
			dst[di] = cur
			di++
			fill -= 64
			if fill > 0 {
				cur = v >> (w - fill)
			} else {
				cur = 0
			}
		}
	}
	if fill > 0 {
		dst[di] = cur
	}
}

// UnpackGeneric is the width-parametric scalar unpacking loop. It reads
// len(dst) values of w bits from the beginning of src. w must be in
// [1, 64].
func UnpackGeneric(dst, src []uint64, w uint, base uint64) {
	m := mask(w)
	var fill uint
	si := 0
	for i := range dst {
		var v uint64
		if fill+w <= 64 {
			v = (src[si] >> fill) & m
			fill += w
			if fill == 64 {
				fill = 0
				si++
			}
		} else {
			lo := src[si] >> fill
			si++
			hi := src[si] << (64 - fill)
			v = (lo | hi) & m
			fill = fill + w - 64
		}
		dst[i] = v + base
	}
}

// packBlock packs one 64-value block through the specialized kernel for
// width w.
func packBlock(dst []uint64, src *[BlockSize]uint64, w uint, base uint64) {
	if w == 64 {
		for i, v := range src {
			dst[i] = v - base
		}
		return
	}
	packKernels[w](dst, src, base)
}

// unpackBlock unpacks one 64-value block through the specialized kernel
// for width w.
func unpackBlock(dst *[BlockSize]uint64, src []uint64, w uint, base uint64) {
	if w == 64 {
		for i := range dst {
			dst[i] = src[i] + base
		}
		return
	}
	unpackKernels[w](dst, src, base)
}

// UnpackBlockGeneric exposes the generic loop at block granularity so
// the Figure 4 ablation can time "Scalar" against the specialized
// kernels on identical inputs.
func UnpackBlockGeneric(dst, src []uint64, n int, w uint, base uint64) {
	if w == 0 {
		for i := 0; i < n; i++ {
			dst[i] = base
		}
		return
	}
	UnpackGeneric(dst[:n], src, w, base)
}
