package bitpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomValues(r *rand.Rand, n int, w uint) []uint64 {
	m := mask(w)
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = r.Uint64() & m
	}
	return vs
}

func TestWidth(t *testing.T) {
	cases := []struct {
		max  uint64
		want uint
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
		{1<<52 - 1, 52}, {1 << 52, 53}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := Width(c.max); got != c.want {
			t.Errorf("Width(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestWordCount(t *testing.T) {
	cases := []struct {
		n    int
		w    uint
		want int
	}{
		{0, 13, 0}, {1, 1, 1}, {64, 1, 1}, {65, 1, 2},
		{1024, 3, 48}, {1024, 64, 1024}, {1024, 0, 0}, {1000, 7, 110},
	}
	for _, c := range cases {
		if got := WordCount(c.n, c.w); got != c.want {
			t.Errorf("WordCount(%d, %d) = %d, want %d", c.n, c.w, got, c.want)
		}
	}
}

// TestRoundTripAllWidths packs and unpacks full vectors at every width.
func TestRoundTripAllWidths(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for w := uint(0); w <= 64; w++ {
		src := randomValues(r, 1024, w)
		packed := make([]uint64, WordCount(len(src), w))
		Pack(packed, src, w, 0)
		got := make([]uint64, len(src))
		Unpack(got, packed, w, 0)
		for i := range src {
			if got[i] != src[i] {
				t.Fatalf("width %d: value %d: got %#x, want %#x", w, i, got[i], src[i])
			}
		}
	}
}

// TestRoundTripTail exercises the generic tail path with lengths that are
// not multiples of the block size.
func TestRoundTripTail(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 63, 64, 65, 127, 129, 1000, 1023} {
		for _, w := range []uint{1, 5, 17, 33, 52, 63, 64} {
			src := randomValues(r, n, w)
			packed := make([]uint64, WordCount(n, w))
			Pack(packed, src, w, 0)
			got := make([]uint64, n)
			Unpack(got, packed, w, 0)
			for i := range src {
				if got[i] != src[i] {
					t.Fatalf("n=%d width=%d: value %d: got %#x, want %#x", n, w, i, got[i], src[i])
				}
			}
		}
	}
}

// TestRoundTripWithBase verifies the fused frame-of-reference behaviour:
// packing stores v-base, unpacking restores v.
func TestRoundTripWithBase(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	base := uint64(1 << 40)
	for _, w := range []uint{0, 1, 9, 21, 52} {
		src := randomValues(r, 1024, w)
		for i := range src {
			src[i] += base
		}
		packed := make([]uint64, WordCount(len(src), w))
		Pack(packed, src, w, base)
		got := make([]uint64, len(src))
		Unpack(got, packed, w, base)
		for i := range src {
			if got[i] != src[i] {
				t.Fatalf("width %d: value %d: got %d, want %d", w, i, got[i], src[i])
			}
		}
	}
}

// TestKernelsMatchGeneric cross-checks the generated kernels against the
// generic loops on identical inputs for every width.
func TestKernelsMatchGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for w := uint(1); w < 64; w++ {
		src := randomValues(r, BlockSize, w)
		arr := (*[BlockSize]uint64)(src)

		pk := make([]uint64, WordCount(BlockSize, w))
		packBlock(pk, arr, w, 0)
		pg := make([]uint64, WordCount(BlockSize, w))
		PackGeneric(pg, src, w, 0)
		for i := range pk {
			if pk[i] != pg[i] {
				t.Fatalf("pack width %d: word %d: kernel %#x, generic %#x", w, i, pk[i], pg[i])
			}
		}

		var uk [BlockSize]uint64
		unpackBlock(&uk, pk, w, 0)
		ug := make([]uint64, BlockSize)
		UnpackGeneric(ug, pg, w, 0)
		for i := range uk {
			if uk[i] != ug[i] || uk[i] != src[i] {
				t.Fatalf("unpack width %d: value %d: kernel %#x, generic %#x, want %#x", w, i, uk[i], ug[i], src[i])
			}
		}
	}
}

// TestPackOverflowMasked verifies that values wider than w are truncated
// to their w low bits rather than corrupting neighbours.
func TestPackOverflowMasked(t *testing.T) {
	src := make([]uint64, 64)
	for i := range src {
		src[i] = ^uint64(0) // all ones, wider than any w < 64
	}
	for _, w := range []uint{1, 7, 13} {
		packed := make([]uint64, WordCount(len(src), w))
		Pack(packed, src, w, 0)
		got := make([]uint64, len(src))
		Unpack(got, packed, w, 0)
		want := mask(w)
		for i := range got {
			if got[i] != want {
				t.Fatalf("width %d: value %d: got %#x, want %#x", w, i, got[i], want)
			}
		}
	}
}

func TestUnpackBlockGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	src := randomValues(r, 64, 11)
	packed := make([]uint64, WordCount(64, 11))
	Pack(packed, src, 11, 0)
	got := make([]uint64, 64)
	UnpackBlockGeneric(got, packed, 64, 11, 0)
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("value %d: got %#x, want %#x", i, got[i], src[i])
		}
	}
	UnpackBlockGeneric(got, nil, 64, 0, 7)
	for i := range got {
		if got[i] != 7 {
			t.Fatalf("width 0: value %d: got %d, want 7", i, got[i])
		}
	}
}

// TestQuickRoundTrip is a property test: any values at any width round
// trip through pack/unpack with any base.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint64, w8 uint8, base uint64) bool {
		w := uint(w8 % 65)
		src := make([]uint64, len(raw))
		m := mask(w)
		for i, v := range raw {
			src[i] = base + (v & m)
		}
		packed := make([]uint64, WordCount(len(src), w))
		Pack(packed, src, w, base)
		got := make([]uint64, len(src))
		Unpack(got, packed, w, base)
		for i := range src {
			if got[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnpackKernel(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	src := randomValues(r, 1024, 16)
	packed := make([]uint64, WordCount(1024, 16))
	Pack(packed, src, 16, 0)
	dst := make([]uint64, 1024)
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Unpack(dst, packed, 16, 0)
	}
}

func BenchmarkUnpackGeneric(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	src := randomValues(r, 1024, 16)
	packed := make([]uint64, WordCount(1024, 16))
	Pack(packed, src, 16, 0)
	dst := make([]uint64, 1024)
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnpackGeneric(dst, packed, 16, 0)
	}
}
