// Package alprd implements ALP_rd, the paper's adaptive fallback for
// "real doubles" (§3.4, Algorithm 3): high-precision floating-point data
// that the decimal scheme cannot compress (e.g. the POI datasets, ML
// model weights).
//
// Each value's bit pattern is cut at position p into a left part (the
// front 64-p bits: sign, exponent, and the highest mantissa bits, at
// most 16 bits) and a right part (the low p bits). Right parts are
// bit-packed verbatim at p bits. Left parts exhibit low variance and are
// compressed with a skewed dictionary: a dictionary of at most 8
// 16-bit values chosen by frequency on a row-group sample, with values
// outside the dictionary stored as 16-bit exceptions plus 16-bit
// positions. The cut position p and the dictionary are chosen once per
// row-group by sampling.
package alprd

import (
	"math"
	"sort"

	"github.com/goalp/alp/internal/bitpack"
	"github.com/goalp/alp/internal/obs"
	"github.com/goalp/alp/internal/vector"
)

// Cut-position search range for float64: the left part is at most 16
// bits (p >= 48) and at least 1 bit (p <= 63).
const (
	minRight = 48
	maxRight = 63
)

// MaxDictBits is the largest dictionary code width b: dictionaries hold
// at most 2^3 = 8 entries (§3.4).
const MaxDictBits = 3

// maxExceptionFrac is the exception budget per §3.4: the smallest
// dictionary with at most 10% exceptions is chosen, otherwise the
// largest (b = 3).
const maxExceptionFrac = 0.10

// Encoder holds the per-row-group parameters of ALP_rd: the cut
// position and the left-part dictionary. It is built once per row-group
// by Sample and reused for every vector in it.
type Encoder struct {
	P         uint8    // right-part width in bits
	Dict      []uint16 // left-part dictionary, most frequent first
	CodeWidth uint     // b: bits per dictionary code

	// index maps a left value to code+1 (0 = not in dictionary); a
	// flat table keeps the per-value encode lookup branch-light.
	index []uint16
}

// Vector is one ALP_rd-encoded vector: bit-packed right parts and
// dictionary codes, plus the left-part exceptions.
type Vector struct {
	N          int
	RightWords []uint64
	CodeWords  []uint64
	ExcPos     []uint16
	ExcLeft    []uint16
}

// Sample chooses the cut position p and the dictionary on a row-group
// sample (first-level sampling, §3.2/§3.4): for every candidate p it
// estimates the compressed bits/value — right bits + code bits + the
// exception overhead implied by the dictionary hit rate — and keeps the
// best.
func Sample(values []float64) *Encoder {
	sample := rowGroupSample(values)
	best := &Encoder{}
	bestCost := math.MaxFloat64
	cuts := 0
	for p := minRight; p <= maxRight; p++ {
		enc := buildEncoder(sample, uint8(p))
		cuts++
		cost := enc.estimateBits(sample)
		if cost < bestCost {
			bestCost = cost
			best = enc
		}
	}
	obs.Active().RDSampled(cuts, len(best.Dict))
	return best
}

// rowGroupSample mirrors the decimal scheme's first-level sampling:
// equidistant values from equidistant vectors.
func rowGroupSample(values []float64) []uint64 {
	nv := vector.VectorsIn(len(values))
	nSample := 8
	if nv < nSample {
		nSample = nv
	}
	step := 1
	if nv > nSample {
		step = nv / nSample
	}
	var sample []uint64
	for i := 0; i < nSample; i++ {
		lo, hi := vector.Bounds(i*step, len(values))
		vec := values[lo:hi]
		stride := 1
		if len(vec) > 32 {
			stride = len(vec) / 32
		}
		for j := 0; j < len(vec); j += stride {
			sample = append(sample, math.Float64bits(vec[j]))
		}
	}
	return sample
}

// buildEncoder constructs the dictionary for cut position p from the
// sampled bit patterns: left values are ranked by frequency and the
// smallest dictionary size 2^b with at most 10% exceptions is chosen
// (or b = MaxDictBits if none qualifies).
func buildEncoder(sample []uint64, p uint8) *Encoder {
	freq := make(map[uint16]int, 64)
	for _, bits := range sample {
		freq[uint16(bits>>p)]++
	}
	type lv struct {
		left  uint16
		count int
	}
	ranked := make([]lv, 0, len(freq))
	for l, c := range freq {
		ranked = append(ranked, lv{l, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].left < ranked[j].left
	})

	total := len(sample)
	chosen := MaxDictBits
	for b := 0; b <= MaxDictBits; b++ {
		size := 1 << b
		hits := 0
		for i := 0; i < size && i < len(ranked); i++ {
			hits += ranked[i].count
		}
		if total == 0 || float64(total-hits)/float64(total) <= maxExceptionFrac {
			chosen = b
			break
		}
	}
	size := 1 << chosen
	if size > len(ranked) {
		size = len(ranked)
	}
	e := &Encoder{P: p, CodeWidth: uint(chosen)}
	e.Dict = make([]uint16, size)
	e.index = make([]uint16, 1<<16)
	for i := 0; i < size; i++ {
		e.Dict[i] = ranked[i].left
		e.index[ranked[i].left] = uint16(i) + 1
	}
	return e
}

// estimateBits estimates the per-value compressed size of the sample
// under this encoder.
func (e *Encoder) estimateBits(sample []uint64) float64 {
	if len(sample) == 0 {
		return 64
	}
	exc := 0
	for _, bits := range sample {
		if e.index[uint16(bits>>e.P)] == 0 {
			exc++
		}
	}
	excFrac := float64(exc) / float64(len(sample))
	return float64(e.P) + float64(e.CodeWidth) + excFrac*32 // 16-bit value + 16-bit position
}

// EncodeVector cuts every value of src at p and compresses both parts
// (Algorithm 3, encoding).
func (e *Encoder) EncodeVector(src []float64) Vector {
	n := len(src)
	v := Vector{N: n}
	var rightsArr, codesArr [vector.Size]uint64
	var rights, codes []uint64
	if n <= vector.Size {
		rights, codes = rightsArr[:n], codesArr[:n]
	} else {
		rights = make([]uint64, n)
		codes = make([]uint64, n)
	}
	for i, x := range src {
		bits := math.Float64bits(x)
		left := uint16(bits >> e.P)
		rights[i] = bits & (uint64(1)<<e.P - 1)
		code := e.index[left]
		if code == 0 {
			v.ExcPos = append(v.ExcPos, uint16(i))
			v.ExcLeft = append(v.ExcLeft, left)
			code = 1 // placeholder inside the code width
		}
		codes[i] = uint64(code - 1)
	}
	v.RightWords = make([]uint64, bitpack.WordCount(n, uint(e.P)))
	bitpack.Pack(v.RightWords, rights, uint(e.P), 0)
	v.CodeWords = make([]uint64, bitpack.WordCount(n, e.CodeWidth))
	bitpack.Pack(v.CodeWords, codes, e.CodeWidth, 0)
	return v
}

// DecodeVector reverses EncodeVector (Algorithm 3, decoding): bit-unpack
// codes and right parts, translate codes through the dictionary, patch
// exceptions, and glue left<<p | right.
func (e *Encoder) DecodeVector(v *Vector, dst []float64) {
	n := v.N
	var rightsArr, codesArr, leftsArr [vector.Size]uint64
	var rights, codes, lefts []uint64
	if n <= vector.Size {
		rights, codes, lefts = rightsArr[:n], codesArr[:n], leftsArr[:n]
	} else {
		rights = make([]uint64, n)
		codes = make([]uint64, n)
		lefts = make([]uint64, n)
	}
	bitpack.Unpack(rights, v.RightWords, uint(e.P), 0)
	bitpack.Unpack(codes, v.CodeWords, e.CodeWidth, 0)
	for i, c := range codes {
		if int(c) < len(e.Dict) {
			lefts[i] = uint64(e.Dict[c])
		}
	}
	for k, pos := range v.ExcPos {
		lefts[pos] = uint64(v.ExcLeft[k])
	}
	p := e.P
	for i := range dst {
		dst[i] = math.Float64frombits(lefts[i]<<p | rights[i])
	}
}

// Exceptions returns the number of left-part exceptions in the vector.
func (v *Vector) Exceptions() int { return len(v.ExcPos) }

// SizeBits returns the exact compressed size of the vector in bits,
// given the encoder that produced it.
func (e *Encoder) SizeBits(v *Vector) int {
	return v.N*int(e.P) + v.N*int(e.CodeWidth) + len(v.ExcPos)*32 + 16
}

// HeaderBits is the per-row-group metadata cost: the cut position, the
// code width and the dictionary values.
func (e *Encoder) HeaderBits() int {
	return 8 + 8 + len(e.Dict)*16
}

// NewEncoder reconstructs an Encoder from serialized parameters (the
// decoding side of the format reader).
func NewEncoder(p uint8, codeWidth uint, dict []uint16) *Encoder {
	e := &Encoder{P: p, CodeWidth: codeWidth, Dict: dict}
	e.index = make([]uint16, 1<<16)
	for i, l := range dict {
		e.index[l] = uint16(i) + 1
	}
	return e
}
