package alprd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// poiLike generates full-precision doubles in a narrow range, mimicking
// the POI coordinate datasets (radians) that drove ALP_rd's design.
func poiLike(r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = (r.Float64()*180 - 90) * math.Pi / 180
	}
	return out
}

func roundTrip(t *testing.T, src []float64) (*Encoder, *Vector) {
	t.Helper()
	e := Sample(src)
	v := e.EncodeVector(src)
	got := make([]float64, len(src))
	e.DecodeVector(&v, got)
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d: got %v (%#x), want %v (%#x)",
				i, got[i], math.Float64bits(got[i]), src[i], math.Float64bits(src[i]))
		}
	}
	return e, &v
}

func TestRoundTripPOI(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	src := poiLike(r, 1024)
	e, v := roundTrip(t, src)
	bits := float64(e.SizeBits(v)) / float64(len(src))
	if bits >= 64 {
		t.Fatalf("ALP_rd achieved no compression: %.1f bits/value", bits)
	}
	// The paper reports 55.5 and 56.4 bits/value on POI data; anything
	// meaningfully below 64 and above 48 is the expected regime.
	if bits < 48 {
		t.Logf("unexpectedly good ratio %.1f bits/value", bits)
	}
}

func TestRoundTripSpecials(t *testing.T) {
	src := []float64{
		0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64, math.Pi,
	}
	roundTrip(t, src)
}

func TestCutPosition(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	src := poiLike(r, 4096)
	e := Sample(src)
	if e.P < minRight || e.P > maxRight {
		t.Fatalf("cut position %d outside [%d, %d]", e.P, minRight, maxRight)
	}
	if len(e.Dict) == 0 || len(e.Dict) > 1<<MaxDictBits {
		t.Fatalf("dictionary size %d outside [1, 8]", len(e.Dict))
	}
	if e.CodeWidth > MaxDictBits {
		t.Fatalf("code width %d > %d", e.CodeWidth, MaxDictBits)
	}
}

func TestLowExceptionRateOnClusteredData(t *testing.T) {
	// All values share sign and exponent, so the left parts concentrate
	// on very few distinct values: exceptions must stay within the 10%
	// budget the dictionary was sized for.
	r := rand.New(rand.NewSource(3))
	src := make([]float64, 2048)
	for i := range src {
		src[i] = 1.0 + r.Float64() // exponent fixed at 1023
	}
	e := Sample(src)
	v := e.EncodeVector(src)
	if frac := float64(v.Exceptions()) / float64(v.N); frac > maxExceptionFrac+0.05 {
		t.Fatalf("exception rate %.2f exceeds budget", frac)
	}
	got := make([]float64, len(src))
	e.DecodeVector(&v, got)
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestNewEncoderRebuildsIndex(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	src := poiLike(r, 1024)
	e := Sample(src)
	e2 := NewEncoder(e.P, e.CodeWidth, e.Dict)
	v := e2.EncodeVector(src)
	got := make([]float64, len(src))
	e2.DecodeVector(&v, got)
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d mismatch after encoder rebuild", i)
		}
	}
}

func TestQuickLossless(t *testing.T) {
	f := func(raw []uint64) bool {
		src := make([]float64, len(raw))
		for i, b := range raw {
			src[i] = math.Float64frombits(b)
		}
		e := Sample(src)
		v := e.EncodeVector(src)
		got := make([]float64, len(src))
		e.DecodeVector(&v, got)
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// ---- float32 ----

func weights(r *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(r.NormFloat64() * 0.05)
	}
	return out
}

func TestRoundTrip32Weights(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	src := weights(r, 4096)
	e := Sample32(src)
	var total int
	for off := 0; off < len(src); off += 1024 {
		v := e.EncodeVector(src[off : off+1024])
		got := make([]float32, 1024)
		e.DecodeVector(&v, got)
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(src[off+i]) {
				t.Fatalf("value %d: got %v, want %v", off+i, got[i], src[off+i])
			}
		}
		total += e.SizeBits(&v)
	}
	bits := float64(total) / float64(len(src))
	if bits >= 32 {
		t.Fatalf("ALP_rd-32 achieved no compression on weights: %.1f bits/value", bits)
	}
	// Paper Table 7: ~28 bits/value on model weights.
	if bits > 31 {
		t.Errorf("ratio %.1f bits/value, expected around 28", bits)
	}
}

func TestQuickLossless32(t *testing.T) {
	f := func(raw []uint32) bool {
		src := make([]float32, len(raw))
		for i, b := range raw {
			src[i] = math.Float32frombits(b)
		}
		e := Sample32(src)
		v := e.EncodeVector(src)
		got := make([]float32, len(src))
		e.DecodeVector(&v, got)
		for i := range src {
			if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewEncoder32RebuildsIndex(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	src := weights(r, 1024)
	e := Sample32(src)
	e2 := NewEncoder32(e.P, e.CodeWidth, e.Dict)
	v := e2.EncodeVector(src)
	got := make([]float32, len(src))
	e2.DecodeVector(&v, got)
	for i := range src {
		if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
			t.Fatalf("value %d mismatch after encoder rebuild", i)
		}
	}
}

func BenchmarkEncodeVectorRD(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	src := poiLike(r, 1024)
	e := Sample(src)
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EncodeVector(src)
	}
}

func BenchmarkDecodeVectorRD(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	src := poiLike(r, 1024)
	e := Sample(src)
	v := e.EncodeVector(src)
	dst := make([]float64, 1024)
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DecodeVector(&v, dst)
	}
}
