package alprd

import (
	"math"
	"sort"

	"github.com/goalp/alp/internal/bitpack"
	"github.com/goalp/alp/internal/vector"
)

// ALP_rd for 32-bit floats (§4.4): identical structure with the cut
// position searched so the left part (sign, exponent, top mantissa
// bits) is at most 16 bits of the 32-bit pattern.
const (
	minRight32 = 16
	maxRight32 = 31
)

// Encoder32 holds the per-row-group ALP_rd parameters for float32 data.
type Encoder32 struct {
	P         uint8
	Dict      []uint16
	CodeWidth uint

	index []uint16 // left value -> code+1; 0 = not in dictionary
}

// Vector32 is one ALP_rd-encoded vector of float32 values.
type Vector32 struct {
	N          int
	RightWords []uint64
	CodeWords  []uint64
	ExcPos     []uint16
	ExcLeft    []uint16
}

// Sample32 chooses the cut position and dictionary on a row-group
// sample of float32 values.
func Sample32(values []float32) *Encoder32 {
	sample := rowGroupSample32(values)
	best := &Encoder32{}
	bestCost := math.MaxFloat64
	for p := minRight32; p <= maxRight32; p++ {
		enc := buildEncoder32(sample, uint8(p))
		cost := enc.estimateBits(sample)
		if cost < bestCost {
			bestCost = cost
			best = enc
		}
	}
	return best
}

func rowGroupSample32(values []float32) []uint32 {
	nv := vector.VectorsIn(len(values))
	nSample := 8
	if nv < nSample {
		nSample = nv
	}
	step := 1
	if nv > nSample {
		step = nv / nSample
	}
	var sample []uint32
	for i := 0; i < nSample; i++ {
		lo, hi := vector.Bounds(i*step, len(values))
		vec := values[lo:hi]
		stride := 1
		if len(vec) > 32 {
			stride = len(vec) / 32
		}
		for j := 0; j < len(vec); j += stride {
			sample = append(sample, math.Float32bits(vec[j]))
		}
	}
	return sample
}

func buildEncoder32(sample []uint32, p uint8) *Encoder32 {
	freq := make(map[uint16]int, 64)
	for _, bits := range sample {
		freq[uint16(bits>>p)]++
	}
	type lv struct {
		left  uint16
		count int
	}
	ranked := make([]lv, 0, len(freq))
	for l, c := range freq {
		ranked = append(ranked, lv{l, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].left < ranked[j].left
	})
	total := len(sample)
	chosen := MaxDictBits
	for b := 0; b <= MaxDictBits; b++ {
		size := 1 << b
		hits := 0
		for i := 0; i < size && i < len(ranked); i++ {
			hits += ranked[i].count
		}
		if total == 0 || float64(total-hits)/float64(total) <= maxExceptionFrac {
			chosen = b
			break
		}
	}
	size := 1 << chosen
	if size > len(ranked) {
		size = len(ranked)
	}
	e := &Encoder32{P: p, CodeWidth: uint(chosen)}
	e.Dict = make([]uint16, size)
	e.index = make([]uint16, 1<<16)
	for i := 0; i < size; i++ {
		e.Dict[i] = ranked[i].left
		e.index[ranked[i].left] = uint16(i) + 1
	}
	return e
}

func (e *Encoder32) estimateBits(sample []uint32) float64 {
	if len(sample) == 0 {
		return 32
	}
	exc := 0
	for _, bits := range sample {
		if e.index[uint16(bits>>e.P)] == 0 {
			exc++
		}
	}
	excFrac := float64(exc) / float64(len(sample))
	return float64(e.P) + float64(e.CodeWidth) + excFrac*32
}

// EncodeVector cuts every float32 of src at p and compresses both parts.
func (e *Encoder32) EncodeVector(src []float32) Vector32 {
	n := len(src)
	v := Vector32{N: n}
	var rightsArr, codesArr [vector.Size]uint64
	var rights, codes []uint64
	if n <= vector.Size {
		rights, codes = rightsArr[:n], codesArr[:n]
	} else {
		rights = make([]uint64, n)
		codes = make([]uint64, n)
	}
	for i, x := range src {
		bits := math.Float32bits(x)
		left := uint16(bits >> e.P)
		rights[i] = uint64(bits) & (uint64(1)<<e.P - 1)
		code := e.index[left]
		if code == 0 {
			v.ExcPos = append(v.ExcPos, uint16(i))
			v.ExcLeft = append(v.ExcLeft, left)
			code = 1 // placeholder inside the code width
		}
		codes[i] = uint64(code - 1)
	}
	v.RightWords = make([]uint64, bitpack.WordCount(n, uint(e.P)))
	bitpack.Pack(v.RightWords, rights, uint(e.P), 0)
	v.CodeWords = make([]uint64, bitpack.WordCount(n, e.CodeWidth))
	bitpack.Pack(v.CodeWords, codes, e.CodeWidth, 0)
	return v
}

// DecodeVector reverses EncodeVector.
func (e *Encoder32) DecodeVector(v *Vector32, dst []float32) {
	n := v.N
	var rightsArr, codesArr [vector.Size]uint64
	var leftsArr [vector.Size]uint32
	var rights, codes []uint64
	var lefts []uint32
	if n <= vector.Size {
		rights, codes, lefts = rightsArr[:n], codesArr[:n], leftsArr[:n]
	} else {
		rights = make([]uint64, n)
		codes = make([]uint64, n)
		lefts = make([]uint32, n)
	}
	bitpack.Unpack(rights, v.RightWords, uint(e.P), 0)
	bitpack.Unpack(codes, v.CodeWords, e.CodeWidth, 0)
	for i, c := range codes {
		if int(c) < len(e.Dict) {
			lefts[i] = uint32(e.Dict[c])
		}
	}
	for k, pos := range v.ExcPos {
		lefts[pos] = uint32(v.ExcLeft[k])
	}
	p := e.P
	for i := range dst {
		dst[i] = math.Float32frombits(lefts[i]<<p | uint32(rights[i]))
	}
}

// Exceptions returns the number of left-part exceptions in the vector.
func (v *Vector32) Exceptions() int { return len(v.ExcPos) }

// SizeBits returns the exact compressed size of the vector in bits.
func (e *Encoder32) SizeBits(v *Vector32) int {
	return v.N*int(e.P) + v.N*int(e.CodeWidth) + len(v.ExcPos)*32 + 16
}

// HeaderBits is the per-row-group metadata cost.
func (e *Encoder32) HeaderBits() int {
	return 8 + 8 + len(e.Dict)*16
}

// NewEncoder32 reconstructs an Encoder32 from serialized parameters.
func NewEncoder32(p uint8, codeWidth uint, dict []uint16) *Encoder32 {
	e := &Encoder32{P: p, CodeWidth: codeWidth, Dict: dict}
	e.index = make([]uint16, 1<<16)
	for i, l := range dict {
		e.index[l] = uint16(i) + 1
	}
	return e
}
