// Package obs is the codec-wide observability substrate: a
// zero-dependency set of atomic counters that the encoder, the format
// layer and the scan engine report into, so every adaptive decision ALP
// makes at runtime — scheme selection per row-group, second-stage
// sampling effort per vector, exception patching, zone-map skipping,
// morsel claiming — is visible without a debugger.
//
// The design contract is the nil-safe collector pattern: every method
// on *Collector is a no-op when the receiver is nil, so instrumented
// hot paths pay exactly one predictable, well-predicted branch when
// metrics are disabled. Call sites never guard with `if enabled`; they
// just call methods on a possibly-nil pointer:
//
//	o := obs.Active()          // nil when collection is disabled
//	...
//	o.VectorDecoded(n, 0)      // no-op on nil, atomic adds otherwise
//
// All counters are atomics, so a single Collector can be shared by
// every goroutine of a morsel-parallel scan and read concurrently via
// Snapshot without stopping the world.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// MaxBitWidth is the largest FFOR bit width tracked by the per-width
// histogram (float64 integers pack at 0..64 bits).
const MaxBitWidth = 64

// Collector accumulates codec metrics on atomic counters. The zero
// value is ready for use; a nil *Collector is also valid and turns
// every method into a cheap no-op.
type Collector struct {
	// Encode side.
	rowGroupsALP   atomic.Int64 // row-groups encoded with the decimal scheme
	rowGroupsRD    atomic.Int64 // row-groups that fell back to ALP_rd
	vectorsEncoded atomic.Int64 // vectors encoded (both schemes)
	encExceptions  atomic.Int64 // exception slots written during encode
	encNs          atomic.Int64 // wall ns spent in row-group encoding
	encValues      atomic.Int64 // values encoded

	// Second-stage sampling (per-vector (e,f) choice, §3.2).
	secondStageSkips atomic.Int64 // vectors where sampling was skipped (1 candidate)
	secondStageEarly atomic.Int64 // vectors where the greedy search exited early
	secondStageTried atomic.Int64 // candidate combinations evaluated in total
	rdCutsTried      atomic.Int64 // ALP_rd cut positions evaluated during sampling
	rdDictEntries    atomic.Int64 // ALP_rd dictionary entries chosen
	bitWidthHist     [MaxBitWidth + 1]atomic.Int64
	rdSampledGroups  atomic.Int64 // row-groups that ran ALP_rd sampling

	// Decode / scan side.
	vectorsDecoded atomic.Int64 // vectors decompressed (any access path)
	vectorsSkipped atomic.Int64 // vectors skipped by zone-map push-down
	decNs          atomic.Int64 // wall ns spent decompressing vectors
	decValues      atomic.Int64 // values decompressed
	rangeScans     atomic.Int64 // SumRange scans executed
	morselClaims   atomic.Int64 // partitions claimed by scan workers
	scanWorkers    atomic.Int64 // worker goroutines launched by the engine

	// Encoded-domain predicate pushdown.
	pushdownVectors   atomic.Int64 // vectors filtered by the fused unpack+compare kernel
	pushdownFallbacks atomic.Int64 // vectors that fell back to decode-then-filter
	selectedRows      atomic.Int64 // rows that qualified under a pushed-down predicate

	// Encode/decode pipeline (internal/pipeline worker pool).
	pipelineWorkers atomic.Int64 // workers spawned by the codec pipeline
	pipelineClaims  atomic.Int64 // row-groups claimed by pipeline workers
	pipelineStalls  atomic.Int64 // submissions that blocked on a full window

	// Column service (internal/server).
	serverRequests atomic.Int64 // HTTP requests admitted by the service
	serverSheds    atomic.Int64 // requests shed with 429 by the concurrency limiter
	serverRefused  atomic.Int64 // requests refused with 503 while draining
	serverBytesIn  atomic.Int64 // request payload bytes read (ingest)
	serverBytesOut atomic.Int64 // response payload bytes written
	serverScans    atomic.Int64 // scan/agg/count requests served

	// Selection-aware scan wire format.
	scanFramesDense    atomic.Int64 // frames shipped as envelope + bitmap
	scanFramesRepacked atomic.Int64 // frames shipped as re-packed ALP vectors
	scanFramesRaw      atomic.Int64 // frames that fell back to raw float64s
	scanBytesSaved     atomic.Int64 // raw-encoding bytes minus actual wire bytes

	// Scatter-gather coordinator (internal/cluster).
	clusterScatters   atomic.Int64 // scatter fan-outs executed (one per clustered query)
	clusterCalls      atomic.Int64 // backend calls issued by scatters
	clusterFailovers  atomic.Int64 // row-group groups re-fetched from a replica
	clusterPartial    atomic.Int64 // queries failed typed partial-unavailable
	clusterStragglers atomic.Int64 // scatters whose slowest backend dominated (see ClusterStraggler)
	clusterRebalances atomic.Int64 // row-group range moves completed

	// Latency histograms: per server endpoint and per engine stage.
	// Durations live here (mergeable distributions with quantiles);
	// the counters above stay monotonic event counts. The old
	// server_scan_ns aggregate was retired in favor of the endpoint
	// histograms, which cover every endpoint symmetrically.
	hists [NumHists]Histogram
}

// ---- encode-side hooks ----

// RowGroup records the scheme chosen for one row-group.
func (c *Collector) RowGroup(usedRD bool) {
	if c == nil {
		return
	}
	if usedRD {
		c.rowGroupsRD.Add(1)
	} else {
		c.rowGroupsALP.Add(1)
	}
}

// VectorEncoded records one encoded vector: its value count, its
// exception count, and (for the decimal scheme) its FFOR bit width,
// which feeds the bit-width histogram. Pass width > MaxBitWidth (e.g.
// WidthNone) to leave the histogram untouched.
func (c *Collector) VectorEncoded(values, exceptions int, width uint) {
	if c == nil {
		return
	}
	c.vectorsEncoded.Add(1)
	c.encExceptions.Add(int64(exceptions))
	if width <= MaxBitWidth {
		c.bitWidthHist[width].Add(1)
	}
}

// WidthNone is a sentinel bit width for vectors without an FFOR payload
// (ALP_rd vectors); it keeps them out of the bit-width histogram.
const WidthNone = MaxBitWidth + 1

// EncodeTime records ns wall time spent encoding values.
func (c *Collector) EncodeTime(ns int64, values int) {
	if c == nil {
		return
	}
	c.encNs.Add(ns)
	c.encValues.Add(int64(values))
}

// SecondStageSkipped records a vector whose (e,f) choice needed no
// sampling because first-level sampling produced a single candidate.
func (c *Collector) SecondStageSkipped() {
	if c == nil {
		return
	}
	c.secondStageSkips.Add(1)
}

// SecondStage records one second-level sampling run: how many candidate
// combinations were evaluated and whether the greedy search exited
// before exhausting the candidate list.
func (c *Collector) SecondStage(tried int, early bool) {
	if c == nil {
		return
	}
	c.secondStageTried.Add(int64(tried))
	if early {
		c.secondStageEarly.Add(1)
	}
}

// RDSampled records one ALP_rd first-level sampling run: the number of
// cut positions evaluated and the dictionary size chosen.
func (c *Collector) RDSampled(cutsTried, dictEntries int) {
	if c == nil {
		return
	}
	c.rdSampledGroups.Add(1)
	c.rdCutsTried.Add(int64(cutsTried))
	c.rdDictEntries.Add(int64(dictEntries))
}

// ---- decode/scan-side hooks ----

// VectorDecoded records one decompressed vector of n values taking ns
// wall time (pass 0 ns when the caller does not time the decode).
func (c *Collector) VectorDecoded(n int, ns int64) {
	if c == nil {
		return
	}
	c.vectorsDecoded.Add(1)
	c.decValues.Add(int64(n))
	c.decNs.Add(ns)
}

// VectorsSkipped records n vectors pruned by zone-map push-down without
// touching their bytes.
func (c *Collector) VectorsSkipped(n int) {
	if c == nil {
		return
	}
	c.vectorsSkipped.Add(int64(n))
}

// RangeScan records one zone-map range scan (SumRange).
func (c *Collector) RangeScan() {
	if c == nil {
		return
	}
	c.rangeScans.Add(1)
}

// PushdownVector records one vector whose range predicate was
// evaluated in the encoded-integer domain by the fused unpack+compare
// kernel, without decoding to floats.
func (c *Collector) PushdownVector() {
	if c == nil {
		return
	}
	c.pushdownVectors.Add(1)
}

// PushdownFallback records one vector that could not be filtered in
// the encoded domain (ALP_rd or baseline partitions) and was decoded
// and filtered in the float domain instead.
func (c *Collector) PushdownFallback() {
	if c == nil {
		return
	}
	c.pushdownFallbacks.Add(1)
}

// RowsSelected records n rows qualifying under a filtered scan.
func (c *Collector) RowsSelected(n int) {
	if c == nil {
		return
	}
	c.selectedRows.Add(int64(n))
}

// ScanBatch accumulates the per-vector pushdown counters of one scan
// loop in plain locals. Filtered scans visit thousands of ~µs vectors
// per request; recording three atomic counters per vector is a
// measurable tax on that path, so the loops fold results into a batch
// and flush once per partition — same totals, amortized cost.
type ScanBatch struct {
	Pushdown  int64 // vectors answered in the encoded-integer domain
	Fallbacks int64 // vectors decoded and filtered in the float domain
	Rows      int64 // rows selected
}

// Vector folds one FilterVector/FilterGatherVector result into the
// batch.
func (b *ScanBatch) Vector(count int, pushdown bool) {
	if pushdown {
		b.Pushdown++
	} else {
		b.Fallbacks++
	}
	b.Rows += int64(count)
}

// FlushScanBatch adds the batch to the counters and zeroes it, so one
// batch can be reused across partitions. No-op on a nil collector (the
// batch is still zeroed) or an empty batch.
func (c *Collector) FlushScanBatch(b *ScanBatch) {
	if c != nil {
		if b.Pushdown != 0 {
			c.pushdownVectors.Add(b.Pushdown)
		}
		if b.Fallbacks != 0 {
			c.pushdownFallbacks.Add(b.Fallbacks)
		}
		if b.Rows != 0 {
			c.selectedRows.Add(b.Rows)
		}
	}
	*b = ScanBatch{}
}

// MorselClaim records one partition claimed by a scan worker.
func (c *Collector) MorselClaim() {
	if c == nil {
		return
	}
	c.morselClaims.Add(1)
}

// ScanWorkers records n worker goroutines launched for a scan.
func (c *Collector) ScanWorkers(n int) {
	if c == nil {
		return
	}
	c.scanWorkers.Add(int64(n))
}

// ---- pipeline hooks ----

// PipelineWorkers records n worker goroutines spawned by the
// encode/decode pipeline.
func (c *Collector) PipelineWorkers(n int) {
	if c == nil {
		return
	}
	c.pipelineWorkers.Add(int64(n))
}

// PipelineClaim records one row-group claimed by a pipeline worker.
func (c *Collector) PipelineClaim() {
	if c == nil {
		return
	}
	c.pipelineClaims.Add(1)
}

// PipelineStall records one submission that found the bounded in-flight
// window full and had to block — back-pressure from encode workers
// slower than the producer.
func (c *Collector) PipelineStall() {
	if c == nil {
		return
	}
	c.pipelineStalls.Add(1)
}

// ---- column-service hooks ----

// ServerRequest records one HTTP request admitted past the service's
// concurrency limiter.
func (c *Collector) ServerRequest() {
	if c == nil {
		return
	}
	c.serverRequests.Add(1)
}

// ServerShed records one request shed with 429 because the concurrency
// limiter was saturated.
func (c *Collector) ServerShed() {
	if c == nil {
		return
	}
	c.serverSheds.Add(1)
}

// ServerRefused records one request refused with 503 while the service
// was draining for shutdown.
func (c *Collector) ServerRefused() {
	if c == nil {
		return
	}
	c.serverRefused.Add(1)
}

// ServerBytesIn records n request payload bytes read by the service.
func (c *Collector) ServerBytesIn(n int64) {
	if c == nil {
		return
	}
	c.serverBytesIn.Add(n)
}

// ServerBytesOut records n response payload bytes written by the
// service.
func (c *Collector) ServerBytesOut(n int64) {
	if c == nil {
		return
	}
	c.serverBytesOut.Add(n)
}

// ServerScanned records one served scan/agg/count request. Durations
// are no longer folded into a counter here — the per-endpoint latency
// histograms (Observe with HistAgg/HistCount/HistScan) carry them.
// ---- scatter-gather coordinator hooks ----

// ClusterScatter records one clustered query's fan-out: the number of
// distinct backends the query scattered to lands in the
// HistClusterFanout width histogram.
func (c *Collector) ClusterScatter(fanout int) {
	if c == nil {
		return
	}
	c.clusterScatters.Add(1)
	c.hists[HistClusterFanout].Record(int64(fanout))
}

// ClusterCall records one backend call issued by a scatter.
func (c *Collector) ClusterCall() {
	if c == nil {
		return
	}
	c.clusterCalls.Add(1)
}

// ClusterFailover records a group of row-groups re-fetched from a
// replica after their chosen backend failed.
func (c *Collector) ClusterFailover() {
	if c == nil {
		return
	}
	c.clusterFailovers.Add(1)
}

// ClusterPartialUnavailable records a clustered query that failed with
// the typed partial-unavailability error: some row-groups had no
// answering replica, and the coordinator refused to serve a silent
// partial result.
func (c *Collector) ClusterPartialUnavailable() {
	if c == nil {
		return
	}
	c.clusterPartial.Add(1)
}

// ClusterStraggler records a scatter whose slowest backend took more
// than twice the fastest — the signal for a shard that drags every
// fan-out behind it.
func (c *Collector) ClusterStraggler() {
	if c == nil {
		return
	}
	c.clusterStragglers.Add(1)
}

// ClusterRebalance records one completed row-group range move.
func (c *Collector) ClusterRebalance() {
	if c == nil {
		return
	}
	c.clusterRebalances.Add(1)
}

func (c *Collector) ServerScanned() {
	if c == nil {
		return
	}
	c.serverScans.Add(1)
}

// ScanFrames records one scan request's wire-frame mix: how many frames
// went out under each encoding, and the bytes the compressed encodings
// saved against the raw-float64 floor (raw cost of every selected row
// minus the actual frame bytes, framing included; raw frames contribute
// their own overhead as negative savings). Batched per request like
// ScanBatch — one call per served scan, not per vector.
func (c *Collector) ScanFrames(dense, repacked, raw, bytesSaved int64) {
	if c == nil {
		return
	}
	if dense != 0 {
		c.scanFramesDense.Add(dense)
	}
	if repacked != 0 {
		c.scanFramesRepacked.Add(repacked)
	}
	if raw != 0 {
		c.scanFramesRaw.Add(raw)
	}
	if bytesSaved != 0 {
		c.scanBytesSaved.Add(bytesSaved)
	}
}

// ---- snapshot ----

// Snapshot is a point-in-time copy of every counter, safe to read,
// compare and serialize. Field names are stable: they are the public
// metric names surfaced through alp.Stats and expvar.
type Snapshot struct {
	RowGroupsALP     int64
	RowGroupsRD      int64
	VectorsEncoded   int64
	EncodeExceptions int64
	EncodeNs         int64
	EncodeValues     int64

	SecondStageSkips      int64
	SecondStageEarlyExits int64
	SecondStageTried      int64
	RDSampledRowGroups    int64
	RDCutsTried           int64
	RDDictEntries         int64
	BitWidthHist          [MaxBitWidth + 1]int64

	VectorsDecoded int64
	VectorsSkipped int64
	DecodeNs       int64
	DecodeValues   int64
	RangeScans     int64
	MorselClaims   int64
	ScanWorkers    int64

	PushdownVectors   int64
	PushdownFallbacks int64
	SelectedRows      int64

	PipelineWorkers int64
	PipelineClaims  int64
	PipelineStalls  int64

	ServerRequests int64
	ServerSheds    int64
	ServerRefused  int64
	ServerBytesIn  int64
	ServerBytesOut int64
	ServerScans    int64

	ScanFramesDense    int64
	ScanFramesRepacked int64
	ScanFramesRaw      int64
	ScanBytesSaved     int64

	ClusterScatters   int64
	ClusterCalls      int64
	ClusterFailovers  int64
	ClusterPartial    int64
	ClusterStragglers int64
	ClusterRebalances int64

	// Hists[id] is the snapshot of latency histogram id (see HistID).
	Hists [NumHists]HistSnapshot
}

// Snapshot copies the counters. A nil Collector yields a zero Snapshot.
func (c *Collector) Snapshot() Snapshot {
	var s Snapshot
	if c == nil {
		return s
	}
	s.RowGroupsALP = c.rowGroupsALP.Load()
	s.RowGroupsRD = c.rowGroupsRD.Load()
	s.VectorsEncoded = c.vectorsEncoded.Load()
	s.EncodeExceptions = c.encExceptions.Load()
	s.EncodeNs = c.encNs.Load()
	s.EncodeValues = c.encValues.Load()
	s.SecondStageSkips = c.secondStageSkips.Load()
	s.SecondStageEarlyExits = c.secondStageEarly.Load()
	s.SecondStageTried = c.secondStageTried.Load()
	s.RDSampledRowGroups = c.rdSampledGroups.Load()
	s.RDCutsTried = c.rdCutsTried.Load()
	s.RDDictEntries = c.rdDictEntries.Load()
	for i := range s.BitWidthHist {
		s.BitWidthHist[i] = c.bitWidthHist[i].Load()
	}
	s.VectorsDecoded = c.vectorsDecoded.Load()
	s.VectorsSkipped = c.vectorsSkipped.Load()
	s.DecodeNs = c.decNs.Load()
	s.DecodeValues = c.decValues.Load()
	s.RangeScans = c.rangeScans.Load()
	s.MorselClaims = c.morselClaims.Load()
	s.ScanWorkers = c.scanWorkers.Load()
	s.PushdownVectors = c.pushdownVectors.Load()
	s.PushdownFallbacks = c.pushdownFallbacks.Load()
	s.SelectedRows = c.selectedRows.Load()
	s.PipelineWorkers = c.pipelineWorkers.Load()
	s.PipelineClaims = c.pipelineClaims.Load()
	s.PipelineStalls = c.pipelineStalls.Load()
	s.ServerRequests = c.serverRequests.Load()
	s.ServerSheds = c.serverSheds.Load()
	s.ServerRefused = c.serverRefused.Load()
	s.ServerBytesIn = c.serverBytesIn.Load()
	s.ServerBytesOut = c.serverBytesOut.Load()
	s.ServerScans = c.serverScans.Load()
	s.ScanFramesDense = c.scanFramesDense.Load()
	s.ScanFramesRepacked = c.scanFramesRepacked.Load()
	s.ScanFramesRaw = c.scanFramesRaw.Load()
	s.ScanBytesSaved = c.scanBytesSaved.Load()
	s.ClusterScatters = c.clusterScatters.Load()
	s.ClusterCalls = c.clusterCalls.Load()
	s.ClusterFailovers = c.clusterFailovers.Load()
	s.ClusterPartial = c.clusterPartial.Load()
	s.ClusterStragglers = c.clusterStragglers.Load()
	s.ClusterRebalances = c.clusterRebalances.Load()
	for i := range s.Hists {
		s.Hists[i] = c.hists[i].Snapshot()
	}
	return s
}

// Reset zeroes every counter. No-op on nil.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.rowGroupsALP.Store(0)
	c.rowGroupsRD.Store(0)
	c.vectorsEncoded.Store(0)
	c.encExceptions.Store(0)
	c.encNs.Store(0)
	c.encValues.Store(0)
	c.secondStageSkips.Store(0)
	c.secondStageEarly.Store(0)
	c.secondStageTried.Store(0)
	c.rdSampledGroups.Store(0)
	c.rdCutsTried.Store(0)
	c.rdDictEntries.Store(0)
	for i := range c.bitWidthHist {
		c.bitWidthHist[i].Store(0)
	}
	c.vectorsDecoded.Store(0)
	c.vectorsSkipped.Store(0)
	c.decNs.Store(0)
	c.decValues.Store(0)
	c.rangeScans.Store(0)
	c.morselClaims.Store(0)
	c.scanWorkers.Store(0)
	c.pushdownVectors.Store(0)
	c.pushdownFallbacks.Store(0)
	c.selectedRows.Store(0)
	c.pipelineWorkers.Store(0)
	c.pipelineClaims.Store(0)
	c.pipelineStalls.Store(0)
	c.serverRequests.Store(0)
	c.serverSheds.Store(0)
	c.serverRefused.Store(0)
	c.serverBytesIn.Store(0)
	c.serverBytesOut.Store(0)
	c.serverScans.Store(0)
	c.scanFramesDense.Store(0)
	c.scanFramesRepacked.Store(0)
	c.scanFramesRaw.Store(0)
	c.scanBytesSaved.Store(0)
	c.clusterScatters.Store(0)
	c.clusterCalls.Store(0)
	c.clusterFailovers.Store(0)
	c.clusterPartial.Store(0)
	c.clusterStragglers.Store(0)
	c.clusterRebalances.Store(0)
	for i := range c.hists {
		c.hists[i].reset()
	}
}

// EncodeNsPerValue returns the average encode cost in ns/value.
func (s Snapshot) EncodeNsPerValue() float64 {
	if s.EncodeValues == 0 {
		return 0
	}
	return float64(s.EncodeNs) / float64(s.EncodeValues)
}

// DecodeNsPerValue returns the average decode cost in ns/value.
func (s Snapshot) DecodeNsPerValue() float64 {
	if s.DecodeValues == 0 {
		return 0
	}
	return float64(s.DecodeNs) / float64(s.DecodeValues)
}

// SkipRate returns the fraction of scan vectors pruned by zone maps.
func (s Snapshot) SkipRate() float64 {
	total := s.VectorsDecoded + s.VectorsSkipped
	if total == 0 {
		return 0
	}
	return float64(s.VectorsSkipped) / float64(total)
}

// Metric is one flat metric: a stable name and its current value. The
// names are the public keys surfaced through /metrics and the series
// names the metrics-history recorder stores.
type Metric struct {
	Name  string
	Value int64
}

// Counters returns every scalar counter of the snapshot as a flat
// name/value list, in declaration order. This is the single source of
// truth for the counter schema: the JSON rendering, the Prometheus
// exposition and the metrics-history recorder all derive their key
// sets from it, so a counter added here shows up everywhere.
func (s Snapshot) Counters() []Metric {
	return []Metric{
		{"row_groups_alp", s.RowGroupsALP},
		{"row_groups_rd", s.RowGroupsRD},
		{"vectors_encoded", s.VectorsEncoded},
		{"encode_exceptions", s.EncodeExceptions},
		{"encode_ns", s.EncodeNs},
		{"encode_values", s.EncodeValues},
		{"second_stage_skips", s.SecondStageSkips},
		{"second_stage_early_exits", s.SecondStageEarlyExits},
		{"second_stage_tried", s.SecondStageTried},
		{"rd_sampled_row_groups", s.RDSampledRowGroups},
		{"rd_cuts_tried", s.RDCutsTried},
		{"rd_dict_entries", s.RDDictEntries},
		{"vectors_decoded", s.VectorsDecoded},
		{"vectors_skipped", s.VectorsSkipped},
		{"decode_ns", s.DecodeNs},
		{"decode_values", s.DecodeValues},
		{"range_scans", s.RangeScans},
		{"morsel_claims", s.MorselClaims},
		{"scan_workers", s.ScanWorkers},
		{"pushdown_vectors", s.PushdownVectors},
		{"pushdown_fallbacks", s.PushdownFallbacks},
		{"selected_rows", s.SelectedRows},
		{"pipeline_workers", s.PipelineWorkers},
		{"pipeline_claims", s.PipelineClaims},
		{"pipeline_stalls", s.PipelineStalls},
		{"server_requests", s.ServerRequests},
		{"server_sheds", s.ServerSheds},
		{"server_refused", s.ServerRefused},
		{"server_bytes_in", s.ServerBytesIn},
		{"server_bytes_out", s.ServerBytesOut},
		{"server_scans", s.ServerScans},
		{"scan_frames_dense", s.ScanFramesDense},
		{"scan_frames_repacked", s.ScanFramesRepacked},
		{"scan_frames_raw", s.ScanFramesRaw},
		{"scan_bytes_saved", s.ScanBytesSaved},
		{"cluster_scatters", s.ClusterScatters},
		{"cluster_backend_calls", s.ClusterCalls},
		{"cluster_failovers", s.ClusterFailovers},
		{"cluster_partial_unavailable", s.ClusterPartial},
		{"cluster_stragglers", s.ClusterStragglers},
		{"cluster_rebalances", s.ClusterRebalances},
	}
}

// CounterDelta returns the increase of a monotonic counter between two
// scrapes, treating a decrease as a counter reset: the collector was
// reset (or the process restarted) between reads, so the previous
// total no longer applies and the whole new total is the delta.
func CounterDelta(cur, prev int64) int64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}

// Extra is one additional JSON key spliced into a snapshot rendering —
// the value must already be valid JSON (the server uses this to merge
// its per-column registry stats into the /metrics object while keeping
// the sorted key order).
type Extra struct {
	Name string
	JSON string
}

// String renders the snapshot as a JSON object, making Snapshot usable
// directly as an expvar.Var. Hand-rolled so the package stays free of
// encoding/json. Histograms surface as flat <name>_{count,sum_ns,
// p50_ns,p95_ns,p99_ns,max_ns} keys so a name->number metrics consumer
// picks the quantiles up without knowing the bucket layout. Keys are
// emitted in sorted order, so two renderings of equal snapshots are
// byte-identical and diffs between reads are positional.
func (s Snapshot) String() string { return s.JSON() }

// JSON renders the snapshot like String with extra pre-rendered keys
// merged in, all in sorted key order.
func (s Snapshot) JSON(extras ...Extra) string {
	pairs := make([]Extra, 0, len(s.Counters())+6*len(s.Hists)+len(extras)+1)
	for _, c := range s.Counters() {
		pairs = append(pairs, Extra{c.Name, fmt.Sprintf("%d", c.Value)})
	}
	for i := range s.Hists {
		pairs = s.Hists[i].appendJSON(pairs, histNames[i])
	}
	var hist strings.Builder
	hist.WriteByte('[')
	for i, v := range s.BitWidthHist {
		if i > 0 {
			hist.WriteByte(',')
		}
		fmt.Fprintf(&hist, "%d", v)
	}
	hist.WriteByte(']')
	pairs = append(pairs, Extra{"bit_width_hist", hist.String()})
	pairs = append(pairs, extras...)
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Name < pairs[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%s", p.Name, p.JSON)
	}
	b.WriteByte('}')
	return b.String()
}

// ---- global collector ----

// active is the process-wide collector; nil means collection is off.
var active atomic.Pointer[Collector]

// Enable turns on global collection (idempotent) and returns the
// collector.
func Enable() *Collector {
	for {
		if c := active.Load(); c != nil {
			return c
		}
		c := &Collector{}
		if active.CompareAndSwap(nil, c) {
			return c
		}
	}
}

// Disable turns off global collection. Instrumented paths drop back to
// their single nil-check branch.
func Disable() {
	active.Store(nil)
}

// Active returns the global collector, or nil when collection is
// disabled. Hot paths load it once per operation and call nil-safe
// methods on the result.
func Active() *Collector {
	return active.Load()
}
