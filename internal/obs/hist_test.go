package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the log2 bucket layout: bucket 0
// holds [0, 2), bucket b holds [2^b, 2^(b+1)), and everything past the
// top boundary lands in the last bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{-5, 0}, // clock step: clamped
		{0, 0},
		{1, 0},
		{2, 1},
		{3, 1},
		{4, 2},
		{7, 2},
		{8, 3},
		{1023, 9},
		{1024, 10},
		{1025, 10},
		{1_000_000, 19},                         // ~1ms
		{1_000_000_000, 29},                     // ~1s
		{int64(1) << 43, 43},                    // top boundary
		{(int64(1) << 43) + 1, 43},              // clamped into top bucket
		{int64(1)<<62 + 12345, HistBuckets - 1}, // far past the top
	}
	for _, tc := range cases {
		var h Histogram
		h.Record(tc.ns)
		s := h.Snapshot()
		for b, n := range s.Buckets {
			want := int64(0)
			if b == tc.bucket {
				want = 1
			}
			if n != want {
				t.Errorf("Record(%d): bucket[%d] = %d, want %d", tc.ns, b, n, want)
			}
		}
	}
}

// TestHistogramCountSumMax checks the scalar accumulators and that
// negative samples clamp to zero rather than corrupting the sum.
func TestHistogramCountSumMax(t *testing.T) {
	var h Histogram
	for _, ns := range []int64{100, 200, 50, -7, 1000} {
		h.Record(ns)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if s.SumNs != 1350 {
		t.Errorf("SumNs = %d, want 1350", s.SumNs)
	}
	if s.MaxNs != 1000 {
		t.Errorf("MaxNs = %d, want 1000", s.MaxNs)
	}
	if m := s.Mean(); m != 270 {
		t.Errorf("Mean = %v, want 270", m)
	}
}

// TestHistogramQuantiles checks the interpolated quantiles stay inside
// the bucket that holds the target rank and that extremes behave:
// quantiles never exceed the observed max, and a one-sample histogram
// reports that sample everywhere.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast samples in bucket [1024, 2048), 10 slow in [1<<20, 1<<21).
	for i := 0; i < 90; i++ {
		h.Record(1500)
	}
	for i := 0; i < 10; i++ {
		h.Record(1 << 20)
	}
	s := h.Snapshot()
	if p := s.P50(); p < 1024 || p >= 2048 {
		t.Errorf("P50 = %d, want within fast bucket [1024, 2048)", p)
	}
	if p := s.P99(); p < 1<<20 || p > s.MaxNs {
		t.Errorf("P99 = %d, want within slow bucket [%d, max %d]", p, 1<<20, s.MaxNs)
	}
	if q := s.Quantile(1.0); q != s.MaxNs {
		t.Errorf("Quantile(1.0) = %d, want max %d", q, s.MaxNs)
	}

	var one Histogram
	one.Record(777)
	os := one.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if v := os.Quantile(q); v < 512 || v > 777 {
			t.Errorf("one-sample Quantile(%v) = %d, want in (bucket lo, max] = (512, 777]", q, v)
		}
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
}

// TestHistogramMergeReset covers the snapshot merge used to combine
// shard snapshots, and collector Reset clearing histograms.
func TestHistogramMergeReset(t *testing.T) {
	var a, b Histogram
	a.Record(100)
	a.Record(3000)
	b.Record(200)
	b.Record(1 << 22)

	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != 4 {
		t.Errorf("merged Count = %d, want 4", merged.Count)
	}
	if merged.SumNs != sa.SumNs+sb.SumNs {
		t.Errorf("merged SumNs = %d, want %d", merged.SumNs, sa.SumNs+sb.SumNs)
	}
	if merged.MaxNs != 1<<22 {
		t.Errorf("merged MaxNs = %d, want %d", merged.MaxNs, 1<<22)
	}
	for i := range merged.Buckets {
		if merged.Buckets[i] != sa.Buckets[i]+sb.Buckets[i] {
			t.Fatalf("merged bucket %d = %d, want %d", i, merged.Buckets[i], sa.Buckets[i]+sb.Buckets[i])
		}
	}

	c := &Collector{}
	c.Observe(HistScan, 1234)
	c.Observe(HistStageFilter, 99)
	if s := c.Snapshot(); s.Hists[HistScan].Count != 1 || s.Hists[HistStageFilter].Count != 1 {
		t.Fatalf("Observe lost samples: %+v %+v", s.Hists[HistScan], s.Hists[HistStageFilter])
	}
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("Reset left histogram state behind")
	}
}

// TestObserveNilAndRangeSafe pins the nil-safe contract for the
// histogram hooks, including out-of-range IDs.
func TestObserveNilAndRangeSafe(t *testing.T) {
	var c *Collector
	c.Observe(HistScan, 100)
	c.Observe(HistID(-1), 100)
	c.Observe(NumHists, 100)
	if h := c.Hist(HistScan); h != (HistSnapshot{}) {
		t.Errorf("nil collector Hist = %+v, want zero", h)
	}
	live := &Collector{}
	live.Observe(HistID(-1), 100)
	live.Observe(NumHists+3, 100)
	if s := live.Snapshot(); s != (Snapshot{}) {
		t.Errorf("out-of-range Observe mutated collector: %+v", s)
	}
}

// TestSampleStage pins the sampling contract of the per-kernel stage
// hooks: the first call is always sampled (so short runs still
// produce data), then one in stageSampleEvery; counters are
// independent per stage; Reset restarts the phase; and a nil
// collector or out-of-range id never samples.
func TestSampleStage(t *testing.T) {
	var nilc *Collector
	if nilc.SampleStage(HistStageFilter) {
		t.Error("nil collector sampled")
	}
	c := &Collector{}
	if c.SampleStage(HistID(-1)) || c.SampleStage(NumHists) {
		t.Error("out-of-range id sampled")
	}
	var sampled []int
	for i := 1; i <= 3*stageSampleEvery; i++ {
		if c.SampleStage(HistStageFilter) {
			sampled = append(sampled, i)
		}
	}
	want := []int{1, 1 + stageSampleEvery, 1 + 2*stageSampleEvery}
	if len(sampled) != len(want) {
		t.Fatalf("sampled calls %v, want %v", sampled, want)
	}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("sampled calls %v, want %v", sampled, want)
		}
	}
	// A stage that has never ticked still samples its first call even
	// after another stage has advanced — the counters are per-stage.
	if !c.SampleStage(HistStageGather) {
		t.Error("first gather call not sampled despite filter activity")
	}
	c.Reset()
	if !c.SampleStage(HistStageFilter) {
		t.Error("first call after Reset not sampled")
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many
// goroutines; under -race this validates the lock-free record path.
func TestHistogramConcurrentRecord(t *testing.T) {
	c := &Collector{}
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Observe(HistScan, seed*1000+int64(i))
				c.Observe(HistStageFilter, int64(i))
			}
		}(int64(w))
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Hists[HistScan].Count != workers*per {
		t.Errorf("lost scan samples: %d, want %d", s.Hists[HistScan].Count, workers*per)
	}
	if s.Hists[HistStageFilter].Count != workers*per {
		t.Errorf("lost filter samples: %d, want %d", s.Hists[HistStageFilter].Count, workers*per)
	}
	var bucketTotal int64
	for _, n := range s.Hists[HistScan].Buckets {
		bucketTotal += n
	}
	if bucketTotal != workers*per {
		t.Errorf("bucket total %d != count %d", bucketTotal, workers*per)
	}
	if s.Hists[HistScan].MaxNs != 7*1000+per-1 {
		t.Errorf("MaxNs = %d, want %d", s.Hists[HistScan].MaxNs, 7*1000+per-1)
	}
}

// TestHistogramRecordZeroAlloc is the regression guard proving the
// record path allocates nothing — it runs on every request and every
// kernel call, so a single allocation would show up on all hot paths.
func TestHistogramRecordZeroAlloc(t *testing.T) {
	c := &Collector{}
	ns := int64(1)
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Observe(HistScan, ns)
		ns += 997
	}); allocs != 0 {
		t.Fatalf("Observe allocates %v times per call, want 0", allocs)
	}
	var h Histogram
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(123456)
	}); allocs != 0 {
		t.Fatalf("Record allocates %v times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		c.SampleStage(HistStageFilter)
	}); allocs != 0 {
		t.Fatalf("SampleStage allocates %v times per call, want 0", allocs)
	}
}

// TestSnapshotStringIncludesHistograms checks the flat lat_*/stage_*
// metric keys render as valid JSON integers.
func TestSnapshotStringIncludesHistograms(t *testing.T) {
	c := &Collector{}
	c.Observe(HistAgg, 1500)
	c.Observe(HistStageUnpack, 800)
	out := c.Snapshot().String()
	var m map[string]any
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("snapshot with histograms is not valid JSON: %v\n%s", err, out)
	}
	for _, key := range []string{
		"lat_agg_count", "lat_agg_p50_ns", "lat_agg_p95_ns", "lat_agg_p99_ns", "lat_agg_max_ns",
		"stage_unpack_count", "stage_unpack_p50_ns", "lat_scan_count",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("key %q missing from snapshot JSON", key)
		}
	}
	if m["lat_agg_count"].(float64) != 1 {
		t.Errorf("lat_agg_count = %v, want 1", m["lat_agg_count"])
	}
	if m["lat_agg_max_ns"].(float64) != 1500 {
		t.Errorf("lat_agg_max_ns = %v, want 1500", m["lat_agg_max_ns"])
	}
	if !strings.Contains(out, `"stage_http_write_count":0`) {
		t.Error("zero histograms should still render (stable schema)")
	}
}

// TestHistNames pins the stable metric-name mapping.
func TestHistNames(t *testing.T) {
	if HistName(HistScan) != "lat_scan" || HistName(HistStageFilter) != "stage_filter" {
		t.Errorf("HistName mapping changed: %q %q", HistName(HistScan), HistName(HistStageFilter))
	}
	if HistName(HistID(-2)) != "unknown" || HistName(NumHists) != "unknown" {
		t.Error("out-of-range HistName should be \"unknown\"")
	}
	seen := map[string]bool{}
	for id := HistID(0); id < NumHists; id++ {
		n := HistName(id)
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("hist %d has bad or duplicate name %q", id, n)
		}
		seen[n] = true
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) & 0xffff)
	}
}

func BenchmarkCollectorObserve(b *testing.B) {
	c := &Collector{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Observe(HistScan, int64(i)&0xffff)
	}
}
