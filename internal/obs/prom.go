// Prometheus/OpenMetrics text exposition of the collector snapshot, so
// standard scrapers consume alpserved's telemetry without the JSON
// shim. Every metric is prefixed "alp_"; counters render as themselves,
// the log2 latency histograms render as native Prometheus histograms
// with cumulative _bucket/_sum/_count series (bucket bounds in
// nanoseconds — the metric names carry the _ns suffix so the unit is
// explicit), and the bit-width histogram renders as a labeled counter
// family. Hand-rolled like the JSON path: no client_golang dependency.
package obs

import (
	"fmt"
	"io"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format
// (Prometheus exposition format version 0.0.4).
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promPrefix namespaces every exposed metric.
const promPrefix = "alp_"

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format. Metrics appear in the same stable order on every
// call: counters in schema order, then the bit-width family, then the
// latency histograms.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, c := range s.Counters() {
		fmt.Fprintf(&b, "# TYPE %s%s counter\n%s%s %d\n", promPrefix, c.Name, promPrefix, c.Name, c.Value)
	}
	fmt.Fprintf(&b, "# TYPE %sbit_width_vectors counter\n", promPrefix)
	for width, n := range s.BitWidthHist {
		if n != 0 {
			fmt.Fprintf(&b, "%sbit_width_vectors{width=\"%d\"} %d\n", promPrefix, width, n)
		}
	}
	for i := range s.Hists {
		s.Hists[i].writePrometheus(&b, promPrefix+histNames[i]+"_ns")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePrometheus renders one histogram as a native Prometheus
// histogram: cumulative buckets with nanosecond upper bounds (bucket b
// of the log2 layout covers [2^b, 2^(b+1)) ns, so its le bound is
// 2^(b+1)), a mandatory +Inf bucket, and the _sum/_count pair. Empty
// buckets are elided except the +Inf terminator — the cumulative
// counts stay correct and the payload stays proportional to the
// occupied range of the distribution.
func (s HistSnapshot) writePrometheus(b *strings.Builder, name string) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		// The top bucket is open-ended ([2^43 ns, ∞)): its samples are
		// carried by the +Inf terminator, not a finite bound.
		if n != 0 && i < HistBuckets-1 {
			_, hi := bucketBounds(i)
			fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", name, hi, cum)
		}
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(b, "%s_sum %d\n", name, s.SumNs)
	fmt.Fprintf(b, "%s_count %d\n", name, s.Count)
}
