package obs

import (
	"sort"
	"strings"
	"testing"
)

func TestCounterDelta(t *testing.T) {
	cases := []struct {
		cur, prev, want int64
	}{
		{10, 4, 6},
		{4, 4, 0},
		{0, 0, 0},
		// Reset: the counter went backwards, so the new total is the
		// delta — a restarted process contributed everything it counted.
		{3, 10, 3},
		{0, 10, 0},
	}
	for _, c := range cases {
		if got := CounterDelta(c.cur, c.prev); got != c.want {
			t.Errorf("CounterDelta(%d, %d) = %d, want %d", c.cur, c.prev, got, c.want)
		}
	}
}

func TestHistSnapshotDelta(t *testing.T) {
	var h Histogram
	h.Record(100)
	h.Record(1000)
	prev := h.Snapshot()
	h.Record(5)
	h.Record(5000)
	cur := h.Snapshot()

	d := cur.Delta(prev)
	if d.Count != 2 {
		t.Fatalf("delta count = %d, want 2", d.Count)
	}
	if d.SumNs != 5005 {
		t.Fatalf("delta sum = %d, want 5005", d.SumNs)
	}
	if d.MaxNs != 5000 {
		t.Fatalf("delta max = %d, want the current high-water 5000", d.MaxNs)
	}
	var total int64
	for _, b := range d.Buckets {
		total += b
	}
	if total != 2 {
		t.Fatalf("delta bucket total = %d, want 2", total)
	}

	// Reset between scrapes: current count below previous means the
	// collector restarted; the delta is the whole current snapshot.
	var fresh Histogram
	fresh.Record(7)
	got := fresh.Snapshot().Delta(prev)
	if got.Count != 1 || got.SumNs != 7 {
		t.Fatalf("reset delta = %+v, want the fresh snapshot", got)
	}

	// Self-delta is empty.
	if z := cur.Delta(cur); z.Count != 0 || z.SumNs != 0 {
		t.Fatalf("self delta = %+v, want zero", z)
	}
}

// TestHistSnapshotDeltaTornBucket guards the clamp: a bucket that reads
// lower than before without a count reset (a torn concurrent read) must
// not go negative.
func TestHistSnapshotDeltaTornBucket(t *testing.T) {
	var prev, cur HistSnapshot
	prev.Count, cur.Count = 2, 3
	prev.Buckets[3] = 2
	cur.Buckets[3] = 1 // torn: lost an increment
	cur.Buckets[5] = 2
	d := cur.Delta(prev)
	if d.Buckets[3] != 0 {
		t.Fatalf("torn bucket delta = %d, want clamped 0", d.Buckets[3])
	}
	if d.Buckets[5] != 2 {
		t.Fatalf("bucket 5 delta = %d, want 2", d.Buckets[5])
	}
}

// TestSnapshotJSONSorted pins the sorted-key contract of the /metrics
// JSON: keys must appear in strictly increasing order so two reads of
// equal state are byte-identical, and extras splice into sorted
// position rather than dangling at the end.
func TestSnapshotJSONSorted(t *testing.T) {
	var c Collector
	c.ServerRequest()
	c.Observe(HistScan, 1234)
	out := c.Snapshot().JSON(Extra{Name: "columns", JSON: `{"a":1}`})
	keys := jsonKeys(t, out)
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("JSON keys are not sorted:\n%v", keys)
	}
	found := false
	for _, k := range keys {
		if k == "columns" {
			found = true
		}
	}
	if !found {
		t.Fatal("extra key \"columns\" missing from rendering")
	}
	// Determinism: an identical snapshot renders byte-identically.
	if again := c.Snapshot().JSON(Extra{Name: "columns", JSON: `{"a":1}`}); again != out {
		t.Fatal("two renderings of the same state differ")
	}
}

// jsonKeys extracts top-level key order from the hand-rolled rendering
// (encoding/json maps would lose it). Only depth-1 strings immediately
// after '{' or ',' are keys; strings nested inside values are skipped.
func jsonKeys(t *testing.T, s string) []string {
	t.Helper()
	var keys []string
	depth := 0
	expectKey := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{', '[':
			depth++
			expectKey = depth == 1
		case '}', ']':
			depth--
		case ',':
			expectKey = depth == 1
		case '"':
			end := strings.IndexByte(s[i+1:], '"')
			if end < 0 {
				t.Fatalf("unterminated string at %d", i)
			}
			if expectKey && depth == 1 {
				keys = append(keys, s[i+1:i+1+end])
				expectKey = false
			}
			i += end + 1
		}
	}
	return keys
}

func TestWritePrometheus(t *testing.T) {
	var c Collector
	c.ServerRequest()
	c.ServerRequest()
	c.VectorEncoded(1024, 3, 17)
	c.Observe(HistAgg, 900)
	c.Observe(HistAgg, 100)
	var b strings.Builder
	if err := c.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE alp_server_requests counter\nalp_server_requests 2\n",
		"alp_bit_width_vectors{width=\"17\"} 1\n",
		"# TYPE alp_lat_agg_ns histogram\n",
		"alp_lat_agg_ns_bucket{le=\"+Inf\"} 2\n",
		"alp_lat_agg_ns_sum 1000\n",
		"alp_lat_agg_ns_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Cumulative buckets must be monotone non-decreasing per histogram.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "alp_lat_agg_ns_bucket") {
			var v int64
			if _, err := fmtSscanValue(line, &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			if v < last {
				t.Fatalf("bucket series not cumulative: %q after %d", line, last)
			}
			last = v
		}
	}
	if last != 2 {
		t.Fatalf("final cumulative bucket = %d, want 2", last)
	}
}

func fmtSscanValue(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	return fmtSscan(line[i+1:], v)
}

func fmtSscan(s string, v *int64) (int, error) {
	var x int64
	for _, r := range s {
		if r < '0' || r > '9' {
			break
		}
		x = x*10 + int64(r-'0')
	}
	*v = x
	return 1, nil
}
