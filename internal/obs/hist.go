// Log-bucketed latency histograms: the deep-observability layer on top
// of the monotonic counters. Every recorded duration lands in the
// power-of-two bucket holding it, so one fixed-size array of atomics
// captures the full latency distribution of a server endpoint or an
// engine stage — nanoseconds to hours — with constant memory and a
// zero-allocation, lock-free record path that morsel workers and HTTP
// handlers can share.
//
// Like the counters, histograms follow the nil-safe collector pattern:
// Collector.Observe on a nil receiver is a no-op, so instrumented hot
// paths pay one predicted branch when collection is disabled.
package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the number of log2 buckets per histogram. Bucket 0
// holds durations in [0ns, 2ns); bucket b holds [2^b, 2^(b+1)) ns; the
// last bucket absorbs everything from 2^(HistBuckets-1) ns (~2.4 h) up.
const HistBuckets = 44

// HistID names one tracked latency distribution. The first block is
// the server's endpoint latencies (end-to-end inside the admission
// wrapper); the second is the engine/codec stage costs, recorded at
// vector or row-group granularity where the work actually happens.
type HistID int

const (
	// Server endpoints (one request = one sample).
	HistIngest  HistID = iota // POST /v1/columns/{name}
	HistAgg                   // GET .../agg
	HistCount                 // GET .../count
	HistScan                  // GET .../scan
	HistData                  // GET .../data
	HistVectors               // GET .../vectors/{i}
	HistMeta                  // list / info / delete
	HistHistory               // GET /v1/metrics/history

	// Engine and codec stages (one kernel call = one sample).
	HistStageEncode     // row-group encode (sampling + vector encodes)
	HistStageUnpack     // FFOR unpack kernel (decode path)
	HistStageFilter     // fused FFOR unpack+compare kernel
	HistStageGather     // selected-row gather / bulk vector decode
	HistStageHTTPWrite  // response payload writes on the scan path
	HistStageRepack     // sparse-selection re-pack on the scan wire path
	HistStageScanDecode // client-side scan frame decode

	// Scatter-gather coordinator (internal/cluster).
	HistClusterScatter // clustered query end-to-end (plan + fan-out + merge)
	HistClusterBackend // one backend call within a scatter
	HistClusterFanout  // samples are scatter widths (backends per query), not ns

	NumHists
)

// histNames are the stable metric-name prefixes: endpoint histograms
// surface as lat_<endpoint>_{count,sum_ns,p50_ns,p95_ns,p99_ns,max_ns}
// and stage histograms as stage_<stage>_... in /metrics.
var histNames = [NumHists]string{
	HistIngest:          "lat_ingest",
	HistAgg:             "lat_agg",
	HistCount:           "lat_count",
	HistScan:            "lat_scan",
	HistData:            "lat_data",
	HistVectors:         "lat_vectors",
	HistMeta:            "lat_meta",
	HistHistory:         "lat_history",
	HistStageEncode:     "stage_encode",
	HistStageUnpack:     "stage_unpack",
	HistStageFilter:     "stage_filter",
	HistStageGather:     "stage_gather",
	HistStageHTTPWrite:  "stage_http_write",
	HistStageRepack:     "stage_repack",
	HistStageScanDecode: "stage_scan_decode",
	HistClusterScatter:  "lat_cluster_scatter",
	HistClusterBackend:  "lat_cluster_backend",
	HistClusterFanout:   "cluster_fanout",
}

// HistName returns the stable metric-name prefix of id ("lat_scan",
// "stage_filter", ...).
func HistName(id HistID) string {
	if id < 0 || id >= NumHists {
		return "unknown"
	}
	return histNames[id]
}

// histBucket maps a duration in ns to its bucket index: the position of
// the highest set bit, clamped to the top bucket. Negative durations
// (clock steps) are clamped to bucket 0.
func histBucket(ns int64) int {
	if ns <= 1 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Histogram is one lock-free latency distribution. The zero value is
// ready for use; all methods are safe for concurrent use and the
// record path performs no allocation and takes no lock.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	ticks   atomic.Int64 // calls seen by SampleStage, sampled or not
	buckets [HistBuckets]atomic.Int64
}

// Record adds one duration sample in nanoseconds.
func (h *Histogram) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[histBucket(ns)].Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot copies the histogram. Concurrent recording may make the
// copy slightly torn between fields (count vs buckets), which is fine
// for monitoring: each field is individually consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	s.MaxNs = h.max.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// reset zeroes the histogram, including the sampling phase, so the
// first call after a reset is sampled again.
func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	h.ticks.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistSnapshot is a point-in-time copy of one histogram: plain values,
// safe to copy, compare, merge and serialize.
type HistSnapshot struct {
	Count   int64
	SumNs   int64
	MaxNs   int64
	Buckets [HistBuckets]int64
}

// Merge folds other into s (for combining per-shard or per-process
// snapshots; bucket boundaries are identical by construction).
func (s *HistSnapshot) Merge(other HistSnapshot) {
	s.Count += other.Count
	s.SumNs += other.SumNs
	if other.MaxNs > s.MaxNs {
		s.MaxNs = other.MaxNs
	}
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// Delta returns the growth of the histogram between two scrapes of the
// same collector: per-bucket count increases, count and sum deltas. A
// shrunk total count means the collector was reset between reads, so
// the whole current snapshot is the delta (mirroring CounterDelta).
// MaxNs carries the current observed max — it is a high-water gauge,
// not a differentiable counter. Individual bucket decreases without a
// count decrease (a torn concurrent read) clamp to zero rather than
// going negative, so downstream consumers always see a valid
// distribution.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	if s.Count < prev.Count {
		return s
	}
	d := HistSnapshot{
		Count: s.Count - prev.Count,
		SumNs: s.SumNs - prev.SumNs,
		MaxNs: s.MaxNs,
	}
	if d.SumNs < 0 {
		d.SumNs = 0
	}
	for i := range s.Buckets {
		if b := s.Buckets[i] - prev.Buckets[i]; b > 0 {
			d.Buckets[i] = b
		}
	}
	return d
}

// Mean returns the average sample in ns.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) in ns by linear
// interpolation inside the bucket holding the target rank. The result
// is exact to within a factor of 2 (the bucket width) and clamped to
// the observed maximum, so P100 == MaxNs exactly.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < HistBuckets; b++ {
		n := s.Buckets[b]
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := bucketBounds(b)
			if hi > s.MaxNs {
				hi = s.MaxNs // the top occupied bucket ends at the observed max
			}
			if hi < lo {
				hi = lo
			}
			frac := float64(target-cum) / float64(n)
			v := lo + int64(frac*float64(hi-lo))
			return v
		}
		cum += n
	}
	return s.MaxNs
}

// bucketBounds returns the [lo, hi) nanosecond range of bucket b.
func bucketBounds(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 2
	}
	return int64(1) << uint(b), int64(1) << uint(b+1)
}

// P50 returns the estimated median in ns.
func (s HistSnapshot) P50() int64 { return s.Quantile(0.50) }

// P95 returns the estimated 95th percentile in ns.
func (s HistSnapshot) P95() int64 { return s.Quantile(0.95) }

// P99 returns the estimated 99th percentile in ns.
func (s HistSnapshot) P99() int64 { return s.Quantile(0.99) }

// Max returns the largest recorded sample in ns.
func (s HistSnapshot) Max() int64 { return s.MaxNs }

// Flats returns the histogram's flat metric keys — <name>_count,
// <name>_sum_ns, <name>_p50_ns, <name>_p95_ns, <name>_p99_ns,
// <name>_max_ns — the exact keys /metrics serves and the
// metrics-history recorder stores as series.
func (s HistSnapshot) Flats(name string) []Metric {
	return []Metric{
		{name + "_count", s.Count},
		{name + "_sum_ns", s.SumNs},
		{name + "_p50_ns", s.P50()},
		{name + "_p95_ns", s.P95()},
		{name + "_p99_ns", s.P99()},
		{name + "_max_ns", s.MaxNs},
	}
}

// appendJSON appends the flat keys as pre-rendered JSON pairs. Flat
// int64 keys keep /metrics trivially consumable by anything that reads
// a name->number map.
func (s HistSnapshot) appendJSON(pairs []Extra, name string) []Extra {
	for _, m := range s.Flats(name) {
		pairs = append(pairs, Extra{m.Name, fmt.Sprintf("%d", m.Value)})
	}
	return pairs
}

// ---- collector integration ----

// stageSampleEvery is the sampling period of the per-kernel stage
// histograms: SampleStage approves one call in this many (power of
// two; the first call is always approved so short runs still produce
// samples). At ~1µs per kernel a scan saturating one core still
// yields ~30k samples/s, while the amortized clock-read cost per
// kernel drops to a few ns.
const stageSampleEvery = 32

// SampleStage reports whether this kernel invocation should be timed
// into stage histogram id. Per-vector kernels run in about a
// microsecond, so bracketing every call with two clock reads is a
// measurable tax (tens of percent on slow-clock hosts); instead the
// stage histograms sample one call in stageSampleEvery — still
// thousands of samples per second under load, and an unbiased picture
// of the distribution because the decision never looks at the work.
// The cost on unsampled calls is a single uncontended atomic add. The
// per-request endpoint histograms are unaffected: requests are orders
// of magnitude rarer than kernel calls and record every event.
// A nil collector never samples.
func (c *Collector) SampleStage(id HistID) bool {
	if c == nil || id < 0 || id >= NumHists {
		return false
	}
	return c.hists[id].ticks.Add(1)&(stageSampleEvery-1) == 1
}

// Observe records one duration sample into histogram id. No-op on a
// nil collector or an out-of-range id.
func (c *Collector) Observe(id HistID, ns int64) {
	if c == nil || id < 0 || id >= NumHists {
		return
	}
	c.hists[id].Record(ns)
}

// Hist snapshots one histogram. A nil collector yields a zero snapshot.
func (c *Collector) Hist(id HistID) HistSnapshot {
	if c == nil || id < 0 || id >= NumHists {
		return HistSnapshot{}
	}
	return c.hists[id].Snapshot()
}
