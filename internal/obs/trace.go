// Request-scoped tracing: a lightweight span context that rides a
// request's context.Context from the server's admission wrapper through
// the engine operators, accumulating per-stage wall time on atomics so
// morsel-parallel workers can report into one trace concurrently. A
// Trace is not a distributed-tracing span tree — it is the minimal
// structure that answers "where did this request spend its time":
// admission vs registry lookup vs kernel vs HTTP write.
//
// All methods are nil-safe: code holding a possibly-absent trace (from
// TraceFrom on an untraced context) calls methods unconditionally.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// Span names one timed section of a request.
type Span int

const (
	SpanAdmission Span = iota // drain gate + limiter + deadline setup
	SpanRegistry              // column registry lookup
	SpanRead                  // request body read (ingest)
	SpanEncode                // Writer encode (ingest)
	SpanEngine                // engine kernel work (agg/count/scan compute)
	SpanWrite                 // response payload writes
	NumSpans
)

var spanNames = [NumSpans]string{
	SpanAdmission: "admission",
	SpanRegistry:  "registry",
	SpanRead:      "read",
	SpanEncode:    "encode",
	SpanEngine:    "engine",
	SpanWrite:     "write",
}

// SpanName returns the stable name of s ("admission", "engine", ...).
func SpanName(s Span) string {
	if s < 0 || s >= NumSpans {
		return "unknown"
	}
	return spanNames[s]
}

// Trace accumulates per-span wall time for one request. The zero value
// is usable; create with NewTrace to get an ID and start time. Span
// accumulators are atomics so concurrent scan workers can add to the
// same trace without coordination.
type Trace struct {
	// ID is the request ID: taken from the X-Alp-Request-Id header when
	// the client sent one, generated otherwise.
	ID string
	// Start is when the server accepted the request.
	Start time.Time

	spans [NumSpans]atomic.Int64
}

// NewTrace returns a trace with the given request ID (generating one
// if empty) started now.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewRequestID()
	}
	return &Trace{ID: id, Start: time.Now()}
}

// NewRequestID returns a fresh 16-hex-char random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; here a
		// degenerate ID only degrades log correlation.
		return "00000000--------"[:16]
	}
	return hex.EncodeToString(b[:])
}

// Add accumulates ns of wall time into span s. Nil-safe; negative
// durations are dropped.
func (t *Trace) Add(s Span, ns int64) {
	if t == nil || s < 0 || s >= NumSpans || ns < 0 {
		return
	}
	t.spans[s].Add(ns)
}

// AddSince accumulates the wall time elapsed since start into span s.
func (t *Trace) AddSince(s Span, start time.Time) {
	if t == nil {
		return
	}
	t.Add(s, time.Since(start).Nanoseconds())
}

// Spans returns the accumulated per-span nanoseconds.
func (t *Trace) Spans() [NumSpans]int64 {
	var out [NumSpans]int64
	if t == nil {
		return out
	}
	for i := range out {
		out[i] = t.spans[i].Load()
	}
	return out
}

// traceKey is the context key for the request trace.
type traceKey struct{}

// WithTrace returns ctx carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace carried by ctx, or nil. The nil result
// is usable directly: every Trace method no-ops on nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
