package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestTraceNilSafe pins the nil-safe contract: every method usable on
// the nil trace TraceFrom returns for untraced contexts.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Add(SpanEngine, 100)
	tr.AddSince(SpanWrite, time.Now())
	if s := tr.Spans(); s != ([NumSpans]int64{}) {
		t.Fatalf("nil trace spans = %v, want zeros", s)
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("TraceFrom(bare ctx) = %v, want nil", got)
	}
}

// TestTraceContextRoundTrip checks WithTrace/TraceFrom and span
// accumulation, including dropped negative and out-of-range adds.
func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace("req-1")
	if tr.ID != "req-1" {
		t.Fatalf("ID = %q", tr.ID)
	}
	ctx := WithTrace(context.Background(), tr)
	got := TraceFrom(ctx)
	if got != tr {
		t.Fatal("TraceFrom did not return the stored trace")
	}
	got.Add(SpanEngine, 100)
	got.Add(SpanEngine, 50)
	got.Add(SpanRegistry, 7)
	got.Add(SpanEngine, -5) // dropped
	got.Add(Span(-1), 10)   // dropped
	got.Add(NumSpans, 10)   // dropped
	s := tr.Spans()
	if s[SpanEngine] != 150 || s[SpanRegistry] != 7 {
		t.Fatalf("spans = %v", s)
	}
	for i, v := range s {
		if Span(i) != SpanEngine && Span(i) != SpanRegistry && v != 0 {
			t.Fatalf("span %s = %d, want 0", SpanName(Span(i)), v)
		}
	}
}

// TestTraceGeneratedID checks NewTrace invents an ID when the client
// sent none, and that IDs do not collide trivially.
func TestTraceGeneratedID(t *testing.T) {
	a, b := NewTrace(""), NewTrace("")
	if len(a.ID) != 16 || len(b.ID) != 16 {
		t.Fatalf("generated IDs %q / %q, want 16 hex chars", a.ID, b.ID)
	}
	if a.ID == b.ID {
		t.Fatalf("two generated IDs collided: %q", a.ID)
	}
	if a.Start.IsZero() {
		t.Fatal("NewTrace left Start zero")
	}
}

// TestTraceConcurrentAdd validates that morsel-parallel workers can
// report into one trace concurrently (run under -race).
func TestTraceConcurrentAdd(t *testing.T) {
	tr := NewTrace("")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Add(SpanEngine, 3)
			}
		}()
	}
	wg.Wait()
	if got := tr.Spans()[SpanEngine]; got != workers*per*3 {
		t.Fatalf("concurrent adds lost updates: %d, want %d", got, workers*per*3)
	}
}

func TestSpanNames(t *testing.T) {
	if SpanName(SpanAdmission) != "admission" || SpanName(SpanEngine) != "engine" {
		t.Error("span name mapping changed")
	}
	if SpanName(Span(-1)) != "unknown" || SpanName(NumSpans) != "unknown" {
		t.Error("out-of-range SpanName should be \"unknown\"")
	}
	seen := map[string]bool{}
	for s := Span(0); s < NumSpans; s++ {
		n := SpanName(s)
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("span %d has bad or duplicate name %q", s, n)
		}
		seen[n] = true
	}
}
