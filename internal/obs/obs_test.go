package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestNilCollectorIsSafe exercises every hook on a nil receiver: the
// nil-safe collector pattern is the contract instrumented hot paths
// rely on.
func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.RowGroup(true)
	c.RowGroup(false)
	c.VectorEncoded(1024, 3, 17)
	c.EncodeTime(100, 1024)
	c.SecondStageSkipped()
	c.SecondStage(3, true)
	c.RDSampled(16, 8)
	c.VectorDecoded(1024, 50)
	c.VectorsSkipped(4)
	c.RangeScan()
	c.MorselClaim()
	c.ScanWorkers(8)
	c.PipelineWorkers(4)
	c.PipelineClaim()
	c.PipelineStall()
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil collector snapshot not zero: %+v", s)
	}
}

func TestCollectorCounts(t *testing.T) {
	c := &Collector{}
	c.RowGroup(false)
	c.RowGroup(false)
	c.RowGroup(true)
	c.VectorEncoded(1024, 2, 17)
	c.VectorEncoded(1000, 0, 17)
	c.VectorEncoded(1024, 5, WidthNone) // RD vector: no histogram entry
	c.EncodeTime(500, 3048)
	c.SecondStageSkipped()
	c.SecondStage(3, true)
	c.SecondStage(5, false)
	c.RDSampled(16, 8)
	c.VectorDecoded(1024, 40)
	c.VectorDecoded(512, 20)
	c.VectorsSkipped(6)
	c.RangeScan()
	c.MorselClaim()
	c.MorselClaim()
	c.ScanWorkers(4)
	c.PipelineWorkers(2)
	c.PipelineClaim()
	c.PipelineClaim()
	c.PipelineClaim()
	c.PipelineStall()

	s := c.Snapshot()
	if s.RowGroupsALP != 2 || s.RowGroupsRD != 1 {
		t.Errorf("row groups: ALP %d RD %d", s.RowGroupsALP, s.RowGroupsRD)
	}
	if s.VectorsEncoded != 3 || s.EncodeExceptions != 7 {
		t.Errorf("vectors encoded %d exceptions %d", s.VectorsEncoded, s.EncodeExceptions)
	}
	if s.BitWidthHist[17] != 2 {
		t.Errorf("hist[17] = %d, want 2", s.BitWidthHist[17])
	}
	for w, n := range s.BitWidthHist {
		if w != 17 && n != 0 {
			t.Errorf("hist[%d] = %d, want 0", w, n)
		}
	}
	if s.EncodeNs != 500 || s.EncodeValues != 3048 {
		t.Errorf("encode time %d/%d", s.EncodeNs, s.EncodeValues)
	}
	if s.SecondStageSkips != 1 || s.SecondStageEarlyExits != 1 || s.SecondStageTried != 8 {
		t.Errorf("second stage: skips %d early %d tried %d",
			s.SecondStageSkips, s.SecondStageEarlyExits, s.SecondStageTried)
	}
	if s.RDSampledRowGroups != 1 || s.RDCutsTried != 16 || s.RDDictEntries != 8 {
		t.Errorf("rd sampling: %d groups %d cuts %d dict",
			s.RDSampledRowGroups, s.RDCutsTried, s.RDDictEntries)
	}
	if s.VectorsDecoded != 2 || s.DecodeValues != 1536 || s.DecodeNs != 60 {
		t.Errorf("decode: %d vectors %d values %d ns", s.VectorsDecoded, s.DecodeValues, s.DecodeNs)
	}
	if s.VectorsSkipped != 6 || s.RangeScans != 1 {
		t.Errorf("scan: %d skipped %d scans", s.VectorsSkipped, s.RangeScans)
	}
	if s.MorselClaims != 2 || s.ScanWorkers != 4 {
		t.Errorf("engine: %d claims %d workers", s.MorselClaims, s.ScanWorkers)
	}
	if s.PipelineWorkers != 2 || s.PipelineClaims != 3 || s.PipelineStalls != 1 {
		t.Errorf("pipeline: %d workers %d claims %d stalls",
			s.PipelineWorkers, s.PipelineClaims, s.PipelineStalls)
	}

	if got := s.EncodeNsPerValue(); got != 500.0/3048.0 {
		t.Errorf("EncodeNsPerValue = %v", got)
	}
	if got := s.DecodeNsPerValue(); got != 60.0/1536.0 {
		t.Errorf("DecodeNsPerValue = %v", got)
	}
	if got := s.SkipRate(); got != 6.0/8.0 {
		t.Errorf("SkipRate = %v", got)
	}

	c.Reset()
	if got := c.Snapshot(); got != (Snapshot{}) {
		t.Fatalf("Reset left counters: %+v", got)
	}
}

// TestSnapshotStringIsJSON asserts the hand-rolled expvar rendering is
// valid JSON with the expected keys.
func TestSnapshotStringIsJSON(t *testing.T) {
	c := &Collector{}
	c.VectorEncoded(1024, 1, 3)
	c.VectorDecoded(1024, 10)
	var m map[string]any
	if err := json.Unmarshal([]byte(c.Snapshot().String()), &m); err != nil {
		t.Fatalf("Snapshot.String() is not valid JSON: %v\n%s", err, c.Snapshot().String())
	}
	for _, key := range []string{"row_groups_alp", "vectors_encoded", "vectors_decoded",
		"vectors_skipped", "morsel_claims", "bit_width_hist",
		"pipeline_workers", "pipeline_claims", "pipeline_stalls"} {
		if _, ok := m[key]; !ok {
			t.Errorf("key %q missing from snapshot JSON", key)
		}
	}
	if hist, ok := m["bit_width_hist"].([]any); !ok || len(hist) != MaxBitWidth+1 {
		t.Errorf("bit_width_hist malformed: %v", m["bit_width_hist"])
	}
}

func TestEnableDisable(t *testing.T) {
	defer Disable()
	Disable()
	if Active() != nil {
		t.Fatal("Active() != nil after Disable")
	}
	c := Enable()
	if c == nil || Active() != c {
		t.Fatal("Enable did not install a collector")
	}
	if again := Enable(); again != c {
		t.Fatal("Enable is not idempotent")
	}
	Disable()
	if Active() != nil {
		t.Fatal("Disable did not clear the collector")
	}
}

// TestConcurrentCounting hammers one collector from many goroutines;
// with -race this validates the atomic-counter contract end to end.
func TestConcurrentCounting(t *testing.T) {
	c := &Collector{}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.VectorDecoded(1024, 1)
				c.MorselClaim()
				c.VectorEncoded(1024, 1, 12)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.VectorsDecoded != workers*per || s.MorselClaims != workers*per ||
		s.VectorsEncoded != workers*per || s.BitWidthHist[12] != workers*per {
		t.Fatalf("lost updates: %+v", s)
	}
}
