// Package pde implements PseudoDecimals (Kuschewski et al., BtrBlocks,
// SIGMOD'23), the decimal-based baseline ALP strongly enhances. Each
// value is independently brute-force searched for the smallest exponent
// e such that round(v*10^e) is a small integer that reconstructs v; the
// per-value digits and exponents form two integer streams (digits
// FFOR-packed, exponents bit-packed), and unrepresentable values are
// patched exceptions.
//
// The two properties the paper measures follow directly from this
// design: compression is extremely slow (a per-value search), while
// decompression is fast (one multiply and a table lookup per value) —
// but the per-value exponent costs ~5 bits that ALP amortizes across
// the whole vector.
package pde

import (
	"encoding/binary"
	"errors"
	"math"

	"github.com/goalp/alp/internal/bitpack"
	"github.com/goalp/alp/internal/fastlanes"
	"github.com/goalp/alp/internal/vector"
)

var errCorrupt = errors.New("pde: corrupt stream")

// maxExponent bounds the per-value exponent search. PDE keeps digits
// within 32 bits (§2.5: "these high exponents that lead to big integers
// are not used by PDE"), so exponents stay small in practice.
const maxExponent = 22

// maxDigits keeps the significant digits within an int32, as in
// BtrBlocks.
const maxDigits = 1 << 31

// expWidth is the bit width of the per-value exponent stream.
const expWidth = 5

var f10 = [maxExponent + 1]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

var if10 = [maxExponent + 1]float64{
	1e0, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11,
	1e-12, 1e-13, 1e-14, 1e-15, 1e-16, 1e-17, 1e-18, 1e-19, 1e-20, 1e-21, 1e-22,
}

// findDecimal searches the smallest exponent representing v exactly.
func findDecimal(v float64) (digits int64, exp int, ok bool) {
	for e := 0; e <= maxExponent; e++ {
		scaled := v * f10[e]
		if scaled < -maxDigits || scaled > maxDigits {
			return 0, 0, false // digits would overflow int32
		}
		d := int64(math.Round(scaled))
		if math.Float64bits(float64(d)*if10[e]) == math.Float64bits(v) {
			return d, e, true
		}
	}
	return 0, 0, false
}

// Compress encodes src vector-at-a-time and returns the byte stream.
func Compress(src []float64) []byte {
	var out []byte
	for v := 0; v < vector.VectorsIn(len(src)); v++ {
		lo, hi := vector.Bounds(v, len(src))
		out = compressVector(out, src[lo:hi])
	}
	return out
}

func compressVector(out []byte, src []float64) []byte {
	n := len(src)
	digits := make([]int64, n)
	exps := make([]uint64, n)
	var excPos []uint16
	var excVals []float64
	for i, v := range src {
		d, e, ok := findDecimal(v)
		if !ok {
			excPos = append(excPos, uint16(i))
			excVals = append(excVals, v)
			continue
		}
		digits[i] = d
		exps[i] = uint64(e)
	}
	df := fastlanes.EncodeFFOR(digits)
	expWords := make([]uint64, bitpack.WordCount(n, expWidth))
	bitpack.Pack(expWords, exps, expWidth, 0)

	out = binary.LittleEndian.AppendUint16(out, uint16(n))
	out = binary.LittleEndian.AppendUint64(out, uint64(df.Base))
	out = append(out, byte(df.Width))
	for _, w := range df.Words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	for _, w := range expWords {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	out = binary.LittleEndian.AppendUint16(out, uint16(len(excPos)))
	for _, p := range excPos {
		out = binary.LittleEndian.AppendUint16(out, p)
	}
	for _, v := range excVals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// Decompress decodes len(dst) values from data into dst.
func Decompress(dst []float64, data []byte) error {
	for off := 0; off < len(dst); {
		n, consumed, err := decompressVector(dst[off:], data)
		if err != nil {
			return err
		}
		data = data[consumed:]
		off += n
	}
	return nil
}

func decompressVector(dst []float64, data []byte) (n, consumed int, err error) {
	if len(data) < 11 {
		return 0, 0, errCorrupt
	}
	n = int(binary.LittleEndian.Uint16(data))
	if n == 0 || n > len(dst) {
		return 0, 0, errCorrupt
	}
	base := int64(binary.LittleEndian.Uint64(data[2:]))
	width := uint(data[10])
	if width > 64 {
		return 0, 0, errCorrupt
	}
	pos := 11
	nw := bitpack.WordCount(n, width)
	ne := bitpack.WordCount(n, expWidth)
	if len(data) < pos+8*(nw+ne)+2 {
		return 0, 0, errCorrupt
	}
	words := make([]uint64, nw)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[pos:])
		pos += 8
	}
	expWords := make([]uint64, ne)
	for i := range expWords {
		expWords[i] = binary.LittleEndian.Uint64(data[pos:])
		pos += 8
	}
	ff := fastlanes.FFOR{Base: base, Width: width, N: n, Words: words}
	digits := make([]int64, n)
	ff.Decode(digits)
	exps := make([]uint64, n)
	bitpack.Unpack(exps, expWords, expWidth, 0)

	for i := 0; i < n; i++ {
		e := exps[i]
		if e > maxExponent {
			return 0, 0, errCorrupt
		}
		dst[i] = float64(digits[i]) * if10[e]
	}

	excCount := int(binary.LittleEndian.Uint16(data[pos:]))
	pos += 2
	if len(data) < pos+excCount*10 {
		return 0, 0, errCorrupt
	}
	vpos := pos + excCount*2 // values follow the position array
	for k := 0; k < excCount; k++ {
		p := int(binary.LittleEndian.Uint16(data[pos+2*k:]))
		if p >= n {
			return 0, 0, errCorrupt
		}
		dst[p] = math.Float64frombits(binary.LittleEndian.Uint64(data[vpos+8*k:]))
	}
	return n, vpos + excCount*8, nil
}
