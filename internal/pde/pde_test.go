package pde

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFindDecimal(t *testing.T) {
	cases := []struct {
		v      float64
		digits int64
		exp    int
	}{
		{5, 5, 0}, {2.5, 25, 1}, {0.001, 1, 3}, {-12.75, -1275, 2},
	}
	for _, c := range cases {
		d, e, ok := findDecimal(c.v)
		if !ok || d != c.digits || e != c.exp {
			t.Errorf("findDecimal(%v) = (%d, %d, %v), want (%d, %d, true)", c.v, d, e, ok, c.digits, c.exp)
		}
	}
	if _, _, ok := findDecimal(math.NaN()); ok {
		t.Error("NaN must not be representable")
	}
	if _, _, ok := findDecimal(math.Pi); ok {
		t.Error("Pi must not be representable")
	}
	if _, _, ok := findDecimal(1e18); ok {
		t.Error("digits beyond int32 must not be representable")
	}
}

func roundTrip(t *testing.T, src []float64) []byte {
	t.Helper()
	data := Compress(src)
	got := make([]float64, len(src))
	if err := Decompress(got, data); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d: got %v (%#x), want %v (%#x)",
				i, got[i], math.Float64bits(got[i]), src[i], math.Float64bits(src[i]))
		}
	}
	return data
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, []float64{1.5, 2.25, 100.125, -3.5, 0})
	roundTrip(t, nil)
	roundTrip(t, []float64{42.5})
}

func TestRoundTripSpecialsAsExceptions(t *testing.T) {
	roundTrip(t, []float64{
		0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, math.SmallestNonzeroFloat64, math.Pi,
	})
}

func TestRoundTripMultiVector(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	src := make([]float64, 3000) // spans three vectors, last partial
	for i := range src {
		src[i] = float64(r.Intn(100000)) / 100
	}
	data := roundTrip(t, src)
	bits := float64(len(data)*8) / float64(len(src))
	if bits >= 64 {
		t.Fatalf("no compression: %.1f bits/value", bits)
	}
}

func TestPerValueExponentsVary(t *testing.T) {
	// Mixed precisions in one vector: PDE handles them per value.
	src := []float64{1.5, 0.001, 12345, 0.000002, 7.25, -0.5}
	roundTrip(t, src)
}

func TestQuickLossless(t *testing.T) {
	f := func(raw []uint64) bool {
		src := make([]float64, len(raw))
		for i, b := range raw {
			src[i] = math.Float64frombits(b)
		}
		data := Compress(src)
		got := make([]float64, len(src))
		if err := Decompress(got, data); err != nil {
			return false
		}
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	src := []float64{1.5, 2.5, 3.5}
	data := Compress(src)
	got := make([]float64, len(src))
	if err := Decompress(got, data[:5]); err == nil {
		t.Fatal("want error on truncated stream")
	}
	if err := Decompress(got, nil); err == nil {
		t.Fatal("want error on empty stream")
	}
}
