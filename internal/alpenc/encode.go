package alpenc

import (
	"math"

	"github.com/goalp/alp/internal/fastlanes"
)

// Vector is one ALP-encoded vector of float64 values: the FFOR-packed
// integers plus the exception segment. The exponent and factor are
// stored once per vector (paper §3.1, "Vectorized Compression").
type Vector struct {
	E, F    uint8
	N       int
	Ints    fastlanes.FFOR
	ExcPos  []uint16
	ExcVals []float64
}

// EncodeVector encodes src (at most one vector of values) with the given
// combination, following Algorithm 1: encode all values branch-free,
// verify by decoding, collect exceptions, replace exception slots with
// the first successfully encoded integer, then FFOR the integers.
// The scratch buffer, when non-nil, must hold len(src) int64s and avoids
// a per-vector allocation.
func EncodeVector(src []float64, c Combo, scratch []int64) Vector {
	n := len(src)
	enc := scratch
	if enc == nil {
		enc = make([]int64, n)
	}
	enc = enc[:n]
	fe, ff := F10[c.E], IF10[c.F]
	de, df := IF10[c.E], F10[c.F]

	v := Vector{E: c.E, F: c.F, N: n}

	// Encode + verify. The verification decode runs in the same loop so
	// the scaled product is computed once (Algorithm 1 lines 7-12).
	var excCount int
	excIdx := make([]uint16, 0, 8)
	for i, x := range src {
		scaled := x * fe * ff
		var d int64
		if scaled >= -encLimit && scaled <= encLimit {
			d = fastRound(scaled)
		} else {
			// NaN, ±Inf or out of fast-rounding range: certain exception.
			d = 0
		}
		enc[i] = d
		back := float64(d) * df * de
		if math.Float64bits(back) != math.Float64bits(x) {
			excIdx = append(excIdx, uint16(i))
			excCount++
		}
	}

	// Fetch the first successfully encoded integer (FIND_FIRST_ENCODED)
	// and overwrite exception slots with it so they do not widen the
	// bit-packing (Algorithm 1 lines 19-24).
	if excCount > 0 {
		first := findFirstEncoded(enc, excIdx)
		v.ExcPos = excIdx
		v.ExcVals = make([]float64, excCount)
		for k, pos := range excIdx {
			v.ExcVals[k] = src[pos]
			enc[pos] = first
		}
	}

	v.Ints = fastlanes.EncodeFFOR(enc)
	return v
}

// findFirstEncoded returns the first element of enc whose index is not
// in the (sorted) exception index list, or 0 if every value excepted.
func findFirstEncoded(enc []int64, excIdx []uint16) int64 {
	k := 0
	for i := range enc {
		if k < len(excIdx) && int(excIdx[k]) == i {
			k++
			continue
		}
		return enc[i]
	}
	return 0
}

// Decode decompresses the vector into dst (len dst == v.N), following
// Algorithm 2: unFFOR, multiply by 10^f*10^-e, patch exceptions.
func (v *Vector) Decode(dst []float64, scratch []int64) {
	ints := scratch
	if ints == nil {
		ints = make([]int64, v.N)
	}
	ints = ints[:v.N]
	v.Ints.Decode(ints)
	df, de := F10[v.F], IF10[v.E]
	for i, d := range ints {
		dst[i] = float64(d) * df * de
	}
	for k, pos := range v.ExcPos {
		dst[pos] = v.ExcVals[k]
	}
}

// DecodeUnfused is Decode with the FFOR base addition performed in its
// own pass (three passes total instead of two). It is the unfused
// comparand of the Figure 5 kernel-fusion ablation.
func (v *Vector) DecodeUnfused(dst []float64, scratch []int64) {
	ints := scratch
	if ints == nil {
		ints = make([]int64, v.N)
	}
	ints = ints[:v.N]
	v.Ints.DecodeUnfused(ints)
	df, de := F10[v.F], IF10[v.E]
	for i, d := range ints {
		dst[i] = float64(d) * df * de
	}
	for k, pos := range v.ExcPos {
		dst[pos] = v.ExcVals[k]
	}
}

// DecodeGeneric is Decode with the width-parametric scalar unpacking
// loop ("Scalar" variant in the Figure 4 ablation).
func (v *Vector) DecodeGeneric(dst []float64, scratch []int64) {
	ints := scratch
	if ints == nil {
		ints = make([]int64, v.N)
	}
	ints = ints[:v.N]
	v.Ints.DecodeGeneric(ints)
	df, de := F10[v.F], IF10[v.E]
	for i, d := range ints {
		dst[i] = float64(d) * df * de
	}
	for k, pos := range v.ExcPos {
		dst[pos] = v.ExcVals[k]
	}
}

// Exceptions returns the number of exceptions in the vector.
func (v *Vector) Exceptions() int { return len(v.ExcPos) }

// SizeBits returns the exact compressed size in bits: FFOR payload,
// exception segment, the (e, f) byte pair and a 16-bit exception count.
func (v *Vector) SizeBits() int {
	return v.Ints.SizeBits() + len(v.ExcPos)*ExceptionBits + 16 + 16
}
