// Package alpenc implements ALP's decimal encoding (the paper's primary
// contribution, §3.1–§3.3): vectors of 1024 doubles are losslessly
// encoded as int64 integers via
//
//	ALP_enc = round(n * 10^e * 10^-f)      (Formula 1)
//	ALP_dec = d * 10^f * 10^-e             (Formula 2)
//
// with one exponent e and factor f per vector, found by a two-level
// sampling scheme (§3.2). Values the procedure cannot recover bit-exactly
// become exceptions, patched after decoding. The encoded integers are
// compressed with FFOR (internal/fastlanes).
//
// A parallel float32 implementation (encode32.go) mirrors the float64
// one with the 2^22+2^23 rounding sweet spot and a reduced exponent
// range, as in the paper's §4.4.
package alpenc

// MaxExponent is the largest exponent e considered for float64: 10^e has
// an exact double representation for e <= 21 (paper §2.5), giving the
// 253-combination search space (0 <= f <= e <= 21).
const MaxExponent = 21

// Combinations is the size of the exhaustive (e, f) search space for
// float64: sum over e of (e+1) = 22*23/2.
const Combinations = (MaxExponent + 1) * (MaxExponent + 2) / 2

// sweet is 2^51 + 2^52: adding and subtracting it forces a double into
// the range where it cannot carry a fraction, rounding it to the nearest
// integer with two SIMD-friendly additions (paper §3.1, "Fast Rounding").
const sweet = float64(1<<51 + 1<<52)

// encLimit bounds the magnitude of scaled values eligible for the fast
// rounding trick. Beyond ±2^51 the sweet-spot addition loses integer
// precision, and float→int conversion of out-of-range values is
// implementation-defined in Go (unlike C++'s cvttsd2si), so such values
// are routed to the exception path before conversion.
const encLimit = float64(1 << 51)

// ExceptionBits is the storage cost of one float64 exception: the raw
// 64-bit value plus a 16-bit position (paper §3.1: 80 bits).
const ExceptionBits = 64 + 16

// F10 holds the exact double representations of 10^i. 10^i is exactly
// representable for i <= 22.
var F10 = [MaxExponent + 1]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10,
	1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21,
}

// IF10 holds the double closest to 10^-i. These are inexact for i > 0;
// the whole point of ALP's large-exponent scheme (§2.5–§2.6) is that the
// inexactness of the *large* inverse factors is too small to perturb the
// rounded integer.
var IF10 = [MaxExponent + 1]float64{
	1e0, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10,
	1e-11, 1e-12, 1e-13, 1e-14, 1e-15, 1e-16, 1e-17, 1e-18, 1e-19, 1e-20, 1e-21,
}

// Combo is one (exponent, factor) combination, f <= e.
type Combo struct {
	E uint8
	F uint8
}

// fastRound rounds x to the nearest integer using the sweet-spot trick.
// The caller must ensure |x| < encLimit.
func fastRound(x float64) int64 {
	return int64(x + sweet - sweet)
}
