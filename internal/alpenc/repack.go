package alpenc

import (
	"math/bits"

	"github.com/goalp/alp/internal/fastlanes"
)

// SelectedExceptions counts the exception slots whose position is set
// in sel — the exact exception count a RepackSelected vector would
// carry, so the scan frame policy can cost the repacked encoding
// without building it.
func (v *Vector) SelectedExceptions(sel []uint64) int {
	n := 0
	for _, pos := range v.ExcPos {
		if sel[pos>>6]&(1<<uint(pos&63)) != 0 {
			n++
		}
	}
	return n
}

// RepackSelected builds a new Vector holding only the rows selected by
// sel, in position order, re-encoded under the same (E, F) combination —
// the sparse-selection payload of the scan wire format. Because the
// combination is unchanged, every non-exception row of the repacked
// vector decodes through the exact float path GatherSelected runs
// (float64(d) * 10^F * 10^-E), so the repacked vector is bit-identical
// to gathering the selected rows locally; exception rows carry their
// stored float64 verbatim at their new (compacted) positions.
//
// It must be called right after Filter with the same scratch buffer:
// selected non-exception integers are read from the raw packed values
// Filter left in scratch. ints is the gather buffer for the encoded
// integers (room for the selection count; pass a vector.Size buffer to
// cover any selection). The FFOR re-pack recomputes base and width over
// the selected integers only, so a narrow selection usually packs
// narrower than the original vector.
func (v *Vector) RepackSelected(sel []uint64, scratch []int64, ints []int64) Vector {
	base := v.Ints.Base
	n := 0
	k := 0
	var excPos []uint16
	var excVals []float64
	for w := 0; w < fastlanes.SelWords(v.N); w++ {
		word := sel[w]
		for word != 0 {
			i := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			for k < len(v.ExcPos) && int(v.ExcPos[k]) < i {
				k++
			}
			if k < len(v.ExcPos) && int(v.ExcPos[k]) == i {
				excPos = append(excPos, uint16(n))
				excVals = append(excVals, v.ExcVals[k])
				ints[n] = 0 // placeholder, patched below
			} else {
				ints[n] = scratch[i] + base
			}
			n++
		}
	}
	// Exception slots hold a placeholder that must not widen the FFOR
	// range: the first selected non-exception integer (0 if the whole
	// selection is exceptions, in which case the range is degenerate
	// anyway).
	if len(excPos) > 0 && len(excPos) < n {
		var fill int64
		e := 0
		for i := 0; i < n; i++ {
			if e < len(excPos) && int(excPos[e]) == i {
				e++
				continue
			}
			fill = ints[i]
			break
		}
		for _, p := range excPos {
			ints[p] = fill
		}
	}
	return Vector{
		E:       v.E,
		F:       v.F,
		N:       n,
		Ints:    fastlanes.EncodeFFOR(ints[:n]),
		ExcPos:  excPos,
		ExcVals: excVals,
	}
}
