package alpenc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFastRound(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{0, 0}, {1, 1}, {-1, -1}, {1.4, 1}, {1.6, 2}, {-1.4, -1}, {-1.6, -2},
		{80604.99999999985448, 80605}, {123456789.2, 123456789},
	}
	for _, c := range cases {
		if got := fastRound(c.in); got != c.want {
			t.Errorf("fastRound(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFastRoundMatchesRoundToEven(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		x := (r.Float64() - 0.5) * 1e9
		if got, want := fastRound(x), int64(math.RoundToEven(x)); got != want {
			t.Fatalf("fastRound(%v) = %d, want %d", x, got, want)
		}
	}
}

// TestPaperExample walks the worked example of §2.6: the double nearest
// to 8.0605 encodes with e=14, f=10 to d=80605 and decodes bit-exactly.
func TestPaperExample(t *testing.T) {
	n := 8.0605 // the double 8.0604999999999933209...
	scaled := n * F10[14] * IF10[10]
	d := fastRound(scaled)
	if d != 80605 {
		t.Fatalf("ALP_enc(8.0605, e=14, f=10) = %d, want 80605", d)
	}
	back := float64(d) * F10[10] * IF10[14]
	if math.Float64bits(back) != math.Float64bits(n) {
		t.Fatalf("ALP_dec mismatch: got %v (%#x), want %v (%#x)",
			back, math.Float64bits(back), n, math.Float64bits(n))
	}
	// And, per §2.5, the naive e=4 procedure fails on the same value.
	d4 := fastRound(n * F10[4])
	back4 := float64(d4) * IF10[4]
	if math.Float64bits(back4) == math.Float64bits(n) {
		t.Fatal("P_dec with e=4 unexpectedly recovered the double; the paper's premise would not hold")
	}
}

// decimals generates n decimal values with the given precision, the core
// case ALP is designed for.
func decimals(r *rand.Rand, n, precision int) []float64 {
	out := make([]float64, n)
	scale := math.Pow(10, float64(precision))
	for i := range out {
		out[i] = float64(r.Intn(1_000_000)) / scale
	}
	return out
}

func roundTrip(t *testing.T, src []float64) *Vector {
	t.Helper()
	dec := SampleRowGroup(src)
	if len(dec.Combos) == 0 {
		t.Fatal("sampler returned no combinations")
	}
	c, _ := ChooseForVector(src, dec.Combos)
	v := EncodeVector(src, c, nil)
	got := make([]float64, len(src))
	v.Decode(got, nil)
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d: got %v (%#x), want %v (%#x)",
				i, got[i], math.Float64bits(got[i]), src[i], math.Float64bits(src[i]))
		}
	}
	return &v
}

func TestRoundTripDecimals(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, prec := range []int{0, 1, 2, 4, 7, 10} {
		v := roundTrip(t, decimals(r, 1024, prec))
		if v.Exceptions() > v.N/20 {
			t.Errorf("precision %d: %d exceptions, want near zero", prec, v.Exceptions())
		}
		if v.SizeBits() >= 1024*64 {
			t.Errorf("precision %d: no compression achieved (%d bits)", prec, v.SizeBits())
		}
	}
}

func TestRoundTripSpecials(t *testing.T) {
	src := []float64{
		0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
		1.5, -2.25, 8.0605, 1e300, -1e-300, math.Pi,
	}
	v := EncodeVector(src, Combo{E: 14, F: 10}, nil)
	got := make([]float64, len(src))
	v.Decode(got, nil)
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d (%v): got bits %#x, want %#x",
				i, src[i], math.Float64bits(got[i]), math.Float64bits(src[i]))
		}
	}
	if v.Exceptions() == 0 {
		t.Fatal("specials must produce exceptions")
	}
}

func TestAllExceptions(t *testing.T) {
	src := make([]float64, 100)
	r := rand.New(rand.NewSource(3))
	for i := range src {
		src[i] = math.Float64frombits(r.Uint64()) // mostly unencodable garbage
	}
	v := EncodeVector(src, Combo{E: 14, F: 14}, nil)
	got := make([]float64, len(src))
	v.Decode(got, nil)
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d: mismatch", i)
		}
	}
}

func TestDecodeVariantsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	src := decimals(r, 1024, 3)
	v := EncodeVector(src, Combo{E: 14, F: 11}, nil)
	a := make([]float64, len(src))
	b := make([]float64, len(src))
	c := make([]float64, len(src))
	v.Decode(a, nil)
	v.DecodeUnfused(b, nil)
	v.DecodeGeneric(c, nil)
	for i := range src {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("decode variants disagree at %d: %v %v %v", i, a[i], b[i], c[i])
		}
	}
}

func TestFindFirstEncoded(t *testing.T) {
	enc := []int64{11, 22, 33, 44}
	if got := findFirstEncoded(enc, nil); got != 11 {
		t.Fatalf("got %d, want 11", got)
	}
	if got := findFirstEncoded(enc, []uint16{0, 1}); got != 33 {
		t.Fatalf("got %d, want 33", got)
	}
	if got := findFirstEncoded(enc, []uint16{0, 1, 2, 3}); got != 0 {
		t.Fatalf("got %d, want 0 for all-exceptions", got)
	}
}

// TestExceptionPlaceholderKeepsWidthTight: the placeholder written into
// exception slots must not widen the packed integers.
func TestExceptionPlaceholderKeepsWidthTight(t *testing.T) {
	src := make([]float64, 1024)
	for i := range src {
		src[i] = 10.25 + float64(i%7)*0.25
	}
	src[100] = math.Pi    // exception
	src[500] = math.NaN() // exception
	v := EncodeVector(src, Combo{E: 2, F: 0}, nil)
	if v.Exceptions() != 2 {
		t.Fatalf("exceptions = %d, want 2", v.Exceptions())
	}
	if v.Ints.Width > 12 {
		t.Fatalf("FFOR width = %d; exceptions widened the packing", v.Ints.Width)
	}
	got := make([]float64, len(src))
	v.Decode(got, nil)
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d: mismatch", i)
		}
	}
}

func TestQuickLossless(t *testing.T) {
	// ALP must be lossless on arbitrary bit patterns for any combo.
	f := func(raw []uint64, e8, f8 uint8) bool {
		e := e8 % (MaxExponent + 1)
		fa := f8 % (e + 1)
		src := make([]float64, len(raw))
		for i, b := range raw {
			src[i] = math.Float64frombits(b)
		}
		v := EncodeVector(src, Combo{E: e, F: fa}, nil)
		got := make([]float64, len(src))
		v.Decode(got, nil)
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLosslessDecimals(t *testing.T) {
	// Decimal-looking values must round trip via the full sampling path
	// with very few exceptions.
	f := func(ints []int32, prec8 uint8) bool {
		if len(ints) == 0 {
			return true
		}
		prec := int(prec8 % 8)
		scale := math.Pow(10, float64(prec))
		src := make([]float64, len(ints))
		for i, d := range ints {
			src[i] = float64(d%1_000_000) / scale
		}
		dec := SampleRowGroup(src)
		c, _ := ChooseForVector(src, dec.Combos)
		v := EncodeVector(src, c, nil)
		got := make([]float64, len(src))
		v.Decode(got, nil)
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerSingleCombo(t *testing.T) {
	// Fixed two-decimal data: the whole row-group agrees on one combo,
	// so the second level must be skipped (tried == 0).
	r := rand.New(rand.NewSource(5))
	values := decimals(r, 8*1024, 2)
	dec := SampleRowGroup(values)
	if dec.UseRD {
		t.Fatal("decimal data must not switch to ALP_rd")
	}
	if len(dec.Combos) != 1 {
		t.Fatalf("combos = %v, want exactly one", dec.Combos)
	}
	_, tried := ChooseForVector(values[:1024], dec.Combos)
	if tried != 0 {
		t.Fatalf("second stage ran %d evaluations, want 0", tried)
	}
}

func TestSamplerDetectsRealDoubles(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	values := make([]float64, 8*1024)
	for i := range values {
		values[i] = r.Float64() * math.Pi / 180 // full-precision "POI-like" data
	}
	dec := SampleRowGroup(values)
	if !dec.UseRD {
		t.Fatalf("full-precision doubles must switch to ALP_rd (estimate %.1f bits/value)", dec.EstBitsPerValue)
	}
}

func TestComboCost(t *testing.T) {
	sample := []float64{1.25, 2.50, 3.75} // exact quarters: e=2, f=0 encodes 125, 250, 375
	cost, exc := comboCost(sample, Combo{E: 2, F: 0})
	if exc != 0 {
		t.Fatalf("exceptions = %d, want 0", exc)
	}
	wantWidth := 8 // max-min = 250 -> 8 bits
	if cost != 3*wantWidth {
		t.Fatalf("cost = %d, want %d", cost, 3*wantWidth)
	}
	_, exc = comboCost([]float64{math.NaN(), math.Inf(1)}, Combo{E: 14, F: 0})
	if exc != 2 {
		t.Fatalf("exceptions = %d, want 2", exc)
	}
}

func TestChooseForVectorEarlyExit(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vec := decimals(r, 1024, 2)
	// First combo is the good one; the rest are bad. The early exit must
	// stop after two consecutive non-improvements: 1 (best) + 2 tried.
	combos := []Combo{{E: 2, F: 0}, {E: 21, F: 21}, {E: 0, F: 0}, {E: 1, F: 1}, {E: 3, F: 3}}
	got, tried := ChooseForVector(vec, combos)
	if got != combos[0] {
		t.Fatalf("chose %v, want %v", got, combos[0])
	}
	if tried != 3 {
		t.Fatalf("tried = %d, want 3 (early exit)", tried)
	}
}

func TestFindBestPrefersHighExponents(t *testing.T) {
	// All-integer data is encodable by every (e, e) combo; the tie-break
	// must pick the highest exponent/factor pair, mirroring Table 2:C12.
	sample := []float64{1, 2, 3, 4, 5, 100, 1000}
	best, _ := FindBest(sample)
	if best.E != best.F {
		t.Fatalf("best = %+v, want e == f for integers", best)
	}
	if best.E < 14 {
		t.Fatalf("best = %+v, want a high exponent on ties", best)
	}
}

// ---- float32 ----

func TestFastRound32(t *testing.T) {
	cases := []struct {
		in   float32
		want int64
	}{{0, 0}, {1.4, 1}, {1.6, 2}, {-1.6, -2}, {80604.5, 80604}, {80605.5, 80606}}
	for _, c := range cases {
		if got := fastRound32(c.in); got != c.want {
			t.Errorf("fastRound32(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRoundTrip32Decimals(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	src := make([]float32, 1024)
	for i := range src {
		src[i] = float32(r.Intn(10000)) / 100
	}
	dec := SampleRowGroup32(src)
	if dec.UseRD {
		t.Fatal("decimal float32 data must not switch to ALP_rd")
	}
	c, _ := ChooseForVector32(src, dec.Combos)
	v := EncodeVector32(src, c, nil)
	got := make([]float32, len(src))
	v.Decode(got, nil)
	for i := range src {
		if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
			t.Fatalf("value %d: got %v, want %v", i, got[i], src[i])
		}
	}
	if v.SizeBits() >= 1024*32 {
		t.Fatalf("no compression achieved (%d bits)", v.SizeBits())
	}
}

func TestQuickLossless32(t *testing.T) {
	f := func(raw []uint32, e8, f8 uint8) bool {
		e := e8 % (MaxExponent32 + 1)
		fa := f8 % (e + 1)
		src := make([]float32, len(raw))
		for i, b := range raw {
			src[i] = math.Float32frombits(b)
		}
		v := EncodeVector32(src, Combo{E: e, F: fa}, nil)
		got := make([]float32, len(src))
		v.Decode(got, nil)
		for i := range src {
			if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampler32DetectsWeights(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	values := make([]float32, 4096)
	for i := range values {
		values[i] = float32(r.NormFloat64()) * 0.02 // ML-weight-like
	}
	dec := SampleRowGroup32(values)
	if !dec.UseRD {
		t.Fatalf("weight-like float32 data must switch to ALP_rd (estimate %.1f)", dec.EstBitsPerValue)
	}
}

func BenchmarkEncodeVector(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	src := decimals(r, 1024, 2)
	scratch := make([]int64, 1024)
	b.SetBytes(1024 * 8)
	for i := 0; i < b.N; i++ {
		EncodeVector(src, Combo{E: 2, F: 0}, scratch)
	}
}

func BenchmarkDecodeVector(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	src := decimals(r, 1024, 2)
	v := EncodeVector(src, Combo{E: 2, F: 0}, nil)
	dst := make([]float64, 1024)
	scratch := make([]int64, 1024)
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Decode(dst, scratch)
	}
}
