package alpenc

import (
	"math"
	"sort"

	"github.com/goalp/alp/internal/bitpack"
	"github.com/goalp/alp/internal/fastlanes"
	"github.com/goalp/alp/internal/obs"
	"github.com/goalp/alp/internal/vector"
)

// Float32 ALP (paper §4.4): the same decimal encoding with the float32
// rounding sweet spot (2^22 + 2^23) and a reduced exponent range. A
// float32 mantissa holds 24 bits, so the scaled integers must stay
// below 2^22 for the fast-rounding trick.

// MaxExponent32 is the largest exponent considered for float32.
const MaxExponent32 = 10

const sweet32 = float32(1<<22 + 1<<23)

const encLimit32 = float32(1 << 22)

// ExceptionBits32 is the storage cost of one float32 exception: the raw
// 32-bit value plus a 16-bit position.
const ExceptionBits32 = 32 + 16

// rdThreshold32 is the estimated bits/value beyond which a float32
// row-group switches to ALP_rd-32. Float32 decimal encoding carries a
// higher exception rate than float64 (the inverse factors have fewer
// guard digits), so the cutover sits at 7/8 of the raw width rather
// than 3/4.
const rdThreshold32 = 28

// F10f holds exact float32 representations of 10^i for small i.
var F10f = [MaxExponent32 + 1]float32{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10,
}

// IF10f holds the float32 closest to 10^-i.
var IF10f = [MaxExponent32 + 1]float32{
	1e0, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10,
}

// fastRound32 rounds x to the nearest integer using the float32 sweet
// spot. The caller must ensure |x| < encLimit32.
func fastRound32(x float32) int64 {
	return int64(x + sweet32 - sweet32)
}

// Vector32 is one ALP-encoded vector of float32 values.
type Vector32 struct {
	E, F    uint8
	N       int
	Ints    fastlanes.FFOR
	ExcPos  []uint16
	ExcVals []float32
}

// EncodeVector32 is the float32 counterpart of EncodeVector.
func EncodeVector32(src []float32, c Combo, scratch []int64) Vector32 {
	n := len(src)
	enc := scratch
	if enc == nil {
		enc = make([]int64, n)
	}
	enc = enc[:n]
	fe, ff := F10f[c.E], IF10f[c.F]
	de, df := IF10f[c.E], F10f[c.F]

	v := Vector32{E: c.E, F: c.F, N: n}
	excIdx := make([]uint16, 0, 8)
	for i, x := range src {
		scaled := x * fe * ff
		var d int64
		if scaled >= -encLimit32 && scaled <= encLimit32 {
			d = fastRound32(scaled)
		}
		enc[i] = d
		back := float32(d) * df * de
		if math.Float32bits(back) != math.Float32bits(x) {
			excIdx = append(excIdx, uint16(i))
		}
	}
	if len(excIdx) > 0 {
		first := findFirstEncoded(enc, excIdx)
		v.ExcPos = excIdx
		v.ExcVals = make([]float32, len(excIdx))
		for k, pos := range excIdx {
			v.ExcVals[k] = src[pos]
			enc[pos] = first
		}
	}
	v.Ints = fastlanes.EncodeFFOR(enc)
	return v
}

// Decode decompresses the vector into dst (len dst == v.N).
func (v *Vector32) Decode(dst []float32, scratch []int64) {
	ints := scratch
	if ints == nil {
		ints = make([]int64, v.N)
	}
	ints = ints[:v.N]
	v.Ints.Decode(ints)
	df, de := F10f[v.F], IF10f[v.E]
	for i, d := range ints {
		dst[i] = float32(d) * df * de
	}
	for k, pos := range v.ExcPos {
		dst[pos] = v.ExcVals[k]
	}
}

// Exceptions returns the number of exceptions in the vector.
func (v *Vector32) Exceptions() int { return len(v.ExcPos) }

// SizeBits returns the exact compressed size in bits.
func (v *Vector32) SizeBits() int {
	return v.Ints.SizeBits() + len(v.ExcPos)*ExceptionBits32 + 16 + 16
}

// comboCost32 is the float32 counterpart of comboCost.
func comboCost32(sample []float32, c Combo) (bits, exceptions int) {
	fe, ff := F10f[c.E], IF10f[c.F]
	df, de := F10f[c.F], IF10f[c.E]
	min, max := int64(math.MaxInt64), int64(math.MinInt64)
	nonExc := 0
	for _, x := range sample {
		scaled := x * fe * ff
		if !(scaled >= -encLimit32 && scaled <= encLimit32) {
			exceptions++
			continue
		}
		d := fastRound32(scaled)
		if math.Float32bits(float32(d)*df*de) != math.Float32bits(x) {
			exceptions++
			continue
		}
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		nonExc++
	}
	var w uint
	if nonExc > 0 {
		w = bitpack.Width(uint64(max) - uint64(min))
	}
	return len(sample)*int(w) + exceptions*ExceptionBits32, exceptions
}

// FindBest32 exhaustively searches the float32 (e,f) space.
func FindBest32(sample []float32) (Combo, int) {
	best := Combo{}
	bestCost := math.MaxInt
	for e := MaxExponent32; e >= 0; e-- {
		for f := e; f >= 0; f-- {
			c := Combo{E: uint8(e), F: uint8(f)}
			cost, _ := comboCost32(sample, c)
			if cost < bestCost {
				bestCost = cost
				best = c
			}
		}
	}
	return best, bestCost
}

func sampleEquidistant32(src []float32, count int) []float32 {
	if len(src) <= count {
		return src
	}
	out := make([]float32, count)
	step := len(src) / count
	for i := range out {
		out[i] = src[i*step]
	}
	return out
}

// SampleRowGroup32 is the float32 counterpart of SampleRowGroup: a row
// group estimated above rdThreshold32 bits/value switches to ALP_rd-32.
func SampleRowGroup32(values []float32) Decision {
	nv := vector.VectorsIn(len(values))
	nSample := SampleVectors
	if nv < nSample {
		nSample = nv
	}
	step := 1
	if nv > nSample {
		step = nv / nSample
	}
	type cand struct {
		c     Combo
		count int
	}
	counts := make(map[Combo]int, nSample)
	totalCost, totalVals := 0, 0
	for i := 0; i < nSample; i++ {
		lo, hi := vector.Bounds(i*step, len(values))
		sample := sampleEquidistant32(values[lo:hi], SampleValuesPerVec)
		best, cost := FindBest32(sample)
		counts[best]++
		totalCost += cost
		totalVals += len(sample)
	}
	cands := make([]cand, 0, len(counts))
	for c, n := range counts {
		cands = append(cands, cand{c, n})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].count != cands[j].count {
			return cands[i].count > cands[j].count
		}
		if cands[i].c.E != cands[j].c.E {
			return cands[i].c.E > cands[j].c.E
		}
		return cands[i].c.F > cands[j].c.F
	})
	if len(cands) > MaxCombos {
		cands = cands[:MaxCombos]
	}
	d := Decision{Combos: make([]Combo, len(cands))}
	for i, c := range cands {
		d.Combos[i] = c.c
	}
	if totalVals > 0 {
		d.EstBitsPerValue = float64(totalCost) / float64(totalVals)
	}
	d.UseRD = d.EstBitsPerValue >= rdThreshold32
	return d
}

// ChooseForVector32 is the float32 counterpart of ChooseForVector.
func ChooseForVector32(vec []float32, combos []Combo) (Combo, int) {
	o := obs.Active()
	if len(combos) == 1 {
		o.SecondStageSkipped()
		return combos[0], 0
	}
	sample := sampleEquidistant32(vec, SecondStageSamples)
	best := combos[0]
	bestCost, _ := comboCost32(sample, best)
	tried := 1
	worseStreak := 0
	early := false
	for _, c := range combos[1:] {
		cost, _ := comboCost32(sample, c)
		tried++
		if cost < bestCost {
			bestCost = cost
			best = c
			worseStreak = 0
		} else {
			worseStreak++
			if worseStreak >= 2 {
				early = tried < len(combos)
				break
			}
		}
	}
	o.SecondStage(tried, early)
	return best, tried
}
