package alpenc

import (
	"math/bits"

	"github.com/goalp/alp/internal/fastlanes"
)

// Predicate translation into the encoded-integer domain.
//
// For a fixed combination (e, f) the decode map
//
//	dec(d) = fl(fl(float64(d) * 10^f) * 10^-e)
//
// is monotone non-decreasing in d: each step is a multiplication by a
// positive constant, and IEEE-754 round-to-nearest is a monotone
// function, so the composition preserves order (plateaus are possible,
// strict order is not required). ALP's lossless contract guarantees
// dec(d) equals the original value bit-exactly for every non-exception
// slot, so for a closed float interval [lo, hi] the qualifying encoded
// integers are exactly
//
//	{ d : dec(d) >= lo } ∩ { d : dec(d) <= hi } = [dlo, dhi]
//
// — an upward-closed set intersected with a downward-closed one. The
// boundaries are found by binary search over the encodable range
// (fast rounding confines encoded integers to ±2^51), which makes the
// translation exact with ~2·52 multiplications per vector, amortized
// over 1024 values.

// decLimit bounds the encoded-integer search space: fastRound only
// produces integers in [-2^51, 2^51].
const decLimit = int64(1) << 51

// decodeOne applies Formula 2 to a single encoded integer.
func decodeOne(d int64, df, de float64) float64 {
	return float64(d) * df * de
}

// EncodedRange translates the closed float interval [lo, hi] (infinite
// endpoints allowed, NaN not allowed) into the encoded-integer domain
// of combination (e, f): on ok, every non-exception encoded integer d
// of a vector using (e, f) satisfies dec(d) ∈ [lo, hi] ⟺ d ∈
// [dlo, dhi]. ok=false means no encodable integer can qualify (the
// caller still has to evaluate the float predicate over exceptions).
func EncodedRange(lo, hi float64, e, f uint8) (dlo, dhi int64, ok bool) {
	df, de := F10[f], IF10[e]
	if decodeOne(decLimit, df, de) < lo || decodeOne(-decLimit, df, de) > hi {
		return 0, 0, false
	}
	dlo = encodedLowerBound(lo, df, de)
	dhi = encodedUpperBound(hi, df, de)
	if dlo > dhi {
		return 0, 0, false
	}
	return dlo, dhi, true
}

// encodedLowerBound returns the smallest d in [-2^51, 2^51] with
// dec(d) >= lo. The caller has checked that at least one such d exists.
func encodedLowerBound(lo float64, df, de float64) int64 {
	l, h := -decLimit, decLimit
	for l < h {
		m := l + (h-l)/2
		if decodeOne(m, df, de) >= lo {
			h = m
		} else {
			l = m + 1
		}
	}
	return l
}

// encodedUpperBound returns the largest d in [-2^51, 2^51] with
// dec(d) <= hi. The caller has checked that at least one such d exists.
func encodedUpperBound(hi float64, df, de float64) int64 {
	l, h := -decLimit, decLimit
	for l < h {
		m := l + (h-l+1)/2
		if decodeOne(m, df, de) <= hi {
			l = m
		} else {
			h = m - 1
		}
	}
	return l
}

// Filter evaluates the closed range [lo, hi] over the vector in the
// encoded domain, writing a selection bitmap into sel
// (fastlanes.SelWords(v.N) words, fully overwritten) and returning the
// match count.
//
// Non-exception slots are decided by the fused FFOR unpack+compare
// kernel without reconstructing any float. Exception slots hold a
// placeholder integer in the FFOR payload, so whatever the kernel
// computed for them is discarded and replaced by the float-domain
// predicate over the stored exception value — this is also what makes
// NaN never match and ±Inf, -0.0 and out-of-range values behave exactly
// like a decode-then-filter scan.
//
// scratch must hold v.N int64s; on return it holds the raw packed
// integers, the invariant GatherSelected relies on.
func (v *Vector) Filter(lo, hi float64, sel []uint64, scratch []int64) int {
	var count int
	if dlo, dhi, ok := EncodedRange(lo, hi, v.E, v.F); ok {
		count = v.Ints.FilterRange(dlo, dhi, sel, scratch)
	} else {
		for i := 0; i < fastlanes.SelWords(v.N); i++ {
			sel[i] = 0
		}
	}
	for k, pos := range v.ExcPos {
		x := v.ExcVals[k]
		want := x >= lo && x <= hi // false for NaN
		word, bit := int(pos)>>6, uint64(1)<<uint(pos&63)
		has := sel[word]&bit != 0
		if want && !has {
			sel[word] |= bit
			count++
		} else if !want && has {
			sel[word] &^= bit
			count--
		}
	}
	return count
}

// GatherSelected materializes the rows selected by sel into dst
// (written densely from index 0, in position order) and returns how
// many were written. It must be called right after Filter with the
// same scratch buffer: selected non-exception rows are reconstructed
// from the raw packed integers left in scratch, selected exception
// rows come from the exception segment. Only qualifying rows are ever
// converted to floats.
func (v *Vector) GatherSelected(sel []uint64, scratch []int64, dst []float64) int {
	df, de := F10[v.F], IF10[v.E]
	base := v.Ints.Base
	n := 0
	k := 0
	for w := 0; w < fastlanes.SelWords(v.N); w++ {
		word := sel[w]
		for word != 0 {
			i := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			for k < len(v.ExcPos) && int(v.ExcPos[k]) < i {
				k++
			}
			if k < len(v.ExcPos) && int(v.ExcPos[k]) == i {
				dst[n] = v.ExcVals[k]
			} else {
				dst[n] = float64(scratch[i]+base) * df * de
			}
			n++
		}
	}
	return n
}
