package alpenc

import (
	"math"
	"math/rand"
	"testing"

	"github.com/goalp/alp/internal/fastlanes"
)

// encodeForTest runs the sampler-free encode path: pick the combo by
// brute force over a few candidates so tests control (e, f) pressure.
func encodeForTest(values []float64, c Combo) Vector {
	return EncodeVector(values, c, nil)
}

// filterVectorOracle evaluates the predicate over the original values.
func filterVectorOracle(values []float64, lo, hi float64) ([]uint64, int) {
	sel := make([]uint64, fastlanes.SelWords(len(values)))
	count := 0
	for i, x := range values {
		if x >= lo && x <= hi {
			sel[i>>6] |= 1 << uint(i&63)
			count++
		}
	}
	return sel, count
}

func checkVectorFilter(t *testing.T, values []float64, c Combo, lo, hi float64) {
	t.Helper()
	v := encodeForTest(values, c)
	sel := make([]uint64, fastlanes.SelWords(len(values)))
	scratch := make([]int64, len(values))
	got := v.Filter(lo, hi, sel, scratch)
	wantSel, want := filterVectorOracle(values, lo, hi)
	if got != want {
		t.Fatalf("Filter([%v, %v]) count = %d, want %d (combo e=%d f=%d, %d exceptions)",
			lo, hi, got, want, c.E, c.F, v.Exceptions())
	}
	for i := range wantSel {
		if sel[i] != wantSel[i] {
			t.Fatalf("Filter([%v, %v]) sel[%d] = %016x, want %016x", lo, hi, i, sel[i], wantSel[i])
		}
	}
	// Gather must reproduce the qualifying values bit-exactly, in order.
	dst := make([]float64, len(values))
	n := v.GatherSelected(sel, scratch, dst)
	if n != want {
		t.Fatalf("GatherSelected wrote %d values, want %d", n, want)
	}
	j := 0
	for i, x := range values {
		if x >= lo && x <= hi {
			if math.Float64bits(dst[j]) != math.Float64bits(x) {
				t.Fatalf("gathered[%d] = %x, want values[%d] = %x",
					j, math.Float64bits(dst[j]), i, math.Float64bits(x))
			}
			j++
		}
	}
}

func TestEncodedRangeMonotoneBoundaries(t *testing.T) {
	// For a handful of combos and random bounds, the binary-searched
	// boundaries must be exact: dec(dlo) >= lo, dec(dlo-1) < lo, and
	// symmetrically for dhi.
	r := rand.New(rand.NewSource(7))
	combos := []Combo{{E: 0, F: 0}, {E: 2, F: 1}, {E: 14, F: 12}, {E: 21, F: 0}, {E: 21, F: 21}, {E: 5, F: 5}}
	for _, c := range combos {
		df, de := F10[c.F], IF10[c.E]
		for trial := 0; trial < 200; trial++ {
			lo := (r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(10)))
			hi := lo + r.Float64()*math.Pow(10, float64(r.Intn(8)))
			dlo, dhi, ok := EncodedRange(lo, hi, c.E, c.F)
			if !ok {
				continue
			}
			if got := decodeOne(dlo, df, de); got < lo {
				t.Fatalf("combo %v: dec(dlo=%d) = %v < lo = %v", c, dlo, got, lo)
			}
			if dlo > -decLimit {
				if got := decodeOne(dlo-1, df, de); got >= lo {
					t.Fatalf("combo %v: dec(dlo-1=%d) = %v >= lo = %v (dlo not minimal)", c, dlo-1, got, lo)
				}
			}
			if got := decodeOne(dhi, df, de); got > hi {
				t.Fatalf("combo %v: dec(dhi=%d) = %v > hi = %v", c, dhi, got, hi)
			}
			if dhi < decLimit {
				if got := decodeOne(dhi+1, df, de); got <= hi {
					t.Fatalf("combo %v: dec(dhi+1=%d) = %v <= hi = %v (dhi not maximal)", c, dhi+1, got, hi)
				}
			}
		}
	}
}

func TestVectorFilterDecimals(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	values := make([]float64, 1024)
	for i := range values {
		values[i] = float64(r.Intn(100000)) / 100 // 2-decimal prices
	}
	c := Combo{E: 2, F: 0}
	bounds := [][2]float64{
		{100, 200},
		{0, 999.99},
		{500.25, 500.25}, // point predicate
		{-10, -1},        // nothing
		{999, 2000},      // upper tail
		{values[0], values[0]},
		{math.Inf(-1), math.Inf(1)}, // everything
		{math.Inf(-1), 250},
		{250, math.Inf(1)},
	}
	for _, b := range bounds {
		checkVectorFilter(t, values, c, b[0], b[1])
	}
}

func TestVectorFilterExceptions(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	values := make([]float64, 1024)
	for i := range values {
		values[i] = float64(r.Intn(10000)) / 100
	}
	// Sprinkle exception-forcing values: specials and undecodable reals.
	values[0] = math.NaN()
	values[1] = math.Inf(1)
	values[2] = math.Inf(-1)
	values[3] = math.Copysign(0, -1)
	values[4] = math.Pi
	values[511] = 1e300
	values[1023] = math.NaN()
	c := Combo{E: 2, F: 0}
	bounds := [][2]float64{
		{0, 50},
		{math.Inf(-1), math.Inf(1)}, // everything except NaN
		{math.Inf(1), math.Inf(1)},  // only +Inf
		{math.Inf(-1), math.Inf(-1)},
		{0, 0},               // +0.0 and -0.0 both match
		{3, 4},               // catches pi via exception patching
		{1e299, math.Inf(1)}, // catches 1e300 and +Inf
	}
	for _, b := range bounds {
		checkVectorFilter(t, values, c, b[0], b[1])
	}
}

func TestVectorFilterAllExceptions(t *testing.T) {
	// A vector that is 100% exceptions: every slot holds the placeholder
	// integer, so correctness depends entirely on patching.
	values := make([]float64, 300)
	for i := range values {
		if i%2 == 0 {
			values[i] = math.NaN()
		} else {
			values[i] = math.Sqrt2 * float64(i)
		}
	}
	c := Combo{E: 0, F: 0}
	checkVectorFilter(t, values, c, 0, 1000)
	checkVectorFilter(t, values, c, math.Inf(-1), math.Inf(1))
	checkVectorFilter(t, values, c, 5, 5)

	allNaN := make([]float64, 128)
	for i := range allNaN {
		allNaN[i] = math.NaN()
	}
	checkVectorFilter(t, allNaN, c, math.Inf(-1), math.Inf(1))
	checkVectorFilter(t, allNaN, c, 0, 0)
}

func TestVectorFilterBoundsOutsideEncodableRange(t *testing.T) {
	values := []float64{1.5, 2.5, 3.5, 4.5}
	c := Combo{E: 1, F: 0}
	// Bounds beyond ±2^51 in the encoded domain: the translation must
	// clamp, not overflow.
	checkVectorFilter(t, values, c, -1e308, 1e308)
	checkVectorFilter(t, values, c, 1e300, 1e308)
	checkVectorFilter(t, values, c, -1e308, -1e300)
}
