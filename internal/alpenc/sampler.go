package alpenc

import (
	"math"
	"sort"

	"github.com/goalp/alp/internal/bitpack"
	"github.com/goalp/alp/internal/obs"
	"github.com/goalp/alp/internal/vector"
)

// Sampling parameters (paper §4, "Sampling Parameters"): k=5 candidate
// combinations, 8 vectors sampled per row-group, 32 values sampled per
// vector in both sampling levels.
const (
	MaxCombos             = 5  // k
	SampleVectors         = 8  // vectors sampled per row-group
	SampleValuesPerVec    = 32 // values sampled per vector, first level
	SecondStageSamples    = 32 // s, values sampled per vector, second level
	rdThresholdBitsPerVal = 48 // estimated bits/value beyond which ALP_rd takes over (§3.4)
)

// Decision is the outcome of first-level (row-group) sampling: the k'
// best (e,f) combinations ordered by frequency, the size estimate the
// choice was based on, and whether the row-group should switch to the
// ALP_rd scheme entirely (§3.4).
type Decision struct {
	Combos          []Combo
	EstBitsPerValue float64
	UseRD           bool
}

// comboCost estimates the compressed size in bits of encoding sample
// with combination c: every slot costs the bit width implied by the
// successful integers' range, and every exception additionally costs 80
// bits (§3.1). It returns the cost and the exception count.
func comboCost(sample []float64, c Combo) (bits, exceptions int) {
	fe, ff := F10[c.E], IF10[c.F]
	df, de := F10[c.F], IF10[c.E]
	min, max := int64(math.MaxInt64), int64(math.MinInt64)
	nonExc := 0
	for _, x := range sample {
		scaled := x * fe * ff
		if !(scaled >= -encLimit && scaled <= encLimit) {
			exceptions++
			continue
		}
		d := fastRound(scaled)
		if math.Float64bits(float64(d)*df*de) != math.Float64bits(x) {
			exceptions++
			continue
		}
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		nonExc++
	}
	var w uint
	if nonExc > 0 {
		w = bitpack.Width(uint64(max) - uint64(min))
	}
	return len(sample)*int(w) + exceptions*ExceptionBits, exceptions
}

// FindBest exhaustively searches all 253 (e,f) combinations for the one
// minimizing comboCost on the sample. Ties prefer higher exponents and
// factors, mirroring the paper's tie-break. It also returns the winning
// cost in bits.
func FindBest(sample []float64) (Combo, int) {
	best := Combo{}
	bestCost := math.MaxInt
	for e := MaxExponent; e >= 0; e-- {
		for f := e; f >= 0; f-- {
			c := Combo{E: uint8(e), F: uint8(f)}
			cost, _ := comboCost(sample, c)
			if cost < bestCost {
				bestCost = cost
				best = c
			}
		}
	}
	return best, bestCost
}

// sampleEquidistant copies count equidistant elements of src into a new
// slice. If src has fewer than count elements it is returned as-is.
func sampleEquidistant(src []float64, count int) []float64 {
	if len(src) <= count {
		return src
	}
	out := make([]float64, count)
	step := len(src) / count
	for i := range out {
		out[i] = src[i*step]
	}
	return out
}

// SampleRowGroup performs first-level sampling on a row-group of values
// (§3.2): it samples equidistant values from equidistant vectors, finds
// each sampled vector's best combination exhaustively, and keeps the k
// most frequent ones. It also estimates the achievable bits/value; when
// that estimate exceeds the ALP_rd threshold the caller should encode
// the whole row-group with ALP_rd instead (§3.4).
func SampleRowGroup(values []float64) Decision {
	nv := vector.VectorsIn(len(values))
	nSample := SampleVectors
	if nv < nSample {
		nSample = nv
	}
	step := 1
	if nv > nSample {
		step = nv / nSample
	}

	type cand struct {
		c     Combo
		count int
	}
	counts := make(map[Combo]int, nSample)
	totalCost, totalVals := 0, 0
	for i := 0; i < nSample; i++ {
		lo, hi := vector.Bounds(i*step, len(values))
		sample := sampleEquidistant(values[lo:hi], SampleValuesPerVec)
		best, cost := FindBest(sample)
		counts[best]++
		totalCost += cost
		totalVals += len(sample)
	}

	cands := make([]cand, 0, len(counts))
	for c, n := range counts {
		cands = append(cands, cand{c, n})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].count != cands[j].count {
			return cands[i].count > cands[j].count
		}
		if cands[i].c.E != cands[j].c.E {
			return cands[i].c.E > cands[j].c.E
		}
		return cands[i].c.F > cands[j].c.F
	})
	if len(cands) > MaxCombos {
		cands = cands[:MaxCombos]
	}

	d := Decision{Combos: make([]Combo, len(cands))}
	for i, c := range cands {
		d.Combos[i] = c.c
	}
	if totalVals > 0 {
		d.EstBitsPerValue = float64(totalCost) / float64(totalVals)
	}
	d.UseRD = d.EstBitsPerValue >= rdThresholdBitsPerVal
	return d
}

// ChooseForVector performs second-level sampling (§3.2): it evaluates
// the row-group's k' candidate combinations on s equidistant values of
// the vector, with a greedy early exit — if two consecutive candidates
// perform no better than the best so far, the search stops. When the
// row-group yielded a single combination the sampling is skipped
// entirely. It returns the chosen combination and how many candidates
// were tried (for the sampling-overhead experiment, §4.2).
func ChooseForVector(vec []float64, combos []Combo) (Combo, int) {
	o := obs.Active()
	if len(combos) == 1 {
		o.SecondStageSkipped()
		return combos[0], 0
	}
	sample := sampleEquidistant(vec, SecondStageSamples)
	best := combos[0]
	bestCost, _ := comboCost(sample, best)
	tried := 1
	worseStreak := 0
	early := false
	for _, c := range combos[1:] {
		cost, _ := comboCost(sample, c)
		tried++
		if cost < bestCost {
			bestCost = cost
			best = c
			worseStreak = 0
		} else {
			worseStreak++
			if worseStreak >= 2 {
				early = tried < len(combos)
				break
			}
		}
	}
	o.SecondStage(tried, early)
	return best, tried
}
