// domains.go synthesizes the workload domains the paper's Table 1 does
// not cover: HPC simulation state, observability telemetry and ML
// weights. FCBench benchmarks float compressors across exactly these
// domains and finds no universal winner — the cross-domain gauntlet
// (internal/gauntlet) reproduces that finding on these generators, so
// each one is matched to the fingerprint that drives codec behaviour in
// its domain: HPC fields are smooth full-mantissa doubles (XOR codecs
// and ALP_rd territory), observability series are low-precision
// decimals with duplicates and plateaus (ALP territory), and ML tensors
// are full-precision near-zero values, widened-float32 or native
// float64.
//
// Every generator follows the package seed contract (see Seed): all
// randomness comes from the *rand.Rand argument, so Generate is
// bit-reproducible across machines.
package dataset

import (
	"math"
	"math/rand"
)

// hpcField produces a smooth simulation field: a sum of sinusoidal
// modes with random phases plus a small thermal noise term. Values
// carry full mantissa entropy (no decimal quantization), like the
// msg/num fields in FCBench's HPC suite, so ALP falls back to ALP_rd
// while smooth adjacency keeps XOR-based codecs competitive.
func hpcField(r *rand.Rand, n, modes int, base, amp, noise float64) []float64 {
	type mode struct{ freq, phase, amp float64 }
	ms := make([]mode, modes)
	for i := range ms {
		ms[i] = mode{
			freq:  (0.5 + r.Float64()*4) / math.Pow(2, float64(i)),
			phase: r.Float64() * 2 * math.Pi,
			amp:   amp / float64(i+1),
		}
	}
	out := make([]float64, n)
	for i := range out {
		v := base
		x := float64(i) * 0.01
		for _, m := range ms {
			v += m.amp * math.Sin(m.freq*x+m.phase)
		}
		out[i] = v + r.NormFloat64()*noise
	}
	return out
}

// stepGauge produces a plateau-and-step series, the shape of memory
// and queue-depth gauges: long runs of one exact value (allocation
// plateaus — strongly RLE/duplicate-friendly) separated by jumps.
// Values are integral multiples of unit.
func stepGauge(r *rand.Rand, n int, base, jump, unit float64, runMean int) []float64 {
	out := make([]float64, n)
	level := math.Round(base/unit) * unit
	left := 0
	for i := range out {
		if left == 0 {
			left = 1 + int(r.ExpFloat64()*float64(runMean))
			step := r.NormFloat64() * jump
			level = math.Max(0, math.Round((level+step)/unit)*unit)
		}
		left--
		out[i] = level
	}
	return out
}

// cpuUtil produces a bounded [0,100] utilization series: a diurnal
// carrier plus load noise and occasional saturation spikes, quantized
// to two decimals the way metric pipelines report percentages.
func cpuUtil(r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	spike := 0
	for i := range out {
		carrier := 35 + 20*math.Sin(2*math.Pi*float64(i)/86400)
		v := carrier + r.NormFloat64()*8
		if spike > 0 {
			spike--
			v = 97 + r.Float64()*3
		} else if r.Float64() < 0.001 {
			spike = 1 + r.Intn(200)
		}
		out[i] = quantize(math.Min(100, math.Max(0, v)), 2)
	}
	return out
}

// mlTensor produces layer-structured model values: per-block normal
// scales like Weights32, as native float64 (widen=false) or as float64
// widened from float32 storage (widen=true, giving 29 trailing zero
// mantissa bits — the shape of checkpoints loaded into double
// pipelines).
func mlTensor(r *rand.Rand, n int, scales []float64, widen bool) []float64 {
	out := make([]float64, n)
	for i := range out {
		s := scales[(i/4096)%len(scales)]
		v := r.NormFloat64() * s
		if widen {
			v = float64(float32(v))
		}
		out[i] = v
	}
	return out
}

// Extended returns the gauntlet's domain datasets: three per domain for
// HPC, observability and ML weights. They are intentionally not part
// of All(), which stays the paper's Table 1 registry (the alpbench
// experiment tables iterate All and must keep reproducing the paper).
func Extended() []Dataset {
	return []Dataset{
		// ---- HPC simulation state ----
		{Name: "HPC/msg-sweep3d", Semantics: "Transport sweep wavefront", Domain: DomainHPC, RD: true,
			gen: func(r *rand.Rand, n int) []float64 {
				return hpcField(r, n, 5, 1.2e4, 900, 0.3)
			}},
		{Name: "HPC/num-brain", Semantics: "Membrane potential (mV)", Domain: DomainHPC, RD: true,
			gen: func(r *rand.Rand, n int) []float64 {
				out := hpcField(r, n, 3, -65, 4, 0.02)
				// Periodic spikes: the num-brain traces are mostly-smooth
				// potentials with depolarization bursts.
				for i := 0; i < n; i++ {
					if r.Float64() < 0.002 {
						for j := i; j < i+8 && j < n; j++ {
							out[j] += 80 * math.Exp(-0.7*float64(j-i))
						}
					}
				}
				return out
			}},
		{Name: "HPC/turbulence", Semantics: "Velocity field (m/s)", Domain: DomainHPC, RD: true,
			gen: func(r *rand.Rand, n int) []float64 {
				return hpcField(r, n, 8, 0, 2.5, 0.05)
			}},

		// ---- observability telemetry ----
		{Name: "Obs/cpu-util", Semantics: "CPU utilization (%)", Domain: DomainObservability,
			gen: cpuUtil},
		{Name: "Obs/latency-ms", Semantics: "Request latency (ms)", Domain: DomainObservability,
			gen: func(r *rand.Rand, n int) []float64 {
				// Log-normal latencies quantized to microseconds: median
				// ~8ms, a long tail into seconds.
				return heavyTailed(r, n, math.Log(8), 1.2, 3, 0.4, 3, 0.12)
			}},
		{Name: "Obs/mem-rss", Semantics: "Resident set size (MiB)", Domain: DomainObservability,
			gen: func(r *rand.Rand, n int) []float64 {
				return stepGauge(r, n, 3200, 180, 0.0625, 700)
			}},

		// ---- ML weights ----
		{Name: "ML/weights-f32", Semantics: "Model weights (widened float32)", Domain: DomainML,
			gen: func(r *rand.Rand, n int) []float64 {
				return mlTensor(r, n, []float64{0.008, 0.02, 0.05, 0.12}, true)
			}},
		{Name: "ML/gradients", Semantics: "Training gradients", Domain: DomainML, RD: true,
			gen: func(r *rand.Rand, n int) []float64 {
				return mlTensor(r, n, []float64{1e-4, 6e-4, 3e-3, 9e-3}, false)
			}},
		{Name: "ML/embeddings", Semantics: "Embedding table", Domain: DomainML, RD: true,
			gen: func(r *rand.Rand, n int) []float64 {
				out := make([]float64, n)
				for i := range out {
					out[i] = r.Float64()*2 - 1
				}
				return out
			}},
	}
}
