package dataset

import (
	"math"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 30 {
		t.Fatalf("registry has %d datasets, want 30", len(all))
	}
	ts := 0
	names := make(map[string]bool)
	for _, d := range all {
		if names[d.Name] {
			t.Fatalf("duplicate dataset name %q", d.Name)
		}
		names[d.Name] = true
		if d.TimeSeries {
			ts++
		}
	}
	if ts != 13 {
		t.Fatalf("%d time series datasets, want 13 (Table 1)", ts)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d, ok := ByName("City-Temp")
	if !ok {
		t.Fatal("City-Temp missing")
	}
	a := d.Generate(2048)
	b := d.Generate(2048)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("generation is not deterministic at %d", i)
		}
	}
}

func TestByNameMissing(t *testing.T) {
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName must fail for unknown names")
	}
}

func TestQuantize(t *testing.T) {
	cases := []struct {
		v    float64
		p    int
		want float64
	}{
		{8.06051, 4, 8.0605}, {1.25, 1, 1.3}, {-3.14159, 2, -3.14}, {7, 0, 7},
	}
	for _, c := range cases {
		if got := quantize(c.v, c.p); got != c.want {
			t.Errorf("quantize(%v, %d) = %v, want %v", c.v, c.p, got, c.want)
		}
	}
}

func TestDecimalPrecision(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{8.0605, 4}, {5, 0}, {0.001, 3}, {-2.5, 1}, {123000, 0}, {0, 0},
	}
	for _, c := range cases {
		if got := DecimalPrecision(c.v); got != c.want {
			t.Errorf("DecimalPrecision(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if DecimalPrecision(math.NaN()) != -1 {
		t.Error("NaN must report -1")
	}
}

// TestFingerprints spot-checks that the generated datasets reproduce
// the Table 2 properties that drive compression behaviour.
func TestFingerprints(t *testing.T) {
	check := func(name string, f func(s Stats)) {
		d, ok := ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		f(Analyze(name, d.Generate(40960)))
	}

	check("City-Temp", func(s Stats) {
		if s.PrecMax > 1 || s.PrecAvg < 0.5 || s.PrecAvg > 1 {
			t.Errorf("City-Temp precision: max %d avg %.2f, want max 1 avg ~0.9", s.PrecMax, s.PrecAvg)
		}
	})
	check("CMS/9", func(s Stats) {
		if s.PrecAvg != 0 {
			t.Errorf("CMS/9 must be integers, got precision avg %.2f", s.PrecAvg)
		}
		if s.SuccessBestE < 99 {
			t.Errorf("CMS/9 integers must encode near-perfectly, got %.1f%%", s.SuccessBestE)
		}
	})
	check("Gov/26", func(s Stats) {
		if s.NonUniquePct < 95 {
			t.Errorf("Gov/26 duplicates %.1f%%, want ~99.5%%", s.NonUniquePct)
		}
		if s.ExpAvg > 60 {
			t.Errorf("Gov/26 exponent avg %.1f, want near zero (mostly exact zeros)", s.ExpAvg)
		}
	})
	check("POI-lat", func(s Stats) {
		if s.PrecMax < 15 {
			t.Errorf("POI-lat max precision %d, want >= 15 (real doubles)", s.PrecMax)
		}
		if s.SuccessPerVector > 90 {
			t.Errorf("POI-lat per-vector success %.1f%%, want low (hard data)", s.SuccessPerVector)
		}
		if s.XORLeadAvg > 20 {
			t.Errorf("POI-lat XOR leading zeros %.1f, want low", s.XORLeadAvg)
		}
	})
	check("Air-Pressure", func(s Stats) {
		if s.ExpStd > 1 {
			t.Errorf("Air-Pressure exponent std %.2f, want ~0 (tight range)", s.ExpStd)
		}
		if s.SuccessPerVector < 95 {
			t.Errorf("Air-Pressure per-vector success %.1f%%, want ~99%%", s.SuccessPerVector)
		}
	})
	check("Stocks-USA", func(s Stats) {
		if s.NonUniquePct < 70 {
			t.Errorf("Stocks-USA duplicates %.1f%%, want ~91%%", s.NonUniquePct)
		}
		if s.PrecMax > 2 {
			t.Errorf("Stocks-USA precision max %d, want 2", s.PrecMax)
		}
	})
	check("NYC/29", func(s Stats) {
		if s.PrecAvg < 10 {
			t.Errorf("NYC/29 precision avg %.1f, want ~12.9", s.PrecAvg)
		}
		if s.ValueAvg > -70 || s.ValueAvg < -78 {
			t.Errorf("NYC/29 value avg %.1f, want ~-73.9", s.ValueAvg)
		}
	})
}

// TestHighExponentsBeatVisible reproduces the paper's §2.5 finding: a
// single high exponent per dataset succeeds more often than using each
// value's visible precision.
func TestHighExponentsBeatVisible(t *testing.T) {
	d, _ := ByName("Basel-temp")
	s := Analyze("Basel-temp", d.Generate(20480))
	if s.SuccessBestE < s.SuccessVisible {
		t.Errorf("best single e (%.1f%%) must beat visible precision (%.1f%%)", s.SuccessBestE, s.SuccessVisible)
	}
	if s.BestE < 10 {
		t.Errorf("best exponent %d, want a high exponent (paper: 14)", s.BestE)
	}
}

func TestWeights32(t *testing.T) {
	w := Weights32(newRand(1), 8192)
	if len(w) != 8192 {
		t.Fatalf("got %d values", len(w))
	}
	var nonZero int
	for _, v := range w {
		if v != 0 {
			nonZero++
		}
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("weights must be finite")
		}
	}
	if nonZero < 8000 {
		t.Fatalf("only %d non-zero weights", nonZero)
	}
}
