package dataset

import (
	"math"
	"testing"
)

// TestExtendedRegistry pins the gauntlet registry shape: the paper's 30
// datasets stay untouched in All(), the extended registry adds three
// datasets for each of the three new domains, and every domain the
// gauntlet sweeps has at least three members.
func TestExtendedRegistry(t *testing.T) {
	if got := len(All()); got != 30 {
		t.Fatalf("All() has %d datasets, want the paper's 30", got)
	}
	ext := Extended()
	if len(ext) != 9 {
		t.Fatalf("Extended() has %d datasets, want 9", len(ext))
	}
	names := make(map[string]bool)
	for _, d := range AllExtended() {
		if names[d.Name] {
			t.Fatalf("duplicate dataset name %q", d.Name)
		}
		names[d.Name] = true
	}
	byDomain := make(map[string]int)
	for _, d := range AllExtended() {
		if d.Domain == "" {
			t.Fatalf("dataset %q has no domain", d.Name)
		}
		byDomain[d.Domain]++
	}
	for _, dom := range Domains() {
		if byDomain[dom] < 3 {
			t.Errorf("domain %q has %d datasets, want >= 3", dom, byDomain[dom])
		}
		if got := len(ByDomain(dom)); got != byDomain[dom] {
			t.Errorf("ByDomain(%q) = %d datasets, counted %d", dom, got, byDomain[dom])
		}
	}
	if len(byDomain) != len(Domains()) {
		t.Errorf("datasets span %d domains, Domains() lists %d", len(byDomain), len(Domains()))
	}
}

// TestSeedsUnique enforces the seed contract's collision clause: no two
// registry names may hash to the same generator seed, or two "different"
// datasets would be the same data.
func TestSeedsUnique(t *testing.T) {
	seeds := make(map[int64]string)
	for _, d := range AllExtended() {
		s := Seed(d.Name)
		if prev, ok := seeds[s]; ok {
			t.Fatalf("seed collision: %q and %q both seed to %d", prev, d.Name, s)
		}
		seeds[s] = d.Name
	}
}

// TestExtendedDeterministic asserts the reproducibility half of the
// seed contract for every extended dataset: two Generate calls are
// bit-identical, so gauntlet baselines mean the same data everywhere.
func TestExtendedDeterministic(t *testing.T) {
	for _, d := range Extended() {
		a := d.Generate(4096)
		b := d.Generate(4096)
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s: non-deterministic generation at index %d: %v vs %v",
					d.Name, i, a[i], b[i])
			}
		}
	}
}

// TestDomainGeneratorsSane spot-checks that each new generator produces
// the fingerprint its domain claims.
func TestDomainGeneratorsSane(t *testing.T) {
	const n = 8192
	for _, d := range Extended() {
		vals := d.Generate(n)
		if len(vals) != n {
			t.Fatalf("%s: generated %d values, want %d", d.Name, len(vals), n)
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite value %v at %d", d.Name, v, i)
			}
		}
	}

	util, _ := ByName("Obs/cpu-util")
	for i, v := range util.Generate(n) {
		if v < 0 || v > 100 {
			t.Fatalf("Obs/cpu-util: value %v at %d outside [0,100]", v, i)
		}
	}

	rss, _ := ByName("Obs/mem-rss")
	rssVals := rss.Generate(n)
	dups := 0
	for i := 1; i < n; i++ {
		if rssVals[i] < 0 {
			t.Fatalf("Obs/mem-rss: negative gauge %v", rssVals[i])
		}
		if rssVals[i] == rssVals[i-1] {
			dups++
		}
	}
	if dups < n/2 {
		t.Errorf("Obs/mem-rss: %d/%d adjacent duplicates, want plateau-heavy series", dups, n)
	}

	w32, _ := ByName("ML/weights-f32")
	for i, v := range w32.Generate(n) {
		if float64(float32(v)) != v {
			t.Fatalf("ML/weights-f32: value %v at %d is not a widened float32", v, i)
		}
	}
}
