package dataset

import "math/rand"

// Domain names group datasets the way FCBench groups float-compression
// workloads: no codec wins across all of them, which is exactly the
// adaptivity claim the cross-domain gauntlet (internal/gauntlet)
// measures. The paper's Table 1 datasets map onto the time-series and
// database domains; the HPC, observability and ML-weights domains are
// synthesized additions (see domains.go).
const (
	DomainTimeSeries    = "timeseries"
	DomainDB            = "db"
	DomainHPC           = "hpc"
	DomainObservability = "observability"
	DomainML            = "ml"
)

// Dataset is one synthesized evaluation dataset.
type Dataset struct {
	Name       string
	Semantics  string
	TimeSeries bool
	// Domain is the FCBench-style workload domain (Domain* constants).
	Domain string
	// RD marks the datasets the paper reports as falling back to ALP_rd.
	RD  bool
	gen func(r *rand.Rand, n int) []float64
}

// DefaultN is the default number of values generated per dataset: two
// full row-groups, enough to exercise both sampling levels and give
// stable ratios while keeping full-suite experiments fast. The
// end-to-end experiments scale up by concatenation, as the paper does.
const DefaultN = 204800

// Seed is the dataset seed contract: every dataset's generator is
// seeded with Seed(name) — a base-131 polynomial hash of the dataset
// name — and must derive ALL of its randomness from the *rand.Rand it
// is passed (no global rand, no time, no per-call state). Two
// consequences the gauntlet baselines rely on: (1) Generate(n) is
// bit-identical across processes, machines and Go versions for a given
// name, and (2) no two registry names may collide to the same seed
// (asserted by TestSeedsUnique).
func Seed(name string) int64 {
	seed := int64(0)
	for _, c := range name {
		seed = seed*131 + int64(c)
	}
	return seed
}

// Generate produces n values. Generation is deterministic per dataset
// name (see Seed), so repeated runs and benchmarks see identical data.
func (d Dataset) Generate(n int) []float64 {
	return d.gen(rand.New(rand.NewSource(Seed(d.Name))), n)
}

// ByName returns the dataset with the given name, searching the full
// extended registry (paper Table 1 plus the gauntlet domains).
func ByName(name string) (Dataset, bool) {
	for _, d := range AllExtended() {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// AllExtended returns every dataset: the paper's 30 (All), the
// gauntlet's HPC, observability and ML-weights additions (Extended),
// and the per-domain float32 cells (Extended32).
func AllExtended() []Dataset {
	return append(append(All(), Extended()...), Extended32()...)
}

// Domains returns the workload domains in gauntlet order.
func Domains() []string {
	return []string{DomainHPC, DomainTimeSeries, DomainObservability, DomainDB, DomainML}
}

// ByDomain returns the extended-registry datasets in the given domain.
func ByDomain(domain string) []Dataset {
	var out []Dataset
	for _, d := range AllExtended() {
		if d.Domain == domain {
			out = append(out, d)
		}
	}
	return out
}

// All returns the 30 datasets in the order of Table 1/2. Each spec is
// matched to the dataset's Table 2 fingerprint: decimal precision
// (C2-C5), per-vector magnitude (C7-C8), duplicate fraction (C6),
// exponent distribution (C9-C10, which for the Gov columns encodes the
// fraction of exact zeros) and the time-series property.
func All() []Dataset {
	ds := []Dataset{
		// ---- time series ----
		{Name: "Air-Pressure", Semantics: "Barometric Pressure (kPa)", TimeSeries: true,
			gen: genSpec{precMin: 0, precMax: 5, precAvg: 4.9, precStd: 0.3,
				base: 93.4, spread: 0.05, drift: 0.002, dupFrac: 0.747, walk: true}.generate},
		{Name: "Basel-temp", Semantics: "Temperature (C)", TimeSeries: true,
			gen: genSpec{precMin: 5, precMax: 11, precAvg: 6.3, precStd: 0.4,
				base: 11.4, spread: 1.0, drift: 0.2, dupFrac: 0.262, negative: true, walk: true}.generate},
		{Name: "Basel-wind", Semantics: "Wind Speed (km/h)", TimeSeries: true,
			gen: genSpec{precMin: 0, precMax: 8, precAvg: 6.1, precStd: 1.2,
				base: 7.1, spread: 1.5, drift: 0.15, dupFrac: 0.618, walk: true}.generate},
		{Name: "Bird-migration", Semantics: "Coordinates (lat, lon)", TimeSeries: true,
			gen: genSpec{precMin: 1, precMax: 5, precAvg: 4.5, precStd: 0.8,
				base: 26.6, spread: 1.2, drift: 0.05, dupFrac: 0.559, walk: true}.generate},
		{Name: "Bitcoin-price", Semantics: "Exchange Rate (BTC-USD)", TimeSeries: true,
			gen: genSpec{precMin: 1, precMax: 4, precAvg: 3.9, precStd: 0.4,
				base: 19187.5, spread: 120, drift: 25, walk: true}.generate},
		{Name: "City-Temp", Semantics: "Temperature (F)", TimeSeries: true,
			gen: genSpec{precMin: 0, precMax: 1, precAvg: 0.9, precStd: 0.3,
				base: 56.0, spread: 6, drift: 0.4, dupFrac: 0.603, negative: true, walk: true}.generate},
		{Name: "Dew-Point-Temp", Semantics: "Temperature (C)", TimeSeries: true,
			gen: genSpec{precMin: 0, precMax: 3, precAvg: 2.8, precStd: 0.3,
				base: 14.4, spread: 0.5, drift: 0.05, dupFrac: 0.193, negative: true, walk: true}.generate},
		{Name: "IR-bio-temp", Semantics: "Temperature (C)", TimeSeries: true,
			gen: genSpec{precMin: 0, precMax: 2, precAvg: 1.9, precStd: 0.3,
				base: 12.7, spread: 1.5, drift: 0.1, dupFrac: 0.491, negative: true, walk: true}.generate},
		{Name: "PM10-dust", Semantics: "Dust content (mg/m3)", TimeSeries: true,
			gen: genSpec{precMin: 0, precMax: 3, precAvg: 2.8, precStd: 0.2,
				base: 1.5, spread: 0.3, drift: 0.01, dupFrac: 0.937, walk: true}.generate},
		{Name: "Stocks-DE", Semantics: "Monetary (stocks)", TimeSeries: true,
			gen: genSpec{precMin: 0, precMax: 3, precAvg: 2.4, precStd: 0.5,
				base: 63.8, spread: 0.8, drift: 0.05, dupFrac: 0.892, walk: true}.generate},
		{Name: "Stocks-UK", Semantics: "Monetary (stocks)", TimeSeries: true,
			gen: genSpec{precMin: 0, precMax: 2, precAvg: 1.2, precStd: 0.6,
				base: 1593.7, spread: 20, drift: 2, dupFrac: 0.881, walk: true}.generate},
		{Name: "Stocks-USA", Semantics: "Monetary (stocks)", TimeSeries: true,
			gen: genSpec{precMin: 0, precMax: 2, precAvg: 1.9, precStd: 0.4,
				base: 146.1, spread: 1.5, drift: 0.1, dupFrac: 0.915, walk: true}.generate},
		{Name: "Wind-dir", Semantics: "Angle (0-360)", TimeSeries: true,
			gen: genSpec{precMin: 0, precMax: 2, precAvg: 1.9, precStd: 0.3,
				base: 192.4, spread: 70, drift: 2, dupFrac: 0.039, walk: true}.generate},

		// ---- non time series ----
		{Name: "Arade/4", Semantics: "Energy",
			gen: genSpec{precMin: 0, precMax: 4, precAvg: 3.5, precStd: 0.6,
				base: 738.4, spread: 380, dupFrac: 0.002}.generate},
		{Name: "Blockchain-tr", Semantics: "Monetary (BTC)",
			gen: func(r *rand.Rand, n int) []float64 {
				return heavyTailed(r, n, 5.0, 3.0, 3.8, 0.6, 4, 0.006)
			}},
		{Name: "CMS/1", Semantics: "Monetary avg (USD)",
			gen: genSpec{precMin: 0, precMax: 10, precAvg: 4.0, precStd: 2.8,
				base: 97.0, spread: 105, dupFrac: 0.547}.generate},
		{Name: "CMS/25", Semantics: "Monetary std dev (USD)",
			gen: genSpec{precMin: 0, precMax: 10, precAvg: 9.1, precStd: 1.9,
				base: 12.6, spread: 18, dupFrac: 0.057}.generate},
		{Name: "CMS/9", Semantics: "Discrete count",
			gen: genSpec{precMin: 0, precMax: 1, precAvg: 0, precStd: 0,
				base: 235.7, spread: 850, dupFrac: 0.715}.generate},
		{Name: "Food-prices", Semantics: "Monetary (USD)",
			gen: func(r *rand.Rand, n int) []float64 {
				return heavyTailed(r, n, 6.0, 2.2, 1.1, 1.1, 4, 0.525)
			}},
		{Name: "Gov/10", Semantics: "Monetary (USD)",
			gen: genSpec{precMin: 0, precMax: 2, precAvg: 1.0, precStd: 0.8,
				base: 240153, spread: 500000, dupFrac: 0.261, zeroFrac: 0.15}.generate},
		{Name: "Gov/26", Semantics: "Monetary (USD)",
			gen: genSpec{precMin: 0, precMax: 2, precAvg: 0, precStd: 0.1,
				base: 442.3, spread: 8000, dupFrac: 0.2, zeroFrac: 0.995}.generate},
		{Name: "Gov/30", Semantics: "Monetary (USD)",
			gen: genSpec{precMin: 0, precMax: 2, precAvg: 0.1, precStd: 0.3,
				base: 10998, spread: 90000, dupFrac: 0.2, zeroFrac: 0.888}.generate},
		{Name: "Gov/31", Semantics: "Monetary (USD)",
			gen: genSpec{precMin: 0, precMax: 2, precAvg: 0.1, precStd: 0.1,
				base: 893.2, spread: 6000, dupFrac: 0.2, zeroFrac: 0.932}.generate},
		{Name: "Gov/40", Semantics: "Monetary (USD)",
			gen: genSpec{precMin: 0, precMax: 2, precAvg: 0, precStd: 0.05,
				base: 791.4, spread: 6500, dupFrac: 0.2, zeroFrac: 0.988}.generate},
		{Name: "Medicare/1", Semantics: "Monetary avg (USD)",
			gen: genSpec{precMin: 0, precMax: 10, precAvg: 4.0, precStd: 2.9,
				base: 97.0, spread: 140, dupFrac: 0.413}.generate},
		{Name: "Medicare/9", Semantics: "Discrete count",
			gen: genSpec{precMin: 0, precMax: 1, precAvg: 0, precStd: 0,
				base: 235.7, spread: 950, dupFrac: 0.706}.generate},
		{Name: "NYC/29", Semantics: "Coordinates (lon)",
			gen: genSpec{precMin: 0, precMax: 13, precAvg: 12.9, precStd: 0.3,
				base: -73.9, spread: 0.04, dupFrac: 0.51, negative: true}.generate},
		{Name: "POI-lat", Semantics: "Coordinates (lat, radians)", RD: true,
			gen: func(r *rand.Rand, n int) []float64 {
				return realDoubles(r, n, -85, 85, 3.14159265358979323846/180)
			}},
		{Name: "POI-lon", Semantics: "Coordinates (lon, radians)", RD: true,
			gen: func(r *rand.Rand, n int) []float64 {
				return realDoubles(r, n, -180, 180, 3.14159265358979323846/180)
			}},
		{Name: "SD-bench", Semantics: "Storage capacity (GB)",
			gen: genSpec{precMin: 0, precMax: 1, precAvg: 0.9, precStd: 0.2,
				base: 446.0, spread: 450, dupFrac: 0.924}.generate},
	}
	// The paper's datasets split across two FCBench domains: the Table 1
	// time series are the time-series domain, everything else (monetary,
	// government workbooks, coordinates) is tabular database data.
	for i := range ds {
		if ds[i].TimeSeries {
			ds[i].Domain = DomainTimeSeries
		} else {
			ds[i].Domain = DomainDB
		}
	}
	return ds
}
