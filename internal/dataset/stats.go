package dataset

import (
	"math"
	"math/bits"
	"strconv"
	"strings"

	"github.com/goalp/alp/internal/vector"
)

// Stats holds the Table 2 metrics (columns C2-C15) recomputed on a
// dataset.
type Stats struct {
	Name string

	PrecMax, PrecMin int     // C2, C3
	PrecAvg          float64 // C4
	PrecStd          float64 // C5: mean per-vector precision std dev

	NonUniquePct float64 // C6: mean per-vector fraction of non-unique values
	ValueAvg     float64 // C7
	ValueStd     float64 // C8: mean per-vector value std dev

	ExpAvg float64 // C9: mean per-vector IEEE exponent
	ExpStd float64 // C10: mean per-vector exponent std dev

	SuccessVisible   float64 // C11: P_enc/P_dec success with visible precision as e
	BestE            int     // C12: single best exponent for the dataset
	SuccessBestE     float64 // C12: its success rate
	SuccessPerVector float64 // C13: success with per-vector best exponent

	XORLeadAvg  float64 // C14: mean leading zero bits of XOR with previous
	XORTrailAvg float64 // C15: mean trailing zero bits
}

const statsMaxExp = 22

var statsF10 = pow10

var statsIF10 = [23]float64{
	1e0, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11,
	1e-12, 1e-13, 1e-14, 1e-15, 1e-16, 1e-17, 1e-18, 1e-19, 1e-20, 1e-21, 1e-22,
}

// DecimalPrecision returns the number of decimal digits after the point
// in v's shortest round-tripping representation, or -1 for NaN/Inf.
func DecimalPrecision(v float64) int {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	s := strconv.FormatFloat(v, 'e', -1, 64)
	ei := strings.IndexByte(s, 'e')
	if ei < 0 {
		return -1
	}
	mant := s[:ei]
	if mant[0] == '-' {
		mant = mant[1:]
	}
	mantDigits := 0
	if dot := strings.IndexByte(mant, '.'); dot >= 0 {
		mantDigits = len(mant) - dot - 1
	}
	exp, err := strconv.Atoi(s[ei+1:])
	if err != nil {
		return -1
	}
	if a := mantDigits - exp; a > 0 {
		return a
	}
	return 0
}

// pencSuccess reports whether the paper's P_enc/P_dec procedures with
// exponent e recover v bit-exactly: d = round(v*10^e), back = d*10^-e.
func pencSuccess(v float64, e int) bool {
	scaled := v * statsF10[e]
	if math.IsNaN(scaled) || math.IsInf(scaled, 0) {
		return false
	}
	// Note: no 2^53 cap. Beyond it the rounding inside the multiplication
	// discards low bits, yet P_dec can still recover the original (the
	// discarded bits were below double precision); the paper's C12 results
	// (e=14 even on ~100-magnitude data) rely on exactly this.
	d := math.Round(scaled)
	return math.Float64bits(d*statsIF10[e]) == math.Float64bits(v)
}

// Analyze computes the Table 2 metrics for values.
func Analyze(name string, values []float64) Stats {
	s := Stats{Name: name, PrecMax: 0, PrecMin: 99}

	nv := vector.VectorsIn(len(values))
	var precSum, precStdSum, nonUniqueSum float64
	var valAvgSum, valStdSum, expAvgSum, expStdSum float64
	var visibleOK, perVecOK int
	singleOK := make([]int, statsMaxExp+1)
	var leadSum, trailSum float64
	var xorCount int

	total := 0
	for vi := 0; vi < nv; vi++ {
		lo, hi := vector.Bounds(vi, len(values))
		vec := values[lo:hi]
		n := len(vec)
		total += n

		// Precision stats.
		var pSum, pSq float64
		for _, v := range vec {
			p := DecimalPrecision(v)
			if p < 0 {
				p = 0
			}
			if p > s.PrecMax {
				s.PrecMax = p
			}
			if p < s.PrecMin {
				s.PrecMin = p
			}
			pSum += float64(p)
			pSq += float64(p) * float64(p)
		}
		mean := pSum / float64(n)
		precSum += pSum
		precStdSum += math.Sqrt(math.Max(0, pSq/float64(n)-mean*mean))

		// Uniqueness, value and exponent stats.
		seen := make(map[uint64]int, n)
		var vSum, vSq, eSum, eSq float64
		for _, v := range vec {
			b := math.Float64bits(v)
			seen[b]++
			vSum += v
			vSq += v * v
			exp := float64(b >> 52 & 0x7ff)
			eSum += exp
			eSq += exp * exp
		}
		nonUnique := 0
		for _, c := range seen {
			if c > 1 {
				nonUnique += c
			}
		}
		nonUniqueSum += float64(nonUnique) / float64(n)
		vMean := vSum / float64(n)
		valAvgSum += vMean
		valStdSum += math.Sqrt(math.Max(0, vSq/float64(n)-vMean*vMean))
		eMean := eSum / float64(n)
		expAvgSum += eMean
		expStdSum += math.Sqrt(math.Max(0, eSq/float64(n)-eMean*eMean))

		// P_enc/P_dec success rates.
		vecSingle := make([]int, statsMaxExp+1)
		for _, v := range vec {
			p := DecimalPrecision(v)
			if p >= 0 && p <= statsMaxExp && pencSuccess(v, p) {
				visibleOK++
			}
			for e := 0; e <= statsMaxExp; e++ {
				if pencSuccess(v, e) {
					vecSingle[e]++
				}
			}
		}
		bestVec := 0
		for e, c := range vecSingle {
			singleOK[e] += c
			if c > vecSingle[bestVec] || (c == vecSingle[bestVec] && e > bestVec) {
				bestVec = e
			}
		}
		perVecOK += vecSingle[bestVec]

		// XOR with previous value.
		for i := 1; i < n; i++ {
			x := math.Float64bits(vec[i]) ^ math.Float64bits(vec[i-1])
			if x == 0 {
				leadSum += 64
				trailSum += 64
			} else {
				leadSum += float64(bits.LeadingZeros64(x))
				trailSum += float64(bits.TrailingZeros64(x))
			}
			xorCount++
		}
	}

	if total == 0 {
		return s
	}
	fn := float64(total)
	s.PrecAvg = precSum / fn
	s.PrecStd = precStdSum / float64(nv)
	s.NonUniquePct = 100 * nonUniqueSum / float64(nv)
	s.ValueAvg = valAvgSum / float64(nv)
	s.ValueStd = valStdSum / float64(nv)
	s.ExpAvg = expAvgSum / float64(nv)
	s.ExpStd = expStdSum / float64(nv)
	s.SuccessVisible = 100 * float64(visibleOK) / fn
	for e, c := range singleOK {
		if c > singleOK[s.BestE] || (c == singleOK[s.BestE] && e > s.BestE) {
			s.BestE = e
		}
	}
	s.SuccessBestE = 100 * float64(singleOK[s.BestE]) / fn
	s.SuccessPerVector = 100 * float64(perVecOK) / fn
	if xorCount > 0 {
		s.XORLeadAvg = leadSum / float64(xorCount)
		s.XORTrailAvg = trailSum / float64(xorCount)
	}
	return s
}
