// f32.go adds the float32 gauntlet cells (ROADMAP item 4 remainder):
// one widened-float32 dataset per workload domain. FCBench treats
// float32 as a first-class precision — most ML checkpoints and many
// telemetry pipelines store single precision — and ALP's natural unit
// is the widened double (float64(float32(v)) leaves 29 trailing zero
// mantissa bits for the decimal scheme or a short right-cut for
// ALP_rd). Each cell reuses an existing domain generator and widens
// its output, so the f32 column carries the same fingerprint as its
// domain (smoothness, duplicates, tail shape) at single precision.
package dataset

import "math/rand"

// widen32 wraps a generator so every value round-trips through float32
// storage. The wrapped generator draws from the same *rand.Rand it is
// handed, so the seed contract (see Seed) holds: the f32 dataset's name
// seeds its own stream, independent of the base dataset's.
func widen32(gen func(*rand.Rand, int) []float64) func(*rand.Rand, int) []float64 {
	return func(r *rand.Rand, n int) []float64 {
		out := gen(r, n)
		for i, v := range out {
			out[i] = float64(float32(v))
		}
		return out
	}
}

// Extended32 returns one float32-widened dataset per domain, derived
// from a representative member of that domain. They join AllExtended
// (so ByName and the gauntlet resolve them) but not All or Extended,
// whose shapes are pinned by the paper tables and the registry test.
func Extended32() []Dataset {
	base := func(name string) func(*rand.Rand, int) []float64 {
		for _, d := range append(All(), Extended()...) {
			if d.Name == name {
				return d.gen
			}
		}
		panic("dataset: Extended32 base " + name + " not in registry")
	}
	return []Dataset{
		{Name: "HPC/turbulence-f32", Semantics: "Velocity field (m/s, float32)",
			Domain: DomainHPC, RD: true, gen: widen32(base("HPC/turbulence"))},
		{Name: "Basel-temp-f32", Semantics: "Temperature (C, float32)", TimeSeries: true,
			Domain: DomainTimeSeries, gen: widen32(base("Basel-temp"))},
		{Name: "Obs/latency-ms-f32", Semantics: "Request latency (ms, float32)",
			Domain: DomainObservability, gen: widen32(base("Obs/latency-ms"))},
		{Name: "POI-lat-f32", Semantics: "Coordinates (lat, radians, float32)",
			Domain: DomainDB, RD: true, gen: widen32(base("POI-lat"))},
		{Name: "ML/gradients-f32", Semantics: "Training gradients (float32)",
			Domain: DomainML, RD: true, gen: widen32(base("ML/gradients"))},
	}
}
