// Package dataset synthesizes the 30 evaluation datasets of the paper's
// Table 1 from their Table 2 fingerprints (decimal precision
// distribution, magnitude, duplicate fraction, exponent variance,
// time-series behaviour), and recomputes the Table 2 metrics on the
// synthesized data.
//
// The real datasets are multi-gigabyte downloads, several behind
// registration walls, and are not redistributable; §2 of the paper
// argues that compression behaviour is a function of exactly the
// properties tabulated in Table 2, so generators matched to those
// properties preserve each scheme's relative behaviour (see DESIGN.md,
// substitution 1).
package dataset

import (
	"math"
	"math/rand"
)

// genSpec parameterizes the decimal-data generator that covers 28 of
// the 30 datasets (everything except the POI "real double" data).
type genSpec struct {
	// Visible decimal precision: per-value precision is drawn from
	// N(precAvg, precStd) clamped to [precMin, precMax].
	precMin, precMax int
	precAvg, precStd float64

	// Value magnitude: the level of the series (time series walk the
	// level; non-time-series draw around it).
	base   float64
	spread float64 // per-vector std of values around the level
	drift  float64 // per-step level drift for time series

	dupFrac  float64 // probability of repeating one of the recent values
	zeroFrac float64 // probability of an exact 0 (the Gov/* columns)
	negative bool    // allow negative values
	walk     bool    // time series random walk
}

// quantize rounds v to p decimal places the way user-entered data is
// created: an integer count of decimal units divided by the exact power
// of ten, yielding the double nearest the decimal value.
func quantize(v float64, p int) float64 {
	scale := pow10[p]
	d := math.Round(v * scale)
	return d / scale
}

// pow10 holds exact powers of ten for quantization.
var pow10 = [23]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// dataRunMean is the mean length of a populated stretch in zero-heavy
// datasets. Real-world sparse columns (the Gov/* workbooks) alternate
// long all-zero regions with populated regions, not i.i.d. sprinkles —
// which is what makes them RLE-friendly and lets per-vector adaptivity
// encode all-zero vectors at ~0 bits (Table 4: Gov/26 at 0.4
// bits/value). Data runs average one vector; zero runs are sized so the
// long-run zero fraction matches zeroFrac.
const dataRunMean = 1024

// generate produces n values according to the spec.
func (g genSpec) generate(r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	level := g.base
	recent := make([]float64, 0, 64)
	var zeroLeft, dataLeft int
	var drawZero, drawData func() int
	if g.zeroFrac > 0 && g.zeroFrac < 1 {
		zeroMean := dataRunMean * g.zeroFrac / (1 - g.zeroFrac)
		drawZero = func() int { return 1 + int(r.ExpFloat64()*zeroMean) }
		drawData = func() int { return 1 + int(r.ExpFloat64()*dataRunMean) }
		if r.Float64() < g.zeroFrac {
			zeroLeft = drawZero()
		} else {
			dataLeft = drawData()
		}
	}
	for i := range out {
		if drawZero != nil {
			if zeroLeft == 0 && dataLeft == 0 {
				zeroLeft = drawZero()
			}
			if zeroLeft > 0 {
				zeroLeft--
				if zeroLeft == 0 {
					dataLeft = drawData()
				}
				out[i] = 0
				continue
			}
			dataLeft--
		}
		if g.dupFrac > 0 && len(recent) > 0 && r.Float64() < g.dupFrac {
			out[i] = recent[r.Intn(len(recent))]
			continue
		}
		p := int(math.Round(g.precAvg + r.NormFloat64()*g.precStd))
		if p < g.precMin {
			p = g.precMin
		}
		if p > g.precMax {
			p = g.precMax
		}
		var v float64
		if g.walk {
			level += r.NormFloat64() * g.drift
			v = level + r.NormFloat64()*g.spread
		} else {
			v = g.base + r.NormFloat64()*g.spread
		}
		if !g.negative && v < 0 {
			v = -v
		}
		v = quantize(v, p)
		out[i] = v
		if len(recent) < cap(recent) {
			recent = append(recent, v)
		} else {
			recent[i%cap(recent)] = v
		}
	}
	return out
}

// realDoubles produces full-precision doubles in [lo, hi) scaled by
// factor — the POI generator (coordinates in radians, i.e. degrees
// multiplied by pi/180, giving mantissas with full entropy).
func realDoubles(r *rand.Rand, n int, lo, hi, factor float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = (lo + r.Float64()*(hi-lo)) * factor
	}
	return out
}

// heavyTailed produces decimal values whose magnitude spans several
// orders (Blockchain-tr, Food-prices, Gov/10): a log-normal level with
// per-value decimal quantization.
func heavyTailed(r *rand.Rand, n int, medianLog, sigmaLog float64, precAvg, precStd float64, precMax int, dupFrac float64) []float64 {
	out := make([]float64, n)
	recent := make([]float64, 0, 64)
	for i := range out {
		if dupFrac > 0 && len(recent) > 0 && r.Float64() < dupFrac {
			out[i] = recent[r.Intn(len(recent))]
			continue
		}
		p := int(math.Round(precAvg + r.NormFloat64()*precStd))
		if p < 0 {
			p = 0
		}
		if p > precMax {
			p = precMax
		}
		v := math.Exp(medianLog + r.NormFloat64()*sigmaLog)
		v = quantize(v, p)
		out[i] = v
		if len(recent) < cap(recent) {
			recent = append(recent, v)
		} else {
			recent[i%cap(recent)] = v
		}
	}
	return out
}

// Weights32 produces float32 tensors resembling trained model weights:
// a mixture of near-zero normals at layer-like scales, full-precision
// mantissas (Table 7's workload).
func Weights32(r *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	scales := []float64{0.008, 0.02, 0.05, 0.12}
	for i := range out {
		s := scales[(i/4096)%len(scales)]
		out[i] = float32(r.NormFloat64() * s)
	}
	return out
}

// newRand returns a deterministic source for auxiliary generators.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
