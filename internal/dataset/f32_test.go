package dataset

import (
	"math"
	"testing"
)

// TestExtended32Registry pins the float32 cells: exactly one per
// domain, resolvable through ByName, and every generated value is a
// widened float32 (float64(float32(v)) is the identity).
func TestExtended32Registry(t *testing.T) {
	cells := Extended32()
	if len(cells) != len(Domains()) {
		t.Fatalf("Extended32() has %d datasets, want one per domain (%d)", len(cells), len(Domains()))
	}
	seen := make(map[string]bool)
	for _, d := range cells {
		if seen[d.Domain] {
			t.Errorf("domain %q has more than one float32 cell", d.Domain)
		}
		seen[d.Domain] = true
		if _, ok := ByName(d.Name); !ok {
			t.Errorf("%s: not resolvable via ByName", d.Name)
		}
		for i, v := range d.Generate(8192) {
			if !math.IsNaN(v) && float64(float32(v)) != v {
				t.Fatalf("%s: value %v at %d is not a widened float32", d.Name, v, i)
			}
		}
	}
}

// TestExtended32Deterministic extends the seed contract to the float32
// cells: repeated Generate calls are bit-identical, so the gauntlet
// baseline means the same data everywhere.
func TestExtended32Deterministic(t *testing.T) {
	for _, d := range Extended32() {
		a := d.Generate(4096)
		b := d.Generate(4096)
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s: non-deterministic generation at index %d: %v vs %v",
					d.Name, i, a[i], b[i])
			}
		}
	}
}
