// Package vector defines the vectorized-execution constants and small
// helpers shared by every codec in this repository.
//
// Following the paper (§2, §4), data is processed in vectors of 1024
// values, and vectors are grouped into row-groups of 100 vectors. All
// per-vector metadata (exponent, factor, bit width, FOR base, exception
// count) is stored once per vector so its cost is amortized over 1024
// values; all per-row-group metadata (scheme choice, sampled (e,f)
// combinations, ALP_rd cut position and dictionary) is amortized over
// 102400 values.
package vector

// Size is the number of values in one vector. The paper fixes it to 1024
// so a vector of doubles (8 KiB) comfortably fits in the L1 cache.
const Size = 1024

// RowGroupVectors is the number of vectors in one row-group. The paper
// fixes it to 100 to emulate common OLAP row-group sizes (e.g. DuckDB).
const RowGroupVectors = 100

// RowGroupSize is the number of values in a full row-group.
const RowGroupSize = Size * RowGroupVectors

// VectorsIn returns how many vectors are needed to hold n values. The
// last vector may be partial.
func VectorsIn(n int) int {
	return (n + Size - 1) / Size
}

// RowGroupsIn returns how many row-groups are needed to hold n values.
// The last row-group may be partial.
func RowGroupsIn(n int) int {
	return (n + RowGroupSize - 1) / RowGroupSize
}

// Bounds returns the [lo, hi) value range of vector v within a column of
// n values.
func Bounds(v, n int) (lo, hi int) {
	lo = v * Size
	hi = lo + Size
	if hi > n {
		hi = n
	}
	return lo, hi
}
