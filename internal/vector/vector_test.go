package vector

import "testing"

func TestConstants(t *testing.T) {
	// The paper's constants: vectors of 1024 values, row-groups of 100
	// vectors.
	if Size != 1024 || RowGroupVectors != 100 || RowGroupSize != 102400 {
		t.Fatalf("constants changed: %d %d %d", Size, RowGroupVectors, RowGroupSize)
	}
}

func TestVectorsIn(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {1023, 1}, {1024, 1}, {1025, 2}, {102400, 100}, {102401, 101},
	}
	for _, c := range cases {
		if got := VectorsIn(c.n); got != c.want {
			t.Errorf("VectorsIn(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestRowGroupsIn(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {102400, 1}, {102401, 2}, {204800, 2},
	}
	for _, c := range cases {
		if got := RowGroupsIn(c.n); got != c.want {
			t.Errorf("RowGroupsIn(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBounds(t *testing.T) {
	cases := []struct{ v, n, lo, hi int }{
		{0, 5000, 0, 1024},
		{1, 5000, 1024, 2048},
		{4, 5000, 4096, 5000}, // partial last vector
		{0, 100, 0, 100},
	}
	for _, c := range cases {
		lo, hi := Bounds(c.v, c.n)
		if lo != c.lo || hi != c.hi {
			t.Errorf("Bounds(%d, %d) = (%d, %d), want (%d, %d)", c.v, c.n, lo, hi, c.lo, c.hi)
		}
	}
}
