package format

import (
	"math"
	"testing"

	"github.com/goalp/alp/internal/vector"
)

func TestBuildZoneMap(t *testing.T) {
	values := make([]float64, 2*vector.Size)
	for i := 0; i < vector.Size; i++ {
		values[i] = float64(i) // vector 0: [0, 1023]
	}
	for i := vector.Size; i < len(values); i++ {
		values[i] = -100.5 // vector 1: constant
	}
	zm := BuildZoneMap(values)
	if zm.Min[0] != 0 || zm.Max[0] != 1023 {
		t.Fatalf("vector 0 bounds = [%v, %v]", zm.Min[0], zm.Max[0])
	}
	if zm.Min[1] != -100.5 || zm.Max[1] != -100.5 {
		t.Fatalf("vector 1 bounds = [%v, %v]", zm.Min[1], zm.Max[1])
	}
	if !zm.HasValues[0] || !zm.HasValues[1] {
		t.Fatal("both vectors hold values")
	}
}

func TestZoneMapNaN(t *testing.T) {
	values := make([]float64, vector.Size)
	for i := range values {
		values[i] = math.NaN()
	}
	zm := BuildZoneMap(values)
	if zm.HasValues[0] {
		t.Fatal("all-NaN vector must report no values")
	}
	if !zm.MayContain(0, 0, 1) {
		t.Fatal("all-NaN vector must be conservatively kept")
	}
}

func TestMayContain(t *testing.T) {
	zm := &ZoneMap{Min: []float64{10}, Max: []float64{20}, HasValues: []bool{true}}
	cases := []struct {
		lo, hi float64
		want   bool
	}{
		{0, 5, false}, {25, 30, false}, {0, 10, true}, {20, 30, true},
		{12, 15, true}, {0, 100, true}, {math.Inf(-1), math.Inf(1), true},
	}
	for _, c := range cases {
		if got := zm.MayContain(0, c.lo, c.hi); got != c.want {
			t.Errorf("MayContain([10,20], %v, %v) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestSumRangeSkipsVectors(t *testing.T) {
	// Three vectors with disjoint ranges; a predicate covering only the
	// middle one must touch exactly one vector.
	values := make([]float64, 3*vector.Size)
	for i := range values {
		base := float64(i/vector.Size) * 1000
		values[i] = base + float64(i%10)
	}
	c := EncodeColumn(values)
	sum, count, touched := c.SumRange(1000, 1009)
	if touched != 1 {
		t.Fatalf("touched %d vectors, want 1", touched)
	}
	if count != vector.Size {
		t.Fatalf("count = %d, want %d", count, vector.Size)
	}
	var want float64
	for i := vector.Size; i < 2*vector.Size; i++ {
		want += values[i]
	}
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

func TestSumRangeSurvivesMarshal(t *testing.T) {
	values := make([]float64, 2*vector.Size)
	for i := range values {
		values[i] = float64(i) / 4
	}
	c := EncodeColumn(values)
	c2, err := Unmarshal(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if c2.Zones == nil {
		t.Fatal("zone map must survive serialization")
	}
	s1, n1, t1 := c.SumRange(0, 100)
	s2, n2, t2 := c2.SumRange(0, 100)
	if s1 != s2 || n1 != n2 || t1 != t2 {
		t.Fatalf("SumRange differs after marshal: (%v,%d,%d) vs (%v,%d,%d)", s1, n1, t1, s2, n2, t2)
	}
	if t1 != 1 {
		t.Fatalf("touched %d vectors, want 1", t1)
	}
}

func TestSumRangeWithoutZoneMap(t *testing.T) {
	// A column without zones must still answer correctly (all vectors
	// touched).
	values := []float64{1, 2, 3, 4, 5}
	c := EncodeColumn(values)
	c.Zones = nil
	sum, count, touched := c.SumRange(2, 4)
	if sum != 9 || count != 3 || touched != 1 {
		t.Fatalf("got (%v, %d, %d)", sum, count, touched)
	}
}

func TestZoneMapSizeBits(t *testing.T) {
	zm := BuildZoneMap(make([]float64, 3*vector.Size))
	if zm.SizeBits() != 3*129 {
		t.Fatalf("SizeBits = %d, want %d", zm.SizeBits(), 3*129)
	}
}
