// Row-group slicing and stitching: the format-level primitives behind
// sharded column placement. A row-group is encoded from its own values
// only (EncodeColumn runs first-level sampling per row-group), so a
// standalone column assembled from any subset of another column's
// row-groups — in order, extents re-based to the local layout —
// marshals the row-group payloads byte-identically to the original.
// The cluster coordinator leans on that: sub-columns shipped to
// backends, range exports for rebalancing, and full-column stitching
// on /v1/columns/{name}/data all move compressed bytes without a
// single decode, and stitching a complete set of shards back together
// reproduces the single-node Marshal output bit for bit.

package format

import (
	"fmt"

	"github.com/goalp/alp/internal/vector"
)

// RowGroupRef names one row-group of a source column.
type RowGroupRef struct {
	Col *Column
	G   int // row-group index within Col
}

// StitchColumns assembles refs, in order, into a standalone column.
// Row-group state (vector payloads, dictionaries) is shared with the
// sources, not copied — sources are immutable — but extents are
// re-based to the stitched layout. Every ref except the last must be a
// full row-group, because only a column's final row-group may be
// partial. Zone-map entries are carried over when every source has
// them; if any source lacks a zone map the stitched column has none.
func StitchColumns(refs []RowGroupRef) (*Column, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("stitch: no row-groups")
	}
	out := &Column{}
	zones := true
	for i, ref := range refs {
		if ref.Col == nil || ref.G < 0 || ref.G >= len(ref.Col.RowGroups) {
			return nil, fmt.Errorf("stitch: ref %d out of range", i)
		}
		rg := ref.Col.RowGroups[ref.G] // copy; Start is re-based below
		if rg.N != vector.RowGroupSize && i != len(refs)-1 {
			return nil, fmt.Errorf("stitch: ref %d is a partial row-group (%d values) but not last", i, rg.N)
		}
		rg.Start = out.N
		out.RowGroups = append(out.RowGroups, rg)
		out.N += rg.N
		if ref.Col.Zones == nil {
			zones = false
		}
	}
	if !zones {
		return out, nil
	}
	nv := vector.VectorsIn(out.N)
	zm := &ZoneMap{
		Min:       make([]float64, 0, nv),
		Max:       make([]float64, 0, nv),
		HasValues: make([]bool, 0, nv),
	}
	for _, ref := range refs {
		lo := ref.G * vector.RowGroupVectors
		hi := lo + vector.VectorsIn(ref.Col.RowGroups[ref.G].N)
		zm.Min = append(zm.Min, ref.Col.Zones.Min[lo:hi]...)
		zm.Max = append(zm.Max, ref.Col.Zones.Max[lo:hi]...)
		zm.HasValues = append(zm.HasValues, ref.Col.Zones.HasValues[lo:hi]...)
	}
	out.Zones = zm
	return out, nil
}

// SliceColumn returns a standalone column holding row-groups [lo, hi]
// (inclusive) of c — the compressed export behind ranged /data
// requests. hi must be the last row-group of c unless row-group hi is
// full.
func SliceColumn(c *Column, lo, hi int) (*Column, error) {
	if lo < 0 || hi < lo || hi >= len(c.RowGroups) {
		return nil, fmt.Errorf("slice: row-group range [%d, %d] out of [0, %d)", lo, hi, len(c.RowGroups))
	}
	refs := make([]RowGroupRef, 0, hi-lo+1)
	for g := lo; g <= hi; g++ {
		refs = append(refs, RowGroupRef{Col: c, G: g})
	}
	return StitchColumns(refs)
}
