package format

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/goalp/alp/internal/alpenc"
	"github.com/goalp/alp/internal/alprd"
	"github.com/goalp/alp/internal/bitpack"
	"github.com/goalp/alp/internal/fastlanes"
	"github.com/goalp/alp/internal/vector"
)

// Magic identifies an ALP column stream ("ALP1" little-endian).
const Magic = uint32(0x31504C41)

// ErrCorrupt is returned when a stream fails structural validation.
var ErrCorrupt = errors.New("format: corrupt ALP stream")

func corrupt(whatf string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(whatf, args...))
}

// Marshal serializes the column to a self-describing byte stream.
func (c *Column) Marshal() []byte {
	out := make([]byte, 0, c.SizeBits()/8+64)
	out = binary.LittleEndian.AppendUint32(out, Magic)
	out = binary.LittleEndian.AppendUint64(out, uint64(c.N))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(c.RowGroups)))
	for i := range c.RowGroups {
		out = marshalRowGroup(out, &c.RowGroups[i])
	}
	// Optional zone-map trailer (scan statistics, not codec payload).
	if c.Zones == nil {
		return append(out, 0)
	}
	out = append(out, 1)
	for i := range c.Zones.Min {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(c.Zones.Min[i]))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(c.Zones.Max[i]))
		if c.Zones.HasValues[i] {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

func marshalRowGroup(out []byte, rg *RowGroup) []byte {
	out = append(out, byte(rg.Scheme))
	out = binary.LittleEndian.AppendUint32(out, uint32(rg.Start))
	out = binary.LittleEndian.AppendUint32(out, uint32(rg.N))
	if rg.Scheme == SchemeRD {
		out = append(out, rg.RD.P, byte(rg.RD.CodeWidth), byte(len(rg.RD.Dict)))
		for _, d := range rg.RD.Dict {
			out = binary.LittleEndian.AppendUint16(out, d)
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(rg.RDVectors)))
		for j := range rg.RDVectors {
			out = marshalRDVector(out, &rg.RDVectors[j])
		}
		return out
	}
	out = append(out, byte(len(rg.Combos)))
	for _, cb := range rg.Combos {
		out = append(out, cb.E, cb.F)
	}
	out = binary.LittleEndian.AppendUint16(out, uint16(len(rg.Vectors)))
	for j := range rg.Vectors {
		out = marshalALPVector(out, &rg.Vectors[j])
	}
	return out
}

func marshalALPVector(out []byte, v *alpenc.Vector) []byte {
	out = append(out, v.E, v.F)
	out = binary.LittleEndian.AppendUint16(out, uint16(v.N))
	out = binary.LittleEndian.AppendUint64(out, uint64(v.Ints.Base))
	out = append(out, byte(v.Ints.Width))
	for _, w := range v.Ints.Words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	out = binary.LittleEndian.AppendUint16(out, uint16(len(v.ExcPos)))
	for _, p := range v.ExcPos {
		out = binary.LittleEndian.AppendUint16(out, p)
	}
	for _, x := range v.ExcVals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(x))
	}
	return out
}

func marshalRDVector(out []byte, v *alprd.Vector) []byte {
	out = binary.LittleEndian.AppendUint16(out, uint16(v.N))
	for _, w := range v.RightWords {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	for _, w := range v.CodeWords {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	out = binary.LittleEndian.AppendUint16(out, uint16(len(v.ExcPos)))
	for _, p := range v.ExcPos {
		out = binary.LittleEndian.AppendUint16(out, p)
	}
	for _, l := range v.ExcLeft {
		out = binary.LittleEndian.AppendUint16(out, l)
	}
	return out
}

// reader is a bounds-checked little-endian cursor.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.pos+n > len(r.data) {
		r.err = corrupt("need %d bytes at offset %d, have %d", n, r.pos, len(r.data)-r.pos)
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

func (r *reader) words(n int) []uint64 {
	if n < 0 || !r.need(8*n) {
		if r.err == nil {
			r.err = corrupt("negative word count")
		}
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(r.data[r.pos:])
		r.pos += 8
	}
	return out
}

// Unmarshal parses a column stream produced by Marshal, validating all
// structural invariants.
func Unmarshal(data []byte) (*Column, error) {
	r := &reader{data: data}
	if r.u32() != Magic {
		if r.err != nil {
			return nil, r.err
		}
		return nil, corrupt("bad magic")
	}
	n := int(r.u64())
	ng := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if n < 0 || ng != vector.RowGroupsIn(n) {
		return nil, corrupt("row-group count %d inconsistent with %d values", ng, n)
	}
	c := &Column{N: n}
	for g := 0; g < ng; g++ {
		rg, err := unmarshalRowGroup(r)
		if err != nil {
			return nil, err
		}
		// Cross-validate against the global layout: a row-group that
		// claims the wrong extent would desynchronize vector addressing.
		wantStart := g * vector.RowGroupSize
		wantN := n - wantStart
		if wantN > vector.RowGroupSize {
			wantN = vector.RowGroupSize
		}
		if rg.Start != wantStart || rg.N != wantN {
			return nil, corrupt("row-group %d extent (%d, %d), want (%d, %d)", g, rg.Start, rg.N, wantStart, wantN)
		}
		c.RowGroups = append(c.RowGroups, rg)
	}
	flag := r.u8()
	if r.err != nil {
		// A truncated stream must not be mistaken for one that simply
		// carries no zone map.
		return nil, r.err
	}
	switch flag {
	case 0: // no zone map
	case 1:
		nv := vector.VectorsIn(n)
		zm := &ZoneMap{
			Min:       make([]float64, nv),
			Max:       make([]float64, nv),
			HasValues: make([]bool, nv),
		}
		for i := 0; i < nv; i++ {
			zm.Min[i] = math.Float64frombits(r.u64())
			zm.Max[i] = math.Float64frombits(r.u64())
			zm.HasValues[i] = r.u8() == 1
		}
		if r.err != nil {
			return nil, r.err
		}
		c.Zones = zm
	default:
		if r.err != nil {
			return nil, r.err
		}
		return nil, corrupt("unknown trailer flag")
	}
	return c, nil
}

func unmarshalRowGroup(r *reader) (RowGroup, error) {
	var rg RowGroup
	rg.Scheme = Scheme(r.u8())
	rg.Start = int(r.u32())
	rg.N = int(r.u32())
	if r.err != nil {
		return rg, r.err
	}
	if rg.Scheme > SchemeRD {
		return rg, corrupt("unknown scheme %d", rg.Scheme)
	}
	if rg.N <= 0 || rg.N > vector.RowGroupSize {
		return rg, corrupt("row-group size %d", rg.N)
	}
	if rg.Scheme == SchemeRD {
		p := r.u8()
		cw := uint(r.u8())
		dictLen := int(r.u8())
		if r.err == nil && p > 63 {
			return rg, corrupt("RD cut position %d", p)
		}
		if r.err == nil && (cw > alprd.MaxDictBits || dictLen > 1<<cw) {
			return rg, corrupt("RD dictionary: width %d size %d", cw, dictLen)
		}
		dict := make([]uint16, dictLen)
		for i := range dict {
			dict[i] = r.u16()
		}
		rg.RD = alprd.NewEncoder(p, cw, dict)
		nv := int(r.u16())
		if r.err == nil && nv != vector.VectorsIn(rg.N) {
			return rg, corrupt("RD vector count %d for %d values", nv, rg.N)
		}
		for j := 0; j < nv; j++ {
			v, err := unmarshalRDVector(r, p, cw)
			if err != nil {
				return rg, err
			}
			if lo, hi := vector.Bounds(j, rg.N); v.N != hi-lo {
				return rg, corrupt("RD vector %d holds %d values, position implies %d", j, v.N, hi-lo)
			}
			rg.RDVectors = append(rg.RDVectors, v)
		}
		return rg, r.err
	}

	nc := int(r.u8())
	for i := 0; i < nc; i++ {
		e, f := r.u8(), r.u8()
		if r.err == nil && (e > alpenc.MaxExponent || f > e) {
			return rg, corrupt("combo (%d, %d)", e, f)
		}
		rg.Combos = append(rg.Combos, alpenc.Combo{E: e, F: f})
	}
	nv := int(r.u16())
	if r.err == nil && nv != vector.VectorsIn(rg.N) {
		return rg, corrupt("vector count %d for %d values", nv, rg.N)
	}
	for j := 0; j < nv; j++ {
		v, err := unmarshalALPVector(r)
		if err != nil {
			return rg, err
		}
		// A vector that claims a different value count than its position
		// implies would desynchronize decoding (and overrun destination
		// buffers sized from the position).
		if lo, hi := vector.Bounds(j, rg.N); v.N != hi-lo {
			return rg, corrupt("vector %d holds %d values, position implies %d", j, v.N, hi-lo)
		}
		rg.Vectors = append(rg.Vectors, v)
	}
	return rg, r.err
}

func unmarshalALPVector(r *reader) (alpenc.Vector, error) {
	var v alpenc.Vector
	v.E = r.u8()
	v.F = r.u8()
	v.N = int(r.u16())
	if r.err != nil {
		return v, r.err
	}
	if v.E > alpenc.MaxExponent || v.F > v.E {
		return v, corrupt("vector combo (%d, %d)", v.E, v.F)
	}
	if v.N <= 0 || v.N > vector.Size {
		return v, corrupt("vector size %d", v.N)
	}
	base := int64(r.u64())
	width := uint(r.u8())
	if r.err == nil && width > 64 {
		return v, corrupt("FFOR width %d", width)
	}
	words := r.words(bitpack.WordCount(v.N, width))
	v.Ints = fastlanes.FFOR{Base: base, Width: width, N: v.N, Words: words}
	ne := int(r.u16())
	if r.err == nil && ne > v.N {
		return v, corrupt("%d exceptions in %d values", ne, v.N)
	}
	for i := 0; i < ne; i++ {
		p := r.u16()
		if r.err == nil && int(p) >= v.N {
			return v, corrupt("exception position %d", p)
		}
		v.ExcPos = append(v.ExcPos, p)
	}
	for i := 0; i < ne; i++ {
		v.ExcVals = append(v.ExcVals, math.Float64frombits(r.u64()))
	}
	return v, r.err
}

func unmarshalRDVector(r *reader, p uint8, cw uint) (alprd.Vector, error) {
	var v alprd.Vector
	v.N = int(r.u16())
	if r.err != nil {
		return v, r.err
	}
	if v.N <= 0 || v.N > vector.Size {
		return v, corrupt("RD vector size %d", v.N)
	}
	v.RightWords = r.words(bitpack.WordCount(v.N, uint(p)))
	v.CodeWords = r.words(bitpack.WordCount(v.N, cw))
	ne := int(r.u16())
	if r.err == nil && ne > v.N {
		return v, corrupt("%d RD exceptions in %d values", ne, v.N)
	}
	for i := 0; i < ne; i++ {
		pos := r.u16()
		if r.err == nil && int(pos) >= v.N {
			return v, corrupt("RD exception position %d", pos)
		}
		v.ExcPos = append(v.ExcPos, pos)
	}
	for i := 0; i < ne; i++ {
		v.ExcLeft = append(v.ExcLeft, r.u16())
	}
	return v, r.err
}
