package format

import (
	"math/rand"
	"testing"

	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/vector"
)

// TestUnmarshalNeverPanics mutates valid streams at random positions
// and asserts the parser either rejects them or produces a column that
// can be fully decoded — it must never panic or index out of range.
// This is the safety contract for reading untrusted column files.
func TestUnmarshalNeverPanics(t *testing.T) {
	d, _ := dataset.ByName("Stocks-USA")
	base := EncodeColumn(d.Generate(3 * vector.Size)).Marshal()
	dRD, _ := dataset.ByName("POI-lat")
	baseRD := EncodeColumn(dRD.Generate(3 * vector.Size)).Marshal()

	r := rand.New(rand.NewSource(99))
	for _, stream := range [][]byte{base, baseRD} {
		for trial := 0; trial < 3000; trial++ {
			mut := append([]byte(nil), stream...)
			flips := 1 + r.Intn(4)
			for f := 0; f < flips; f++ {
				mut[r.Intn(len(mut))] ^= byte(1 + r.Intn(255))
			}
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("panic on mutated stream (trial %d): %v", trial, p)
					}
				}()
				col, err := Unmarshal(mut)
				if err != nil {
					return // rejected: fine
				}
				// Accepted: decoding must be safe (values may differ).
				col.Decode()
				col.Sum()
			}()
		}
	}
}

// TestUnmarshal32NeverPanics is the float32 counterpart.
func TestUnmarshal32NeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	src := make([]float32, 3*vector.Size)
	for i := range src {
		src[i] = float32(r.Intn(10000)) / 100
	}
	base := EncodeColumn32(src).Marshal()
	for trial := 0; trial < 3000; trial++ {
		mut := append([]byte(nil), base...)
		for f := 0; f < 1+r.Intn(4); f++ {
			mut[r.Intn(len(mut))] ^= byte(1 + r.Intn(255))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on mutated 32-bit stream (trial %d): %v", trial, p)
				}
			}()
			col, err := Unmarshal32(mut)
			if err != nil {
				return
			}
			col.Decode()
		}()
	}
}
