package format

import (
	"math"

	"github.com/goalp/alp/internal/vector"
)

// ZoneMap holds per-vector min/max statistics, computed at compression
// time. This is the metadata that makes the paper's predicate
// push-down concrete: a scan with a range predicate consults the zone
// map and skips whole vectors — possible precisely because ALP vectors
// are independently decodable, unlike general-purpose compression
// blocks (§1, §4.1).
//
// NaN values are excluded from the bounds and tracked with a flag, so
// a vector of only-NaN values has HasValues == false.
type ZoneMap struct {
	Min       []float64
	Max       []float64
	HasValues []bool // false when the vector holds no non-NaN values
}

// BuildZoneMap computes per-vector statistics for values.
func BuildZoneMap(values []float64) *ZoneMap {
	nv := vector.VectorsIn(len(values))
	zm := &ZoneMap{
		Min:       make([]float64, nv),
		Max:       make([]float64, nv),
		HasValues: make([]bool, nv),
	}
	for v := 0; v < nv; v++ {
		lo, hi := vector.Bounds(v, len(values))
		min, max := math.Inf(1), math.Inf(-1)
		any := false
		for _, x := range values[lo:hi] {
			if math.IsNaN(x) {
				continue
			}
			any = true
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		zm.Min[v], zm.Max[v], zm.HasValues[v] = min, max, any
	}
	return zm
}

// MayContain reports whether vector v can hold a value in [lo, hi].
// Vectors without statistics (all-NaN) are conservatively kept.
func (zm *ZoneMap) MayContain(v int, lo, hi float64) bool {
	if !zm.HasValues[v] {
		return true
	}
	return zm.Max[v] >= lo && zm.Min[v] <= hi
}

// Contains reports whether every non-NaN value of vector v is certain
// to lie inside [lo, hi]. All-NaN vectors report false (nothing
// matches), and a NaN bound fails every comparison, so Contains is
// never true for a predicate that could reject a row on bounds alone.
func (zm *ZoneMap) Contains(v int, lo, hi float64) bool {
	return zm.HasValues[v] && zm.Min[v] >= lo && zm.Max[v] <= hi
}

// SizeBits returns the zone map's storage cost in bits.
func (zm *ZoneMap) SizeBits() int {
	return len(zm.Min)*(64+64) + len(zm.Min) // two doubles + presence bit
}
