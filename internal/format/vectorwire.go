// Per-vector wire serialization: a single compressed vector packaged
// as a self-describing envelope, so a network service can ship one
// encoded vector to a thin client that decodes it locally — the server
// never converts integers back to floats. The envelope duplicates the
// row-group state a standalone decode needs (the ALP_rd cut position,
// code width and dictionary; decimal-scheme vectors are already
// self-contained), which costs a few bytes per vector but makes every
// envelope independently decodable.
package format

import (
	"encoding/binary"

	"github.com/goalp/alp/internal/alpenc"
	"github.com/goalp/alp/internal/alprd"
	"github.com/goalp/alp/internal/bitpack"
	"github.com/goalp/alp/internal/vector"
)

// VectorMagic identifies a single-vector envelope ("ALPV" little-endian).
const VectorMagic = uint32(0x56504C41)

// MarshalVector serializes vector i as a standalone envelope that
// UnmarshalVector can decode without the rest of the column.
func (c *Column) MarshalVector(i int) ([]byte, error) {
	if i < 0 || i >= c.NumVectors() {
		return nil, corrupt("vector %d out of range [0, %d)", i, c.NumVectors())
	}
	return c.appendVectorEnvelope(make([]byte, 0, c.vectorEnvelopeSize(i)), i), nil
}

// appendVectorEnvelope appends vector i's standalone envelope to out —
// the allocation-free core of MarshalVector, reused by the scan wire
// format's dense frames (which embed the stored envelope verbatim).
// The index must be in range.
func (c *Column) appendVectorEnvelope(out []byte, i int) []byte {
	g := i / vector.RowGroupVectors
	local := i % vector.RowGroupVectors
	rg := &c.RowGroups[g]
	if rg.Scheme == SchemeRD {
		out = binary.LittleEndian.AppendUint32(out, VectorMagic)
		out = append(out, byte(rg.Scheme))
		out = append(out, rg.RD.P, byte(rg.RD.CodeWidth), byte(len(rg.RD.Dict)))
		for _, d := range rg.RD.Dict {
			out = binary.LittleEndian.AppendUint16(out, d)
		}
		return marshalRDVector(out, &rg.RDVectors[local])
	}
	return AppendALPVectorEnvelope(out, &rg.Vectors[local])
}

// AppendALPVectorEnvelope serializes an arbitrary decimal-scheme vector
// as a standalone ALPV envelope — the building block the scan wire
// format uses for re-packed selections, which exist only in flight and
// never belong to a Column.
func AppendALPVectorEnvelope(out []byte, v *alpenc.Vector) []byte {
	out = binary.LittleEndian.AppendUint32(out, VectorMagic)
	out = append(out, byte(SchemeALP))
	return marshalALPVector(out, v)
}

// alpEnvelopeSize returns the exact byte length of an ALPV envelope for
// a decimal-scheme vector of n values packed at the given width with
// exc exceptions: magic(4) + scheme(1) + E,F(2) + N(2) + base(8) +
// width(1) + payload words + excCount(2) + exc positions(2 each) +
// exc values(8 each).
func alpEnvelopeSize(n int, width uint, exc int) int {
	return 4 + 1 + 2 + 2 + 8 + 1 + 8*bitpack.WordCount(n, width) + 2 + 10*exc
}

// vectorEnvelopeSize returns the exact byte length MarshalVector(i)
// would produce, without building it — the scan frame policy compares
// candidate encodings by size before committing to one.
func (c *Column) vectorEnvelopeSize(i int) int {
	g := i / vector.RowGroupVectors
	local := i % vector.RowGroupVectors
	rg := &c.RowGroups[g]
	if rg.Scheme == SchemeRD {
		v := &rg.RDVectors[local]
		// magic + scheme + P/CodeWidth/dictLen + dict + N +
		// right words + code words + excCount + 2*exc + 2*exc.
		return 4 + 1 + 3 + 2*len(rg.RD.Dict) + 2 +
			8*len(v.RightWords) + 8*len(v.CodeWords) + 2 + 4*len(v.ExcPos)
	}
	v := &rg.Vectors[local]
	return alpEnvelopeSize(v.N, v.Ints.Width, len(v.ExcPos))
}

// vectorEnvelope is the parsed form of an ALPV envelope: one scheme is
// populated according to Scheme. RD envelopes carry their own decoder
// (cut position, code width, dictionary) so they stay independently
// decodable.
type vectorEnvelope struct {
	Scheme Scheme
	ALP    alpenc.Vector
	RD     alprd.Vector
	RDEnc  *alprd.Encoder
}

// parseVectorEnvelope parses an ALPV envelope from r, leaving r
// positioned right after the envelope. Trailing bytes are the caller's
// concern: both a standalone envelope and a scan-frame payload place
// the envelope last and reject leftovers themselves.
func parseVectorEnvelope(r *reader) (vectorEnvelope, error) {
	var env vectorEnvelope
	if r.u32() != VectorMagic {
		if r.err != nil {
			return env, r.err
		}
		return env, corrupt("bad vector envelope magic")
	}
	env.Scheme = Scheme(r.u8())
	if r.err != nil {
		return env, r.err
	}
	if env.Scheme > SchemeRD {
		return env, corrupt("unknown scheme %d", env.Scheme)
	}
	if env.Scheme == SchemeRD {
		p := r.u8()
		cw := uint(r.u8())
		dictLen := int(r.u8())
		if r.err != nil {
			return env, r.err
		}
		if p > 63 {
			return env, corrupt("RD cut position %d", p)
		}
		if cw > alprd.MaxDictBits || dictLen > 1<<cw {
			return env, corrupt("RD dictionary: width %d size %d", cw, dictLen)
		}
		dict := make([]uint16, dictLen)
		for i := range dict {
			dict[i] = r.u16()
		}
		env.RDEnc = alprd.NewEncoder(p, cw, dict)
		v, err := unmarshalRDVector(r, p, cw)
		if err != nil {
			return env, err
		}
		env.RD = v
		return env, nil
	}
	v, err := unmarshalALPVector(r)
	if err != nil {
		return env, err
	}
	env.ALP = v
	return env, nil
}

// UnmarshalVector parses a single-vector envelope produced by
// MarshalVector and decodes it into dst (room for vector.Size values),
// returning the number of values written. scratch must hold
// vector.Size int64s, or be nil to allocate per call.
func UnmarshalVector(data []byte, dst []float64, scratch []int64) (int, error) {
	r := &reader{data: data}
	env, err := parseVectorEnvelope(r)
	if err != nil {
		return 0, err
	}
	if r.pos != len(r.data) {
		return 0, corrupt("%d trailing bytes after vector payload", len(r.data)-r.pos)
	}
	if scratch == nil {
		scratch = make([]int64, vector.Size)
	}
	if env.Scheme == SchemeRD {
		if len(dst) < env.RD.N {
			return 0, corrupt("destination holds %d values, vector has %d", len(dst), env.RD.N)
		}
		env.RDEnc.DecodeVector(&env.RD, dst[:env.RD.N])
		return env.RD.N, nil
	}
	if len(dst) < env.ALP.N {
		return 0, corrupt("destination holds %d values, vector has %d", len(dst), env.ALP.N)
	}
	env.ALP.Decode(dst[:env.ALP.N], scratch)
	return env.ALP.N, nil
}
