// Per-vector wire serialization: a single compressed vector packaged
// as a self-describing envelope, so a network service can ship one
// encoded vector to a thin client that decodes it locally — the server
// never converts integers back to floats. The envelope duplicates the
// row-group state a standalone decode needs (the ALP_rd cut position,
// code width and dictionary; decimal-scheme vectors are already
// self-contained), which costs a few bytes per vector but makes every
// envelope independently decodable.
package format

import (
	"encoding/binary"

	"github.com/goalp/alp/internal/alprd"
	"github.com/goalp/alp/internal/vector"
)

// VectorMagic identifies a single-vector envelope ("ALPV" little-endian).
const VectorMagic = uint32(0x56504C41)

// MarshalVector serializes vector i as a standalone envelope that
// UnmarshalVector can decode without the rest of the column.
func (c *Column) MarshalVector(i int) ([]byte, error) {
	if i < 0 || i >= c.NumVectors() {
		return nil, corrupt("vector %d out of range [0, %d)", i, c.NumVectors())
	}
	g := i / vector.RowGroupVectors
	local := i % vector.RowGroupVectors
	rg := &c.RowGroups[g]
	out := make([]byte, 0, 64)
	out = binary.LittleEndian.AppendUint32(out, VectorMagic)
	out = append(out, byte(rg.Scheme))
	if rg.Scheme == SchemeRD {
		out = append(out, rg.RD.P, byte(rg.RD.CodeWidth), byte(len(rg.RD.Dict)))
		for _, d := range rg.RD.Dict {
			out = binary.LittleEndian.AppendUint16(out, d)
		}
		return marshalRDVector(out, &rg.RDVectors[local]), nil
	}
	return marshalALPVector(out, &rg.Vectors[local]), nil
}

// UnmarshalVector parses a single-vector envelope produced by
// MarshalVector and decodes it into dst (room for vector.Size values),
// returning the number of values written. scratch must hold
// vector.Size int64s, or be nil to allocate per call.
func UnmarshalVector(data []byte, dst []float64, scratch []int64) (int, error) {
	r := &reader{data: data}
	if r.u32() != VectorMagic {
		if r.err != nil {
			return 0, r.err
		}
		return 0, corrupt("bad vector envelope magic")
	}
	scheme := Scheme(r.u8())
	if r.err != nil {
		return 0, r.err
	}
	if scheme > SchemeRD {
		return 0, corrupt("unknown scheme %d", scheme)
	}
	if scratch == nil {
		scratch = make([]int64, vector.Size)
	}
	if scheme == SchemeRD {
		p := r.u8()
		cw := uint(r.u8())
		dictLen := int(r.u8())
		if r.err != nil {
			return 0, r.err
		}
		if p > 63 {
			return 0, corrupt("RD cut position %d", p)
		}
		if cw > alprd.MaxDictBits || dictLen > 1<<cw {
			return 0, corrupt("RD dictionary: width %d size %d", cw, dictLen)
		}
		dict := make([]uint16, dictLen)
		for i := range dict {
			dict[i] = r.u16()
		}
		enc := alprd.NewEncoder(p, cw, dict)
		v, err := unmarshalRDVector(r, p, cw)
		if err != nil {
			return 0, err
		}
		if r.pos != len(r.data) {
			return 0, corrupt("%d trailing bytes after vector payload", len(r.data)-r.pos)
		}
		if len(dst) < v.N {
			return 0, corrupt("destination holds %d values, vector has %d", len(dst), v.N)
		}
		enc.DecodeVector(&v, dst[:v.N])
		return v.N, nil
	}
	v, err := unmarshalALPVector(r)
	if err != nil {
		return 0, err
	}
	if r.pos != len(r.data) {
		return 0, corrupt("%d trailing bytes after vector payload", len(r.data)-r.pos)
	}
	if len(dst) < v.N {
		return 0, corrupt("destination holds %d values, vector has %d", len(dst), v.N)
	}
	v.Decode(dst[:v.N], scratch)
	return v.N, nil
}
