// Encoded-domain predicate pushdown over the columnar layout.
//
// A range predicate [lo, hi] over the column is answered per vector:
// decimal-scheme (ALP) vectors translate the bounds into their own
// (e, f) encoded-integer domain — exact, because ALP's decode map is
// monotone in the encoded integer for a fixed combination — and run
// the fused FFOR unpack+compare kernel, patching exception slots with
// the float-domain predicate. ALP_rd vectors have no order-preserving
// integer domain (the front bits are a dictionary code), so they fall
// back to decode-then-filter. Both paths produce the same selection
// bitmap a plain decode-and-compare scan would.
package format

import (
	"math"
	"time"

	"github.com/goalp/alp/internal/fastlanes"
	"github.com/goalp/alp/internal/obs"
	"github.com/goalp/alp/internal/vector"
)

// SelWords is the selection-bitmap length (in uint64 words) needed for
// one full vector.
const SelWords = vector.Size / 64

// fullMatch reports whether every row of vector i qualifies for
// [lo, hi] on metadata alone: the zone range is inside the predicate
// and the vector is a decimal-scheme vector with no exceptions (an
// exception-free ALP vector cannot hold NaN, so the zone bounds cover
// every row). Such vectors need no unpack and no compare.
func (c *Column) fullMatch(i int, lo, hi float64) bool {
	if c.Zones == nil || !c.Zones.Contains(i, lo, hi) {
		return false
	}
	g := i / vector.RowGroupVectors
	local := i % vector.RowGroupVectors
	rg := &c.RowGroups[g]
	return rg.Scheme == SchemeALP && len(rg.Vectors[local].ExcPos) == 0
}

// vectorLen returns the row count of vector i.
func (c *Column) vectorLen(i int) int {
	g := i / vector.RowGroupVectors
	local := i % vector.RowGroupVectors
	rg := &c.RowGroups[g]
	if rg.Scheme == SchemeALP {
		return rg.Vectors[local].N
	}
	return rg.RDVectors[local].N
}

// setAllSel sets the first n bits of sel.
func setAllSel(sel []uint64, n int) {
	nw := fastlanes.SelWords(n)
	for i := 0; i < nw; i++ {
		sel[i] = ^uint64(0)
	}
	if r := n & 63; r != 0 {
		sel[nw-1] = (1 << uint(r)) - 1
	}
}

// FilterVector evaluates the closed range [lo, hi] over vector i,
// writing a selection bitmap into sel (fastlanes.SelWords(n) words for
// the vector's n values) and returning the match count plus whether
// the encoded-domain pushdown kernel answered it (false = the vector
// was decoded to floats). buf and scratch must each hold vector.Size
// elements; no other allocation happens. NaN values never match.
//
// The pushdown counters are the caller's job: scan loops fold the
// (count, pushdown) results into an obs.ScanBatch and flush it per
// partition, so the per-vector path records nothing.
func (c *Column) FilterVector(i int, lo, hi float64, sel []uint64, buf []float64, scratch []int64) (count int, pushdown bool) {
	if c.fullMatch(i, lo, hi) {
		// Metadata-only answer: every row qualifies, the payload is
		// never touched.
		n := c.vectorLen(i)
		setAllSel(sel, n)
		return n, true
	}
	g := i / vector.RowGroupVectors
	local := i % vector.RowGroupVectors
	rg := &c.RowGroups[g]
	if rg.Scheme == SchemeALP {
		v := &rg.Vectors[local]
		return v.Filter(lo, hi, sel, scratch), true
	}
	v := &rg.RDVectors[local]
	rg.RD.DecodeVector(v, buf[:v.N])
	return filterFloats(buf[:v.N], lo, hi, sel), false
}

// FilterGatherVector is FilterVector fused with the gather: qualifying
// rows are written densely into out (room for the vector's n values),
// in position order, bit-exact with a decode-then-filter scan. Only
// qualifying rows are ever materialized as floats on the pushdown
// path. Like FilterVector, it records no pushdown counters itself —
// scan loops batch them via obs.ScanBatch.
func (c *Column) FilterGatherVector(i int, lo, hi float64, sel []uint64, out []float64, scratch []int64) (count int, pushdown bool) {
	if c.fullMatch(i, lo, hi) {
		// Every row qualifies: bulk-decode instead of per-bit gather,
		// which matters when the predicate is barely selective.
		n := c.DecodeVector(i, out, scratch)
		setAllSel(sel, n)
		return n, true
	}
	g := i / vector.RowGroupVectors
	local := i % vector.RowGroupVectors
	rg := &c.RowGroups[g]
	if rg.Scheme == SchemeALP {
		v := &rg.Vectors[local]
		count = v.Filter(lo, hi, sel, scratch)
		if count > 0 {
			// The gather — materializing qualifying rows as floats — is
			// the stage the paper's pushdown saves when selectivity is
			// low; its (sampled) histogram shows how that saving lands
			// per vector.
			if o := obs.Active(); o.SampleStage(obs.HistStageGather) {
				start := time.Now()
				v.GatherSelected(sel, scratch, out)
				o.Observe(obs.HistStageGather, time.Since(start).Nanoseconds())
			} else {
				v.GatherSelected(sel, scratch, out)
			}
		}
		return count, true
	}
	// ALP_rd fallback: decode into out, then compact qualifying rows
	// forward in place (the write index never passes the read index).
	v := &rg.RDVectors[local]
	rg.RD.DecodeVector(v, out[:v.N])
	count = filterFloats(out[:v.N], lo, hi, sel)
	w := 0
	for r := 0; r < v.N; r++ {
		if sel[r>>6]&(1<<uint(r&63)) != 0 {
			out[w] = out[r]
			w++
		}
	}
	return count, false
}

// filterFloats evaluates the predicate over decoded floats, filling
// sel and returning the match count (the fallback comparand of the
// pushdown kernel).
func filterFloats(vals []float64, lo, hi float64, sel []uint64) int {
	nw := fastlanes.SelWords(len(vals))
	for i := 0; i < nw; i++ {
		sel[i] = 0
	}
	count := 0
	for i, x := range vals {
		if x >= lo && x <= hi {
			sel[i>>6] |= 1 << uint(i&63)
			count++
		}
	}
	return count
}

// FilterAggResult carries the aggregates of a filtered scan. Min and
// Max are +Inf/-Inf when Count is zero.
type FilterAggResult struct {
	Sum   float64
	Count int
	Min   float64
	Max   float64
	// Touched is the number of vectors whose payload was examined
	// (pushdown-scanned or decoded); zone-map-skipped vectors are not
	// counted.
	Touched int
}

// AggRange computes SUM/COUNT/MIN/MAX over the values in [lo, hi],
// combining zone-map vector skipping with encoded-domain predicate
// pushdown: vectors the zone map cannot rule out are filtered by the
// fused unpack+compare kernel (decimal scheme) or decode-then-filter
// (ALP_rd), and only qualifying rows are materialized and folded. The
// fold visits rows in position order, so Sum is bit-identical to a
// naive decode-then-filter aggregate.
func (c *Column) AggRange(lo, hi float64) FilterAggResult {
	o := obs.Active()
	o.RangeScan()
	res := FilterAggResult{Min: math.Inf(1), Max: math.Inf(-1)}
	var sel [SelWords]uint64
	scratch := make([]int64, vector.Size)
	out := make([]float64, vector.Size)
	skipped := 0
	var batch obs.ScanBatch
	for i := 0; i < c.NumVectors(); i++ {
		if c.Zones != nil && !c.Zones.MayContain(i, lo, hi) {
			skipped++
			continue
		}
		n, pd := c.FilterGatherVector(i, lo, hi, sel[:], out, scratch)
		batch.Vector(n, pd)
		res.Touched++
		foldAgg(&res, out[:n])
	}
	o.VectorsSkipped(skipped)
	o.FlushScanBatch(&batch)
	return res
}

// foldAgg accumulates the gathered qualifying rows into res.
func foldAgg(res *FilterAggResult, vals []float64) {
	for _, v := range vals {
		res.Sum += v
		if v < res.Min {
			res.Min = v
		}
		if v > res.Max {
			res.Max = v
		}
	}
	res.Count += len(vals)
}
