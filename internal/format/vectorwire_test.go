package format

import (
	"math"
	"math/rand"
	"testing"

	"github.com/goalp/alp/internal/vector"
)

// wireDatasets covers both schemes: decimals pick ALP, random mantissa
// bits force ALP_rd.
func wireDatasets() map[string][]float64 {
	rng := rand.New(rand.NewSource(42))
	decimals := make([]float64, vector.Size*3+100) // ragged tail vector
	for i := range decimals {
		decimals[i] = math.Round(rng.Float64()*10000) / 100
	}
	decimals[7] = math.NaN()
	decimals[8] = math.Inf(-1)
	decimals[9] = math.Copysign(0, -1)
	reals := make([]float64, vector.Size*2)
	for i := range reals {
		reals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(60)-30))
	}
	return map[string][]float64{"decimals": decimals, "reals": reals}
}

func TestVectorEnvelopeRoundTrip(t *testing.T) {
	for name, values := range wireDatasets() {
		t.Run(name, func(t *testing.T) {
			col := EncodeColumn(values)
			dst := make([]float64, vector.Size)
			scratch := make([]int64, vector.Size)
			for i := 0; i < col.NumVectors(); i++ {
				env, err := col.MarshalVector(i)
				if err != nil {
					t.Fatalf("MarshalVector(%d): %v", i, err)
				}
				n, err := UnmarshalVector(env, dst, scratch)
				if err != nil {
					t.Fatalf("UnmarshalVector(%d): %v", i, err)
				}
				lo, hi := vector.Bounds(i, col.N)
				if n != hi-lo {
					t.Fatalf("vector %d decoded %d values, want %d", i, n, hi-lo)
				}
				for j := 0; j < n; j++ {
					if math.Float64bits(dst[j]) != math.Float64bits(values[lo+j]) {
						t.Fatalf("vector %d value %d = %v, want %v", i, j, dst[j], values[lo+j])
					}
				}
			}
		})
	}
}

func TestVectorEnvelopeNilScratch(t *testing.T) {
	values := wireDatasets()["decimals"]
	col := EncodeColumn(values)
	env, err := col.MarshalVector(0)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, vector.Size)
	if _, err := UnmarshalVector(env, dst, nil); err != nil {
		t.Fatalf("nil scratch: %v", err)
	}
}

func TestVectorEnvelopeErrors(t *testing.T) {
	values := wireDatasets()["decimals"]
	col := EncodeColumn(values)
	if _, err := col.MarshalVector(-1); err == nil {
		t.Error("MarshalVector(-1) did not error")
	}
	if _, err := col.MarshalVector(col.NumVectors()); err == nil {
		t.Error("MarshalVector(out of range) did not error")
	}
	env, err := col.MarshalVector(0)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, vector.Size)

	// Truncations at every prefix length must error, never panic.
	for cut := 0; cut < len(env); cut++ {
		if _, err := UnmarshalVector(env[:cut], dst, nil); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
	// Trailing garbage is rejected.
	if _, err := UnmarshalVector(append(append([]byte(nil), env...), 0xFF), dst, nil); err == nil {
		t.Error("trailing byte accepted")
	}
	// Bad magic.
	bad := append([]byte(nil), env...)
	bad[0] ^= 0xFF
	if _, err := UnmarshalVector(bad, dst, nil); err == nil {
		t.Error("bad magic accepted")
	}
	// Destination too small.
	if _, err := UnmarshalVector(env, make([]float64, 1), nil); err == nil {
		t.Error("short destination accepted")
	}
}
