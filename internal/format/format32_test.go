package format

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/vector"
)

func decimals32(r *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(r.Intn(10000)) / 100
	}
	return out
}

func TestColumn32RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	src := decimals32(r, vector.RowGroupSize+7777)
	c := EncodeColumn32(src)
	got := c.Decode()
	for i := range src {
		if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
			t.Fatalf("value %d: got %v, want %v", i, got[i], src[i])
		}
	}
	if c.UsedRD() {
		t.Fatal("decimal float32 must not use RD")
	}
	if c.BitsPerValue() >= 32 {
		t.Fatalf("no compression: %.1f bits/value", c.BitsPerValue())
	}
}

func TestColumn32MarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, src := range [][]float32{
		decimals32(r, 5000),
		dataset.Weights32(r, vector.RowGroupSize+99), // RD path
	} {
		c := EncodeColumn32(src)
		data := c.Marshal()
		c2, err := Unmarshal32(data)
		if err != nil {
			t.Fatal(err)
		}
		got := c2.Decode()
		for i := range src {
			if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
				t.Fatalf("value %d mismatch after marshal round trip", i)
			}
		}
	}
}

func TestColumn32VectorAccess(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	src := decimals32(r, 5000)
	c := EncodeColumn32(src)
	buf := make([]float32, vector.Size)
	scratch := make([]int64, vector.Size)
	for vi := 0; vi < c.NumVectors(); vi++ {
		n := c.DecodeVector(vi, buf, scratch)
		lo, hi := vector.Bounds(vi, len(src))
		if n != hi-lo {
			t.Fatalf("vector %d: n = %d, want %d", vi, n, hi-lo)
		}
		for i := 0; i < n; i++ {
			if math.Float32bits(buf[i]) != math.Float32bits(src[lo+i]) {
				t.Fatalf("vector %d value %d mismatch", vi, i)
			}
		}
	}
}

func TestUnmarshal32RejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data := EncodeColumn32(decimals32(r, 3000)).Marshal()
	if _, err := Unmarshal32(nil); err == nil {
		t.Fatal("want error on empty input")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := Unmarshal32(bad); err == nil {
		t.Fatal("want error on bad magic")
	}
	for _, cut := range []int{10, len(data) / 2, len(data) - 1} {
		if _, err := Unmarshal32(data[:cut]); err == nil {
			t.Fatalf("want error on truncation at %d", cut)
		}
	}
	// A 64-bit stream must be rejected by the 32-bit parser.
	data64 := EncodeColumn([]float64{1.5}).Marshal()
	if _, err := Unmarshal32(data64); err == nil {
		t.Fatal("want error on 64-bit magic")
	}
}

func TestQuickColumn32RoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		src := make([]float32, len(raw))
		for i, b := range raw {
			src[i] = math.Float32frombits(b)
		}
		c := EncodeColumn32(src)
		data := c.Marshal()
		c2, err := Unmarshal32(data)
		if err != nil {
			return false
		}
		got := c2.Decode()
		for i := range src {
			if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestColumn32Empty(t *testing.T) {
	c := EncodeColumn32(nil)
	if c.N != 0 || len(c.Decode()) != 0 {
		t.Fatal("empty column must stay empty")
	}
	c2, err := Unmarshal32(c.Marshal())
	if err != nil || c2.N != 0 {
		t.Fatalf("empty marshal round trip: %v", err)
	}
}
