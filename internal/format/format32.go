package format

import (
	"encoding/binary"
	"math"
	"time"

	"github.com/goalp/alp/internal/alpenc"
	"github.com/goalp/alp/internal/alprd"
	"github.com/goalp/alp/internal/bitpack"
	"github.com/goalp/alp/internal/fastlanes"
	"github.com/goalp/alp/internal/obs"
	"github.com/goalp/alp/internal/pipeline"
	"github.com/goalp/alp/internal/vector"
)

// Magic32 identifies a 32-bit ALP column stream ("ALPf").
const Magic32 = uint32(0x664C5041)

// Column32 is an ALP-compressed column of float32 values (§4.4).
type Column32 struct {
	N         int
	RowGroups []RowGroup32
}

// RowGroup32 is one compressed row-group of float32 values.
type RowGroup32 struct {
	Scheme Scheme
	Start  int
	N      int

	Combos  []alpenc.Combo
	Vectors []alpenc.Vector32

	RD        *alprd.Encoder32
	RDVectors []alprd.Vector32
}

// EncodeColumn32 compresses float32 values with per-row-group scheme
// selection, mirroring EncodeColumn (serially).
func EncodeColumn32(values []float32) *Column32 {
	return EncodeColumn32Parallel(values, 1)
}

// EncodeColumn32Parallel is EncodeColumn32 fanned out over a worker
// pool, mirroring EncodeColumnParallel: byte-identical output at any
// worker count, workers <= 0 meaning one per CPU.
func EncodeColumn32Parallel(values []float32, workers int) *Column32 {
	ng := vector.RowGroupsIn(len(values))
	c := &Column32{N: len(values), RowGroups: make([]RowGroup32, ng)}
	scratches := make([][]int64, pipeline.Workers(workers))
	pipeline.Run(ng, workers, func(worker, g int) {
		if scratches[worker] == nil {
			scratches[worker] = make([]int64, vector.Size)
		}
		lo := g * vector.RowGroupSize
		hi := lo + vector.RowGroupSize
		if hi > len(values) {
			hi = len(values)
		}
		c.RowGroups[g] = encodeRowGroup32(values[lo:hi], lo, scratches[worker])
	})
	return c
}

func encodeRowGroup32(values []float32, start int, scratch []int64) RowGroup32 {
	o := obs.Active()
	var began time.Time
	if o != nil {
		began = time.Now()
	}
	rg := RowGroup32{Start: start, N: len(values)}
	dec := alpenc.SampleRowGroup32(values)
	if dec.UseRD || len(dec.Combos) == 0 {
		rg.Scheme = SchemeRD
		rg.RD = alprd.Sample32(values)
		for v := 0; v < vector.VectorsIn(len(values)); v++ {
			lo, hi := vector.Bounds(v, len(values))
			ev := rg.RD.EncodeVector(values[lo:hi])
			o.VectorEncoded(ev.N, ev.Exceptions(), obs.WidthNone)
			rg.RDVectors = append(rg.RDVectors, ev)
		}
		o.RowGroup(true)
		if o != nil {
			ns := time.Since(began).Nanoseconds()
			o.EncodeTime(ns, len(values))
			o.Observe(obs.HistStageEncode, ns)
		}
		return rg
	}
	rg.Scheme = SchemeALP
	rg.Combos = dec.Combos
	for v := 0; v < vector.VectorsIn(len(values)); v++ {
		lo, hi := vector.Bounds(v, len(values))
		combo, _ := alpenc.ChooseForVector32(values[lo:hi], dec.Combos)
		ev := alpenc.EncodeVector32(values[lo:hi], combo, scratch)
		o.VectorEncoded(ev.N, ev.Exceptions(), ev.Ints.Width)
		rg.Vectors = append(rg.Vectors, ev)
	}
	o.RowGroup(false)
	if o != nil {
		ns := time.Since(began).Nanoseconds()
		o.EncodeTime(ns, len(values))
		o.Observe(obs.HistStageEncode, ns)
	}
	return rg
}

// NumVectors returns the number of vectors in the column.
func (c *Column32) NumVectors() int { return vector.VectorsIn(c.N) }

// DecodeVector decompresses vector i into dst and returns the number of
// values written.
func (c *Column32) DecodeVector(i int, dst []float32, scratch []int64) int {
	o := obs.Active()
	var began time.Time
	if o != nil {
		began = time.Now()
	}
	g := i / vector.RowGroupVectors
	local := i % vector.RowGroupVectors
	rg := &c.RowGroups[g]
	var n int
	if rg.Scheme == SchemeRD {
		v := &rg.RDVectors[local]
		rg.RD.DecodeVector(v, dst[:v.N])
		n = v.N
	} else {
		v := &rg.Vectors[local]
		v.Decode(dst[:v.N], scratch)
		n = v.N
	}
	if o != nil {
		o.VectorDecoded(n, time.Since(began).Nanoseconds())
	}
	return n
}

// Decode decompresses the whole column (serially; DecodeParallel is
// the multi-core variant).
func (c *Column32) Decode() []float32 {
	return c.DecodeParallel(1)
}

// DecodeParallel decompresses the whole column with a worker pool,
// mirroring Column.DecodeParallel: row-groups are claimed morsel-style
// and decoded into a preallocated result slice, bit-identical to the
// serial decode at any worker count.
func (c *Column32) DecodeParallel(workers int) []float32 {
	out := make([]float32, c.N)
	scratches := make([][]int64, pipeline.Workers(workers))
	pipeline.Run(len(c.RowGroups), workers, func(worker, g int) {
		if scratches[worker] == nil {
			scratches[worker] = make([]int64, vector.Size)
		}
		first := g * vector.RowGroupVectors
		for j := 0; j < vector.VectorsIn(c.RowGroups[g].N); j++ {
			lo, hi := vector.Bounds(first+j, c.N)
			c.DecodeVector(first+j, out[lo:hi], scratches[worker])
		}
	})
	return out
}

// SizeBits returns the compressed payload size in bits.
func (c *Column32) SizeBits() int {
	bits := 64 + 32
	for i := range c.RowGroups {
		rg := &c.RowGroups[i]
		bits += 8
		if rg.Scheme == SchemeRD {
			bits += rg.RD.HeaderBits()
			for j := range rg.RDVectors {
				bits += rg.RD.SizeBits(&rg.RDVectors[j])
			}
		} else {
			bits += 8 + len(rg.Combos)*16
			for j := range rg.Vectors {
				bits += rg.Vectors[j].SizeBits()
			}
		}
	}
	return bits
}

// BitsPerValue returns the compression ratio in bits per value
// (uncompressed float32 data is 32 bits per value).
func (c *Column32) BitsPerValue() float64 {
	if c.N == 0 {
		return 0
	}
	return float64(c.SizeBits()) / float64(c.N)
}

// UsedRD reports whether any row-group fell back to ALP_rd.
func (c *Column32) UsedRD() bool {
	for i := range c.RowGroups {
		if c.RowGroups[i].Scheme == SchemeRD {
			return true
		}
	}
	return false
}

// Marshal serializes the 32-bit column.
func (c *Column32) Marshal() []byte {
	out := make([]byte, 0, c.SizeBits()/8+64)
	out = binary.LittleEndian.AppendUint32(out, Magic32)
	out = binary.LittleEndian.AppendUint64(out, uint64(c.N))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(c.RowGroups)))
	for i := range c.RowGroups {
		rg := &c.RowGroups[i]
		out = append(out, byte(rg.Scheme))
		out = binary.LittleEndian.AppendUint32(out, uint32(rg.Start))
		out = binary.LittleEndian.AppendUint32(out, uint32(rg.N))
		if rg.Scheme == SchemeRD {
			out = append(out, rg.RD.P, byte(rg.RD.CodeWidth), byte(len(rg.RD.Dict)))
			for _, d := range rg.RD.Dict {
				out = binary.LittleEndian.AppendUint16(out, d)
			}
			out = binary.LittleEndian.AppendUint16(out, uint16(len(rg.RDVectors)))
			for j := range rg.RDVectors {
				v := &rg.RDVectors[j]
				out = binary.LittleEndian.AppendUint16(out, uint16(v.N))
				for _, w := range v.RightWords {
					out = binary.LittleEndian.AppendUint64(out, w)
				}
				for _, w := range v.CodeWords {
					out = binary.LittleEndian.AppendUint64(out, w)
				}
				out = binary.LittleEndian.AppendUint16(out, uint16(len(v.ExcPos)))
				for _, p := range v.ExcPos {
					out = binary.LittleEndian.AppendUint16(out, p)
				}
				for _, l := range v.ExcLeft {
					out = binary.LittleEndian.AppendUint16(out, l)
				}
			}
			continue
		}
		out = append(out, byte(len(rg.Combos)))
		for _, cb := range rg.Combos {
			out = append(out, cb.E, cb.F)
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(rg.Vectors)))
		for j := range rg.Vectors {
			v := &rg.Vectors[j]
			out = append(out, v.E, v.F)
			out = binary.LittleEndian.AppendUint16(out, uint16(v.N))
			out = binary.LittleEndian.AppendUint64(out, uint64(v.Ints.Base))
			out = append(out, byte(v.Ints.Width))
			for _, w := range v.Ints.Words {
				out = binary.LittleEndian.AppendUint64(out, w)
			}
			out = binary.LittleEndian.AppendUint16(out, uint16(len(v.ExcPos)))
			for _, p := range v.ExcPos {
				out = binary.LittleEndian.AppendUint16(out, p)
			}
			for _, x := range v.ExcVals {
				out = binary.LittleEndian.AppendUint32(out, math.Float32bits(x))
			}
		}
	}
	return out
}

// Unmarshal32 parses a 32-bit column stream.
func Unmarshal32(data []byte) (*Column32, error) {
	r := &reader{data: data}
	if r.u32() != Magic32 {
		if r.err != nil {
			return nil, r.err
		}
		return nil, corrupt("bad magic (not a 32-bit ALP stream)")
	}
	n := int(r.u64())
	ng := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if n < 0 || ng != vector.RowGroupsIn(n) {
		return nil, corrupt("row-group count %d inconsistent with %d values", ng, n)
	}
	c := &Column32{N: n}
	for g := 0; g < ng; g++ {
		var rg RowGroup32
		rg.Scheme = Scheme(r.u8())
		rg.Start = int(r.u32())
		rg.N = int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		if rg.Scheme > SchemeRD {
			return nil, corrupt("unknown scheme %d", rg.Scheme)
		}
		wantStart := g * vector.RowGroupSize
		wantN := n - wantStart
		if wantN > vector.RowGroupSize {
			wantN = vector.RowGroupSize
		}
		if rg.Start != wantStart || rg.N != wantN {
			return nil, corrupt("row-group %d extent (%d, %d), want (%d, %d)", g, rg.Start, rg.N, wantStart, wantN)
		}
		nv := vector.VectorsIn(rg.N)
		if rg.Scheme == SchemeRD {
			p := r.u8()
			cw := uint(r.u8())
			dictLen := int(r.u8())
			if r.err == nil && (p > 31 || cw > alprd.MaxDictBits || dictLen > 1<<cw) {
				return nil, corrupt("RD32 parameters p=%d cw=%d dict=%d", p, cw, dictLen)
			}
			dict := make([]uint16, dictLen)
			for i := range dict {
				dict[i] = r.u16()
			}
			rg.RD = alprd.NewEncoder32(p, cw, dict)
			if got := int(r.u16()); r.err == nil && got != nv {
				return nil, corrupt("RD32 vector count %d", got)
			}
			for j := 0; j < nv; j++ {
				var v alprd.Vector32
				v.N = int(r.u16())
				if lo, hi := vector.Bounds(j, rg.N); r.err == nil && v.N != hi-lo {
					return nil, corrupt("RD32 vector %d holds %d values, position implies %d", j, v.N, hi-lo)
				}
				v.RightWords = r.words(bitpack.WordCount(v.N, uint(p)))
				v.CodeWords = r.words(bitpack.WordCount(v.N, cw))
				ne := int(r.u16())
				if r.err == nil && ne > v.N {
					return nil, corrupt("RD32 exception count %d", ne)
				}
				for i := 0; i < ne; i++ {
					pos := r.u16()
					if r.err == nil && int(pos) >= v.N {
						return nil, corrupt("RD32 exception position %d", pos)
					}
					v.ExcPos = append(v.ExcPos, pos)
				}
				for i := 0; i < ne; i++ {
					v.ExcLeft = append(v.ExcLeft, r.u16())
				}
				if r.err != nil {
					return nil, r.err
				}
				rg.RDVectors = append(rg.RDVectors, v)
			}
			c.RowGroups = append(c.RowGroups, rg)
			continue
		}
		nc := int(r.u8())
		for i := 0; i < nc; i++ {
			e, f := r.u8(), r.u8()
			if r.err == nil && (e > alpenc.MaxExponent32 || f > e) {
				return nil, corrupt("combo32 (%d, %d)", e, f)
			}
			rg.Combos = append(rg.Combos, alpenc.Combo{E: e, F: f})
		}
		if got := int(r.u16()); r.err == nil && got != nv {
			return nil, corrupt("vector count %d", got)
		}
		for j := 0; j < nv; j++ {
			var v alpenc.Vector32
			v.E = r.u8()
			v.F = r.u8()
			v.N = int(r.u16())
			if r.err != nil {
				return nil, r.err
			}
			if v.E > alpenc.MaxExponent32 || v.F > v.E {
				return nil, corrupt("vector32 combo (%d, %d)", v.E, v.F)
			}
			if lo, hi := vector.Bounds(j, rg.N); v.N != hi-lo {
				return nil, corrupt("vector32 %d holds %d values, position implies %d", j, v.N, hi-lo)
			}
			base := int64(r.u64())
			width := uint(r.u8())
			if r.err == nil && width > 64 {
				return nil, corrupt("FFOR width %d", width)
			}
			words := r.words(bitpack.WordCount(v.N, width))
			v.Ints = fastlanes.FFOR{Base: base, Width: width, N: v.N, Words: words}
			ne := int(r.u16())
			if r.err == nil && ne > v.N {
				return nil, corrupt("exception count %d", ne)
			}
			for i := 0; i < ne; i++ {
				pos := r.u16()
				if r.err == nil && int(pos) >= v.N {
					return nil, corrupt("exception position %d", pos)
				}
				v.ExcPos = append(v.ExcPos, pos)
			}
			for i := 0; i < ne; i++ {
				v.ExcVals = append(v.ExcVals, math.Float32frombits(r.u32()))
			}
			if r.err != nil {
				return nil, r.err
			}
			rg.Vectors = append(rg.Vectors, v)
		}
		c.RowGroups = append(c.RowGroups, rg)
	}
	return c, r.err
}
