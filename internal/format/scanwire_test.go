package format

import (
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"testing"

	"github.com/goalp/alp/internal/vector"
)

// scanOracle filters the raw values the simple way: decode semantics
// are v in [lo, hi], NaN never matches, order preserved.
func scanOracle(values []float64, lo, hi float64) []float64 {
	var out []float64
	for _, v := range values {
		if v >= lo && v <= hi {
			out = append(out, v)
		}
	}
	return out
}

func decodeStream(t *testing.T, stream []byte) []float64 {
	t.Helper()
	d, err := NewScanDecoder(stream)
	if err != nil {
		t.Fatalf("NewScanDecoder: %v", err)
	}
	var out []float64
	for {
		rows, err := d.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next after %d rows: %v", len(out), err)
		}
		out = append(out, rows...)
	}
}

func bits64Equal(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("row %d: got %016x (%v), want %016x (%v)",
				i, math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

// scanDecimals is a deterministic decimal-heavy column in [0, 1000)
// whose uniform spread makes selectivity directly tunable via the
// predicate band.
func scanDecimals(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64((i*7919)%100000) / 100
	}
	return out
}

// scanSpecials mixes decimals with every bit-exactness hazard: NaN
// payloads, both infinities, -0, subnormals, and one whole vector of
// random bit patterns (all exceptions under the decimal scheme).
func scanSpecials(n int) []float64 {
	out := scanDecimals(n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i += 97 {
		switch (i / 97) % 5 {
		case 0:
			out[i] = math.Float64frombits(0x7FF8DEADBEEF0001) // NaN payload
		case 1:
			out[i] = math.Inf(1)
		case 2:
			out[i] = math.Inf(-1)
		case 3:
			out[i] = math.Copysign(0, -1)
		case 4:
			out[i] = 5e-324
		}
	}
	if n >= 3*vector.Size {
		// One all-exception vector inside the decimal row-group.
		for i := vector.Size; i < 2*vector.Size; i++ {
			out[i] = math.Float64frombits(rng.Uint64())
		}
	}
	return out
}

// scanRealDoubles forces the RD scheme (dense/raw wire encodings only).
func scanRealDoubles(n int) []float64 {
	out := make([]float64, n)
	s := uint64(0x9E3779B97F4A7C15)
	for i := range out {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = math.Float64frombits(s &^ (0x7FF << 52))
	}
	return out
}

// TestScanStreamRoundTrip sweeps selectivity and dataset shape: the
// decoded stream must equal the float-domain oracle bit-for-bit at
// every point, whatever mix of dense/repacked/raw frames the policy
// picked.
func TestScanStreamRoundTrip(t *testing.T) {
	datasets := []struct {
		name   string
		values []float64
	}{
		{"decimals", scanDecimals(5*vector.Size + 321)},
		{"specials", scanSpecials(4*vector.Size + 77)},
		{"realdoubles", scanRealDoubles(3*vector.Size + 11)},
		{"tiny", scanDecimals(9)},
	}
	// Bands over the uniform [0, 1000) spread: ~0.1%, 1%, 10%, 50%,
	// 99%, 100% selectivity, plus an empty result.
	bands := []struct {
		name   string
		lo, hi float64
	}{
		{"sel_0.1%", 0, 0.99},
		{"sel_1%", 0, 9.99},
		{"sel_10%", 0, 99.99},
		{"sel_50%", 0, 499.99},
		{"sel_99%", 0, 989.99},
		{"sel_100%", math.Inf(-1), math.Inf(1)},
		{"empty", 2000, 3000},
	}
	for _, ds := range datasets {
		col := EncodeColumn(ds.values)
		for _, b := range bands {
			t.Run(ds.name+"/"+b.name, func(t *testing.T) {
				stream, rows := BuildScanStream(col, b.lo, b.hi)
				want := scanOracle(ds.values, b.lo, b.hi)
				if rows != len(want) {
					t.Fatalf("BuildScanStream reported %d rows, oracle has %d", rows, len(want))
				}
				got := decodeStream(t, stream)
				bits64Equal(t, got, want)
			})
		}
	}
}

// TestScanFramePolicy pins the cost-based encoding choice: a full
// selection ships the stored envelope (dense), a very sparse one
// re-packs, and a couple of rows fall back to raw floats.
func TestScanFramePolicy(t *testing.T) {
	values := scanDecimals(2 * vector.Size)
	col := EncodeColumn(values)
	w := NewScanWriter(col)

	frame, n, kind, _ := w.Frame(0, math.Inf(-1), math.Inf(1))
	if frame == nil || n != vector.Size || kind != ScanFrameDense {
		t.Fatalf("full selection: kind %v, %d rows", kind, n)
	}

	// ~64 rows of vector 0 (values are (i*7919 mod 100000)/100, so a
	// narrow band selects a thin slice).
	_, n, kind, _ = w.Frame(0, 0, 30)
	if n == 0 || n >= vector.Size/4 || kind != ScanFrameRepacked {
		t.Fatalf("sparse selection: kind %v, %d rows", kind, n)
	}

	// A near-point band: a handful of rows, cheaper raw.
	_, n, kind, _ = w.Frame(0, 0, 0.5)
	if n == 0 || kind != ScanFrameRaw {
		t.Fatalf("tiny selection: kind %v, %d rows", kind, n)
	}

	frame, n, kind, _ = w.Frame(0, 5000, 6000)
	if frame != nil || n != 0 {
		t.Fatalf("empty selection: frame %v, %d rows, kind %v", frame, n, kind)
	}
}

// TestScanStreamSmaller asserts the point of the format: on a dense
// selection the stream must be well under 8 bytes/row.
func TestScanStreamSmaller(t *testing.T) {
	values := scanDecimals(10 * vector.Size)
	col := EncodeColumn(values)
	stream, rows := BuildScanStream(col, math.Inf(-1), math.Inf(1))
	if rows != len(values) {
		t.Fatalf("rows = %d, want %d", rows, len(values))
	}
	if len(stream)*2 >= rows*8 {
		t.Fatalf("full-selection stream is %d bytes for %d rows (%.1f B/row); want < 4 B/row",
			len(stream), rows, float64(len(stream))/float64(rows))
	}
}

// TestScanStreamTruncation cuts the stream at every byte offset: each
// prefix must either fail to decode or decode to a strict prefix of
// the rows (a cut exactly on a frame boundary — which the trailer
// row-count check catches one layer up). Silent equality with the full
// result is the one outcome that must never happen.
func TestScanStreamTruncation(t *testing.T) {
	values := scanSpecials(3*vector.Size + 100)
	col := EncodeColumn(values)
	stream, rows := BuildScanStream(col, 0, 600)
	if rows == 0 {
		t.Fatal("predicate selected nothing; test needs frames")
	}
	for cut := 0; cut < len(stream); cut++ {
		d, err := NewScanDecoder(stream[:cut])
		if err != nil {
			continue // header cut: rejected outright
		}
		got := 0
		for {
			vals, err := d.Next()
			if err == io.EOF {
				// Clean EOF on a prefix: only legal on a frame boundary,
				// and then with strictly fewer rows than the full stream.
				if got >= rows {
					t.Fatalf("cut at %d/%d decoded all %d rows cleanly", cut, len(stream), rows)
				}
				break
			}
			if err != nil {
				break // truncation surfaced as an error: correct
			}
			got += len(vals)
		}
	}
}

// TestScanStreamCorruption flips one bit in every byte of the stream
// (header, frame headers, bitmaps, payloads, CRCs): no mutation may
// decode cleanly to the original rows while claiming success, and none
// may panic. The CRC covers the kind byte and payload, the header
// covers itself, so every flip must surface as an error or a
// CRC-detected reject.
func TestScanStreamCorruption(t *testing.T) {
	values := scanDecimals(2*vector.Size + 10)
	col := EncodeColumn(values)
	stream, _ := BuildScanStream(col, 0, 700)
	mut := make([]byte, len(stream))
	for i := 0; i < len(stream); i++ {
		copy(mut, stream)
		mut[i] ^= 0x10
		d, err := NewScanDecoder(mut)
		if err != nil {
			continue
		}
		for {
			_, err := d.Next()
			if err == io.EOF {
				t.Fatalf("bit flip at byte %d decoded cleanly", i)
			}
			if err != nil {
				break
			}
		}
	}
}

// TestScanDecoderBitmapCardinality rejects a dense frame whose bitmap
// popcount disagrees with its count header, even with a valid CRC —
// the fuzz target's core invariant, pinned deterministically here.
func TestScanDecoderBitmapCardinality(t *testing.T) {
	values := scanDecimals(vector.Size)
	col := EncodeColumn(values)
	stream, _ := BuildScanStream(col, math.Inf(-1), math.Inf(1))

	// Frame starts after the stream header: kind, len, payload
	// (count u16 | total u16 | bitmap | envelope), crc.
	p := ScanStreamHeaderSize
	if ScanFrameKind(stream[p]) != ScanFrameDense {
		t.Fatalf("expected a dense frame, got kind %d", stream[p])
	}
	plen := int(binary.LittleEndian.Uint32(stream[p+1:]))
	payloadOff := p + 5
	// Drop one row from the count header and re-seal the CRC: the
	// bitmap still has vector.Size bits set.
	binary.LittleEndian.PutUint16(stream[payloadOff:], uint16(vector.Size-1))
	crc := frameCRC(ScanFrameDense, stream[payloadOff:payloadOff+plen])
	binary.LittleEndian.PutUint32(stream[payloadOff+plen:], crc)

	d, err := NewScanDecoder(stream)
	if err != nil {
		t.Fatalf("NewScanDecoder: %v", err)
	}
	if _, err := d.Next(); err == nil {
		t.Fatal("bitmap-cardinality mismatch decoded without error")
	}
}
