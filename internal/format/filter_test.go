package format

import (
	"math"
	"math/rand"
	"testing"

	"github.com/goalp/alp/internal/fastlanes"
	"github.com/goalp/alp/internal/vector"
)

// aggOracle is the plain-slice comparand: filter then fold, in index
// order, with the same comparison semantics as the pushdown path.
func aggOracle(values []float64, lo, hi float64) FilterAggResult {
	res := FilterAggResult{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range values {
		if v >= lo && v <= hi {
			res.Sum += v
			res.Count++
			if v < res.Min {
				res.Min = v
			}
			if v > res.Max {
				res.Max = v
			}
		}
	}
	return res
}

func checkAggRange(t *testing.T, values []float64, lo, hi float64) {
	t.Helper()
	c := EncodeColumn(values)
	got := c.AggRange(lo, hi)
	want := aggOracle(values, lo, hi)
	if math.Float64bits(got.Sum) != math.Float64bits(want.Sum) || got.Count != want.Count ||
		math.Float64bits(got.Min) != math.Float64bits(want.Min) ||
		math.Float64bits(got.Max) != math.Float64bits(want.Max) {
		t.Fatalf("AggRange([%v, %v]) = {sum %v count %d min %v max %v}, want {sum %v count %d min %v max %v}",
			lo, hi, got.Sum, got.Count, got.Min, got.Max, want.Sum, want.Count, want.Min, want.Max)
	}
}

// TestPredicateEdgeCases is the predicate edge-case table: bounds on
// exactly encodable values, signed zeros, infinities, NaN, bounds
// outside the encodable range, and all-exception vectors — each case
// must agree with the plain-slice oracle bit-for-bit.
func TestPredicateEdgeCases(t *testing.T) {
	decimals := func(n int) []float64 {
		r := rand.New(rand.NewSource(101))
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(r.Intn(100000))/100 - 250
		}
		return out
	}
	mixedSpecials := func(n int) []float64 {
		out := decimals(n)
		out[0] = math.NaN()
		out[1] = math.Inf(1)
		out[2] = math.Inf(-1)
		out[3] = math.Copysign(0, -1)
		out[4] = 0.0
		out[n-1] = math.NaN()
		return out
	}
	allNaN := make([]float64, 2*vector.Size)
	for i := range allNaN {
		allNaN[i] = math.NaN()
	}
	irrationals := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Sqrt(float64(i + 2)) // ~100% exceptions under ALP
		}
		return out
	}

	cases := []struct {
		name   string
		values []float64
		lo, hi float64
	}{
		{"bounds exactly on encodable values", decimals(3000), 100.25, 200.75},
		{"point predicate on an encodable value", decimals(3000), 123.45, 123.45},
		{"negative zero lower bound", mixedSpecials(2000), math.Copysign(0, -1), 10},
		{"zero-zero band matches both zeros", mixedSpecials(2000), 0, 0},
		{"plus inf only", mixedSpecials(2000), math.Inf(1), math.Inf(1)},
		{"minus inf only", mixedSpecials(2000), math.Inf(-1), math.Inf(-1)},
		{"unbounded both sides skips NaN", mixedSpecials(2000), math.Inf(-1), math.Inf(1)},
		{"all NaN nothing matches", allNaN, math.Inf(-1), math.Inf(1)},
		{"bounds below encodable range", decimals(3000), -1e308, -1e300},
		{"bounds above encodable range", decimals(3000), 1e300, 1e308},
		{"band wider than encodable range", decimals(3000), -1e308, 1e308},
		{"all-exception vector", irrationals(1500), 1, 40},
		{"empty band between values", decimals(3000), 100.001, 100.002},
		{"inverted-to-empty band", decimals(3000), 5, 5.0000001},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkAggRange(t, tc.values, tc.lo, tc.hi)
		})
	}
}

func TestFilterVectorMatchesDecode(t *testing.T) {
	// Random decimal data spanning multiple row-groups: per-vector
	// filter bitmaps must match a decode-then-compare oracle.
	r := rand.New(rand.NewSource(17))
	values := make([]float64, vector.RowGroupSize+3*vector.Size+100)
	for i := range values {
		values[i] = float64(r.Intn(1000000)) / 1000
	}
	c := EncodeColumn(values)
	sel := make([]uint64, SelWords)
	buf := make([]float64, vector.Size)
	out := make([]float64, vector.Size)
	scratch := make([]int64, vector.Size)
	lo, hi := 100.0, 300.0
	for i := 0; i < c.NumVectors(); i++ {
		count, pushdown := c.FilterVector(i, lo, hi, sel, buf, scratch)
		if !pushdown {
			t.Fatalf("vector %d: decimal data should push down", i)
		}
		n := c.DecodeVector(i, buf, scratch)
		want := 0
		for j := 0; j < n; j++ {
			match := buf[j] >= lo && buf[j] <= hi
			if match {
				want++
			}
			if got := sel[j>>6]&(1<<uint(j&63)) != 0; got != match {
				t.Fatalf("vector %d row %d: sel = %v, want %v (value %v)", i, j, got, match, buf[j])
			}
		}
		if count != want {
			t.Fatalf("vector %d: count = %d, want %d", i, count, want)
		}
		// Re-filter (DecodeVector clobbered scratch) and gather.
		gcount, _ := c.FilterGatherVector(i, lo, hi, sel, out, scratch)
		if gcount != want {
			t.Fatalf("vector %d: gather count = %d, want %d", i, gcount, want)
		}
		k := 0
		for j := 0; j < n; j++ {
			if buf[j] >= lo && buf[j] <= hi {
				if out[k] != buf[j] {
					t.Fatalf("vector %d: gathered[%d] = %v, want %v", i, k, out[k], buf[j])
				}
				k++
			}
		}
	}
}

func TestFilterVectorRDFallback(t *testing.T) {
	// Real doubles force ALP_rd: FilterVector must take the fallback
	// path and still agree with the oracle.
	r := rand.New(rand.NewSource(19))
	values := make([]float64, 2*vector.Size)
	for i := range values {
		values[i] = r.NormFloat64()
	}
	c := EncodeColumn(values)
	if !c.UsedRD() {
		t.Skip("sampler unexpectedly chose the decimal scheme")
	}
	sel := make([]uint64, SelWords)
	out := make([]float64, vector.Size)
	scratch := make([]int64, vector.Size)
	lo, hi := -0.5, 0.5
	total := 0
	for i := 0; i < c.NumVectors(); i++ {
		count, pushdown := c.FilterGatherVector(i, lo, hi, sel, out, scratch)
		if pushdown {
			t.Fatalf("vector %d: ALP_rd cannot push down", i)
		}
		total += count
	}
	want := aggOracle(values, lo, hi)
	if total != want.Count {
		t.Fatalf("fallback count = %d, want %d", total, want.Count)
	}
}

func TestAggRangeEmptyColumn(t *testing.T) {
	c := EncodeColumn(nil)
	res := c.AggRange(0, 1)
	if res.Count != 0 || res.Sum != 0 || !math.IsInf(res.Min, 1) || !math.IsInf(res.Max, -1) {
		t.Fatalf("empty column AggRange = %+v", res)
	}
}

func TestAggRangeZoneSkip(t *testing.T) {
	// Disjoint per-vector bands: a predicate covering one band must
	// touch exactly one vector.
	values := make([]float64, 4*vector.Size)
	for i := range values {
		values[i] = float64(i/vector.Size)*1000 + float64(i%7)/100
	}
	c := EncodeColumn(values)
	res := c.AggRange(1000, 1000.99)
	if res.Touched != 1 {
		t.Fatalf("touched %d vectors, want 1", res.Touched)
	}
	if res.Count != vector.Size {
		t.Fatalf("count = %d, want %d", res.Count, vector.Size)
	}
}

func TestSelWordsConstant(t *testing.T) {
	if SelWords != fastlanes.SelWords(vector.Size) {
		t.Fatalf("SelWords = %d, want %d", SelWords, fastlanes.SelWords(vector.Size))
	}
}
