package format

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/goalp/alp/internal/vector"
)

func stitchTestValues(n int) []float64 {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Round(rng.NormFloat64()*1e5) / 1000
	}
	if n > 10 {
		vals[3] = math.NaN()
		vals[7] = math.Inf(1)
		vals[9] = math.Copysign(0, -1)
	}
	return vals
}

// Splitting a column into interleaved sub-columns and stitching them
// back in global order must reproduce the original Marshal output byte
// for byte — the invariant the cluster's /data stitching rests on.
func TestStitchRoundTripsMarshal(t *testing.T) {
	vals := stitchTestValues(4*vector.RowGroupSize + 1234)
	orig := EncodeColumn(vals)
	want := orig.Marshal()

	// Interleave row-groups across two "backends", as rendezvous
	// placement would.
	var subA, subB []RowGroupRef
	for g := range orig.RowGroups {
		if g%2 == 0 {
			subA = append(subA, RowGroupRef{Col: orig, G: g})
		} else {
			subB = append(subB, RowGroupRef{Col: orig, G: g})
		}
	}
	colA, err := StitchColumns(subA)
	if err != nil {
		t.Fatal(err)
	}
	colB, err := StitchColumns(subB)
	if err != nil {
		t.Fatal(err)
	}

	// Sub-columns must round-trip through the wire format on their own
	// (this is what a backend ingests and stores).
	reA, err := Unmarshal(colA.Marshal())
	if err != nil {
		t.Fatalf("sub-column A does not round-trip: %v", err)
	}
	reB, err := Unmarshal(colB.Marshal())
	if err != nil {
		t.Fatalf("sub-column B does not round-trip: %v", err)
	}

	// Stitch the unmarshaled shards back together in global order.
	var refs []RowGroupRef
	la, lb := 0, 0
	for g := range orig.RowGroups {
		if g%2 == 0 {
			refs = append(refs, RowGroupRef{Col: reA, G: la})
			la++
		} else {
			refs = append(refs, RowGroupRef{Col: reB, G: lb})
			lb++
		}
	}
	whole, err := StitchColumns(refs)
	if err != nil {
		t.Fatal(err)
	}
	if got := whole.Marshal(); !bytes.Equal(got, want) {
		t.Fatalf("stitched marshal differs from original (%d vs %d bytes)", len(got), len(want))
	}
}

// A stitched sub-column answers decode queries for exactly its values.
func TestStitchSubColumnDecodes(t *testing.T) {
	vals := stitchTestValues(3*vector.RowGroupSize + 500)
	orig := EncodeColumn(vals)
	sub, err := StitchColumns([]RowGroupRef{{Col: orig, G: 0}, {Col: orig, G: 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]float64{}, vals[:vector.RowGroupSize]...), vals[2*vector.RowGroupSize:3*vector.RowGroupSize]...)
	if sub.N != len(want) {
		t.Fatalf("sub.N = %d, want %d", sub.N, len(want))
	}
	buf := make([]float64, vector.Size)
	scratch := make([]int64, vector.Size)
	pos := 0
	for i := 0; i < sub.NumVectors(); i++ {
		n := sub.DecodeVector(i, buf, scratch)
		for j := 0; j < n; j++ {
			if math.Float64bits(buf[j]) != math.Float64bits(want[pos]) {
				t.Fatalf("value %d differs", pos)
			}
			pos++
		}
	}
	if pos != len(want) {
		t.Fatalf("decoded %d values, want %d", pos, len(want))
	}
}

func TestSliceColumn(t *testing.T) {
	vals := stitchTestValues(3*vector.RowGroupSize + 11)
	orig := EncodeColumn(vals)
	sl, err := SliceColumn(orig, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sl.N != 2*vector.RowGroupSize {
		t.Fatalf("slice N = %d", sl.N)
	}
	if _, err := Unmarshal(sl.Marshal()); err != nil {
		t.Fatalf("slice does not round-trip: %v", err)
	}
	if _, err := SliceColumn(orig, 2, 1); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := SliceColumn(orig, 0, len(orig.RowGroups)); err == nil {
		t.Fatal("out-of-range accepted")
	}
	// A partial row-group anywhere but last is rejected.
	last := len(orig.RowGroups) - 1
	if _, err := StitchColumns([]RowGroupRef{{Col: orig, G: last}, {Col: orig, G: 0}}); err == nil {
		t.Fatal("partial row-group in the middle accepted")
	}
}
