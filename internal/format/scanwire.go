// The selection-aware scan wire format: a served filtered scan encoded
// as a framed sequence of per-vector payloads that keeps the bytes on
// the wire proportional to the *compressed* size of the selection, not
// 8 bytes per selected row.
//
// Stream layout ("ALPS"):
//
//	u32 magic "ALPS" | u8 version (1)
//	frame*                                  one frame per vector with >= 1 match
//
// Frame layout:
//
//	u8 kind | u32 payloadLen | payload | u32 crc32c(kind || payload)
//
// Three payload encodings, chosen per vector by exact byte cost:
//
//   - dense (kind 2): u16 count | u16 total | selection bitmap
//     (SelWords(total) u64 words) | the vector's stored ALPV envelope,
//     verbatim. The server never unpacks the payload — it runs the
//     fused filter kernel for the bitmap and ships stored bytes; the
//     client runs the fused unpack+gather. Wins for dense selections,
//     where shipping the original packed vector once beats both raw
//     floats and a re-pack.
//   - repacked (kind 3): an ALPV envelope holding only the selected
//     rows, re-encoded under the vector's own (e, f) combination
//     (alpenc.RepackSelected), so the client decodes exactly the rows
//     it would have gathered locally. Wins for sparse selections:
//     count*width bits instead of total*width.
//   - raw (kind 1): the selected rows as little-endian float64s. The
//     floor encoding — always correct, never smaller than 8 bytes/row.
//     Wins below the size threshold where envelope overhead dominates
//     (a handful of rows), and for sparse selections of ALP_rd vectors,
//     which have no order-preserving integer domain to re-pack in.
//
// Every frame is independently checksummed (Castagnoli CRC32 over kind
// and payload) so a cut or corrupted stream fails loudly at the frame
// where it breaks; stream completion is framed by the transport's
// row-count trailer, which the client verifies against the decoded
// total.
package format

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"time"

	"github.com/goalp/alp/internal/alpenc"
	"github.com/goalp/alp/internal/fastlanes"
	"github.com/goalp/alp/internal/obs"
	"github.com/goalp/alp/internal/vector"
)

// ScanMagic identifies a selection-aware scan stream ("ALPS"
// little-endian).
const ScanMagic = uint32(0x53504C41)

// ScanVersion is the current scan stream version.
const ScanVersion = 1

// ScanContentType is the negotiated media type of the selection-aware
// scan stream; clients opt in with an Accept header carrying it.
const ScanContentType = "application/x-alp-scan"

// RawScanContentType is the fallback media type: selected rows as raw
// little-endian float64s, no framing.
const RawScanContentType = "application/x-alp-f64le"

// ScanFrameKind tags one frame's payload encoding.
type ScanFrameKind uint8

const (
	// ScanFrameRaw is selected rows as raw little-endian float64s.
	ScanFrameRaw ScanFrameKind = 1
	// ScanFrameDense is the stored vector envelope plus a selection
	// bitmap; the client gathers.
	ScanFrameDense ScanFrameKind = 2
	// ScanFrameRepacked is a re-packed ALPV envelope of only the
	// selected rows.
	ScanFrameRepacked ScanFrameKind = 3
)

func (k ScanFrameKind) String() string {
	switch k {
	case ScanFrameRaw:
		return "raw"
	case ScanFrameDense:
		return "dense"
	case ScanFrameRepacked:
		return "repacked"
	}
	return "unknown"
}

// scanFrameOverhead is the fixed per-frame framing cost: kind (1) +
// payload length (4) + CRC (4).
const scanFrameOverhead = 9

// denseExtraSize is the dense payload's cost on top of the envelope:
// count (2) + total (2); the bitmap is sized from total.
const denseExtraSize = 4

// maxScanFramePayload bounds one frame's payload. A full 64-bit-wide
// vector with 1024 exceptions is ~18 KiB; anything past 64 KiB is
// corruption, and rejecting it early keeps a hostile length prefix from
// driving allocations.
const maxScanFramePayload = 64 << 10

// denseSelectivityNum/Den is the dense/sparse threshold: a selection
// covering at least half the vector ships the stored envelope + bitmap
// (the server does no re-encode work and the client's fused kernels do
// the gather); below it, a re-pack is considered. The raw floor is
// always costed against whichever of the two applies.
const (
	denseSelectivityNum = 1
	denseSelectivityDen = 2
)

var scanCRCTable = crc32.MakeTable(crc32.Castagnoli)

// frameCRC checksums one frame: the kind byte folded in front of the
// payload, so a bit-flipped kind cannot redirect a valid payload into
// the wrong decoder.
func frameCRC(kind ScanFrameKind, payload []byte) uint32 {
	crc := crc32.Update(0, scanCRCTable, []byte{byte(kind)})
	return crc32.Update(crc, scanCRCTable, payload)
}

// AppendScanStreamHeader appends the stream magic and version.
func AppendScanStreamHeader(out []byte) []byte {
	out = binary.LittleEndian.AppendUint32(out, ScanMagic)
	return append(out, ScanVersion)
}

// ScanStreamHeaderSize is the byte length of the stream header.
const ScanStreamHeaderSize = 5

// ScanWriter builds scan frames vector-at-a-time over one column. Not
// safe for concurrent use; all buffers are reused across calls, so a
// returned frame is valid only until the next Frame call.
type ScanWriter struct {
	col     *Column
	sel     [SelWords]uint64
	buf     []float64 // float scratch: RD decode, raw gather
	scratch []int64   // raw packed ints (Filter invariant)
	ints    []int64   // repack gather buffer
	frame   []byte    // frame under construction (header + payload + crc)
}

// NewScanWriter returns a writer for one column's scan frames.
func NewScanWriter(c *Column) *ScanWriter {
	return &ScanWriter{
		col:     c,
		buf:     make([]float64, vector.Size),
		scratch: make([]int64, vector.Size),
		ints:    make([]int64, vector.Size),
		frame:   make([]byte, scanFrameOverhead-4, 4096),
	}
}

// Frame evaluates the closed range [lo, hi] over vector i and encodes
// the matching rows as one wire frame, choosing the cheapest of the
// dense / repacked / raw encodings by exact byte size. It returns the
// frame bytes (nil when no row matches — vectors contribute no empty
// frames), the match count, the chosen kind, and whether the selection
// was computed by the encoded-domain pushdown kernel (false on the
// ALP_rd decode-then-filter path). The returned slice is reused by the
// next call.
func (w *ScanWriter) Frame(i int, lo, hi float64) (frame []byte, count int, kind ScanFrameKind, pushdown bool) {
	c := w.col
	g := i / vector.RowGroupVectors
	local := i % vector.RowGroupVectors
	rg := &c.RowGroups[g]
	w.frame = w.frame[:scanFrameOverhead-4] // room for kind + length, backfilled

	if rg.Scheme == SchemeALP {
		v := &rg.Vectors[local]
		intsValid := true // scratch holds raw packed ints
		if c.fullMatch(i, lo, hi) {
			// Metadata-only answer: every row qualifies and the payload
			// was never unpacked.
			setAllSel(w.sel[:], v.N)
			count = v.N
			intsValid = false
		} else {
			count = v.Filter(lo, hi, w.sel[:], w.scratch)
		}
		if count == 0 {
			return nil, 0, 0, true
		}
		envSize := c.vectorEnvelopeSize(i)
		denseCost := denseExtraSize + 8*fastlanes.SelWords(v.N) + envSize
		rawCost := 8 * count
		repackCost := -1
		if intsValid && count*denseSelectivityDen < v.N*denseSelectivityNum {
			// Sparse selection (below the dense threshold): cost the
			// re-pack with the original width — an upper bound, since
			// the selected range can only be narrower.
			repackCost = alpEnvelopeSize(count, v.Ints.Width, v.SelectedExceptions(w.sel[:]))
		}
		switch {
		case denseCost <= rawCost && (repackCost < 0 || denseCost <= repackCost):
			w.appendDensePayload(i, count, v.N)
			kind = ScanFrameDense
		case repackCost >= 0 && repackCost <= rawCost:
			w.appendRepackedPayload(v)
			kind = ScanFrameRepacked
		default:
			if intsValid {
				v.GatherSelected(w.sel[:], w.scratch, w.buf)
			} else {
				c.DecodeVector(i, w.buf, w.scratch)
			}
			w.appendRawPayload(count)
			kind = ScanFrameRaw
		}
		return w.finishFrame(kind), count, kind, true
	}

	// ALP_rd: no order-preserving integer domain, so the selection is
	// computed in the float domain and the only encodings are dense
	// (stored envelope + bitmap) and raw.
	v := &rg.RDVectors[local]
	rg.RD.DecodeVector(v, w.buf[:v.N])
	count = filterFloats(w.buf[:v.N], lo, hi, w.sel[:])
	if count == 0 {
		return nil, 0, 0, false
	}
	envSize := c.vectorEnvelopeSize(i)
	denseCost := denseExtraSize + 8*fastlanes.SelWords(v.N) + envSize
	rawCost := 8 * count
	if denseCost <= rawCost {
		w.appendDensePayload(i, count, v.N)
		kind = ScanFrameDense
	} else {
		// Compact qualifying rows forward in place (the write index
		// never passes the read index).
		n := 0
		for r := 0; r < v.N; r++ {
			if w.sel[r>>6]&(1<<uint(r&63)) != 0 {
				w.buf[n] = w.buf[r]
				n++
			}
		}
		w.appendRawPayload(count)
		kind = ScanFrameRaw
	}
	return w.finishFrame(kind), count, kind, false
}

func (w *ScanWriter) appendDensePayload(i, count, total int) {
	w.frame = binary.LittleEndian.AppendUint16(w.frame, uint16(count))
	w.frame = binary.LittleEndian.AppendUint16(w.frame, uint16(total))
	for _, word := range w.sel[:fastlanes.SelWords(total)] {
		w.frame = binary.LittleEndian.AppendUint64(w.frame, word)
	}
	w.frame = w.col.appendVectorEnvelope(w.frame, i)
}

func (w *ScanWriter) appendRepackedPayload(v *alpenc.Vector) {
	// The re-pack is the only per-vector encode work on the scan path;
	// its (sampled) histogram shows what the sparse encoding costs the
	// server per vector.
	if o := obs.Active(); o.SampleStage(obs.HistStageRepack) {
		start := time.Now()
		rv := v.RepackSelected(w.sel[:], w.scratch, w.ints)
		w.frame = AppendALPVectorEnvelope(w.frame, &rv)
		o.Observe(obs.HistStageRepack, time.Since(start).Nanoseconds())
		return
	}
	rv := v.RepackSelected(w.sel[:], w.scratch, w.ints)
	w.frame = AppendALPVectorEnvelope(w.frame, &rv)
}

func (w *ScanWriter) appendRawPayload(count int) {
	for _, x := range w.buf[:count] {
		w.frame = binary.LittleEndian.AppendUint64(w.frame, math.Float64bits(x))
	}
}

// finishFrame backfills the kind and payload length and appends the
// CRC.
func (w *ScanWriter) finishFrame(kind ScanFrameKind) []byte {
	payload := w.frame[scanFrameOverhead-4:]
	w.frame[0] = byte(kind)
	binary.LittleEndian.PutUint32(w.frame[1:5], uint32(len(payload)))
	w.frame = binary.LittleEndian.AppendUint32(w.frame, frameCRC(kind, payload))
	return w.frame
}

// BuildScanStream encodes the complete selection-aware stream for
// [lo, hi] into one buffer, returning the stream and the total row
// count — the offline equivalent of the server's scan loop (zone-map
// skipping included), used by golden fixtures, fuzz seeds and the
// differential tests.
func BuildScanStream(c *Column, lo, hi float64) ([]byte, int) {
	out := AppendScanStreamHeader(nil)
	w := NewScanWriter(c)
	rows := 0
	for i := 0; i < c.NumVectors(); i++ {
		if c.Zones != nil && !c.Zones.MayContain(i, lo, hi) {
			continue
		}
		frame, n, _, _ := w.Frame(i, lo, hi)
		if frame != nil {
			out = append(out, frame...)
			rows += n
		}
	}
	return out, rows
}

// ScanDecoder decodes a selection-aware scan stream frame-at-a-time.
// Every structural invariant — magic, version, frame length, CRC,
// bitmap cardinality, envelope value counts — is validated, so a
// truncated or corrupted stream surfaces as ErrCorrupt at the frame
// where it breaks, never as a panic or a silently wrong row.
type ScanDecoder struct {
	data    []byte
	pos     int
	rows    int
	sel     [SelWords]uint64
	scratch []int64
	tmp     []float64 // full-vector buffer for dense RD gathers
	out     []float64 // frame output, reused across Next calls
}

// NewScanDecoder validates the stream header and returns a decoder
// positioned at the first frame.
func NewScanDecoder(data []byte) (*ScanDecoder, error) {
	if len(data) < ScanStreamHeaderSize {
		return nil, corrupt("scan stream header: have %d bytes, need %d", len(data), ScanStreamHeaderSize)
	}
	if binary.LittleEndian.Uint32(data) != ScanMagic {
		return nil, corrupt("bad scan stream magic")
	}
	if v := data[4]; v != ScanVersion {
		return nil, corrupt("unsupported scan stream version %d", v)
	}
	return &ScanDecoder{
		data:    data,
		pos:     ScanStreamHeaderSize,
		scratch: make([]int64, vector.Size),
		tmp:     make([]float64, vector.Size),
		out:     make([]float64, vector.Size),
	}, nil
}

// Rows returns the number of rows decoded so far.
func (d *ScanDecoder) Rows() int { return d.rows }

// Next decodes the next frame and returns its rows, in position order.
// The returned slice is reused by the next call. io.EOF signals a
// cleanly exhausted stream; any other error means the stream is
// corrupt or truncated mid-frame.
func (d *ScanDecoder) Next() ([]float64, error) {
	if d.pos == len(d.data) {
		return nil, io.EOF
	}
	o := obs.Active()
	var start time.Time
	sampled := o.SampleStage(obs.HistStageScanDecode)
	if sampled {
		start = time.Now()
	}
	rest := len(d.data) - d.pos
	if rest < scanFrameOverhead {
		return nil, corrupt("truncated scan frame: %d trailing bytes, frame needs >= %d", rest, scanFrameOverhead)
	}
	kind := ScanFrameKind(d.data[d.pos])
	plen := int(binary.LittleEndian.Uint32(d.data[d.pos+1:]))
	if plen > maxScanFramePayload {
		return nil, corrupt("scan frame payload %d exceeds %d-byte cap", plen, maxScanFramePayload)
	}
	if rest-scanFrameOverhead < plen {
		return nil, corrupt("truncated scan frame: payload of %d with %d bytes left", plen, rest-scanFrameOverhead+4)
	}
	payload := d.data[d.pos+5 : d.pos+5+plen]
	wantCRC := binary.LittleEndian.Uint32(d.data[d.pos+5+plen:])
	if got := frameCRC(kind, payload); got != wantCRC {
		return nil, corrupt("scan frame CRC mismatch (got %08x, stored %08x)", got, wantCRC)
	}
	d.pos += scanFrameOverhead + plen

	var out []float64
	var err error
	switch kind {
	case ScanFrameRaw:
		out, err = d.decodeRaw(payload)
	case ScanFrameRepacked:
		out, err = d.decodeRepacked(payload)
	case ScanFrameDense:
		out, err = d.decodeDense(payload)
	default:
		return nil, corrupt("unknown scan frame kind %d", kind)
	}
	if err != nil {
		return nil, err
	}
	d.rows += len(out)
	if sampled {
		o.Observe(obs.HistStageScanDecode, time.Since(start).Nanoseconds())
	}
	return out, nil
}

func (d *ScanDecoder) decodeRaw(payload []byte) ([]float64, error) {
	if len(payload) == 0 || len(payload)%8 != 0 {
		return nil, corrupt("raw scan frame payload of %d bytes", len(payload))
	}
	n := len(payload) / 8
	if n > vector.Size {
		return nil, corrupt("raw scan frame holds %d rows, vector max is %d", n, vector.Size)
	}
	for i := 0; i < n; i++ {
		d.out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return d.out[:n], nil
}

func (d *ScanDecoder) decodeRepacked(payload []byte) ([]float64, error) {
	r := &reader{data: payload}
	env, err := parseVectorEnvelope(r)
	if err != nil {
		return nil, err
	}
	if r.pos != len(payload) {
		return nil, corrupt("%d trailing bytes in repacked scan frame", len(payload)-r.pos)
	}
	if env.Scheme != SchemeALP {
		// The server only re-packs decimal-scheme vectors; an RD
		// envelope here means the frame was tampered with.
		return nil, corrupt("repacked scan frame with scheme %v", env.Scheme)
	}
	env.ALP.Decode(d.out[:env.ALP.N], d.scratch)
	return d.out[:env.ALP.N], nil
}

func (d *ScanDecoder) decodeDense(payload []byte) ([]float64, error) {
	if len(payload) < denseExtraSize {
		return nil, corrupt("dense scan frame payload of %d bytes", len(payload))
	}
	count := int(binary.LittleEndian.Uint16(payload))
	total := int(binary.LittleEndian.Uint16(payload[2:]))
	if total < 1 || total > vector.Size {
		return nil, corrupt("dense scan frame total %d", total)
	}
	if count < 1 || count > total {
		return nil, corrupt("dense scan frame count %d of %d", count, total)
	}
	nw := fastlanes.SelWords(total)
	if len(payload) < denseExtraSize+8*nw {
		return nil, corrupt("dense scan frame bitmap truncated")
	}
	pop := 0
	for i := 0; i < nw; i++ {
		d.sel[i] = binary.LittleEndian.Uint64(payload[denseExtraSize+8*i:])
		pop += bits.OnesCount64(d.sel[i])
	}
	if r := total & 63; r != 0 && d.sel[nw-1]>>uint(r) != 0 {
		return nil, corrupt("dense scan frame bitmap sets bits past row %d", total)
	}
	if pop != count {
		return nil, corrupt("dense scan frame bitmap cardinality %d, header says %d", pop, count)
	}
	r := &reader{data: payload, pos: denseExtraSize + 8*nw}
	env, err := parseVectorEnvelope(r)
	if err != nil {
		return nil, err
	}
	if r.pos != len(payload) {
		return nil, corrupt("%d trailing bytes in dense scan frame", len(payload)-r.pos)
	}
	if env.Scheme == SchemeRD {
		if env.RD.N != total {
			return nil, corrupt("dense scan frame envelope holds %d rows, header says %d", env.RD.N, total)
		}
		if count == total {
			// Full match: every row qualifies, skip the bitmap gather.
			env.RDEnc.DecodeVector(&env.RD, d.out[:total])
			return d.out[:total], nil
		}
		env.RDEnc.DecodeVector(&env.RD, d.tmp[:total])
		n := 0
		for w := 0; w < nw; w++ {
			word := d.sel[w]
			for word != 0 {
				i := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				d.out[n] = d.tmp[i]
				n++
			}
		}
		return d.out[:n], nil
	}
	if env.ALP.N != total {
		return nil, corrupt("dense scan frame envelope holds %d rows, header says %d", env.ALP.N, total)
	}
	if count == total {
		// Full match: the whole-vector fused decode beats a gather over
		// an all-set bitmap.
		env.ALP.Decode(d.out[:total], d.scratch)
		return d.out[:total], nil
	}
	// The fused client path: unpack the raw packed integers once, then
	// gather only the selected rows to floats — the same kernels a
	// local pushdown scan runs.
	env.ALP.Ints.UnpackRaw(d.scratch[:total])
	n := env.ALP.GatherSelected(d.sel[:], d.scratch, d.out)
	return d.out[:n], nil
}
