package format

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/vector"
)

func roundTrip(t *testing.T, src []float64) *Column {
	t.Helper()
	c := EncodeColumn(src)
	got := c.Decode()
	if len(got) != len(src) {
		t.Fatalf("decoded %d values, want %d", len(got), len(src))
	}
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d: got %v, want %v", i, got[i], src[i])
		}
	}
	return c
}

func TestEncodeDecodeColumn(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	src := make([]float64, 2*vector.RowGroupSize+5000) // 3 row-groups, last partial
	for i := range src {
		src[i] = float64(r.Intn(100000)) / 100
	}
	c := roundTrip(t, src)
	if c.UsedRD() {
		t.Fatal("decimal data must not use ALP_rd")
	}
	if bpv := c.BitsPerValue(); bpv >= 30 {
		t.Fatalf("bits/value = %.1f, want strong compression on 2-decimal data", bpv)
	}
}

func TestColumnPicksRDPerRowGroup(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	// First row-group decimal, second full-precision: the scheme choice
	// is per row-group.
	src := make([]float64, 2*vector.RowGroupSize)
	for i := 0; i < vector.RowGroupSize; i++ {
		src[i] = float64(r.Intn(10000)) / 10
	}
	for i := vector.RowGroupSize; i < len(src); i++ {
		src[i] = r.Float64() * math.Pi
	}
	c := roundTrip(t, src)
	if c.RowGroups[0].Scheme != SchemeALP {
		t.Fatal("row-group 0 must use ALP")
	}
	if c.RowGroups[1].Scheme != SchemeRD {
		t.Fatal("row-group 1 must use ALP_rd")
	}
	if SchemeALP.String() != "ALP" || SchemeRD.String() != "ALP_rd" {
		t.Fatal("scheme names wrong")
	}
}

func TestDecodeVectorRandomAccess(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	src := make([]float64, vector.RowGroupSize+3000)
	for i := range src {
		src[i] = float64(r.Intn(1000000)) / 1000
	}
	c := EncodeColumn(src)
	buf := make([]float64, vector.Size)
	scratch := make([]int64, vector.Size)
	for _, vi := range []int{0, 7, 99, 100, c.NumVectors() - 1} {
		n := c.DecodeVector(vi, buf, scratch)
		lo, hi := vector.Bounds(vi, len(src))
		if n != hi-lo {
			t.Fatalf("vector %d: n = %d, want %d", vi, n, hi-lo)
		}
		for i := 0; i < n; i++ {
			if math.Float64bits(buf[i]) != math.Float64bits(src[lo+i]) {
				t.Fatalf("vector %d value %d mismatch", vi, i)
			}
		}
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	for _, name := range []string{"City-Temp", "POI-lat", "Gov/26", "CMS/25"} {
		d, ok := dataset.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		src := d.Generate(vector.RowGroupSize + 4321)
		c := EncodeColumn(src)
		data := c.Marshal()
		c2, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		got := c2.Decode()
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				t.Fatalf("%s: value %d mismatch after marshal round trip", name, i)
			}
		}
	}
}

func TestMarshalSizeMatchesSizeBits(t *testing.T) {
	d, _ := dataset.ByName("Stocks-USA")
	src := d.Generate(vector.RowGroupSize)
	c := EncodeColumn(src)
	data := c.Marshal()
	// SizeBits is the analytic accounting; Marshal has byte-alignment
	// padding per field. They must agree within a few percent.
	ratio := float64(len(data)*8) / float64(c.SizeBits())
	if ratio < 0.95 || ratio > 1.15 {
		t.Fatalf("marshalled %d bits vs SizeBits %d (ratio %.2f)", len(data)*8, c.SizeBits(), ratio)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	d, _ := dataset.ByName("City-Temp")
	src := d.Generate(4096)
	data := EncodeColumn(src).Marshal()

	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("want error on empty input")
	}
	if _, err := Unmarshal(data[:7]); err == nil {
		t.Fatal("want error on truncated header")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("want error on bad magic")
	}
	for _, cut := range []int{20, len(data) / 2, len(data) - 1} {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Fatalf("want error on truncation at %d", cut)
		}
	}
}

func TestUnmarshalRejectsBadFields(t *testing.T) {
	d, _ := dataset.ByName("City-Temp")
	src := d.Generate(2048)
	data := EncodeColumn(src).Marshal()
	// Corrupt the scheme byte of the first row-group (offset 16).
	bad := append([]byte(nil), data...)
	bad[16] = 9
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("want error on unknown scheme")
	}
}

func TestSum(t *testing.T) {
	src := []float64{1.5, 2.5, -1.0, 10.25}
	c := EncodeColumn(src)
	if got := c.Sum(); got != 13.25 {
		t.Fatalf("Sum = %v, want 13.25", got)
	}
}

func TestEmptyColumn(t *testing.T) {
	c := EncodeColumn(nil)
	if c.N != 0 || c.NumVectors() != 0 {
		t.Fatal("empty column must be empty")
	}
	if got := c.Decode(); len(got) != 0 {
		t.Fatal("empty decode must be empty")
	}
	data := c.Marshal()
	c2, err := Unmarshal(data)
	if err != nil || c2.N != 0 {
		t.Fatalf("empty marshal round trip: %v", err)
	}
}

func TestQuickColumnRoundTrip(t *testing.T) {
	f := func(raw []uint64) bool {
		src := make([]float64, len(raw))
		for i, b := range raw {
			src[i] = math.Float64frombits(b)
		}
		c := EncodeColumn(src)
		got := c.Decode()
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		data := c.Marshal()
		c2, err := Unmarshal(data)
		if err != nil {
			return false
		}
		got2 := c2.Decode()
		for i := range src {
			if math.Float64bits(got2[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplingOverheadStats(t *testing.T) {
	d, _ := dataset.ByName("City-Temp")
	src := d.Generate(vector.RowGroupSize)
	c := EncodeColumn(src)
	rg := c.RowGroups[0]
	if rg.Scheme != SchemeALP {
		t.Fatal("City-Temp must use ALP")
	}
	if len(rg.SecondStageTried) != len(rg.Vectors) {
		t.Fatal("second-stage stats missing")
	}
}
