// Package format implements the columnar storage layout for
// ALP-compressed data: columns are split into row-groups of 100 vectors
// of 1024 values; each row-group carries its scheme (ALP decimal or
// ALP_rd), its sampled parameters, and independently decodable vectors,
// so a reader can skip to any vector without touching the rest — the
// property that distinguishes lightweight encodings from block-based
// general-purpose compression (§1, §4.1).
package format

import (
	"time"

	"github.com/goalp/alp/internal/alpenc"
	"github.com/goalp/alp/internal/alprd"
	"github.com/goalp/alp/internal/obs"
	"github.com/goalp/alp/internal/pipeline"
	"github.com/goalp/alp/internal/vector"
)

// Scheme identifies the encoding of a row-group.
type Scheme uint8

const (
	// SchemeALP is the decimal encoding (§3.1).
	SchemeALP Scheme = iota
	// SchemeRD is the real-double encoding (§3.4).
	SchemeRD
)

func (s Scheme) String() string {
	if s == SchemeRD {
		return "ALP_rd"
	}
	return "ALP"
}

// Column is an ALP-compressed column of float64 values.
type Column struct {
	N         int
	RowGroups []RowGroup

	// Zones holds per-vector min/max statistics for predicate
	// push-down. Always populated by EncodeColumn; optional in
	// serialized streams. Excluded from SizeBits, which accounts for
	// the codec payload the way Table 4 does.
	Zones *ZoneMap
}

// RowGroup is one compressed row-group.
type RowGroup struct {
	Scheme Scheme
	Start  int // index of the first value
	N      int

	// SchemeALP state.
	Combos  []alpenc.Combo
	Vectors []alpenc.Vector

	// SchemeRD state.
	RD        *alprd.Encoder
	RDVectors []alprd.Vector

	// SecondStageTried records, per vector, how many candidate
	// combinations the second sampling stage evaluated (0 when skipped);
	// used by the sampling-overhead experiment (§4.2).
	SecondStageTried []int
}

// EncodeColumn compresses values: per row-group it runs first-level
// sampling, picks ALP or ALP_rd, and encodes every vector. It is the
// serial path, equivalent to EncodeColumnParallel with one worker.
func EncodeColumn(values []float64) *Column {
	return EncodeColumnParallel(values, 1)
}

// EncodeColumnParallel is EncodeColumn fanned out over a worker pool:
// row-groups are independently sampled and encoded (the paper's
// Algorithm 1 has no cross-row-group state), claimed morsel-style and
// written into an index-addressed slice, so the resulting column — and
// its Marshal output — is byte-identical to the serial encode at any
// worker count. workers <= 0 means one worker per CPU; the fan-out is
// clamped to the row-group count, and a single row-group encodes
// inline with no goroutines.
func EncodeColumnParallel(values []float64, workers int) *Column {
	ng := vector.RowGroupsIn(len(values))
	c := &Column{
		N:         len(values),
		Zones:     BuildZoneMap(values),
		RowGroups: make([]RowGroup, ng),
	}
	scratches := make([][]int64, pipeline.Workers(workers))
	pipeline.Run(ng, workers, func(worker, g int) {
		if scratches[worker] == nil {
			scratches[worker] = make([]int64, vector.Size)
		}
		lo := g * vector.RowGroupSize
		hi := lo + vector.RowGroupSize
		if hi > len(values) {
			hi = len(values)
		}
		c.RowGroups[g] = encodeRowGroup(values[lo:hi], lo, scratches[worker])
	})
	return c
}

// EncodeRowGroup compresses one row-group of values starting at global
// index start. It is the building block of streaming writers: each
// row-group is sampled and encoded independently.
func EncodeRowGroup(values []float64, start int) RowGroup {
	return encodeRowGroup(values, start, make([]int64, vector.Size))
}

func encodeRowGroup(values []float64, start int, scratch []int64) RowGroup {
	o := obs.Active()
	var began time.Time
	if o != nil {
		began = time.Now()
	}
	rg := RowGroup{Start: start, N: len(values)}
	dec := alpenc.SampleRowGroup(values)
	if dec.UseRD || len(dec.Combos) == 0 {
		rg.Scheme = SchemeRD
		rg.RD = alprd.Sample(values)
		for v := 0; v < vector.VectorsIn(len(values)); v++ {
			lo, hi := vector.Bounds(v, len(values))
			ev := rg.RD.EncodeVector(values[lo:hi])
			o.VectorEncoded(ev.N, ev.Exceptions(), obs.WidthNone)
			rg.RDVectors = append(rg.RDVectors, ev)
		}
		o.RowGroup(true)
		if o != nil {
			ns := time.Since(began).Nanoseconds()
			o.EncodeTime(ns, len(values))
			o.Observe(obs.HistStageEncode, ns)
		}
		return rg
	}
	rg.Scheme = SchemeALP
	rg.Combos = dec.Combos
	for v := 0; v < vector.VectorsIn(len(values)); v++ {
		lo, hi := vector.Bounds(v, len(values))
		combo, tried := alpenc.ChooseForVector(values[lo:hi], dec.Combos)
		ev := alpenc.EncodeVector(values[lo:hi], combo, scratch)
		o.VectorEncoded(ev.N, ev.Exceptions(), ev.Ints.Width)
		rg.Vectors = append(rg.Vectors, ev)
		rg.SecondStageTried = append(rg.SecondStageTried, tried)
	}
	o.RowGroup(false)
	if o != nil {
		ns := time.Since(began).Nanoseconds()
		o.EncodeTime(ns, len(values))
		o.Observe(obs.HistStageEncode, ns)
	}
	return rg
}

// NumVectors returns the number of vectors in the column.
func (c *Column) NumVectors() int { return vector.VectorsIn(c.N) }

// VectorLen returns the number of values in vector i.
func (c *Column) VectorLen(i int) int {
	lo, hi := vector.Bounds(i, c.N)
	return hi - lo
}

// DecodeVector decompresses vector i (a global vector index) into dst
// and returns the number of values written. Only the addressed vector
// is touched: this is the vector-skipping access path.
func (c *Column) DecodeVector(i int, dst []float64, scratch []int64) int {
	o := obs.Active()
	var began time.Time
	if o != nil {
		began = time.Now()
	}
	g := i / vector.RowGroupVectors
	local := i % vector.RowGroupVectors
	rg := &c.RowGroups[g]
	var n int
	if rg.Scheme == SchemeRD {
		v := &rg.RDVectors[local]
		rg.RD.DecodeVector(v, dst[:v.N])
		n = v.N
	} else {
		v := &rg.Vectors[local]
		v.Decode(dst[:v.N], scratch)
		n = v.N
	}
	if o != nil {
		o.VectorDecoded(n, time.Since(began).Nanoseconds())
	}
	return n
}

// Decode decompresses the whole column into a new slice (serially;
// DecodeParallel is the multi-core variant).
func (c *Column) Decode() []float64 {
	return c.DecodeParallel(1)
}

// DecodeParallel decompresses the whole column with a worker pool:
// workers claim row-groups morsel-style and decode each vector straight
// into its slot of the preallocated result slice, so the output is
// bit-identical to the serial decode at any worker count. workers <= 0
// means one worker per CPU; a single row-group decodes inline.
func (c *Column) DecodeParallel(workers int) []float64 {
	out := make([]float64, c.N)
	scratches := make([][]int64, pipeline.Workers(workers))
	pipeline.Run(len(c.RowGroups), workers, func(worker, g int) {
		if scratches[worker] == nil {
			scratches[worker] = make([]int64, vector.Size)
		}
		first := g * vector.RowGroupVectors
		for j := 0; j < vector.VectorsIn(c.RowGroups[g].N); j++ {
			lo, hi := vector.Bounds(first+j, c.N)
			c.DecodeVector(first+j, out[lo:hi], scratches[worker])
		}
	})
	return out
}

// SizeBits returns the exact compressed payload size in bits, including
// all per-vector and per-row-group metadata (the bits/value accounting
// of Table 4).
func (c *Column) SizeBits() int {
	bits := 64 + 32 // count + row-group count
	for i := range c.RowGroups {
		bits += c.RowGroups[i].SizeBits()
	}
	return bits
}

// SizeBits returns the compressed size of one row-group in bits,
// including its scheme byte and sampled parameters.
func (rg *RowGroup) SizeBits() int {
	bits := 8 // scheme byte
	if rg.Scheme == SchemeRD {
		bits += rg.RD.HeaderBits()
		for j := range rg.RDVectors {
			bits += rg.RD.SizeBits(&rg.RDVectors[j])
		}
	} else {
		bits += 8 + len(rg.Combos)*16
		for j := range rg.Vectors {
			bits += rg.Vectors[j].SizeBits()
		}
	}
	return bits
}

// BitsPerValue returns the compression ratio in bits per value.
func (c *Column) BitsPerValue() float64 {
	if c.N == 0 {
		return 0
	}
	return float64(c.SizeBits()) / float64(c.N)
}

// Exceptions returns the total exception count across all vectors.
func (c *Column) Exceptions() int {
	total := 0
	for i := range c.RowGroups {
		rg := &c.RowGroups[i]
		for j := range rg.Vectors {
			total += rg.Vectors[j].Exceptions()
		}
		for j := range rg.RDVectors {
			total += rg.RDVectors[j].Exceptions()
		}
	}
	return total
}

// UsedRD reports whether any row-group fell back to ALP_rd.
func (c *Column) UsedRD() bool {
	for i := range c.RowGroups {
		if c.RowGroups[i].Scheme == SchemeRD {
			return true
		}
	}
	return false
}

// SumRange sums the values in [lo, hi], skipping every vector whose
// zone map proves it holds no qualifying values — the predicate
// push-down scan the paper contrasts with block-based compression. It
// returns the sum, the match count, and how many vectors were
// decompressed.
func (c *Column) SumRange(lo, hi float64) (sum float64, count, touched int) {
	o := obs.Active()
	o.RangeScan()
	skipped := 0
	scratch := make([]int64, vector.Size)
	buf := make([]float64, vector.Size)
	for i := 0; i < c.NumVectors(); i++ {
		if c.Zones != nil && !c.Zones.MayContain(i, lo, hi) {
			skipped++
			continue
		}
		n := c.DecodeVector(i, buf, scratch)
		touched++
		for _, v := range buf[:n] {
			if v >= lo && v <= hi {
				sum += v
				count++
			}
		}
	}
	o.VectorsSkipped(skipped)
	return sum, count, touched
}

// Sum decompresses nothing it does not need: it folds the whole column
// through per-vector decode buffers, mirroring a SUM aggregation over a
// scan (§4.3). NaN values propagate as in IEEE arithmetic.
func (c *Column) Sum() float64 {
	var sum float64
	scratch := make([]int64, vector.Size)
	buf := make([]float64, vector.Size)
	for i := 0; i < c.NumVectors(); i++ {
		n := c.DecodeVector(i, buf, scratch)
		for _, v := range buf[:n] {
			sum += v
		}
	}
	return sum
}
