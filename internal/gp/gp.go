// Package gp is the general-purpose, block-based comparator standing in
// for Zstd in the evaluation (see DESIGN.md, substitution 2): stdlib
// DEFLATE over 256 KiB blocks of little-endian doubles. Like Zstd in
// the paper, it compresses well and slowly, and its block granularity
// means a reader must decompress a whole block (32 vectors) to access
// any value in it — the property that prevents predicate push-down.
package gp

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"io"
	"math"
)

// BlockValues is the number of float64 values per compression block:
// 32768 values = 256 KiB, the block size the paper cites for Zstd.
const BlockValues = 32768

var errCorrupt = errors.New("gp: corrupt stream")

// Compress encodes src block-at-a-time. Each block is framed with its
// compressed byte length.
func Compress(src []float64) []byte {
	var out []byte
	raw := make([]byte, 0, BlockValues*8)
	var cbuf bytes.Buffer
	for off := 0; off < len(src); off += BlockValues {
		hi := off + BlockValues
		if hi > len(src) {
			hi = len(src)
		}
		raw = raw[:0]
		for _, v := range src[off:hi] {
			raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(v))
		}
		cbuf.Reset()
		fw, err := flate.NewWriter(&cbuf, flate.DefaultCompression)
		if err != nil {
			panic("gp: " + err.Error()) // impossible with a valid level
		}
		if _, err := fw.Write(raw); err != nil || fw.Close() != nil {
			panic("gp: in-memory deflate cannot fail")
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(cbuf.Len()))
		out = append(out, cbuf.Bytes()...)
	}
	return out
}

// Compress32 encodes float32 values block-at-a-time (64 K values per
// 256 KiB block).
func Compress32(src []float32) []byte {
	var out []byte
	raw := make([]byte, 0, BlockValues*8)
	var cbuf bytes.Buffer
	const blockValues32 = BlockValues * 2
	for off := 0; off < len(src); off += blockValues32 {
		hi := off + blockValues32
		if hi > len(src) {
			hi = len(src)
		}
		raw = raw[:0]
		for _, v := range src[off:hi] {
			raw = binary.LittleEndian.AppendUint32(raw, math.Float32bits(v))
		}
		cbuf.Reset()
		fw, err := flate.NewWriter(&cbuf, flate.DefaultCompression)
		if err != nil {
			panic("gp: " + err.Error())
		}
		if _, err := fw.Write(raw); err != nil || fw.Close() != nil {
			panic("gp: in-memory deflate cannot fail")
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(cbuf.Len()))
		out = append(out, cbuf.Bytes()...)
	}
	return out
}

// Decompress decodes len(dst) values from data into dst.
func Decompress(dst []float64, data []byte) error {
	off := 0
	for off < len(dst) {
		if len(data) < 4 {
			return errCorrupt
		}
		clen := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if len(data) < clen {
			return errCorrupt
		}
		fr := flate.NewReader(bytes.NewReader(data[:clen]))
		raw, err := io.ReadAll(fr)
		if err != nil {
			return err
		}
		data = data[clen:]
		if len(raw)%8 != 0 || off+len(raw)/8 > len(dst) {
			return errCorrupt
		}
		for i := 0; i < len(raw); i += 8 {
			dst[off] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i:]))
			off++
		}
	}
	return nil
}

// Decompress32 decodes len(dst) float32 values from data into dst.
func Decompress32(dst []float32, data []byte) error {
	off := 0
	for off < len(dst) {
		if len(data) < 4 {
			return errCorrupt
		}
		clen := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if len(data) < clen {
			return errCorrupt
		}
		fr := flate.NewReader(bytes.NewReader(data[:clen]))
		raw, err := io.ReadAll(fr)
		if err != nil {
			return err
		}
		data = data[clen:]
		if len(raw)%4 != 0 || off+len(raw)/4 > len(dst) {
			return errCorrupt
		}
		for i := 0; i < len(raw); i += 4 {
			dst[off] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i:]))
			off++
		}
	}
	return nil
}
