package gp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	src := make([]float64, BlockValues+5000) // two blocks, second partial
	for i := range src {
		src[i] = float64(r.Intn(1000)) / 10
	}
	data := Compress(src)
	got := make([]float64, len(src))
	if err := Decompress(got, data); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d mismatch", i)
		}
	}
	bits := float64(len(data)*8) / float64(len(src))
	if bits >= 64 {
		t.Fatalf("no compression: %.1f bits/value", bits)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	if data := Compress(nil); len(data) != 0 {
		t.Fatalf("empty input produced %d bytes", len(data))
	}
	if err := Decompress(nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLossless(t *testing.T) {
	f := func(raw []uint64) bool {
		src := make([]float64, len(raw))
		for i, b := range raw {
			src[i] = math.Float64frombits(b)
		}
		data := Compress(src)
		got := make([]float64, len(src))
		if err := Decompress(got, data); err != nil {
			return false
		}
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLossless32(t *testing.T) {
	f := func(raw []uint32) bool {
		src := make([]float32, len(raw))
		for i, b := range raw {
			src[i] = math.Float32frombits(b)
		}
		data := Compress32(src)
		got := make([]float32, len(src))
		if err := Decompress32(got, data); err != nil {
			return false
		}
		for i := range src {
			if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	src := []float64{1.5, 2.5}
	data := Compress(src)
	got := make([]float64, 2)
	if err := Decompress(got, data[:3]); err == nil {
		t.Fatal("want error on truncated frame")
	}
	if err := Decompress(got, nil); err == nil {
		t.Fatal("want error on empty stream with nonzero dst")
	}
}
