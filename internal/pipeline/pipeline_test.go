package pipeline

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

// TestRunCoversEveryItemOnce is the scheduler's core contract: every
// item in [0, n) is processed exactly once, at every worker count.
func TestRunCoversEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		const n = 53
		var hits [n]atomic.Int64
		Run(n, workers, func(_, item int) {
			hits[item].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d processed %d times", workers, i, got)
			}
		}
	}
}

func TestRunZeroAndOneItems(t *testing.T) {
	calls := 0
	Run(0, 8, func(_, _ int) { calls++ })
	if calls != 0 {
		t.Fatalf("Run(0) made %d calls", calls)
	}
	Run(1, 8, func(worker, item int) {
		calls++
		if worker != 0 || item != 0 {
			t.Fatalf("Run(1) got worker=%d item=%d", worker, item)
		}
	})
	if calls != 1 {
		t.Fatalf("Run(1) made %d calls", calls)
	}
}

// TestRunWorkerIDsAreDisjoint checks the per-worker-scratch contract:
// worker ids stay below the effective worker count, so a caller-side
// scratch slice indexed by worker id is race-free.
func TestRunWorkerIDsAreDisjoint(t *testing.T) {
	const n, workers = 40, 4
	var perWorker [workers]atomic.Int64
	Run(n, workers, func(worker, _ int) {
		if worker < 0 || worker >= workers {
			t.Errorf("worker id %d out of range", worker)
			return
		}
		perWorker[worker].Add(1)
	})
	total := int64(0)
	for i := range perWorker {
		total += perWorker[i].Load()
	}
	if total != n {
		t.Fatalf("processed %d items, want %d", total, n)
	}
}

// TestPoolOrdersResultsBySubmission feeds jobs that finish in a
// scrambled order and asserts Finish returns them in submission order —
// the determinism contract the parallel Writer relies on.
func TestPoolOrdersResultsBySubmission(t *testing.T) {
	const n = 64
	p := NewPool(4, func(_ int, j int) int {
		// Vary the work per job so completion order scrambles.
		s := 0
		for i := 0; i < (j%7)*1000; i++ {
			s += i
		}
		_ = s
		return j * 10
	})
	for j := 0; j < n; j++ {
		p.Submit(j)
	}
	got := p.Finish()
	if len(got) != n {
		t.Fatalf("Finish returned %d results, want %d", len(got), n)
	}
	for j := range got {
		if got[j] != j*10 {
			t.Fatalf("result %d = %d, want %d", j, got[j], j*10)
		}
	}
}

func TestPoolNoJobs(t *testing.T) {
	p := NewPool(3, func(_ int, j int) int { return j })
	if got := p.Finish(); len(got) != 0 {
		t.Fatalf("empty pool returned %d results", len(got))
	}
}

// TestPoolBoundsInFlight asserts the workers+1 window: with workers
// blocked, the producer can queue exactly one more job before Submit
// would block.
func TestPoolBoundsInFlight(t *testing.T) {
	const workers = 2
	gate := make(chan struct{})
	var started atomic.Int64
	p := NewPool(workers, func(_ int, j int) int {
		started.Add(1)
		<-gate
		return j
	})
	// Fill the window from a producer goroutine: workers jobs get
	// claimed, one sits in the queue, and the (workers+2)-th submission
	// must block until a worker is released.
	submitted := make(chan int, 16)
	go func() {
		for j := 0; j < workers+2; j++ {
			p.Submit(j)
			submitted <- j
		}
		close(submitted)
	}()
	for len(submitted) < workers+1 {
		runtime.Gosched()
	}
	// The producer is now stuck on the last Submit; nothing beyond the
	// window may have been accepted.
	if n := len(submitted); n != workers+1 {
		t.Fatalf("submitted %d jobs with workers stalled, want %d", n, workers+1)
	}
	close(gate)
	results := make(map[int]bool)
	for j := range submitted {
		results[j] = true
	}
	got := p.Finish()
	if len(got) != workers+2 {
		t.Fatalf("Finish returned %d results, want %d", len(got), workers+2)
	}
}
