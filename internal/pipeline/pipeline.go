// Package pipeline is the worker-pool substrate that parallelizes ALP
// above the vector level. ALP's design makes this embarrassingly
// parallel: each row-group of 100 vectors is sampled and encoded
// independently (§3.2, Algorithm 1), and every compressed vector is
// independently decodable, so both directions fan out over row-groups
// with no cross-worker coordination beyond claiming work.
//
// Two primitives cover the codec's shapes of parallelism:
//
//   - Run is the morsel-style scheduler for fully materialized inputs
//     (Encode, Compress, Decode, Values): workers atomically claim the
//     next row-group index — the same atomic-claim pattern the scan
//     engine uses for partitions — and write results into
//     caller-preallocated, index-addressed storage, so output is
//     deterministic and byte-identical to the serial path.
//
//   - Pool is the bounded streaming pool for incremental producers
//     (Writer): jobs are submitted one row-group at a time and results
//     are collected in submission order. Submission blocks while
//     workers+1 jobs are in flight, which bounds the raw row-group
//     memory held by a streaming encode to workers+1 groups no matter
//     how fast the producer writes.
//
// Both primitives report into the obs collector: workers spawned,
// row-groups claimed, and submissions stalled on a full window.
package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/goalp/alp/internal/obs"
)

// Workers resolves a requested worker count: values >= 1 are returned
// as-is; zero or negative means one worker per CPU (GOMAXPROCS).
func Workers(w int) int {
	if w >= 1 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes fn(worker, item) for every item in [0, n), fanning out
// over at most `workers` goroutines (0 or negative = one per CPU,
// clamped to n). Workers claim item indices with an atomic counter, so
// any worker may process any item; the worker argument (0 <=
// worker < effective workers) lets callers keep per-worker scratch
// state. With one effective worker Run executes inline, spawning
// nothing — the serial paths pay no scheduling cost.
//
// Run returns only when every item has been processed. Determinism is
// the caller's contract: fn must write its result to storage addressed
// by item index, never by completion order.
func Run(n, workers int, fn func(worker, item int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	o := obs.Active()
	o.PipelineWorkers(workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				o.PipelineClaim()
				fn(t, i)
			}
		}(t)
	}
	wg.Wait()
}

// Pool is a bounded streaming worker pool: Submit hands jobs to
// `workers` goroutines and Finish returns one result per job, in
// submission order regardless of completion order. At most workers+1
// jobs are in flight at once (workers being processed plus one queued);
// Submit blocks when the window is full, applying back-pressure to the
// producer and bounding memory.
type Pool[J, R any] struct {
	jobs      chan poolJob[J]
	wg        sync.WaitGroup
	mu        sync.Mutex
	results   []R
	submitted int
}

type poolJob[J any] struct {
	index int
	job   J
}

// NewPool starts a pool of Workers(workers) goroutines, each running fn
// on claimed jobs. The worker argument (0 <= worker < effective
// workers) identifies the goroutine for per-worker scratch state.
func NewPool[J, R any](workers int, fn func(worker int, job J) R) *Pool[J, R] {
	workers = Workers(workers)
	p := &Pool[J, R]{jobs: make(chan poolJob[J], 1)}
	obs.Active().PipelineWorkers(workers)
	for t := 0; t < workers; t++ {
		p.wg.Add(1)
		go func(t int) {
			defer p.wg.Done()
			for j := range p.jobs {
				obs.Active().PipelineClaim()
				r := fn(t, j.job)
				p.mu.Lock()
				for len(p.results) <= j.index {
					var zero R
					p.results = append(p.results, zero)
				}
				p.results[j.index] = r
				p.mu.Unlock()
			}
		}(t)
	}
	return p
}

// Submit queues one job. It blocks while workers+1 jobs are already in
// flight. Submit must not be called concurrently with itself or after
// Finish.
func (p *Pool[J, R]) Submit(job J) {
	pj := poolJob[J]{index: p.submitted, job: job}
	p.submitted++
	select {
	case p.jobs <- pj:
	default:
		obs.Active().PipelineStall()
		p.jobs <- pj
	}
}

// Finish waits for every submitted job and returns the results in
// submission order. The pool must not be used afterwards.
func (p *Pool[J, R]) Finish() []R {
	close(p.jobs)
	p.wg.Wait()
	return p.results
}
