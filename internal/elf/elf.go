// Package elf implements Elf (Li et al., VLDB'23), the erasing-based
// XOR scheme: before XOR-encoding, each value's trailing mantissa bits
// that are not needed to reconstruct its visible decimal representation
// are erased (set to zero), making the XOR residuals far more
// compressible. Decoding restores the erased bits by re-rounding the
// value to its recorded decimal precision.
//
// Per value the stream carries a 1-bit erased flag (plus a 4-bit decimal
// precision α when set), followed by the Gorilla-style XOR encoding of
// the (possibly erased) bit pattern. The decimal analysis makes Elf the
// slowest codec in the study — in exchange for the best XOR-family
// compression ratio — and this implementation inherits exactly that
// trade-off.
package elf

import (
	"math"
	"math/bits"
	"strconv"
	"strings"

	"github.com/goalp/alp/internal/bitstream"
)

// maxAlpha is the largest decimal precision representable in the 4-bit
// α field; values needing more precision are stored unerased.
const maxAlpha = 15

// log2of10 is used to convert decimal precision to binary precision.
var log2of10 = math.Log2(10)

// alpha returns the number of decimal digits after the point in v's
// shortest round-tripping decimal representation, or -1 when it cannot
// be determined (NaN, Inf).
func alpha(v float64) int {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	s := strconv.FormatFloat(v, 'e', -1, 64) // [-]d[.ddd]e±dd
	ei := strings.IndexByte(s, 'e')
	if ei < 0 {
		return -1
	}
	mant := s[:ei]
	if mant[0] == '-' {
		mant = mant[1:]
	}
	mantDigits := 0
	if dot := strings.IndexByte(mant, '.'); dot >= 0 {
		mantDigits = len(mant) - dot - 1
	}
	exp, err := strconv.Atoi(s[ei+1:])
	if err != nil {
		return -1
	}
	a := mantDigits - exp
	if a < 0 {
		a = 0
	}
	return a
}

// recover re-rounds the erased value to α decimal places, yielding the
// original double when the erasure respected α's precision.
func recover(erased float64, a int) float64 {
	s := strconv.FormatFloat(erased, 'f', a, 64)
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// erase zeroes the trailing mantissa bits of v that are redundant given
// α decimal places, verifying recoverability. It returns the erased bit
// pattern and whether erasing succeeded (and is worthwhile).
func erase(v float64, a int) (uint64, bool) {
	vb := math.Float64bits(v)
	e := int(vb>>52&0x7ff) - 1023 // unbiased binary exponent
	g := 52 - e - int(math.Ceil(float64(a)*log2of10)) - 1
	if g > 52 {
		g = 52
	}
	// Erasing fewer than 5 bits cannot repay the 4-bit α field.
	for ; g >= 5; g-- {
		erased := vb &^ (1<<uint(g) - 1)
		if recover(math.Float64frombits(erased), a) == v {
			return erased, true
		}
	}
	return vb, false
}

// Compress encodes src and returns the bit stream.
func Compress(src []float64) []byte {
	w := bitstream.NewWriter(len(src) * 8)
	var prev uint64
	prevLead, prevTrail := ^uint(0), uint(0)
	for i, v := range src {
		pattern := math.Float64bits(v)
		if a := alpha(v); a >= 0 && a <= maxAlpha {
			if erased, ok := erase(v, a); ok {
				w.WriteBit(1)
				w.WriteBits(uint64(a), 4)
				pattern = erased
			} else {
				w.WriteBit(0)
			}
		} else {
			w.WriteBit(0)
		}

		if i == 0 {
			w.WriteBits(pattern, 64)
			prev = pattern
			continue
		}
		// Gorilla-style XOR chain over the erased patterns.
		xor := pattern ^ prev
		prev = pattern
		if xor == 0 {
			w.WriteBit(0)
			continue
		}
		w.WriteBit(1)
		lead := uint(bits.LeadingZeros64(xor))
		if lead > 31 {
			lead = 31
		}
		trail := uint(bits.TrailingZeros64(xor))
		if prevLead != ^uint(0) && lead >= prevLead && trail >= prevTrail {
			w.WriteBit(0)
			w.WriteBits(xor>>prevTrail, 64-prevLead-prevTrail)
		} else {
			w.WriteBit(1)
			w.WriteBits(uint64(lead), 5)
			meaningful := 64 - lead - trail
			w.WriteBits(uint64(meaningful-1), 6)
			w.WriteBits(xor>>trail, meaningful)
			prevLead, prevTrail = lead, trail
		}
	}
	return w.Bytes()
}

// Decompress decodes len(dst) values from data into dst.
func Decompress(dst []float64, data []byte) error {
	r := bitstream.NewReader(data)
	var prev uint64
	var lead, trail uint
	for i := range dst {
		erased := r.ReadBit() == 1
		a := 0
		if erased {
			a = int(r.ReadBits(4))
		}
		var pattern uint64
		if i == 0 {
			pattern = r.ReadBits(64)
		} else {
			pattern = prev
			if r.ReadBit() == 1 {
				if r.ReadBit() == 0 {
					meaningful := 64 - lead - trail
					pattern ^= r.ReadBits(meaningful) << trail
				} else {
					lead = uint(r.ReadBits(5))
					meaningful := uint(r.ReadBits(6)) + 1
					trail = 64 - lead - meaningful
					pattern ^= r.ReadBits(meaningful) << trail
				}
			}
		}
		prev = pattern
		v := math.Float64frombits(pattern)
		if erased {
			v = recover(v, a)
		}
		dst[i] = v
	}
	return r.Err()
}
