package elf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAlpha(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{8.0605, 4}, {0.0001, 4}, {1.4297546, 7}, {5, 0}, {123000, 0},
		{0.0000005, 7}, {-2.5, 1}, {0, 0},
	}
	for _, c := range cases {
		if got := alpha(c.v); got != c.want {
			t.Errorf("alpha(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if alpha(math.NaN()) != -1 || alpha(math.Inf(1)) != -1 {
		t.Error("alpha must reject NaN/Inf")
	}
}

func TestRecover(t *testing.T) {
	v := 8.0605
	erased, ok := erase(v, 4)
	if !ok {
		t.Fatal("erase(8.0605, 4) failed")
	}
	if erased == math.Float64bits(v) {
		t.Fatal("erase changed nothing")
	}
	if got := recover(math.Float64frombits(erased), 4); math.Float64bits(got) != math.Float64bits(v) {
		t.Fatalf("recover = %v, want %v", got, v)
	}
}

func roundTrip(t *testing.T, src []float64) []byte {
	t.Helper()
	data := Compress(src)
	got := make([]float64, len(src))
	if err := Decompress(got, data); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d: got %v (%#x), want %v (%#x)",
				i, got[i], math.Float64bits(got[i]), src[i], math.Float64bits(src[i]))
		}
	}
	return data
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, []float64{8.0605, 8.0605, 1.5, 2.25, 100.1, -3.7})
	roundTrip(t, nil)
	roundTrip(t, []float64{42.5})
	roundTrip(t, []float64{
		0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, math.SmallestNonzeroFloat64, -math.Pi,
	})
}

func TestErasingBeatsPlainXOROnDecimals(t *testing.T) {
	// Low-precision decimals with varying values: erasing zeroes most of
	// the mantissa, so the ratio must be far below 64 bits/value even
	// though consecutive values differ.
	r := rand.New(rand.NewSource(1))
	src := make([]float64, 4096)
	for i := range src {
		src[i] = float64(r.Intn(2000)-1000) / 10 // one decimal, wide range
	}
	data := roundTrip(t, src)
	bits := float64(len(data)*8) / float64(len(src))
	if bits > 32 {
		t.Fatalf("Elf got %.1f bits/value on 1-decimal data, want well below 32", bits)
	}
}

func TestQuickLossless(t *testing.T) {
	f := func(raw []uint64) bool {
		src := make([]float64, len(raw))
		for i, b := range raw {
			src[i] = math.Float64frombits(b)
		}
		data := Compress(src)
		got := make([]float64, len(src))
		if err := Decompress(got, data); err != nil {
			return false
		}
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLosslessDecimals(t *testing.T) {
	f := func(ints []int32, prec8 uint8) bool {
		prec := int(prec8 % 6)
		scale := math.Pow(10, float64(prec))
		src := make([]float64, len(ints))
		for i, d := range ints {
			src[i] = float64(d%100000) / scale
		}
		data := Compress(src)
		got := make([]float64, len(src))
		if err := Decompress(got, data); err != nil {
			return false
		}
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
