package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/goalp/alp"
	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/engine"
)

// dataset synthesizes a decimal-heavy column spanning several
// row-groups, with runs that make zone-map skipping meaningful.
func dataset(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	level := 100.0
	for i := range out {
		if i%1024 == 0 {
			level = float64(rng.Intn(200))
		}
		out[i] = math.Round((level+rng.Float64()*10)*100) / 100
	}
	return out
}

func newTestServer(t *testing.T, opts Options) (*Server, *client.Client) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, client.New(ts.URL)
}

// TestEndToEndAggBitIdentical is the headline integration test: a
// client ingests a dataset over HTTP, runs a pushdown FilterAgg via
// /agg, and the result is bit-identical to the same predicate
// evaluated in-process on the same values.
func TestEndToEndAggBitIdentical(t *testing.T) {
	_, cl := newTestServer(t, Options{})
	ctx := context.Background()
	values := dataset(2*102400+7777, 1) // 3 row-groups, ragged tail

	info, err := cl.Ingest(ctx, "prices", values)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if info.Values != len(values) {
		t.Fatalf("ingest reported %d values, want %d", info.Values, len(values))
	}
	if info.BitsPerValue >= 64 {
		t.Errorf("served column did not compress: %.2f bits/value", info.BitsPerValue)
	}

	cases := []struct {
		name   string
		remote client.Predicate
		local  engine.Predicate
	}{
		{"between", client.Between(120, 180), engine.Between(120, 180)},
		{"ge", client.GE(150.55), engine.GE(150.55)},
		{"lt", client.LT(42.01), engine.LT(42.01)},
		{"gt", client.GT(199.99), engine.GT(199.99)},
		{"eq", client.EQ(values[12345]), engine.EQ(values[12345])},
		{"all", client.All(), engine.Between(math.Inf(-1), math.Inf(1))},
		{"empty", client.Between(5000, 6000), engine.Between(5000, 6000)},
		{"and", client.GE(100).And(client.LE(150)), engine.Between(100, 150)},
	}
	rel := engine.BuildALP(values)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := cl.Agg(context.Background(), "prices", tc.remote)
			if err != nil {
				t.Fatalf("remote agg: %v", err)
			}
			want, wantTouched := rel.FilterAgg(1, tc.local)
			if got.Count != want.Count {
				t.Fatalf("count = %d, want %d", got.Count, want.Count)
			}
			if math.Float64bits(got.Sum) != math.Float64bits(want.Sum) {
				t.Errorf("sum = %x (%v), want %x (%v)",
					math.Float64bits(got.Sum), got.Sum, math.Float64bits(want.Sum), want.Sum)
			}
			if math.Float64bits(got.Min) != math.Float64bits(want.Min) {
				t.Errorf("min = %v, want %v", got.Min, want.Min)
			}
			if math.Float64bits(got.Max) != math.Float64bits(want.Max) {
				t.Errorf("max = %v, want %v", got.Max, want.Max)
			}
			if got.Touched != wantTouched {
				t.Errorf("touched = %d, want %d", got.Touched, wantTouched)
			}

			// Count endpoint agrees.
			n, err := cl.Count(context.Background(), "prices", tc.remote)
			if err != nil {
				t.Fatalf("remote count: %v", err)
			}
			if n != want.Count {
				t.Errorf("count endpoint = %d, want %d", n, want.Count)
			}
		})
	}
}

func TestScanStreamsQualifyingRows(t *testing.T) {
	_, cl := newTestServer(t, Options{})
	ctx := context.Background()
	values := dataset(102400+512, 2)
	if _, err := cl.Ingest(ctx, "scan", values); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	lo, hi := 80.0, 120.0
	got, err := cl.Scan(ctx, "scan", client.Between(lo, hi))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	var want []float64
	for _, v := range values {
		if v >= lo && v <= hi {
			want = append(want, v)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestThinClientPaths(t *testing.T) {
	_, cl := newTestServer(t, Options{})
	ctx := context.Background()
	values := dataset(4096, 3)
	// Mix in values that force exceptions and cover edge encodings.
	values[0] = math.Inf(1)
	values[1] = math.Copysign(0, -1)
	values[2] = math.NaN()
	if _, err := cl.Ingest(ctx, "thin", values); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	// Full column, decoded locally from the compressed stream.
	back, err := cl.Values(ctx, "thin")
	if err != nil {
		t.Fatalf("values: %v", err)
	}
	if len(back) != len(values) {
		t.Fatalf("values returned %d, want %d", len(back), len(values))
	}
	for i := range values {
		if math.Float64bits(back[i]) != math.Float64bits(values[i]) {
			t.Fatalf("value %d = %v, want %v", i, back[i], values[i])
		}
	}

	// One vector, shipped encoded and decoded locally.
	vec, err := cl.Vector(ctx, "thin", 2)
	if err != nil {
		t.Fatalf("vector: %v", err)
	}
	wantVec := values[2*alp.VectorSize : 3*alp.VectorSize]
	if len(vec) != len(wantVec) {
		t.Fatalf("vector holds %d values, want %d", len(vec), len(wantVec))
	}
	for i := range wantVec {
		if math.Float64bits(vec[i]) != math.Float64bits(wantVec[i]) {
			t.Fatalf("vector value %d = %v, want %v", i, vec[i], wantVec[i])
		}
	}

	if _, err := cl.Vector(ctx, "thin", 99); err == nil {
		t.Error("out-of-range vector index did not error")
	}
}

func TestRegistryLifecycle(t *testing.T) {
	_, cl := newTestServer(t, Options{})
	ctx := context.Background()
	if _, err := cl.Ingest(ctx, "a", dataset(1000, 4)); err != nil {
		t.Fatalf("ingest a: %v", err)
	}
	if _, err := cl.Ingest(ctx, "b", dataset(1000, 5)); err != nil {
		t.Fatalf("ingest b: %v", err)
	}
	names, err := cl.List(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("list = %v, want [a b]", names)
	}

	// Replace is an atomic swap: new data visible afterwards.
	repl := dataset(2000, 6)
	if _, err := cl.Ingest(ctx, "a", repl); err != nil {
		t.Fatalf("replace a: %v", err)
	}
	info, err := cl.Info(ctx, "a")
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if info.Values != 2000 {
		t.Fatalf("replaced column has %d values, want 2000", info.Values)
	}

	if err := cl.Delete(ctx, "b"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := cl.Delete(ctx, "b"); err == nil {
		t.Error("double delete did not error")
	}
	var apiErr *client.APIError
	if _, err := cl.Info(ctx, "b"); err == nil {
		t.Error("info on deleted column did not error")
	} else if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("info on deleted column: %v, want 404", err)
	}
}

func TestBadRequests(t *testing.T) {
	srv, cl := newTestServer(t, Options{MaxBodyBytes: 4096})
	ctx := context.Background()
	if _, err := cl.Ingest(ctx, "col", dataset(128, 7)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	noRetry := client.New(ts.URL, client.WithRetries(0))

	// Bad predicate parameter.
	resp, err := http.Get(ts.URL + "/v1/columns/col/agg?ge=not-a-float")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad predicate: status %d, want 400", resp.StatusCode)
	}

	// A repeated parameter is legal (the bounds intersect), but every
	// occurrence must still parse.
	resp, err = http.Get(ts.URL + "/v1/columns/col/agg?ge=1&ge=bad")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unparseable repeated predicate: status %d, want 400", resp.StatusCode)
	}

	// Bad threads.
	resp, err = http.Get(ts.URL + "/v1/columns/col/agg?threads=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad threads: status %d, want 400", resp.StatusCode)
	}

	// Misaligned ingest body.
	resp, err = http.Post(ts.URL+"/v1/columns/misaligned", "application/x-alp-f64le",
		strings.NewReader("12345"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("misaligned body: status %d, want 400", resp.StatusCode)
	}

	// Oversized ingest body (cap is 4096 bytes = 512 values).
	if _, err := noRetry.Ingest(ctx, "big", make([]float64, 1024)); err == nil {
		t.Error("oversized ingest did not error")
	} else if !errors.As(err, new(*client.APIError)) {
		t.Errorf("oversized ingest: %v, want APIError", err)
	}

	// Bad column name.
	resp, err = http.Post(ts.URL+"/v1/columns/bad%2Fname", "application/x-alp-f64le",
		bytes.NewReader(make([]byte, 16)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad name: status %d, want 400", resp.StatusCode)
	}

	// Unknown column.
	resp, err = http.Get(ts.URL + "/v1/columns/nope/agg")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown column: status %d, want 404", resp.StatusCode)
	}
}

// TestLoadShedding proves the limiter returns 429 (not queue collapse)
// past the concurrency cap: with MaxConcurrent=2 and both slots held,
// a further request is shed immediately with Retry-After.
func TestLoadShedding(t *testing.T) {
	srv := New(Options{MaxConcurrent: 2, RetryAfter: 3 * time.Second})
	hold := make(chan struct{})
	entered := make(chan struct{}, 16)
	srv.testHook = func() {
		entered <- struct{}{}
		<-hold
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	cl := client.New(ts.URL)
	if _, err := cl.Ingest(ctx, "col", dataset(2048, 8)); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	// Occupy both slots with hung scans.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/columns/col/agg")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	<-entered
	<-entered

	// The third request must be shed, not queued.
	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/columns/col/agg")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("shed response took %v; limiter queued instead of shedding", elapsed)
	}

	// Release the held scans; capacity returns.
	close(hold)
	wg.Wait()
	if _, err := cl.Agg(ctx, "col", client.All()); err != nil {
		t.Fatalf("agg after release: %v", err)
	}
}

// TestClientRetriesShedLoad proves the client rides through shed load:
// the server 429s the first two attempts, then succeeds.
func TestClientRetriesShedLoad(t *testing.T) {
	srv := New(Options{})
	var mu sync.Mutex
	fails := 2
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		shed := fails > 0
		if shed {
			fails--
		}
		mu.Unlock()
		if shed && strings.HasSuffix(r.URL.Path, "/agg") {
			w.Header().Set("Retry-After", "0")
			httpError(w, http.StatusTooManyRequests, "synthetic shed")
			return
		}
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()
	ctx := context.Background()
	cl := client.New(ts.URL, client.WithBackoff(time.Millisecond, 10*time.Millisecond))
	if _, err := cl.Ingest(ctx, "col", dataset(512, 9)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if _, err := cl.Agg(ctx, "col", client.All()); err != nil {
		t.Fatalf("agg did not survive shed load: %v", err)
	}

	// The client's own counters saw the shedding: the ingest consumed
	// one synthetic failure without shedding (only /agg sheds), so the
	// agg took one 429, one retry, and real backoff time.
	st := cl.Stats()
	if st.Calls != 2 { // ingest + agg
		t.Errorf("Stats().Calls = %d, want 2", st.Calls)
	}
	if st.Attempts != 3 { // ingest, agg x2
		t.Errorf("Stats().Attempts = %d, want 3", st.Attempts)
	}
	if st.Retries != 1 {
		t.Errorf("Stats().Retries = %d, want 1", st.Retries)
	}
	if st.Shed != 1 {
		t.Errorf("Stats().Shed = %d, want 1", st.Shed)
	}
	if st.ServerErrors != 0 || st.TransportErrors != 0 {
		t.Errorf("Stats() = %+v, want no server/transport errors", st)
	}
	if st.BackoffNs <= 0 {
		t.Errorf("Stats().BackoffNs = %d, want > 0 after retrying", st.BackoffNs)
	}

	// With retries disabled the same shedding is a hard error, counted
	// but never slept on.
	mu.Lock()
	fails = 2
	mu.Unlock()
	noRetry := client.New(ts.URL, client.WithRetries(0))
	if _, err := noRetry.Agg(ctx, "col", client.All()); err == nil {
		t.Error("agg with retries disabled did not error under shed load")
	}
	if st := noRetry.Stats(); st.Shed != 1 || st.Retries != 0 || st.BackoffNs != 0 {
		t.Errorf("no-retry Stats() = %+v, want one shed, no retries, no backoff", st)
	}
}

// TestGracefulShutdown proves in-flight scans complete while new
// requests are refused during a drain.
func TestGracefulShutdown(t *testing.T) {
	srv := New(Options{})
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.testHook = func() {
		entered <- struct{}{}
		<-hold
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	cl := client.New(ts.URL)
	values := dataset(4096, 10)
	if _, err := cl.Ingest(ctx, "col", values); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	// Start a scan that parks inside the handler.
	type aggOut struct {
		agg client.Agg
		err error
	}
	inflight := make(chan aggOut, 1)
	noRetry := client.New(ts.URL, client.WithRetries(0))
	go func() {
		a, err := noRetry.Agg(ctx, "col", client.All())
		inflight <- aggOut{a, err}
	}()
	<-entered

	// Drain in the background; it must block on the in-flight scan.
	drainDone := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- srv.Shutdown(dctx)
	}()

	// Wait for the drain to take effect before probing, so no probe is
	// admitted and parked on the test hook.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.gate.isDraining() {
		if time.Now().After(deadline) {
			t.Fatal("Shutdown never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	// New requests are refused with 503 while the drain waits.
	resp, err := http.Get(ts.URL + "/v1/columns/col/agg")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server admitted a request (status %d), want 503", resp.StatusCode)
	}
	if ok, err := cl.Health(ctx); err != nil || ok {
		t.Errorf("health during drain = (%v, %v), want (false, nil)", ok, err)
	}
	select {
	case err := <-drainDone:
		t.Fatalf("Shutdown returned %v with a scan still in flight", err)
	default:
	}

	// Release the parked scan: it completes with a full result, and
	// only then does Shutdown return.
	close(hold)
	out := <-inflight
	if out.err != nil {
		t.Fatalf("in-flight scan failed during drain: %v", out.err)
	}
	if out.agg.Count != int64(countNonNaN(values)) {
		t.Errorf("in-flight scan count = %d, want %d", out.agg.Count, countNonNaN(values))
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func countNonNaN(values []float64) int {
	n := 0
	for _, v := range values {
		if !math.IsNaN(v) {
			n++
		}
	}
	return n
}

// TestMetricsEndpoint checks the service counters flow through
// /metrics when stats collection is on.
func TestMetricsEndpoint(t *testing.T) {
	alp.EnableStats()
	defer alp.DisableStats()
	alp.ResetStats()
	_, cl := newTestServer(t, Options{})
	ctx := context.Background()
	if _, err := cl.Ingest(ctx, "m", dataset(2048, 11)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if _, err := cl.Agg(ctx, "m", client.GE(50)); err != nil {
		t.Fatalf("agg: %v", err)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m["server_requests"] < 2 {
		t.Errorf("server_requests = %d, want >= 2", m["server_requests"])
	}
	if m["server_bytes_in"] != 2048*8 {
		t.Errorf("server_bytes_in = %d, want %d", m["server_bytes_in"], 2048*8)
	}
	if m["server_scans"] < 1 {
		t.Errorf("server_scans = %d, want >= 1", m["server_scans"])
	}
	if m["server_bytes_out"] == 0 {
		t.Error("server_bytes_out = 0, want > 0")
	}
	s := alp.ReadStats()
	if s.ServerRequests != m["server_requests"] {
		t.Errorf("alp.ReadStats().ServerRequests = %d, /metrics says %d", s.ServerRequests, m["server_requests"])
	}
}

// TestPredicateConjunctions pins the repeated-parameter contract: the
// client's And emits one query key per conjunct, and the server
// intersects every occurrence so the tightest bounds win — the
// documented semantics the old one-value-per-key parser rejected.
func TestPredicateConjunctions(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	cl := client.New(ts.URL)
	values := dataset(102400, 21)
	if _, err := cl.Ingest(ctx, "conj", values); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	rel := engine.BuildALP(values)

	cases := []struct {
		name   string
		remote client.Predicate
		local  engine.Predicate
	}{
		{"ge and ge", client.GE(100).And(client.GE(140)), engine.GE(140)},
		{"chained and", client.GE(100).And(client.GE(140)).And(client.LE(150)), engine.Between(140, 150)},
		{"between and between", client.Between(80, 160).And(client.Between(100, 150)), engine.Between(100, 150)},
		{"eq and eq", client.EQ(values[7]).And(client.EQ(values[7])), engine.EQ(values[7])},
		{"contradiction", client.LT(100).And(client.GT(150)), engine.Predicate{Lo: math.Nextafter(150, math.Inf(1)), Hi: math.Nextafter(100, math.Inf(-1))}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := cl.Agg(ctx, "conj", tc.remote)
			if err != nil {
				t.Fatalf("agg: %v", err)
			}
			want, _ := rel.FilterAgg(1, tc.local)
			if got.Count != want.Count {
				t.Fatalf("count = %d, want %d", got.Count, want.Count)
			}
			if math.Float64bits(got.Sum) != math.Float64bits(want.Sum) {
				t.Errorf("sum = %v, want %v", got.Sum, want.Sum)
			}
		})
	}

	// Raw repeated keys take the same intersection path.
	resp, err := http.Get(ts.URL + "/v1/columns/conj/agg?ge=1&ge=2&le=300")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeated ge: status %d, want 200", resp.StatusCode)
	}
}

// TestIngestErrorTearsDownEncodePool proves a failed ingest does not
// leak the parallel Writer's worker goroutines: each bad request used
// to strand a full encode pool (workers + row-group buffers) forever.
func TestIngestErrorTearsDownEncodePool(t *testing.T) {
	srv := New(Options{IngestWorkers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		resp, err := http.Post(ts.URL+"/v1/columns/leak", "application/x-alp-f64le",
			strings.NewReader("123")) // misaligned: 3 trailing bytes
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("misaligned ingest %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after failed ingests: encode pool leaked",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestScanDeadlineSurfacesAsError proves a scan cut short by the
// request deadline is an error at the client, never a silently partial
// result: the server aborts the connection instead of ending the
// 8-byte-aligned stream cleanly.
func TestScanDeadlineSurfacesAsError(t *testing.T) {
	srv := New(Options{RequestTimeout: 50 * time.Millisecond})
	var slowScan atomic.Bool // toggled, not the hook itself: the aborted handler may outlive the scan call
	srv.testHook = func() {
		if slowScan.Load() {
			time.Sleep(200 * time.Millisecond) // outlive the deadline mid-handler
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	cl := client.New(ts.URL, client.WithRetries(0))
	if _, err := cl.Ingest(ctx, "col", dataset(4096, 22)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	slowScan.Store(true)
	if _, err := cl.Scan(ctx, "col", client.All()); err == nil {
		t.Fatal("scan truncated by the server deadline returned rows with nil error")
	}
	slowScan.Store(false)

	// A scan that completes — including one matching nothing, whose
	// body is empty — carries the completion trailer and succeeds.
	rows, err := cl.Scan(ctx, "col", client.Between(1e9, 2e9))
	if err != nil {
		t.Fatalf("empty scan: %v", err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty scan returned %d rows", len(rows))
	}
}

// TestIngestStalledBodyTimesOut proves a client trickling an ingest
// body cannot hold an admission slot past the request deadline: the
// connection-level read deadline bounds the stalled Read.
func TestIngestStalledBodyTimesOut(t *testing.T) {
	srv := New(Options{RequestTimeout: 200 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/columns/slow HTTP/1.1\r\nHost: alpserved\r\n"+
		"Content-Type: application/x-alp-f64le\r\nContent-Length: 4096\r\n\r\n")
	conn.Write(make([]byte, 16)) // a sliver of body, then stall forever

	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("server never answered the stalled ingest: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Errorf("stalled ingest: status %d, want 408", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("stalled ingest held its slot for %v; read deadline did not fire", elapsed)
	}
}

// TestIngestMatchesLocalEncode proves the served bytes are the same
// stream a local Encode produces — the wire adds nothing.
func TestIngestMatchesLocalEncode(t *testing.T) {
	_, cl := newTestServer(t, Options{})
	ctx := context.Background()
	values := dataset(102400+999, 12)
	if _, err := cl.Ingest(ctx, "ident", values); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	data, err := cl.Compressed(ctx, "ident")
	if err != nil {
		t.Fatalf("compressed: %v", err)
	}
	if want := alp.Encode(values); !bytes.Equal(data, want) {
		t.Fatalf("served stream differs from local Encode (%d vs %d bytes)", len(data), len(want))
	}
}
