package server

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/metricstore"
	"github.com/goalp/alp/internal/obs"
)

// histTestStore builds a deterministic metrics-history store: an obs
// collector exercised between scrapes, driven by an injected clock.
func histTestStore(t *testing.T, scrapes, window int) (*metricstore.Store, int64, int64) {
	t.Helper()
	var c obs.Collector
	ts := int64(1_754_600_000_000_000)
	st := metricstore.New(metricstore.Options{
		WindowSamples: window,
		Source:        c.Snapshot,
		Now:           func() time.Time { return time.UnixMicro(ts) },
	})
	first := ts + 10_000
	for i := 0; i < scrapes; i++ {
		c.ServerRequest()
		c.Observe(obs.HistScan, int64(1000+i))
		ts += 10_000
		st.ScrapeOnce()
	}
	return st, first, ts
}

func TestHistoryEndpoint(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	st, first, last := histTestStore(t, 100, 32)
	srv := New(Options{MetricsHistory: st})
	h := httptest.NewServer(srv.Handler())
	defer h.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(h.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	// Listing: no metric parameter.
	code, body := get("/v1/metrics/history")
	if code != http.StatusOK {
		t.Fatalf("listing: %d %s", code, body)
	}
	var listing struct {
		Series []string          `json:"series"`
		Stats  metricstore.Stats `json:"stats"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Series) == 0 || listing.Stats.Scrapes != 100 {
		t.Fatalf("listing = %d series, %d scrapes; want >0 series, 100 scrapes", len(listing.Series), listing.Stats.Scrapes)
	}

	// Range query: the wire result must round-trip the store's exact
	// float64s (value strings, 'g'/-1).
	sinceSec := strconv.FormatFloat(float64(first)/1e6, 'f', 6, 64)
	untilSec := strconv.FormatFloat(float64(last+1)/1e6, 'f', 6, 64)
	code, body = get("/v1/metrics/history?metric=server_requests&since=" + sinceSec + "&until=" + untilSec + "&step=100ms&agg=sum")
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	var resp historyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Metric != "server_requests" || resp.Agg != "sum" || len(resp.Points) == 0 {
		t.Fatalf("query response %+v lacks points", resp)
	}
	want, err := st.Query("server_requests", resp.SinceUs, resp.UntilUs, 100*time.Millisecond, metricstore.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(resp.Points) {
		t.Fatalf("wire has %d points, store has %d", len(resp.Points), len(want))
	}
	var total float64
	for i, p := range resp.Points {
		v, err := strconv.ParseFloat(p.Value, 64)
		if err != nil {
			t.Fatalf("point %d value %q: %v", i, p.Value, err)
		}
		if math.Float64bits(v) != math.Float64bits(want[i].Value) ||
			p.TsUs != want[i].TsUs || p.Count != want[i].Count {
			t.Fatalf("point %d: wire {%d %q %d} != store {%d %v %d}",
				i, p.TsUs, p.Value, p.Count, want[i].TsUs, want[i].Value, want[i].Count)
		}
		total += v
	}
	// 100 scrapes, one ServerRequest each: the deltas must sum to 100.
	if total != 100 {
		t.Fatalf("server_requests deltas sum to %v, want 100", total)
	}

	// Relative since + default until/step: one bucket, still exact.
	code, body = get("/v1/metrics/history?metric=server_requests&since=-24h&agg=count")
	if code != http.StatusOK {
		t.Fatalf("relative query: %d %s", code, body)
	}

	// Error paths.
	for _, bad := range []string{
		"/v1/metrics/history?metric=no_such_series&since=-1m",
		"/v1/metrics/history?metric=server_requests",                      // missing since
		"/v1/metrics/history?metric=server_requests&since=yesterday",      // unparseable
		"/v1/metrics/history?metric=server_requests&since=-1m&step=zero",  // bad step
		"/v1/metrics/history?metric=server_requests&since=-1m&agg=median", // bad agg
	} {
		if code, body = get(bad); code != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", bad, code, body)
		}
	}

	// The endpoint lands samples in its own latency histogram.
	if snap := obs.Active().Snapshot(); snap.Hists[obs.HistHistory].Count == 0 {
		t.Error("history requests recorded no lat_history samples")
	}
}

// TestHistoryTypedClient runs the typed client against the real server
// and store: listing matches the store schema, and every queried point
// is bit-identical to a direct store query.
func TestHistoryTypedClient(t *testing.T) {
	st, first, last := histTestStore(t, 80, 16)
	srv := New(Options{MetricsHistory: st})
	h := httptest.NewServer(srv.Handler())
	defer h.Close()
	cl := client.New(h.URL)
	ctx := context.Background()

	series, stats, err := cl.MetricsSeries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(st.Names()) || stats.Scrapes != 80 {
		t.Fatalf("listing: %d series %d scrapes, want %d/80", len(series), stats.Scrapes, len(st.Names()))
	}
	if stats.SealedWindows == 0 {
		t.Fatal("no sealed windows after 80 scrapes at window 16")
	}

	res, err := cl.MetricsHistory(ctx, "lat_scan_sum_ns",
		time.UnixMicro(first), time.UnixMicro(last+1), 50*time.Millisecond, "sum")
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.Query("lat_scan_sum_ns", res.SinceUs, res.UntilUs, 50*time.Millisecond, metricstore.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 || len(res.Points) != len(want) {
		t.Fatalf("client got %d points, store %d", len(res.Points), len(want))
	}
	for i := range want {
		if math.Float64bits(res.Points[i].Value) != math.Float64bits(want[i].Value) ||
			res.Points[i].TsUs != want[i].TsUs || res.Points[i].Count != want[i].Count {
			t.Fatalf("point %d: client %+v != store %+v", i, res.Points[i], want[i])
		}
	}
}

func TestHistoryDisabled(t *testing.T) {
	srv := New(Options{})
	h := httptest.NewServer(srv.Handler())
	defer h.Close()
	resp, err := http.Get(h.URL + "/v1/metrics/history?metric=server_requests&since=-1m")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled history: %d, want 404", resp.StatusCode)
	}
}

// TestMetricsJSONStable is the /metrics regression: explicit JSON
// content type, parseable body, and two reads whose shared keys — the
// full sorted key set — are ordered identically. With no traffic
// between the reads, counters that only the handler itself bumps may
// move, but ordering and shape must not.
func TestMetricsJSONStable(t *testing.T) {
	st, _, _ := histTestStore(t, 10, 8)
	srv := New(Options{MetricsHistory: st})
	h := httptest.NewServer(srv.Handler())
	defer h.Close()

	read := func() (string, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Get(h.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("/metrics Content-Type = %q, want application/json", ct)
		}
		body, _ := io.ReadAll(resp.Body)
		var m map[string]json.RawMessage
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("unmarshal /metrics: %v\n%s", err, body)
		}
		return string(body), m
	}

	raw1, m1 := read()
	raw2, m2 := read()

	// Same key set both reads.
	for k := range m1 {
		if _, ok := m2[k]; !ok {
			t.Errorf("key %q vanished between reads", k)
		}
	}
	for k := range m2 {
		if _, ok := m1[k]; !ok {
			t.Errorf("key %q appeared between reads", k)
		}
	}
	// Both reads must contain the spliced extras and the history stats.
	for _, k := range []string{"columns", "metrics_history", "server_requests", "lat_scan_p99_ns"} {
		if _, ok := m1[k]; !ok {
			t.Errorf("/metrics missing key %q", k)
		}
	}
	// Keys appear in sorted order in the raw bytes.
	for _, raw := range []string{raw1, raw2} {
		keys := topLevelKeys(t, raw)
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("/metrics keys not sorted: %q before %q", keys[i-1], keys[i])
			}
		}
	}
}

// topLevelKeys decodes the raw object with json.Decoder tokens, which
// preserve order (maps do not).
func topLevelKeys(t *testing.T, raw string) []string {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(raw))
	var keys []string
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch v := tok.(type) {
		case json.Delim:
			if v == '{' || v == '[' {
				depth++
			} else {
				depth--
			}
		case string:
			if depth == 1 {
				keys = append(keys, v)
				// Skip the value so a string value is not mistaken for a key.
				var skip json.RawMessage
				if err := dec.Decode(&skip); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return keys
}

func TestMetricsProm(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	srv := New(Options{})
	h := httptest.NewServer(srv.Handler())
	defer h.Close()
	obs.Active().ServerRequest()
	resp, err := http.Get(h.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("/metrics.prom Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"# TYPE alp_server_requests counter\n",
		"# TYPE alp_lat_scan_ns histogram\n",
		"alp_lat_scan_ns_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics.prom missing %q", want)
		}
	}
}
