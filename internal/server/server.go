// Package server implements alpserved's HTTP API: a compressed-column
// service that keeps every column in its ALP-encoded form and answers
// predicate queries server-side with the engine's encoded-domain
// pushdown operators, or ships raw encoded vectors to thin clients
// that decode locally (the Lemire & Boytsov discipline of staying in
// the packed domain end-to-end).
//
// API (all JSON errors are {"error": "..."}):
//
//	POST   /v1/columns/{name}            ingest little-endian float64s (streamed into the parallel Writer),
//	                                     or a marshaled column stream verbatim (Content-Type application/x-alp-column)
//	GET    /v1/columns                   list column names
//	GET    /v1/columns/{name}            column info (values, bits/value, schemes, exceptions)
//	DELETE /v1/columns/{name}            drop a column
//	GET    /v1/columns/{name}/agg        filtered SUM/COUNT/MIN/MAX via engine.FilterAgg
//	                                     (?partials=rowgroups returns per-row-group partials, ?rgs= a subset)
//	GET    /v1/columns/{name}/count      filtered COUNT via engine.FilterCount (?partials=rowgroups as above)
//	GET    /v1/columns/{name}/scan       stream qualifying rows (little-endian float64s; ?rg_lo/?rg_hi bound the range)
//	GET    /v1/columns/{name}/data       the compressed column stream (?rg_lo/?rg_hi export a re-based range)
//	GET    /v1/columns/{name}/vectors/{i} one encoded vector as a standalone envelope
//	GET    /metrics                      codec + service counters, latency quantiles, per-column stats (JSON, sorted keys)
//	GET    /metrics.prom                 the same snapshot in Prometheus text exposition format
//	GET    /v1/metrics/history           range-query the self-telemetry history store (404 when the recorder is off)
//	GET    /healthz                      liveness: 200 whenever the process answers HTTP
//	GET    /readyz                       readiness: 200 while accepting work, 503 while draining
//
// Observability: every admitted request carries a request ID — taken
// from the X-Alp-Request-Id header, generated when absent, and echoed
// back on the response — and an obs.Trace threaded through the request
// context, so the engine and codec layers attribute their time to
// per-request spans (admission, registry, read, encode, engine,
// write). Each endpoint lands one sample in a log-bucketed latency
// histogram exposed on /metrics as lat_*_p50_ns/_p95_ns/_p99_ns keys.
// When Options.AccessLog is set, every request emits one structured
// JSON line; when Options.SlowQueryLog is set, requests slower than
// SlowQueryThreshold emit the same line marked slow.
//
// Predicates come from query parameters — lo, hi, ge, gt, le, lt, eq —
// each parsed with strconv.ParseFloat and reduced to a closed interval
// exactly like the in-process engine constructors, then intersected.
// Repeated parameters intersect too, so a conjunction of bounds can be
// spelled one key per conjunct (the client's Predicate.And does this).
// threads selects scan parallelism (default 1, which is bit-identical
// to an in-process single-threaded FilterAgg on the same values).
//
// Robustness: a semaphore admission limiter sheds load with 429 +
// Retry-After instead of queueing unboundedly; every request runs
// under a deadline that also bounds raw connection reads and writes,
// so a trickling ingest body or an unread scan response cannot pin an
// admission slot past the timeout; ingest bodies are size-capped;
// Shutdown drains in-flight requests while refusing new ones with 503.
package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/goalp/alp"
	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/metricstore"
	"github.com/goalp/alp/internal/obs"
	"github.com/goalp/alp/internal/vector"
)

// Options configures a Server. The zero value gets sane defaults.
type Options struct {
	// MaxConcurrent caps requests in flight; excess load is shed with
	// 429 + Retry-After. 0 means 4 x GOMAXPROCS.
	MaxConcurrent int
	// RequestTimeout bounds each request end-to-end. 0 means 30s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps an ingest request body. 0 means 1 GiB.
	MaxBodyBytes int64
	// RetryAfter is the hint returned with shed load. 0 means 1s.
	RetryAfter time.Duration
	// IngestWorkers is the Writer encode-pool size (0 = one per CPU).
	IngestWorkers int
	// DefaultThreads is the scan parallelism when a request does not
	// pass ?threads=. 0 means 1 — the bit-identical-to-serial setting.
	DefaultThreads int
	// AccessLog, when set, receives one JSON line per admitted request
	// (request ID, method, path, status, bytes, duration, span
	// breakdown). Writes are serialized by the server.
	AccessLog io.Writer
	// SlowQueryLog, when set, receives the same JSON line for requests
	// whose wall time reaches SlowQueryThreshold, marked "slow":true.
	SlowQueryLog io.Writer
	// SlowQueryThreshold is the slow-query cutoff. 0 means 250ms.
	SlowQueryThreshold time.Duration
	// MetricsHistory, when set, is the self-telemetry history store
	// that answers GET /v1/metrics/history. nil disables the endpoint
	// (404) — the recorder's lifecycle belongs to the embedding
	// process (cmd/alpserved), not the server.
	MetricsHistory *metricstore.Store
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 30
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.DefaultThreads <= 0 {
		o.DefaultThreads = 1
	}
	if o.SlowQueryThreshold <= 0 {
		o.SlowQueryThreshold = 250 * time.Millisecond
	}
	return o
}

// RequestIDHeader carries the request ID: clients may set it to
// correlate their own logs with the server's; the server generates one
// when absent and always echoes the effective ID on the response.
const RequestIDHeader = "X-Alp-Request-Id"

// maxThreads caps per-request scan parallelism so a client cannot ask
// one request to fan out unboundedly.
const maxThreads = 64

// Server is the HTTP column service. Create with New, mount Handler,
// and call Shutdown to drain.
type Server struct {
	opts Options
	reg  *Registry
	mux  *http.ServeMux
	sem  chan struct{}

	gate drainGate

	// logMu serializes access-log and slow-query-log writes.
	logMu sync.Mutex

	// testHook, when non-nil, runs inside scan/agg handlers after
	// admission — tests use it to hold a request in flight.
	testHook func()
}

// New returns a Server ready to mount.
func New(opts Options) *Server {
	s := &Server{
		opts: opts.withDefaults(),
		reg:  NewRegistry(),
	}
	s.sem = make(chan struct{}, s.opts.MaxConcurrent)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/columns/{name}", s.wrap(obs.HistIngest, s.handleIngest))
	s.mux.HandleFunc("GET /v1/columns", s.wrap(obs.HistMeta, s.handleList))
	s.mux.HandleFunc("GET /v1/columns/{name}", s.wrap(obs.HistMeta, s.handleInfo))
	s.mux.HandleFunc("DELETE /v1/columns/{name}", s.wrap(obs.HistMeta, s.handleDelete))
	s.mux.HandleFunc("GET /v1/columns/{name}/agg", s.wrap(obs.HistAgg, s.handleAgg))
	s.mux.HandleFunc("GET /v1/columns/{name}/count", s.wrap(obs.HistCount, s.handleCount))
	s.mux.HandleFunc("GET /v1/columns/{name}/scan", s.wrap(obs.HistScan, s.handleScan))
	s.mux.HandleFunc("GET /v1/columns/{name}/data", s.wrap(obs.HistData, s.handleData))
	s.mux.HandleFunc("GET /v1/columns/{name}/vectors/{i}", s.wrap(obs.HistVectors, s.handleVector))
	s.mux.HandleFunc("GET /v1/metrics/history", s.wrap(obs.HistHistory, s.handleHistory))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)          // never shed: always observable
	s.mux.HandleFunc("GET /metrics.prom", s.handleMetricsProm) // never shed, same contract
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the column registry (for embedding the server in a
// process that also loads columns directly).
func (s *Server) Registry() *Registry { return s.reg }

// Shutdown drains the service: new requests are refused with 503
// immediately, in-flight requests run to completion (or until ctx
// expires). It does not close listeners — pair it with
// http.Server.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.gate.drain(ctx)
}

// drainGate tracks in-flight requests and refuses new ones once
// draining. A plain mutex-guarded counter (not a WaitGroup) so that
// enter-vs-drain races are well-defined: a request either enters
// before the drain and is waited for, or is refused.
type drainGate struct {
	mu       sync.Mutex
	draining bool
	inflight int
	done     chan struct{}
}

func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.inflight++
	return true
}

func (g *drainGate) exit() {
	g.mu.Lock()
	g.inflight--
	if g.draining && g.inflight == 0 && g.done != nil {
		close(g.done)
		g.done = nil
	}
	g.mu.Unlock()
}

func (g *drainGate) drain(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	if g.inflight == 0 {
		g.mu.Unlock()
		return nil
	}
	if g.done == nil {
		g.done = make(chan struct{})
	}
	done := g.done
	g.mu.Unlock()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *drainGate) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// wrap applies the admission pipeline to a handler: drain gate (503),
// concurrency limiter (429 + Retry-After), request deadline, and
// response byte accounting. Admitted requests also get the
// observability envelope: a Trace (request ID in, span accumulators
// through the context, ID echoed out), one sample in the endpoint's
// latency histogram, and a structured log line when logging is on.
func (s *Server) wrap(ep obs.HistID, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		o := obs.Active()
		start := time.Now()
		if !s.gate.enter() {
			o.ServerRefused()
			w.Header().Set("Connection", "close")
			httpError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		defer s.gate.exit()
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			// Saturated: shed instead of queueing, so latency stays
			// bounded and the client's retry policy paces the load.
			o.ServerShed()
			w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.RetryAfter.Seconds())))
			httpError(w, http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
		o.ServerRequest()
		tr := obs.NewTrace(r.Header.Get(RequestIDHeader))
		tr.Start = start
		w.Header().Set(RequestIDHeader, tr.ID)
		ctx, cancel := context.WithTimeout(obs.WithTrace(r.Context(), tr), s.opts.RequestTimeout)
		defer cancel()
		// Bound the raw connection I/O to the same deadline. The context
		// alone is only checked between blocking calls: a client trickling
		// an ingest body (or refusing to read a scan response) would
		// otherwise pin an admission slot indefinitely, since http.Server
		// has no per-request body timeout of its own. Best-effort — an
		// exotic ResponseWriter may not support deadlines, in which case
		// the context deadline still bounds handler compute.
		rc := http.NewResponseController(w)
		ioDeadline := time.Now().Add(s.opts.RequestTimeout)
		rc.SetReadDeadline(ioDeadline)
		rc.SetWriteDeadline(ioDeadline)
		// The server resets the read deadline before the next request on
		// a kept-alive connection but leaves the write deadline alone;
		// clear it so a later request on this connection isn't poisoned.
		defer rc.SetWriteDeadline(time.Time{})
		cw := &countingWriter{ResponseWriter: w}
		tr.AddSince(obs.SpanAdmission, start)
		// Deferred (not sequential) so the byte count, the endpoint
		// latency sample and the log line all land even when a handler
		// aborts the connection with http.ErrAbortHandler.
		defer func() {
			dur := time.Since(start)
			o.ServerBytesOut(cw.n)
			o.Observe(ep, dur.Nanoseconds())
			s.logRequest(r, tr, cw, dur)
		}()
		h(cw, r.WithContext(ctx))
	}
}

// accessRecord is the JSON shape of one access-log (and slow-query)
// line. Spans holds the per-stage durations in nanoseconds, plus an
// "other" entry for wall time no span claimed, so the values sum to
// DurNs (modulo clock reads between span boundaries).
type accessRecord struct {
	Time     string           `json:"ts"`
	ID       string           `json:"id"`
	Method   string           `json:"method"`
	Path     string           `json:"path"`
	Status   int              `json:"status"`
	BytesOut int64            `json:"bytes_out"`
	DurNs    int64            `json:"dur_ns"`
	Spans    map[string]int64 `json:"spans"`
	Slow     bool             `json:"slow,omitempty"`
}

// logRequest emits the structured line for one finished request to the
// access log and, past the threshold, to the slow-query log. Both
// writers share one mutex so concurrent handlers never interleave
// lines.
func (s *Server) logRequest(r *http.Request, tr *obs.Trace, cw *countingWriter, dur time.Duration) {
	slow := s.opts.SlowQueryLog != nil && dur >= s.opts.SlowQueryThreshold
	if s.opts.AccessLog == nil && !slow {
		return
	}
	spans := tr.Spans()
	m := make(map[string]int64, len(spans)+1)
	var attributed int64
	for i, ns := range spans {
		if ns > 0 {
			m[obs.SpanName(obs.Span(i))] = ns
			attributed += ns
		}
	}
	if rest := dur.Nanoseconds() - attributed; rest > 0 {
		m["other"] = rest
	}
	status := cw.status
	if status == 0 {
		status = http.StatusOK
	}
	line, err := json.Marshal(accessRecord{
		Time:     time.Now().UTC().Format(time.RFC3339Nano),
		ID:       tr.ID,
		Method:   r.Method,
		Path:     r.URL.Path,
		Status:   status,
		BytesOut: cw.n,
		DurNs:    dur.Nanoseconds(),
		Spans:    m,
		Slow:     slow,
	})
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.opts.AccessLog != nil {
		s.opts.AccessLog.Write(line)
	}
	if slow {
		s.opts.SlowQueryLog.Write(line)
	}
}

// countingWriter counts response payload bytes for the bytes-out
// metric and captures the status code for the access log.
type countingWriter struct {
	http.ResponseWriter
	n      int64
	status int
}

func (w *countingWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *countingWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.n += int64(n)
	return n, err
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// getColumn resolves {name} to a stored column or writes a 404. The
// lookup is attributed to the request's registry span.
func (s *Server) getColumn(w http.ResponseWriter, r *http.Request) (*storedColumn, bool) {
	tr := obs.TraceFrom(r.Context())
	var start time.Time
	if tr != nil {
		start = time.Now()
	}
	name := r.PathValue("name")
	sc, ok := s.reg.Get(name)
	tr.AddSince(obs.SpanRegistry, start)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no column %q", name))
		return nil, false
	}
	return sc, true
}

// ---- predicate parsing ----

// parsePredicate builds an engine predicate from query parameters by
// intersecting every bound present: lo/ge (v >= x), gt (v > x), hi/le
// (v <= x), lt (v < x), eq (v == x). A parameter may repeat (the
// client's Predicate.And emits one key per conjunct); every occurrence
// is intersected, so the tightest bounds win. No parameters means
// match-all (NaNs never match a range predicate; use /data for an
// exact export). The reductions are the engine's own constructors, so
// a server-side predicate is the same closed interval the in-process
// operators see.
func parsePredicate(q url.Values) (engine.Predicate, error) {
	p := engine.Between(math.Inf(-1), math.Inf(1))
	apply := func(key string, build func(x float64) engine.Predicate) error {
		for _, val := range q[key] {
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("parameter %q: %v", key, err)
			}
			c := build(x)
			// Intersection of closed intervals: max lower bound, min upper
			// bound. A NaN bound (e.g. ge=NaN) propagates so the predicate
			// matches nothing, same as the in-process constructors.
			if c.Lo > p.Lo || math.IsNaN(c.Lo) {
				p.Lo = c.Lo
			}
			if c.Hi < p.Hi || math.IsNaN(c.Hi) {
				p.Hi = c.Hi
			}
		}
		return nil
	}
	for _, b := range []struct {
		key   string
		build func(float64) engine.Predicate
	}{
		{"lo", engine.GE},
		{"ge", engine.GE},
		{"gt", engine.GT},
		{"hi", engine.LE},
		{"le", engine.LE},
		{"lt", engine.LT},
		{"eq", engine.EQ},
	} {
		if err := apply(b.key, b.build); err != nil {
			return p, err
		}
	}
	return p, nil
}

// parseThreads resolves the ?threads= parameter.
func (s *Server) parseThreads(q url.Values) (int, error) {
	v := q.Get("threads")
	if v == "" {
		return s.opts.DefaultThreads, nil
	}
	t, err := strconv.Atoi(v)
	if err != nil || t < 1 || t > maxThreads {
		return 0, fmt.Errorf("threads must be an integer in [1, %d]", maxThreads)
	}
	return t, nil
}

// ---- handlers ----

// columnInfo is the JSON shape of GET /v1/columns/{name} and the
// ingest response. Float fields ride as strings formatted with
// strconv 'g'/-1, which round-trips every finite float64 exactly.
type columnInfo struct {
	Name            string  `json:"name"`
	Values          int     `json:"values"`
	NumVectors      int     `json:"num_vectors"`
	NumRowGroups    int     `json:"num_row_groups"`
	CompressedBytes int     `json:"compressed_bytes"`
	BitsPerValue    float64 `json:"bits_per_value"`
	Exceptions      int     `json:"exceptions"`
	UsedRD          bool    `json:"used_rd"`
}

func infoFor(sc *storedColumn) columnInfo {
	return columnInfo{
		Name:            sc.name,
		Values:          sc.col.N,
		NumVectors:      sc.col.NumVectors(),
		NumRowGroups:    len(sc.col.RowGroups),
		CompressedBytes: len(sc.data),
		BitsPerValue:    sc.col.BitsPerValue(),
		Exceptions:      sc.col.Exceptions(),
		UsedRD:          sc.col.UsedRD(),
	}
}

// handleIngest streams the request body — little-endian float64s —
// into a parallel Writer: full row-groups are encoded by the bounded
// pool while the body is still arriving, so ingest memory stays
// bounded at workers+1 raw row-groups regardless of column size.
// CompressedContentType marks a request or response body holding a
// marshaled ALP column stream rather than raw float64s. Ingesting it
// skips the encoder entirely — the path rebalancing moves compressed
// row-group ranges over.
const CompressedContentType = "application/x-alp-column"

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := validateName(name); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if ct := r.Header.Get("Content-Type"); ct == CompressedContentType {
		s.ingestCompressed(w, r, name)
		return
	}
	o := obs.Active()
	tr := obs.TraceFrom(r.Context())
	readStart := time.Now()
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	wr := alp.NewWriterParallel(alp.WriterOptions{Workers: s.opts.IngestWorkers})
	// Every error return below must tear down the Writer's encode pool,
	// or each failed ingest would permanently leak the pool's worker
	// goroutines plus their in-flight row-group buffers. Abort is a
	// no-op once the success path has called Close.
	defer wr.Abort()
	buf := make([]byte, 256<<10)
	vals := make([]float64, len(buf)/8)
	rem := 0 // bytes carried over to keep 8-byte alignment
	var total int64
	for {
		if err := r.Context().Err(); err != nil {
			httpError(w, http.StatusRequestTimeout, "ingest deadline exceeded")
			return
		}
		n, err := body.Read(buf[rem:])
		total += int64(n)
		n += rem
		nv := n / 8
		for i := 0; i < nv; i++ {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		wr.Write(vals[:nv])
		rem = n - nv*8
		copy(buf, buf[nv*8:n])
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("body exceeds %d-byte cap", s.opts.MaxBodyBytes))
				return
			}
			// The per-request read deadline set in wrap surfaces a
			// stalled (trickling) body as a deadline error here.
			if errors.Is(err, os.ErrDeadlineExceeded) {
				httpError(w, http.StatusRequestTimeout, "ingest deadline exceeded")
				return
			}
			httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
			return
		}
	}
	if rem != 0 {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("body length not a multiple of 8 (%d trailing bytes)", rem))
		return
	}
	// Span accounting: the read loop above overlaps the Writer's encode
	// pool, so SpanRead is "time to drain the body" and SpanEncode is
	// only the tail the encoder still owed when the body ended.
	tr.AddSince(obs.SpanRead, readStart)
	o.ServerBytesIn(total)
	encStart := time.Now()
	data := wr.Close()
	tr.AddSince(obs.SpanEncode, encStart)
	regStart := time.Now()
	sc, err := s.reg.Put(name, data)
	tr.AddSince(obs.SpanRegistry, regStart)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, infoFor(sc))
}

// ingestCompressed stores an already-marshaled column stream verbatim
// (Content-Type application/x-alp-column). The registry's Put
// validates the stream before the swap, so a corrupt body never
// replaces a good column.
func (s *Server) ingestCompressed(w http.ResponseWriter, r *http.Request, name string) {
	tr := obs.TraceFrom(r.Context())
	readStart := time.Now()
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	tr.AddSince(obs.SpanRead, readStart)
	if err != nil {
		var mbe *http.MaxBytesError
		switch {
		case errors.As(err, &mbe):
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d-byte cap", s.opts.MaxBodyBytes))
		case errors.Is(err, os.ErrDeadlineExceeded), r.Context().Err() != nil:
			httpError(w, http.StatusRequestTimeout, "ingest deadline exceeded")
		default:
			httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		}
		return
	}
	obs.Active().ServerBytesIn(int64(len(data)))
	regStart := time.Now()
	sc, err := s.reg.Put(name, data)
	tr.AddSince(obs.SpanRegistry, regStart)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, infoFor(sc))
}

func validateName(name string) error {
	if name == "" || len(name) > 128 {
		return errors.New("column name must be 1..128 bytes")
	}
	if strings.ContainsAny(name, "/\\ \t\n") {
		return errors.New("column name must not contain slashes or whitespace")
	}
	return nil
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"columns": s.reg.Names()})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.getColumn(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, infoFor(sc))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Delete(name) {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no column %q", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// aggResponse carries FilterAgg results. Sum, Min and Max are strings
// (strconv 'g'/-1) so ±Inf survive JSON and finite values round-trip
// bit-exactly.
type aggResponse struct {
	Sum     string `json:"sum"`
	Count   int64  `json:"count"`
	Min     string `json:"min"`
	Max     string `json:"max"`
	Touched int    `json:"touched"`
	Threads int    `json:"threads"`
}

func fmtFloat(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// parseRowGroups resolves the ?rgs= parameter: a comma-separated list
// of row-group indexes (partials mode) selecting which row-groups to
// answer for. nil means all.
func parseRowGroups(q url.Values, numRG int) ([]int, error) {
	raw := q.Get("rgs")
	if raw == "" {
		return nil, nil
	}
	parts := strings.Split(raw, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		g, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || g < 0 || g >= numRG {
			return nil, fmt.Errorf("rgs entries must be row-group indexes in [0, %d)", numRG)
		}
		out = append(out, g)
	}
	return out, nil
}

// parseRowGroupRange resolves the ?rg_lo= / ?rg_hi= parameters (ranged
// scans and exports). Absent parameters default to the full range;
// either may be given alone.
func parseRowGroupRange(q url.Values, numRG int) (lo, hi int, ranged bool, err error) {
	lo, hi = 0, numRG-1
	if v := q.Get("rg_lo"); v != "" {
		if lo, err = strconv.Atoi(v); err != nil {
			return 0, 0, false, fmt.Errorf("rg_lo must be an integer")
		}
		ranged = true
	}
	if v := q.Get("rg_hi"); v != "" {
		if hi, err = strconv.Atoi(v); err != nil {
			return 0, 0, false, fmt.Errorf("rg_hi must be an integer")
		}
		ranged = true
	}
	if ranged && (lo < 0 || hi < lo || hi >= numRG) {
		return 0, 0, false, fmt.Errorf("row-group range [%d, %d] out of [0, %d)", lo, hi, numRG)
	}
	return lo, hi, ranged, nil
}

// aggPartialWire is one row-group's partial aggregate in the
// partials=rowgroups response; float fields use the same exact 'g'/-1
// encoding as aggResponse so merging coordinators round-trip bits.
type aggPartialWire struct {
	Sum   string `json:"sum"`
	Count int64  `json:"count"`
	Min   string `json:"min"`
	Max   string `json:"max"`
}

func (s *Server) handleAgg(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.getColumn(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	pred, err := parsePredicate(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	threads, err := s.parseThreads(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.testHook != nil {
		s.testHook()
	}
	if q.Get("partials") == "rowgroups" {
		idxs, err := parseRowGroups(q, len(sc.col.RowGroups))
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		parts, touched := sc.rel.FilterAggPartials(threads, pred, idxs)
		obs.Active().ServerScanned()
		wire := make([]aggPartialWire, len(parts))
		for i, a := range parts {
			wire[i] = aggPartialWire{
				Sum:   fmtFloat(a.Sum),
				Count: a.Count,
				Min:   fmtFloat(a.Min),
				Max:   fmtFloat(a.Max),
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"rowgroups": wire, "touched": touched, "threads": threads,
		})
		return
	}
	agg, touched := sc.rel.FilterAggCtx(r.Context(), threads, pred)
	obs.Active().ServerScanned()
	writeJSON(w, http.StatusOK, aggResponse{
		Sum:     fmtFloat(agg.Sum),
		Count:   agg.Count,
		Min:     fmtFloat(agg.Min),
		Max:     fmtFloat(agg.Max),
		Touched: touched,
		Threads: threads,
	})
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.getColumn(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	pred, err := parsePredicate(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	threads, err := s.parseThreads(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if q.Get("partials") == "rowgroups" {
		idxs, err := parseRowGroups(q, len(sc.col.RowGroups))
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		counts := sc.rel.FilterCountPartials(threads, pred, idxs)
		obs.Active().ServerScanned()
		writeJSON(w, http.StatusOK, map[string]any{"rowgroups": counts, "threads": threads})
		return
	}
	count := sc.rel.FilterCountCtx(r.Context(), threads, pred)
	obs.Active().ServerScanned()
	writeJSON(w, http.StatusOK, map[string]any{"count": count, "threads": threads})
}

// ScanRowsTrailer is the HTTP trailer carrying the number of rows a
// /scan response streamed. It is written only when the scan ran to
// completion, so a client can distinguish a full result from a stream
// cut short — a truncated body is otherwise indistinguishable from a
// complete one, because every prefix of the stream is 8-byte aligned.
const ScanRowsTrailer = "X-Alp-Scan-Rows"

// scanAcceptsCompressed reports whether the request's Accept header
// opts into the selection-aware scan stream (format.ScanContentType).
// Plain media-range matching over the comma-separated list; absent or
// non-matching Accept values keep the raw float64 encoding, so old
// clients are untouched.
func scanAcceptsCompressed(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := part
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = mt[:i]
		}
		if strings.TrimSpace(mt) == format.ScanContentType {
			return true
		}
	}
	return false
}

// handleScan streams the rows matching the predicate, in position
// order, evaluating the predicate with zone-map skipping plus the
// encoded-domain kernel vector-at-a-time. The wire encoding is
// negotiated: `Accept: application/x-alp-scan` selects the framed
// selection-aware stream (compressed per-vector payloads the client
// decodes with the fused kernels); anything else gets the original raw
// little-endian float64 body. Either way the response is produced
// incrementally — a scan of a huge column never materializes more than
// one vector — and completion is framed by the ScanRowsTrailer; if the
// deadline fires or a write fails mid-stream the connection is aborted
// so the client sees a transport error, never a silently short 200.
func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.getColumn(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	pred, err := parsePredicate(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	rgLo, rgHi, _, err := parseRowGroupRange(q, len(sc.col.RowGroups))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	vecLo := rgLo * vector.RowGroupVectors
	vecHi := rgHi*vector.RowGroupVectors + vector.VectorsIn(sc.col.RowGroups[rgHi].N)
	if s.testHook != nil {
		s.testHook()
	}
	if scanAcceptsCompressed(r.Header.Get("Accept")) {
		s.serveScanStream(w, r, sc, pred, vecLo, vecHi)
		return
	}
	w.Header().Set("Trailer", ScanRowsTrailer)
	w.Header().Set("Content-Type", "application/x-alp-f64le")
	w.Header().Set("X-Alp-Column-Values", strconv.Itoa(sc.col.N))
	var sel [format.SelWords]uint64
	out := make([]float64, vector.Size)
	scratch := make([]int64, vector.Size)
	raw := make([]byte, vector.Size*8)
	col := sc.col
	skipped, rows := 0, 0
	o := obs.Active()
	tr := obs.TraceFrom(r.Context())
	timed := o != nil || tr != nil
	var engineNs, writeNs int64
	var batch obs.ScanBatch
	defer func() {
		// Runs on the abort panic too, so counters stay coherent.
		o.VectorsSkipped(skipped)
		o.FlushScanBatch(&batch)
		o.ServerScanned()
		tr.Add(obs.SpanEngine, engineNs)
		tr.Add(obs.SpanWrite, writeNs)
	}()
	var t0 time.Time
	for i := vecLo; i < vecHi; i++ {
		if r.Context().Err() != nil {
			// Deadline (or client gone) mid-stream: tear the connection
			// down instead of ending the body cleanly, so the truncation
			// is a transport error the client can see and retry.
			panic(http.ErrAbortHandler)
		}
		if col.Zones != nil && !col.Zones.MayContain(i, pred.Lo, pred.Hi) {
			skipped++
			continue
		}
		if timed {
			t0 = time.Now()
		}
		n, pd := col.FilterGatherVector(i, pred.Lo, pred.Hi, sel[:], out, scratch)
		batch.Vector(n, pd)
		if timed {
			engineNs += time.Since(t0).Nanoseconds()
		}
		if n == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			binary.LittleEndian.PutUint64(raw[j*8:], math.Float64bits(out[j]))
		}
		if timed {
			t0 = time.Now()
		}
		if _, err := w.Write(raw[:n*8]); err != nil {
			panic(http.ErrAbortHandler)
		}
		if timed {
			ns := time.Since(t0).Nanoseconds()
			writeNs += ns
			o.Observe(obs.HistStageHTTPWrite, ns)
		}
		rows += n
	}
	w.Header().Set(ScanRowsTrailer, strconv.Itoa(rows))
}

// serveScanStream is the negotiated compressed scan path: one wire
// frame per qualifying vector, each the cheapest of the stored
// envelope + selection bitmap, a re-packed ALP vector of the selected
// rows, or raw float64s (format.ScanWriter decides by exact byte
// size). The stream header goes out before the first frame; abort
// semantics and the row-count trailer match the raw path.
func (s *Server) serveScanStream(w http.ResponseWriter, r *http.Request, sc *storedColumn, pred engine.Predicate, vecLo, vecHi int) {
	w.Header().Set("Trailer", ScanRowsTrailer)
	w.Header().Set("Content-Type", format.ScanContentType)
	w.Header().Set("X-Alp-Column-Values", strconv.Itoa(sc.col.N))
	col := sc.col
	sw := format.NewScanWriter(col)
	skipped, rows := 0, 0
	o := obs.Active()
	tr := obs.TraceFrom(r.Context())
	timed := o != nil || tr != nil
	var engineNs, writeNs int64
	var batch obs.ScanBatch
	var dense, repacked, raw, bytesSaved int64
	defer func() {
		// Runs on the abort panic too, so counters stay coherent.
		o.VectorsSkipped(skipped)
		o.FlushScanBatch(&batch)
		o.ScanFrames(dense, repacked, raw, bytesSaved)
		o.ServerScanned()
		tr.Add(obs.SpanEngine, engineNs)
		tr.Add(obs.SpanWrite, writeNs)
	}()
	if _, err := w.Write(format.AppendScanStreamHeader(nil)); err != nil {
		panic(http.ErrAbortHandler)
	}
	var t0 time.Time
	for i := vecLo; i < vecHi; i++ {
		if r.Context().Err() != nil {
			panic(http.ErrAbortHandler)
		}
		if col.Zones != nil && !col.Zones.MayContain(i, pred.Lo, pred.Hi) {
			skipped++
			continue
		}
		if timed {
			t0 = time.Now()
		}
		frame, n, kind, pd := sw.Frame(i, pred.Lo, pred.Hi)
		if timed {
			engineNs += time.Since(t0).Nanoseconds()
		}
		batch.Vector(n, pd)
		if n == 0 {
			continue
		}
		switch kind {
		case format.ScanFrameDense:
			dense++
		case format.ScanFrameRepacked:
			repacked++
		default:
			raw++
		}
		bytesSaved += int64(8*n - len(frame))
		if timed {
			t0 = time.Now()
		}
		if _, err := w.Write(frame); err != nil {
			panic(http.ErrAbortHandler)
		}
		if timed {
			ns := time.Since(t0).Nanoseconds()
			writeNs += ns
			o.Observe(obs.HistStageHTTPWrite, ns)
		}
		rows += n
	}
	w.Header().Set(ScanRowsTrailer, strconv.Itoa(rows))
}

// handleData serves the column's compressed stream: the full registry
// bytes verbatim by default (the cheapest possible export), or — with
// ?rg_lo/?rg_hi — a standalone re-based column holding just that
// row-group range, the raw-export half of the cluster rebalance path.
func (s *Server) handleData(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.getColumn(w, r)
	if !ok {
		return
	}
	rgLo, rgHi, ranged, err := parseRowGroupRange(r.URL.Query(), len(sc.col.RowGroups))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", CompressedContentType)
	if !ranged {
		w.Header().Set("X-Alp-Column-Values", strconv.Itoa(sc.col.N))
		w.Write(sc.data)
		return
	}
	sl, err := format.SliceColumn(sc.col, rgLo, rgHi)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("X-Alp-Column-Values", strconv.Itoa(sl.N))
	w.Write(sl.Marshal())
}

// handleVector ships one encoded vector as a standalone envelope; the
// server never decodes it.
func (s *Server) handleVector(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.getColumn(w, r)
	if !ok {
		return
	}
	i, err := strconv.Atoi(r.PathValue("i"))
	if err != nil || i < 0 || i >= sc.col.NumVectors() {
		httpError(w, http.StatusNotFound,
			fmt.Sprintf("vector index out of range [0, %d)", sc.col.NumVectors()))
		return
	}
	env, err := sc.col.MarshalVector(i)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-alp-vector")
	w.Header().Set("X-Alp-Vector-Values", strconv.Itoa(sc.col.VectorLen(i)))
	w.Write(env)
}

// handleMetrics serves the codec + service counter snapshot as JSON —
// the same shape alpbench -metrics exposes (counters plus the
// lat_*/stage_* latency-histogram keys), spliced with a "columns"
// object holding per-column registry stats and, when the history
// recorder is on, a "metrics_history" object with its footprint. Keys
// are emitted in sorted order, so two reads of identical state are
// byte-identical — diff-friendly for scrape tooling. Not gated: a
// draining or saturated server must stay observable.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	extras := make([]obs.Extra, 0, 2)
	if cols, err := json.Marshal(s.reg.Stats()); err == nil {
		extras = append(extras, obs.Extra{Name: "columns", JSON: string(cols)})
	}
	if st := s.opts.MetricsHistory; st != nil {
		if hs, err := json.Marshal(st.Stats()); err == nil {
			extras = append(extras, obs.Extra{Name: "metrics_history", JSON: string(hs)})
		}
	}
	fmt.Fprintln(w, obs.Active().Snapshot().JSON(extras...))
}

// handleMetricsProm serves the same snapshot in the Prometheus text
// exposition format, so standard scrapers need no JSON shim.
func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	obs.Active().Snapshot().WritePrometheus(w)
}

// handleHealth is the liveness probe: 200 whenever the process can
// answer HTTP at all — a draining server is still alive, so restarts
// keyed to this probe do not kill a graceful shutdown mid-drain.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReady is the readiness probe: it flips to 503 the moment a
// drain starts, so load balancers stop routing new work while
// in-flight requests finish.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.gate.isDraining() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}
