// GET /v1/metrics/history: range queries over the self-telemetry
// history store (internal/metricstore). Without ?metric= the endpoint
// lists the available series and the store's footprint; with one it
// aggregates that series into step buckets:
//
//	GET /v1/metrics/history?metric=server_requests&since=-5m&step=10s&agg=rate
//
// Parameters:
//
//	metric  series name (from the listing); omit to list
//	since   range start, required for queries: RFC3339, unix seconds
//	        (integer or float), or a negative duration relative to now
//	        ("-5m")
//	until   range end, same formats; default now
//	step    bucket width as a Go duration ("10s"); default one bucket
//	        spanning the whole range
//	agg     sum|count|min|max|avg|rate|last; default sum
//
// Bucket values ride as strings formatted with strconv 'g'/-1, which
// round-trips every finite float64 exactly — the bit-identity
// guarantee of the store survives the wire.
package server

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/goalp/alp/internal/metricstore"
)

// historyPoint is one step bucket on the wire.
type historyPoint struct {
	TsUs  int64  `json:"ts_us"`
	Value string `json:"value"`
	Count int64  `json:"count"`
}

// historyResponse is the JSON shape of a range query.
type historyResponse struct {
	Metric  string         `json:"metric"`
	Agg     string         `json:"agg"`
	SinceUs int64          `json:"since_us"`
	UntilUs int64          `json:"until_us"`
	StepUs  int64          `json:"step_us"`
	Points  []historyPoint `json:"points"`
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	st := s.opts.MetricsHistory
	if st == nil {
		httpError(w, http.StatusNotFound, "metrics history is disabled (start alpserved with -metrics-history)")
		return
	}
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		writeJSON(w, http.StatusOK, map[string]any{
			"series": st.Names(),
			"stats":  st.Stats(),
		})
		return
	}
	now := time.Now()
	sinceUs, err := parseHistoryTime(q.Get("since"), now)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parameter since: "+err.Error())
		return
	}
	untilUs := now.UnixMicro()
	if v := q.Get("until"); v != "" {
		if untilUs, err = parseHistoryTime(v, now); err != nil {
			httpError(w, http.StatusBadRequest, "parameter until: "+err.Error())
			return
		}
	}
	var step time.Duration
	if v := q.Get("step"); v != "" {
		if step, err = time.ParseDuration(v); err != nil || step <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("parameter step: %q is not a positive duration", v))
			return
		}
	}
	agg := metricstore.AggSum
	if v := q.Get("agg"); v != "" {
		if agg, err = metricstore.ParseAgg(v); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	pts, err := st.Query(metric, sinceUs, untilUs, step, agg)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	stepUs := step.Microseconds()
	if stepUs <= 0 {
		stepUs = untilUs - sinceUs
	}
	resp := historyResponse{
		Metric:  metric,
		Agg:     agg.String(),
		SinceUs: sinceUs,
		UntilUs: untilUs,
		StepUs:  stepUs,
		Points:  make([]historyPoint, 0, len(pts)),
	}
	for _, p := range pts {
		resp.Points = append(resp.Points, historyPoint{TsUs: p.TsUs, Value: fmtFloat(p.Value), Count: p.Count})
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseHistoryTime resolves one time parameter to unix microseconds.
// Accepted spellings, tried in order: a negative Go duration relative
// to now ("-5m"), a unix timestamp in seconds (integer or float), or
// RFC3339 ("2026-08-08T12:00:00Z").
func parseHistoryTime(v string, now time.Time) (int64, error) {
	if v == "" {
		return 0, fmt.Errorf("missing (want RFC3339, unix seconds, or a relative duration like -5m)")
	}
	if strings.HasPrefix(v, "-") {
		if d, err := time.ParseDuration(v); err == nil {
			return now.Add(d).UnixMicro(), nil
		}
	}
	if sec, err := strconv.ParseFloat(v, 64); err == nil {
		// Round, don't truncate: a fractional-seconds string carries at
		// most microsecond digits, but the nearest double to it can land
		// a hair under the integer microsecond it names.
		return int64(math.Round(sec * 1e6)), nil
	}
	if t, err := time.Parse(time.RFC3339Nano, v); err == nil {
		return t.UnixMicro(), nil
	}
	return 0, fmt.Errorf("%q is not RFC3339, unix seconds, or a relative duration", v)
}
