package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/goalp/alp"
	"github.com/goalp/alp/client"
)

// syncBuffer is an io.Writer tests can read while handlers are still
// writing.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestEndpointLatencyHistograms drives every endpoint class through
// the client and checks /metrics reports non-zero latency quantiles
// for each — the flat lat_* keys the collector's histograms render —
// plus samples in the engine-stage histograms the requests exercised.
func TestEndpointLatencyHistograms(t *testing.T) {
	alp.EnableStats()
	defer alp.DisableStats()
	alp.ResetStats()
	_, cl := newTestServer(t, Options{})
	ctx := context.Background()
	values := dataset(4096, 21)
	if _, err := cl.Ingest(ctx, "h", values); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	// A predicate that cuts through the first vector's range, so at
	// least one vector is partially selected and the fused
	// unpack+compare kernel must run (full or empty vectors are
	// answered from zone maps alone).
	lo, hi := values[0], values[0]
	for _, v := range values[:1024] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if _, err := cl.Agg(ctx, "h", client.GE((lo+hi)/2)); err != nil {
		t.Fatalf("agg: %v", err)
	}
	if _, err := cl.Count(ctx, "h", client.LE(150)); err != nil {
		t.Fatalf("count: %v", err)
	}
	if _, err := cl.Scan(ctx, "h", client.Between(40, 160)); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if _, err := cl.Values(ctx, "h"); err != nil {
		t.Fatalf("values: %v", err)
	}
	if _, err := cl.Info(ctx, "h"); err != nil {
		t.Fatalf("info: %v", err)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, ep := range []string{"lat_ingest", "lat_agg", "lat_count", "lat_scan", "lat_data", "lat_meta"} {
		if m[ep+"_count"] < 1 {
			t.Errorf("%s_count = %d, want >= 1", ep, m[ep+"_count"])
		}
		if m[ep+"_p50_ns"] <= 0 {
			t.Errorf("%s_p50_ns = %d, want > 0", ep, m[ep+"_p50_ns"])
		}
		if m[ep+"_p99_ns"] <= 0 {
			t.Errorf("%s_p99_ns = %d, want > 0", ep, m[ep+"_p99_ns"])
		}
		if m[ep+"_p99_ns"] < m[ep+"_p50_ns"] {
			t.Errorf("%s: p99 %d < p50 %d", ep, m[ep+"_p99_ns"], m[ep+"_p50_ns"])
		}
		if m[ep+"_max_ns"] < m[ep+"_p99_ns"] {
			t.Errorf("%s: max %d < p99 %d", ep, m[ep+"_max_ns"], m[ep+"_p99_ns"])
		}
	}
	// The requests above did real codec work: the ingest encoded
	// row-groups, agg/count/scan ran the fused filter kernel, and the
	// scan's response writes were sampled.
	for _, st := range []string{"stage_encode", "stage_filter", "stage_http_write"} {
		if m[st+"_count"] < 1 {
			t.Errorf("%s_count = %d, want >= 1", st, m[st+"_count"])
		}
	}
}

// TestAccessLogAndSlowQuery checks the structured logging contract: a
// request carrying X-Alp-Request-Id yields an access-log line with
// that ID whose span durations sum to roughly the request wall time,
// and (over the threshold — here everything) the same line lands in
// the slow-query log marked slow.
func TestAccessLogAndSlowQuery(t *testing.T) {
	var access, slowLog syncBuffer
	srv := New(Options{
		AccessLog:          &access,
		SlowQueryLog:       &slowLog,
		SlowQueryThreshold: time.Nanosecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	cl := client.New(ts.URL)
	if _, err := cl.Ingest(ctx, "logged", dataset(4096, 31)); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	const reqID = "test-req-0042"
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/columns/logged/scan?ge=50", nil)
	req.Header.Set(RequestIDHeader, reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status %d", resp.StatusCode)
	}
	if len(body) == 0 {
		t.Fatal("scan returned no rows")
	}
	if got := resp.Header.Get(RequestIDHeader); got != reqID {
		t.Errorf("response %s = %q, want %q (client ID echoed)", RequestIDHeader, got, reqID)
	}

	// The log line is written in a deferred func racing the response;
	// poll briefly.
	line := waitForLine(t, &access, reqID)
	var rec struct {
		ID       string           `json:"id"`
		Method   string           `json:"method"`
		Path     string           `json:"path"`
		Status   int              `json:"status"`
		BytesOut int64            `json:"bytes_out"`
		DurNs    int64            `json:"dur_ns"`
		Spans    map[string]int64 `json:"spans"`
		Slow     bool             `json:"slow"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access-log line is not JSON: %v\n%s", err, line)
	}
	if rec.Method != "GET" || rec.Path != "/v1/columns/logged/scan" || rec.Status != 200 {
		t.Errorf("access record = %+v", rec)
	}
	if rec.BytesOut != int64(len(body)) {
		t.Errorf("bytes_out = %d, body was %d", rec.BytesOut, len(body))
	}
	if rec.DurNs <= 0 {
		t.Fatalf("dur_ns = %d", rec.DurNs)
	}
	if len(rec.Spans) == 0 {
		t.Fatal("no spans recorded")
	}
	for _, span := range []string{"registry", "engine", "write"} {
		if rec.Spans[span] <= 0 {
			t.Errorf("span %q = %d, want > 0 for a scan", span, rec.Spans[span])
		}
	}
	var sum int64
	for _, ns := range rec.Spans {
		sum += ns
	}
	// "other" absorbs unattributed wall time, so the spans reconstruct
	// the request duration up to the clock reads between boundaries.
	if sum < rec.DurNs*9/10 || sum > rec.DurNs*11/10 {
		t.Errorf("span sum %d not ~ dur_ns %d", sum, rec.DurNs)
	}
	if !rec.Slow {
		t.Error("1ns threshold: the access line should be marked slow")
	}

	slowLine := waitForLine(t, &slowLog, reqID)
	if !strings.Contains(slowLine, `"slow":true`) {
		t.Errorf("slow-query line lacks slow marker: %s", slowLine)
	}
}

// waitForLine polls buf until a log line containing token appears.
func waitForLine(t *testing.T, buf *syncBuffer, token string) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.Contains(line, token) {
				return line
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no log line containing %q; log so far:\n%s", token, buf.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLivenessReadinessSplit pins the probe semantics: /healthz stays
// 200 through a drain (the process is alive) while /readyz flips to
// 503 the moment draining starts.
func TestLivenessReadinessSplit(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz before drain = %d", got)
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz before drain = %d", got)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200 (liveness)", got)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503 (readiness)", got)
	}
}

// TestMetricsColumnStats checks /metrics carries the per-column
// registry view alongside the counters.
func TestMetricsColumnStats(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	cl := client.New(ts.URL)
	const n = 4096
	if _, err := cl.Ingest(ctx, "colstats", dataset(n, 7)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc struct {
		Columns map[string]ColumnStats `json:"columns"`
	}
	if err := json.Unmarshal(payload, &doc); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v\n%s", err, payload)
	}
	cs, ok := doc.Columns["colstats"]
	if !ok {
		t.Fatalf("columns missing %q: %s", "colstats", payload)
	}
	if cs.Values != n {
		t.Errorf("columns.colstats.values = %d, want %d", cs.Values, n)
	}
	if cs.CompressedBytes <= 0 || cs.BitsPerValue <= 0 {
		t.Errorf("columns.colstats shape = %+v, want non-zero sizes", cs)
	}
	if cs.NumRowGroups < 1 || cs.NumVectors != (n+1023)/1024 {
		t.Errorf("columns.colstats layout = %+v", cs)
	}
}
