// The column registry: named, immutable compressed columns shared by
// every request. A stored column is never mutated — replacing a name
// swaps the pointer under the write lock, so scans that grabbed the
// old pointer keep reading a consistent column to completion while new
// requests see the replacement. Reads take the RLock only long enough
// to copy the pointer.
package server

import (
	"fmt"
	"sort"
	"sync"

	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/format"
)

// storedColumn bundles the three read-side views of one ingested
// column: the marshaled stream (served verbatim), the parsed column
// (vector addressing, zone maps, per-vector envelopes) and the engine
// relation (morsel-parallel pushdown operators). All three share the
// same underlying compressed storage and are immutable after Put.
type storedColumn struct {
	name string
	data []byte
	col  *format.Column
	rel  *engine.Relation
}

// Registry is the concurrent name -> column map.
type Registry struct {
	mu   sync.RWMutex
	cols map[string]*storedColumn
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{cols: make(map[string]*storedColumn)}
}

// Put parses a marshaled column stream and binds it to name, replacing
// any existing column atomically. The stream is validated before the
// swap, so a failed Put leaves the previous binding untouched.
func (r *Registry) Put(name string, data []byte) (*storedColumn, error) {
	col, err := format.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("column %q: %w", name, err)
	}
	sc := &storedColumn{
		name: name,
		data: data,
		col:  col,
		rel:  engine.BuildALPFromColumn(name, col),
	}
	r.mu.Lock()
	r.cols[name] = sc
	r.mu.Unlock()
	return sc, nil
}

// Get returns the column bound to name.
func (r *Registry) Get(name string) (*storedColumn, bool) {
	r.mu.RLock()
	sc, ok := r.cols[name]
	r.mu.RUnlock()
	return sc, ok
}

// Delete removes the binding for name, reporting whether it existed.
// In-flight requests holding the column keep using it; the storage is
// reclaimed when the last of them finishes.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	_, ok := r.cols[name]
	delete(r.cols, name)
	r.mu.Unlock()
	return ok
}

// ColumnStats is the per-column registry view exposed on /metrics:
// the shape numbers an operator needs to judge whether a column's
// latency profile matches its size and exception rate.
type ColumnStats struct {
	Values          int     `json:"values"`
	NumVectors      int     `json:"num_vectors"`
	NumRowGroups    int     `json:"num_row_groups"`
	CompressedBytes int     `json:"compressed_bytes"`
	BitsPerValue    float64 `json:"bits_per_value"`
	Exceptions      int     `json:"exceptions"`
	UsedRD          bool    `json:"used_rd"`
}

// Stats returns the shape statistics of every registered column, keyed
// by name. Columns are immutable after Put, so the walk only holds the
// read lock to copy pointers.
func (r *Registry) Stats() map[string]ColumnStats {
	r.mu.RLock()
	cols := make([]*storedColumn, 0, len(r.cols))
	for _, sc := range r.cols {
		cols = append(cols, sc)
	}
	r.mu.RUnlock()
	out := make(map[string]ColumnStats, len(cols))
	for _, sc := range cols {
		out[sc.name] = ColumnStats{
			Values:          sc.col.N,
			NumVectors:      sc.col.NumVectors(),
			NumRowGroups:    len(sc.col.RowGroups),
			CompressedBytes: len(sc.data),
			BitsPerValue:    sc.col.BitsPerValue(),
			Exceptions:      sc.col.Exceptions(),
			UsedRD:          sc.col.UsedRD(),
		}
	}
	return out
}

// Names returns the registered column names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.cols))
	for name := range r.cols {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}
