package server

import (
	"context"
	"encoding/binary"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/goalp/alp"
	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/vector"
)

// sweepDecimals spreads decimal values uniformly over [0, 1000) so a
// predicate band selects a precisely tunable fraction of the rows.
func sweepDecimals(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64((i*7919)%100000) / 100
	}
	return out
}

// sweepSpecials is sweepDecimals with every bit-exactness hazard mixed
// in — NaN payloads, ±Inf, -0, subnormals — plus two whole vectors of
// random bit patterns, which encode as all-exception vectors inside
// the decimal row-group.
func sweepSpecials(n int) []float64 {
	out := sweepDecimals(n)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i += 113 {
		switch (i / 113) % 5 {
		case 0:
			out[i] = math.Float64frombits(0x7FF8DEADBEEF0001)
		case 1:
			out[i] = math.Inf(1)
		case 2:
			out[i] = math.Inf(-1)
		case 3:
			out[i] = math.Copysign(0, -1)
		case 4:
			out[i] = 5e-324
		}
	}
	if n >= 4*vector.Size {
		for i := vector.Size; i < 3*vector.Size; i++ {
			out[i] = math.Float64frombits(rng.Uint64())
		}
	}
	return out
}

// sweepRealDoubles forces the RD scheme for the whole column.
func sweepRealDoubles(n int) []float64 {
	out := make([]float64, n)
	s := uint64(0x9E3779B97F4A7C15)
	for i := range out {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = math.Float64frombits(s &^ (0x7FF << 52))
	}
	return out
}

// TestScanDifferentialBattery is the served-scan bit-identity battery:
// a selectivity sweep (≈0.1%, 1%, 10%, 50%, 99%, 100%, empty) crossed
// with edge datasets (uniform decimals, all-exception vectors +
// NaN/±Inf/-0/subnormals, RD real doubles), each row served under BOTH
// wire encodings — the compressed selection-aware stream (Scan) and
// raw little-endian float64s (ScanRaw) — and compared bit-for-bit
// against the in-process fused unpack+filter+gather oracle
// (engine.Relation.FilterRows over FilterGatherVector).
func TestScanDifferentialBattery(t *testing.T) {
	_, cl := newTestServer(t, Options{})
	ctx := context.Background()

	datasets := []struct {
		name   string
		values []float64
	}{
		{"decimals", sweepDecimals(2*vector.RowGroupSize + 3333)},
		{"specials", sweepSpecials(vector.RowGroupSize + 4*vector.Size + 55)},
		{"realdoubles", sweepRealDoubles(6*vector.Size + 7)},
	}
	bands := []struct {
		name   string
		lo, hi float64
	}{
		{"sel_0.1%", 0, 0.99},
		{"sel_1%", 0, 9.99},
		{"sel_10%", 0, 99.99},
		{"sel_50%", 0, 499.99},
		{"sel_99%", 0, 989.99},
		{"sel_100%", math.Inf(-1), math.Inf(1)},
		{"empty", 2000, 3000},
	}
	for _, ds := range datasets {
		if _, err := cl.Ingest(ctx, ds.name, ds.values); err != nil {
			t.Fatalf("ingest %s: %v", ds.name, err)
		}
		rel := engine.BuildALP(ds.values)
		for _, b := range bands {
			t.Run(ds.name+"/"+b.name, func(t *testing.T) {
				want := rel.FilterRows(engine.Between(b.lo, b.hi))
				compressed, err := cl.Scan(ctx, ds.name, client.Between(b.lo, b.hi))
				if err != nil {
					t.Fatalf("compressed scan: %v", err)
				}
				raw, err := cl.ScanRaw(ctx, ds.name, client.Between(b.lo, b.hi))
				if err != nil {
					t.Fatalf("raw scan: %v", err)
				}
				for enc, got := range map[string][]float64{"compressed": compressed, "raw": raw} {
					if len(got) != len(want) {
						t.Fatalf("%s: %d rows, want %d", enc, len(got), len(want))
					}
					for i := range got {
						if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
							t.Fatalf("%s row %d: got %016x (%v), want %016x (%v)",
								enc, i, math.Float64bits(got[i]), got[i],
								math.Float64bits(want[i]), want[i])
						}
					}
				}
			})
		}
	}
}

// TestScanNegotiation pins the content negotiation itself: an Accept
// carrying application/x-alp-scan gets the framed stream (and the
// server reports compressed frames in /metrics), anything else keeps
// the raw float64 body and Content-Type.
func TestScanNegotiation(t *testing.T) {
	alp.EnableStats()
	defer alp.DisableStats()
	alp.ResetStats()
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	values := sweepDecimals(3 * vector.Size)
	cl := client.New(ts.URL)
	if _, err := cl.Ingest(context.Background(), "neg", values); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	get := func(accept string) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/columns/neg/scan", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("scan request: %v", err)
		}
		body := make([]byte, 0, 1<<16)
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		return resp, body
	}

	resp, body := get(alp.ScanStreamContentType)
	if ct := resp.Header.Get("Content-Type"); ct != alp.ScanStreamContentType {
		t.Fatalf("negotiated Content-Type = %q, want %q", ct, alp.ScanStreamContentType)
	}
	rows, err := alp.DecodeScanStream(body)
	if err != nil {
		t.Fatalf("DecodeScanStream: %v", err)
	}
	if trailer := resp.Trailer.Get(ScanRowsTrailer); trailer != strconv.Itoa(len(rows)) {
		t.Fatalf("trailer %q, decoded %d rows", trailer, len(rows))
	}
	if len(body) >= 8*len(rows) {
		t.Fatalf("compressed scan body is %d bytes for %d rows — not smaller than raw", len(body), len(rows))
	}

	resp, body = get("") // no negotiation: legacy raw body
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-alp-f64le" {
		t.Fatalf("default Content-Type = %q, want raw", ct)
	}
	if len(body) != 8*len(rows) {
		t.Fatalf("raw body %d bytes, want %d", len(body), 8*len(rows))
	}

	m := alp.ReadStats()
	if m.ScanFramesDense+m.ScanFramesRepacked+m.ScanFramesRaw == 0 {
		t.Fatal("no scan frames counted")
	}
	if m.ScanBytesSaved <= 0 {
		t.Fatalf("scan_bytes_saved = %d, want > 0", m.ScanBytesSaved)
	}
}

// truncatingScanHandler replays a prefix of a valid compressed scan
// stream while still claiming success (200, full-count trailer) — the
// adversarial server a client must not trust.
func truncatingScanHandler(stream []byte, cut, rows int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Trailer", ScanRowsTrailer)
		w.Header().Set("Content-Type", "application/x-alp-scan")
		w.Write(stream[:cut])
		w.Header().Set(ScanRowsTrailer, strconv.Itoa(rows))
	})
}

// TestScanTruncationSurfaces cuts the compressed stream mid-frame and
// mid-bitmap (and on a frame boundary with a lying trailer): the
// client must surface an error every time, never a silent partial
// result.
func TestScanTruncationSurfaces(t *testing.T) {
	values := sweepSpecials(3 * vector.Size)
	col := alp.Compress(values)
	stream, rows := col.BuildScanStream(math.Inf(-1), math.Inf(1))
	if rows != len(values)-countNaNs(values) {
		t.Fatalf("stream has %d rows", rows)
	}

	// Locate the first frame's payload to target the cuts: the dense
	// payload starts with count/total then the bitmap.
	frameStart := 5 // stream header
	payloadLen := int(binary.LittleEndian.Uint32(stream[frameStart+1:]))
	cuts := []struct {
		name string
		cut  int
	}{
		{"mid_header", 3},
		{"mid_frame_header", frameStart + 2},
		{"mid_bitmap", frameStart + 5 + 4 + 9},         // inside the selection bitmap words
		{"mid_payload", frameStart + 5 + payloadLen/2}, // inside the envelope
		{"mid_crc", frameStart + 5 + payloadLen + 2},
		{"frame_boundary", frameStart + 9 + payloadLen},
	}
	for _, c := range cuts {
		t.Run(c.name, func(t *testing.T) {
			if c.cut >= len(stream) {
				t.Fatalf("cut %d beyond stream of %d", c.cut, len(stream))
			}
			ts := httptest.NewServer(truncatingScanHandler(stream, c.cut, rows))
			defer ts.Close()
			cl := client.New(ts.URL, client.WithRetries(0))
			got, err := cl.Scan(context.Background(), "x", client.All())
			if err == nil {
				t.Fatalf("truncated stream (cut %d/%d) returned %d rows without error",
					c.cut, len(stream), len(got))
			}
			if !strings.Contains(err.Error(), "scan") {
				t.Fatalf("unexpected error shape: %v", err)
			}
		})
	}
}

func countNaNs(values []float64) int {
	n := 0
	for _, v := range values {
		if math.IsNaN(v) {
			n++
		}
	}
	return n
}
