package server

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/goalp/alp"
	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/metricstore"
	"github.com/goalp/alp/internal/vector"
)

// benchColumn ingests one ~10-row-group column into a fresh server and
// returns the HTTP client plus the equivalent in-process views, so the
// served and local paths aggregate identical storage.
func benchColumn(b *testing.B) (*client.Client, *engine.Relation, *format.Column) {
	b.Helper()
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	cl := client.New(ts.URL)
	values := dataset(10*102400, 42)
	if _, err := cl.Ingest(context.Background(), "bench", values); err != nil {
		b.Fatalf("ingest: %v", err)
	}
	b.SetBytes(int64(len(values) * 8))
	return cl, engine.BuildALP(values), format.EncodeColumn(values)
}

// BenchmarkAggServed measures a filtered aggregate through the full
// HTTP path: predicate parsing, pushdown scan, JSON response.
func BenchmarkAggServed(b *testing.B) {
	alp.DisableStats()
	cl, _, _ := benchColumn(b)
	pred := client.Between(80, 160)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Agg(ctx, "bench", pred); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggServedObsOn is the same served aggregate with the full
// observability layer recording: endpoint latency histograms, sampled
// stage histograms and the structured access path. The EXPERIMENTS.md
// obs-on/off table comes from this pair; the delta is the end-to-end
// cost of deep observability on a served workload.
func BenchmarkAggServedObsOn(b *testing.B) {
	cl, _, _ := benchColumn(b)
	alp.EnableStats()
	b.Cleanup(alp.DisableStats)
	pred := client.Between(80, 160)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Agg(ctx, "bench", pred); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggServedRecorderOn is the obs-on served aggregate with the
// metrics-history recorder additionally running at an aggressive 10ms
// scrape interval (1000x the default), so every benchmark iteration
// competes with live snapshot + delta + seal work. The delta against
// BenchmarkAggServedObsOn is the end-to-end cost of self-hosted
// metrics history; the reported bits/value is the compression the
// store achieved on the telemetry this very workload generated.
func BenchmarkAggServedRecorderOn(b *testing.B) {
	mon := metricstore.New(metricstore.Options{
		Interval:      10 * time.Millisecond,
		WindowSamples: 64,
	})
	srv := New(Options{MetricsHistory: mon})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	cl := client.New(ts.URL)
	values := dataset(10*102400, 42)
	if _, err := cl.Ingest(context.Background(), "bench", values); err != nil {
		b.Fatalf("ingest: %v", err)
	}
	b.SetBytes(int64(len(values) * 8))
	alp.EnableStats()
	b.Cleanup(alp.DisableStats)
	mon.ScrapeOnce()
	mon.Start()
	b.Cleanup(mon.Stop)
	pred := client.Between(80, 160)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Agg(ctx, "bench", pred); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	mon.Stop()
	mon.Flush()
	if st := mon.Stats(); st.SealedWindows > 0 {
		b.ReportMetric(st.BitsPerValue, "bits/value")
	}
}

// BenchmarkAggInProcess is the same aggregate on the same values
// without the network: the floor the served path is compared against.
func BenchmarkAggInProcess(b *testing.B) {
	_, rel, _ := benchColumn(b)
	pred := engine.Between(80, 160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel.FilterAgg(1, pred)
	}
}

// BenchmarkScanServed streams qualifying rows back over HTTP as raw
// little-endian float64s.
func BenchmarkScanServed(b *testing.B) {
	alp.DisableStats()
	cl, _, _ := benchColumn(b)
	pred := client.Between(80, 160)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Scan(ctx, "bench", pred); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanServedObsOn repeats the served scan with the collector
// on — the worst case for the observability layer, since the scan path
// additionally samples per-write HTTP histograms and per-vector stage
// kernels.
func BenchmarkScanServedObsOn(b *testing.B) {
	cl, _, _ := benchColumn(b)
	alp.EnableStats()
	b.Cleanup(alp.DisableStats)
	pred := client.Between(80, 160)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Scan(ctx, "bench", pred); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanInProcess gathers the same qualifying rows with the
// same zone-skip + FilterGatherVector loop handleScan runs, minus the
// serialization and the network.
func BenchmarkScanInProcess(b *testing.B) {
	_, _, col := benchColumn(b)
	lo, hi := 80.0, 160.0
	var sel [format.SelWords]uint64
	out := make([]float64, vector.Size)
	scratch := make([]int64, vector.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for v := 0; v < col.NumVectors(); v++ {
			if col.Zones != nil && !col.Zones.MayContain(v, lo, hi) {
				continue
			}
			n, _ := col.FilterGatherVector(v, lo, hi, sel[:], out, scratch)
			total += n
		}
		_ = total
	}
}
