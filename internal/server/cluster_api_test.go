// Tests for the cluster-facing API surface: partial aggregates,
// row-group-ranged scans and exports, and compressed ingest.
package server

import (
	"bytes"
	"context"
	"math"
	"testing"

	"github.com/goalp/alp"
	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/vector"
)

func TestAggPartialsMatchEngine(t *testing.T) {
	_, cl := newTestServer(t, Options{})
	ctx := context.Background()
	values := dataset(3*vector.RowGroupSize+999, 5)
	if _, err := cl.Ingest(ctx, "c", values); err != nil {
		t.Fatal(err)
	}
	rel := engine.BuildALPFromColumn("c", format.EncodeColumn(values))
	want, _ := rel.FilterAggPartials(1, engine.GE(100), nil)

	got, _, err := cl.AggPartials(ctx, "c", client.GE(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d partials, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i].Sum) != math.Float64bits(want[i].Sum) ||
			got[i].Count != want[i].Count ||
			math.Float64bits(got[i].Min) != math.Float64bits(want[i].Min) ||
			math.Float64bits(got[i].Max) != math.Float64bits(want[i].Max) {
			t.Fatalf("partial %d: %+v != %+v", i, got[i], want[i])
		}
	}

	// Subset request: server-local indexes, response in request order.
	sub, _, err := cl.AggPartials(ctx, "c", client.GE(100), []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 ||
		math.Float64bits(sub[0].Sum) != math.Float64bits(want[2].Sum) ||
		math.Float64bits(sub[1].Sum) != math.Float64bits(want[0].Sum) {
		t.Fatalf("subset partials wrong: %+v", sub)
	}

	counts, err := cl.CountPartials(ctx, "c", client.GE(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if counts[i] != want[i].Count {
			t.Fatalf("count partial %d: %d != %d", i, counts[i], want[i].Count)
		}
	}

	// Out-of-range subset is a 400, not a panic.
	if _, _, err := cl.AggPartials(ctx, "c", client.GE(100), []int{99}); err == nil {
		t.Fatal("out-of-range rgs accepted")
	}
}

func TestScanRowGroupRange(t *testing.T) {
	_, cl := newTestServer(t, Options{})
	ctx := context.Background()
	values := dataset(3*vector.RowGroupSize+1234, 6)
	if _, err := cl.Ingest(ctx, "c", values); err != nil {
		t.Fatal(err)
	}
	pred := client.GE(150)
	epred := engine.GE(150)

	// Expected rows of row-groups 1..2, in position order.
	var want []float64
	for _, v := range values[vector.RowGroupSize : 3*vector.RowGroupSize] {
		if epred.Match(v) {
			want = append(want, v)
		}
	}
	for _, compressed := range []bool{false, true} {
		payload, ct, rows, err := cl.ScanRange(ctx, "c", pred, 1, 2, compressed)
		if err != nil {
			t.Fatalf("compressed=%v: %v", compressed, err)
		}
		if rows != len(want) {
			t.Fatalf("compressed=%v: trailer %d rows, want %d", compressed, rows, len(want))
		}
		var got []float64
		if ct == alp.ScanStreamContentType {
			if got, err = alp.DecodeScanStream(payload); err != nil {
				t.Fatal(err)
			}
		} else {
			got = make([]float64, len(payload)/8)
			if err := decodeF64LEInto(payload, got); err != nil {
				t.Fatal(err)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("compressed=%v: %d rows, want %d", compressed, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("compressed=%v: row %d differs", compressed, i)
			}
		}
	}

	// Bad ranges are 400s.
	if _, _, _, err := cl.ScanRange(ctx, "c", pred, 3, 99, false); err == nil {
		t.Fatal("out-of-range scan accepted")
	}
	if _, _, _, err := cl.ScanRange(ctx, "c", pred, 2, 1, false); err == nil {
		t.Fatal("inverted scan range accepted")
	}
}

func TestDataRangeExportAndCompressedIngest(t *testing.T) {
	_, cl := newTestServer(t, Options{})
	ctx := context.Background()
	values := dataset(2*vector.RowGroupSize+777, 7)
	if _, err := cl.Ingest(ctx, "c", values); err != nil {
		t.Fatal(err)
	}

	// Ranged export is a standalone column holding exactly that range.
	data, err := cl.DataRange(ctx, "c", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	col, err := format.Unmarshal(data)
	if err != nil {
		t.Fatalf("ranged export does not parse: %v", err)
	}
	if col.N != vector.RowGroupSize {
		t.Fatalf("ranged export holds %d values", col.N)
	}

	// Re-ingest the exported range under a new name: no re-encode, and
	// queries against it answer for the range's values.
	if _, err := cl.IngestCompressed(ctx, "mid", data); err != nil {
		t.Fatal(err)
	}
	stored, err := cl.Compressed(ctx, "mid")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stored, data) {
		t.Fatal("compressed ingest did not store the stream verbatim")
	}
	agg, err := cl.Agg(ctx, "mid", client.All())
	if err != nil {
		t.Fatal(err)
	}
	rel := engine.BuildALPFromColumn("mid", col)
	want, _ := rel.FilterAgg(1, engine.Predicate{Lo: math.Inf(-1), Hi: math.Inf(1)})
	if math.Float64bits(agg.Sum) != math.Float64bits(want.Sum) || agg.Count != want.Count {
		t.Fatalf("agg over re-ingested range: %+v != %+v", agg, want)
	}

	// A corrupt compressed body must not bind.
	if _, err := cl.IngestCompressed(ctx, "bad", []byte("not a column")); err == nil {
		t.Fatal("corrupt compressed ingest accepted")
	}
	if _, err := cl.Info(ctx, "bad"); err == nil {
		t.Fatal("corrupt compressed ingest bound a column")
	}
}

func decodeF64LEInto(payload []byte, dst []float64) error {
	if len(payload) != len(dst)*8 {
		return errBadPayload
	}
	for i := range dst {
		dst[i] = math.Float64frombits(leU64(payload[i*8:]))
	}
	return nil
}

var errBadPayload = errorString("bad payload length")

type errorString string

func (e errorString) Error() string { return string(e) }

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
