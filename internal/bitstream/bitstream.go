// Package bitstream provides MSB-first bit-level readers and writers,
// the substrate shared by the XOR-family baselines (Gorilla, Chimp,
// Chimp128, Elf) which emit variable-length bit sequences per value —
// exactly the value-at-a-time layout whose cost ALP's vectorized design
// avoids.
package bitstream

import "errors"

// ErrShortStream is reported when a read runs past the end of the
// stream.
var ErrShortStream = errors.New("bitstream: read past end of stream")

// Writer accumulates bits MSB-first into a byte slice.
type Writer struct {
	buf  []byte
	cur  byte
	fill uint // bits used in cur
	bits int  // total bits written
}

// NewWriter returns a Writer with capacity preallocated for sizeHint
// bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint64) {
	w.cur = w.cur<<1 | byte(b&1)
	w.fill++
	w.bits++
	if w.fill == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.fill = 0, 0
	}
}

// WriteBits appends the n low bits of v, most significant first. n must
// be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	for n > 0 {
		free := 8 - w.fill
		if n < free {
			w.cur = w.cur<<n | byte(v&(1<<n-1))
			w.fill += n
			w.bits += int(n)
			return
		}
		w.cur = w.cur<<free | byte(v>>(n-free)&(1<<free-1))
		w.buf = append(w.buf, w.cur)
		w.cur, w.fill = 0, 0
		w.bits += int(free)
		n -= free
	}
}

// Len returns the total number of bits written.
func (w *Writer) Len() int { return w.bits }

// Bytes flushes any partial byte (zero-padded) and returns the stream.
// The Writer remains usable; further writes continue after the padding
// only if the bit count was already byte-aligned, so call Bytes once,
// when encoding is complete.
func (w *Writer) Bytes() []byte {
	if w.fill == 0 {
		return w.buf
	}
	out := make([]byte, len(w.buf), len(w.buf)+1)
	copy(out, w.buf)
	return append(out, w.cur<<(8-w.fill))
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int  // next byte
	cur  byte // current byte being consumed
	left uint // bits left in cur
	err  error
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Err returns the first error encountered (only ErrShortStream).
func (r *Reader) Err() error { return r.err }

// ReadBit consumes one bit. After the stream is exhausted it returns 0
// and records ErrShortStream.
func (r *Reader) ReadBit() uint64 {
	if r.left == 0 {
		if r.pos >= len(r.buf) {
			r.err = ErrShortStream
			return 0
		}
		r.cur = r.buf[r.pos]
		r.pos++
		r.left = 8
	}
	r.left--
	return uint64(r.cur>>r.left) & 1
}

// ReadBits consumes n bits, most significant first. n must be in
// [0, 64].
func (r *Reader) ReadBits(n uint) uint64 {
	var v uint64
	for n > 0 {
		if r.left == 0 {
			if r.pos >= len(r.buf) {
				r.err = ErrShortStream
				return v << n
			}
			r.cur = r.buf[r.pos]
			r.pos++
			r.left = 8
		}
		take := r.left
		if n < take {
			take = n
		}
		r.left -= take
		v = v<<take | uint64(r.cur>>r.left)&(1<<take-1)
		n -= take
	}
	return v
}
