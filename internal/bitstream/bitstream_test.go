package bitstream

import (
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter(16)
	w.WriteBits(0b101, 3)
	w.WriteBit(1)
	w.WriteBits(0xdeadbeef, 32)
	w.WriteBits(0, 0)
	w.WriteBits(^uint64(0), 64)
	if w.Len() != 3+1+32+64 {
		t.Fatalf("Len = %d, want 100", w.Len())
	}
	r := NewReader(w.Bytes())
	if got := r.ReadBits(3); got != 0b101 {
		t.Fatalf("got %#b", got)
	}
	if got := r.ReadBit(); got != 1 {
		t.Fatalf("got %d", got)
	}
	if got := r.ReadBits(32); got != 0xdeadbeef {
		t.Fatalf("got %#x", got)
	}
	if got := r.ReadBits(64); got != ^uint64(0) {
		t.Fatalf("got %#x", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xff})
	r.ReadBits(8)
	if r.Err() != nil {
		t.Fatal("no error expected yet")
	}
	if got := r.ReadBit(); got != 0 {
		t.Fatalf("got %d, want 0 after end", got)
	}
	if r.Err() != ErrShortStream {
		t.Fatalf("err = %v, want ErrShortStream", r.Err())
	}
}

func TestPartialByteFlush(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0b11, 2)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0b11000000 {
		t.Fatalf("got %08b", b)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		if len(vals) > len(widths) {
			vals = vals[:len(widths)]
		}
		w := NewWriter(len(vals) * 8)
		ws := make([]uint, len(vals))
		for i, v := range vals {
			n := uint(widths[i]%64) + 1
			ws[i] = n
			w.WriteBits(v&(1<<n-1), n)
		}
		r := NewReader(w.Bytes())
		for i, v := range vals {
			if got := r.ReadBits(ws[i]); got != v&(1<<ws[i]-1) {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedBitAndBits(t *testing.T) {
	w := NewWriter(8)
	for i := 0; i < 9; i++ { // cross a byte boundary with single bits
		w.WriteBit(uint64(i) & 1)
	}
	w.WriteBits(0x1ff, 9)
	r := NewReader(w.Bytes())
	for i := 0; i < 9; i++ {
		if got := r.ReadBit(); got != uint64(i)&1 {
			t.Fatalf("bit %d: got %d", i, got)
		}
	}
	if got := r.ReadBits(9); got != 0x1ff {
		t.Fatalf("got %#x", got)
	}
}
