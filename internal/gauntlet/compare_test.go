package gauntlet

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// testDoc builds a two-domain, two-codec document whose every metric
// is a round number, so tests can inject precise deltas.
func testDoc() *Doc {
	entry := func(ds, codec string) Entry {
		return Entry{Dataset: ds, Codec: codec, BitsPerValue: 16, CompressMVs: 100, DecompressMVs: 400, FilterMVs: 250}
	}
	return &Doc{
		SchemaVersion:  SchemaVersion,
		Date:           "2026-08-08",
		N:              4096,
		Repetitions:    5,
		NoiseBound:     0.02,
		CalibrationMVs: 1000,
		Domains: []DomainResult{
			{
				Domain:     "hpc",
				Entries:    []Entry{entry("HPC/msg-sweep3d", "alp"), entry("HPC/msg-sweep3d", "gorilla")},
				ServedScan: &ServedScan{Dataset: "HPC/msg-sweep3d", Rows: 2048, ScanMVs: 80},
			},
			{
				Domain:  "ml",
				Entries: []Entry{entry("ML/gradients", "alp"), entry("ML/gradients", "gorilla")},
			},
		},
	}
}

// mutate deep-copies the doc through JSON and applies fn.
func mutate(t *testing.T, doc *Doc, fn func(*Doc)) *Doc {
	t.Helper()
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	copyDoc, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fn(copyDoc)
	return copyDoc
}

func TestCompareCases(t *testing.T) {
	base := testDoc()
	cases := []struct {
		name    string
		fresh   func(*Doc)
		wantOK  bool
		wantErr bool
		// wantInDiff must all appear in the formatted report.
		wantInDiff []string
	}{
		{
			name:   "identical run passes",
			fresh:  func(*Doc) {},
			wantOK: true,
		},
		{
			name: "15pct throughput regression detected with per-metric diff",
			fresh: func(d *Doc) {
				d.Domains[0].Entries[0].DecompressMVs = 400 * 0.85
			},
			wantOK: false,
			wantInDiff: []string{
				"REGRESSION", "hpc", "HPC/msg-sweep3d", "alp", "decompress_mvs",
				"-15.0%", "limit -12.0%",
			},
		},
		{
			name: "11.5pct drop inside 10pct+noise tolerance passes",
			fresh: func(d *Doc) {
				// noise bound 0.02 on both sides -> limit is 12%.
				d.Domains[0].Entries[0].CompressMVs = 100 * 0.885
			},
			wantOK: true,
		},
		{
			name: "large improvement passes and is reported",
			fresh: func(d *Doc) {
				d.Domains[1].Entries[0].FilterMVs = 250 * 1.5
			},
			wantOK:     true,
			wantInDiff: []string{"improvement", "ml", "filter_mvs", "+50.0%"},
		},
		{
			name: "3pct ratio growth fails",
			fresh: func(d *Doc) {
				d.Domains[0].Entries[1].BitsPerValue = 16 * 1.03
			},
			wantOK:     false,
			wantInDiff: []string{"REGRESSION", "gorilla", "bits_per_value", "+3.0%", "limit +2.0%"},
		},
		{
			name: "1pct ratio growth passes (noise never widens the ratio rule but 2pct covers it)",
			fresh: func(d *Doc) {
				d.Domains[0].Entries[1].BitsPerValue = 16 * 1.01
			},
			wantOK: true,
		},
		{
			name: "missing entry fails",
			fresh: func(d *Doc) {
				d.Domains[1].Entries = d.Domains[1].Entries[:1]
			},
			wantOK:     false,
			wantInDiff: []string{"REGRESSION", "ml", "gorilla", "missing from fresh run"},
		},
		{
			name: "missing served scan fails",
			fresh: func(d *Doc) {
				d.Domains[0].ServedScan = nil
			},
			wantOK:     false,
			wantInDiff: []string{"REGRESSION", "served", "scan_mvs", "missing"},
		},
		{
			name: "served scan row drift fails",
			fresh: func(d *Doc) {
				d.Domains[0].ServedScan.Rows = 2047
			},
			wantOK:     false,
			wantInDiff: []string{"REGRESSION", "served", "rows", "correctness drift"},
		},
		{
			name: "served scan throughput regression fails",
			fresh: func(d *Doc) {
				d.Domains[0].ServedScan.ScanMVs = 80 * 0.8
			},
			wantOK:     false,
			wantInDiff: []string{"REGRESSION", "served", "scan_mvs", "-20.0%"},
		},
		{
			name: "NaN ratio is invalid and fails",
			fresh: func(d *Doc) {
				d.Domains[0].Entries[0].BitsPerValue = math.NaN()
			},
			wantOK:     false,
			wantInDiff: []string{"REGRESSION", "invalid bits_per_value value in fresh run"},
		},
		{
			name: "zero throughput is invalid and fails",
			fresh: func(d *Doc) {
				d.Domains[0].Entries[0].CompressMVs = 0
			},
			wantOK:     false,
			wantInDiff: []string{"REGRESSION", "invalid compress_mvs value in fresh run"},
		},
		{
			name: "new fresh-only entry is a note, not a failure",
			fresh: func(d *Doc) {
				d.Domains[1].Entries = append(d.Domains[1].Entries,
					Entry{Dataset: "ML/gradients", Codec: "elf", BitsPerValue: 20, CompressMVs: 50, DecompressMVs: 60, FilterMVs: 70})
			},
			wantOK:     true,
			wantInDiff: []string{"note", "elf", "new entry, not in baseline"},
		},
		{
			name: "machine-wide 30pct slowdown with matching calibration passes",
			fresh: func(d *Doc) {
				d.CalibrationMVs = 1000 * 0.7
				for i := range d.Domains {
					for j := range d.Domains[i].Entries {
						e := &d.Domains[i].Entries[j]
						e.CompressMVs *= 0.7
						e.DecompressMVs *= 0.7
						e.FilterMVs *= 0.7
					}
					if s := d.Domains[i].ServedScan; s != nil {
						s.ScanMVs *= 0.7
					}
				}
			},
			wantOK:     true,
			wantInDiff: []string{"calibration scale 0.700x", "slower"},
		},
		{
			name: "codec-only 30pct slowdown with steady calibration still fails",
			fresh: func(d *Doc) {
				d.Domains[0].Entries[0].DecompressMVs = 400 * 0.7
			},
			wantOK:     false,
			wantInDiff: []string{"REGRESSION", "decompress_mvs", "-30.0%"},
		},
		{
			name: "calibration scale clamps so a wild reading cannot hide a real regression",
			fresh: func(d *Doc) {
				// Calibration claims the machine is 10x slower; the clamp
				// holds the scale at 0.5, so a 70% drop is judged as
				// 0.3/0.5 - 1 = -40% and still fails.
				d.CalibrationMVs = 100
				d.Domains[0].Entries[0].DecompressMVs = 400 * 0.3
			},
			wantOK:     false,
			wantInDiff: []string{"REGRESSION", "decompress_mvs", "-40.0%", "calibration scale 0.500x"},
		},
		{
			name: "document without calibration compares unscaled",
			fresh: func(d *Doc) {
				d.CalibrationMVs = 0
				d.Domains[0].Entries[0].DecompressMVs = 400 * 0.85
			},
			wantOK:     false,
			wantInDiff: []string{"REGRESSION", "decompress_mvs", "-15.0%"},
		},
		{
			name: "schema version mismatch is an error",
			fresh: func(d *Doc) {
				d.SchemaVersion = SchemaVersion + 1
			},
			wantErr: true,
		},
		{
			name: "values_per_dataset mismatch is an error",
			fresh: func(d *Doc) {
				d.N = 8192
			},
			wantErr: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := mutate(t, base, tc.fresh)
			rep, err := Compare(base, fresh)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Compare: want error, got report OK=%v", rep.OK())
				}
				return
			}
			if err != nil {
				t.Fatalf("Compare: %v", err)
			}
			if rep.OK() != tc.wantOK {
				var out bytes.Buffer
				rep.Format(&out)
				t.Fatalf("OK() = %v, want %v; report:\n%s", rep.OK(), tc.wantOK, out.String())
			}
			var out bytes.Buffer
			rep.Format(&out)
			for _, want := range tc.wantInDiff {
				if !strings.Contains(out.String(), want) {
					t.Errorf("report missing %q; report:\n%s", want, out.String())
				}
			}
		})
	}
}

// TestNoiseAllowanceCapped: a run reporting absurd noise cannot grant
// itself unlimited slack — the allowance caps at MaxNoiseAllowance.
func TestNoiseAllowanceCapped(t *testing.T) {
	base := testDoc()
	fresh := mutate(t, base, func(d *Doc) {
		d.NoiseBound = 0.9
		d.Domains[0].Entries[0].DecompressMVs = 400 * 0.55 // -45%
	})
	rep, err := Compare(base, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ThroughputTol != ThroughputTolerance+MaxNoiseAllowance {
		t.Fatalf("tolerance %v, want capped %v", rep.ThroughputTol, ThroughputTolerance+MaxNoiseAllowance)
	}
	if rep.OK() {
		t.Fatal("-45% drop passed under capped tolerance")
	}
}

// TestCompareCountsAllMetrics pins the comparison surface: 4 metrics
// per entry plus one served-scan metric per domain that has one.
func TestCompareCountsAllMetrics(t *testing.T) {
	base := testDoc()
	rep, err := Compare(base, base)
	if err != nil {
		t.Fatal(err)
	}
	want := 4*4 + 1 // 4 entries x 4 metrics + 1 served scan
	if rep.Compared != want {
		t.Fatalf("Compared = %d, want %d", rep.Compared, want)
	}
}
