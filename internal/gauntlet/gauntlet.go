// Package gauntlet is the cross-domain benchmark-and-regression
// subsystem: FCBench shows that no float codec wins across HPC, time
// series, observability and ML-weight workloads, which is exactly the
// adaptivity claim ALP makes — so every codec in the repo is run across
// every domain continuously, and a committed baseline turns performance
// drift into a failing check instead of an anecdote.
//
// Measure runs all nine codecs (alp, alp_rd, gorilla, chimp, chimp128,
// patas, elf, pde, gp) over four datasets per domain — three float64
// regimes plus the domain's widened-float32 cell — recording
// compression ratio (bits/value) and compress / decompress / filter
// throughput in MV/s, plus one served end-to-end ALPS scan per domain
// through a loopback HTTP server. Noise control is median-of-K: each
// metric is the median of Options.Reps independent measurement windows
// and the document records the worst observed relative half-spread as
// its noise bound, which the comparator (compare.go) adds to its
// regression threshold.
//
// The output is a schema-versioned, dated BENCH_gauntlet.json written
// by `make gauntlet` (cmd/alpgauntlet); `make gauntlet-check` re-runs
// the measurement and fails with a per-metric diff on >10% throughput
// or >2% ratio regression against the committed baseline.
package gauntlet

import (
	"context"
	"fmt"
	"io"
	"math"
	mathbits "math/bits"
	"net/http/httptest"
	"runtime"
	"text/tabwriter"
	"time"

	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/alprd"
	"github.com/goalp/alp/internal/bench"
	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/server"
	"github.com/goalp/alp/internal/vector"
)

// SchemaVersion is the BENCH_gauntlet.json document schema. Bump it on
// any field change; the comparator refuses to diff across versions.
const SchemaVersion = 1

// Options controls a gauntlet run.
type Options struct {
	N      int           // values per dataset
	MinDur time.Duration // minimum length of one measurement window
	Reps   int           // windows per metric (the K in median-of-K)
	// Domains restricts the run to the named domains; nil means all.
	Domains []string
}

// DefaultOptions is the `make gauntlet` configuration: two row-groups
// per dataset and median-of-5 windows of >= 10ms each.
func DefaultOptions() Options {
	return Options{N: dataset.DefaultN, MinDur: 10 * time.Millisecond, Reps: 5}
}

// Entry is one (dataset, codec) measurement. Throughputs are MV/s —
// millions of column values processed per wall second. FilterMVs is a
// single-threaded filtered aggregate over the middle half of the value
// range: the encoded-domain pushdown path for alp, decode-then-filter
// for codecs without one (the honest comparison — that is what a query
// on that codec costs).
type Entry struct {
	Dataset       string  `json:"dataset"`
	Codec         string  `json:"codec"`
	BitsPerValue  float64 `json:"bits_per_value"`
	CompressMVs   float64 `json:"compress_mvs"`
	DecompressMVs float64 `json:"decompress_mvs"`
	FilterMVs     float64 `json:"filter_mvs"`
}

// ServedScan is the per-domain end-to-end point: the domain's first
// dataset ingested into an alpserved registry over loopback HTTP and
// scanned through the negotiated ALPS wire with a middle-half
// predicate, decoded client-side.
type ServedScan struct {
	Dataset string  `json:"dataset"`
	Rows    int     `json:"rows"`
	ScanMVs float64 `json:"scan_mvs"`
}

// DomainResult groups one domain's entries.
type DomainResult struct {
	Domain     string      `json:"domain"`
	Entries    []Entry     `json:"entries"`
	ServedScan *ServedScan `json:"served_scan,omitempty"`
}

// Doc is the whole BENCH_gauntlet.json document.
type Doc struct {
	SchemaVersion int     `json:"schema_version"`
	Date          string  `json:"date"`
	GoVersion     string  `json:"go_version"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	CPUs          int     `json:"cpus"`
	N             int     `json:"values_per_dataset"`
	Repetitions   int     `json:"repetitions"`
	NoiseBound    float64 `json:"noise_bound"`
	// CalibrationMVs is the throughput of a fixed pure-CPU reference
	// kernel measured alongside the codecs (see calibrate). The
	// comparator rescales baseline throughputs by the two documents'
	// calibration ratio, so a machine-wide speed shift between the
	// baseline run and the fresh run — frequency scaling, a noisy
	// neighbour — cancels out instead of reading as a regression. The
	// kernel is not part of the code under test, so per-codec
	// regressions survive the normalization intact.
	CalibrationMVs float64        `json:"calibration_mvs"`
	Domains        []DomainResult `json:"domains"`
}

// DomainSuite names the datasets one domain contributes to the run.
type DomainSuite struct {
	Domain   string
	Datasets []string
}

// Suite is the gauntlet's dataset matrix: three float64 datasets per
// domain, chosen to span the regimes inside each domain (for the paper
// domains: a low-precision walk, a high-precision walk and a
// duplicate-heavy column for time series; a zero-heavy workbook, a
// mixed-precision monetary column and a real-double coordinate column
// for db), plus the domain's float32 cell (dataset.Extended32) — the
// same fingerprint stored at single precision, appended last so each
// domain's served-scan point stays on its first float64 dataset.
func Suite() []DomainSuite {
	suites := []DomainSuite{
		{dataset.DomainHPC, []string{"HPC/msg-sweep3d", "HPC/num-brain", "HPC/turbulence"}},
		{dataset.DomainTimeSeries, []string{"City-Temp", "Basel-temp", "Stocks-USA"}},
		{dataset.DomainObservability, []string{"Obs/cpu-util", "Obs/latency-ms", "Obs/mem-rss"}},
		{dataset.DomainDB, []string{"Gov/10", "CMS/1", "POI-lat"}},
		{dataset.DomainML, []string{"ML/weights-f32", "ML/gradients", "ML/embeddings"}},
	}
	for _, d := range dataset.Extended32() {
		for i := range suites {
			if suites[i].Domain == d.Domain {
				suites[i].Datasets = append(suites[i].Datasets, d.Name)
			}
		}
	}
	return suites
}

// measureFn measures one codec on one dataset and returns the entry
// (Dataset left blank) plus the worst relative spread seen across its
// metrics.
type measureFn func(values []float64, lo, hi float64, opt Options) (Entry, float64)

type codec struct {
	Name    string
	measure measureFn
}

// codecs returns the nine codecs in canonical order — the same set as
// the cross-codec differential harness (difftest_test.go).
func codecs() []codec {
	list := []codec{
		{Name: "alp", measure: measureALP},
		{Name: "alp_rd", measure: measureALPRD},
	}
	for _, b := range bench.Baselines() {
		name := map[string]string{
			"Gorilla": "gorilla", "Chimp": "chimp", "Chimp128": "chimp128",
			"Patas": "patas", "PDE": "pde", "Elf": "elf", "Zstd*": "gp",
		}[b.Name]
		comp, decomp := b.Compress, b.Decompress
		list = append(list, codec{Name: name, measure: streamMeasurer(name, comp, decomp)})
	}
	return list
}

// CodecNames returns the nine codec names in run order.
func CodecNames() []string {
	var names []string
	for _, c := range codecs() {
		names = append(names, c.Name)
	}
	return names
}

// midRange returns the middle half of the observed value range — the
// shared filter predicate, selective enough that zone maps, kernels and
// exception patching all participate.
func midRange(values []float64) (lo, hi float64) {
	lo, hi = values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	quarter := (hi - lo) / 4
	return lo + quarter, hi - quarter
}

func mvs(n int, sec float64) float64 {
	if sec <= 0 {
		return 0
	}
	return float64(n) / sec / 1e6
}

// calibrationSink keeps the reference kernel's result observable so the
// compiler can't eliminate the loop.
var calibrationSink uint64

// calibrate times the fixed reference kernel: a xorshift-filled buffer
// folded with rotate-xor-add, pure CPU and frozen forever. Its absolute
// MV/s means nothing; only the ratio between two documents' values is
// used (machine-speed normalization in Compare).
func calibrate(opt Options) (calMVs, spread float64) {
	const n = 1 << 16
	buf := make([]uint64, n)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = x
	}
	sec, spread := bench.MeasureMedianSeconds(func() {
		s := uint64(0)
		for _, v := range buf {
			s += mathbits.RotateLeft64(v^s, 13)
		}
		calibrationSink += s
	}, opt.MinDur, opt.Reps)
	return mvs(n, sec), spread
}

// measureALP measures the adaptive format path: full-column encode
// (sampling included — that is what ingest costs), vector-at-a-time
// fused decode into a preallocated buffer, and the encoded-domain
// pushdown aggregate.
func measureALP(values []float64, lo, hi float64, opt Options) (Entry, float64) {
	col := format.EncodeColumn(values)
	dst := make([]float64, len(values))
	scratch := make([]int64, vector.Size)
	nv := col.NumVectors()

	compSec, s1 := bench.MeasureMedianSeconds(func() { format.EncodeColumn(values) }, opt.MinDur, opt.Reps)
	decSec, s2 := bench.MeasureMedianSeconds(func() {
		off := 0
		for i := 0; i < nv; i++ {
			off += col.DecodeVector(i, dst[off:], scratch)
		}
	}, opt.MinDur, opt.Reps)

	rel := engine.BuildALP(values)
	pred := engine.Between(lo, hi)
	filtSec, s3 := bench.MeasureMedianSeconds(func() { rel.FilterAgg(1, pred) }, opt.MinDur, opt.Reps)

	return Entry{
		Codec:         "alp",
		BitsPerValue:  col.BitsPerValue(),
		CompressMVs:   mvs(len(values), compSec),
		DecompressMVs: mvs(len(values), decSec),
		FilterMVs:     mvs(len(values), filtSec),
	}, math.Max(s1, math.Max(s2, s3))
}

// measureALPRD drives the ALP_rd scheme directly (not via the sampler),
// so every domain exercises the real-double cutter even where the
// format layer would pick the decimal scheme. Row-group sampling runs
// once up front and is excluded, as in the paper's §4.2; the filter is
// decode-then-filter — rd has no encoded-domain pushdown.
func measureALPRD(values []float64, lo, hi float64, opt Options) (Entry, float64) {
	n := len(values)
	enc := alprd.Sample(values)
	nv := vector.VectorsIn(n)
	vecs := make([]alprd.Vector, nv)
	encodeAll := func() {
		for i := 0; i < nv; i++ {
			vlo, vhi := vector.Bounds(i, n)
			vecs[i] = enc.EncodeVector(values[vlo:vhi])
		}
	}
	encodeAll()
	bits := float64(enc.HeaderBits())
	for i := range vecs {
		bits += float64(enc.SizeBits(&vecs[i]))
	}

	dst := make([]float64, n)
	decodeAll := func() {
		for i := 0; i < nv; i++ {
			vlo, vhi := vector.Bounds(i, n)
			enc.DecodeVector(&vecs[i], dst[vlo:vhi])
		}
	}

	compSec, s1 := bench.MeasureMedianSeconds(encodeAll, opt.MinDur, opt.Reps)
	decSec, s2 := bench.MeasureMedianSeconds(decodeAll, opt.MinDur, opt.Reps)
	filtSec, s3 := bench.MeasureMedianSeconds(func() {
		decodeAll()
		sum, count := 0.0, 0
		for _, v := range dst {
			if v >= lo && v <= hi {
				sum += v
				count++
			}
		}
		_ = sum
		_ = count
	}, opt.MinDur, opt.Reps)

	return Entry{
		Codec:         "alp_rd",
		BitsPerValue:  bits / float64(n),
		CompressMVs:   mvs(n, compSec),
		DecompressMVs: mvs(n, decSec),
		FilterMVs:     mvs(n, filtSec),
	}, math.Max(s1, math.Max(s2, s3))
}

// streamMeasurer measures a byte-stream codec: whole-column compress,
// decompress into a preallocated buffer, and a filtered aggregate over
// an engine relation built from the codec (which decodes everything and
// filters in the float domain — those codecs' real query cost).
func streamMeasurer(name string, comp func([]float64) []byte, decomp func([]float64, []byte) error) measureFn {
	return func(values []float64, lo, hi float64, opt Options) (Entry, float64) {
		data := comp(values)
		dst := make([]float64, len(values))

		compSec, s1 := bench.MeasureMedianSeconds(func() { comp(values) }, opt.MinDur, opt.Reps)
		decSec, s2 := bench.MeasureMedianSeconds(func() {
			if err := decomp(dst, data); err != nil {
				panic(name + ": " + err.Error())
			}
		}, opt.MinDur, opt.Reps)

		rel := engine.BuildStream(name, values, comp, decomp)
		pred := engine.Between(lo, hi)
		filtSec, s3 := bench.MeasureMedianSeconds(func() { rel.FilterAgg(1, pred) }, opt.MinDur, opt.Reps)

		return Entry{
			Codec:         name,
			BitsPerValue:  float64(len(data)) * 8 / float64(len(values)),
			CompressMVs:   mvs(len(values), compSec),
			DecompressMVs: mvs(len(values), decSec),
			FilterMVs:     mvs(len(values), filtSec),
		}, math.Max(s1, math.Max(s2, s3))
	}
}

// Measure runs the gauntlet and returns the document. The served-scan
// points share one loopback httptest server; the requester is the typed
// client, so the measured path is exactly what a remote reader pays
// (HTTP + ALPS wire decode), minus a real network.
func Measure(opt Options) (*Doc, error) {
	if opt.N <= 0 {
		opt.N = dataset.DefaultN
	}
	if opt.Reps < 1 {
		opt.Reps = 1
	}
	if opt.MinDur <= 0 {
		opt.MinDur = 10 * time.Millisecond
	}
	want := func(domain string) bool {
		if len(opt.Domains) == 0 {
			return true
		}
		for _, d := range opt.Domains {
			if d == domain {
				return true
			}
		}
		return false
	}

	doc := &Doc{
		SchemaVersion: SchemaVersion,
		Date:          time.Now().UTC().Format("2006-01-02"),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		N:             opt.N,
		Repetitions:   opt.Reps,
	}

	srv := server.New(server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	cal, calSpread := calibrate(opt)
	doc.CalibrationMVs = cal
	noise := calSpread
	for _, ds := range Suite() {
		if !want(ds.Domain) {
			continue
		}
		dr := DomainResult{Domain: ds.Domain}
		for di, name := range ds.Datasets {
			d, ok := dataset.ByName(name)
			if !ok {
				return nil, fmt.Errorf("gauntlet dataset %q not in registry", name)
			}
			values := d.Generate(opt.N)
			lo, hi := midRange(values)
			for _, c := range codecs() {
				e, spread := c.measure(values, lo, hi, opt)
				e.Dataset = name
				dr.Entries = append(dr.Entries, e)
				noise = math.Max(noise, spread)
			}
			if di == 0 {
				served, spread, err := measureServed(ctx, cl, ds.Domain, name, values, lo, hi, opt)
				if err != nil {
					return nil, fmt.Errorf("gauntlet served scan (%s): %w", ds.Domain, err)
				}
				dr.ServedScan = served
				noise = math.Max(noise, spread)
			}
		}
		doc.Domains = append(doc.Domains, dr)
	}
	// Round the recorded bound so the committed JSON diffs stay readable.
	doc.NoiseBound = math.Round(noise*1e4) / 1e4
	return doc, nil
}

// measureServed ingests the dataset as the domain's column and times
// client ALPS scans with the middle-half predicate, verifying the row
// count against the in-process engine on every call.
func measureServed(ctx context.Context, cl *client.Client, domain, name string, values []float64, lo, hi float64, opt Options) (*ServedScan, float64, error) {
	if _, err := cl.Ingest(ctx, domain, values); err != nil {
		return nil, 0, fmt.Errorf("ingest: %w", err)
	}
	rows := int(engine.BuildALP(values).FilterCount(1, engine.Between(lo, hi)))
	pred := client.Between(lo, hi)
	scan := func() {
		got, err := cl.Scan(ctx, domain, pred)
		if err != nil {
			panic("served scan: " + err.Error())
		}
		if len(got) != rows {
			panic(fmt.Sprintf("served scan returned %d rows, in-process %d", len(got), rows))
		}
	}
	sec, spread := bench.MeasureMedianSeconds(scan, opt.MinDur, opt.Reps)
	return &ServedScan{Dataset: name, Rows: rows, ScanMVs: mvs(len(values), sec)}, spread, nil
}

// WriteTable prints the per-domain results as the EXPERIMENTS.md
// markdown table, with a winner line per domain echoing FCBench's
// no-universal-winner finding.
func WriteTable(w io.Writer, doc *Doc) {
	fmt.Fprintf(w, "Cross-domain gauntlet, %d values/dataset, median of %d windows (ratio in bits/value, throughput in MV/s)\n",
		doc.N, doc.Repetitions)
	for _, dr := range doc.Domains {
		fmt.Fprintf(w, "\n## domain %s\n\n", dr.Domain)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "dataset\tcodec\tbits/value\tcompress\tdecompress\tfilter")
		for _, e := range dr.Entries {
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.1f\t%.1f\t%.1f\n",
				e.Dataset, e.Codec, e.BitsPerValue, e.CompressMVs, e.DecompressMVs, e.FilterMVs)
		}
		tw.Flush()
		if best := domainWinner(dr.Entries); best != "" {
			fmt.Fprintf(w, "best ratio: %s", best)
			if dr.ServedScan != nil {
				fmt.Fprintf(w, "; served ALPS scan on %s: %.1f MV/s (%d rows)",
					dr.ServedScan.Dataset, dr.ServedScan.ScanMVs, dr.ServedScan.Rows)
			}
			fmt.Fprintln(w)
		}
	}
}

// domainWinner names the codec with the best mean compression ratio
// across the domain's datasets.
func domainWinner(entries []Entry) string {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, e := range entries {
		sums[e.Codec] += e.BitsPerValue
		counts[e.Codec]++
	}
	best, bestBits := "", math.Inf(1)
	for _, c := range CodecNames() {
		if n := counts[c]; n > 0 {
			if mean := sums[c] / float64(n); mean < bestBits {
				best, bestBits = c, mean
			}
		}
	}
	if best == "" {
		return ""
	}
	return fmt.Sprintf("%s (%.2f bits/value mean)", best, bestBits)
}
