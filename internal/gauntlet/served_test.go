package gauntlet

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"

	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/server"
)

// TestServedGauntletSmoke is the served-path smoke behind `make
// server-race`: one dataset per domain runs end to end — generate,
// ingest over HTTP, scan through the negotiated ALPS wire — and the
// decoded rows must be bit-identical to the in-process engine's
// FilterRows, across every domain's value shapes (full-mantissa HPC
// fields, zero-heavy workbooks, widened float32 weights). -short and
// the race detector are both respected: the dataset size is small and
// there is no timing assertion.
func TestServedGauntletSmoke(t *testing.T) {
	n := 4 * 1024
	if testing.Short() {
		n = 2048
	}

	srv := server.New(server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	for _, ds := range Suite() {
		name := ds.Datasets[0]
		t.Run(ds.Domain, func(t *testing.T) {
			d, ok := dataset.ByName(name)
			if !ok {
				t.Fatalf("dataset %q not in registry", name)
			}
			values := d.Generate(n)
			lo, hi := midRange(values)

			if _, err := cl.Ingest(ctx, ds.Domain, values); err != nil {
				t.Fatalf("ingest: %v", err)
			}
			got, err := cl.Scan(ctx, ds.Domain, client.Between(lo, hi))
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
			want := engine.BuildALP(values).FilterRows(engine.Between(lo, hi))
			if len(got) != len(want) {
				t.Fatalf("served scan returned %d rows, in-process %d", len(got), len(want))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("row %d: served %x, in-process %x", i,
						math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		})
	}
}
