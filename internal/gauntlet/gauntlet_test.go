package gauntlet

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/goalp/alp/internal/dataset"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_gauntlet.json from the current schema")

// smokeOptions keeps a full 5-domain x 9-codec measurement cheap
// enough for the regular test run: two vectors per dataset, two
// 200-microsecond windows per metric.
func smokeOptions() Options {
	return Options{N: 2048, MinDur: 200 * time.Microsecond, Reps: 2}
}

func TestSuiteResolvesAndCoversDomains(t *testing.T) {
	suite := Suite()
	if len(suite) < 4 {
		t.Fatalf("suite covers %d domains, want >= 4", len(suite))
	}
	domains := map[string]bool{}
	for _, ds := range suite {
		domains[ds.Domain] = true
		if len(ds.Datasets) < 3 {
			t.Errorf("domain %s has %d datasets, want >= 3", ds.Domain, len(ds.Datasets))
		}
		for _, name := range ds.Datasets {
			d, ok := dataset.ByName(name)
			if !ok {
				t.Errorf("suite dataset %q not in registry", name)
				continue
			}
			if d.Domain != ds.Domain {
				t.Errorf("dataset %q registered under domain %q, suite lists it under %q", name, d.Domain, ds.Domain)
			}
		}
	}
	for _, dom := range dataset.Domains() {
		if !domains[dom] {
			t.Errorf("registry domain %q missing from suite", dom)
		}
	}
	if got := len(CodecNames()); got != 9 {
		t.Fatalf("gauntlet runs %d codecs, want 9", got)
	}
}

// TestMeasureSmoke runs the real measurement end to end at toy sizes
// and checks document shape and sanity: every domain x all 9 codecs,
// finite positive metrics, a served scan per domain, and a self-compare
// that passes the gate.
func TestMeasureSmoke(t *testing.T) {
	doc, err := Measure(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d, want %d", doc.SchemaVersion, SchemaVersion)
	}
	if doc.Repetitions != 2 {
		t.Fatalf("repetitions %d, want 2", doc.Repetitions)
	}
	if doc.NoiseBound < 0 || math.IsNaN(doc.NoiseBound) {
		t.Fatalf("noise bound %v", doc.NoiseBound)
	}
	if len(doc.Domains) < 4 {
		t.Fatalf("measured %d domains, want >= 4", len(doc.Domains))
	}
	codecSet := map[string]bool{}
	for _, c := range CodecNames() {
		codecSet[c] = true
	}
	for _, dr := range doc.Domains {
		perDataset := map[string]map[string]bool{}
		for _, e := range dr.Entries {
			if !codecSet[e.Codec] {
				t.Errorf("%s/%s: unknown codec %q", dr.Domain, e.Dataset, e.Codec)
			}
			for name, v := range map[string]float64{
				"bits_per_value": e.BitsPerValue, "compress_mvs": e.CompressMVs,
				"decompress_mvs": e.DecompressMVs, "filter_mvs": e.FilterMVs,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
					t.Errorf("%s/%s %s: %s = %v", dr.Domain, e.Dataset, e.Codec, name, v)
				}
			}
			if perDataset[e.Dataset] == nil {
				perDataset[e.Dataset] = map[string]bool{}
			}
			perDataset[e.Dataset][e.Codec] = true
		}
		for ds, seen := range perDataset {
			if len(seen) != 9 {
				t.Errorf("%s/%s: %d codecs measured, want 9", dr.Domain, ds, len(seen))
			}
		}
		if dr.ServedScan == nil {
			t.Errorf("domain %s: no served scan point", dr.Domain)
		} else if dr.ServedScan.ScanMVs <= 0 || dr.ServedScan.Rows <= 0 {
			t.Errorf("domain %s: served scan %+v", dr.Domain, *dr.ServedScan)
		}
	}

	rep, err := Compare(doc, doc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		var out bytes.Buffer
		rep.Format(&out)
		t.Fatalf("self-compare failed:\n%s", out.String())
	}

	// The acceptance scenario: inject a synthetic 15% decompress
	// regression into a fresh copy and require the gate to catch it
	// with a per-metric diff.
	fresh := mutate(t, doc, func(d *Doc) {
		d.Domains[0].Entries[0].DecompressMVs *= 0.85
		// Pin documented noise so the tolerance is the deterministic
		// 10% + 2% = 12% regardless of how noisy this test host is.
		d.NoiseBound = 0.02
	})
	base := mutate(t, doc, func(d *Doc) { d.NoiseBound = 0.02 })
	rep, err = Compare(base, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("synthetic 15% throughput regression was not detected")
	}
	var out bytes.Buffer
	rep.Format(&out)
	for _, want := range []string{"REGRESSION", "decompress_mvs", "-15.0%"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Errorf("regression report missing %q:\n%s", want, out.String())
		}
	}

	// The table writer must render every domain without panicking.
	var table bytes.Buffer
	WriteTable(&table, doc)
	for _, dr := range doc.Domains {
		if !bytes.Contains(table.Bytes(), []byte(dr.Domain)) {
			t.Errorf("table missing domain %s", dr.Domain)
		}
	}
}

// TestDomainFilter restricts a run to one domain.
func TestDomainFilter(t *testing.T) {
	opt := smokeOptions()
	opt.Domains = []string{dataset.DomainML}
	doc, err := Measure(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Domains) != 1 || doc.Domains[0].Domain != dataset.DomainML {
		t.Fatalf("domain filter produced %+v", doc.Domains)
	}
}

// TestGoldenGauntletDoc pins the on-disk document schema: the checked-
// in fixture must parse, survive a write-read round trip unchanged, and
// re-encode byte-identically. Schema changes must bump SchemaVersion
// and regenerate the fixture (go test ./internal/gauntlet
// -run Golden -update-golden) — i.e. a conscious format break.
func TestGoldenGauntletDoc(t *testing.T) {
	path := filepath.Join("testdata", "golden_gauntlet.json")
	if *updateGolden {
		doc := testDoc()
		var buf bytes.Buffer
		if err := doc.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatalf("golden fixture does not re-encode byte-identically; run -update-golden after a conscious schema change")
	}
	again, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc, again) {
		t.Fatal("write-read round trip changed the document")
	}
	rep, err := Compare(doc, doc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatal("golden fixture fails self-comparison")
	}
}

// TestGateRetries exercises the re-measure pass both ways. Toy-scale
// windows on a loaded host can swing an order of magnitude between
// runs, so the pass case uses a baseline slackened 100x below a real
// measurement (any sane re-run clears it) and the fail case a baseline
// 100x above (no re-run can reach it) — the retry machinery itself is
// asserted via the progress log and the returned fresh document.
func TestGateRetries(t *testing.T) {
	opt := smokeOptions()
	opt.Domains = []string{dataset.DomainTimeSeries}
	base, err := Measure(opt)
	if err != nil {
		t.Fatal(err)
	}
	scaled := func(factor float64) *Doc {
		return mutate(t, base, func(d *Doc) {
			for i := range d.Domains {
				for j := range d.Domains[i].Entries {
					e := &d.Domains[i].Entries[j]
					e.CompressMVs *= factor
					e.DecompressMVs *= factor
					e.FilterMVs *= factor
				}
				if s := d.Domains[i].ServedScan; s != nil {
					s.ScanMVs *= factor
				}
			}
		})
	}

	var progress bytes.Buffer
	_, rep, err := Gate(scaled(0.01), opt, 1, &progress)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		var out bytes.Buffer
		rep.Format(&out)
		t.Fatalf("gate vs 100x-slackened baseline failed:\n%s", out.String())
	}

	fresh, rep, err := Gate(scaled(100), opt, 1, &progress)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("gate vs 100x-throughput baseline passed")
	}
	if fresh == nil || len(fresh.Domains) != 1 {
		t.Fatalf("gate returned fresh doc %+v", fresh)
	}
	if !bytes.Contains(progress.Bytes(), []byte("re-measuring")) {
		t.Errorf("gate never reported a retry pass:\n%s", progress.String())
	}
}

// TestFlaggedCells checks that only re-measurable regressions reach the
// retry pass: codec cells and served points, deduplicated, with missing
// entries and row-count drift excluded.
func TestFlaggedCells(t *testing.T) {
	rep := &Report{Regressions: []Diff{
		{Domain: "hpc", Dataset: "a", Codec: "alp", Metric: "compress_mvs"},
		{Domain: "hpc", Dataset: "a", Codec: "alp", Metric: "filter_mvs"},
		{Domain: "hpc", Dataset: "b", Codec: "gorilla", Metric: "decompress_mvs"},
		{Domain: "ml", Dataset: "c", Codec: "served", Metric: "scan_mvs"},
		{Domain: "ml", Dataset: "c", Codec: "served", Metric: "rows",
			Reason: "served scan row count changed on fixed-seed data (correctness drift)"},
		{Domain: "db", Dataset: "d", Codec: "elf", Metric: "compress_mvs",
			Reason: "present in baseline, missing from fresh run"},
	}}
	cells, served := flaggedCells(rep)
	wantCells := []cellKey{{"hpc", "a", "alp"}, {"hpc", "b", "gorilla"}}
	if !reflect.DeepEqual(cells, wantCells) {
		t.Errorf("cells = %v, want %v", cells, wantCells)
	}
	if !reflect.DeepEqual(served, []string{"ml"}) {
		t.Errorf("served = %v, want [ml]", served)
	}
}
