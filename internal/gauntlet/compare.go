package gauntlet

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// The regression gate diffs a fresh gauntlet run against a committed
// baseline, metric by metric. The rules:
//
//   - throughput (compress/decompress/filter/served-scan MV/s) may not
//     drop more than ThroughputTolerance plus the documented
//     measurement noise — the larger of the two documents' recorded
//     noise bounds, capped at MaxNoiseAllowance so a noisy run can
//     never grant itself unlimited slack;
//   - before the throughput rule applies, baseline throughputs are
//     rescaled by the documents' calibration ratio (clamped to
//     [MinCalibrationScale, MaxCalibrationScale]) — a machine-wide
//     speed shift between runs is the machine's regression, not the
//     code's;
//   - compression ratio (bits/value) may not grow more than
//     RatioTolerance, with no noise allowance: generation is
//     fixed-seed (see dataset.Seed), so ratios are deterministic and
//     any growth is a code change;
//   - an entry present in the baseline but missing from the fresh run
//     is a regression (a codec or dataset silently dropped out);
//   - a NaN, infinite or non-positive metric on either side is
//     reported as invalid and fails the check;
//   - comparing across schema versions or differing values_per_dataset
//     is an error, not a diff — the numbers would be meaningless.
//
// Improvements and baseline-less new entries are reported but never
// fail the check.
const (
	// ThroughputTolerance is the fractional throughput drop that fails
	// the gate (the ROADMAP's ">10% regression" rule).
	ThroughputTolerance = 0.10
	// RatioTolerance is the fractional bits/value growth that fails.
	RatioTolerance = 0.02
	// MaxNoiseAllowance caps how much documented measurement noise can
	// widen the throughput tolerance. The cap matters on quiet machines
	// (a dedicated runner documents 2-5% noise and gates near the 10%
	// rule); a loaded shared host documenting 25%+ noise gets the full
	// cap, because failing the build on scheduler jitter teaches people
	// to ignore the gate.
	MaxNoiseAllowance = 0.25
	// MinCalibrationScale / MaxCalibrationScale clamp the machine-speed
	// normalization (fresh calibration ÷ baseline calibration) so a
	// wild calibration reading can never grant unlimited slack or
	// fabricate regressions.
	MinCalibrationScale = 0.5
	MaxCalibrationScale = 2.0
)

// Diff is one per-metric finding.
type Diff struct {
	Domain, Dataset, Codec, Metric string
	Base, Fresh                    float64
	// Change is (fresh-base)/base; NaN for missing/invalid findings.
	Change float64
	// Reason is set for missing/invalid findings.
	Reason string
}

func (d Diff) id() string {
	return fmt.Sprintf("%s %s %s %s", d.Domain, d.Dataset, d.Codec, d.Metric)
}

// Report is the outcome of one comparison.
type Report struct {
	BaselineDate  string
	FreshDate     string
	Compared      int // metrics compared
	ThroughputTol float64
	RatioTol      float64
	Noise         float64 // the applied noise allowance
	// Scale is the machine-speed normalization: baseline throughputs
	// are multiplied by it before the tolerance applies. 1 when either
	// document lacks a calibration.
	Scale float64

	Regressions  []Diff
	Improvements []Diff
	Notes        []Diff
}

// OK reports whether the fresh run passes the gate.
func (r *Report) OK() bool { return len(r.Regressions) == 0 }

// entryKey addresses one entry across documents.
type entryKey struct{ domain, dataset, codec string }

// metric is one comparable number; higherBetter selects the
// throughput rule, otherwise the ratio rule applies.
type metric struct {
	name         string
	value        func(*Entry) float64
	higherBetter bool
}

var entryMetrics = []metric{
	{"bits_per_value", func(e *Entry) float64 { return e.BitsPerValue }, false},
	{"compress_mvs", func(e *Entry) float64 { return e.CompressMVs }, true},
	{"decompress_mvs", func(e *Entry) float64 { return e.DecompressMVs }, true},
	{"filter_mvs", func(e *Entry) float64 { return e.FilterMVs }, true},
}

// Compare diffs fresh against base. It returns an error (not a report)
// when the two documents are not comparable at all.
func Compare(base, fresh *Doc) (*Report, error) {
	if base.SchemaVersion != fresh.SchemaVersion {
		return nil, fmt.Errorf("schema mismatch: baseline v%d, fresh run v%d", base.SchemaVersion, fresh.SchemaVersion)
	}
	if base.N != fresh.N {
		return nil, fmt.Errorf("values_per_dataset mismatch: baseline %d, fresh run %d", base.N, fresh.N)
	}

	noise := math.Max(base.NoiseBound, fresh.NoiseBound)
	if noise > MaxNoiseAllowance {
		noise = MaxNoiseAllowance
	}
	if noise < 0 || math.IsNaN(noise) {
		noise = 0
	}
	scale := 1.0
	if base.CalibrationMVs > 0 && fresh.CalibrationMVs > 0 {
		scale = fresh.CalibrationMVs / base.CalibrationMVs
		if scale < MinCalibrationScale {
			scale = MinCalibrationScale
		}
		if scale > MaxCalibrationScale {
			scale = MaxCalibrationScale
		}
	}
	r := &Report{
		BaselineDate:  base.Date,
		FreshDate:     fresh.Date,
		ThroughputTol: ThroughputTolerance + noise,
		RatioTol:      RatioTolerance,
		Noise:         noise,
		Scale:         scale,
	}

	freshEntries := make(map[entryKey]*Entry)
	freshServed := make(map[string]*ServedScan)
	for di := range fresh.Domains {
		dr := &fresh.Domains[di]
		for ei := range dr.Entries {
			e := &dr.Entries[ei]
			freshEntries[entryKey{dr.Domain, e.Dataset, e.Codec}] = e
		}
		if dr.ServedScan != nil {
			freshServed[dr.Domain] = dr.ServedScan
		}
	}
	baseKeys := make(map[entryKey]bool)

	for di := range base.Domains {
		dr := &base.Domains[di]
		for ei := range dr.Entries {
			be := &dr.Entries[ei]
			key := entryKey{dr.Domain, be.Dataset, be.Codec}
			baseKeys[key] = true
			fe, ok := freshEntries[key]
			if !ok {
				r.Regressions = append(r.Regressions, Diff{
					Domain: dr.Domain, Dataset: be.Dataset, Codec: be.Codec,
					Metric: "entry", Change: math.NaN(),
					Reason: "present in baseline, missing from fresh run",
				})
				continue
			}
			for _, m := range entryMetrics {
				r.compareMetric(dr.Domain, be.Dataset, be.Codec, m, m.value(be), m.value(fe))
			}
		}
		if bs := dr.ServedScan; bs != nil {
			fs, ok := freshServed[dr.Domain]
			if !ok {
				r.Regressions = append(r.Regressions, Diff{
					Domain: dr.Domain, Dataset: bs.Dataset, Codec: "served",
					Metric: "scan_mvs", Change: math.NaN(),
					Reason: "served scan present in baseline, missing from fresh run",
				})
				continue
			}
			if fs.Rows != bs.Rows {
				r.Regressions = append(r.Regressions, Diff{
					Domain: dr.Domain, Dataset: bs.Dataset, Codec: "served",
					Metric: "rows", Base: float64(bs.Rows), Fresh: float64(fs.Rows), Change: math.NaN(),
					Reason: "served scan row count changed on fixed-seed data (correctness drift)",
				})
			}
			r.compareMetric(dr.Domain, bs.Dataset, "served",
				metric{name: "scan_mvs", higherBetter: true}, bs.ScanMVs, fs.ScanMVs)
		}
	}

	// Fresh entries with no baseline: informational only.
	var newKeys []entryKey
	for key := range freshEntries {
		if !baseKeys[key] {
			newKeys = append(newKeys, key)
		}
	}
	sort.Slice(newKeys, func(i, j int) bool {
		a, b := newKeys[i], newKeys[j]
		return a.domain+a.dataset+a.codec < b.domain+b.dataset+b.codec
	})
	for _, key := range newKeys {
		r.Notes = append(r.Notes, Diff{
			Domain: key.domain, Dataset: key.dataset, Codec: key.codec,
			Metric: "entry", Change: math.NaN(),
			Reason: "new entry, not in baseline",
		})
	}
	return r, nil
}

func (r *Report) compareMetric(domain, ds, codec string, m metric, base, fresh float64) {
	r.Compared++
	d := Diff{Domain: domain, Dataset: ds, Codec: codec, Metric: m.name, Base: base, Fresh: fresh}
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 }
	if bad(base) || bad(fresh) {
		d.Change = math.NaN()
		side := "fresh run"
		if bad(base) {
			side = "baseline"
		}
		d.Reason = fmt.Sprintf("invalid %s value in %s", m.name, side)
		r.Regressions = append(r.Regressions, d)
		return
	}
	ref := base
	if m.higherBetter && r.Scale > 0 {
		// Machine-speed normalization: judge fresh throughput against
		// what the baseline machine state would have produced today.
		ref = base * r.Scale
	}
	d.Change = (fresh - ref) / ref
	if m.higherBetter {
		switch {
		case d.Change < -r.ThroughputTol:
			r.Regressions = append(r.Regressions, d)
		case d.Change > r.ThroughputTol:
			r.Improvements = append(r.Improvements, d)
		}
		return
	}
	switch {
	case d.Change > r.RatioTol:
		r.Regressions = append(r.Regressions, d)
	case d.Change < -r.RatioTol:
		r.Improvements = append(r.Improvements, d)
	}
}

// Format writes the human-readable per-metric report.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "gauntlet: fresh run (%s) vs baseline (%s)\n", r.FreshDate, r.BaselineDate)
	fmt.Fprintf(w, "gauntlet: throughput limit -%.1f%% (%.0f%% rule + %.1f%% documented noise), ratio limit +%.1f%%\n",
		100*r.ThroughputTol, 100*ThroughputTolerance, 100*r.Noise, 100*r.RatioTol)
	if r.Scale != 1 {
		fmt.Fprintf(w, "gauntlet: calibration scale %.3fx — this machine is running %.1f%% %s than the baseline run; throughput deltas are vs the scaled baseline\n",
			r.Scale, math.Abs(r.Scale-1)*100, map[bool]string{true: "faster", false: "slower"}[r.Scale > 1])
	}
	for _, d := range r.Regressions {
		if d.Reason != "" {
			fmt.Fprintf(w, "REGRESSION  %s: %s\n", d.id(), d.Reason)
			continue
		}
		fmt.Fprintf(w, "REGRESSION  %s: %.3f -> %.3f (%+.1f%%, limit %s)\n",
			d.id(), d.Base, d.Fresh, 100*d.Change, r.limitFor(d.Metric))
	}
	for _, d := range r.Improvements {
		fmt.Fprintf(w, "improvement %s: %.3f -> %.3f (%+.1f%%)\n", d.id(), d.Base, d.Fresh, 100*d.Change)
	}
	for _, d := range r.Notes {
		fmt.Fprintf(w, "note        %s: %s\n", d.id(), d.Reason)
	}
	if r.OK() {
		fmt.Fprintf(w, "gauntlet: OK — %d metrics compared, %d improvements, no regressions\n",
			r.Compared, len(r.Improvements))
	} else {
		fmt.Fprintf(w, "gauntlet: FAIL — %d regressions across %d metrics compared\n",
			len(r.Regressions), r.Compared)
	}
}

func (r *Report) limitFor(metricName string) string {
	if metricName == "bits_per_value" {
		return fmt.Sprintf("+%.1f%%", 100*r.RatioTol)
	}
	return fmt.Sprintf("-%.1f%%", 100*r.ThroughputTol)
}

// Write emits the document as indented JSON.
func (d *Doc) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Read parses a document and validates its schema version against this
// binary's SchemaVersion.
func Read(r io.Reader) (*Doc, error) {
	var doc Doc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("gauntlet document: %w", err)
	}
	if doc.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("gauntlet document: schema v%d, this build reads v%d", doc.SchemaVersion, SchemaVersion)
	}
	return &doc, nil
}

// Load reads a document from a file.
func Load(path string) (*Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}
