// The regression gate with retry: a throughput dip observed once on a
// busy machine is evidence of noise, not a regression, so before the
// gate fails it re-measures exactly the flagged cells and keeps the
// best observation of each metric. A real regression reproduces on
// every retry (the code can't get faster by being measured again); a
// scheduling hiccup does not survive a second look. Ratio (bits/value)
// is deterministic under the seed contract, so retries never rescue a
// genuine compression regression.

package gauntlet

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strings"

	"github.com/goalp/alp/client"
	"github.com/goalp/alp/internal/dataset"
	"github.com/goalp/alp/internal/server"
)

// DefaultGateRetries is how many re-measure passes `alpgauntlet -check`
// grants flagged cells before declaring a regression real. Retries are
// cheap — only flagged cells re-run — and each pass halves the false-
// positive surface, so the default is generous enough for a loaded
// 1-CPU host; a real regression survives all of them.
const DefaultGateRetries = 4

// Gate measures a fresh run, compares it against base, and on failure
// re-measures only the flagged (dataset, codec) cells — up to retries
// passes — merging the best observation of each metric into the fresh
// document before re-comparing. It returns the final fresh document and
// report; the error covers measurement or schema problems, not
// regressions (inspect Report.OK for those). progress may be nil.
func Gate(base *Doc, opt Options, retries int, progress io.Writer) (*Doc, *Report, error) {
	if progress == nil {
		progress = io.Discard
	}
	fresh, err := Measure(opt)
	if err != nil {
		return nil, nil, err
	}
	rep, err := Compare(base, fresh)
	if err != nil {
		return fresh, nil, err
	}
	// Each retry doubles the measurement window: pass 1 re-measures at
	// 2x MinDur, pass k at 2^k. Longer windows average over contention
	// phases the first pass's short windows fell into, so the last
	// retries are the most trustworthy — and still cheap, because only
	// flagged cells pay for them.
	retryOpt := opt
	for pass := 1; !rep.OK() && pass <= retries; pass++ {
		cells, served := flaggedCells(rep)
		if len(cells) == 0 && len(served) == 0 {
			break // nothing re-measurable (e.g. missing entries)
		}
		retryOpt.MinDur *= 2
		fmt.Fprintf(progress, "gauntlet: %d regressions; re-measuring %d flagged cells (retry %d/%d, %v windows)\n",
			len(rep.Regressions), len(cells)+len(served), pass, retries, retryOpt.MinDur)
		// The calibration is NOT re-measured here: moving the scale
		// mid-gate re-judges every already-passing cell against a new
		// reference and oscillates. The measurement-time calibration
		// stays the document's value; flagged cells just get better
		// observations.
		if err := remeasure(fresh, cells, served, retryOpt); err != nil {
			return fresh, nil, err
		}
		if rep, err = Compare(base, fresh); err != nil {
			return fresh, nil, err
		}
	}
	return fresh, rep, nil
}

// cellKey identifies one (domain, dataset, codec) measurement.
type cellKey struct {
	Domain, Dataset, Codec string
}

// flaggedCells extracts the re-measurable regressions from a report:
// codec cells and served-scan points that exist in the fresh document.
// Missing entries and row-count drift are not re-measurable — the first
// has nothing to measure, the second is deterministic on fixed-seed
// data and indicates a real bug.
func flaggedCells(rep *Report) (cells []cellKey, served []string) {
	seenCell := map[cellKey]bool{}
	seenServed := map[string]bool{}
	for _, d := range rep.Regressions {
		if strings.Contains(d.Reason, "missing from fresh") ||
			strings.Contains(d.Reason, "correctness drift") {
			continue
		}
		if d.Codec == "served" {
			if !seenServed[d.Domain] {
				seenServed[d.Domain] = true
				served = append(served, d.Domain)
			}
			continue
		}
		k := cellKey{d.Domain, d.Dataset, d.Codec}
		if !seenCell[k] {
			seenCell[k] = true
			cells = append(cells, k)
		}
	}
	return cells, served
}

// remeasure re-runs the flagged cells and merges each metric's best
// observation into fresh (max for throughput, min for bits/value).
func remeasure(fresh *Doc, cells []cellKey, served []string, opt Options) error {
	byName := map[string]codec{}
	for _, c := range codecs() {
		byName[c.Name] = c
	}
	// One generated column per dataset, shared by its flagged codecs.
	type col struct {
		values []float64
		lo, hi float64
	}
	cols := map[string]*col{}
	column := func(name string) (*col, error) {
		if c, ok := cols[name]; ok {
			return c, nil
		}
		d, ok := dataset.ByName(name)
		if !ok {
			return nil, fmt.Errorf("gauntlet retry: dataset %q not in registry", name)
		}
		values := d.Generate(opt.N)
		lo, hi := midRange(values)
		c := &col{values, lo, hi}
		cols[name] = c
		return c, nil
	}

	for _, k := range cells {
		c, ok := byName[k.Codec]
		if !ok {
			continue
		}
		data, err := column(k.Dataset)
		if err != nil {
			return err
		}
		e, _ := c.measure(data.values, data.lo, data.hi, opt)
		old := findEntry(fresh, k.Domain, k.Dataset, k.Codec)
		if old == nil {
			continue
		}
		old.BitsPerValue = math.Min(old.BitsPerValue, e.BitsPerValue)
		old.CompressMVs = math.Max(old.CompressMVs, e.CompressMVs)
		old.DecompressMVs = math.Max(old.DecompressMVs, e.DecompressMVs)
		old.FilterMVs = math.Max(old.FilterMVs, e.FilterMVs)
	}

	if len(served) > 0 {
		srv := server.New(server.Options{})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		cl := client.New(ts.URL)
		ctx := context.Background()
		for _, domain := range served {
			dr := findDomain(fresh, domain)
			if dr == nil || dr.ServedScan == nil {
				continue
			}
			data, err := column(dr.ServedScan.Dataset)
			if err != nil {
				return err
			}
			ss, _, err := measureServed(ctx, cl, domain, dr.ServedScan.Dataset, data.values, data.lo, data.hi, opt)
			if err != nil {
				return fmt.Errorf("gauntlet retry served scan (%s): %w", domain, err)
			}
			if ss.ScanMVs > dr.ServedScan.ScanMVs {
				dr.ServedScan.ScanMVs = ss.ScanMVs
			}
		}
	}
	return nil
}

func findDomain(doc *Doc, domain string) *DomainResult {
	for i := range doc.Domains {
		if doc.Domains[i].Domain == domain {
			return &doc.Domains[i]
		}
	}
	return nil
}

func findEntry(doc *Doc, domain, ds, codec string) *Entry {
	dr := findDomain(doc, domain)
	if dr == nil {
		return nil
	}
	for i := range dr.Entries {
		if dr.Entries[i].Dataset == ds && dr.Entries[i].Codec == codec {
			return &dr.Entries[i]
		}
	}
	return nil
}
