GO ?= go

.PHONY: all build vet test race bench-smoke check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run; covers the obs atomic counters from every
# morsel-parallel scan test. -short skips the timing-sensitive
# overhead-guard assertions that are meaningless under the race
# detector's slowdown.
race:
	$(GO) test -race -short ./...

# One iteration of every benchmark: catches bit-rot in bench code
# (including BenchmarkEncodeObsOff/On) without burning CI minutes.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The full PR gate, mirrored by .github/workflows/ci.yml.
check: vet build test race bench-smoke

clean:
	$(GO) clean ./...
