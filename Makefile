GO ?= go

.PHONY: all build vet test race bench-smoke bench-snapshot fuzz-smoke serve-smoke server-race mon-smoke cluster-race lint gauntlet gauntlet-check check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run; covers the obs atomic counters from every
# morsel-parallel scan test and the cross-codec differential harness
# (difftest_test.go). -short skips the timing-sensitive overhead-guard
# assertions that are meaningless under the race detector's slowdown
# and caps the differential harness's seed count.
race:
	$(GO) test -race -short ./...

# One iteration of every benchmark: catches bit-rot in bench code
# (including BenchmarkEncodeObsOff/On) without burning CI minutes.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The dated core-throughput snapshot: encode/decode/filter MV/s over
# three dataset shapes, plus the served_scan selectivity sweep
# (in-process vs compressed ALPS wire vs raw float64s over loopback
# HTTP), written to BENCH_core.json. Non-gating — CI uploads it as an
# artifact so performance drift is a diff, not a build break.
bench-snapshot:
	$(GO) run ./cmd/alpbench -snapshot BENCH_core.json
	@cat BENCH_core.json

# Short coverage-guided fuzzing runs on top of the checked-in seed
# corpora (testdata/fuzz/): round-trip losslessness on arbitrary bit
# patterns, no-panic + ErrCorrupt on mutated streams, differential
# pushdown-vs-naive filtered aggregates under fuzzed predicates, and
# the scan-stream frame decoder (length/CRC/bitmap-cardinality lies).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzEncodeDecodeRoundTrip -fuzztime 13s .
	$(GO) test -run '^$$' -fuzz FuzzOpen -fuzztime 13s .
	$(GO) test -run '^$$' -fuzz FuzzPushdownAgainstNaive -fuzztime 13s .
	$(GO) test -run '^$$' -fuzz FuzzScanFrameDecode -fuzztime 13s .

# End-to-end smoke of the column service: build the real alpserved
# binary, boot it on an ephemeral port, run an ingest -> scan -> agg
# round-trip through the typed client (agg checked bit-identical to
# the in-process engine), then SIGTERM and verify the graceful drain.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 -v ./cmd/alpserved

# End-to-end smoke of the self-telemetry history: boot alpserved with a
# 10ms scrape interval and a small window so sealing happens within the
# run, drive traffic, range-query /v1/metrics/history through the typed
# client asserting non-empty bit-identical results across repeated
# reads, then verify the shutdown ALPM snapshot round-trips through
# `alpfile metrics`.
mon-smoke:
	$(GO) test -run TestMonSmoke -count=1 -v ./cmd/alpserved

# Static analysis beyond vet: staticcheck and govulncheck when the
# tools are installed, skipped with a notice otherwise (the CI lint job
# installs them; local runs shouldn't fail on a missing binary).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# The server integration tests (shedding, drain, retry, end-to-end
# bit-identity, and the served-scan differential battery with its
# selectivity sweep × edge datasets) under the race detector — the
# service is the most concurrent code in the repo. internal/gauntlet
# rides along for its per-domain encode → serve → ALPS scan smoke.
server-race:
	$(GO) test -race -count=1 ./internal/server ./client ./cmd/alpserved ./internal/gauntlet

# The alpcluster scatter-gather coordinator under the race detector:
# the clustered-vs-in-process differential battery (1/2/4 loopback
# backends × predicate sweep × edge datasets, agg/count/scan/data all
# bit-identical), the fault-injection tests (killed backend ⇒ typed
# partial_unavailable, hung backend ⇒ failover with replicas), the
# rebalance path and the pool's breaker/backoff unit tests. Gating in
# CI — the coordinator is all concurrency.
cluster-race:
	$(GO) test -race -count=1 ./internal/cluster ./client

# The cross-domain gauntlet: all 9 codecs × 5 workload domains (HPC,
# time series, observability, db, ML weights), measuring compression
# ratio plus compress/decompress/filter throughput per (domain,
# dataset, codec) and one served ALPS scan per domain, with median-of-5
# noise control. Writes the dated, schema-versioned BENCH_gauntlet.json
# baseline and prints the per-domain winners table.
gauntlet:
	$(GO) run ./cmd/alpgauntlet -o BENCH_gauntlet.json -table

# The regression gate every perf PR must pass: re-measures the gauntlet
# and fails with a per-metric diff on >10% throughput drop (plus the
# documented noise bound, capped at 25%) or >2% compression-ratio
# growth against the committed baseline. Flagged cells are re-measured
# (best-of) before the gate fails, so scheduling jitter on a busy box
# doesn't masquerade as a regression. Refresh the baseline with
# `make gauntlet` only when a change is *supposed* to move the numbers,
# and say so in the PR.
gauntlet-check:
	$(GO) run ./cmd/alpgauntlet -check BENCH_gauntlet.json

# The full PR gate, mirrored by .github/workflows/ci.yml.
check: vet build test race bench-smoke serve-smoke mon-smoke server-race cluster-race fuzz-smoke

clean:
	$(GO) clean ./...
