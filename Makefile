GO ?= go

.PHONY: all build vet test race bench-smoke fuzz-smoke check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run; covers the obs atomic counters from every
# morsel-parallel scan test and the cross-codec differential harness
# (difftest_test.go). -short skips the timing-sensitive overhead-guard
# assertions that are meaningless under the race detector's slowdown
# and caps the differential harness's seed count.
race:
	$(GO) test -race -short ./...

# One iteration of every benchmark: catches bit-rot in bench code
# (including BenchmarkEncodeObsOff/On) without burning CI minutes.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Short coverage-guided fuzzing runs on top of the checked-in seed
# corpora (testdata/fuzz/): round-trip losslessness on arbitrary bit
# patterns, no-panic + ErrCorrupt on mutated streams, and differential
# pushdown-vs-naive filtered aggregates under fuzzed predicates.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzEncodeDecodeRoundTrip -fuzztime 13s .
	$(GO) test -run '^$$' -fuzz FuzzOpen -fuzztime 13s .
	$(GO) test -run '^$$' -fuzz FuzzPushdownAgainstNaive -fuzztime 13s .

# The full PR gate, mirrored by .github/workflows/ci.yml.
check: vet build test race bench-smoke fuzz-smoke

clean:
	$(GO) clean ./...
