package alp

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/goalp/alp/internal/dataset"
)

func TestEncodeDecode(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	src := make([]float64, 150_000)
	for i := range src {
		src[i] = float64(r.Intn(1_000_000)) / 100
	}
	data := Encode(src)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d: got %v, want %v", i, got[i], src[i])
		}
	}
	if len(data) >= len(src)*8/2 {
		t.Fatalf("compressed to %d bytes, want under half of %d", len(data), len(src)*8)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("want error on empty input")
	}
	if _, err := Decode([]byte("not an alp stream")); err == nil {
		t.Fatal("want error on garbage")
	}
	data := Encode([]float64{1.5, 2.5})
	if _, err := Decode(data[:len(data)-1]); err == nil {
		t.Fatal("want error on truncated stream")
	}
}

func TestColumnRandomAccess(t *testing.T) {
	d, _ := dataset.ByName("Stocks-USA")
	src := d.Generate(130_000)
	col, err := Open(Encode(src))
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != len(src) {
		t.Fatalf("Len = %d, want %d", col.Len(), len(src))
	}
	buf := make([]float64, VectorSize)
	for _, vi := range []int{0, 42, col.NumVectors() - 1} {
		n, err := col.ReadVector(vi, buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if math.Float64bits(buf[i]) != math.Float64bits(src[vi*VectorSize+i]) {
				t.Fatalf("vector %d value %d mismatch", vi, i)
			}
		}
	}
	if _, err := col.ReadVector(-1, buf); err == nil {
		t.Fatal("want error on negative index")
	}
	if _, err := col.ReadVector(col.NumVectors(), buf); err == nil {
		t.Fatal("want error past the end")
	}
	if _, err := col.ReadVector(0, buf[:3]); err == nil {
		t.Fatal("want error on short buffer")
	}
}

func TestCompressAccessors(t *testing.T) {
	d, _ := dataset.ByName("City-Temp")
	src := d.Generate(50_000)
	col := Compress(src)
	if col.UsedRD() {
		t.Fatal("City-Temp must not use ALP_rd")
	}
	if bpv := col.BitsPerValue(); bpv <= 0 || bpv >= 64 {
		t.Fatalf("BitsPerValue = %.1f", bpv)
	}
	if col.CompressedSize() <= 0 {
		t.Fatal("CompressedSize must be positive")
	}
	vals := col.Values()
	var want float64
	for _, v := range src {
		want += v
	}
	if got := col.Sum(); math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	for i := range src {
		if math.Float64bits(vals[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d mismatch", i)
		}
	}
	// Serialize and reopen.
	col2, err := Open(col.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if col2.Len() != col.Len() {
		t.Fatal("reopened column has different length")
	}
}

func TestWriterStreaming(t *testing.T) {
	d, _ := dataset.ByName("Dew-Point-Temp")
	src := d.Generate(250_000) // spans 3 row-groups
	w := NewWriter()
	for off := 0; off < len(src); off += 7777 {
		hi := off + 7777
		if hi > len(src) {
			hi = len(src)
		}
		w.Write(src[off:hi])
	}
	if w.Len() != len(src) {
		t.Fatalf("Writer.Len = %d, want %d", w.Len(), len(src))
	}
	data := w.Close()

	// The streamed stream must exactly match one-shot Encode.
	oneShot := Encode(src)
	if len(data) != len(oneShot) {
		t.Fatalf("streamed %d bytes, one-shot %d bytes", len(data), len(oneShot))
	}

	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(src) {
		t.Fatalf("Reader.Len = %d", r.Len())
	}
	buf := make([]float64, VectorSize)
	off := 0
	for {
		n, err := r.Next(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			if math.Float64bits(buf[i]) != math.Float64bits(src[off+i]) {
				t.Fatalf("value %d mismatch", off+i)
			}
		}
		off += n
	}
	if off != len(src) {
		t.Fatalf("read %d values, want %d", off, len(src))
	}
	r.Reset()
	if n, _ := r.Next(buf); n == 0 {
		t.Fatal("Reset must rewind")
	}
}

func TestWriterPanicsAfterClose(t *testing.T) {
	w := NewWriter()
	w.Write([]float64{1})
	w.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on Write after Close")
		}
	}()
	w.Write([]float64{2})
}

// TestWriterDoubleClose: Close is idempotent — every call after the
// first must return the exact bytes the first produced (cached, not
// re-encoded), for both the serial and the pooled Writer.
func TestWriterDoubleClose(t *testing.T) {
	d, _ := dataset.ByName("Dew-Point-Temp")
	src := d.Generate(RowGroupSize + 999)
	for _, workers := range []int{1, 4} {
		w := NewWriterParallel(WriterOptions{Workers: workers})
		w.Write(src)
		first := w.Close()
		second := w.Close()
		if !bytes.Equal(first, second) {
			t.Fatalf("workers=%d: second Close returned different bytes", workers)
		}
		if got, err := Decode(second); err != nil || !bitsEqual(got, src) {
			t.Fatalf("workers=%d: double-Closed stream does not round-trip (%v)", workers, err)
		}
	}
}

func TestQuickPublicRoundTrip(t *testing.T) {
	f := func(raw []uint64) bool {
		src := make([]float64, len(raw))
		for i, b := range raw {
			src[i] = math.Float64frombits(b)
		}
		got, err := Decode(Encode(src))
		if err != nil {
			return false
		}
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// ---- float32 ----

func TestEncodeDecode32(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	src := make([]float32, 120_000)
	for i := range src {
		src[i] = float32(r.Intn(100000)) / 100
	}
	data := Encode32(src)
	got, err := Decode32(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
			t.Fatalf("value %d: got %v, want %v", i, got[i], src[i])
		}
	}
	col := Compress32(src)
	if col.UsedRD() {
		t.Fatal("decimal float32 data must not use ALP_rd")
	}
	if bpv := col.BitsPerValue(); bpv >= 32 {
		t.Fatalf("BitsPerValue = %.1f, want compression", bpv)
	}
}

func TestWeights32UseRD(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	src := dataset.Weights32(r, 130_000)
	col := Compress32(src)
	if !col.UsedRD() {
		t.Fatal("ML weights must use ALP_rd-32")
	}
	got, err := Decode32(col.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
			t.Fatalf("value %d mismatch", i)
		}
	}
	if bpv := col.BitsPerValue(); bpv >= 32 || bpv < 20 {
		t.Fatalf("BitsPerValue = %.1f, want ~28 (Table 7)", bpv)
	}
}

func TestQuickPublicRoundTrip32(t *testing.T) {
	f := func(raw []uint32) bool {
		src := make([]float32, len(raw))
		for i, b := range raw {
			src[i] = math.Float32frombits(b)
		}
		got, err := Decode32(Encode32(src))
		if err != nil {
			return false
		}
		for i := range src {
			if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecode32RejectsWrongMagic(t *testing.T) {
	data := Encode([]float64{1.5})
	if _, err := Decode32(data); err == nil {
		t.Fatal("Decode32 must reject 64-bit streams")
	}
	data32 := Encode32([]float32{1.5})
	if _, err := Decode(data32); err == nil {
		t.Fatal("Decode must reject 32-bit streams")
	}
}

func TestSumRangePushdown(t *testing.T) {
	// Three vectors with disjoint value bands; a predicate selecting the
	// middle band must skip the other vectors entirely.
	values := make([]float64, 3*VectorSize)
	for i := range values {
		values[i] = float64(i/VectorSize)*1000 + float64(i%7)
	}
	col := Compress(values)
	sum, count, touched := col.SumRange(1000, 1006)
	if touched != 1 {
		t.Fatalf("touched %d vectors, want 1", touched)
	}
	if count != VectorSize {
		t.Fatalf("count = %d, want %d", count, VectorSize)
	}
	var want float64
	for i := VectorSize; i < 2*VectorSize; i++ {
		want += values[i]
	}
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}

	// And the zone maps must survive serialization.
	col2, err := Open(col.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sum2, count2, touched2 := col2.SumRange(1000, 1006)
	if sum2 != sum || count2 != count || touched2 != touched {
		t.Fatal("SumRange differs after round trip")
	}
}
